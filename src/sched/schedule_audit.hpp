// Schedule auditor: the §4.2 contention-freeness property, audited over a
// live CyclicSchedule.
//
// Lives in sched/ (not check/) so the check layer never depends upward on
// the modules it audits: check/ owns the registry and the structural
// primitives (audit_destination_permutation), and each module exports the
// auditors over its own types (cf. node/node_audit.hpp). The layer-order
// lint rule enforces the direction.
#pragma once

#include <cstdint>

#include "common/thread_safety.hpp"
#include "common/units.hpp"

namespace sirius::sched {

class CyclicSchedule;

/// Audits slot `slot` of the schedule: the tx map over (member, uplink) is
/// a partial permutation, destinations are members distinct from their
/// source, and peer_rx inverts peer_tx.
void audit_slot_permutation(const CyclicSchedule& sched, std::int64_t slot)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

}  // namespace sirius::sched
