#include "sched/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/invariant.hpp"

namespace sirius::sched {

CyclicSchedule::CyclicSchedule(std::int32_t nodes, std::int32_t uplinks)
    : nodes_(nodes),
      uplinks_(uplinks),
      slots_per_round_((nodes - 1 + uplinks - 1) / uplinks) {
  SIRIUS_INVARIANT(nodes_ >= 2, "schedule over %d nodes", nodes_);
  SIRIUS_INVARIANT(uplinks_ >= 1, "schedule with %d uplinks", uplinks_);
}

CyclicSchedule::CyclicSchedule(std::vector<NodeId> members,
                               std::int32_t uplinks)
    : nodes_(0),
      uplinks_(uplinks),
      slots_per_round_(0),
      members_(true),
      member_count_(static_cast<std::int32_t>(members.size())),
      member_list_(std::move(members)) {
  SIRIUS_INVARIANT(member_count_ >= 2, "schedule over %d members",
                   member_count_);
  SIRIUS_INVARIANT(uplinks_ >= 1, "schedule with %d uplinks", uplinks_);
  SIRIUS_INVARIANT(
      std::is_sorted(member_list_.begin(), member_list_.end()) &&
          std::adjacent_find(member_list_.begin(), member_list_.end()) ==
              member_list_.end(),
      "schedule member list must be sorted and unique");
  slots_per_round_ = (member_count_ - 1 + uplinks_ - 1) / uplinks_;
  member_index_.assign(
      static_cast<std::size_t>(member_list_.back()) + 1, -1);
  for (std::int32_t i = 0; i < member_count_; ++i) {
    member_index_[static_cast<std::size_t>(member_list_[
        static_cast<std::size_t>(i)])] = i;
  }
}

std::int32_t CyclicSchedule::index_of(NodeId n) const {
  if (!members_) return n >= 0 && n < nodes_ ? n : -1;
  if (n < 0 || static_cast<std::size_t>(n) >= member_index_.size()) return -1;
  return member_index_[static_cast<std::size_t>(n)];
}

NodeId CyclicSchedule::node_at(std::int32_t index) const {
  return members_ ? member_list_[static_cast<std::size_t>(index)]
                  : static_cast<NodeId>(index);
}

bool CyclicSchedule::is_member(NodeId n) const { return index_of(n) >= 0; }

std::int32_t CyclicSchedule::offset_of(UplinkId u, std::int64_t t) const {
  const auto slot_in_round =
      static_cast<std::int32_t>(t % slots_per_round_);
  // Offsets 0 .. N-2 are distributed in *strides* across uplinks: uplink u
  // covers offsets u*R .. u*R+R-1 over the R slots of a round. Within one
  // slot a node's U destinations are therefore spaced ~N/U apart — i.e. in
  // distinct topology blocks — which is what makes the schedule physically
  // realizable with one grating uplink per block. Offsets >= N-1 are idle
  // padding when (N-1) is not a multiple of U.
  return u * slots_per_round_ + slot_in_round;
}

NodeId CyclicSchedule::peer_tx(NodeId src, UplinkId u, std::int64_t t) const {
  assert(u >= 0 && u < uplinks_);
  const std::int32_t s = index_of(src);
  if (s < 0) return kInvalidNode;  // non-member (failed) node: no slots
  const std::int32_t n = nodes();
  const std::int32_t off = offset_of(u, t);
  if (off >= n - 1) return kInvalidNode;
  return node_at((s + 1 + off) % n);
}

NodeId CyclicSchedule::peer_rx(NodeId dst, UplinkId u, std::int64_t t) const {
  assert(u >= 0 && u < uplinks_);
  const std::int32_t d = index_of(dst);
  if (d < 0) return kInvalidNode;
  const std::int32_t n = nodes();
  const std::int32_t off = offset_of(u, t);
  if (off >= n - 1) return kInvalidNode;
  return node_at((d - 1 - off % n + 2 * n) % n);
}

CyclicSchedule::Connection CyclicSchedule::connection(NodeId src,
                                                      NodeId dst) const {
  SIRIUS_INVARIANT(src != dst, "connection(%d, %d) to itself", src, dst);
  const std::int32_t s = index_of(src);
  const std::int32_t d = index_of(dst);
  SIRIUS_INVARIANT(s >= 0 && d >= 0,
                   "connection(%d, %d): both endpoints must be schedule "
                   "members",
                   src, dst);
  if (s < 0 || d < 0 || s == d) return Connection{0, 0};
  const std::int32_t n = nodes();
  const std::int32_t off = (d - s - 1 + 2 * n) % n;
  SIRIUS_INVARIANT(off >= 0 && off < n - 1,
                   "connection(%d, %d): offset %d outside one round", src,
                   dst, off);
  return Connection{off % slots_per_round_, off / slots_per_round_};
}

void CyclicSchedule::serialize(ckpt::Writer& w) const {
  w.b(members_);
  w.i32(uplinks_);
  if (members_) {
    w.u64(member_list_.size());
    for (const NodeId n : member_list_) w.i32(n);
  } else {
    w.i32(nodes_);
  }
}

bool CyclicSchedule::restore(ckpt::Reader& r) {
  const bool members = r.b();
  const std::int32_t uplinks = r.i32();
  if (members) {
    const std::size_t n = r.count(4, "schedule member list");
    std::vector<NodeId> list(n);
    for (auto& m : list) m = r.i32();
    if (!r.ok()) return false;
    if (uplinks < 1 || n < 2 ||
        !std::is_sorted(list.begin(), list.end()) ||
        std::adjacent_find(list.begin(), list.end()) != list.end() ||
        list.front() < 0) {
      r.fail("schedule member list invalid (needs sorted unique NodeIds, "
             ">= 2 members, >= 1 uplink)");
      return false;
    }
    *this = CyclicSchedule(std::move(list), uplinks);
    return true;
  }
  const std::int32_t nodes = r.i32();
  if (!r.ok()) return false;
  if (nodes < 2 || uplinks < 1) {
    r.fail("schedule geometry invalid (needs >= 2 nodes, >= 1 uplink)");
    return false;
  }
  *this = CyclicSchedule(nodes, uplinks);
  return true;
}

bool physically_contention_free(const topo::SiriusTopology& topo,
                                const CyclicSchedule& sched) {
  // For each slot of one round, mark every (grating, output port) that
  // carries light; a collision means two inputs of the same grating chose
  // wavelengths that diffract to the same output.
  const std::int32_t gratings = topo.gratings();
  const std::int32_t ports = topo.awgr().ports();
  std::vector<std::int8_t> hit(
      static_cast<std::size_t>(gratings) * static_cast<std::size_t>(ports));
  // Physical uplinks already claimed by a node in the current slot, so that
  // several same-slot destinations in one block are spread over replicas.
  std::vector<std::int8_t> uplink_used(
      static_cast<std::size_t>(topo.nodes()) *
      static_cast<std::size_t>(topo.uplinks_per_node()));

  for (std::int32_t t = 0; t < sched.slots_per_round(); ++t) {
    std::fill(hit.begin(), hit.end(), 0);
    std::fill(uplink_used.begin(), uplink_used.end(), 0);
    for (NodeId s = 0; s < topo.nodes(); ++s) {
      for (UplinkId u = 0; u < sched.uplinks(); ++u) {
        const NodeId dst = sched.peer_tx(s, u, t);
        if (dst == kInvalidNode) continue;
        // The schedule says "s talks to dst in this slot"; physically the
        // cell leaves on the uplink wired towards dst's block, choosing
        // the replica deterministically as (u mod replicas). Two senders
        // that hit the same destination in the same slot always differ by
        // less than `replicas` in schedule-uplink index, so this rule
        // separates them onto distinct gratings.
        const auto candidates = topo.uplinks_towards(s, dst);
        const UplinkId phys = candidates[static_cast<std::size_t>(
            u % static_cast<UplinkId>(candidates.size()))];
        auto& used =
            uplink_used[static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(topo.uplinks_per_node()) +
                        static_cast<std::size_t>(phys)];
        if (used != 0) return false;  // node double-books a physical uplink
        used = 1;
        const auto att = topo.tx_attachment(s, phys);
        const WavelengthId w = topo.wavelength_to(s, phys, dst);
        const std::int32_t out = topo.awgr().route(att.input_port, w);
        auto& cell =
            hit[static_cast<std::size_t>(att.grating) *
                    static_cast<std::size_t>(ports) +
                static_cast<std::size_t>(out)];
        if (cell != 0) return false;
        cell = 1;
      }
    }
  }
  return true;
}

}  // namespace sirius::sched
