#include "sched/schedule_audit.hpp"

#include <vector>

#include "check/auditors.hpp"
#include "common/invariant.hpp"
#include "sched/schedule.hpp"

namespace sirius::sched {

void audit_slot_permutation(const CyclicSchedule& sched, std::int64_t slot)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
  // Contention-freeness is per uplink: for a fixed (u, slot) the src -> dst
  // map is a bijection. Across uplinks a node legitimately receives up to
  // U cells per slot (one per downlink), so each uplink is audited alone.
  std::vector<NodeId> dsts;
  dsts.reserve(static_cast<std::size_t>(sched.nodes()));
  for (UplinkId u = 0; u < sched.uplinks(); ++u) {
    dsts.clear();
    for (NodeId raw = 0, seen = 0; seen < sched.nodes(); ++raw) {
      if (!sched.is_member(raw)) continue;
      ++seen;
      const NodeId dst = sched.peer_tx(raw, u, slot);
      if (dst == kInvalidNode) continue;
      SIRIUS_INVARIANT(dst != raw, "schedule: node %d sends to itself at slot %lld",
                       raw, static_cast<long long>(slot));
      SIRIUS_INVARIANT(sched.is_member(dst),
                       "schedule: node %d sends to non-member %d at slot %lld",
                       raw, dst, static_cast<long long>(slot));
      dsts.push_back(dst);
    }
    check::audit_destination_permutation(dsts, "schedule");
  }

  // rx consistency: every receiver that hears someone hears exactly the
  // sender the tx map named (spot-checks the peer_rx inverse).
  for (NodeId raw = 0, seen = 0; seen < sched.nodes(); ++raw) {
    if (!sched.is_member(raw)) continue;
    ++seen;
    for (UplinkId u = 0; u < sched.uplinks(); ++u) {
      const NodeId src = sched.peer_rx(raw, u, slot);
      if (src == kInvalidNode) continue;
      SIRIUS_INVARIANT(
          sched.peer_tx(src, u, slot) == raw,
          "schedule: peer_rx(%d, %d) = %d but peer_tx disagrees at slot %lld",
          raw, u, src, static_cast<long long>(slot));
    }
  }
}

}  // namespace sirius::sched
