// The scheduler-less static schedule (§4.2, Fig. 5b).
//
// Sirius never computes schedules online. Nodes follow a fixed, cyclic
// calendar: at every timeslot each uplink is tuned to a schedule-determined
// wavelength, connecting it to a schedule-determined peer. The calendar is
// built from rotational permutations — at slot t, uplink u of node s
// transmits to (s + 1 + offset(u, t)) mod N — which makes it:
//   * contention-free: for a fixed (u, t) the map s -> dst is a bijection,
//     so no receiver port ever hears two senders;
//   * fair: one *round* of ceil((N-1)/U) slots connects every ordered node
//     pair exactly once — this round is the "epoch" that paces the
//     congestion-control request/grant cycle;
//   * laser-sharing friendly: within a slot all uplinks of a node can use
//     the same wavelength index on their respective gratings.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/io.hpp"
#include "common/hot_path.hpp"
#include "common/thread_safety.hpp"
#include "common/units.hpp"
#include "topo/sirius_topology.hpp"

namespace sirius::sched {

/// The cyclic schedule over N nodes with U uplinks each.
///
/// A schedule can also be built over an explicit *member list* — the alive
/// subset of nodes after failures (§4.5): "the network schedule for all
/// the nodes can be adjusted to omit the failed node and hence regain any
/// lost bandwidth". Members keep their global NodeIds; the rotation runs
/// over member indices, so contention-freeness and the once-per-round
/// property hold within the alive set.
///
/// The tables are written once (construction / the simulator's failover
/// swap) and read on every slot, so lookups require only a *shared* hold of
/// common::sim_slot_role: sharded slot workers may all read the calendar
/// concurrently, while swapping it in will need the exclusive role.
class CyclicSchedule final {
 public:
  CyclicSchedule(std::int32_t nodes, std::int32_t uplinks);
  /// Schedule over an explicit member set (sorted, unique, >= 2 entries).
  CyclicSchedule(std::vector<NodeId> members, std::int32_t uplinks);

  /// Number of *participating* nodes (= member count).
  [[nodiscard]] std::int32_t nodes() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return members_ ? member_count_ : nodes_;
  }
  [[nodiscard]] std::int32_t uplinks() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return uplinks_;
  }
  [[nodiscard]] bool is_member(NodeId n) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

  /// Slots per round; one round connects each ordered pair exactly once.
  [[nodiscard]] std::int32_t slots_per_round() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return slots_per_round_;
  }

  /// Destination of node `src` on uplink `u` at global slot `t`, or
  /// kInvalidNode if that uplink is idle in this slot (padding when
  /// (N-1) is not a multiple of U).
  [[nodiscard]] SIRIUS_HOT NodeId peer_tx(NodeId src, UplinkId u,
                                          std::int64_t t) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

  /// Source heard by node `dst` on downlink `u` at slot `t`, or
  /// kInvalidNode when idle.
  [[nodiscard]] SIRIUS_HOT NodeId peer_rx(NodeId dst, UplinkId u,
                                          std::int64_t t) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

  /// The (slot-in-round, uplink) at which `src` talks to `dst`. Each
  /// ordered pair occurs exactly once per round.
  struct Connection {
    std::int32_t slot_in_round;
    UplinkId uplink;
  };
  Connection connection(NodeId src, NodeId dst) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

  /// Round index containing global slot `t`.
  [[nodiscard]] std::int64_t round_of(std::int64_t t) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return t / slots_per_round_;
  }
  /// First global slot of round `r`.
  [[nodiscard]] std::int64_t round_start(std::int64_t r) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return r * slots_per_round_;
  }

  /// Snapshottable: the calendar is pure function of its constructor
  /// inputs, so only those travel; restore re-derives the tables (and
  /// re-validates, so hostile input cannot build an inconsistent schedule).
  void serialize(ckpt::Writer& w) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);
  bool restore(ckpt::Reader& r) SIRIUS_REQUIRES(common::sim_slot_role);

 private:
  [[nodiscard]] std::int32_t offset_of(UplinkId u, std::int64_t t) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);
  // member index, -1 if not member
  [[nodiscard]] std::int32_t index_of(NodeId n) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);
  [[nodiscard]] NodeId node_at(std::int32_t index) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

  std::int32_t nodes_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  std::int32_t uplinks_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  std::int32_t slots_per_round_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  bool members_ SIRIUS_GUARDED_BY(common::sim_slot_role) = false;
  std::int32_t member_count_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  // index -> NodeId
  std::vector<NodeId> member_list_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  // NodeId -> index, -1 if absent
  std::vector<std::int32_t> member_index_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
};

/// Maps the abstract schedule onto physical wavelengths for a topology and
/// verifies grating-level contention-freeness. Returns true if, at every
/// slot of a round, every populated AWGR output port receives light from
/// at most one input.
bool physically_contention_free(const topo::SiriusTopology& topo,
                                const CyclicSchedule& sched)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

}  // namespace sirius::sched
