#include "sched/demand_scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace sirius::sched {

DemandScheduler::DemandScheduler(std::int32_t nodes, std::uint64_t seed)
    : nodes_(nodes), rng_(seed) {
  assert(nodes_ >= 2);
}

SlotMatching DemandScheduler::match_slot(std::vector<std::int64_t>& demand,
                                         std::int32_t max_iterations,
                                         MatchStats& stats) {
  const auto n = static_cast<std::size_t>(nodes_);
  assert(demand.size() == n * n);
  SlotMatching src_to_dst(n, kInvalidNode);
  std::vector<NodeId> dst_to_src(n, kInvalidNode);

  for (std::int32_t it = 0; it < max_iterations; ++it) {
    ++stats.iterations;
    // Request phase: every unmatched source requests one random
    // destination it has demand for (and that is still unmatched).
    std::vector<std::vector<NodeId>> requests(n);
    bool any_request = false;
    for (NodeId s = 0; s < nodes_; ++s) {
      if (src_to_dst[static_cast<std::size_t>(s)] != kInvalidNode) continue;
      // Collect candidate destinations.
      NodeId pick = kInvalidNode;
      std::int32_t count = 0;
      for (NodeId d = 0; d < nodes_; ++d) {
        if (dst_to_src[static_cast<std::size_t>(d)] != kInvalidNode) continue;
        if (demand[static_cast<std::size_t>(s) * n +
                   static_cast<std::size_t>(d)] > 0) {
          ++count;
          if (rng_.below(static_cast<std::uint64_t>(count)) == 0) pick = d;
        }
      }
      if (pick != kInvalidNode) {
        requests[static_cast<std::size_t>(pick)].push_back(s);
        any_request = true;
      }
    }
    if (!any_request) break;

    // Grant/accept phase: each destination grants one requester at random.
    for (NodeId d = 0; d < nodes_; ++d) {
      auto& reqs = requests[static_cast<std::size_t>(d)];
      if (reqs.empty()) continue;
      const NodeId s = reqs[rng_.below(reqs.size())];
      src_to_dst[static_cast<std::size_t>(s)] = d;
      dst_to_src[static_cast<std::size_t>(d)] = s;
      ++stats.matched_pairs;
      auto& cell = demand[static_cast<std::size_t>(s) * n +
                          static_cast<std::size_t>(d)];
      if (cell > 0) {
        --cell;
        ++stats.demand_served;
      }
    }
  }
  return src_to_dst;
}

std::vector<SlotMatching> DemandScheduler::decompose(
    std::vector<std::int64_t> demand, std::int32_t slots,
    std::int32_t max_iterations, MatchStats& stats) {
  std::vector<SlotMatching> out;
  out.reserve(static_cast<std::size_t>(slots));
  for (std::int32_t t = 0; t < slots; ++t) {
    out.push_back(match_slot(demand, max_iterations, stats));
  }
  return out;
}

double DemandScheduler::static_rotation_service(
    const std::vector<std::int64_t>& demand, std::int32_t nodes,
    std::int32_t slots) {
  const auto n = static_cast<std::size_t>(nodes);
  assert(demand.size() == n * n);
  // Each ordered pair is connected floor/ceil(slots/(N-1)) times.
  std::int64_t total = 0;
  std::int64_t served = 0;
  const double per_pair =
      static_cast<double>(slots) / static_cast<double>(nodes - 1);
  for (std::size_t i = 0; i < demand.size(); ++i) {
    total += demand[i];
    served += static_cast<std::int64_t>(
        std::min(static_cast<double>(demand[i]), per_pair));
  }
  return total == 0 ? 1.0
                    : static_cast<double>(served) / static_cast<double>(total);
}

std::vector<std::int64_t> uniform_demand(std::int32_t nodes,
                                         std::int64_t per_pair) {
  const auto n = static_cast<std::size_t>(nodes);
  std::vector<std::int64_t> d(n * n, per_pair);
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0;
  return d;
}

std::vector<std::int64_t> skewed_pairs_demand(std::int32_t nodes,
                                              std::int32_t pairs,
                                              std::int64_t per_pair) {
  assert(pairs * 2 <= nodes);
  const auto n = static_cast<std::size_t>(nodes);
  std::vector<std::int64_t> d(n * n, 0);
  for (std::int32_t k = 0; k < pairs; ++k) {
    const auto src = static_cast<std::size_t>(2 * k);
    const auto dst = static_cast<std::size_t>(2 * k + 1);
    d[src * n + dst] = per_pair;
  }
  return d;
}

std::vector<std::int64_t> hotspot_demand(std::int32_t nodes,
                                         std::int64_t total,
                                         double hot_fraction, Rng& rng) {
  const auto n = static_cast<std::size_t>(nodes);
  std::vector<std::int64_t> d(n * n, 0);
  const auto hot = static_cast<std::int64_t>(total * hot_fraction);
  const NodeId hot_dst = 0;
  for (std::int64_t k = 0; k < total; ++k) {
    NodeId dst = k < hot ? hot_dst
                         : static_cast<NodeId>(rng.below(
                               static_cast<std::uint64_t>(nodes)));
    NodeId src =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
    if (src == dst) src = (src + 1) % nodes;
    ++d[static_cast<std::size_t>(src) * n + static_cast<std::size_t>(dst)];
  }
  return d;
}

}  // namespace sirius::sched
