// On-demand centralized scheduling — the alternative §4.2 rejects.
//
// "One approach is on-demand scheduling, i.e., sending the datacenter
//  demand matrix ... to a scheduler that calculates and assigns
//  communication timeslots ... While such an approach may be viable when
//  optical switching is done at coarse timescales, it is not efficient
//  and practical for Sirius' fast switching at scale."
//
// We implement that strawman faithfully so the claim can be measured: an
// iSLIP-style iterative maximal matcher that decomposes a demand matrix
// into per-slot permutations, plus a control-loop latency model (demand
// collection over the fabric, matching compute, schedule distribution).
// The ablation bench compares its *throughput* against the scheduler-less
// static rotation under uniform and skewed demand, and its *control
// latency* against the 100 ns slot it would have to keep up with.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::sched {

/// A (possibly partial) permutation: out[i] = destination matched to
/// source i in one slot, or kInvalidNode.
using SlotMatching = std::vector<NodeId>;

struct MatchStats {
  std::int64_t matched_pairs = 0;    ///< total matches across all slots
  std::int64_t demand_served = 0;    ///< cells served (<= matched_pairs)
  std::int64_t iterations = 0;       ///< matcher iterations executed
};

/// Iterative maximal-matching scheduler over an N x N demand matrix.
class DemandScheduler {
 public:
  explicit DemandScheduler(std::int32_t nodes, std::uint64_t seed = 1);

  [[nodiscard]] std::int32_t nodes() const { return nodes_; }

  /// One slot's matching over the residual demand (request -> grant ->
  /// accept rounds until maximal or `max_iterations`). Mutates `demand`
  /// by decrementing the served entries.
  SlotMatching match_slot(std::vector<std::int64_t>& demand,
                          std::int32_t max_iterations, MatchStats& stats);

  /// Decomposes `demand` into `slots` matchings.
  std::vector<SlotMatching> decompose(std::vector<std::int64_t> demand,
                                      std::int32_t slots,
                                      std::int32_t max_iterations,
                                      MatchStats& stats);

  /// Fraction of `demand` a static rotation serves in `slots` slots: each
  /// ordered pair gets slots/(N-1) service opportunities (with Valiant
  /// load balancing it is load-independent; here we score the *direct*
  /// rotation to keep the comparison about scheduling, not routing).
  static double static_rotation_service(
      const std::vector<std::int64_t>& demand, std::int32_t nodes,
      std::int32_t slots);

  /// Control-loop latency of the centralized approach: demands travel to
  /// the scheduler, `iterations` matching rounds run at `per_iteration`,
  /// and the schedule travels back.
  static Time control_latency(Time fabric_rtt, std::int64_t iterations,
                              Time per_iteration) {
    return fabric_rtt + per_iteration * iterations;
  }

 private:
  std::int32_t nodes_;
  Rng rng_;
};

/// Demand-matrix helpers for the ablation.
std::vector<std::int64_t> uniform_demand(std::int32_t nodes,
                                         std::int64_t per_pair);
/// `hot_fraction` of all demand targets one destination.
std::vector<std::int64_t> hotspot_demand(std::int32_t nodes,
                                         std::int64_t total,
                                         double hot_fraction, Rng& rng);
/// Demand concentrated on `pairs` disjoint source->destination pairs
/// (`per_pair` cells each): the pattern where on-demand scheduling beats a
/// static rotation by up to (N-1)x — and where Valiant load balancing
/// recovers the gap without a scheduler.
std::vector<std::int64_t> skewed_pairs_demand(std::int32_t nodes,
                                              std::int32_t pairs,
                                              std::int64_t per_pair);

}  // namespace sirius::sched
