#include "workload/generator.hpp"

#include <cassert>
#include <cmath>

namespace sirius::workload {
namespace {

// Mean of min(X, cap) for X ~ Pareto(shape, x_min):
//   E = x_min * (1 + (1 - (x_min/cap)^(shape-1)) / (shape - 1)).
double capped_pareto_mean(double x_min, double shape, double cap) {
  if (x_min >= cap) return cap;
  return x_min *
         (1.0 + (1.0 - std::pow(x_min / cap, shape - 1.0)) / (shape - 1.0));
}

// Solves for the Pareto scale x_min such that the *capped* distribution has
// the requested mean. With shape 1.05 the uncapped mean is dominated by an
// essentially-infinite tail, so without this calibration the offered load
// would be far below the configured L.
double pareto_scale_for_capped_mean(double mean, double shape, double cap) {
  assert(mean < cap);
  double lo = 0.0, hi = mean;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (capped_pareto_mean(mid, shape, cap) < mean) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

Time mean_interarrival_for_load(const GeneratorConfig& cfg) {
  // L = F / (R * N * tau)  =>  tau = F / (R * N * L)
  const double f_bits = static_cast<double>(cfg.mean_flow_size.in_bits());
  const double rn =
      static_cast<double>(cfg.server_rate.bits_per_sec()) * cfg.servers;
  const double tau_sec = f_bits / (rn * cfg.load);
  return Time::from_sec(tau_sec);
}

Workload generate(const GeneratorConfig& cfg) {
  assert(cfg.servers >= 2);
  assert(cfg.load > 0.0);
  assert(cfg.pareto_shape > 1.0);

  Rng rng(cfg.seed);
  // When a cap is set, pick the Pareto scale so that the capped
  // distribution's mean equals cfg.mean_flow_size (otherwise the nominal
  // uncapped parameterisation is used directly).
  double uncapped_mean = static_cast<double>(cfg.mean_flow_size.in_bytes());
  if (cfg.max_flow_size > DataSize::zero()) {
    const double x_min = pareto_scale_for_capped_mean(
        uncapped_mean, cfg.pareto_shape,
        static_cast<double>(cfg.max_flow_size.in_bytes()));
    uncapped_mean = x_min * cfg.pareto_shape / (cfg.pareto_shape - 1.0);
  }
  ParetoDistribution sizes(cfg.pareto_shape, uncapped_mean);
  PoissonProcess arrivals(mean_interarrival_for_load(cfg), rng.fork());

  Workload w;
  w.servers = cfg.servers;
  w.server_rate = cfg.server_rate;
  w.offered_load = cfg.load;
  w.mean_flow_size = cfg.mean_flow_size;
  w.flows.reserve(static_cast<std::size_t>(cfg.flow_count));

  for (std::int64_t i = 0; i < cfg.flow_count; ++i) {
    Flow f;
    f.id = i;
    f.arrival = arrivals.next();
    f.src_server = static_cast<std::int32_t>(
        rng.below(static_cast<std::uint64_t>(cfg.servers)));
    // Destination uniform over the other servers.
    f.dst_server = static_cast<std::int32_t>(
        rng.below(static_cast<std::uint64_t>(cfg.servers - 1)));
    if (f.dst_server >= f.src_server) ++f.dst_server;
    double bytes = sizes.sample(rng);
    if (cfg.max_flow_size > DataSize::zero()) {
      bytes = std::min(bytes,
                       static_cast<double>(cfg.max_flow_size.in_bytes()));
    }
    f.size = DataSize::bytes(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(bytes + 0.5)));
    w.flows.push_back(f);
  }
  return w;
}

}  // namespace sirius::workload
