#include "workload/trace_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace sirius::workload {

bool save_trace_csv(const Workload& w, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("flow_id,src_server,dst_server,size_bytes,arrival_ps\n", f);
  bool ok = true;
  for (const Flow& fl : w.flows) {
    if (std::fprintf(f, "%" PRId64 ",%d,%d,%" PRId64 ",%" PRId64 "\n",
                     static_cast<std::int64_t>(fl.id), fl.src_server,
                     fl.dst_server, fl.size.in_bytes(),
                     fl.arrival.picoseconds()) < 0) {
      ok = false;
      break;
    }
  }
  return std::fclose(f) == 0 && ok;
}

std::optional<Workload> load_trace_csv(const std::string& path,
                                       std::int32_t servers,
                                       DataRate server_rate) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;

  Workload w;
  w.servers = servers;
  w.server_rate = server_rate;

  char line[256];
  bool first = true;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (first) {  // header
      first = false;
      continue;
    }
    std::int64_t id = 0, size = 0, arrival_ps = 0;
    int src = 0, dst = 0;
    if (std::sscanf(line, "%" SCNd64 ",%d,%d,%" SCNd64 ",%" SCNd64, &id, &src,
                    &dst, &size, &arrival_ps) != 5) {
      std::fclose(f);
      return std::nullopt;
    }
    if (src < 0 || src >= servers || dst < 0 || dst >= servers ||
        src == dst || size <= 0 || arrival_ps < 0) {
      std::fclose(f);
      return std::nullopt;
    }
    Flow fl;
    fl.id = id;
    fl.src_server = src;
    fl.dst_server = dst;
    fl.size = DataSize::bytes(size);
    fl.arrival = Time::ps(arrival_ps);
    w.flows.push_back(fl);
  }
  std::fclose(f);

  std::stable_sort(w.flows.begin(), w.flows.end(),
                   [](const Flow& a, const Flow& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < w.flows.size(); ++i) {
    w.flows[i].id = static_cast<FlowId>(i);
  }
  if (!w.flows.empty()) {
    std::int64_t total = 0;
    for (const auto& fl : w.flows) total += fl.size.in_bytes();
    w.mean_flow_size = DataSize::bytes(
        total / static_cast<std::int64_t>(w.flows.size()));
  }
  return w;
}

}  // namespace sirius::workload
