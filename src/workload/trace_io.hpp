// Workload trace persistence: save/load flow sets as CSV so experiments
// can be replayed, exchanged, or replaced with real traces.
//
// Format (one flow per line, header included):
//   flow_id,src_server,dst_server,size_bytes,arrival_ps
#pragma once

#include <optional>
#include <string>

#include "workload/flow.hpp"

namespace sirius::workload {

/// Writes `w` to `path`. Returns false on I/O failure.
bool save_trace_csv(const Workload& w, const std::string& path);

/// Loads a workload from `path`. `servers` and `server_rate` describe the
/// deployment the trace targets (the CSV stores only flows). Flows are
/// sorted by arrival and re-numbered 0..F-1. Returns nullopt on parse or
/// I/O failure.
std::optional<Workload> load_trace_csv(const std::string& path,
                                       std::int32_t servers,
                                       DataRate server_rate);

}  // namespace sirius::workload
