// Synthetic workload generator (§7 "Workload characteristics").
//
// Flow sizes are heavy-tailed Pareto (shape 1.05, mean 100 KB by default):
// most flows are small, most bytes are in large flows. Flows arrive by a
// Poisson process with uniformly random source and destination servers.
// The offered load L = F / (R * N * tau) where F is mean flow size, R the
// per-server rate, N the server count and tau the mean inter-arrival time;
// given L we solve for tau.
#pragma once

#include <cstdint>

#include "common/distributions.hpp"
#include "workload/flow.hpp"

namespace sirius::workload {

struct GeneratorConfig {
  std::int32_t servers = 3072;
  DataRate server_rate = DataRate::gbps(50);
  double load = 0.5;                 ///< L of §7 (1.0 = 100 %)
  double pareto_shape = 1.05;
  DataSize mean_flow_size = DataSize::kilobytes(100);
  std::int64_t flow_count = 200'000;
  std::uint64_t seed = 1;
  /// Cap on a single flow's size; the Pareto(1.05) tail is near-infinite
  /// so production-style traces cap at some maximum transfer. 0 = no cap.
  DataSize max_flow_size = DataSize::megabytes(100);
};

/// Mean inter-arrival time tau that realises load L for the config.
Time mean_interarrival_for_load(const GeneratorConfig& cfg);

/// Generates `cfg.flow_count` flows.
Workload generate(const GeneratorConfig& cfg);

}  // namespace sirius::workload
