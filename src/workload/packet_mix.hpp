// Packet-size mix model for the §2.2 motivation numbers.
//
// The paper's production trace (Mar 2019): >34 % of packets are <128 B and
// 97.8 % are <=576 B; Facebook's in-memory cache shows >91 % <=576 B. This
// module generates a packet-size mix with those marginals and derives the
// switching-overhead arithmetic of §2.2 (an endpoint spraying 576 B packets
// across destinations at 50 Gb/s should reconfigure every ~92 ns, so a
// <10 % overhead needs a guardband under ~9.2 ns).
#pragma once

#include <cstdint>
#include <vector>

#include "common/distributions.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::workload {

/// One band of the packet-size histogram.
struct PacketSizeBand {
  DataSize max_size;   ///< inclusive upper edge of the band
  double probability;  ///< fraction of packets in this band
};

/// A piecewise packet-size distribution (defaults to the §2.2 cloud trace).
class PacketMix {
 public:
  /// The production-trace mix of §2.2: 34 % < 128 B, 63.8 % in (128, 576],
  /// 2.2 % larger (up to 1500 B MTU).
  static PacketMix cloud_trace_2019();

  /// The Facebook in-memory-cache mix [80]: 91 % <= 576 B.
  static PacketMix memcached();

  explicit PacketMix(std::vector<PacketSizeBand> bands);

  /// Samples one packet size (uniform within the chosen band).
  [[nodiscard]] DataSize sample(Rng& rng) const;

  /// Fraction of packets at or below `s`.
  [[nodiscard]] double fraction_at_or_below(DataSize s) const;

  const std::vector<PacketSizeBand>& bands() const { return bands_; }

 private:
  std::vector<PacketSizeBand> bands_;
};

/// §2.2 arithmetic: time to serialise one `packet` at `rate` — the interval
/// between destination switches for a high-fanout sender.
Time switch_interval(DataSize packet, DataRate rate);

/// §2.2 arithmetic: maximum reconfiguration time that keeps switching
/// overhead below `max_overhead` for back-to-back `packet`-sized transfers.
Time max_guardband_for_overhead(DataSize packet, DataRate rate,
                                double max_overhead);

}  // namespace sirius::workload
