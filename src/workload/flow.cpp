#include "workload/flow.hpp"

// Header-only; this TU anchors the library.
