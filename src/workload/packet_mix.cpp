#include "workload/packet_mix.hpp"

#include <cassert>
#include <cmath>

namespace sirius::workload {

PacketMix PacketMix::cloud_trace_2019() {
  return PacketMix({
      {DataSize::bytes(128), 0.340},
      {DataSize::bytes(576), 0.638},
      {DataSize::bytes(1500), 0.022},
  });
}

PacketMix PacketMix::memcached() {
  return PacketMix({
      {DataSize::bytes(128), 0.45},
      {DataSize::bytes(576), 0.46},
      {DataSize::bytes(1500), 0.09},
  });
}

PacketMix::PacketMix(std::vector<PacketSizeBand> bands)
    : bands_(std::move(bands)) {
  assert(!bands_.empty());
  double total = 0.0;
  for (const auto& b : bands_) total += b.probability;
  assert(std::fabs(total - 1.0) < 1e-9);
}

DataSize PacketMix::sample(Rng& rng) const {
  double u = rng.uniform();
  DataSize lo = DataSize::bytes(64);  // minimum Ethernet frame
  for (const auto& b : bands_) {
    if (u < b.probability) {
      const auto span = b.max_size.in_bytes() - lo.in_bytes();
      return DataSize::bytes(
          lo.in_bytes() +
          static_cast<std::int64_t>(rng.below(
              static_cast<std::uint64_t>(std::max<std::int64_t>(1, span)))));
    }
    u -= b.probability;
    lo = b.max_size;
  }
  return bands_.back().max_size;
}

double PacketMix::fraction_at_or_below(DataSize s) const {
  double f = 0.0;
  for (const auto& b : bands_) {
    if (b.max_size <= s) {
      f += b.probability;
    }
  }
  return f;
}

Time switch_interval(DataSize packet, DataRate rate) {
  return rate.transmission_time(packet);
}

Time max_guardband_for_overhead(DataSize packet, DataRate rate,
                                double max_overhead) {
  assert(max_overhead > 0.0 && max_overhead < 1.0);
  // §2.2 counts overhead relative to the data portion: g / data <= h
  // (576 B at 50 Gbps with h = 10 % gives the paper's 9.2 ns bound).
  const double data_ps =
      static_cast<double>(switch_interval(packet, rate).picoseconds());
  return Time::ps(static_cast<std::int64_t>(data_ps * max_overhead));
}

}  // namespace sirius::workload
