// Flow representation shared by the Sirius and ESN simulators.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::workload {

/// One network flow: `size` bytes from `src` to `dst`, arriving at `arrival`.
/// Endpoints are *servers*; the simulators map servers onto racks/nodes.
struct Flow {
  FlowId id = 0;
  std::int32_t src_server = 0;
  std::int32_t dst_server = 0;
  DataSize size;
  Time arrival;
};

/// A complete generated workload plus the parameters that produced it.
struct Workload {
  std::vector<Flow> flows;       ///< sorted by arrival time
  std::int32_t servers = 0;
  DataRate server_rate;
  double offered_load = 0.0;     ///< the L of §7
  DataSize mean_flow_size;

  [[nodiscard]] DataSize total_bytes() const {
    DataSize sum;
    for (const auto& f : flows) sum += f.size;
    return sum;
  }
  /// Time of the last flow arrival.
  [[nodiscard]] Time last_arrival() const {
    return flows.empty() ? Time::zero() : flows.back().arrival;
  }
};

}  // namespace sirius::workload
