// Reed-Solomon forward error correction over GF(2^8).
//
// Optical links in Sirius run at a raw BER around the FEC threshold
// (2.4e-4 at the -8 dBm sensitivity, Fig. 8d) and rely on a hard-decision
// RS code — the 400GBASE ecosystem uses RS(544,514) over 10-bit symbols
// ("KP4"); we implement the byte-symbol equivalent RS(n, k) over GF(256),
// shortened as needed, with the classic decoder chain:
//   syndromes -> Berlekamp-Massey -> Chien search -> Forney algorithm.
// A code with n-k = 2t parity symbols corrects up to t symbol errors per
// codeword, which turns threshold-level raw BER into a post-FEC BER below
// 1e-12 — the "error-free" operation the prototype demonstrates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/gf256.hpp"

namespace sirius::fec {

/// An RS(n, k) codec with byte symbols; n <= 255, n - k even.
class ReedSolomon {
 public:
  /// `n` total symbols per codeword, `k` data symbols.
  ReedSolomon(std::int32_t n, std::int32_t k);

  /// The KP4-like profile used by the link benches: 30 parity symbols
  /// protect 224 data bytes (t = 15), comparable correction strength per
  /// symbol to RS(544,514)'s t = 15.
  static ReedSolomon kp4_like() { return ReedSolomon(254, 224); }

  [[nodiscard]] std::int32_t n() const { return n_; }
  [[nodiscard]] std::int32_t k() const { return k_; }
  /// Maximum correctable symbol errors per codeword.
  [[nodiscard]] std::int32_t t() const { return (n_ - k_) / 2; }
  /// Code rate k/n.
  [[nodiscard]] double rate() const { return static_cast<double>(k_) / n_; }

  /// Encodes `data` (exactly k bytes) into an n-byte systematic codeword
  /// (data first, parity appended).
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const;

  /// Decodes an n-byte received word. Returns the corrected k data bytes,
  /// or nullopt if more than t errors were detected (decoding failure).
  std::optional<std::vector<std::uint8_t>> decode(
      std::span<const std::uint8_t> received) const;

  /// Number of symbol errors corrected by the last successful decode.
  [[nodiscard]] std::int32_t last_corrections() const { return last_corrections_; }

 private:
  std::vector<std::uint8_t> syndromes(
      std::span<const std::uint8_t> received) const;

  std::int32_t n_;
  std::int32_t k_;
  std::vector<std::uint8_t> generator_;  // degree n-k, lowest-first
  mutable std::int32_t last_corrections_ = 0;
};

}  // namespace sirius::fec
