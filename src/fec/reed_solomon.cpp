#include "fec/reed_solomon.hpp"

#include <algorithm>
#include <cassert>

namespace sirius::fec {
namespace {

using G = Gf256;

// Polynomial helpers; coefficients are stored lowest-degree first.
std::vector<std::uint8_t> poly_mul(const std::vector<std::uint8_t>& a,
                                   const std::vector<std::uint8_t>& b) {
  std::vector<std::uint8_t> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = G::add(out[i + j], G::mul(a[i], b[j]));
    }
  }
  return out;
}

}  // namespace

ReedSolomon::ReedSolomon(std::int32_t n, std::int32_t k) : n_(n), k_(k) {
  assert(n_ > k_ && k_ > 0 && n_ <= 255);
  assert((n_ - k_) % 2 == 0 && "parity count must be even (2t)");
  // Generator g(x) = prod_{i=0}^{2t-1} (x - alpha^i).
  generator_ = {1};
  for (std::int32_t i = 0; i < n_ - k_; ++i) {
    generator_ = poly_mul(generator_, {G::exp(i), 1});
  }
}

std::vector<std::uint8_t> ReedSolomon::encode(
    std::span<const std::uint8_t> data) const {
  assert(static_cast<std::int32_t>(data.size()) == k_);
  const std::int32_t parity = n_ - k_;
  // Systematic encoding: remainder of data(x) * x^parity mod g(x),
  // computed with an LFSR.
  std::vector<std::uint8_t> rem(static_cast<std::size_t>(parity), 0);
  for (std::int32_t i = k_ - 1; i >= 0; --i) {
    const std::uint8_t feedback =
        G::add(data[static_cast<std::size_t>(i)], rem.back());
    for (std::int32_t j = parity - 1; j > 0; --j) {
      rem[static_cast<std::size_t>(j)] =
          G::add(rem[static_cast<std::size_t>(j - 1)],
                 G::mul(feedback, generator_[static_cast<std::size_t>(j)]));
    }
    rem[0] = G::mul(feedback, generator_[0]);
  }
  std::vector<std::uint8_t> out(data.begin(), data.end());
  // Parity appended highest-degree-first so that the codeword viewed as a
  // polynomial is c(x) = data(x) * x^parity + rem(x).
  out.insert(out.end(), rem.rbegin(), rem.rend());
  return out;
}

std::vector<std::uint8_t> ReedSolomon::syndromes(
    std::span<const std::uint8_t> received) const {
  // Codeword symbol order: received[0] is the highest-degree coefficient
  // after our append order: c = [d_{k-1} ... d_0 | p_{2t-1} ... p_0] read
  // as coefficients n-1 ... 0. Our encode() put data in natural order, so
  // coefficient of x^{n-1-i} is received[... ]; we simply evaluate with
  // the matching convention below.
  const std::int32_t parity = n_ - k_;
  std::vector<std::uint8_t> s(static_cast<std::size_t>(parity), 0);
  for (std::int32_t i = 0; i < parity; ++i) {
    // S_i = c(alpha^i) with c's coefficients ordered as stored: data[j]
    // is the coefficient of x^{parity + (j)} ... see encode(); evaluate
    // directly.
    std::uint8_t acc = 0;
    // Parity part: received[k_ + m] is coefficient x^{parity-1-m}.
    for (std::int32_t m = 0; m < parity; ++m) {
      const std::uint8_t coef = received[static_cast<std::size_t>(k_ + m)];
      acc = G::add(acc, G::mul(coef, G::exp(i * (parity - 1 - m))));
    }
    // Data part: received[j] is coefficient x^{parity + j}.
    for (std::int32_t j = 0; j < k_; ++j) {
      const std::uint8_t coef = received[static_cast<std::size_t>(j)];
      acc = G::add(acc, G::mul(coef, G::exp(i * (parity + j))));
    }
    s[static_cast<std::size_t>(i)] = acc;
  }
  return s;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode(
    std::span<const std::uint8_t> received) const {
  assert(static_cast<std::int32_t>(received.size()) == n_);
  last_corrections_ = 0;

  const auto synd = syndromes(received);
  if (std::all_of(synd.begin(), synd.end(),
                  [](std::uint8_t v) { return v == 0; })) {
    return std::vector<std::uint8_t>(received.begin(), received.begin() + k_);
  }

  // Berlekamp–Massey: find the error-locator polynomial sigma(x).
  std::vector<std::uint8_t> sigma = {1};
  std::vector<std::uint8_t> prev = {1};
  std::uint8_t prev_discrepancy = 1;
  std::int32_t m = 1;
  std::int32_t errors = 0;
  for (std::int32_t i = 0; i < n_ - k_; ++i) {
    std::uint8_t d = synd[static_cast<std::size_t>(i)];
    for (std::size_t j = 1; j < sigma.size(); ++j) {
      if (static_cast<std::int32_t>(i) >= static_cast<std::int32_t>(j)) {
        d = G::add(d, G::mul(sigma[j],
                             synd[static_cast<std::size_t>(i) - j]));
      }
    }
    if (d == 0) {
      ++m;
      continue;
    }
    if (2 * errors <= i) {
      auto old_sigma = sigma;
      // sigma -= (d / prev_d) * x^m * prev
      const std::uint8_t scale = G::div(d, prev_discrepancy);
      std::vector<std::uint8_t> shift(static_cast<std::size_t>(m), 0);
      shift.insert(shift.end(), prev.begin(), prev.end());
      if (shift.size() > sigma.size()) sigma.resize(shift.size(), 0);
      for (std::size_t j = 0; j < shift.size(); ++j) {
        sigma[j] = G::add(sigma[j], G::mul(scale, shift[j]));
      }
      errors = i + 1 - errors;
      prev = old_sigma;
      prev_discrepancy = d;
      m = 1;
    } else {
      const std::uint8_t scale = G::div(d, prev_discrepancy);
      std::vector<std::uint8_t> shift(static_cast<std::size_t>(m), 0);
      shift.insert(shift.end(), prev.begin(), prev.end());
      if (shift.size() > sigma.size()) sigma.resize(shift.size(), 0);
      for (std::size_t j = 0; j < shift.size(); ++j) {
        sigma[j] = G::add(sigma[j], G::mul(scale, shift[j]));
      }
      ++m;
    }
  }
  while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
  const auto num_errors = static_cast<std::int32_t>(sigma.size()) - 1;
  if (num_errors > t()) return std::nullopt;

  // Chien search: roots of sigma give error positions. With our symbol
  // ordering, position j (coefficient power p_j) has locator alpha^{p_j}.
  std::vector<std::int32_t> error_pows;
  for (std::int32_t p = 0; p < n_; ++p) {
    // Is alpha^{-p} a root? Equivalent: sigma(alpha^{-p}) == 0.
    if (G::poly_eval(sigma, G::exp(-p)) == 0) {
      error_pows.push_back(p);
    }
  }
  if (static_cast<std::int32_t>(error_pows.size()) != num_errors) {
    return std::nullopt;  // locator does not split: uncorrectable
  }

  // Forney: error magnitudes from the evaluator omega = S * sigma mod
  // x^{2t}.
  std::vector<std::uint8_t> omega(static_cast<std::size_t>(n_ - k_), 0);
  for (std::size_t i = 0; i < omega.size(); ++i) {
    std::uint8_t acc = 0;
    for (std::size_t j = 0; j <= i && j < sigma.size(); ++j) {
      acc = G::add(acc, G::mul(sigma[j], synd[i - j]));
    }
    omega[i] = acc;
  }
  // sigma'(x): formal derivative (odd-power coefficients).
  std::vector<std::uint8_t> sigma_deriv;
  for (std::size_t j = 1; j < sigma.size(); j += 2) {
    sigma_deriv.resize(j, 0);
    sigma_deriv[j - 1] = sigma[j];
  }
  if (sigma_deriv.empty()) return std::nullopt;

  std::vector<std::uint8_t> corrected(received.begin(), received.end());
  for (const std::int32_t p : error_pows) {
    const std::uint8_t x_inv = G::exp(-p);
    // Forney with first consecutive root alpha^0: the magnitude carries an
    // extra X_j = alpha^p factor.
    const std::uint8_t num = G::mul(G::exp(p), G::poly_eval(omega, x_inv));
    const std::uint8_t den = G::poly_eval(sigma_deriv, x_inv);
    if (den == 0) return std::nullopt;
    const std::uint8_t magnitude = G::div(num, den);
    // Map coefficient power p back to the storage index (see syndromes()):
    // data[j] holds power parity+j; parity[m] holds power parity-1-m.
    const std::int32_t parity = n_ - k_;
    std::int32_t idx;
    if (p >= parity) {
      idx = p - parity;  // data region
    } else {
      idx = k_ + (parity - 1 - p);  // parity region
    }
    corrected[static_cast<std::size_t>(idx)] =
        G::add(corrected[static_cast<std::size_t>(idx)], magnitude);
  }
  // Verify: recompute syndromes on the corrected word.
  const auto check = syndromes(corrected);
  if (!std::all_of(check.begin(), check.end(),
                   [](std::uint8_t v) { return v == 0; })) {
    return std::nullopt;
  }
  last_corrections_ = num_errors;
  return std::vector<std::uint8_t>(corrected.begin(), corrected.begin() + k_);
}

}  // namespace sirius::fec
