// Arithmetic over GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the conventional field for byte-oriented Reed-Solomon codes.
//
// Implemented with log/antilog tables built once at static-init time:
// multiplication and division are two lookups and one add — fast enough
// that the Monte-Carlo FEC benches run millions of codewords.
#pragma once

#include <array>
#include <cstdint>

namespace sirius::fec {

class Gf256 {
 public:
  /// a + b (= a - b) in GF(2^8).
  static constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;
  }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return exp_[(log_[a] + log_[b]) % 255];
  }

  /// a / b; b must be nonzero.
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);

  /// Multiplicative inverse; x must be nonzero.
  static std::uint8_t inv(std::uint8_t x);

  /// alpha^p for the primitive element alpha = 0x02.
  static std::uint8_t exp(std::int32_t p) {
    p %= 255;
    if (p < 0) p += 255;
    return exp_[p];
  }

  /// Discrete log base alpha; x must be nonzero.
  static std::int32_t log(std::uint8_t x);

  /// Evaluates polynomial `poly` (coefficients lowest-degree first) at x.
  template <typename Container>
  static std::uint8_t poly_eval(const Container& poly, std::uint8_t x) {
    std::uint8_t y = 0;
    for (auto it = poly.rbegin(); it != poly.rend(); ++it) {
      y = add(mul(y, x), *it);
    }
    return y;
  }

 private:
  struct Tables {
    std::array<std::uint8_t, 255> exp;
    std::array<std::int32_t, 256> log;
  };
  static Tables make_tables();
  static const std::array<std::uint8_t, 255> exp_;
  static const std::array<std::int32_t, 256> log_;
};

}  // namespace sirius::fec
