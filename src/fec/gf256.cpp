#include "fec/gf256.hpp"

#include <cassert>

namespace sirius::fec {

Gf256::Tables Gf256::make_tables() {
  Tables t{};
  std::uint32_t x = 1;
  for (std::int32_t i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[x] = i;
    x <<= 1;
    if (x & 0x100u) x ^= 0x11d;
  }
  t.log[0] = -1;  // undefined; guarded by callers
  return t;
}

const std::array<std::uint8_t, 255> Gf256::exp_ = Gf256::make_tables().exp;
const std::array<std::int32_t, 256> Gf256::log_ = Gf256::make_tables().log;

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  return exp_[static_cast<std::size_t>((log_[a] - log_[b] + 255) % 255)];
}

std::uint8_t Gf256::inv(std::uint8_t x) {
  assert(x != 0);
  return exp_[static_cast<std::size_t>((255 - log_[x]) % 255)];
}

std::int32_t Gf256::log(std::uint8_t x) {
  assert(x != 0);
  return log_[x];
}

}  // namespace sirius::fec
