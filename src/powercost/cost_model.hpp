// Network cost model (§5, Fig. 6b).
//
// Component prices follow the paper: a 25.6 Tbps switch costs ~$5,000
// (optimistic), transceivers $1/Gbps. Gratings, fabricated as etchings at
// volume, are estimated below 25 % of an electrical switch; the fast
// tunable laser costs ~3x (error bars to 5x) a fixed laser, where the
// laser is a minority share of total transceiver cost (packaged chip area
// and power serve as first-order proxies, §5).
//
// The same path accounting as the power model applies. Reported claims:
// Sirius costs ~28 % of a non-blocking ESN (grating at 25 %, laser at 3x),
// ~53 % of a 3:1 oversubscribed ESN, and ~55 % of an electrically-switched
// Sirius variant (same flat topology, gratings replaced by switches).
#pragma once

#include <cstdint>

namespace sirius::powercost {

struct CostModelConfig {
  double switch_cost = 5'000.0;        ///< 25.6 Tbps switch
  double switch_tbps = 25.6;
  double transceiver_cost_per_gbps = 1.0;
  /// Laser's share of a standard transceiver's cost.
  double laser_cost_fraction = 0.18;
  std::int32_t esn_tiers = 4;
  double sirius_uplink_factor = 1.5;
  double sirius_tor_traversals = 1.0;
  /// Gratings traversed per Sirius path.
  double gratings_per_path = 1.0;
};

class CostModel {
 public:
  explicit CostModel(CostModelConfig cfg = {}) : cfg_(cfg) {}

  const CostModelConfig& config() const { return cfg_; }

  [[nodiscard]] double switch_cost_per_tbps() const {
    return cfg_.switch_cost / cfg_.switch_tbps;
  }
  [[nodiscard]] double transceiver_cost_per_tbps() const {
    return cfg_.transceiver_cost_per_gbps * 1'000.0;
  }

  /// $/Tbps for a non-blocking folded-Clos ESN.
  [[nodiscard]] double esn_cost_per_tbps() const;

  /// $/Tbps for an ESN with `oversub`:1 oversubscription above the ToR
  /// tier (the aggregation tier and up are thinned by the factor).
  [[nodiscard]] double esn_oversubscribed_cost_per_tbps(double oversub) const;

  /// $/Tbps for Sirius with gratings costing `grating_cost_fraction` of an
  /// electrical switch and tunable lasers costing `laser_mult` x fixed.
  [[nodiscard]] double sirius_cost_per_tbps(double grating_cost_fraction,
                              double laser_mult) const;

  /// $/Tbps for the electrically-switched Sirius variant: the flat Sirius
  /// topology and routing, but with the grating layer replaced by
  /// electrical switches plus the extra transceivers they require.
  [[nodiscard]] double electrical_sirius_cost_per_tbps() const;

  /// Fig. 6b, solid series: Sirius / non-blocking ESN.
  [[nodiscard]] double cost_ratio_nonblocking(double grating_cost_fraction,
                                double laser_mult) const {
    return sirius_cost_per_tbps(grating_cost_fraction, laser_mult) /
           esn_cost_per_tbps();
  }

  /// Fig. 6b, dashed series: Sirius / 3:1-oversubscribed ESN.
  [[nodiscard]] double cost_ratio_oversubscribed(double grating_cost_fraction,
                                   double laser_mult,
                                   double oversub = 3.0) const {
    return sirius_cost_per_tbps(grating_cost_fraction, laser_mult) /
           esn_oversubscribed_cost_per_tbps(oversub);
  }

 private:
  [[nodiscard]] double tunable_transceiver_cost_per_tbps(double laser_mult) const;

  CostModelConfig cfg_;
};

}  // namespace sirius::powercost
