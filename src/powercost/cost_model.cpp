#include "powercost/cost_model.hpp"

#include <cassert>

namespace sirius::powercost {

double CostModel::esn_cost_per_tbps() const {
  const double switches = 2.0 * cfg_.esn_tiers - 1.0;
  const double transceivers = 4.0 * cfg_.esn_tiers - 2.0;
  return switches * switch_cost_per_tbps() +
         transceivers * transceiver_cost_per_tbps();
}

double CostModel::esn_oversubscribed_cost_per_tbps(double oversub) const {
  assert(oversub >= 1.0);
  // The ToR tier (2 traversals, server links + ToR uplinks: 6 transceivers)
  // is provisioned in full; the aggregation tier and above are thinned by
  // the oversubscription factor. Cost is per Tbps of *server* bandwidth —
  // the oversubscribed fabric is cheaper but offers less bisection, which
  // is exactly the trade-off Fig. 6b's second series captures.
  const double tor_cost =
      2.0 * switch_cost_per_tbps() + 6.0 * transceiver_cost_per_tbps();
  const double upper_switches = 2.0 * cfg_.esn_tiers - 3.0;
  const double upper_transceivers = 4.0 * cfg_.esn_tiers - 8.0;
  const double upper_cost = upper_switches * switch_cost_per_tbps() +
                            upper_transceivers * transceiver_cost_per_tbps();
  return tor_cost + upper_cost / oversub;
}

double CostModel::tunable_transceiver_cost_per_tbps(double laser_mult) const {
  assert(laser_mult >= 1.0);
  const double mult =
      1.0 + (laser_mult - 1.0) * cfg_.laser_cost_fraction;
  return transceiver_cost_per_tbps() * mult;
}

double CostModel::sirius_cost_per_tbps(double grating_cost_fraction,
                                       double laser_mult) const {
  assert(grating_cost_fraction > 0.0);
  return cfg_.sirius_tor_traversals * switch_cost_per_tbps() +
         cfg_.gratings_per_path * grating_cost_fraction *
             switch_cost_per_tbps() +
         2.0 * cfg_.sirius_uplink_factor *
             tunable_transceiver_cost_per_tbps(laser_mult);
}

double CostModel::electrical_sirius_cost_per_tbps() const {
  // Same flat topology and uplink factor, but the grating becomes a full
  // electrical switch and each switch port needs its own transceiver, so
  // the transceiver count per path doubles (rack side + switch side) and
  // the optics are standard (laser_mult = 1).
  return cfg_.sirius_tor_traversals * switch_cost_per_tbps() +
         switch_cost_per_tbps() +
         4.0 * cfg_.sirius_uplink_factor * transceiver_cost_per_tbps();
}

}  // namespace sirius::powercost
