#include "powercost/power_model.hpp"

#include <cassert>

namespace sirius::powercost {

double PowerModel::esn_power_per_tbps(std::int32_t tiers) const {
  assert(tiers >= 0);
  if (tiers == 0) {
    // Direct fiber: one transceiver at each end.
    return 2.0 * transceiver_watts_per_tbps();
  }
  const double switches = 2.0 * tiers - 1.0;        // path traversals
  const double transceivers = 4.0 * tiers - 2.0;    // per path bandwidth
  return switches * switch_watts_per_tbps() +
         transceivers * transceiver_watts_per_tbps();
}

std::int32_t PowerModel::tiers_for_endpoints(std::int64_t endpoints,
                                             std::int32_t radix) {
  assert(radix >= 2);
  if (endpoints <= 2) return 0;
  std::int64_t reach = radix;
  std::int32_t tiers = 1;
  while (reach < endpoints) {
    reach *= radix / 2;
    ++tiers;
  }
  return tiers;
}

double PowerModel::parallel_planes_ratio(double tunable_ratio,
                                         double bandwidth_multiple) const {
  assert(bandwidth_multiple >= 1.0);
  // Sirius planes: W/Tbps is constant — parallelism is free in efficiency.
  const double sirius = sirius_power_per_tbps(tunable_ratio);
  // The ESN must grow: if the electrical switch generation stalls
  // (post-Moore), more bandwidth means another tier of hierarchy once the
  // multiple exceeds what a tier's radix absorbs (~every 2x at fixed
  // radix growth 0). We charge one extra tier per 4x of bandwidth.
  std::int32_t tiers = cfg_.esn_tiers;
  for (double m = bandwidth_multiple; m > 2.0; m /= 4.0) ++tiers;
  return sirius / esn_power_per_tbps(tiers);
}

double PowerModel::sirius_power_per_tbps(double tunable_ratio) const {
  assert(tunable_ratio >= 1.0);
  // Tunable transceiver = standard transceiver electronics plus a laser
  // consuming tunable_ratio x the fixed laser.
  const double tunable_transceiver_watts =
      cfg_.transceiver_watts + (tunable_ratio - 1.0) * cfg_.fixed_laser_watts;
  const double per_tbps = tunable_transceiver_watts / cfg_.transceiver_tbps;
  // Path: ToR traversal(s), a passive grating (0 W), and two tunable
  // transceivers; the uplink factor scales the transceiver count per unit
  // of usable bandwidth.
  return cfg_.sirius_tor_traversals * switch_watts_per_tbps() +
         2.0 * cfg_.sirius_uplink_factor * per_tbps;
}

}  // namespace sirius::powercost
