// Network power model (§2 Fig. 2a, §5 Fig. 6a).
//
// Accounting follows the paper's component numbers: a 25.6 Tbps electrical
// switch consumes 500 W; a 400 Gbps transceiver consumes 10 W, of which
// ~1 W is the fixed laser. An end-to-end path through an L-tier folded
// Clos crosses 2L-1 switches and 2L links; the two server-attach links
// carry one optical transceiver each and every inter-switch link carries
// two, i.e. 4L-2 transceivers per unit of path bandwidth. This reproduces
// Fig. 2a exactly: 50 W/Tbps for direct fiber and 487 W/Tbps at 4 tiers.
//
// Sirius replaces the hierarchy with a passive grating layer (0 W): a path
// is one ToR traversal plus 2 tunable transceivers, multiplied by the
// load-balancing uplink factor (1.5x, §7). A tunable laser consuming
// kappa x the fixed laser's power raises each transceiver by
// (kappa-1) x 1 W. At kappa = 3..5 the Sirius/ESN ratio is 23-26 %
// (the abstract's "74-77 % lower power").
#pragma once

#include <cstdint>

namespace sirius::powercost {

struct PowerModelConfig {
  double switch_watts = 500.0;          ///< 25.6 Tbps ASIC + chassis
  double switch_tbps = 25.6;
  double transceiver_watts = 10.0;      ///< 400 Gbps optics
  double transceiver_tbps = 0.4;
  double fixed_laser_watts = 1.0;       ///< laser share of the transceiver
  std::int32_t esn_tiers = 4;           ///< large datacenter (2M endpoints)
  double sirius_uplink_factor = 1.5;    ///< load-balancing headroom (§7)
  double sirius_tor_traversals = 1.0;   ///< rack-switch hops charged/path
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelConfig cfg = {}) : cfg_(cfg) {}

  const PowerModelConfig& config() const { return cfg_; }

  [[nodiscard]] double switch_watts_per_tbps() const {
    return cfg_.switch_watts / cfg_.switch_tbps;
  }
  [[nodiscard]] double transceiver_watts_per_tbps() const {
    return cfg_.transceiver_watts / cfg_.transceiver_tbps;
  }

  /// Fig. 2a: W/Tbps of bisection bandwidth for an electrically-switched
  /// folded Clos with `tiers` switch tiers (0 = direct fiber).
  [[nodiscard]] double esn_power_per_tbps(std::int32_t tiers) const;

  /// Switch tiers needed for `endpoints` endpoints at `radix` ports per
  /// switch — the x-axis mapping of Fig. 2a (2 -> 0, 64 -> 1, 2K -> 2,
  /// 65K -> 3, 2M -> 4 with radix 64).
  static std::int32_t tiers_for_endpoints(std::int64_t endpoints,
                                          std::int32_t radix = 64);

  /// W/Tbps for Sirius when the tunable laser consumes `tunable_ratio` x
  /// the power of a fixed laser (Fig. 6a x-axis).
  [[nodiscard]] double sirius_power_per_tbps(double tunable_ratio) const;

  /// Fig. 6a: Sirius power / non-blocking-ESN power.
  [[nodiscard]] double power_ratio(double tunable_ratio) const {
    return sirius_power_per_tbps(tunable_ratio) /
           esn_power_per_tbps(cfg_.esn_tiers);
  }

  /// §4.5 "parallel networks": k independent Sirius planes multiply
  /// bandwidth at constant W/Tbps (the passive core adds no power), while
  /// an ESN that scales bandwidth by adding hierarchy pays the next tier's
  /// scale tax. Returns Sirius-planes power / ESN power when both deliver
  /// `bandwidth_multiple` x today's per-node bandwidth.
  [[nodiscard]] double parallel_planes_ratio(double tunable_ratio,
                               double bandwidth_multiple) const;

 private:
  PowerModelConfig cfg_;
};

}  // namespace sirius::powercost
