// Sirius congestion control (§4.3, Fig. 15): a distributed, DRRM-like
// request/grant protocol that bounds queuing at intermediate nodes.
//
// Queuing arises when several nodes relay cells for the same destination D
// through the same intermediate I during one epoch: I can forward only one
// cell to D per epoch, so the rest wait. The protocol caps that backlog at
// Q cells per (intermediate, destination):
//
//   * Every epoch, a source sends at most one REQUEST to each intermediate
//     (picked uniformly at random per queued cell) asking to relay a cell
//     for some destination D.
//   * Every epoch, each intermediate picks one request per destination D
//     (uniformly among those received last epoch) and GRANTS it iff
//     queued(D) + outstanding_grants(D) < Q.
//   * A grant moves one cell for D from the source's LOCAL buffer into the
//     virtual queue towards I, to be transmitted at the next (source, I)
//     slot. If the source no longer holds a cell for D, it releases the
//     grant so the intermediate's accounting stays exact.
//
// Requests, grants and releases are piggybacked on the cyclic cells, so the
// protocol adds no network overhead — only an initial epoch of latency.
//
// This class is the per-node protocol state machine; the simulator moves
// the message lists between nodes and owns the actual cell queues.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/io.hpp"
#include "common/hot_path.hpp"
#include "common/invariant.hpp"
#include "common/rng.hpp"
#include "common/thread_safety.hpp"
#include "common/units.hpp"

namespace sirius::cc {

/// A request: `src` asks the receiving intermediate for permission to relay
/// one cell destined to `dst`.
struct Request {
  NodeId src;
  NodeId dst;
};

/// A grant: intermediate `intermediate` permits source `to` to send one
/// cell for `dst` through it.
struct Grant {
  NodeId intermediate;
  NodeId to;
  NodeId dst;
};

/// How a source spreads its per-cell requests over intermediates.
enum class SpreadPolicy {
  /// Uniformly random (the literal reading of §4.3). Single-shot random
  /// matching loses ~1-1/e of grant opportunities to destination
  /// collisions at the intermediates, capping goodput well below the
  /// schedule's capacity at high load.
  kRandom,
  /// DRRM-style desynchronised assignment: the first request for each
  /// distinct destination D goes to intermediate (D + self + epoch) mod N,
  /// which rotates over epochs (fairness, like DRRM's round-robin
  /// pointers) and guarantees that the first-choice requests arriving at
  /// any intermediate all carry distinct destinations — eliminating the
  /// collision loss. Additional cells for an already-requested D fall back
  /// to random unused intermediates.
  kDesynchronized,
};

struct RequestGrantConfig {
  std::int32_t nodes = 0;       ///< total nodes in the network
  std::int32_t queue_limit = 4; ///< Q: max cells queued per destination
  SpreadPolicy spread = SpreadPolicy::kDesynchronized;
};

/// Per-node protocol state (both roles: source and intermediate).
///
/// Grant accounting is slot-core state: every mutating entry point requires
/// common::sim_slot_role, so the future sharded slot loop cannot touch a
/// node's protocol state from the wrong shard without a compile error.
class RequestGrantNode {
 public:
  RequestGrantNode(NodeId self, const RequestGrantConfig& cfg);

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::int32_t queue_limit() const { return cfg_.queue_limit; }

  // ---- intermediate role -------------------------------------------------

  /// Buffers a request received during the current epoch.
  SIRIUS_HOT void receive_request(const Request& r)
      SIRIUS_REQUIRES(common::sim_slot_role) {
    SIRIUS_INVARIANT(r.dst >= 0 && r.dst < cfg_.nodes && r.src >= 0 &&
                         r.src < cfg_.nodes,
                     "request %d -> %d outside the %d-node network", r.src,
                     r.dst, cfg_.nodes);
    if (r.dst < 0 || r.dst >= cfg_.nodes || r.src < 0 || r.src >= cfg_.nodes) {
      return;
    }
    inbox_.push_back(r);
  }

  /// Epoch boundary: selects one buffered request per destination at
  /// random and issues grants subject to the queue bound.
  /// `queued_for(dst)` must return the current relay-queue depth for dst.
  template <typename QueuedFn>
  SIRIUS_HOT std::vector<Grant> issue_grants(QueuedFn&& queued_for, Rng& rng)
      SIRIUS_REQUIRES(common::sim_slot_role) {
    shuffle_inbox(rng);
    std::vector<Grant> grants;
    grants.reserve(inbox_.size());
    for (const Request& r : inbox_) {
      // Never grant towards, or to, a node this intermediate believes dead
      // (§4.5): the cell would blackhole on arrival. Stale requests from a
      // source excluded after it asked are dropped the same way.
      if (excluded_[static_cast<std::size_t>(r.dst)] != 0 ||
          excluded_[static_cast<std::size_t>(r.src)] != 0) {
        continue;
      }
      if (picked_this_epoch_[static_cast<std::size_t>(r.dst)]) continue;
      picked_this_epoch_[static_cast<std::size_t>(r.dst)] = true;
      auto& out = outstanding_[static_cast<std::size_t>(r.dst)];
      if (queued_for(r.dst) + out < cfg_.queue_limit) {
        ++out;
        SIRIUS_INVARIANT(out <= cfg_.queue_limit,
                         "node %d: %d outstanding grants for dst %d exceed "
                         "Q=%d",
                         self_, out, r.dst, cfg_.queue_limit);
        grants.push_back(Grant{self_, r.src, r.dst});
        ++stat_grants_;
      } else {
        ++stat_denied_q_;
      }
    }
    stat_requests_ += static_cast<std::int64_t>(inbox_.size());
    for (const Request& r : inbox_) {
      picked_this_epoch_[static_cast<std::size_t>(r.dst)] = false;
    }
    inbox_.clear();
    return grants;
  }

  /// A granted cell arrived and was enqueued for `dst`. Every grant is
  /// settled exactly once (cell arrival or release), so the outstanding
  /// counter must be positive here — an underflow means double accounting.
  SIRIUS_HOT void on_granted_cell_arrival(NodeId dst)
      SIRIUS_REQUIRES(common::sim_slot_role) {
    auto& out = outstanding_[static_cast<std::size_t>(dst)];
    SIRIUS_INVARIANT(out > 0,
                     "node %d: grant accounting underflow for dst %d", self_,
                     dst);
    if (out > 0) --out;
  }

  /// The source released an unusable grant for `dst`. Unlike cell arrival,
  /// duplicate releases are part of the contract (a source may redundantly
  /// release), so this clamps at zero instead of auditing.
  SIRIUS_HOT void on_grant_release(NodeId dst)
      SIRIUS_REQUIRES(common::sim_slot_role) {
    auto& out = outstanding_[static_cast<std::size_t>(dst)];
    if (out > 0) --out;
    ++stat_releases_;
  }

  /// Marks `node` as failed: it is never chosen as an intermediate again
  /// (§4.5: detected failures are communicated datacenter-wide to prevent
  /// blackholing through the failed relay). Out-of-range ids are an
  /// invariant violation and are ignored on the defensive path.
  void exclude(NodeId node) SIRIUS_REQUIRES(common::sim_slot_role) {
    SIRIUS_INVARIANT(node >= 0 && node < cfg_.nodes,
                     "node %d: exclude of node %d outside the %d-node network",
                     self_, node, cfg_.nodes);
    if (node < 0 || node >= cfg_.nodes) return;
    excluded_[static_cast<std::size_t>(node)] = 1;
  }
  /// Re-admits a previously excluded node (§4.5 recovery: the control
  /// plane re-provisions a repaired rack at a round boundary).
  void include(NodeId node) SIRIUS_REQUIRES(common::sim_slot_role) {
    SIRIUS_INVARIANT(node >= 0 && node < cfg_.nodes,
                     "node %d: include of node %d outside the %d-node network",
                     self_, node, cfg_.nodes);
    if (node < 0 || node >= cfg_.nodes) return;
    excluded_[static_cast<std::size_t>(node)] = 0;
  }
  [[nodiscard]] bool is_excluded(NodeId node) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    SIRIUS_INVARIANT(node >= 0 && node < cfg_.nodes,
                     "node %d: is_excluded of node %d outside the %d-node "
                     "network",
                     self_, node, cfg_.nodes);
    if (node < 0 || node >= cfg_.nodes) return false;
    return excluded_[static_cast<std::size_t>(node)] != 0;
  }

  /// Drops all epoch-local protocol state — buffered requests and
  /// outstanding-grant counters — without touching exclusions or stats.
  /// Used when this node itself fail-stops: a rebooted rack must not
  /// inherit grant accounting from before the crash.
  void clear_protocol_state() SIRIUS_REQUIRES(common::sim_slot_role) {
    inbox_.clear();
    std::fill(outstanding_.begin(), outstanding_.end(), 0);
  }

  [[nodiscard]] std::int32_t outstanding(NodeId dst) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return outstanding_[static_cast<std::size_t>(dst)];
  }

  /// Protocol counters (cumulative over the node's lifetime).
  [[nodiscard]] std::int64_t stat_requests_received() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return stat_requests_;
  }
  [[nodiscard]] std::int64_t stat_grants_issued() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return stat_grants_;
  }
  [[nodiscard]] std::int64_t stat_denied_queue_bound() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return stat_denied_q_;
  }
  /// Release callbacks received at this intermediate (duplicates included —
  /// redundant releases are part of the contract).
  [[nodiscard]] std::int64_t stat_grants_released() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return stat_releases_;
  }

  // ---- source role -------------------------------------------------------

  /// One outgoing request: ask `intermediate` for permission to relay a
  /// cell destined to `dst`.
  struct OutgoingRequest {
    NodeId intermediate;
    NodeId dst;
  };

  /// Epoch boundary: builds this node's requests for epoch `epoch`.
  /// `pending` lists the destination of every cell currently in LOCAL, in
  /// FIFO order (possibly truncated by the caller to nodes-1 entries,
  /// since no more requests than that can be emitted). At most one request
  /// goes to any intermediate; the spread policy picks which (see
  /// SpreadPolicy), and a cell's request may target its own destination
  /// (the "direct" path). `usable`, when provided, vetoes intermediates
  /// the source cannot serve soon (e.g. a backed-up virtual queue): the
  /// source knows its own queues, so this costs nothing in hardware and
  /// keeps granted-but-unsent backlog bounded. `relay_ok(intermediate,
  /// dst)`, when provided, vetoes a specific (relay, destination) pair at
  /// pick time — the §4.5 membership view uses it to stop requesting a
  /// relay whose link *towards dst* is reported grey, without evicting the
  /// relay for the destinations it still serves. A cell whose random picks
  /// are all vetoed simply re-requests next epoch.
  std::vector<OutgoingRequest> build_requests(
      const std::vector<NodeId>& pending, std::int64_t epoch, Rng& rng,
      const std::function<bool(NodeId)>& usable = {},
      const std::function<bool(NodeId, NodeId)>& relay_ok = {})
      SIRIUS_REQUIRES(common::sim_slot_role);

  /// Snapshottable: inbox, outstanding-grant counters, exclusions and
  /// lifetime stats. The per-epoch scratch (picked flags, intermediate
  /// pool) is rebuilt from scratch every epoch and is all-zero at the
  /// slot-top checkpoint instant, so it does not travel.
  void serialize(ckpt::Writer& w) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);
  bool restore(ckpt::Reader& r) SIRIUS_REQUIRES(common::sim_slot_role);

 private:
  void shuffle_inbox(Rng& rng) SIRIUS_REQUIRES(common::sim_slot_role);
  void pool_remove(NodeId n) SIRIUS_REQUIRES(common::sim_slot_role);

  NodeId self_;
  RequestGrantConfig cfg_;
  std::vector<Request> inbox_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  // per destination
  std::vector<std::int32_t> outstanding_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // per destination
  std::vector<std::uint8_t> picked_this_epoch_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // scratch: unused intermediates
  std::vector<NodeId> intermediate_pool_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // node -> index in pool, -1=used
  std::vector<std::int32_t> pool_pos_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // failed nodes, never relays
  std::vector<std::uint8_t> excluded_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  std::int64_t stat_requests_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  std::int64_t stat_grants_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  std::int64_t stat_denied_q_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  std::int64_t stat_releases_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
};

}  // namespace sirius::cc
