#include "cc/request_grant.hpp"

#include <cassert>

#include "common/invariant.hpp"

namespace sirius::cc {

RequestGrantNode::RequestGrantNode(NodeId self, const RequestGrantConfig& cfg)
    : self_(self), cfg_(cfg) {
  SIRIUS_INVARIANT(cfg_.nodes >= 2, "request/grant over %d nodes", cfg_.nodes);
  SIRIUS_INVARIANT(cfg_.queue_limit >= 2,
                   "Q=%d < 2 can deadlock the relay (see §4.3)",
                   cfg_.queue_limit);
  outstanding_.assign(static_cast<std::size_t>(cfg_.nodes), 0);
  picked_this_epoch_.assign(static_cast<std::size_t>(cfg_.nodes), 0);
  intermediate_pool_.reserve(static_cast<std::size_t>(cfg_.nodes));
  pool_pos_.assign(static_cast<std::size_t>(cfg_.nodes), -1);
  excluded_.assign(static_cast<std::size_t>(cfg_.nodes), 0);
  // Pre-size the per-slot request inbox: at most one piggybacked request
  // per peer per slot, so the SIRIUS_HOT receive path never reallocates.
  inbox_.reserve(static_cast<std::size_t>(cfg_.nodes));
}

void RequestGrantNode::shuffle_inbox(Rng& rng) {
  // Fisher–Yates so the per-destination pick below is uniform among the
  // requests for that destination.
  for (std::size_t i = inbox_.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(inbox_[i - 1], inbox_[j]);
  }
}

void RequestGrantNode::pool_remove(NodeId n) {
  const std::int32_t pos = pool_pos_[static_cast<std::size_t>(n)];
  assert(pos >= 0);
  const NodeId last = intermediate_pool_.back();
  intermediate_pool_[static_cast<std::size_t>(pos)] = last;
  pool_pos_[static_cast<std::size_t>(last)] = pos;
  intermediate_pool_.pop_back();
  pool_pos_[static_cast<std::size_t>(n)] = -1;
}

std::vector<RequestGrantNode::OutgoingRequest> RequestGrantNode::build_requests(
    const std::vector<NodeId>& pending, std::int64_t epoch, Rng& rng,
    const std::function<bool(NodeId)>& usable,
    const std::function<bool(NodeId, NodeId)>& relay_ok) {
  std::vector<OutgoingRequest> out;
  if (pending.empty()) return out;

  // Candidate intermediates: every alive, serviceable node but ourselves.
  intermediate_pool_.clear();
  for (NodeId n = 0; n < cfg_.nodes; ++n) {
    if (n != self_ && excluded_[static_cast<std::size_t>(n)] == 0 &&
        (!usable || usable(n))) {
      pool_pos_[static_cast<std::size_t>(n)] =
          static_cast<std::int32_t>(intermediate_pool_.size());
      intermediate_pool_.push_back(n);
    } else {
      pool_pos_[static_cast<std::size_t>(n)] = -1;
    }
  }
  if (intermediate_pool_.empty()) return out;

  out.reserve(std::min(pending.size(), intermediate_pool_.size()));
  for (const NodeId dst : pending) {
    if (intermediate_pool_.empty()) break;
    NodeId pick = kInvalidNode;
    if (cfg_.spread == SpreadPolicy::kDesynchronized) {
      // First choice: the rotating, collision-free slot for this
      // destination. If it is ourselves or already used (same-D repeat),
      // fall back to a random unused intermediate below.
      const auto cand = static_cast<NodeId>(
          (static_cast<std::int64_t>(dst) + self_ + epoch) % cfg_.nodes);
      if (cand != self_ && pool_pos_[static_cast<std::size_t>(cand)] >= 0 &&
          (!relay_ok || relay_ok(cand, dst))) {
        pick = cand;
      }
    }
    if (pick == kInvalidNode) {
      // Rejection-sample a random unused intermediate; without a relay_ok
      // veto this is a single draw (the pre-veto behaviour). A cell whose
      // draws are all vetoed re-requests next epoch.
      for (std::int32_t attempt = 0; attempt < 4; ++attempt) {
        const NodeId cand =
            intermediate_pool_[rng.below(intermediate_pool_.size())];
        if (!relay_ok || relay_ok(cand, dst)) {
          pick = cand;
          break;
        }
      }
      if (pick == kInvalidNode) continue;
    }
    pool_remove(pick);
    out.push_back(OutgoingRequest{pick, dst});
  }
  return out;
}


void RequestGrantNode::serialize(ckpt::Writer& w) const {
  w.u64(inbox_.size());
  for (const Request& req : inbox_) {
    w.i32(req.src);
    w.i32(req.dst);
  }
  w.vec_i32(outstanding_);
  w.vec_u8(excluded_);
  w.i64(stat_requests_);
  w.i64(stat_grants_);
  w.i64(stat_denied_q_);
  w.i64(stat_releases_);
}

bool RequestGrantNode::restore(ckpt::Reader& r) {
  const std::size_t n_inbox = r.count(8, "request inbox");
  std::vector<Request> inbox(n_inbox);
  for (Request& req : inbox) {
    req.src = r.i32();
    req.dst = r.i32();
  }
  auto outstanding = r.vec_i32("outstanding grants");
  auto excluded = r.vec_u8("exclusion flags");
  const std::int64_t stat_requests = r.i64();
  const std::int64_t stat_grants = r.i64();
  const std::int64_t stat_denied = r.i64();
  const std::int64_t stat_releases = r.i64();
  if (!r.ok()) return false;
  const auto nodes = static_cast<std::size_t>(cfg_.nodes);
  if (outstanding.size() != nodes || excluded.size() != nodes ||
      stat_requests < 0 || stat_grants < 0 || stat_denied < 0 ||
      stat_releases < 0) {
    r.fail("request/grant state does not match this run's node count");
    return false;
  }
  for (const Request& req : inbox) {
    if (req.src < 0 || req.src >= cfg_.nodes || req.dst < 0 ||
        req.dst >= cfg_.nodes) {
      r.fail("buffered request outside the node range");
      return false;
    }
  }
  for (const std::int32_t out : outstanding) {
    if (out < 0 || out > cfg_.queue_limit) {
      r.fail("outstanding grant counter outside [0, Q]");
      return false;
    }
  }
  inbox_ = std::move(inbox);
  outstanding_ = std::move(outstanding);
  excluded_ = std::move(excluded);
  stat_requests_ = stat_requests;
  stat_grants_ = stat_grants;
  stat_denied_q_ = stat_denied;
  stat_releases_ = stat_releases;
  return true;
}

}  // namespace sirius::cc
