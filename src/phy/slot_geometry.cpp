#include "phy/slot_geometry.hpp"

namespace sirius::phy {

SlotGeometry SlotGeometry::with_guardband_fraction(Time guardband,
                                                   DataRate line_rate,
                                                   double guard_fraction) {
  assert(guard_fraction > 0.0 && guard_fraction < 1.0);
  const double data_ps = static_cast<double>(guardband.picoseconds()) *
                         (1.0 - guard_fraction) / guard_fraction;
  const DataSize cell = line_rate.bytes_in(Time::ps(
      static_cast<std::int64_t>(data_ps + 0.5)));
  return SlotGeometry(cell, line_rate, guardband);
}

double SlotGeometry::guard_overhead() const {
  return static_cast<double>(guardband_.picoseconds()) /
         static_cast<double>(slot_duration().picoseconds());
}

DataRate SlotGeometry::effective_rate() const {
  const double eff = static_cast<double>(line_rate_.bits_per_sec()) *
                     (1.0 - guard_overhead());
  return DataRate::bps(static_cast<std::int64_t>(eff + 0.5));
}

SlotGeometry default_slot_geometry() {
  using namespace sirius::literals;
  return SlotGeometry(DataSize::bytes(562), DataRate::gbps(50), 10_ns);
}

}  // namespace sirius::phy
