#include "phy/slot_geometry.hpp"

namespace sirius::phy {

SlotGeometry default_slot_geometry() {
  using namespace sirius::literals;
  return SlotGeometry(DataSize::bytes(562), DataRate::gbps(50), 10_ns);
}

}  // namespace sirius::phy
