// Timeslot geometry: how cell size, line rate and guardband compose into
// the fixed-length slots that drive the whole network (§4.2, §7).
//
// The paper's default: 50 Gbps channels, 562-byte cells -> ~90 ns of data,
// plus a 10 ns guardband = 100 ns slots. The prototype reached a guardband
// of 3.84 ns (laser tuning + cell preamble), allowing slots as short as
// 38 ns (§4.5).
#pragma once

#include <cassert>
#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::phy {

/// Immutable description of the slot layout on one optical channel.
class SlotGeometry {
 public:
  /// Builds a geometry from cell payload size, line rate and guardband.
  SlotGeometry(DataSize cell, DataRate line_rate, Time guardband)
      : cell_(cell),
        line_rate_(line_rate),
        guardband_(guardband),
        data_time_(line_rate.transmission_time(cell)) {
    assert(cell.in_bytes() > 0);
    assert(guardband >= Time::zero());
  }

  /// Builds the geometry the paper uses for a given guardband, keeping the
  /// guardband at 10 % of the total slot (as the Fig. 11 sweep does): the
  /// data portion is sized to 9x the guardband.
  static SlotGeometry with_guardband_fraction(Time guardband,
                                              DataRate line_rate,
                                              double guard_fraction = 0.10) {
    assert(guard_fraction > 0.0 && guard_fraction < 1.0);
    const double data_ps = static_cast<double>(guardband.picoseconds()) *
                           (1.0 - guard_fraction) / guard_fraction;
    const DataSize cell = line_rate.bytes_in(Time::ps(
        static_cast<std::int64_t>(data_ps + 0.5)));
    return SlotGeometry(cell, line_rate, guardband);
  }

  DataSize cell_size() const { return cell_; }
  DataRate line_rate() const { return line_rate_; }
  Time guardband() const { return guardband_; }
  /// Time spent transmitting cell bytes.
  Time data_time() const { return data_time_; }
  /// Full slot duration = data + guardband.
  Time slot_duration() const { return data_time_ + guardband_; }

  /// Fraction of the slot lost to the guardband (switching overhead, §2.2).
  double guard_overhead() const {
    return static_cast<double>(guardband_.picoseconds()) /
           static_cast<double>(slot_duration().picoseconds());
  }

  /// Effective per-channel goodput after guardband overhead.
  DataRate effective_rate() const {
    const double eff =
        static_cast<double>(line_rate_.bits_per_sec()) *
        (1.0 - guard_overhead());
    return DataRate::bps(static_cast<std::int64_t>(eff + 0.5));
  }

  /// Index of the slot containing time `t` (slots start at t = 0).
  std::int64_t slot_index(Time t) const { return t / slot_duration(); }
  /// Start time of slot `i`.
  Time slot_start(std::int64_t i) const { return slot_duration() * i; }

 private:
  DataSize cell_;
  DataRate line_rate_;
  Time guardband_;
  Time data_time_;
};

/// The paper's default geometry: 562 B cells at 50 Gbps with a 10 ns guard
/// (100 ns slots).
SlotGeometry default_slot_geometry();

}  // namespace sirius::phy
