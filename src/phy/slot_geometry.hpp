// Timeslot geometry: how cell size, line rate and guardband compose into
// the fixed-length slots that drive the whole network (§4.2, §7).
//
// The paper's default: 50 Gbps channels, 562-byte cells -> ~90 ns of data,
// plus a 10 ns guardband = 100 ns slots. The prototype reached a guardband
// of 3.84 ns (laser tuning + cell preamble), allowing slots as short as
// 38 ns (§4.5).
#pragma once

#include <cassert>
#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::phy {

/// Immutable description of the slot layout on one optical channel.
class SlotGeometry {
 public:
  /// Builds a geometry from cell payload size, line rate and guardband.
  SlotGeometry(DataSize cell, DataRate line_rate, Time guardband)
      : cell_(cell),
        line_rate_(line_rate),
        guardband_(guardband),
        data_time_(line_rate.transmission_time(cell)) {
    assert(cell > DataSize::zero());
    assert(guardband >= Time::zero());
  }

  /// Builds the geometry the paper uses for a given guardband, keeping the
  /// guardband at 10 % of the total slot (as the Fig. 11 sweep does): the
  /// data portion is sized to 9x the guardband.
  [[nodiscard]] static SlotGeometry with_guardband_fraction(
      Time guardband, DataRate line_rate, double guard_fraction = 0.10);

  [[nodiscard]] DataSize cell_size() const { return cell_; }
  [[nodiscard]] DataRate line_rate() const { return line_rate_; }
  [[nodiscard]] Time guardband() const { return guardband_; }
  /// Time spent transmitting cell bytes.
  [[nodiscard]] Time data_time() const { return data_time_; }
  /// Full slot duration = data + guardband.
  [[nodiscard]] Time slot_duration() const { return data_time_ + guardband_; }

  /// Fraction of the slot lost to the guardband (switching overhead, §2.2).
  [[nodiscard]] double guard_overhead() const;

  /// Effective per-channel goodput after guardband overhead.
  [[nodiscard]] DataRate effective_rate() const;

  /// Index of the slot containing time `t` (slots start at t = 0).
  [[nodiscard]] std::int64_t slot_index(Time t) const {
    return t / slot_duration();
  }
  /// Start time of slot `i`.
  [[nodiscard]] Time slot_start(std::int64_t i) const {
    return slot_duration() * i;
  }

 private:
  DataSize cell_;
  DataRate line_rate_;
  Time guardband_;
  Time data_time_;
};

/// The paper's default geometry: 562 B cells at 50 Gbps with a 10 ns guard
/// (100 ns slots).
SlotGeometry default_slot_geometry();

}  // namespace sirius::phy
