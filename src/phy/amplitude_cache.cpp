#include "phy/amplitude_cache.hpp"

#include <cmath>
#include <limits>

namespace sirius::phy {

AmplitudeCache::AmplitudeCache(std::int32_t senders, AmplitudeCacheConfig cfg)
    : cfg_(cfg),
      cached_dbm_(static_cast<std::size_t>(senders),
                  std::numeric_limits<double>::quiet_NaN()) {}

bool AmplitudeCache::cache_valid(NodeId sender,
                                 optical::OpticalPower power) const {
  const double cached = cached_dbm_.at(static_cast<std::size_t>(sender));
  if (std::isnan(cached)) return false;
  return std::fabs(cached - power.in_dbm()) <= cfg_.tolerance_db;
}

Time AmplitudeCache::on_burst(NodeId sender, optical::OpticalPower power) {
  const bool valid = cache_valid(sender, power);
  cached_dbm_.at(static_cast<std::size_t>(sender)) = power.in_dbm();
  if (valid) {
    ++fast_;
    return cfg_.cached_settle;
  }
  ++cold_;
  return cfg_.cold_settle;
}

}  // namespace sirius::phy
