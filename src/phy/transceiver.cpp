#include "phy/transceiver.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sirius::phy {

Transceiver::Transceiver(std::unique_ptr<optical::TunableSource> laser,
                         std::int32_t peers, CdrConfig cdr_cfg,
                         Time equalization, Time amplitude_cache,
                         Time sync_margin)
    : laser_(std::move(laser)),
      cdr_(peers, cdr_cfg),
      equalization_(equalization),
      amplitude_cache_(amplitude_cache),
      sync_margin_(sync_margin) {
  assert(laser_ != nullptr);
}

GuardbandBudget Transceiver::reconfiguration_budget() const {
  return GuardbandBudget{
      .laser_tuning = laser_->worst_case_latency(),
      .cdr_lock = cdr_.config().cached_lock,
      .equalization = equalization_,
      .amplitude_cache = amplitude_cache_,
      .sync_margin = sync_margin_,
  };
}

Time Transceiver::reconfigure(WavelengthId w, NodeId sender, Time now) {
  const Time tune = laser_->tune_to(w);
  const Time lock = cdr_.on_burst(sender, now);
  // Tuning happens on the transmit side while the receive side locks on the
  // (different) incoming burst; both must finish, and the serial receive-
  // path training (equalizer DSP, amplitude) plus sync margin stack on top.
  return std::max(tune, lock + equalization_ + amplitude_cache_) +
         sync_margin_;
}

}  // namespace sirius::phy
