#include "phy/cdr.hpp"

#include <cassert>
#include <cmath>

namespace sirius::phy {

PhaseCachingCdr::PhaseCachingCdr(std::int32_t senders, CdrConfig cfg)
    : cfg_(cfg),
      last_seen_(static_cast<std::size_t>(senders), Time::infinity()) {}

double PhaseCachingCdr::phase_drift_ui(NodeId sender, Time now) const {
  const Time last = last_seen_.at(static_cast<std::size_t>(sender));
  if (last.is_infinite()) return 1e9;  // never seen: effectively unbounded
  const double elapsed_sec = (now - last).to_sec();
  // UI drift = residual frequency offset x elapsed symbols.
  return cfg_.residual_freq_offset * elapsed_sec *
         cfg_.symbol_rate_gbaud * 1e9;
}

bool PhaseCachingCdr::cache_fresh(NodeId sender, Time now) const {
  return phase_drift_ui(sender, now) <= cfg_.max_phase_error_ui;
}

Time PhaseCachingCdr::on_burst(NodeId sender, Time now) {
  const bool fresh = cache_fresh(sender, now);
  last_seen_.at(static_cast<std::size_t>(sender)) = now;
  if (fresh) {
    ++fast_locks_;
    return cfg_.cached_lock;
  }
  ++cold_locks_;
  return cfg_.cold_lock;
}

}  // namespace sirius::phy
