// End-to-end reconfiguration budget of one Sirius transceiver (§4.5).
//
// Between two timeslots, nothing can be transmitted while:
//   * the tunable laser settles on the new wavelength,
//   * the receiver's CDR (re)locks — sub-ns thanks to phase caching,
//   * amplitude caching re-applies the per-sender gain,
//   * and residual time-synchronisation error is absorbed.
// The sum sets the minimum guardband. The paper's prototype achieves
// 912 ps tuning + preamble = a 3.84 ns end-to-end guardband.
#pragma once

#include <memory>

#include "common/time.hpp"
#include "optical/disaggregated_laser.hpp"
#include "phy/cdr.hpp"
#include "phy/slot_geometry.hpp"

namespace sirius::phy {

struct GuardbandBudget {
  Time laser_tuning;     ///< worst-case laser settle
  Time cdr_lock;         ///< cached-phase CDR lock (preamble)
  Time equalization;     ///< PAM-4 fast-equalization DSP settling (§6)
  Time amplitude_cache;  ///< per-sender gain application
  Time sync_margin;      ///< absorbed time-sync inaccuracy

  [[nodiscard]] Time total() const {
    return laser_tuning + cdr_lock + equalization + amplitude_cache +
           sync_margin;
  }
};

/// A node uplink transceiver: a tunable source plus burst-mode receive path.
class Transceiver {
 public:
  /// Takes ownership of the laser. `peers` is the number of possible
  /// senders for the receive-side phase cache.
  Transceiver(std::unique_ptr<optical::TunableSource> laser,
              std::int32_t peers, CdrConfig cdr_cfg = {},
              Time equalization = Time::ps(2'000),
              Time amplitude_cache = Time::ps(200),
              Time sync_margin = Time::ps(100));

  optical::TunableSource& laser() { return *laser_; }
  const optical::TunableSource& laser() const { return *laser_; }
  PhaseCachingCdr& cdr() { return cdr_; }

  /// Worst-case end-to-end reconfiguration budget of this transceiver —
  /// the minimum safe guardband (prototype: 3.84 ns).
  GuardbandBudget reconfiguration_budget() const;

  /// Performs a slot transition: tunes the laser to `w` and accounts a
  /// receive-side lock for the burst arriving from `sender` at `now`.
  /// Returns the time during which no data could flow.
  Time reconfigure(WavelengthId w, NodeId sender, Time now);

 private:
  std::unique_ptr<optical::TunableSource> laser_;
  PhaseCachingCdr cdr_;
  Time equalization_;
  Time amplitude_cache_;
  Time sync_margin_;
};

}  // namespace sirius::phy
