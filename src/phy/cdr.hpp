// Clock-and-data recovery with phase caching (§4.5, §A.1).
//
// When two nodes are connected for a single slot, the receiver must sample
// the incoming bitstream at the right phase. Conventional burst-mode CDR
// re-acquires the phase from a long preamble (microseconds — the historical
// blocker for fast optical switching). Sirius *caches* the phase (and the
// receive amplitude) per sender: because the cyclic schedule reconnects
// every pair once per epoch, the cache is refreshed for free and only
// drifts by (clock offset drift x epoch) between visits.
//
// This model tracks per-sender cache entries and reports the lock time of
// each arrival: sub-ns when the cache is fresh, a full acquisition when it
// is cold or stale.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::phy {

struct CdrConfig {
  /// Lock time with a valid cached phase (prototype: < 1 ns; we use the
  /// preamble share of the measured 3.84 ns guardband).
  Time cached_lock = Time::ps(625);
  /// Full burst acquisition without a cache entry (standard transceivers:
  /// microseconds; Fig. 8-era burst receivers: ~8 ns power-on [11]).
  Time cold_lock = Time::us(2);
  /// Residual frequency offset between two synchronised nodes, as a
  /// fraction (Sirius sync keeps this tiny; see sync/).
  double residual_freq_offset = 1e-9;
  /// Phase error (fraction of a unit interval) beyond which a cached entry
  /// no longer permits instant locking.
  double max_phase_error_ui = 0.25;
  /// Symbol rate used to convert time drift into UI drift.
  double symbol_rate_gbaud = 25.0;
};

/// Per-receiver phase cache across all possible senders.
class PhaseCachingCdr {
 public:
  PhaseCachingCdr(std::int32_t senders, CdrConfig cfg = {});

  const CdrConfig& config() const { return cfg_; }

  /// Called when a burst from `sender` arrives at time `now`. Returns the
  /// lock time consumed before data can be sampled, and refreshes the
  /// cache entry.
  Time on_burst(NodeId sender, Time now);

  /// True if the cache entry for `sender` would still allow a fast lock at
  /// time `now`.
  [[nodiscard]] bool cache_fresh(NodeId sender, Time now) const;

  /// Phase drift (in UI) accumulated since the last burst from `sender`.
  [[nodiscard]] double phase_drift_ui(NodeId sender, Time now) const;

  [[nodiscard]] std::int64_t fast_locks() const { return fast_locks_; }
  [[nodiscard]] std::int64_t cold_locks() const { return cold_locks_; }

 private:
  CdrConfig cfg_;
  std::vector<Time> last_seen_;  // Time::infinity() == never seen
  std::int64_t fast_locks_ = 0;
  std::int64_t cold_locks_ = 0;
};

}  // namespace sirius::phy
