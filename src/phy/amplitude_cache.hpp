// Amplitude caching (§4.5): the receive-side twin of phase caching.
//
// Each sender's light arrives at a different power (different fiber runs,
// grating ports and laser shares). A conventional automatic gain control
// loop needs microseconds to settle — unusable when the sender changes
// every slot. Sirius caches the per-sender gain setting and re-applies it
// instantly at each slot, refreshing the cached value from the burst's
// measured amplitude; like the phase cache, the cyclic schedule keeps
// every entry at most one epoch stale.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "optical/power.hpp"

namespace sirius::phy {

struct AmplitudeCacheConfig {
  /// Settle time when a valid cached gain is applied.
  Time cached_settle = Time::ps(200);
  /// Full AGC acquisition without a cache entry.
  Time cold_settle = Time::us(1);
  /// Receiver dynamic range the gain stage must land within, in dB: a
  /// cached entry is useful while the sender's power moved less than this
  /// since it was recorded.
  double tolerance_db = 1.0;
};

/// Per-receiver gain cache across all possible senders.
class AmplitudeCache {
 public:
  AmplitudeCache(std::int32_t senders, AmplitudeCacheConfig cfg = {});

  const AmplitudeCacheConfig& config() const { return cfg_; }

  /// A burst from `sender` arrives with `power`. Returns the gain-settle
  /// time consumed, and refreshes the cache.
  Time on_burst(NodeId sender, optical::OpticalPower power);

  /// True if the cached gain for `sender` would still be within tolerance
  /// for a burst at `power`.
  [[nodiscard]] bool cache_valid(NodeId sender, optical::OpticalPower power) const;

  [[nodiscard]] std::int64_t fast_settles() const { return fast_; }
  [[nodiscard]] std::int64_t cold_settles() const { return cold_; }

 private:
  AmplitudeCacheConfig cfg_;
  std::vector<double> cached_dbm_;  // NaN == never seen
  std::int64_t fast_ = 0;
  std::int64_t cold_ = 0;
};

}  // namespace sirius::phy
