// Wire format of a Sirius cell.
//
// Every timeslot carries one fixed-size cell (562 B at the default slot
// geometry). Besides the payload, the cell carries everything the §4.3/
// §4.4 co-design piggybacks on the cyclic schedule:
//   * a preamble the burst-mode receiver uses for CDR/amplitude training
//     (phase caching shrinks it to a few bytes, §A.1);
//   * the routing header (flow, sequence, source, destination);
//   * one optional congestion-control REQUEST (src asks the *receiving*
//     node for permission to relay a cell to `dst`);
//   * one optional GRANT (the receiving node may relay one cell for
//     `dst` through the sender) and one optional RELEASE;
//   * the sender's clock phase snapshot for the §4.4 synchronisation;
//   * a CRC-32 over header+payload (post-FEC residual errors trigger the
//     rare retransmission path, §4.3).
//
// The encoder/decoder below is deliberately bit-exact and endian-stable:
// it is the contract a hardware implementation (NIC / ToR P4 pipeline,
// §6 "Hardware changes") would implement.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace sirius::frame {

/// Piggybacked congestion-control signal: request, grant or release for
/// one destination (§4.3).
struct CcSignal {
  enum class Kind : std::uint8_t { kNone = 0, kRequest, kGrant, kRelease };
  Kind kind = Kind::kNone;
  NodeId dst = 0;

  friend bool operator==(const CcSignal&, const CcSignal&) = default;
};

/// The decoded contents of one cell.
struct CellFrame {
  // Routing header.
  FlowId flow = 0;
  std::int32_t seq = 0;
  NodeId src_node = 0;
  NodeId dst_node = 0;
  std::int32_t dst_server = 0;
  bool second_hop = false;  ///< already relayed once (forwarded directly)

  // Piggybacked control plane.
  CcSignal cc;
  /// Sender clock phase snapshot in picoseconds modulo 2^32 (§4.4).
  std::uint32_t clock_phase_ps = 0;
  /// Bitmap page of known-failed nodes for dissemination (§4.5): 8 nodes
  /// per cell, page index cycles with seq.
  std::uint8_t failed_page_index = 0;
  std::uint8_t failed_page_bits = 0;

  // Payload.
  std::vector<std::uint8_t> payload;

  friend bool operator==(const CellFrame&, const CellFrame&) = default;
};

/// Frame geometry and encoder/decoder for a fixed cell size.
class CellCodec {
 public:
  /// `cell_size` is the total on-wire cell (paper default 562 B);
  /// `preamble` the CDR training bytes at the front (phase caching makes
  /// 4 B enough; a cold-start receiver would need hundreds).
  explicit CellCodec(DataSize cell_size = DataSize::bytes(562),
                     std::int32_t preamble_bytes = 4);

  [[nodiscard]] std::int32_t preamble_bytes() const { return preamble_; }
  /// Fixed header+trailer overhead excluding the preamble.
  static constexpr std::int32_t kHeaderBytes = 31;
  static constexpr std::int32_t kCrcBytes = 4;

  [[nodiscard]] DataSize cell_size() const { return cell_; }
  /// Application bytes one cell can carry.
  [[nodiscard]] std::int32_t payload_capacity() const;

  /// Encodes `f` into exactly cell_size() bytes (payload padded with
  /// zeros). Requires f.payload.size() <= payload_capacity().
  std::vector<std::uint8_t> encode(const CellFrame& f) const;

  /// Decodes a cell; returns nullopt on size mismatch or CRC failure.
  std::optional<CellFrame> decode(std::span<const std::uint8_t> wire) const;

  /// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`.
  static std::uint32_t crc32(std::span<const std::uint8_t> data);

 private:
  DataSize cell_;
  std::int32_t preamble_;
};

}  // namespace sirius::frame
