#include "frame/cell_frame.hpp"

#include <array>
#include <cassert>
#include <cstring>

namespace sirius::frame {
namespace {

// Little-endian scalar writers/readers: endian-stable regardless of host.
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(v) >> (8 * i)) & 0xff));
  }
}

template <typename T>
T get(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  }
  pos += sizeof(T);
  return static_cast<T>(v);
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t CellCodec::crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

CellCodec::CellCodec(DataSize cell_size, std::int32_t preamble_bytes)
    : cell_(cell_size), preamble_(preamble_bytes) {
  assert(payload_capacity() > 0 && "cell too small for header + preamble");
}

std::int32_t CellCodec::payload_capacity() const {
  return static_cast<std::int32_t>(cell_.in_bytes()) - preamble_ -
         kHeaderBytes - kCrcBytes;
}

std::vector<std::uint8_t> CellCodec::encode(const CellFrame& f) const {
  assert(static_cast<std::int32_t>(f.payload.size()) <= payload_capacity());
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(cell_.in_bytes()));

  // Preamble: alternating training pattern for the burst receiver.
  for (std::int32_t i = 0; i < preamble_; ++i) out.push_back(0x55);

  const std::size_t body_start = out.size();
  // Routing header (21 bytes).
  put<std::uint64_t>(out, static_cast<std::uint64_t>(f.flow));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(f.seq));
  put<std::uint16_t>(out, static_cast<std::uint16_t>(f.src_node));
  put<std::uint16_t>(out, static_cast<std::uint16_t>(f.dst_node));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(f.dst_server));
  // Control byte: hop flag + cc kind (2 bits each used).
  const auto ctrl = static_cast<std::uint8_t>(
      (f.second_hop ? 1u : 0u) |
      (static_cast<std::uint32_t>(f.cc.kind) << 1));
  put<std::uint8_t>(out, ctrl);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(f.cc.dst));
  // Sync snapshot + failure-dissemination page + payload length (8 bytes
  // total with the length field).
  put<std::uint32_t>(out, f.clock_phase_ps);
  put<std::uint8_t>(out, f.failed_page_index);
  put<std::uint8_t>(out, f.failed_page_bits);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(f.payload.size()));
  assert(out.size() - body_start == kHeaderBytes);

  out.insert(out.end(), f.payload.begin(), f.payload.end());
  // Zero padding up to the fixed cell size minus CRC.
  out.resize(static_cast<std::size_t>(cell_.in_bytes()) - kCrcBytes, 0);

  const std::uint32_t crc = crc32(
      std::span<const std::uint8_t>(out.data() + body_start,
                                    out.size() - body_start));
  put<std::uint32_t>(out, crc);
  assert(out.size() == static_cast<std::size_t>(cell_.in_bytes()));
  return out;
}

std::optional<CellFrame> CellCodec::decode(
    std::span<const std::uint8_t> wire) const {
  if (wire.size() != static_cast<std::size_t>(cell_.in_bytes())) {
    return std::nullopt;
  }
  const auto body_start = static_cast<std::size_t>(preamble_);
  const std::size_t crc_pos = wire.size() - kCrcBytes;
  {
    std::size_t pos = crc_pos;
    const auto stored = get<std::uint32_t>(wire, pos);
    const auto computed = crc32(wire.subspan(body_start, crc_pos - body_start));
    if (stored != computed) return std::nullopt;
  }

  CellFrame f;
  std::size_t pos = body_start;
  f.flow = static_cast<FlowId>(get<std::uint64_t>(wire, pos));
  f.seq = static_cast<std::int32_t>(get<std::uint32_t>(wire, pos));
  f.src_node = static_cast<NodeId>(get<std::uint16_t>(wire, pos));
  f.dst_node = static_cast<NodeId>(get<std::uint16_t>(wire, pos));
  f.dst_server = static_cast<std::int32_t>(get<std::uint32_t>(wire, pos));
  const auto ctrl = get<std::uint8_t>(wire, pos);
  f.second_hop = (ctrl & 1u) != 0;
  f.cc.kind = static_cast<CcSignal::Kind>((ctrl >> 1) & 0x3u);
  f.cc.dst = static_cast<NodeId>(get<std::uint16_t>(wire, pos));
  f.clock_phase_ps = get<std::uint32_t>(wire, pos);
  f.failed_page_index = get<std::uint8_t>(wire, pos);
  f.failed_page_bits = get<std::uint8_t>(wire, pos);
  const auto payload_len = get<std::uint16_t>(wire, pos);
  if (payload_len > payload_capacity()) return std::nullopt;
  f.payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                   wire.begin() + static_cast<std::ptrdiff_t>(pos) +
                       payload_len);
  return f;
}

}  // namespace sirius::frame
