#include "telemetry/hub.hpp"

#include <utility>

#include "common/atomic_file.hpp"
#include "common/invariant.hpp"

namespace sirius::telemetry {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Hub::Hub(TelemetryConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.metrics_out.empty()) {
    sampler_.configure(&metrics_, cfg_.metrics_every);
  }
  if (!cfg_.trace_out.empty()) {
    tracer_.configure(cfg_.trace_flow_sample, cfg_.trace_max_events);
  }
  // A flame export or an out-of-band sampler needs the scopes live, so
  // either implies `profile`.
  profiler_.enable(cfg_.profile || !cfg_.flame_out.empty() ||
                   cfg_.oob_sample_us > 0);
  if (cfg_.oob_sample_us > 0) {
    profiler_.publish_to(&oob_sampler_.board());
    oob_sampler_.start(cfg_.oob_sample_us);
  }
}

Hub::~Hub() {
  common::RoleLock hub_role(common::telemetry_hub_role);
  if (hook_installed_) {
    check::InvariantContext::instance().set_failure_hook(nullptr);
  }
}

void Hub::attach_nodes(std::int32_t nodes) {
  common::RoleLock hub_role(common::telemetry_hub_role);
  nodes_ = nodes;
  if (cfg_.flight_recorder_depth > 0 && !recorder_.enabled()) {
    recorder_.configure(nodes, cfg_.flight_recorder_depth);
    // The hook is process-global; the latest attached hub wins (one hub
    // per run is the documented model).
    check::InvariantContext::instance().set_failure_hook(
        [this] { recorder_.on_invariant_failure(); });
    hook_installed_ = true;
  }
}

std::vector<Hub::Artifact> Hub::finish() {
  common::RoleLock hub_role(common::telemetry_hub_role);
  // Stop the out-of-band thread first: its final snapshot must precede
  // the samples_json() read below (stop() joins, which publishes).
  oob_sampler_.stop();
  std::vector<Artifact> out;
  if (sampler_.enabled() && !cfg_.metrics_out.empty()) {
    Artifact a{"metrics", cfg_.metrics_out, false};
    a.ok = ends_with(cfg_.metrics_out, ".csv")
               ? sampler_.write_csv(cfg_.metrics_out)
               : sampler_.write_jsonl(cfg_.metrics_out);
    out.push_back(std::move(a));
  }
  if (tracer_.enabled() && !cfg_.trace_out.empty()) {
    Artifact a{"trace", cfg_.trace_out, false};
    a.ok = tracer_.write_chrome_json(cfg_.trace_out, nodes_);
    out.push_back(std::move(a));
  }
  if (!cfg_.flame_out.empty()) {
    Artifact a{"flame", cfg_.flame_out, false};
    a.ok = write_file_atomic(cfg_.flame_out, profiler_.flame_json() + "\n");
    out.push_back(std::move(a));
  }
  if (oob_sampler_.started() && !cfg_.oob_out.empty()) {
    Artifact a{"oob", cfg_.oob_out, false};
    a.ok =
        write_file_atomic(cfg_.oob_out, oob_sampler_.samples_json() + "\n");
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace sirius::telemetry
