// Named metrics spine: counters, gauges and histograms, plus a sim-time
// sampler that turns the registry into a time series.
//
// Every producer (the packet sim, congestion control, the failure
// detector, the ESN baselines) registers its metrics by name in one
// MetricsRegistry and bumps them through stable references — the lookup
// happens once, at wiring time, so the per-event cost is an integer
// increment whether or not any sink is attached. Export is pull-based:
// TimeSeriesSampler snapshots the registry at a fixed simulated-time
// cadence and writes JSONL or CSV at the end of the run.
//
// Determinism contract: metrics read sim state and are read by sinks; they
// never feed back into simulation decisions, RNG streams or event order.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/time.hpp"

namespace sirius::telemetry {

/// Monotonically increasing integer metric (events, cells, drops).
class Counter {
 public:
  void inc(std::int64_t n = 1) { v_ += n; }
  [[nodiscard]] std::int64_t value() const { return v_; }
  /// Checkpoint restore only — producers must never rewind a counter.
  void set(std::int64_t v) { v_ = v; }

 private:
  std::int64_t v_ = 0;
};

/// Last-write-wins scalar metric (queue depths, active flows).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Name -> metric table. References returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime (deque storage), so
/// producers bind once and increment through the pointer afterwards.
class MetricsRegistry {
 public:
  /// Get-or-create; one object per name, shared by all callers.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; the (lo, hi, bins) geometry is fixed by the first call.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Scalar series columns in registration order: counters first, then
  /// gauges. Histograms are exported separately (summary JSON).
  [[nodiscard]] std::vector<std::string> series_names() const;
  /// Current value of every series column, aligned with series_names().
  [[nodiscard]] std::vector<double> series_values() const;

  /// Histogram summaries (count, p50/p90/p99) as one JSON object keyed by
  /// metric name; "{}" when no histograms are registered.
  [[nodiscard]] std::string histograms_json() const;

  /// Registration-order name lists, for checkpoint capture (values travel
  /// keyed by name so a restore tolerates registration-order drift).
  [[nodiscard]] const std::vector<std::string>& counter_names() const {
    return counter_names_;
  }
  [[nodiscard]] const std::vector<std::string>& gauge_names() const {
    return gauge_names_;
  }
  [[nodiscard]] const std::vector<std::string>& histogram_names() const {
    return histogram_names_;
  }
  /// Mutable lookups for checkpoint restore; nullptr when not registered.
  [[nodiscard]] Counter* find_counter_mut(const std::string& name);
  [[nodiscard]] Gauge* find_gauge_mut(const std::string& name);
  [[nodiscard]] Histogram* find_histogram_mut(const std::string& name);

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<std::string> counter_names_;  // registration order
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::map<std::string, std::size_t> counter_index_;
  std::map<std::string, std::size_t> gauge_index_;
  std::map<std::string, std::size_t> histogram_index_;
};

/// Snapshots a registry's scalar metrics on a fixed simulated-time cadence.
/// The column set locks at the first sample; metrics registered later are
/// not exported (producers register everything at construction time).
class TimeSeriesSampler {
 public:
  /// One snapshot row: sample time plus one value per locked column.
  struct Row {
    Time at;
    std::vector<double> values;
  };

  /// Disabled until configured; maybe_sample() is then a no-op.
  void configure(const MetricsRegistry* registry, Time every);
  [[nodiscard]] bool enabled() const { return registry_ != nullptr; }

  /// Takes a row if `now` has reached the next cadence point. Driven by
  /// simulated time only — wall clocks never decide when to sample.
  void maybe_sample(Time now);
  /// Takes a row unconditionally (start / end of run).
  void sample(Time now);

  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

  /// One JSON object per line: {"t_us": ..., "<metric>": ..., ...}.
  /// Crash-safe: the series lands via temp file + atomic rename.
  [[nodiscard]] bool write_jsonl(const std::string& path) const;
  /// Header row then one CSV row per sample. Crash-safe like write_jsonl.
  [[nodiscard]] bool write_csv(const std::string& path) const;

  /// Checkpoint capture of the sampler cursor.
  [[nodiscard]] Time next_sample_at() const { return next_; }
  /// Checkpoint restore: reinstates the locked columns, the rows sampled so
  /// far and the cadence cursor, so the series a resumed run writes is
  /// byte-identical to an uninterrupted run's.
  void restore_series(std::vector<std::string> columns, std::vector<Row> rows,
                      Time next);

 private:
  const MetricsRegistry* registry_ = nullptr;
  Time every_;
  Time next_ = Time::zero();
  bool columns_locked_ = false;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace sirius::telemetry
