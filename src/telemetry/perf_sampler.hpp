// Out-of-band perf-counter sampler (daqswitch-style).
//
// The determinism-critical sim thread publishes cheap relaxed atomic
// counters (per-phase cumulative nanoseconds and call counts, fed by
// Profiler scope exits through a PhaseBoard); a background thread wakes on
// a wall-clock cadence, snapshots the board, and appends one Sample row.
// The sim thread never locks, never blocks and never reads anything the
// sampler wrote, so an active sampler leaves simulation results
// bit-identical to a bare run (asserted in tests/profile_test.cpp, the
// same contract telemetry already holds).
//
// This file shares the sirius-lint `no-wallclock` carve-out with
// src/telemetry/profile.* (steady_clock::now() permitted, calendar clocks
// still banned): the sample timestamps are host-side observations, never
// simulated time.
//
// Threading contract (tsan-clean by construction):
//   * board() atomics: relaxed writes from the sim thread, relaxed reads
//     from the sampler thread — no ordering needed, samples are
//     statistical observations, not ledgers.
//   * samples(): owned by the sampler thread while running; readable by
//     the owner only after stop(), whose join() provides the
//     happens-before edge.
//   * stop() is idempotent and is also run by the destructor, so shutdown
//     ordering is safe whether the owner stops explicitly (Hub::finish)
//     or lets destruction do it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/profile.hpp"

namespace sirius::telemetry {

class PerfSampler {
 public:
  /// One out-of-band observation: cumulative per-phase counters at a host
  /// timestamp (nanoseconds since start()).
  struct Sample {
    std::uint64_t wall_ns = 0;
    std::uint64_t nanos[kProfScopeCount] = {};
    std::uint64_t calls[kProfScopeCount] = {};
  };

  PerfSampler() = default;
  ~PerfSampler() { stop(); }
  PerfSampler(const PerfSampler&) = delete;
  PerfSampler& operator=(const PerfSampler&) = delete;

  /// The shared counter board. Wire it into a Profiler with
  /// profiler.publish_to(&sampler.board()) before start().
  [[nodiscard]] PhaseBoard& board() { return board_; }

  /// Launches the background thread sampling every `interval_us`
  /// microseconds (host wall clock, floored at 100us so a typo cannot
  /// busy-spin a core). No-op if already running. Host time on purpose:
  /// sirius::Time is simulated time, and routing it here would couple
  /// the sampler cadence to the sim. sirius-lint: allow(raw-unit-param)
  void start(std::int64_t interval_us);
  /// Stops and joins the background thread, taking one final snapshot so
  /// samples() always reflects end-of-run totals even for runs shorter
  /// than the interval. Idempotent.
  void stop();
  [[nodiscard]] bool running() const { return thread_.joinable(); }
  /// True once start() has been called (stays true after stop), so owners
  /// know whether an export artifact is expected.
  [[nodiscard]] bool started() const { return started_; }

  /// Collected samples; call only after stop() (join() publishes them).
  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }

  /// JSON export: {"schema":"sirius.oob.v1","interval_us":...,"phases":
  /// [names...],"samples":[{"wall_ns":...,"nanos":[...],"calls":[...]}]}.
  /// Call only after stop().
  [[nodiscard]] std::string samples_json() const;

 private:
  // Host-clock epoch, same rationale as start().
  void sample_once(std::uint64_t t0_ns);  // sirius-lint: allow(raw-unit-param)
  void run_loop(std::uint64_t t0_ns);     // sirius-lint: allow(raw-unit-param)

  PhaseBoard board_;
  std::vector<Sample> samples_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  ///< guarded by mu_
  bool started_ = false;
  std::int64_t interval_us_ = 0;
};

}  // namespace sirius::telemetry
