// Run manifest: one JSON artifact that makes a run self-describing.
//
// A bench result without its exact configuration is unreproducible noise;
// the manifest captures, in one file next to the metrics/trace artifacts:
// the schema version, build flags, the full simulator config, the seed,
// the fault plan, final stats and the paths of every sibling artifact.
// Section and key order is insertion order, so manifests diff cleanly
// between runs.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace sirius::telemetry {

class Manifest {
 public:
  static constexpr const char* kSchema = "sirius.run.v1";

  /// Get-or-create a named top-level section, in insertion order.
  JsonObject& section(const std::string& name);

  /// Compiler / build-flag fingerprint ("build" section content).
  [[nodiscard]] static std::string build_info_json();
  /// Same fingerprint appended field-by-field into an existing section.
  static void add_build_info(JsonObject& out);

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, JsonObject>> sections_;
};

}  // namespace sirius::telemetry
