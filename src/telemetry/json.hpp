// Minimal insertion-ordered JSON assembly for telemetry artifacts.
//
// The telemetry subsystem emits three JSON shapes — JSONL metric rows,
// Chrome trace-event arrays, and the run manifest — and all three need
// deterministic key order (artifacts are diffed across runs in tests and
// CI). A full JSON library is overkill and would add a dependency; this is
// the few dozen lines the writers actually need: escaping, number
// formatting that round-trips, and an append-only object builder.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace sirius::telemetry {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // Formats into a stack buffer (no stream, no unwind); hot
          // only through the name-keyed `add` merge.
          // sirius-lint: allow(hot-path-throw)
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double so it parses back bit-exact (%.17g) but prints short
/// round values compactly; infinities and NaN (not valid JSON) become null.
inline std::string json_number(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that still round-trips.
  char shorter[40];
  std::snprintf(shorter, sizeof shorter, "%.10g", v);
  double back = 0.0;
  std::sscanf(shorter, "%lf", &back);
  return back == v ? shorter : buf;
}

/// Append-only JSON object builder: keys keep insertion order, values are
/// pre-rendered JSON fragments. Nested objects compose via str()/add_raw.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value) {
    // Built by append (not operator+ chains): GCC 12 flags the rvalue
    // `const char* + string&&` overload with a spurious -Wrestrict.
    std::string quoted = "\"";
    quoted += json_escape(value);
    quoted += '"';
    return add_raw(key, quoted);
  }
  JsonObject& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonObject& add_num(const std::string& key, double v) {
    return add_raw(key, json_number(v));
  }
  JsonObject& add_int(const std::string& key, std::int64_t v) {
    return add_raw(key, std::to_string(v));
  }
  JsonObject& add_bool(const std::string& key, bool v) {
    return add_raw(key, v ? "true" : "false");
  }
  /// `raw_json` must already be valid JSON (a nested object, array, ...).
  JsonObject& add_raw(const std::string& key, const std::string& raw_json) {
    std::string part = "\"";
    part += json_escape(key);
    part += "\": ";
    part += raw_json;
    // Export-time builder; hot only through the name-keyed `add`
    // merge in the call graph. sirius-lint: allow(hot-path-alloc)
    parts_.push_back(std::move(part));
    return *this;
  }

  [[nodiscard]] bool empty() const { return parts_.empty(); }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (i > 0) out += ", ";
      out += parts_[i];
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::string> parts_;
};

/// Renders a list of pre-rendered JSON fragments as a JSON array.
inline std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i];
  }
  out += "]";
  return out;
}

}  // namespace sirius::telemetry
