#include "telemetry/profile.hpp"

#include <chrono>
#include <cstdio>

#include "telemetry/json.hpp"

namespace sirius::telemetry {

const char* prof_scope_name(ProfScope s) {
  switch (s) {
    case ProfScope::kSlotLoop: return "slot-loop";
    case ProfScope::kEpochCc: return "epoch-cc";
    case ProfScope::kTransmit: return "transmit";
    case ProfScope::kLandInject: return "land+inject";
    case ProfScope::kFailover: return "failover";
    case ProfScope::kAudit: return "audit";
    case ProfScope::kEsnRates: return "esn-rates";
    case ProfScope::kDeliver: return "deliver";
    case ProfScope::kStats: return "stats";
    case ProfScope::kCheckpoint: return "checkpoint";
    case ProfScope::kScopeCount: break;
  }
  return "unknown";
}

std::uint64_t Profiler::now_nanos() {
  // A sanctioned wall-clock read in src/ (see the file comment in
  // profile.hpp and the sirius-lint no-wallclock carve-out): host-side
  // profiling only, never simulated time.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::int32_t Profiler::find_or_add_child(std::int32_t parent, ProfScope s) {
  for (std::int32_t c = tree_[static_cast<std::size_t>(parent)].first_child;
       c >= 0; c = tree_[static_cast<std::size_t>(c)].next_sibling) {
    if (tree_[static_cast<std::size_t>(c)].scope == s) return c;
  }
  // First visit of this (parent, scope) pair. The tree is bounded by
  // kProfScopeCount^depth distinct paths (in practice a dozen nodes), so
  // growth stops after the first slot touches every path; steady state is
  // allocation-free.
  // sirius-lint: allow(hot-path-alloc)
  tree_.push_back(TreeNode{});
  const std::int32_t idx = static_cast<std::int32_t>(tree_.size()) - 1;
  TreeNode& n = tree_.back();
  n.scope = s;
  n.parent = parent;
  TreeNode& p = tree_[static_cast<std::size_t>(parent)];
  if (p.first_child < 0) {
    p.first_child = idx;
  } else {
    std::int32_t c = p.first_child;
    while (tree_[static_cast<std::size_t>(c)].next_sibling >= 0) {
      c = tree_[static_cast<std::size_t>(c)].next_sibling;
    }
    tree_[static_cast<std::size_t>(c)].next_sibling = idx;
  }
  return idx;
}

void Profiler::enter(ProfScope s) {
  if (!enabled_) return;
  if (tree_.empty()) {
    tree_.push_back(TreeNode{});  // synthetic root, scope == kScopeCount
    cur_ = 0;
  }
  cur_ = find_or_add_child(cur_ < 0 ? 0 : cur_, s);
}

void Profiler::exit_scope(std::uint64_t nanos) {
  if (cur_ <= 0) return;  // no open scope (spurious exit): ignore
  TreeNode& n = tree_[static_cast<std::size_t>(cur_)];
  ++n.calls;
  n.total_nanos += nanos;
  if (nanos > n.max_nanos) n.max_nanos = nanos;
  if (n.parent > 0) {
    tree_[static_cast<std::size_t>(n.parent)].child_nanos += nanos;
  }
  add(n.scope, nanos);
  cur_ = n.parent;
}

namespace {

void append_tree_rows(const std::vector<Profiler::TreeNode>& tree,
                      std::int32_t node, int depth, std::string* out) {
  const Profiler::TreeNode& n = tree[static_cast<std::size_t>(node)];
  char line[192];
  char name[64];
  std::snprintf(name, sizeof name, "%*s%s", depth * 2, "",
                prof_scope_name(n.scope));
  std::snprintf(line, sizeof line,
                "  %-21s %12llu %12.3f %12.3f %8.1f%%\n", name,
                static_cast<unsigned long long>(n.calls),
                static_cast<double>(n.total_nanos) / 1e6,
                static_cast<double>(n.self_nanos()) / 1e6,
                n.total_nanos == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(n.self_nanos()) /
                          static_cast<double>(n.total_nanos));
  *out += line;
  for (std::int32_t c = n.first_child; c >= 0;
       c = tree[static_cast<std::size_t>(c)].next_sibling) {
    append_tree_rows(tree, c, depth + 1, out);
  }
}

void append_flame_node(const std::vector<Profiler::TreeNode>& tree,
                       std::int32_t node, std::string* out) {
  const Profiler::TreeNode& n = tree[static_cast<std::size_t>(node)];
  // The synthetic root is never exited, so its total is the sum of its
  // children (the outermost profiled scopes) and its self time is zero.
  std::uint64_t total = n.total_nanos;
  std::uint64_t self = n.self_nanos();
  if (node == 0) {
    total = 0;
    for (std::int32_t c = n.first_child; c >= 0;
         c = tree[static_cast<std::size_t>(c)].next_sibling) {
      total += tree[static_cast<std::size_t>(c)].total_nanos;
    }
    self = 0;
  }
  JsonObject o;
  o.add("name", node == 0 ? "root" : prof_scope_name(n.scope));
  o.add_int("calls", static_cast<std::int64_t>(n.calls));
  o.add_int("total_ns", static_cast<std::int64_t>(total));
  o.add_int("self_ns", static_cast<std::int64_t>(self));
  o.add_int("max_ns", static_cast<std::int64_t>(n.max_nanos));
  std::string children = "[";
  bool first = true;
  for (std::int32_t c = n.first_child; c >= 0;
       c = tree[static_cast<std::size_t>(c)].next_sibling) {
    if (!first) children += ",";
    first = false;
    append_flame_node(tree, c, &children);
  }
  children += "]";
  o.add_raw("children", children);
  *out += o.str();
}

}  // namespace

std::string Profiler::table() const {
  bool any = false;
  for (std::size_t i = 0; i < kProfScopeCount; ++i) {
    any = any || acc_[i].calls > 0;
  }
  if (!any) return "";

  std::string out =
      "profile (host wall clock)\n"
      "  scope            calls       total_ms    mean_us     max_us\n";
  char line[160];
  for (std::size_t i = 0; i < kProfScopeCount; ++i) {
    const ScopeStats& st = acc_[i];
    if (st.calls == 0) continue;
    const double total_ms = static_cast<double>(st.total_nanos) / 1e6;
    const double mean_us = static_cast<double>(st.total_nanos) /
                           (1e3 * static_cast<double>(st.calls));
    const double max_us = static_cast<double>(st.max_nanos) / 1e3;
    std::snprintf(line, sizeof line,
                  "  %-15s %10llu %14.3f %10.3f %10.3f\n",
                  prof_scope_name(static_cast<ProfScope>(i)),
                  static_cast<unsigned long long>(st.calls), total_ms,
                  mean_us, max_us);
    out += line;
  }

  // Hierarchical attribution, when any scope actually nested. `self%`
  // near 100 means the scope's cost is its own body; low self% means the
  // time lives in the children below it.
  if (!tree_.empty() && tree_[0].first_child >= 0) {
    out +=
        "attribution (self = total minus profiled children)\n"
        "  scope                        calls     total_ms      self_ms"
        "    self%\n";
    for (std::int32_t c = tree_[0].first_child; c >= 0;
         c = tree_[static_cast<std::size_t>(c)].next_sibling) {
      append_tree_rows(tree_, c, 0, &out);
    }
  }
  return out;
}

std::string Profiler::flame_json() const {
  if (tree_.empty()) {
    return "{\"name\":\"root\",\"calls\":0,\"total_ns\":0,\"self_ns\":0,"
           "\"max_ns\":0,\"children\":[]}";
  }
  std::string out;
  append_flame_node(tree_, 0, &out);
  return out;
}

}  // namespace sirius::telemetry
