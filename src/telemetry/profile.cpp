#include "telemetry/profile.hpp"

#include <chrono>
#include <cstdio>

namespace sirius::telemetry {

const char* prof_scope_name(ProfScope s) {
  switch (s) {
    case ProfScope::kSlotLoop: return "slot-loop";
    case ProfScope::kEpochCc: return "epoch-cc";
    case ProfScope::kTransmit: return "transmit";
    case ProfScope::kLandInject: return "land+inject";
    case ProfScope::kFailover: return "failover";
    case ProfScope::kAudit: return "audit";
    case ProfScope::kEsnRates: return "esn-rates";
    case ProfScope::kScopeCount: break;
  }
  return "unknown";
}

std::uint64_t Profiler::now_nanos() {
  // The one sanctioned wall-clock read in src/ (see the file comment in
  // profile.hpp and the sirius-lint no-wallclock carve-out): host-side
  // profiling only, never simulated time.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string Profiler::table() const {
  bool any = false;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(ProfScope::kScopeCount); ++i) {
    any = any || acc_[i].calls > 0;
  }
  if (!any) return "";

  std::string out =
      "profile (host wall clock)\n"
      "  scope            calls       total_ms    mean_us     max_us\n";
  char line[160];
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(ProfScope::kScopeCount); ++i) {
    const ScopeStats& st = acc_[i];
    if (st.calls == 0) continue;
    const double total_ms = static_cast<double>(st.total_nanos) / 1e6;
    const double mean_us = static_cast<double>(st.total_nanos) /
                           (1e3 * static_cast<double>(st.calls));
    const double max_us = static_cast<double>(st.max_nanos) / 1e3;
    std::snprintf(line, sizeof line,
                  "  %-15s %10llu %14.3f %10.3f %10.3f\n",
                  prof_scope_name(static_cast<ProfScope>(i)),
                  static_cast<unsigned long long>(st.calls), total_ms,
                  mean_us, max_us);
    out += line;
  }
  return out;
}

}  // namespace sirius::telemetry
