// Wall-clock profiling scopes for the simulator hot paths.
//
// This is a sanctioned wall-clock island in src/ (the sirius-lint
// `no-wallclock` rule carves out src/telemetry/profile.* and
// src/telemetry/perf_sampler.* and nothing else): the profiler measures
// how long the *simulator* takes on the host, strictly outside simulated
// time. Nothing here reads or feeds Time — a profiled and an unprofiled
// run produce bit-identical simulation results, they just burn different
// amounts of host CPU.
//
// Attribution is hierarchical: scopes nest (SIRIUS_PROFILE_SCOPE is RAII,
// so entry/exit are strictly LIFO) and the profiler maintains a call tree
// keyed by (parent, scope). Each tree node accounts *total* time (the
// scope's own body plus everything profiled beneath it) and *self* time
// (total minus the time attributed to profiled children), so the
// end-of-run table answers "where does slot time actually go" instead of
// double-counting nested scopes. flame_json() exports the same tree as a
// flame-graph-style JSON document (docs/OBSERVABILITY.md).
//
// Out-of-band publication: when a PhaseBoard is attached via publish_to(),
// every scope exit additionally folds its elapsed nanoseconds into the
// board's relaxed per-phase atomics. The board is the one-way data feed
// for telemetry::PerfSampler's background thread; the sim thread never
// reads it back, never locks, and never blocks on it, so sampling cannot
// perturb the determinism-critical slot loop.
//
// Usage: bind a Profiler, then put SIRIUS_PROFILE_SCOPE(profiler, scope)
// at the top of a block. Disabled profilers cost one branch; without
// SIRIUS_TELEMETRY the macro compiles away entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sirius::telemetry {

/// Fixed scope set: hot paths worth timing, stable across runs so tables
/// are comparable. Append new scopes at the end — bench trajectories
/// compare tables by name across commits.
enum class ProfScope : std::uint8_t {
  kSlotLoop = 0,   ///< the whole per-slot body (sirius sim)
  kEpochCc,        ///< request/grant epoch exchange
  kTransmit,       ///< transmit_slot: schedule walk + queue pops
  kLandInject,     ///< landing in-flight cells + flow injection
  kFailover,       ///< §4.5 round-boundary failover work
  kAudit,          ///< invariant auditor sweeps
  kEsnRates,       ///< ESN fluid max-min rate recomputation
  kDeliver,        ///< per-cell delivery: reorder insert + completion
  kStats,          ///< gauge refresh + time-series sampling
  kCheckpoint,     ///< checkpoint_state serialization at the sink cadence
  kScopeCount,
};

inline constexpr std::size_t kProfScopeCount =
    static_cast<std::size_t>(ProfScope::kScopeCount);

[[nodiscard]] const char* prof_scope_name(ProfScope s);

/// Relaxed per-phase counters shared between the sim thread (writer, via
/// Profiler scope exits) and the out-of-band sampler thread (reader).
/// Monotone cumulative values; the sampler diffs successive snapshots.
/// Plain relaxed atomics: there is no inter-field consistency requirement
/// — a sample is a statistical observation, not a ledger.
struct PhaseBoard {
  std::atomic<std::uint64_t> nanos[kProfScopeCount] = {};
  std::atomic<std::uint64_t> calls[kProfScopeCount] = {};
};

class Profiler {
 public:
  struct ScopeStats {
    std::uint64_t calls = 0;
    std::uint64_t total_nanos = 0;
    std::uint64_t max_nanos = 0;
  };

  /// One node of the attribution tree. `self` time is derived:
  /// total_nanos - child_nanos (never negative by construction).
  struct TreeNode {
    ProfScope scope = ProfScope::kScopeCount;  ///< sentinel at the root
    std::int32_t parent = -1;
    std::int32_t first_child = -1;
    std::int32_t next_sibling = -1;
    std::uint64_t calls = 0;
    std::uint64_t total_nanos = 0;
    std::uint64_t child_nanos = 0;
    std::uint64_t max_nanos = 0;

    [[nodiscard]] std::uint64_t self_nanos() const {
      return total_nanos >= child_nanos ? total_nanos - child_nanos : 0;
    }
  };

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Attach (or detach, with nullptr) the out-of-band phase board. The
  /// board must outlive every subsequent scope exit; the Hub wires its
  /// sampler's board before the run and owns both ends.
  void publish_to(PhaseBoard* board) { board_ = board; }

  /// Flat accumulation, path-insensitive (kept for coarse callers and
  /// checkpoint-free aggregation). Scope exits fold into this too, so
  /// stats()/table() always cover everything the tree saw.
  void add(ProfScope s, std::uint64_t nanos) {
    ScopeStats& st = acc_[static_cast<std::size_t>(s)];
    ++st.calls;
    st.total_nanos += nanos;
    if (nanos > st.max_nanos) st.max_nanos = nanos;
    if (board_ != nullptr) {
      board_->nanos[static_cast<std::size_t>(s)].fetch_add(
          nanos, std::memory_order_relaxed);
      board_->calls[static_cast<std::size_t>(s)].fetch_add(
          1, std::memory_order_relaxed);
    }
  }

  /// Opens scope `s` as a child of the innermost open scope (tree
  /// bookkeeping only — the caller reads the clock after, so bookkeeping
  /// cost is not attributed to the scope). No-op while disabled.
  void enter(ProfScope s);
  /// Closes the innermost open scope, attributing `nanos` to it (and to
  /// the parent's child-time). Exits are LIFO by RAII construction; a
  /// spurious exit with no open scope is ignored.
  void exit_scope(std::uint64_t nanos);

  [[nodiscard]] const ScopeStats& stats(ProfScope s) const {
    return acc_[static_cast<std::size_t>(s)];
  }

  /// The attribution tree; index 0 is the synthetic root (scope ==
  /// kScopeCount) whose children are the outermost profiled scopes.
  /// Empty until the first enter().
  [[nodiscard]] const std::vector<TreeNode>& tree() const { return tree_; }

  /// Monotonic host clock in nanoseconds. Defined in profile.cpp so the
  /// steady_clock read stays inside the lint carve-out.
  [[nodiscard]] static std::uint64_t now_nanos();

  /// Human-readable end-of-run report: the flat scope table plus, when
  /// any scopes nested, an indented self/total attribution tree. Empty
  /// string when nothing was timed.
  [[nodiscard]] std::string table() const;

  /// Flame-graph-style JSON: {"name":"root","total_ns":...,"children":
  /// [{"name":...,"calls":...,"total_ns":...,"self_ns":...,...},...]}.
  /// Children appear in first-entered order, so exports diff cleanly
  /// between runs of the same build.
  [[nodiscard]] std::string flame_json() const;

 private:
  [[nodiscard]] std::int32_t find_or_add_child(std::int32_t parent,
                                               ProfScope s);

  bool enabled_ = false;
  ScopeStats acc_[kProfScopeCount] = {};
  std::vector<TreeNode> tree_;
  std::int32_t cur_ = -1;  ///< innermost open node; -1 = tree unopened
  PhaseBoard* board_ = nullptr;
};

/// RAII scope timer; reads the host clock only while the profiler is
/// enabled.
class ScopedTimer {
 public:
  ScopedTimer(Profiler& p, ProfScope s)
      : p_(p), armed_(p.enabled()), start_(0) {
    if (armed_) {
      p_.enter(s);
      start_ = Profiler::now_nanos();
    }
  }
  ~ScopedTimer() {
    if (armed_) p_.exit_scope(Profiler::now_nanos() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler& p_;
  bool armed_;
  std::uint64_t start_;
};

}  // namespace sirius::telemetry

#define SIRIUS_TELEMETRY_PP_CAT2(a, b) a##b
#define SIRIUS_TELEMETRY_PP_CAT(a, b) SIRIUS_TELEMETRY_PP_CAT2(a, b)

#if defined(SIRIUS_TELEMETRY)
#define SIRIUS_PROFILE_SCOPE(profiler, scope)                      \
  ::sirius::telemetry::ScopedTimer SIRIUS_TELEMETRY_PP_CAT(        \
      sirius_prof_scope_, __LINE__)((profiler), (scope))
#else
#define SIRIUS_PROFILE_SCOPE(profiler, scope) static_cast<void>(0)
#endif
