// Wall-clock profiling scopes for the simulator hot paths.
//
// This is the single sanctioned wall-clock island in src/ (the sirius-lint
// `no-wallclock` rule carves out src/telemetry/profile.* and nothing
// else): the profiler measures how long the *simulator* takes on the host,
// strictly outside simulated time. Nothing here reads or feeds Time — a
// profiled and an unprofiled run produce bit-identical simulation results,
// they just burn different amounts of host CPU.
//
// Usage: bind a Profiler, then put SIRIUS_PROFILE_SCOPE(profiler, scope)
// at the top of a block. Disabled profilers cost one branch; without
// SIRIUS_TELEMETRY the macro compiles away entirely.
#pragma once

#include <cstdint>
#include <string>

namespace sirius::telemetry {

/// Fixed scope set: hot paths worth timing, stable across runs so tables
/// are comparable.
enum class ProfScope : std::uint8_t {
  kSlotLoop = 0,   ///< the whole per-slot body (sirius sim)
  kEpochCc,        ///< request/grant epoch exchange
  kTransmit,       ///< transmit_slot: schedule walk + queue pops
  kLandInject,     ///< landing in-flight cells + flow injection
  kFailover,       ///< §4.5 round-boundary failover work
  kAudit,          ///< invariant auditor sweeps
  kEsnRates,       ///< ESN fluid max-min rate recomputation
  kScopeCount,
};

[[nodiscard]] const char* prof_scope_name(ProfScope s);

class Profiler {
 public:
  struct ScopeStats {
    std::uint64_t calls = 0;
    std::uint64_t total_nanos = 0;
    std::uint64_t max_nanos = 0;
  };

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void add(ProfScope s, std::uint64_t nanos) {
    ScopeStats& st = acc_[static_cast<std::size_t>(s)];
    ++st.calls;
    st.total_nanos += nanos;
    if (nanos > st.max_nanos) st.max_nanos = nanos;
  }

  [[nodiscard]] const ScopeStats& stats(ProfScope s) const {
    return acc_[static_cast<std::size_t>(s)];
  }

  /// Monotonic host clock in nanoseconds. Defined in profile.cpp so the
  /// steady_clock read stays inside the lint carve-out.
  [[nodiscard]] static std::uint64_t now_nanos();

  /// Human-readable end-of-run table; empty string when nothing was timed.
  [[nodiscard]] std::string table() const;

 private:
  bool enabled_ = false;
  ScopeStats acc_[static_cast<std::size_t>(ProfScope::kScopeCount)] = {};
};

/// RAII scope timer; reads the host clock only while the profiler is
/// enabled.
class ScopedTimer {
 public:
  ScopedTimer(Profiler& p, ProfScope s)
      : p_(p), s_(s), armed_(p.enabled()),
        start_(armed_ ? Profiler::now_nanos() : 0) {}
  ~ScopedTimer() {
    if (armed_) p_.add(s_, Profiler::now_nanos() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler& p_;
  ProfScope s_;
  bool armed_;
  std::uint64_t start_;
};

}  // namespace sirius::telemetry

#define SIRIUS_TELEMETRY_PP_CAT2(a, b) a##b
#define SIRIUS_TELEMETRY_PP_CAT(a, b) SIRIUS_TELEMETRY_PP_CAT2(a, b)

#if defined(SIRIUS_TELEMETRY)
#define SIRIUS_PROFILE_SCOPE(profiler, scope)                      \
  ::sirius::telemetry::ScopedTimer SIRIUS_TELEMETRY_PP_CAT(        \
      sirius_prof_scope_, __LINE__)((profiler), (scope))
#else
#define SIRIUS_PROFILE_SCOPE(profiler, scope) static_cast<void>(0)
#endif
