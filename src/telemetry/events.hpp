// Cell-lifecycle event vocabulary shared by the tracer and the flight
// recorder.
//
// One record per observable step in a cell's life through the fabric:
// request/grant negotiation, first-hop transmission towards the Valiant
// intermediate, relay enqueue/dequeue, delivery, and the failure paths
// (drop, retransmit). Records carry only sim state — emitting them never
// perturbs simulation behaviour.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::telemetry {

enum class CellEvent : std::uint8_t {
  kInject,        ///< cell left a LOCAL buffer under a grant
  kRequest,       ///< request burst sent to an intermediate
  kGrant,         ///< intermediate issued a grant
  kFirstHopTx,    ///< granted cell launched towards the intermediate
  kRelayEnqueue,  ///< cell landed at the intermediate's forward queue
  kRelayDequeue,  ///< relay transmission towards the destination
  kDeliver,       ///< cell handed to the destination server
  kDrop,          ///< explicit drop (fault paths; seq < 0 aggregates)
  kRetransmit,    ///< retx timer resurrected a lost cell
};

[[nodiscard]] const char* cell_event_name(CellEvent e);

/// One structured event. `flow`/`seq` are negative for events that are not
/// tied to a single cell (requests, grants, aggregate purge drops — for
/// those `seq` may carry a count instead). `peer` is the other end of the
/// transfer when there is one, `dst` the cell's final destination rack.
struct CellEventRecord {
  Time at;
  FlowId flow = -1;
  NodeId node = 0;
  NodeId peer = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int32_t seq = -1;
  CellEvent event = CellEvent::kInject;
};

}  // namespace sirius::telemetry
