// Telemetry hub: one object owning the run's metrics registry, cell
// tracer, flight recorder, sampler and profiler.
//
// Producers take a Hub* (SiriusSimConfig::telemetry, EsnConfig::telemetry)
// and emit through it; a null pointer means "own disabled hub" — counters
// still count (they replace what used to be ad-hoc int64 members) but no
// sink records, no file is written and no wall clock is read. The
// SIRIUS_CELL_EVENT macro compiles to nothing when SIRIUS_TELEMETRY is
// undefined, and to a tracing()-guarded record otherwise, so the disabled
// cost on the hot path is one pointer test and one branch.
//
// Determinism: the hub is write-only from the simulator's point of view —
// nothing the simulator reads ever depends on hub state, so results are
// bit-identical with telemetry on, off, or compiled out. One Hub serves
// one run; attach a fresh hub per simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_safety.hpp"
#include "common/time.hpp"
#include "telemetry/events.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf_sampler.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/trace.hpp"

namespace sirius::telemetry {

struct TelemetryConfig {
  /// Metrics time-series path; extension selects the format (.csv writes
  /// CSV, anything else JSONL). Empty = sampling off.
  std::string metrics_out;
  /// Simulated-time sampling cadence.
  Time metrics_every = Time::us(10);
  /// Chrome trace-event JSON path. Empty = tracing off.
  std::string trace_out;
  /// Keep flows with id % sample == 0 in the trace (1 = every flow).
  std::int64_t trace_flow_sample = 1;
  /// Hard cap on buffered trace events (overflow is counted, not stored).
  std::int64_t trace_max_events = 1'000'000;
  /// Flight-recorder ring depth per node; 0 = off.
  std::int32_t flight_recorder_depth = 0;
  /// Enable wall-clock profiling scopes.
  bool profile = false;
  /// Hierarchical profile (flame-style JSON) output path; non-empty
  /// implies `profile`.
  std::string flame_out;
  /// Out-of-band sampler cadence in host microseconds (0 = off; implies
  /// `profile` so the phase board gets fed). The sampler runs on a
  /// background thread and never perturbs the sim thread.
  std::int64_t oob_sample_us = 0;
  /// Out-of-band sample series (`sirius.oob.v1` JSON) output path.
  std::string oob_out;

  [[nodiscard]] bool any_enabled() const {
    return !metrics_out.empty() || !trace_out.empty() ||
           flight_recorder_depth > 0 || profile || !flame_out.empty() ||
           oob_sample_us > 0;
  }
};

class Hub {
 public:
  /// A disabled hub: the registry works (producers can bind counters
  /// unconditionally) but every sink is off.
  Hub() = default;
  explicit Hub(TelemetryConfig cfg);
  ~Hub();
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] Profiler& profiler() { return profiler_; }
  [[nodiscard]] CellTracer& tracer() { return tracer_; }
  [[nodiscard]] FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] TimeSeriesSampler& sampler() { return sampler_; }
  [[nodiscard]] PerfSampler& oob_sampler() { return oob_sampler_; }
  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

  /// Called once by the simulation that adopts this hub: sizes the
  /// flight-recorder rings and installs the invariant failure hook. The
  /// hub guards its attach/finish state with its own role internally
  /// (common::telemetry_hub_role), so producers stay annotation-free.
  void attach_nodes(std::int32_t nodes)
      SIRIUS_EXCLUDES(common::telemetry_hub_role);

  /// Any event sink live? Checked before building a CellEventRecord.
  [[nodiscard]] bool tracing() const {
    return tracer_.enabled() || recorder_.enabled();
  }
  [[nodiscard]] bool metrics_enabled() const { return sampler_.enabled(); }

  void on_cell_event(const CellEventRecord& r) {
    if (recorder_.enabled()) recorder_.record(r);
    if (tracer_.wants(r.flow)) tracer_.record(r);
  }

  void maybe_sample(Time now) { sampler_.maybe_sample(now); }
  void sample(Time now) { sampler_.sample(now); }

  /// One artifact finish() wrote (or failed to write).
  struct Artifact {
    std::string kind;  ///< "metrics" | "trace" | "flame" | "oob"
    std::string path;
    bool ok = false;
  };

  /// Stops the out-of-band sampler and flushes the metrics series, the
  /// trace, the flame profile and the sampler series to their configured
  /// paths. Idempotent per hub; returns what was written for the manifest.
  std::vector<Artifact> finish()
      SIRIUS_EXCLUDES(common::telemetry_hub_role);

 private:
  TelemetryConfig cfg_;
  MetricsRegistry metrics_;
  TimeSeriesSampler sampler_;
  CellTracer tracer_;
  FlightRecorder recorder_;
  Profiler profiler_;
  PerfSampler oob_sampler_;
  std::int32_t nodes_ SIRIUS_GUARDED_BY(common::telemetry_hub_role) = 0;
  bool hook_installed_ SIRIUS_GUARDED_BY(common::telemetry_hub_role) = false;
};

}  // namespace sirius::telemetry

#if defined(SIRIUS_TELEMETRY)
/// Emits one cell-lifecycle event through `hub` (a Hub*, may be null).
/// Arguments are not evaluated unless an event sink is live. Parameter
/// names carry trailing underscores so they cannot capture the record's
/// member names during expansion.
#define SIRIUS_CELL_EVENT(hub_, ev_, at_, node_, peer_, dst_, flow_, seq_) \
  do {                                                                     \
    ::sirius::telemetry::Hub* sirius_cell_event_hub = (hub_);              \
    if (sirius_cell_event_hub != nullptr &&                                \
        sirius_cell_event_hub->tracing()) {                                \
      ::sirius::telemetry::CellEventRecord sirius_cell_event_rec;          \
      sirius_cell_event_rec.at = (at_);                                    \
      sirius_cell_event_rec.event = (ev_);                                 \
      sirius_cell_event_rec.node = (node_);                                \
      sirius_cell_event_rec.peer = (peer_);                                \
      sirius_cell_event_rec.dst = (dst_);                                  \
      sirius_cell_event_rec.flow = (flow_);                                \
      sirius_cell_event_rec.seq = (seq_);                                  \
      sirius_cell_event_hub->on_cell_event(sirius_cell_event_rec);         \
    }                                                                      \
  } while (false)
#else
#define SIRIUS_CELL_EVENT(hub_, ev_, at_, node_, peer_, dst_, flow_, seq_) \
  static_cast<void>(0)
#endif
