#include "telemetry/manifest.hpp"

#include "common/atomic_file.hpp"

namespace sirius::telemetry {

JsonObject& Manifest::section(const std::string& name) {
  for (auto& [key, obj] : sections_) {
    if (key == name) return obj;
  }
  sections_.emplace_back(name, JsonObject{});
  return sections_.back().second;
}

std::string Manifest::build_info_json() {
  JsonObject b;
  add_build_info(b);
  return b.str();
}

void Manifest::add_build_info(JsonObject& b) {
#if defined(__VERSION__)
  b.add("compiler", __VERSION__);
#else
  b.add("compiler", "unknown");
#endif
  b.add_int("cxx_standard", static_cast<std::int64_t>(__cplusplus));
#if defined(SIRIUS_AUDIT)
  b.add_bool("sirius_audit", true);
#else
  b.add_bool("sirius_audit", false);
#endif
#if defined(SIRIUS_TELEMETRY)
  b.add_bool("sirius_telemetry", true);
#else
  b.add_bool("sirius_telemetry", false);
#endif
#if defined(NDEBUG)
  b.add_bool("ndebug", true);
#else
  b.add_bool("ndebug", false);
#endif
}

std::string Manifest::to_json() const {
  std::string out = "{\n  \"schema\": \"";
  out += kSchema;
  out += "\"";
  for (const auto& [key, obj] : sections_) {
    out += ",\n  \"" + json_escape(key) + "\": " + obj.str();
  }
  out += "\n}\n";
  return out;
}

bool Manifest::write(const std::string& path) const {
  // Crash-safe: an aborted run leaves the previous manifest (or nothing),
  // never a truncated JSON document.
  return write_file_atomic(path, to_json());
}

}  // namespace sirius::telemetry
