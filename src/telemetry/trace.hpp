// Cell-lifecycle tracer: buffers CellEventRecords and writes them as
// Chrome trace-event JSON (the "JSON Array Format" every Chromium-family
// viewer understands — chrome://tracing, Perfetto's legacy importer, or
// `trace_processor`).
//
// Layout: each rack is one "process" (pid = rack id) so Perfetto shows one
// track per node; every event is an instant event ("ph": "i") at the
// simulated time in microseconds, with flow/seq/peer/dst in args. File
// size is bounded two ways: a deterministic flow-sampling filter (keep
// flows with id % sample == 0) and a hard event cap with a dropped-count
// in the trace metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/events.hpp"

namespace sirius::telemetry {

class CellTracer {
 public:
  /// Enables the tracer: keep flows with id % `flow_sample` == 0 (1 = all)
  /// and stop recording past `max_events` (counting the overflow).
  void configure(std::int64_t flow_sample, std::int64_t max_events);

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Sampling filter, checked before building a record. Events not tied to
  /// a flow (negative id) are kept only when sampling is off — under
  /// sampling the protocol chatter would dominate the file.
  [[nodiscard]] bool wants(FlowId flow) const {
    if (!enabled_) return false;
    if (flow < 0) return sample_ <= 1;
    return sample_ <= 1 || flow % sample_ == 0;
  }

  void record(const CellEventRecord& r);

  [[nodiscard]] std::int64_t recorded() const {
    return static_cast<std::int64_t>(events_.size());
  }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::vector<CellEventRecord>& events() const {
    return events_;
  }

  /// Writes the Chrome trace-event JSON. `nodes` bounds the per-node
  /// process-name metadata; only nodes that actually emitted events get a
  /// track.
  [[nodiscard]] bool write_chrome_json(const std::string& path,
                                       std::int32_t nodes) const;

 private:
  bool enabled_ = false;
  std::int64_t sample_ = 1;
  std::int64_t cap_ = 1'000'000;
  std::int64_t dropped_ = 0;
  std::vector<CellEventRecord> events_;
};

}  // namespace sirius::telemetry
