// Fixed-bin time series and the ASCII strip-chart renderer.
//
// BinnedSeries is the storage behind every goodput-vs-time curve: values
// accumulate into fixed-width simulated-time buckets, growing the bin
// vector on demand. stats::RecoveryMeter (§4.5 recovery transients) sits
// on top of it, and the failover ablation renders its curves through
// render_strip_chart() so every bench draws the same chart the same way.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sirius::telemetry {

/// Accumulates add(at, v) into per-bin sums over [0, inf), bin width fixed
/// at construction. Negative times are ignored.
class BinnedSeries {
 public:
  explicit BinnedSeries(Time bin);

  void add(Time at, double value);

  [[nodiscard]] Time bin_width() const { return bin_; }
  [[nodiscard]] const std::vector<double>& bins() const { return bins_; }
  [[nodiscard]] std::size_t size() const { return bins_.size(); }
  /// Start time of bin `i`.
  [[nodiscard]] Time bin_start(std::size_t i) const;
  /// Checkpoint restore: replaces the accumulated bins wholesale.
  void set_bins(std::vector<double> bins) { bins_ = std::move(bins); }

 private:
  Time bin_;
  std::vector<double> bins_;
};

/// One rendered strip chart: `cells` holds one glyph per column.
struct StripChart {
  std::string cells;
  std::size_t stride = 1;  ///< source bins per column
  std::size_t shown = 0;   ///< source bins rendered (after tail trim)
};

/// Renders `per_bin` values as a one-line ASCII strip chart scaled to
/// `baseline`: '#' >= 95%, '+' >= 75%, '-' >= 50%, '.' >= 25%, ' ' below;
/// 'X' marks any column containing `mark_bin` (pass a negative index for
/// no marker). Trailing bins below 0.5 x baseline are trimmed first (the
/// drain tail of a run would read as a dip), then bins are averaged into
/// at most `max_columns` columns.
StripChart render_strip_chart(const std::vector<double>& per_bin,
                              double baseline, std::ptrdiff_t mark_bin,
                              std::size_t max_columns = 100);

}  // namespace sirius::telemetry
