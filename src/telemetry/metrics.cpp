#include "telemetry/metrics.hpp"

#include <sstream>

#include "common/atomic_file.hpp"
#include "common/invariant.hpp"
#include "telemetry/json.hpp"

namespace sirius::telemetry {

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return counters_[it->second];
  counter_index_.emplace(name, counters_.size());
  counter_names_.push_back(name);
  counters_.emplace_back();
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return gauges_[it->second];
  gauge_index_.emplace(name, gauges_.size());
  gauge_names_.push_back(name);
  gauges_.emplace_back();
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return histograms_[it->second];
  histogram_index_.emplace(name, histograms_.size());
  histogram_names_.push_back(name);
  histograms_.emplace_back(lo, hi, bins);
  return histograms_.back();
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? nullptr : &counters_[it->second];
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? nullptr : &gauges_[it->second];
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr : &histograms_[it->second];
}

Counter* MetricsRegistry::find_counter_mut(const std::string& name) {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? nullptr : &counters_[it->second];
}

Gauge* MetricsRegistry::find_gauge_mut(const std::string& name) {
  const auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? nullptr : &gauges_[it->second];
}

Histogram* MetricsRegistry::find_histogram_mut(const std::string& name) {
  const auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr : &histograms_[it->second];
}

std::vector<std::string> MetricsRegistry::series_names() const {
  std::vector<std::string> out = counter_names_;
  out.insert(out.end(), gauge_names_.begin(), gauge_names_.end());
  return out;
}

std::vector<double> MetricsRegistry::series_values() const {
  std::vector<double> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const Counter& c : counters_) {
    out.push_back(static_cast<double>(c.value()));
  }
  for (const Gauge& g : gauges_) out.push_back(g.value());
  return out;
}

std::string MetricsRegistry::histograms_json() const {
  JsonObject all;
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    const Histogram& h = histograms_[i];
    JsonObject one;
    one.add_int("count", static_cast<std::int64_t>(h.total()));
    one.add_num("p50", h.percentile(50.0));
    one.add_num("p90", h.percentile(90.0));
    one.add_num("p99", h.percentile(99.0));
    all.add_raw(histogram_names_[i], one.str());
  }
  return all.str();
}

void TimeSeriesSampler::configure(const MetricsRegistry* registry,
                                  Time every) {
  SIRIUS_INVARIANT(every > Time::zero(),
                   "metrics sampling cadence must be positive");
  if (every <= Time::zero()) return;
  registry_ = registry;
  every_ = every;
  next_ = Time::zero();
}

void TimeSeriesSampler::maybe_sample(Time now) {
  if (registry_ == nullptr || now < next_) return;
  sample(now);
  next_ = now + every_;
}

void TimeSeriesSampler::sample(Time now) {
  if (registry_ == nullptr) return;
  if (!columns_locked_) {
    columns_ = registry_->series_names();
    columns_locked_ = true;
  }
  Row row;
  row.at = now;
  row.values = registry_->series_values();
  // Metrics registered after the first sample would misalign the columns;
  // truncate to the locked set (producers register before the run starts).
  if (row.values.size() > columns_.size()) row.values.resize(columns_.size());
  rows_.push_back(std::move(row));
}

bool TimeSeriesSampler::write_jsonl(const std::string& path) const {
  std::ostringstream out;
  for (const Row& row : rows_) {
    JsonObject o;
    o.add_num("t_us", row.at.to_us());
    for (std::size_t i = 0; i < row.values.size(); ++i) {
      o.add_num(columns_[i], row.values[i]);
    }
    out << o.str() << "\n";
  }
  return write_file_atomic(path, out.str());
}

bool TimeSeriesSampler::write_csv(const std::string& path) const {
  std::ostringstream out;
  out << "t_us";
  for (const std::string& c : columns_) out << "," << c;
  out << "\n";
  for (const Row& row : rows_) {
    out << json_number(row.at.to_us());
    for (const double v : row.values) out << "," << json_number(v);
    out << "\n";
  }
  return write_file_atomic(path, out.str());
}

void TimeSeriesSampler::restore_series(std::vector<std::string> columns,
                                       std::vector<Row> rows, Time next) {
  columns_ = std::move(columns);
  rows_ = std::move(rows);
  columns_locked_ = !columns_.empty();
  next_ = next;
}

}  // namespace sirius::telemetry
