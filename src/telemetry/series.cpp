#include "telemetry/series.hpp"

#include <algorithm>

#include "common/invariant.hpp"

namespace sirius::telemetry {

BinnedSeries::BinnedSeries(Time bin) : bin_(bin) {
  SIRIUS_INVARIANT(bin > Time::zero(), "BinnedSeries bin must be positive");
  if (bin_ <= Time::zero()) bin_ = Time::us(1);
}

void BinnedSeries::add(Time at, double value) {
  if (at < Time::zero()) return;
  const auto i = static_cast<std::size_t>(at / bin_);
  // Bin growth is monotone in sim time: O(log) doublings per run,
  // hot only through the name-keyed `add` merge.
  // sirius-lint: allow(hot-path-alloc)
  if (bins_.size() <= i) bins_.resize(i + 1, 0.0);
  bins_[i] += value;
}

Time BinnedSeries::bin_start(std::size_t i) const {
  return bin_ * static_cast<std::int64_t>(i);
}

StripChart render_strip_chart(const std::vector<double>& per_bin,
                              double baseline, std::ptrdiff_t mark_bin,
                              std::size_t max_columns) {
  StripChart out;
  if (max_columns == 0) max_columns = 1;
  const double base = baseline > 0.0 ? baseline : 1.0;

  // Trim the drain tail: trailing bins far below baseline are the arrival
  // process winding down, not a fault dip.
  std::size_t last = per_bin.size();
  while (last > 0 && per_bin[last - 1] < 0.5 * baseline) --last;
  // Never trim away the marked bin itself.
  if (mark_bin >= 0 &&
      static_cast<std::size_t>(mark_bin) < per_bin.size() &&
      last <= static_cast<std::size_t>(mark_bin)) {
    last = static_cast<std::size_t>(mark_bin) + 1;
  }
  out.shown = last;
  out.stride = last > max_columns ? (last + max_columns - 1) / max_columns : 1;

  for (std::size_t i = 0; i < last; i += out.stride) {
    double sum = 0.0;
    bool marked = false;
    const std::size_t end = std::min(last, i + out.stride);
    for (std::size_t j = i; j < end; ++j) {
      sum += per_bin[j];
      marked = marked || (mark_bin >= 0 &&
                          j == static_cast<std::size_t>(mark_bin));
    }
    const double frac = sum / (static_cast<double>(end - i) * base);
    const char glyph = frac >= 0.95   ? '#'
                       : frac >= 0.75 ? '+'
                       : frac >= 0.50 ? '-'
                       : frac >= 0.25 ? '.'
                                      : ' ';
    out.cells.push_back(marked ? 'X' : glyph);
  }
  return out;
}

}  // namespace sirius::telemetry
