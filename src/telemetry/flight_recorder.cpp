#include "telemetry/flight_recorder.hpp"

#include <cstdio>

#include "telemetry/trace.hpp"

namespace sirius::telemetry {

void FlightRecorder::configure(std::int32_t nodes, std::int32_t depth) {
  if (nodes <= 0 || depth <= 0) return;
  depth_ = depth;
  rings_.assign(static_cast<std::size_t>(nodes), {});
  // Pre-size every ring to its fixed depth so the record() fill phase —
  // hot-path-reachable through the cell-event hook — never reallocates.
  for (auto& ring : rings_) ring.reserve(static_cast<std::size_t>(depth_));
  next_.assign(static_cast<std::size_t>(nodes), 0);
  seen_.assign(static_cast<std::size_t>(nodes), 0);
}

void FlightRecorder::record(const CellEventRecord& r) {
  if (depth_ <= 0 || r.node < 0 ||
      static_cast<std::size_t>(r.node) >= rings_.size()) {
    return;
  }
  auto& ring = rings_[static_cast<std::size_t>(r.node)];
  auto& cursor = next_[static_cast<std::size_t>(r.node)];
  if (ring.size() < static_cast<std::size_t>(depth_)) {
    ring.push_back(r);
  } else {
    ring[cursor] = r;
  }
  cursor = (cursor + 1) % static_cast<std::size_t>(depth_);
  ++seen_[static_cast<std::size_t>(r.node)];
}

std::string FlightRecorder::dump() const {
  std::string out = "flight recorder: last " + std::to_string(depth_) +
                    " events per node\n";
  char line[160];
  for (std::size_t n = 0; n < rings_.size(); ++n) {
    const auto& ring = rings_[n];
    if (ring.empty()) continue;
    std::snprintf(line, sizeof line, "node %zu (%lld events total):\n", n,
                  static_cast<long long>(seen_[n]));
    out += line;
    // Oldest first: the cursor points at the oldest entry once the ring
    // has wrapped.
    const std::size_t start = ring.size() < static_cast<std::size_t>(depth_)
                                  ? 0
                                  : next_[n];
    for (std::size_t k = 0; k < ring.size(); ++k) {
      const CellEventRecord& r = ring[(start + k) % ring.size()];
      std::snprintf(line, sizeof line,
                    "  %12.3f us  %-13s flow=%lld seq=%d peer=%d dst=%d\n",
                    r.at.to_us(), cell_event_name(r.event),
                    static_cast<long long>(r.flow), r.seq, r.peer, r.dst);
      out += line;
    }
  }
  return out;
}

void FlightRecorder::on_invariant_failure() {
  if (depth_ <= 0 || dumping_) return;
  dumping_ = true;
  last_dump_ = dump();
  ++dumps_;
  std::fprintf(stderr, "%s", last_dump_.c_str());
  dumping_ = false;
}

}  // namespace sirius::telemetry
