// Flight recorder: a bounded ring of recent cell-lifecycle events per
// node, dumped automatically when a SIRIUS_INVARIANT fails.
//
// The conservation/queue-bound auditors tell you *that* a property broke;
// the flight recorder tells you what the fabric was doing just before. It
// records every event (no sampling — the rings bound memory instead) and
// registers itself as the InvariantContext failure hook, so the dump lands
// on stderr next to the invariant report in both abort and collect modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/events.hpp"

namespace sirius::telemetry {

class FlightRecorder {
 public:
  /// Enables the recorder with one ring of `depth` events per node.
  void configure(std::int32_t nodes, std::int32_t depth);

  [[nodiscard]] bool enabled() const { return depth_ > 0; }
  [[nodiscard]] std::int32_t depth() const { return depth_; }

  void record(const CellEventRecord& r);

  /// All retained events, per node, oldest first.
  [[nodiscard]] std::string dump() const;

  /// The invariant hook body: snapshots dump() and writes it to stderr.
  /// Re-entrancy safe (a violation raised while dumping is not recursed
  /// into).
  void on_invariant_failure();

  [[nodiscard]] std::int64_t dumps() const { return dumps_; }
  [[nodiscard]] const std::string& last_dump() const { return last_dump_; }

 private:
  std::int32_t depth_ = 0;
  std::vector<std::vector<CellEventRecord>> rings_;  // per node, capacity
                                                     // depth_
  std::vector<std::size_t> next_;   // ring write cursor per node
  std::vector<std::int64_t> seen_;  // events ever recorded per node
  std::int64_t dumps_ = 0;
  std::string last_dump_;
  bool dumping_ = false;
};

}  // namespace sirius::telemetry
