#include "telemetry/perf_sampler.hpp"

#include <chrono>

#include "telemetry/json.hpp"

namespace sirius::telemetry {

void PerfSampler::start(std::int64_t interval_us) {
  if (thread_.joinable()) return;
  interval_us_ = interval_us < 100 ? 100 : interval_us;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = false;
  }
  started_ = true;
  samples_.clear();
  const std::uint64_t t0 = Profiler::now_nanos();
  thread_ = std::thread([this, t0] { run_loop(t0); });
}

void PerfSampler::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();  // happens-before edge: samples_ is ours again
}

void PerfSampler::sample_once(std::uint64_t t0_ns) {
  Sample s;
  s.wall_ns = Profiler::now_nanos() - t0_ns;
  for (std::size_t i = 0; i < kProfScopeCount; ++i) {
    s.nanos[i] = board_.nanos[i].load(std::memory_order_relaxed);
    s.calls[i] = board_.calls[i].load(std::memory_order_relaxed);
  }
  samples_.push_back(s);
}

void PerfSampler::run_loop(std::uint64_t t0_ns) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Duration-based wait: no calendar clock involved, and a spurious
    // wakeup just takes a harmless extra sample.
    cv_.wait_for(lk, std::chrono::microseconds(interval_us_),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lk.unlock();
    sample_once(t0_ns);
    lk.lock();
  }
  lk.unlock();
  // Final snapshot: end-of-run totals are always observed, even when the
  // run is shorter than one interval.
  sample_once(t0_ns);
}

std::string PerfSampler::samples_json() const {
  std::string phases = "[";
  for (std::size_t i = 0; i < kProfScopeCount; ++i) {
    if (i > 0) phases += ",";
    phases += "\"";
    phases += json_escape(prof_scope_name(static_cast<ProfScope>(i)));
    phases += "\"";
  }
  phases += "]";

  std::string rows = "[";
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    const Sample& s = samples_[r];
    if (r > 0) rows += ",";
    JsonObject o;
    o.add_int("wall_ns", static_cast<std::int64_t>(s.wall_ns));
    std::string nanos = "[";
    std::string calls = "[";
    for (std::size_t i = 0; i < kProfScopeCount; ++i) {
      if (i > 0) {
        nanos += ",";
        calls += ",";
      }
      nanos += std::to_string(s.nanos[i]);
      calls += std::to_string(s.calls[i]);
    }
    nanos += "]";
    calls += "]";
    o.add_raw("nanos", nanos);
    o.add_raw("calls", calls);
    rows += o.str();
  }
  rows += "]";

  JsonObject top;
  top.add("schema", "sirius.oob.v1");
  top.add_int("interval_us", interval_us_);
  top.add_raw("phases", phases);
  top.add_raw("samples", rows);
  return top.str();
}

}  // namespace sirius::telemetry
