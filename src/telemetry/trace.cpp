#include "telemetry/trace.hpp"

#include <sstream>

#include "common/atomic_file.hpp"

#include "telemetry/json.hpp"

namespace sirius::telemetry {

const char* cell_event_name(CellEvent e) {
  switch (e) {
    case CellEvent::kInject: return "inject";
    case CellEvent::kRequest: return "request";
    case CellEvent::kGrant: return "grant";
    case CellEvent::kFirstHopTx: return "first_hop_tx";
    case CellEvent::kRelayEnqueue: return "relay_enqueue";
    case CellEvent::kRelayDequeue: return "relay_dequeue";
    case CellEvent::kDeliver: return "deliver";
    case CellEvent::kDrop: return "drop";
    case CellEvent::kRetransmit: return "retransmit";
  }
  return "unknown";
}

void CellTracer::configure(std::int64_t flow_sample, std::int64_t max_events) {
  enabled_ = true;
  sample_ = flow_sample < 1 ? 1 : flow_sample;
  cap_ = max_events < 1 ? 1 : max_events;
  // Pre-size to the cap so record() — hot-path-reachable through the
  // cell-event hook — never reallocates while tracing is on.
  events_.reserve(static_cast<std::size_t>(cap_));
}

void CellTracer::record(const CellEventRecord& r) {
  if (!enabled_) return;
  if (static_cast<std::int64_t>(events_.size()) >= cap_) {
    ++dropped_;
    return;
  }
  events_.push_back(r);
}

bool CellTracer::write_chrome_json(const std::string& path,
                                   std::int32_t nodes) const {
  std::ostringstream out;
  std::vector<bool> seen(nodes > 0 ? static_cast<std::size_t>(nodes) : 0,
                         false);
  for (const CellEventRecord& r : events_) {
    if (r.node >= 0 && static_cast<std::size_t>(r.node) < seen.size()) {
      seen[static_cast<std::size_t>(r.node)] = true;
    }
  }

  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  const auto emit = [&out, &first](const std::string& obj) {
    out << (first ? "\n" : ",\n") << obj;
    first = false;
  };

  // Per-node tracks: one Perfetto "process" per rack.
  for (std::size_t n = 0; n < seen.size(); ++n) {
    if (!seen[n]) continue;
    JsonObject args;
    args.add("name", "node " + std::to_string(n));
    JsonObject m;
    m.add("ph", "M")
        .add("name", "process_name")
        .add_int("pid", static_cast<std::int64_t>(n))
        .add_int("tid", 0)
        .add_raw("args", args.str());
    emit(m.str());
  }

  for (const CellEventRecord& r : events_) {
    JsonObject args;
    if (r.flow >= 0) args.add_int("flow", r.flow);
    if (r.seq >= 0) args.add_int("seq", r.seq);
    if (r.peer != kInvalidNode) args.add_int("peer", r.peer);
    if (r.dst != kInvalidNode) args.add_int("dst", r.dst);
    JsonObject e;
    e.add("name", cell_event_name(r.event))
        .add("ph", "i")
        .add("s", "t")
        .add_num("ts", r.at.to_us())
        .add_int("pid", r.node)
        .add_int("tid", 0)
        .add("cat", "cell")
        .add_raw("args", args.str());
    emit(e.str());
  }
  out << "\n], \"otherData\": {\"dropped_events\": " << dropped_ << "}}\n";
  // Crash-safe: temp file + atomic rename, like every other artifact.
  return write_file_atomic(path, out.str());
}

}  // namespace sirius::telemetry
