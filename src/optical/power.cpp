#include "optical/power.hpp"

// Header-only; this TU anchors the library.
