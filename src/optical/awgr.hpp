// Arrayed Waveguide Grating Router (AWGR) — the passive core of Sirius.
//
// An AWGR with P ports routes wavelength w arriving at input port i to
// output port (i + w) mod P (cyclic diffraction, Fig. 3a of the paper).
// It is completely passive: no power, no state, no reconfiguration — the
// routing function below is the entire device.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/units.hpp"

namespace sirius::optical {

/// A P-port cyclic AWGR.
class Awgr {
 public:
  /// `ports`: number of input (= output) ports. `insertion_loss_db`:
  /// optical power lost end to end through the grating (<= 6 dB for
  /// 100-port devices per §4.5).
  explicit Awgr(std::int32_t ports, double insertion_loss_db = 6.0)
      : ports_(ports), insertion_loss_db_(insertion_loss_db) {
    assert(ports > 0);
  }

  [[nodiscard]] std::int32_t ports() const { return ports_; }
  [[nodiscard]] double insertion_loss_db() const { return insertion_loss_db_; }

  /// Output port for light of wavelength index `w` entering input `input`.
  /// Implements the cyclic routing W[i][j] -> output (i + j) mod P.
  [[nodiscard]] std::int32_t route(std::int32_t input, WavelengthId w) const {
    assert(input >= 0 && input < ports_);
    assert(w >= 0);
    return static_cast<std::int32_t>((input + w) % ports_);
  }

  /// The wavelength a sender on `input` must tune to so its light exits on
  /// `output` — inverse of route(). route(input, λ) == output always holds.
  [[nodiscard]] WavelengthId wavelength_for(std::int32_t input, std::int32_t output) const {
    assert(input >= 0 && input < ports_);
    assert(output >= 0 && output < ports_);
    return static_cast<WavelengthId>((output - input + ports_) % ports_);
  }

 private:
  std::int32_t ports_;
  double insertion_loss_db_;
};

}  // namespace sirius::optical
