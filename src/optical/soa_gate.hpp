// Semiconductor Optical Amplifier (SOA) used as a nanosecond optical gate.
//
// In the disaggregated laser (§3.3 and Fig. 4), an array of SOAs selects one
// wavelength out of a multi-wavelength source: the SOA for the selected
// channel is driven on (amplifies), all others are off (absorb). Switching
// wavelength λi -> λj means turning SOAi off and SOAj on; the tuning latency
// is whichever of the two transitions finishes later.
//
// Our chip-level calibration targets Fig. 8a: the measured on (rise) and off
// (fall) time distributions are sub-nanosecond with worst cases of 527 ps
// and 912 ps respectively.
#pragma once

#include <cstdint>
#include <vector>

#include "common/distributions.hpp"
#include "common/time.hpp"

namespace sirius::optical {

struct SoaConfig {
  Time rise_median = Time::ps(250);  ///< typical turn-on (10->90 %)
  Time fall_median = Time::ps(420);  ///< typical turn-off
  Time rise_worst = Time::ps(527);   ///< Fig. 8a worst measured rise
  Time fall_worst = Time::ps(912);   ///< Fig. 8a worst measured fall
  double gain_db = 10.0;             ///< on-state gain
  double extinction_db = 40.0;       ///< off-state suppression
  double power_mw = 150.0;           ///< drive power when on
};

/// One SOA gate with stochastic (but clamped) switching transients.
///
/// Each device on a chip has a fixed characteristic rise/fall time drawn at
/// construction from a log-normal spread around the configured medians —
/// matching how Fig. 8a aggregates the per-device measurements across the
/// 19-SOA chip — and clamped to the measured worst cases.
class SoaGate {
 public:
  SoaGate(const SoaConfig& cfg, Rng& rng);

  /// 10–90 % turn-on time of this device.
  [[nodiscard]] Time rise_time() const { return rise_; }
  /// 90–10 % turn-off time of this device.
  [[nodiscard]] Time fall_time() const { return fall_; }

  [[nodiscard]] bool is_on() const { return on_; }
  /// Drives the gate on; returns the transition time.
  Time turn_on();
  /// Drives the gate off; returns the transition time.
  Time turn_off();

  [[nodiscard]] double gain_db() const { return cfg_.gain_db; }
  [[nodiscard]] double extinction_db() const { return cfg_.extinction_db; }
  /// Electrical power drawn right now (only the on-state SOA consumes).
  [[nodiscard]] double power_mw() const { return on_ ? cfg_.power_mw : 0.0; }

 private:
  SoaConfig cfg_;
  Time rise_;
  Time fall_;
  bool on_ = false;
};

/// A bank of `n` SOA gates on one chip, exactly one on at a time
/// (the wavelength selector of the disaggregated laser).
class SoaArray {
 public:
  SoaArray(std::int32_t n, const SoaConfig& cfg, Rng& rng);

  [[nodiscard]] std::int32_t size() const { return static_cast<std::int32_t>(gates_.size()); }
  const SoaGate& gate(std::int32_t i) const { return gates_.at(static_cast<std::size_t>(i)); }

  [[nodiscard]] std::int32_t selected() const { return selected_; }

  /// Switches the selection from the current gate to `i`; the old gate
  /// falls while the new one rises concurrently, so the array is "tuned"
  /// after max(fall_old, rise_new). Returns that switching time.
  Time select(std::int32_t i);

  /// Worst-case switching time over all ordered gate pairs.
  [[nodiscard]] Time worst_case_switch() const;

 private:
  std::vector<SoaGate> gates_;
  std::int32_t selected_ = -1;
};

}  // namespace sirius::optical
