#include "optical/crosstalk.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sirius::optical {

double CrosstalkModel::total_crosstalk_ratio(std::int32_t ports) const {
  assert(ports >= 1);
  if (ports <= 1) return 0.0;
  const double adj = std::pow(10.0, -cfg_.adjacent_isolation_db / 10.0);
  const double far = std::pow(10.0, -cfg_.nonadjacent_isolation_db / 10.0);
  const std::int32_t adjacent = std::min(2, ports - 1);
  const std::int32_t nonadjacent = ports - 1 - adjacent;
  return adjacent * adj + nonadjacent * far;
}

double CrosstalkModel::total_crosstalk_db(std::int32_t ports) const {
  const double r = total_crosstalk_ratio(ports);
  return r > 0.0 ? -10.0 * std::log10(r) : 300.0;
}

double CrosstalkModel::power_penalty_db(std::int32_t ports) const {
  const double eps = total_crosstalk_ratio(ports);
  // Interferometric (beat-noise) bound: the crosstalk field beats against
  // the signal field, so the penalty grows with the field ratio sqrt(eps).
  const double arg = 1.0 - 2.0 * std::sqrt(eps);
  if (arg <= 0.05) return 20.0;  // link effectively closed
  return std::min(20.0, -10.0 * std::log10(arg));
}

std::int32_t CrosstalkModel::max_ports_within_penalty(double margin_db,
                                                      std::int32_t limit) const {
  assert(margin_db > 0.0);
  std::int32_t best = 1;
  for (std::int32_t p = 2; p <= limit; ++p) {
    if (power_penalty_db(p) <= margin_db) {
      best = p;
    } else {
      break;  // penalty is monotone in port count
    }
  }
  return best;
}

}  // namespace sirius::optical
