// Technology-agnostic interface of a fast-tunable light source, implemented
// by the standard DSDBR laser and by every disaggregated design (§3.2-3.3).
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::optical {

class TunableSource {
 public:
  virtual ~TunableSource() = default;

  /// Number of wavelengths the source can emit.
  virtual std::int32_t wavelengths() const = 0;
  /// Currently emitted wavelength (-1 before the first tune).
  virtual WavelengthId current() const = 0;
  /// Retunes to `w`; returns the time until the new wavelength is stable.
  virtual Time tune_to(WavelengthId w) = 0;
  /// Informs the source of the wavelength needed after the next one, so
  /// pipelined designs can pre-tune. Default: ignored.
  virtual void announce_next(WavelengthId /*w*/) {}
  /// Worst-case tuning latency across all transitions.
  virtual Time worst_case_latency() const = 0;
  /// Electrical power drawn by the full source assembly, in watts.
  virtual double power_watts() const = 0;
};

}  // namespace sirius::optical
