#include "optical/ber_model.hpp"

#include <cmath>

namespace sirius::optical {
namespace {

double ber_from_q(double q) {
  return 0.5 * std::erfc(q / std::sqrt(2.0));
}

// Inverse of ber_from_q via bisection (monotone decreasing in q).
double q_from_ber(double ber) {
  double lo = 0.0, hi = 20.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ber_from_q(mid) > ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

BerModel::BerModel(BerModelConfig cfg) : cfg_(cfg) {
  const double q_at_sens = q_from_ber(cfg_.fec_threshold);
  const double sens_mw = cfg_.sensitivity.in_mw();
  q_per_mw_ = q_at_sens / sens_mw;
}

double BerModel::q_factor(OpticalPower received) const {
  const double penalty_db =
      cfg_.channel_penalty_db + cfg_.modulation_penalty_db;
  const double mw = received.attenuated(penalty_db).in_mw();
  return q_per_mw_ * mw;
}

double BerModel::pre_fec_ber(OpticalPower received) const {
  return ber_from_q(q_factor(received));
}

double BerModel::post_fec_ber(OpticalPower received) const {
  const double pre = pre_fec_ber(received);
  if (pre >= 0.5) return 0.5;
  // Hard-decision RS-style cliff: below threshold the output BER collapses;
  // we model it as (pre/threshold)^t with a high correction exponent, then
  // clamp to a 1e-15 floor.
  constexpr double kExponent = 8.0;
  const double post = std::pow(pre / cfg_.fec_threshold, kExponent) * 1e-13;
  if (post < 1e-15) return 1e-15;
  if (post > 0.5) return 0.5;
  return post;
}

bool BerModel::error_free(OpticalPower received) const {
  return post_fec_ber(received) < 1e-12;
}

}  // namespace sirius::optical
