#include "optical/soa_gate.hpp"

#include <algorithm>
#include <cassert>

namespace sirius::optical {
namespace {

Time draw_transition(Time median, Time worst, Rng& rng) {
  // Log-normal spread with the worst case at roughly the 99.9th percentile;
  // clamped so no device exceeds the measured worst case.
  const double med = static_cast<double>(median.picoseconds());
  const double cap = static_cast<double>(worst.picoseconds());
  LogNormalDistribution d =
      LogNormalDistribution::from_median_and_tail(med, cap / med);
  const double v = std::min(d.sample(rng), cap);
  return Time::ps(static_cast<std::int64_t>(v + 0.5));
}

}  // namespace

SoaGate::SoaGate(const SoaConfig& cfg, Rng& rng)
    : cfg_(cfg),
      rise_(draw_transition(cfg.rise_median, cfg.rise_worst, rng)),
      fall_(draw_transition(cfg.fall_median, cfg.fall_worst, rng)) {}

Time SoaGate::turn_on() {
  on_ = true;
  return rise_;
}

Time SoaGate::turn_off() {
  on_ = false;
  return fall_;
}

SoaArray::SoaArray(std::int32_t n, const SoaConfig& cfg, Rng& rng) {
  assert(n > 0);
  gates_.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) gates_.emplace_back(cfg, rng);
}

Time SoaArray::select(std::int32_t i) {
  assert(i >= 0 && i < size());
  if (i == selected_) return Time::zero();
  Time t = gates_[static_cast<std::size_t>(i)].turn_on();
  if (selected_ >= 0) {
    t = std::max(t, gates_[static_cast<std::size_t>(selected_)].turn_off());
  }
  selected_ = i;
  return t;
}

Time SoaArray::worst_case_switch() const {
  Time worst_rise = Time::zero();
  Time worst_fall = Time::zero();
  for (const auto& g : gates_) {
    worst_rise = std::max(worst_rise, g.rise_time());
    worst_fall = std::max(worst_fall, g.fall_time());
  }
  return std::max(worst_rise, worst_fall);
}

}  // namespace sirius::optical
