// AWGR crosstalk model — what ultimately limits grating port count.
//
// A real AWGR leaks a little of every other input's light into each
// output: adjacent channels at the adjacent-channel isolation level,
// far channels at the (better) non-adjacent level. In Sirius every input
// port is active in every slot (the schedule is a full permutation), so a
// P-port grating superimposes P-1 interferers on each output. The
// aggregate in-band crosstalk behaves like noise and erodes the receiver's
// effective sensitivity; this model turns (port count, isolation) into a
// dB power penalty that can be fed straight into BerModelConfig's
// channel_penalty_db — connecting the §3.1 scaling claims (100-port
// commercial, 512-port demonstrated) to the §4.5 link budget.
#pragma once

#include <cstdint>

#include "optical/power.hpp"

namespace sirius::optical {

struct CrosstalkConfig {
  /// Leakage from each of the two spectrally adjacent channels, in dB
  /// below the signal (good chip-scale AWGRs reach ~27 dB).
  double adjacent_isolation_db = 27.0;
  /// Leakage from every non-adjacent channel (typical: ~37 dB).
  double nonadjacent_isolation_db = 37.0;
};

class CrosstalkModel {
 public:
  explicit CrosstalkModel(CrosstalkConfig cfg = {}) : cfg_(cfg) {}

  const CrosstalkConfig& config() const { return cfg_; }

  /// Total crosstalk power relative to the signal (linear ratio) at one
  /// output of a `ports`-port AWGR with all inputs active.
  [[nodiscard]] double total_crosstalk_ratio(std::int32_t ports) const;

  /// Same, in dB below the signal (positive number = that many dB down).
  [[nodiscard]] double total_crosstalk_db(std::int32_t ports) const;

  /// Receiver power penalty in dB: the extra signal power needed to keep
  /// the same decision-point SNR despite interferer power eps (standard
  /// coherent-crosstalk penalty approximation -5*log10(1 - eps * Q^2...)
  /// simplified to the interferometric bound -10*log10(1 - 2*sqrt(eps))
  /// clamped at a practical ceiling).
  [[nodiscard]] double power_penalty_db(std::int32_t ports) const;

  /// Largest port count whose penalty stays within `margin_db` — the
  /// crosstalk-limited grating radix for a given link budget margin.
  [[nodiscard]] std::int32_t max_ports_within_penalty(double margin_db,
                                        std::int32_t limit = 4'096) const;

 private:
  CrosstalkConfig cfg_;
};

}  // namespace sirius::optical
