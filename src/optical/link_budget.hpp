// End-to-end optical link budget (§4.5 "Laser sharing").
//
// The paper's numbers: receiver needs -8 dBm for post-FEC error-free
// operation; a 100-port grating loses up to 6 dB; coupling + modulator
// losses add 7 dB; a 2 dB margin is kept. Hence a laser must deliver
// 7 dBm per transceiver, and a 16 dBm laser can be split across 8
// transceivers.
#pragma once

#include <cstdint>

#include "optical/power.hpp"

namespace sirius::optical {

/// Loss/requirement inventory for one Sirius lightpath.
struct LinkBudgetConfig {
  double grating_insertion_loss_db = 6.0;  ///< AWGR worst case (100 ports)
  double coupling_modulator_loss_db = 7.0; ///< fiber coupling + modulator
  double margin_db = 2.0;                  ///< engineering margin
  OpticalPower receiver_sensitivity = OpticalPower::dbm(-8.0);
};

/// Computes per-path requirements and the laser-sharing degree.
class LinkBudget {
 public:
  explicit LinkBudget(LinkBudgetConfig cfg = {}) : cfg_(cfg) {}

  const LinkBudgetConfig& config() const { return cfg_; }

  /// Total optical loss along the lightpath plus margin, in dB.
  [[nodiscard]] double total_loss_db() const {
    return cfg_.grating_insertion_loss_db + cfg_.coupling_modulator_loss_db +
           cfg_.margin_db;
  }

  /// Minimum launch power a transceiver needs so the receiver still sees
  /// its sensitivity after all losses. (Paper: 7 dBm.)
  OpticalPower required_launch_power() const {
    return cfg_.receiver_sensitivity.amplified(total_loss_db());
  }

  /// Power arriving at the receiver given a per-transceiver launch power.
  OpticalPower received_power(OpticalPower launch) const {
    return launch.attenuated(total_loss_db());
  }

  /// True if `launch` closes the link.
  [[nodiscard]] bool closes(OpticalPower launch) const {
    return received_power(launch) >= cfg_.receiver_sensitivity;
  }

  /// How many transceivers one laser of power `laser` can feed: the largest
  /// n such that laser power split n ways still meets the launch
  /// requirement. (Paper: a 16 dBm laser shared across 8 transceivers.)
  [[nodiscard]] std::int32_t max_sharing_degree(OpticalPower laser) const;

  /// Tunable laser chips needed for a node with `uplinks` transceivers
  /// given laser output power (Paper: 256 uplinks / 16 dBm -> 32 chips).
  [[nodiscard]] std::int32_t lasers_needed(std::int32_t uplinks, OpticalPower laser) const;

 private:
  LinkBudgetConfig cfg_;
};

}  // namespace sirius::optical
