#include "optical/disaggregated_laser.hpp"

#include <algorithm>
#include <cassert>

namespace sirius::optical {

FixedBankLaser::FixedBankLaser(std::int32_t wavelengths,
                               const SoaConfig& soa_cfg, Rng& rng,
                               double fixed_laser_watts)
    : selector_(wavelengths, soa_cfg, rng),
      fixed_laser_watts_(fixed_laser_watts) {}

double FixedBankLaser::power_watts() const {
  // All fixed lasers run continuously; one SOA is driven at a time.
  const double soa_w =
      selector_.selected() >= 0
          ? selector_.gate(selector_.selected()).power_mw() * 1e-3
          : 0.0;
  return static_cast<double>(selector_.size()) * fixed_laser_watts_ + soa_w;
}

TunableBankLaser::TunableBankLaser(const DsdbrConfig& laser_cfg,
                                   std::int32_t bank_size,
                                   const SoaConfig& soa_cfg, Rng& rng)
    : selector_(bank_size, soa_cfg, rng) {
  assert(bank_size >= 2);
  lasers_.reserve(static_cast<std::size_t>(bank_size));
  for (std::int32_t i = 0; i < bank_size; ++i) lasers_.emplace_back(laser_cfg);
}

void TunableBankLaser::announce_next(WavelengthId w) {
  // Pre-tune an idle laser to the upcoming wavelength. The settle happens
  // off the datapath: by the time tune_to(w) is called a full slot later,
  // the DSDBR has long settled (worst case 92 ns < 100 ns slot).
  const std::int32_t idle =
      (active_laser_ + 1) % static_cast<std::int32_t>(lasers_.size());
  lasers_[static_cast<std::size_t>(idle)].tune_to(w);
  prepared_laser_ = idle;
  prepared_wavelength_ = w;
}

Time TunableBankLaser::tune_to(WavelengthId w) {
  if (w == current_) {
    last_pipelined_ = false;
    return Time::zero();
  }
  if (prepared_laser_ >= 0 && prepared_wavelength_ == w) {
    // Pipelined path: just flip the SOA selector to the pre-tuned laser.
    last_pipelined_ = true;
    active_laser_ = prepared_laser_;
    prepared_laser_ = -1;
    current_ = w;
    return selector_.select(active_laser_);
  }
  // Unannounced transition: the active laser must settle in-band.
  last_pipelined_ = false;
  Time settle = lasers_[static_cast<std::size_t>(active_laser_)].tune_to(w);
  if (selector_.selected() != active_laser_) {
    settle = std::max(settle, selector_.select(active_laser_));
  }
  current_ = w;
  return settle;
}

Time TunableBankLaser::worst_case_latency() const {
  // With announcements the worst case is the SOA switch; without, the DSDBR.
  return lasers_.front().config().drive == DriveMode::kDampened
             ? std::max(selector_.worst_case_switch(),
                        Time::zero())  // pipelined operation
             : lasers_.front().config().off_the_shelf_worst_case;
}

double TunableBankLaser::power_watts() const {
  // Each tunable laser (including the spare) draws ~3.8 W (§5); one SOA on.
  constexpr double kTunableLaserWatts = 3.8;
  const double soa_w =
      selector_.selected() >= 0
          ? selector_.gate(selector_.selected()).power_mw() * 1e-3
          : 0.0;
  return static_cast<double>(lasers_.size()) * kTunableLaserWatts + soa_w;
}

CombLaser::CombLaser(std::int32_t wavelengths, const SoaConfig& soa_cfg,
                     Rng& rng, double comb_watts)
    : selector_(wavelengths, soa_cfg, rng), comb_watts_(comb_watts) {}

double CombLaser::power_watts() const {
  const double soa_w =
      selector_.selected() >= 0
          ? selector_.gate(selector_.selected()).power_mw() * 1e-3
          : 0.0;
  return comb_watts_ + soa_w;
}

}  // namespace sirius::optical
