// Bit-error-rate waterfall model (Fig. 8d) and FEC threshold behaviour.
//
// A thermal-noise-limited direct-detection receiver has Q factor linear in
// received optical power; pre-FEC BER = 0.5 * erfc(Q / sqrt(2)). We
// calibrate Q so that the pre-FEC BER crosses the standard KP4-like FEC
// threshold (2.4e-4) exactly at the paper's measured sensitivity of
// -8 dBm, which yields post-FEC error-free (< 1e-12) operation there —
// matching the prototype result across all four switching wavelengths.
#pragma once

#include <cstdint>

#include "optical/power.hpp"

namespace sirius::optical {

struct BerModelConfig {
  /// Received power at which pre-FEC BER equals the FEC threshold.
  OpticalPower sensitivity = OpticalPower::dbm(-8.0);
  /// Pre-FEC BER the FEC can correct down to < 1e-15 (KP4 RS(544,514)).
  double fec_threshold = 2.4e-4;
  /// Per-channel Q penalty in dB (small wavelength-dependent variation —
  /// Fig. 8d shows four near-identical waterfalls).
  double channel_penalty_db = 0.0;
  /// Modulation penalty: PAM-4 needs ~9.5 dB more OMA than NRZ for the
  /// same BER; we fold modulation into the calibrated sensitivity, so this
  /// is only used when comparing formats explicitly.
  double modulation_penalty_db = 0.0;
};

/// Maps received optical power to pre-/post-FEC BER.
class BerModel {
 public:
  explicit BerModel(BerModelConfig cfg = {});

  const BerModelConfig& config() const { return cfg_; }

  /// Q factor at a given received power (linear in optical power in mW).
  [[nodiscard]] double q_factor(OpticalPower received) const;

  /// Pre-FEC bit error rate at `received` power.
  [[nodiscard]] double pre_fec_ber(OpticalPower received) const;

  /// Post-FEC BER: effectively 0 (clamped to 1e-15) below threshold, and
  /// a steep hard-decision RS error floor above it.
  [[nodiscard]] double post_fec_ber(OpticalPower received) const;

  /// True if the link is post-FEC error-free (BER < 1e-12) at this power.
  [[nodiscard]] bool error_free(OpticalPower received) const;

 private:
  BerModelConfig cfg_;
  double q_per_mw_;  // calibrated so pre_fec_ber(sensitivity) == threshold
};

}  // namespace sirius::optical
