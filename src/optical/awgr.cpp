#include "optical/awgr.hpp"

// Header-only; this TU anchors the library.
