// DSDBR tunable laser model (§3.2).
//
// A standard tunable laser couples wavelength *generation* (gain section)
// and *selection* (grating section). Injecting tuning current perturbs the
// gain section, so the output "rings" across neighbouring wavelengths
// before settling; the farther apart source and destination wavelengths
// are, the larger the current step and the longer the settle time.
//
// The paper reports three operating points that this model reproduces:
//  * off-the-shelf drive electronics: ~10 ms tuning latency,
//  * custom dampened drive (overshoot/undershoot current staircase):
//    median 14 ns, worst-case 92 ns across all 12,432 ordered pairs of
//    112 wavelengths,
//  * and it motivates the disaggregated designs that remove the span
//    dependence entirely (see disaggregated_laser.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "optical/power.hpp"
#include "optical/tunable_source.hpp"

namespace sirius::optical {

/// Drive electronics for a DSDBR laser.
enum class DriveMode {
  kOffTheShelf,  ///< single current step; millisecond settling
  kDampened,     ///< staircase overshoot/undershoot drive; nanoseconds
};

struct DsdbrConfig {
  std::int32_t wavelengths = 112;         ///< tuning range (C-band, 50 GHz)
  DriveMode drive = DriveMode::kDampened;
  /// Worst-case dampened settle time (at full span, max ringing).
  Time dampened_worst_case = Time::ps(92'000);
  /// Off-the-shelf drive settle time at full span.
  Time off_the_shelf_worst_case = Time::ms(10);
  OpticalPower output_power = OpticalPower::dbm(16.0);  ///< §4.5: 16 dBm
};

/// One sample of the ringing transient: wavelength error (in channel
/// spacings) at a time offset after the tuning current change.
struct RingingSample {
  Time at;
  double wavelength_error;  ///< 0 when settled on the target channel
};

/// Deterministic DSDBR model: tuning latency as a function of the
/// (source, destination) wavelength pair, plus the ringing transient.
class DsdbrLaser final : public TunableSource {
 public:
  explicit DsdbrLaser(DsdbrConfig cfg = {});

  const DsdbrConfig& config() const { return cfg_; }
  std::int32_t wavelengths() const override { return cfg_.wavelengths; }
  WavelengthId current() const override { return current_; }
  [[nodiscard]] WavelengthId current_wavelength() const { return current_; }
  /// A tunable laser draws ~3.8 W versus ~1 W for a fixed laser (§5).
  double power_watts() const override { return 3.8; }

  /// Settle time for tuning from `from` to `to`. Deterministic per pair:
  /// grows as span^1.5 (larger current step -> longer ringing) with a
  /// per-pair ringing wobble, capped at the configured worst case.
  [[nodiscard]] Time tuning_latency(WavelengthId from, WavelengthId to) const;

  /// Retunes the laser; returns the settle time consumed.
  Time tune_to(WavelengthId to) override;

  /// The ringing transient for a tuning event: a damped oscillation of the
  /// output wavelength around the target, sampled every `step`. Mirrors the
  /// behaviour the dampened drive suppresses (§3.2).
  std::vector<RingingSample> ringing_trace(WavelengthId from, WavelengthId to,
                                           Time step) const;

  /// Largest tuning_latency over all ordered pairs (12,432 for 112 channels).
  Time worst_case_latency() const override;
  /// Median tuning_latency over all ordered pairs.
  [[nodiscard]] Time median_latency() const;

 private:
  [[nodiscard]] double pair_wobble(WavelengthId from, WavelengthId to) const;

  DsdbrConfig cfg_;
  WavelengthId current_ = 0;
};

}  // namespace sirius::optical
