// Optical power arithmetic: dBm <-> mW, attenuation, and the ITU C-band
// wavelength grid used by the tunable lasers.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/units.hpp"

namespace sirius::optical {

/// Optical power. Stored in dBm; convertible to/from milliwatts.
class OpticalPower {
 public:
  constexpr OpticalPower() = default;
  static constexpr OpticalPower dbm(double v) { return OpticalPower{v}; }
  static OpticalPower milliwatts(double mw) {
    return OpticalPower{10.0 * std::log10(mw)};
  }

  [[nodiscard]] constexpr double in_dbm() const { return dbm_; }
  [[nodiscard]] double in_mw() const { return std::pow(10.0, dbm_ / 10.0); }

  /// Power after losing `loss_db` decibels (fiber, grating, coupling...).
  constexpr OpticalPower attenuated(double loss_db) const {
    return OpticalPower{dbm_ - loss_db};
  }
  /// Power after amplification by `gain_db` decibels (e.g. an SOA).
  constexpr OpticalPower amplified(double gain_db) const {
    return OpticalPower{dbm_ + gain_db};
  }
  /// Power split equally across `n` outputs (e.g. laser sharing): the
  /// per-branch power drops by 10*log10(n) dB.
  OpticalPower split(std::int32_t n) const {
    return OpticalPower{dbm_ - 10.0 * std::log10(static_cast<double>(n))};
  }

  friend constexpr auto operator<=>(OpticalPower, OpticalPower) = default;

 private:
  constexpr explicit OpticalPower(double v) : dbm_(v) {}
  double dbm_ = 0.0;
};

/// The ITU-T C-band DWDM grid: channels spaced `spacing_ghz` around 193.1 THz
/// (~1552.52 nm). The paper's lasers tune across ~100-112 channels at 50 GHz
/// spacing (§3.2).
class WavelengthGrid {
 public:
  explicit WavelengthGrid(std::int32_t channels, double spacing_ghz = 50.0)
      : channels_(channels), spacing_ghz_(spacing_ghz) {}

  [[nodiscard]] std::int32_t channels() const { return channels_; }
  [[nodiscard]] double spacing_ghz() const { return spacing_ghz_; }

  /// Optical frequency of channel `w` in THz. Channel 0 sits at the low end
  /// of the band so that the grid is centred on 193.1 THz.
  [[nodiscard]] double frequency_thz(WavelengthId w) const {
    const double center = 193.1;
    const double offset =
        (static_cast<double>(w) - static_cast<double>(channels_ - 1) / 2.0) *
        spacing_ghz_ * 1e-3;
    return center + offset;
  }

  /// Vacuum wavelength of channel `w` in nanometres (c / f).
  [[nodiscard]] double wavelength_nm(WavelengthId w) const {
    const double c_nm_per_s = 2.99792458e17;  // speed of light in nm/s
    return c_nm_per_s / (frequency_thz(w) * 1e12);
  }

  /// Channel distance |i - j| — the quantity that drives DSDBR settle time.
  [[nodiscard]] std::int32_t span(WavelengthId i, WavelengthId j) const {
    return std::abs(i - j);
  }

 private:
  std::int32_t channels_;
  double spacing_ghz_;
};

}  // namespace sirius::optical
