#include "optical/link_budget.hpp"

namespace sirius::optical {

std::int32_t LinkBudget::max_sharing_degree(OpticalPower laser) const {
  const OpticalPower need = required_launch_power();
  if (laser < need) return 0;
  // Doubling-free linear scan: sharing degrees are small (tens at most).
  std::int32_t n = 1;
  while (laser.split(n + 1) >= need) ++n;
  return n;
}

std::int32_t LinkBudget::lasers_needed(std::int32_t uplinks,
                                       OpticalPower laser) const {
  const std::int32_t share = max_sharing_degree(laser);
  if (share <= 0) return -1;  // link cannot be closed at all
  return (uplinks + share - 1) / share;
}

}  // namespace sirius::optical
