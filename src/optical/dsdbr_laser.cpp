#include "optical/dsdbr_laser.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/histogram.hpp"

namespace sirius::optical {
namespace {

// 64-bit mix used to derive a deterministic per-pair ringing wobble.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

DsdbrLaser::DsdbrLaser(DsdbrConfig cfg) : cfg_(cfg) {
  assert(cfg_.wavelengths >= 2);
}

double DsdbrLaser::pair_wobble(WavelengthId from, WavelengthId to) const {
  // Deterministic multiplier in [0.88, 1.0]: the exact ringing profile
  // depends on the pair's grating currents, which we abstract as a hash.
  // The full-span pair is pinned to 1.0 so the configured worst case is
  // attained exactly.
  const std::int32_t span = std::abs(from - to);
  if (span == cfg_.wavelengths - 1) return 1.0;
  const std::uint64_t h =
      mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
          static_cast<std::uint32_t>(to));
  return 0.88 + 0.12 * (static_cast<double>(h >> 11) * 0x1.0p-53);
}

Time DsdbrLaser::tuning_latency(WavelengthId from, WavelengthId to) const {
  assert(from >= 0 && from < cfg_.wavelengths);
  assert(to >= 0 && to < cfg_.wavelengths);
  if (from == to) return Time::zero();
  const double span = static_cast<double>(std::abs(from - to));
  const double full = static_cast<double>(cfg_.wavelengths - 1);
  const Time worst = cfg_.drive == DriveMode::kDampened
                         ? cfg_.dampened_worst_case
                         : cfg_.off_the_shelf_worst_case;
  // Settle time scales as span^1.5: the current step is linear in span and
  // the ring-down of a larger perturbation takes disproportionately longer.
  // With the dampened staircase drive this yields median ~14 ns and
  // worst-case 92 ns across 112 channels, matching §3.2. A floor models
  // the drive electronics' slew: even adjacent-channel hops take a couple
  // of nanoseconds (scaled up proportionally for the slow drive).
  const double frac = std::pow(span / full, 1.5) * pair_wobble(from, to);
  const double floor_frac = 2'000.0 / 92'000.0;  // 2 ns of the 92 ns worst
  return Time::ps(static_cast<std::int64_t>(
      static_cast<double>(worst.picoseconds()) * std::max(frac, floor_frac) +
      0.5));
}

Time DsdbrLaser::tune_to(WavelengthId to) {
  const Time t = tuning_latency(current_, to);
  current_ = to;
  return t;
}

std::vector<RingingSample> DsdbrLaser::ringing_trace(WavelengthId from,
                                                     WavelengthId to,
                                                     Time step) const {
  const Time settle = tuning_latency(from, to);
  std::vector<RingingSample> out;
  if (settle == Time::zero()) return out;
  const double span = static_cast<double>(to - from);
  const double tau =
      static_cast<double>(settle.picoseconds()) / 5.0;  // ~e^-5 at settle
  // ~4 oscillation periods within the settle window.
  const double omega =
      2.0 * 3.14159265358979 * 4.0 / static_cast<double>(settle.picoseconds());
  for (Time t = Time::zero(); t <= settle; t += step) {
    const double tp = static_cast<double>(t.picoseconds());
    const double err = span * std::exp(-tp / tau) * std::cos(omega * tp);
    out.push_back({t, err});
  }
  out.push_back({settle, 0.0});
  return out;
}

Time DsdbrLaser::worst_case_latency() const {
  Time worst = Time::zero();
  for (WavelengthId i = 0; i < cfg_.wavelengths; ++i) {
    for (WavelengthId j = 0; j < cfg_.wavelengths; ++j) {
      if (i != j) worst = std::max(worst, tuning_latency(i, j));
    }
  }
  return worst;
}

Time DsdbrLaser::median_latency() const {
  PercentileTracker t;
  for (WavelengthId i = 0; i < cfg_.wavelengths; ++i) {
    for (WavelengthId j = 0; j < cfg_.wavelengths; ++j) {
      if (i != j) {
        t.add(static_cast<double>(tuning_latency(i, j).picoseconds()));
      }
    }
  }
  return Time::ps(static_cast<std::int64_t>(t.median() + 0.5));
}

}  // namespace sirius::optical
