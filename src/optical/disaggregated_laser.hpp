// Disaggregated tunable lasers (§3.3, Fig. 4): wavelength *generation* is
// separated from wavelength *selection*, removing the span-dependent settle
// time of a standard tunable laser. Three instantiations are modelled, as
// implemented by the paper:
//
//  1. FixedBankLaser — a bank of W fixed-wavelength lasers feeding an SOA
//     selector. Tuning = one SOA off + one SOA on (<912 ps worst case);
//     scales poorly in laser count/power.
//  2. TunableBankLaser — a small bank of DSDBR lasers used in a pipeline:
//     while laser A emits λi, laser B pre-tunes to λj; switching is then an
//     SOA selector event. Needs the wavelength sequence in advance — which
//     Sirius' static schedule provides — and a spare laser for redundancy.
//  3. CombLaser — a frequency comb generating all wavelengths at once plus
//     the SOA selector; higher power today but single-chip.
//
// All variants expose the same `TunableSource` interface so transceiver and
// simulator code is agnostic to the laser technology.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "optical/dsdbr_laser.hpp"
#include "optical/soa_gate.hpp"
#include "optical/tunable_source.hpp"

namespace sirius::optical {

/// Variant 1: fixed laser bank + SOA selector (the fabricated chip,
/// Fig. 3d: 19 SOAs in InP, worst-case tuning 912 ps).
class FixedBankLaser final : public TunableSource {
 public:
  FixedBankLaser(std::int32_t wavelengths, const SoaConfig& soa_cfg, Rng& rng,
                 double fixed_laser_watts = 1.0);

  std::int32_t wavelengths() const override { return selector_.size(); }
  WavelengthId current() const override { return selector_.selected(); }
  Time tune_to(WavelengthId w) override { return selector_.select(w); }
  Time worst_case_latency() const override {
    return selector_.worst_case_switch();
  }
  double power_watts() const override;

  const SoaArray& selector() const { return selector_; }

 private:
  SoaArray selector_;
  double fixed_laser_watts_;
};

/// Variant 2: bank of `bank_size` standard tunable lasers operated in a
/// pipeline behind an SOA selector. With the transition sequence known in
/// advance (Sirius' static schedule), the DSDBR settle time is hidden and
/// only the SOA switch remains; without an announcement the full DSDBR
/// latency is paid.
class TunableBankLaser final : public TunableSource {
 public:
  TunableBankLaser(const DsdbrConfig& laser_cfg, std::int32_t bank_size,
                   const SoaConfig& soa_cfg, Rng& rng);

  std::int32_t wavelengths() const override {
    return lasers_.front().wavelengths();
  }
  WavelengthId current() const override { return current_; }
  void announce_next(WavelengthId w) override;
  Time tune_to(WavelengthId w) override;
  Time worst_case_latency() const override;
  double power_watts() const override;

  [[nodiscard]] std::int32_t bank_size() const {
    return static_cast<std::int32_t>(lasers_.size());
  }
  /// True if the last tune_to() was served from a pre-tuned laser.
  [[nodiscard]] bool last_tune_was_pipelined() const { return last_pipelined_; }

 private:
  std::vector<DsdbrLaser> lasers_;
  SoaArray selector_;  // one gate per laser in the bank
  std::int32_t active_laser_ = 0;
  std::int32_t prepared_laser_ = -1;
  WavelengthId prepared_wavelength_ = -1;
  WavelengthId current_ = -1;
  bool last_pipelined_ = false;
};

/// Variant 3: frequency-comb source + SOA selector. Tuning is a pure SOA
/// event; the comb draws constant (and today, high) power.
class CombLaser final : public TunableSource {
 public:
  CombLaser(std::int32_t wavelengths, const SoaConfig& soa_cfg, Rng& rng,
            double comb_watts = 10.0);

  std::int32_t wavelengths() const override { return selector_.size(); }
  WavelengthId current() const override { return selector_.selected(); }
  Time tune_to(WavelengthId w) override { return selector_.select(w); }
  Time worst_case_latency() const override {
    return selector_.worst_case_switch();
  }
  double power_watts() const override;

 private:
  SoaArray selector_;
  double comb_watts_;
};

}  // namespace sirius::optical
