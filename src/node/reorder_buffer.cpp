#include "node/reorder_buffer.hpp"

#include <algorithm>

#include "common/invariant.hpp"

namespace sirius::node {

std::int64_t ReorderBuffer::on_arrival(std::int32_t seq, std::int32_t bytes) {
  SIRIUS_INVARIANT(seq >= 0 && seq < total_cells_,
                   "reorder: seq %d outside the flow's [0, %lld) cells", seq,
                   static_cast<long long>(total_cells_));
  if (seq < 0 || seq >= total_cells_) return 0;
  SIRIUS_INVARIANT(bytes >= 0, "reorder: cell %d carries %d bytes", seq,
                   bytes);
  if (bytes < 0) bytes = 0;
  if (seq < next_expected_) return 0;  // duplicate; ignore
  if (seq > next_expected_) {
    const auto s = static_cast<std::size_t>(seq);
    const std::uint64_t mask = std::uint64_t{1} << (s % 64);
    if ((pending_[s / 64] & mask) == 0) {
      pending_[s / 64] |= mask;
      ++buffered_cells_;
      buffered_bytes_ += bytes;
      peak_bytes_ = std::max(peak_bytes_, buffered_bytes_);
    }
    return 0;
  }
  // In-order arrival: release it plus any buffered successors. The in-order
  // prefix only ever grows — that monotonicity is the in-order-release
  // contract the destination relies on.
  std::int64_t released = 1;
  ++next_expected_;
  while (next_expected_ < total_cells_ && pending_bit(
             static_cast<std::int32_t>(next_expected_))) {
    const auto s = static_cast<std::size_t>(next_expected_);
    pending_[s / 64] &= ~(std::uint64_t{1} << (s % 64));
    --buffered_cells_;
    ++next_expected_;
    ++released;
  }
  SIRIUS_INVARIANT(next_expected_ <= total_cells_,
                   "reorder: in-order prefix %lld ran past the flow's %lld "
                   "cells",
                   static_cast<long long>(next_expected_),
                   static_cast<long long>(total_cells_));
  // Conservatively account released buffered cells at full payload: exact
  // byte tracking per seq would need a map; the peak statistic is taken
  // before release so it is unaffected.
  if (released > 1) {
    buffered_bytes_ -= bytes * (released - 1);
    buffered_bytes_ = std::max<std::int64_t>(buffered_bytes_, 0);
  }
  return released;
}

void ReorderBuffer::serialize(ckpt::Writer& w) const {
  w.i64(total_cells_);
  w.i64(next_expected_);
  w.vec_u64(pending_);
  w.i64(buffered_cells_);
  w.i64(buffered_bytes_);
  w.i64(peak_bytes_);
}

bool ReorderBuffer::restore(ckpt::Reader& r) {
  const std::int64_t total = r.i64();
  const std::int64_t next = r.i64();
  auto pending = r.vec_u64("reorder pending bitmap");
  const std::int64_t buffered = r.i64();
  const std::int64_t buffered_bytes = r.i64();
  const std::int64_t peak_bytes = r.i64();
  if (!r.ok()) return false;
  const std::size_t words =
      total > 0 ? static_cast<std::size_t>((total + 63) / 64) : 0;
  if (total < 0 || next < 0 || next > total || pending.size() != words ||
      buffered < 0 || buffered > total || buffered_bytes < 0 ||
      peak_bytes < 0) {
    r.fail("reorder buffer state out of range");
    return false;
  }
  total_cells_ = total;
  next_expected_ = next;
  pending_ = std::move(pending);
  buffered_cells_ = buffered;
  buffered_bytes_ = buffered_bytes;
  peak_bytes_ = peak_bytes;
  return true;
}

}  // namespace sirius::node
