// Node auditors: the §4.3 relay-queue bound and the reorder-buffer
// structural check, audited over live node/ types.
//
// Lives in node/ (not check/) so the check layer never depends upward on
// the modules it audits: check/ owns the registry and the structural
// primitives, and each module exports the auditors over its own types
// (cf. sched/schedule_audit.hpp). The layer-order lint rule enforces the
// direction.
#pragma once

#include <cstdint>

#include "common/thread_safety.hpp"

namespace sirius::node {

class Node;
class ReorderBuffer;

/// Audits one node's per-destination relay (forward) queues against
/// `bound` cells, and its grant accounting against `queue_limit` (the
/// protocol Q). `bound` >= Q: with release-at-transmit grant accounting the
/// conserved quantity is fq + outstanding + granted-cells-in-flight, so the
/// queue alone may transiently hold up to Q plus the in-flight allowance
/// (see SiriusSim::transmit_slot).
void audit_queue_bound(const Node& n, std::int32_t queue_limit,
                       std::int32_t bound)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

/// Structural consistency of a live reorder buffer.
void audit_reorder(const ReorderBuffer& rb);

}  // namespace sirius::node
