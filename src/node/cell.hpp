// The fixed-size transmission unit of the Sirius data plane (§4.2).
//
// All optical transmissions are fixed-size "cells" (562 B total by default,
// filling the 90 ns data portion of a 100 ns slot at 50 Gbps). A flow is
// segmented into cells at the source; the last cell may be padded, which is
// exactly the overhead Fig. 13 quantifies for small flows.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace sirius::node {

struct Cell {
  FlowId flow = 0;
  std::int32_t seq = 0;          ///< 0-based cell index within the flow
  NodeId dst_node = 0;           ///< destination rack/node
  std::int32_t dst_server = 0;   ///< destination server (global index)
  std::int32_t payload_bytes = 0;///< application bytes carried (<= capacity)
  std::int32_t retries = 0;      ///< §4.5 retransmission attempts so far
};

/// Number of cells needed for `size` bytes with `capacity` bytes per cell.
[[nodiscard]] inline std::int64_t cells_for(DataSize size, DataSize capacity) {
  return div_ceil(size, capacity);
}

/// Application bytes carried by cell `seq` of a `size`-byte flow.
[[nodiscard]] inline std::int32_t payload_of(DataSize size, DataSize capacity,
                                             std::int32_t seq) {
  const std::int64_t total = cells_for(size, capacity);
  const DataSize last = size - capacity * (total - 1);
  // Cell::payload_bytes is a wire-format int32, so the last cell's size must
  // leave the strong type here. sirius-lint: allow(unit-escape)
  if (seq + 1 < total) return static_cast<std::int32_t>(capacity.in_bytes());
  return static_cast<std::int32_t>(last.in_bytes());  // sirius-lint: allow(unit-escape)
}

}  // namespace sirius::node
