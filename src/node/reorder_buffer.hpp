// Per-flow reorder buffer at the receiver (§4.2 "Cell reordering").
//
// Cells of one flow take different intermediate hops and can arrive out of
// order. The receiver buffers out-of-order cells and releases the in-order
// prefix to the application. Because congestion control bounds intermediate
// queuing to Q cells, the reordering window — and hence the buffer — stays
// small (Fig. 10d).
#pragma once

#include <cstdint>
#include <set>

#include "common/units.hpp"

namespace sirius::node {

class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::int64_t total_cells)
      : total_cells_(total_cells) {}

  /// Records arrival of cell `seq` carrying `bytes` application bytes.
  /// Returns the number of cells newly released in order (>= 1 exactly when
  /// `seq` extended the in-order prefix).
  std::int64_t on_arrival(std::int32_t seq, std::int32_t bytes);

  [[nodiscard]] bool complete() const { return next_expected_ >= total_cells_; }
  /// Has cell `seq` already arrived (released in order or still buffered)?
  /// The §4.5 retransmission path uses this to cancel timeouts whose cell
  /// made it after all, and to discard spurious duplicates on delivery.
  [[nodiscard]] bool received(std::int32_t seq) const {
    return seq < next_expected_ || pending_.count(seq) > 0;
  }
  [[nodiscard]] std::int64_t total_cells() const { return total_cells_; }
  [[nodiscard]] std::int64_t next_expected() const { return next_expected_; }
  [[nodiscard]] std::int64_t buffered_cells() const {
    return static_cast<std::int64_t>(pending_.size());
  }
  /// Peak data ever held out of order.
  [[nodiscard]] DataSize peak_buffered() const {
    return DataSize::bytes(peak_bytes_);
  }

 private:
  std::int64_t total_cells_;
  std::int64_t next_expected_ = 0;
  std::set<std::int32_t> pending_;  // out-of-order seqs beyond the prefix
  std::int64_t buffered_bytes_ = 0;
  std::int64_t peak_bytes_ = 0;
};

}  // namespace sirius::node
