// Per-flow reorder buffer at the receiver (§4.2 "Cell reordering").
//
// Cells of one flow take different intermediate hops and can arrive out of
// order. The receiver buffers out-of-order cells and releases the in-order
// prefix to the application. Because congestion control bounds intermediate
// queuing to Q cells, the reordering window — and hence the buffer — stays
// small (Fig. 10d).
//
// The pending set is a bitmap pre-sized to the flow at construction, so
// on_arrival — on the SIRIUS_HOT delivery path — never allocates: insert,
// lookup, and the release scan are word operations over a fixed vector.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/io.hpp"
#include "common/hot_path.hpp"
#include "common/units.hpp"

namespace sirius::node {

class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::int64_t total_cells)
      : total_cells_(total_cells),
        pending_(total_cells > 0
                     ? static_cast<std::size_t>((total_cells + 63) / 64)
                     : 0,
                 0) {}

  /// Records arrival of cell `seq` carrying `bytes` application bytes.
  /// Returns the number of cells newly released in order (>= 1 exactly when
  /// `seq` extended the in-order prefix).
  SIRIUS_HOT std::int64_t on_arrival(std::int32_t seq, std::int32_t bytes);

  [[nodiscard]] bool complete() const { return next_expected_ >= total_cells_; }
  /// Has cell `seq` already arrived (released in order or still buffered)?
  /// The §4.5 retransmission path uses this to cancel timeouts whose cell
  /// made it after all, and to discard spurious duplicates on delivery.
  [[nodiscard]] bool received(std::int32_t seq) const {
    return seq < next_expected_ || pending_bit(seq);
  }
  [[nodiscard]] std::int64_t total_cells() const { return total_cells_; }
  [[nodiscard]] std::int64_t next_expected() const { return next_expected_; }
  [[nodiscard]] std::int64_t buffered_cells() const { return buffered_cells_; }
  /// Peak data ever held out of order.
  [[nodiscard]] DataSize peak_buffered() const {
    return DataSize::bytes(peak_bytes_);
  }

  /// Snapshottable: full state incl. the pending bitmap, so a restored
  /// receiver releases exactly the same in-order prefixes.
  void serialize(ckpt::Writer& w) const;
  bool restore(ckpt::Reader& r);

 private:
  [[nodiscard]] bool pending_bit(std::int32_t seq) const {
    if (seq < 0 || seq >= total_cells_) return false;
    const auto s = static_cast<std::size_t>(seq);
    return (pending_[s / 64] >> (s % 64) & 1u) != 0;
  }

  std::int64_t total_cells_;
  std::int64_t next_expected_ = 0;
  // Out-of-order seqs beyond the prefix, one bit per cell of the flow.
  std::vector<std::uint64_t> pending_;
  std::int64_t buffered_cells_ = 0;
  std::int64_t buffered_bytes_ = 0;
  std::int64_t peak_bytes_ = 0;
};

}  // namespace sirius::node
