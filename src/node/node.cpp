#include "node/node.hpp"

#include <cassert>
#include <string>

#include "common/invariant.hpp"

namespace sirius::node {

Node::Node(NodeId self, const cc::RequestGrantConfig& cc_cfg,
           DataSize cell_capacity)
    : self_(self), cc_(self, cc_cfg), cell_capacity_(cell_capacity) {
  vq_.resize(static_cast<std::size_t>(cc_cfg.nodes));
  fq_.resize(static_cast<std::size_t>(cc_cfg.nodes));
  retx_.resize(static_cast<std::size_t>(cc_cfg.nodes));
  per_dst_.resize(static_cast<std::size_t>(cc_cfg.nodes));
}

void Node::add_flow(const LocalFlow& f) {
  SIRIUS_INVARIANT(f.total_cells > 0, "flow %lld arrives with %lld cells",
                   static_cast<long long>(f.id),
                   static_cast<long long>(f.total_cells));
  if (f.total_cells <= 0) return;
  local_.push_back(f);
  const std::size_t idx = local_.size() - 1;
  per_dst_[static_cast<std::size_t>(f.dst_node)].push_back(idx);
  // Rotation re-queue, matched by the pop_front above.
  // sirius-lint: allow(hot-path-alloc)
  spray_ready_.push_back(idx);
  ++unfinished_flows_;
}

std::vector<NodeId> Node::pending_cell_dsts(Time now, Time cell_interval,
                                            std::size_t limit) const {
  std::vector<NodeId> out;
  out.reserve(limit);

  // Retransmissions first: a lost cell blocks its flow's in-order prefix
  // at the receiver, so re-covering it beats injecting fresh cells.
  for (std::size_t dst = 0; dst < retx_.size() && out.size() < limit; ++dst) {
    for (std::size_t k = 0; k < retx_[dst].size() && out.size() < limit; ++k) {
      out.push_back(static_cast<NodeId>(dst));
    }
  }
  if (out.size() >= limit) return out;

  // Bucket pending flows by source server (buckets keep flow arrival
  // order; each entry is (destination, pending cell count)).
  std::vector<std::int32_t> server_ids;
  std::vector<std::deque<std::pair<NodeId, std::int64_t>>> buckets;
  for (std::size_t i = first_unfinished_; i < local_.size(); ++i) {
    const LocalFlow& f = local_[i];
    if (f.exhausted()) continue;
    const std::int64_t n = f.pending(now, cell_interval);
    if (n <= 0) continue;
    std::size_t b = 0;
    while (b < server_ids.size() && server_ids[b] != f.src_server) ++b;
    if (b == server_ids.size()) {
      server_ids.push_back(f.src_server);
      buckets.emplace_back();
    }
    buckets[b].push_back({f.dst_node, n});
  }

  // Two-level round-robin: one cell per server per pass, rotating over
  // each server's flows.
  bool any = !buckets.empty();
  while (any && out.size() < limit) {
    any = false;
    for (auto& bucket : buckets) {
      if (bucket.empty()) continue;
      auto [dst, n] = bucket.front();
      bucket.pop_front();
      out.push_back(dst);
      if (--n > 0) bucket.push_back({dst, n});
      if (out.size() >= limit) return out;
      any = any || !bucket.empty();
    }
  }
  return out;
}

LocalFlow* Node::oldest_pending_flow_for(NodeId dst, Time now,
                                         Time cell_interval) {
  auto& q = per_dst_[static_cast<std::size_t>(dst)];
  // Drop exhausted heads, then serve the first flow with a pending cell and
  // rotate it to the back: cells of concurrent flows to the same
  // destination are interleaved in the rack's FIFO virtual queue (they
  // arrive interleaved from their servers), so service alternates across
  // flows instead of running one flow to completion.
  while (!q.empty() && local_[q.front()].exhausted()) q.pop_front();
  for (std::size_t k = 0; k < q.size(); ++k) {
    const std::size_t idx = q.front();
    q.pop_front();
    LocalFlow& f = local_[idx];
    if (f.exhausted()) continue;
    // Deque rotation: pops are matched by pushes, so steady state
    // reuses the same blocks. sirius-lint: allow(hot-path-alloc)
    q.push_back(idx);
    if (f.pending(now, cell_interval) > 0) return &f;
  }
  return nullptr;
}

Cell Node::cut_cell(LocalFlow& f) {
  Cell c;
  c.flow = f.id;
  c.seq = static_cast<std::int32_t>(f.moved_cells);
  c.dst_node = f.dst_node;
  c.dst_server = f.dst_server;
  c.payload_bytes = payload_of(f.size, cell_capacity_, c.seq);
  ++f.moved_cells;
  if (f.exhausted()) {
    --unfinished_flows_;
    // Advance the FIFO cursor past the exhausted prefix.
    while (first_unfinished_ < local_.size() &&
           local_[first_unfinished_].exhausted()) {
      ++first_unfinished_;
    }
  }
  return c;
}

std::optional<Cell> Node::take_cell_for(NodeId dst, Time now,
                                        Time cell_interval) {
  auto& rq = retx_[static_cast<std::size_t>(dst)];
  if (!rq.empty()) {
    Cell c = rq.front();
    rq.pop_front();
    --retx_total_;
    gauge_.remove(cell_capacity_);
    return c;
  }
  LocalFlow* f = oldest_pending_flow_for(dst, now, cell_interval);
  if (f == nullptr) return std::nullopt;
  return cut_cell(*f);
}

std::vector<FlowId> Node::abort_flows_where(
    const std::function<bool(const LocalFlow&)>& pred) {
  std::vector<FlowId> aborted;
  for (LocalFlow& f : local_) {
    if (f.exhausted() || !pred(f)) continue;
    aborted.push_back(f.id);
    f.moved_cells = f.total_cells;
    --unfinished_flows_;
  }
  while (first_unfinished_ < local_.size() &&
         local_[first_unfinished_].exhausted()) {
    ++first_unfinished_;
  }
  return aborted;
}

void Node::push_retx(const Cell& c) {
  retx_[static_cast<std::size_t>(c.dst_node)].push_back(c);
  ++retx_total_;
  gauge_.add(cell_capacity_);
}

std::int64_t Node::drain_vq_to_retx(NodeId intermediate) {
  auto& q = vq_[static_cast<std::size_t>(intermediate)];
  std::int64_t moved = 0;
  while (!q.empty()) {
    push_retx(q.front());
    q.pop_front();
    gauge_.remove(cell_capacity_);
    ++moved;
  }
  return moved;
}

std::int64_t Node::purge_dst(NodeId dst,
                             const std::function<void(NodeId)>& on_vq_purge) {
  std::int64_t dropped = 0;
  for (std::size_t inter = 0; inter < vq_.size(); ++inter) {
    auto& q = vq_[inter];
    for (std::size_t i = q.size(); i > 0; --i) {
      Cell c = q.front();
      q.pop_front();
      if (c.dst_node == dst) {
        gauge_.remove(cell_capacity_);
        ++dropped;
        if (on_vq_purge) on_vq_purge(static_cast<NodeId>(inter));
      } else {
        q.push_back(c);
      }
    }
  }
  auto& f = fq_[static_cast<std::size_t>(dst)];
  dropped += static_cast<std::int64_t>(f.size());
  gauge_.remove(cell_capacity_ * static_cast<std::int64_t>(f.size()));
  f.clear();
  auto& r = retx_[static_cast<std::size_t>(dst)];
  dropped += static_cast<std::int64_t>(r.size());
  retx_total_ -= static_cast<std::int64_t>(r.size());
  gauge_.remove(cell_capacity_ * static_cast<std::int64_t>(r.size()));
  r.clear();
  return dropped;
}

std::int64_t Node::purge_all_queues() {
  std::int64_t dropped = 0;
  const auto clear_all = [&](std::vector<std::deque<Cell>>& qs) {
    for (auto& q : qs) {
      dropped += static_cast<std::int64_t>(q.size());
      gauge_.remove(cell_capacity_ * static_cast<std::int64_t>(q.size()));
      q.clear();
    }
  };
  clear_all(vq_);
  clear_all(fq_);
  clear_all(retx_);
  retx_total_ = 0;
  return dropped;
}

std::optional<Cell> Node::take_any_cell(Time now, Time cell_interval) {
  // Round-robin over flows so concurrent flows share the uplinks fairly
  // (this is the "ideal" per-flow service discipline).
  for (std::size_t tries = spray_ready_.size(); tries > 0; --tries) {
    const std::size_t idx = spray_ready_.front();
    spray_ready_.pop_front();
    LocalFlow& f = local_[idx];
    if (f.exhausted()) continue;  // drop from rotation
    if (f.pending(now, cell_interval) > 0) {
      Cell c = cut_cell(f);
      // Rotation re-queue, matched by the pop_front above.
      // sirius-lint: allow(hot-path-alloc)
      if (!f.exhausted()) spray_ready_.push_back(idx);
      return c;
    }
    // Rotation re-queue, matched by the pop_front above.
    // sirius-lint: allow(hot-path-alloc)
    spray_ready_.push_back(idx);  // paced out; retry later
  }
  return std::nullopt;
}

void Node::push_vq(NodeId intermediate, const Cell& c) {
  vq_[static_cast<std::size_t>(intermediate)].push_back(c);
  gauge_.add(cell_capacity_);
}

std::optional<Cell> Node::pop_vq(NodeId intermediate) {
  auto& q = vq_[static_cast<std::size_t>(intermediate)];
  if (q.empty()) return std::nullopt;
  Cell c = q.front();
  q.pop_front();
  gauge_.remove(cell_capacity_);
  return c;
}

void Node::push_fq(NodeId dst, const Cell& c) {
  fq_[static_cast<std::size_t>(dst)].push_back(c);
  gauge_.add(cell_capacity_);
}

std::optional<Cell> Node::pop_fq(NodeId dst) {
  auto& q = fq_[static_cast<std::size_t>(dst)];
  if (q.empty()) return std::nullopt;
  Cell c = q.front();
  q.pop_front();
  gauge_.remove(cell_capacity_);
  return c;
}


namespace {

void put_cell(ckpt::Writer& w, const Cell& c) {
  w.i64(c.flow);
  w.i32(c.seq);
  w.i32(c.dst_node);
  w.i32(c.dst_server);
  w.i32(c.payload_bytes);
  w.i32(c.retries);
}

Cell get_cell(ckpt::Reader& r) {
  Cell c;
  c.flow = r.i64();
  c.seq = r.i32();
  c.dst_node = r.i32();
  c.dst_server = r.i32();
  c.payload_bytes = r.i32();
  c.retries = r.i32();
  return c;
}

void put_cell_queues(ckpt::Writer& w,
                     const std::vector<std::deque<Cell>>& queues) {
  w.u64(queues.size());
  for (const auto& q : queues) {
    w.u64(q.size());
    for (const Cell& c : q) put_cell(w, c);
  }
}

bool get_cell_queues(ckpt::Reader& r, std::vector<std::deque<Cell>>* queues,
                     const char* what) {
  const std::size_t n = r.count(8, what);
  if (!r.ok() || n != queues->size()) {
    r.fail(std::string(what) + " queue count does not match the node count");
    return false;
  }
  for (auto& q : *queues) {
    q.clear();
    const std::size_t m = r.count(24, what);
    for (std::size_t i = 0; i < m; ++i) q.push_back(get_cell(r));
  }
  return r.ok();
}

void put_index_deque(ckpt::Writer& w, const std::deque<std::size_t>& d) {
  w.u64(d.size());
  for (const std::size_t v : d) w.u64(static_cast<std::uint64_t>(v));
}

bool get_index_deque(ckpt::Reader& r, std::deque<std::size_t>* d,
                     std::size_t bound, const char* what) {
  d->clear();
  const std::size_t n = r.count(8, what);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = r.u64();
    if (v >= bound) {
      r.fail(std::string(what) + " index outside the LOCAL buffer");
      return false;
    }
    d->push_back(static_cast<std::size_t>(v));
  }
  return r.ok();
}

}  // namespace

void Node::serialize(ckpt::Writer& w) const {
  cc_.serialize(w);
  w.u64(local_.size());
  for (const LocalFlow& f : local_) {
    w.i64(f.id);
    w.i32(f.dst_node);
    w.i32(f.src_server);
    w.i32(f.dst_server);
    w.i64(f.size.in_bytes());
    w.i64(f.arrival.picoseconds());
    w.i64(f.total_cells);
    w.i64(f.moved_cells);
  }
  w.u64(per_dst_.size());
  for (const auto& d : per_dst_) put_index_deque(w, d);
  w.u64(static_cast<std::uint64_t>(first_unfinished_));
  w.i64(unfinished_flows_);
  put_index_deque(w, spray_ready_);
  put_cell_queues(w, vq_);
  put_cell_queues(w, fq_);
  put_cell_queues(w, retx_);
  w.i64(retx_total_);
  gauge_.serialize(w);
}

bool Node::restore(ckpt::Reader& r) {
  if (!cc_.restore(r)) return false;
  const std::size_t n_local = r.count(8, "LOCAL flow list");
  std::deque<LocalFlow> local;
  for (std::size_t i = 0; i < n_local && r.ok(); ++i) {
    LocalFlow f;
    f.id = r.i64();
    f.dst_node = r.i32();
    f.src_server = r.i32();
    f.dst_server = r.i32();
    f.size = DataSize::bytes(r.i64());
    f.arrival = Time::ps(r.i64());
    f.total_cells = r.i64();
    f.moved_cells = r.i64();
    if (r.ok() &&
        (f.dst_node < 0 ||
         static_cast<std::size_t>(f.dst_node) >= per_dst_.size() ||
         f.size.in_bytes() < 0 || f.total_cells <= 0 || f.moved_cells < 0 ||
         f.moved_cells > f.total_cells)) {
      r.fail("LOCAL flow state out of range");
      return false;
    }
    local.push_back(f);
  }
  if (!r.ok()) return false;
  const std::size_t n_per_dst = r.count(8, "per-destination index");
  if (n_per_dst != per_dst_.size()) {
    r.fail("per-destination index count does not match the node count");
    return false;
  }
  std::vector<std::deque<std::size_t>> per_dst(n_per_dst);
  for (auto& d : per_dst) {
    if (!get_index_deque(r, &d, local.size(), "per-destination index")) {
      return false;
    }
  }
  const std::uint64_t first_unfinished = r.u64();
  const std::int64_t unfinished = r.i64();
  std::deque<std::size_t> spray;
  if (!get_index_deque(r, &spray, local.size(), "spray rotation")) {
    return false;
  }
  if (first_unfinished > local.size() || unfinished < 0 ||
      unfinished > static_cast<std::int64_t>(local.size())) {
    r.fail("LOCAL cursor state out of range");
    return false;
  }
  local_ = std::move(local);
  per_dst_ = std::move(per_dst);
  first_unfinished_ = static_cast<std::size_t>(first_unfinished);
  unfinished_flows_ = unfinished;
  spray_ready_ = std::move(spray);
  if (!get_cell_queues(r, &vq_, "virtual") ||
      !get_cell_queues(r, &fq_, "forward") ||
      !get_cell_queues(r, &retx_, "retransmission")) {
    return false;
  }
  retx_total_ = r.i64();
  if (r.ok() && retx_total_ < 0) {
    r.fail("retransmission total negative");
    return false;
  }
  return gauge_.restore(r);
}

}  // namespace sirius::node
