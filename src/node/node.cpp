#include "node/node.hpp"

#include <cassert>

#include "common/invariant.hpp"

namespace sirius::node {

Node::Node(NodeId self, const cc::RequestGrantConfig& cc_cfg,
           DataSize cell_capacity)
    : self_(self), cc_(self, cc_cfg), cell_capacity_(cell_capacity) {
  vq_.resize(static_cast<std::size_t>(cc_cfg.nodes));
  fq_.resize(static_cast<std::size_t>(cc_cfg.nodes));
  retx_.resize(static_cast<std::size_t>(cc_cfg.nodes));
  per_dst_.resize(static_cast<std::size_t>(cc_cfg.nodes));
}

void Node::add_flow(const LocalFlow& f) {
  SIRIUS_INVARIANT(f.total_cells > 0, "flow %lld arrives with %lld cells",
                   static_cast<long long>(f.id),
                   static_cast<long long>(f.total_cells));
  if (f.total_cells <= 0) return;
  local_.push_back(f);
  const std::size_t idx = local_.size() - 1;
  per_dst_[static_cast<std::size_t>(f.dst_node)].push_back(idx);
  // Rotation re-queue, matched by the pop_front above.
  // sirius-lint: allow(hot-path-alloc)
  spray_ready_.push_back(idx);
  ++unfinished_flows_;
}

std::vector<NodeId> Node::pending_cell_dsts(Time now, Time cell_interval,
                                            std::size_t limit) const {
  std::vector<NodeId> out;
  out.reserve(limit);

  // Retransmissions first: a lost cell blocks its flow's in-order prefix
  // at the receiver, so re-covering it beats injecting fresh cells.
  for (std::size_t dst = 0; dst < retx_.size() && out.size() < limit; ++dst) {
    for (std::size_t k = 0; k < retx_[dst].size() && out.size() < limit; ++k) {
      out.push_back(static_cast<NodeId>(dst));
    }
  }
  if (out.size() >= limit) return out;

  // Bucket pending flows by source server (buckets keep flow arrival
  // order; each entry is (destination, pending cell count)).
  std::vector<std::int32_t> server_ids;
  std::vector<std::deque<std::pair<NodeId, std::int64_t>>> buckets;
  for (std::size_t i = first_unfinished_; i < local_.size(); ++i) {
    const LocalFlow& f = local_[i];
    if (f.exhausted()) continue;
    const std::int64_t n = f.pending(now, cell_interval);
    if (n <= 0) continue;
    std::size_t b = 0;
    while (b < server_ids.size() && server_ids[b] != f.src_server) ++b;
    if (b == server_ids.size()) {
      server_ids.push_back(f.src_server);
      buckets.emplace_back();
    }
    buckets[b].push_back({f.dst_node, n});
  }

  // Two-level round-robin: one cell per server per pass, rotating over
  // each server's flows.
  bool any = !buckets.empty();
  while (any && out.size() < limit) {
    any = false;
    for (auto& bucket : buckets) {
      if (bucket.empty()) continue;
      auto [dst, n] = bucket.front();
      bucket.pop_front();
      out.push_back(dst);
      if (--n > 0) bucket.push_back({dst, n});
      if (out.size() >= limit) return out;
      any = any || !bucket.empty();
    }
  }
  return out;
}

LocalFlow* Node::oldest_pending_flow_for(NodeId dst, Time now,
                                         Time cell_interval) {
  auto& q = per_dst_[static_cast<std::size_t>(dst)];
  // Drop exhausted heads, then serve the first flow with a pending cell and
  // rotate it to the back: cells of concurrent flows to the same
  // destination are interleaved in the rack's FIFO virtual queue (they
  // arrive interleaved from their servers), so service alternates across
  // flows instead of running one flow to completion.
  while (!q.empty() && local_[q.front()].exhausted()) q.pop_front();
  for (std::size_t k = 0; k < q.size(); ++k) {
    const std::size_t idx = q.front();
    q.pop_front();
    LocalFlow& f = local_[idx];
    if (f.exhausted()) continue;
    // Deque rotation: pops are matched by pushes, so steady state
    // reuses the same blocks. sirius-lint: allow(hot-path-alloc)
    q.push_back(idx);
    if (f.pending(now, cell_interval) > 0) return &f;
  }
  return nullptr;
}

Cell Node::cut_cell(LocalFlow& f) {
  Cell c;
  c.flow = f.id;
  c.seq = static_cast<std::int32_t>(f.moved_cells);
  c.dst_node = f.dst_node;
  c.dst_server = f.dst_server;
  c.payload_bytes = payload_of(f.size, cell_capacity_, c.seq);
  ++f.moved_cells;
  if (f.exhausted()) {
    --unfinished_flows_;
    // Advance the FIFO cursor past the exhausted prefix.
    while (first_unfinished_ < local_.size() &&
           local_[first_unfinished_].exhausted()) {
      ++first_unfinished_;
    }
  }
  return c;
}

std::optional<Cell> Node::take_cell_for(NodeId dst, Time now,
                                        Time cell_interval) {
  auto& rq = retx_[static_cast<std::size_t>(dst)];
  if (!rq.empty()) {
    Cell c = rq.front();
    rq.pop_front();
    --retx_total_;
    gauge_.remove(cell_capacity_);
    return c;
  }
  LocalFlow* f = oldest_pending_flow_for(dst, now, cell_interval);
  if (f == nullptr) return std::nullopt;
  return cut_cell(*f);
}

std::vector<FlowId> Node::abort_flows_where(
    const std::function<bool(const LocalFlow&)>& pred) {
  std::vector<FlowId> aborted;
  for (LocalFlow& f : local_) {
    if (f.exhausted() || !pred(f)) continue;
    aborted.push_back(f.id);
    f.moved_cells = f.total_cells;
    --unfinished_flows_;
  }
  while (first_unfinished_ < local_.size() &&
         local_[first_unfinished_].exhausted()) {
    ++first_unfinished_;
  }
  return aborted;
}

void Node::push_retx(const Cell& c) {
  retx_[static_cast<std::size_t>(c.dst_node)].push_back(c);
  ++retx_total_;
  gauge_.add(cell_capacity_);
}

std::int64_t Node::drain_vq_to_retx(NodeId intermediate) {
  auto& q = vq_[static_cast<std::size_t>(intermediate)];
  std::int64_t moved = 0;
  while (!q.empty()) {
    push_retx(q.front());
    q.pop_front();
    gauge_.remove(cell_capacity_);
    ++moved;
  }
  return moved;
}

std::int64_t Node::purge_dst(NodeId dst,
                             const std::function<void(NodeId)>& on_vq_purge) {
  std::int64_t dropped = 0;
  for (std::size_t inter = 0; inter < vq_.size(); ++inter) {
    auto& q = vq_[inter];
    for (std::size_t i = q.size(); i > 0; --i) {
      Cell c = q.front();
      q.pop_front();
      if (c.dst_node == dst) {
        gauge_.remove(cell_capacity_);
        ++dropped;
        if (on_vq_purge) on_vq_purge(static_cast<NodeId>(inter));
      } else {
        q.push_back(c);
      }
    }
  }
  auto& f = fq_[static_cast<std::size_t>(dst)];
  dropped += static_cast<std::int64_t>(f.size());
  gauge_.remove(cell_capacity_ * static_cast<std::int64_t>(f.size()));
  f.clear();
  auto& r = retx_[static_cast<std::size_t>(dst)];
  dropped += static_cast<std::int64_t>(r.size());
  retx_total_ -= static_cast<std::int64_t>(r.size());
  gauge_.remove(cell_capacity_ * static_cast<std::int64_t>(r.size()));
  r.clear();
  return dropped;
}

std::int64_t Node::purge_all_queues() {
  std::int64_t dropped = 0;
  const auto clear_all = [&](std::vector<std::deque<Cell>>& qs) {
    for (auto& q : qs) {
      dropped += static_cast<std::int64_t>(q.size());
      gauge_.remove(cell_capacity_ * static_cast<std::int64_t>(q.size()));
      q.clear();
    }
  };
  clear_all(vq_);
  clear_all(fq_);
  clear_all(retx_);
  retx_total_ = 0;
  return dropped;
}

std::optional<Cell> Node::take_any_cell(Time now, Time cell_interval) {
  // Round-robin over flows so concurrent flows share the uplinks fairly
  // (this is the "ideal" per-flow service discipline).
  for (std::size_t tries = spray_ready_.size(); tries > 0; --tries) {
    const std::size_t idx = spray_ready_.front();
    spray_ready_.pop_front();
    LocalFlow& f = local_[idx];
    if (f.exhausted()) continue;  // drop from rotation
    if (f.pending(now, cell_interval) > 0) {
      Cell c = cut_cell(f);
      // Rotation re-queue, matched by the pop_front above.
      // sirius-lint: allow(hot-path-alloc)
      if (!f.exhausted()) spray_ready_.push_back(idx);
      return c;
    }
    // Rotation re-queue, matched by the pop_front above.
    // sirius-lint: allow(hot-path-alloc)
    spray_ready_.push_back(idx);  // paced out; retry later
  }
  return std::nullopt;
}

void Node::push_vq(NodeId intermediate, const Cell& c) {
  vq_[static_cast<std::size_t>(intermediate)].push_back(c);
  gauge_.add(cell_capacity_);
}

std::optional<Cell> Node::pop_vq(NodeId intermediate) {
  auto& q = vq_[static_cast<std::size_t>(intermediate)];
  if (q.empty()) return std::nullopt;
  Cell c = q.front();
  q.pop_front();
  gauge_.remove(cell_capacity_);
  return c;
}

void Node::push_fq(NodeId dst, const Cell& c) {
  fq_[static_cast<std::size_t>(dst)].push_back(c);
  gauge_.add(cell_capacity_);
}

std::optional<Cell> Node::pop_fq(NodeId dst) {
  auto& q = fq_[static_cast<std::size_t>(dst)];
  if (q.empty()) return std::nullopt;
  Cell c = q.front();
  q.pop_front();
  gauge_.remove(cell_capacity_);
  return c;
}

}  // namespace sirius::node
