// The Sirius node (rack switch or server NIC) data-plane state (§4.2–4.3).
//
// A node plays three roles simultaneously:
//  * source:       LOCAL holds locally generated cells (modelled as per-flow
//                  counters fed at server line rate); granted cells move to
//                  per-intermediate virtual queues (VQs) for first-hop
//                  transmission;
//  * intermediate: per-destination forward queues (FQs) hold relayed cells,
//                  bounded to Q by the congestion control;
//  * destination:  arriving cells are handed to the receive path (reorder
//                  buffers + server downlinks, owned by the simulator).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cc/request_grant.hpp"
#include "common/hot_path.hpp"
#include "common/thread_safety.hpp"
#include "common/time.hpp"
#include "node/cell.hpp"
#include "stats/occupancy.hpp"

namespace sirius::node {

/// A flow queued at its source node.
struct LocalFlow {
  FlowId id = 0;
  NodeId dst_node = 0;
  std::int32_t src_server = 0;
  std::int32_t dst_server = 0;
  DataSize size;
  Time arrival;
  std::int64_t total_cells = 0;
  std::int64_t moved_cells = 0;  ///< cells already moved out of LOCAL
  /// Cells made available so far by the server->rack link (grows at the
  /// injection rate from `arrival`).
  [[nodiscard]] std::int64_t available(Time now, Time cell_interval) const {
    if (now < arrival) return 0;
    const std::int64_t released = (now - arrival) / cell_interval + 1;
    return std::min(total_cells, released);
  }
  [[nodiscard]] std::int64_t pending(Time now, Time cell_interval) const {
    return available(now, cell_interval) - moved_cells;
  }
  [[nodiscard]] bool exhausted() const { return moved_cells >= total_cells; }
};

// All mutable Node state belongs to the slot-synchronous core: every
// accessor below requires common::sim_slot_role, so when the slot loop is
// sharded (ROADMAP item 2) the compiler enforces that only the owning
// shard's worker touches this node's queues.
class Node {
 public:
  Node(NodeId self, const cc::RequestGrantConfig& cc_cfg, DataSize cell_capacity);

  [[nodiscard]] NodeId self() const { return self_; }
  cc::RequestGrantNode& cc() SIRIUS_REQUIRES(common::sim_slot_role) {
    return cc_;
  }
  const cc::RequestGrantNode& cc() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return cc_;
  }

  // ---- LOCAL buffer (source role) ---------------------------------------

  /// Registers a newly arrived flow in LOCAL.
  void add_flow(const LocalFlow& f) SIRIUS_REQUIRES(common::sim_slot_role);

  /// Destinations of cells pending in LOCAL, truncated to `limit` entries;
  /// input to cc::RequestGrantNode::build_requests. Cells are interleaved
  /// with two-level round-robin fairness — across source servers first,
  /// then across each server's flows — modelling the §4.3 credit-based
  /// server->rack flow control, which gives every server an equal share of
  /// the LOCAL buffer regardless of how many elephants its neighbours run.
  std::vector<NodeId> pending_cell_dsts(Time now, Time cell_interval,
                                        std::size_t limit) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

  /// True if any flow still has cells not yet moved out of LOCAL
  /// (regardless of injection pacing).
  [[nodiscard]] bool has_unfinished_flows() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return unfinished_flows_ > 0;
  }

  /// On grant receipt: takes the oldest pending cell for `dst` out of
  /// LOCAL. Returns nullopt if no such cell exists (grant is released).
  SIRIUS_HOT std::optional<Cell> take_cell_for(NodeId dst, Time now,
                                               Time cell_interval)
      SIRIUS_REQUIRES(common::sim_slot_role);

  /// Takes the oldest pending cell for *any* destination (ideal /
  /// scheduler-less spraying mode). Returns nullopt when LOCAL is empty.
  SIRIUS_HOT std::optional<Cell> take_any_cell(Time now, Time cell_interval)
      SIRIUS_REQUIRES(common::sim_slot_role);

  /// Aborts every LOCAL flow matching `pred` (its destination died, or this
  /// node itself fail-stopped): remaining cells are removed from LOCAL
  /// without ever being injected. Returns the ids of the aborted flows.
  std::vector<FlowId> abort_flows_where(
      const std::function<bool(const LocalFlow&)>& pred)
      SIRIUS_REQUIRES(common::sim_slot_role);

  // ---- retransmission queue (source role, §4.5 loss recovery) -----------

  /// Re-queues a timed-out granted cell for retransmission. Retx cells are
  /// served before LOCAL by take_cell_for / pending_cell_dsts, so the next
  /// grant towards their destination re-covers the loss first.
  SIRIUS_HOT void push_retx(const Cell& c)
      SIRIUS_REQUIRES(common::sim_slot_role);
  [[nodiscard]] std::int64_t retx_total() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return retx_total_;
  }
  [[nodiscard]] std::int32_t retx_depth(NodeId dst) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return static_cast<std::int32_t>(
        retx_[static_cast<std::size_t>(dst)].size());
  }

  // ---- failover queue surgery (§4.5) -------------------------------------

  /// Moves every granted-but-unsent cell queued towards `intermediate`
  /// back into the retransmission queue: the relay died before serving
  /// them, and its grant accounting died with it. Returns the cell count.
  std::int64_t drain_vq_to_retx(NodeId intermediate)
      SIRIUS_REQUIRES(common::sim_slot_role);

  /// Drops every queued cell destined to `dst` (the destination rack
  /// died). VQ cells still hold a grant at their — alive — intermediate,
  /// so `on_vq_purge` is invoked with that intermediate for each; the
  /// caller must release the grant there. Returns the cells dropped.
  std::int64_t purge_dst(NodeId dst,
                         const std::function<void(NodeId)>& on_vq_purge)
      SIRIUS_REQUIRES(common::sim_slot_role);

  /// Empties every VQ, FQ and retx queue (this node fail-stopped; its
  /// buffers are gone). Returns the cells dropped.
  std::int64_t purge_all_queues() SIRIUS_REQUIRES(common::sim_slot_role);

  // ---- virtual queues towards intermediates (source role) ---------------

  SIRIUS_HOT void push_vq(NodeId intermediate, const Cell& c)
      SIRIUS_REQUIRES(common::sim_slot_role);
  SIRIUS_HOT std::optional<Cell> pop_vq(NodeId intermediate)
      SIRIUS_REQUIRES(common::sim_slot_role);
  [[nodiscard]] bool vq_empty(NodeId intermediate) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return vq_[static_cast<std::size_t>(intermediate)].empty();
  }
  [[nodiscard]] std::int32_t vq_depth(NodeId intermediate) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return static_cast<std::int32_t>(
        vq_[static_cast<std::size_t>(intermediate)].size());
  }

  // ---- forward queues per destination (intermediate role) ---------------

  SIRIUS_HOT void push_fq(NodeId dst, const Cell& c)
      SIRIUS_REQUIRES(common::sim_slot_role);
  SIRIUS_HOT std::optional<Cell> pop_fq(NodeId dst)
      SIRIUS_REQUIRES(common::sim_slot_role);
  [[nodiscard]] bool fq_empty(NodeId dst) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return fq_[static_cast<std::size_t>(dst)].empty();
  }
  [[nodiscard]] std::int32_t fq_depth(NodeId dst) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return static_cast<std::int32_t>(
        fq_[static_cast<std::size_t>(dst)].size());
  }

  // ---- accounting --------------------------------------------------------

  /// Number of destination slots the per-dst queues span (= node count);
  /// lets auditors sweep every (node, dst) pair without knowing the config.
  [[nodiscard]] std::size_t queue_span() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return fq_.size();
  }

  /// Peak data held in this node's VQs + FQs (Fig. 10c).
  [[nodiscard]] DataSize peak_queue() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return gauge_.peak();
  }
  [[nodiscard]] DataSize current_queue() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return gauge_.current();
  }

  /// Snapshottable: LOCAL flows and their per-dst index, the spray
  /// rotation, every VQ/FQ/retx queue cell-by-cell, the congestion-control
  /// state and the occupancy gauge — the complete data-plane state of this
  /// node.
  void serialize(ckpt::Writer& w) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);
  bool restore(ckpt::Reader& r) SIRIUS_REQUIRES(common::sim_slot_role);

 private:
  LocalFlow* oldest_pending_flow_for(NodeId dst, Time now, Time cell_interval)
      SIRIUS_REQUIRES(common::sim_slot_role);
  Cell cut_cell(LocalFlow& f) SIRIUS_REQUIRES(common::sim_slot_role);

  NodeId self_;
  cc::RequestGrantNode cc_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  DataSize cell_capacity_;

  // FIFO by arrival; never popped
  std::deque<LocalFlow> local_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  // indices into local_
  std::vector<std::deque<std::size_t>> per_dst_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // FIFO cursor past exhausted flows
  std::size_t first_unfinished_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  std::int64_t unfinished_flows_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  // RR rotation for take_any_cell
  std::deque<std::size_t> spray_ready_
      SIRIUS_GUARDED_BY(common::sim_slot_role);

  std::vector<std::deque<Cell>> vq_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  std::vector<std::deque<Cell>> fq_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  // per destination, served first
  std::vector<std::deque<Cell>> retx_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  std::int64_t retx_total_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  stats::ByteGauge gauge_ SIRIUS_GUARDED_BY(common::sim_slot_role);
};

}  // namespace sirius::node
