#include "node/node_audit.hpp"

#include "common/invariant.hpp"
#include "node/node.hpp"
#include "node/reorder_buffer.hpp"

namespace sirius::node {

void audit_queue_bound(const Node& n, std::int32_t queue_limit,
                       std::int32_t bound)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
  const auto& cc = n.cc();
  for (NodeId d = 0; d < static_cast<NodeId>(n.queue_span()); ++d) {
    const std::int32_t fq = n.fq_depth(d);
    const std::int32_t out = cc.outstanding(d);
    SIRIUS_INVARIANT(fq >= 0 && out >= 0,
                     "node %d: negative queue accounting for dst %d "
                     "(fq %d, outstanding %d)",
                     n.self(), d, fq, out);
    SIRIUS_INVARIANT(out <= queue_limit,
                     "node %d: %d outstanding grants for dst %d exceed Q=%d",
                     n.self(), out, d, queue_limit);
    SIRIUS_INVARIANT(fq + out <= bound,
                     "node %d: relay queue for dst %d holds %d cells with %d "
                     "outstanding grants, above the audited bound %d (Q=%d)",
                     n.self(), d, fq, out, bound, queue_limit);
  }
}

void audit_reorder(const ReorderBuffer& rb) {
  SIRIUS_INVARIANT(rb.next_expected() >= 0 &&
                       rb.next_expected() <= rb.total_cells(),
                   "reorder: in-order prefix %lld outside [0, %lld]",
                   static_cast<long long>(rb.next_expected()),
                   static_cast<long long>(rb.total_cells()));
  SIRIUS_INVARIANT(
      rb.buffered_cells() <= rb.total_cells() - rb.next_expected(),
      "reorder: %lld cells buffered beyond the %lld still outstanding",
      static_cast<long long>(rb.buffered_cells()),
      static_cast<long long>(rb.total_cells() - rb.next_expected()));
}

}  // namespace sirius::node
