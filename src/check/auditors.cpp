#include "check/auditors.hpp"

#include <cmath>
#include <utility>

#include "common/invariant.hpp"

namespace sirius::check {

void AuditorRegistry::register_auditor(std::string name,
                                       std::function<void()> fn) {
  auditors_.push_back(Entry{std::move(name), std::move(fn)});
}

void AuditorRegistry::run_all() const {
  for (const Entry& e : auditors_) e.fn();
}

std::vector<std::string> AuditorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(auditors_.size());
  for (const Entry& e : auditors_) out.push_back(e.name);
  return out;
}

void audit_destination_permutation(const std::vector<NodeId>& dsts,
                                   const char* what) {
  // Destinations are small non-negative ids; a seen-bitmap keeps this O(n).
  NodeId max_id = -1;
  for (const NodeId d : dsts) max_id = d > max_id ? d : max_id;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(max_id + 1), 0);
  for (const NodeId d : dsts) {
    if (d == kInvalidNode) continue;  // idle uplink (schedule padding)
    SIRIUS_INVARIANT(d >= 0, "%s: negative destination %d", what, d);
    if (d < 0) continue;
    auto& s = seen[static_cast<std::size_t>(d)];
    SIRIUS_INVARIANT(s == 0,
                     "%s: destination %d receives from two senders in one "
                     "slot (schedule is not a permutation)",
                     what, d);
    s = 1;
  }
}

void audit_cell_conservation(std::int64_t injected, std::int64_t delivered,
                             std::int64_t queued, std::int64_t in_flight,
                             std::int64_t dropped) {
  SIRIUS_INVARIANT(injected >= 0 && delivered >= 0 && queued >= 0 &&
                       in_flight >= 0 && dropped >= 0,
                   "negative cell ledger: injected %lld delivered %lld "
                   "queued %lld in-flight %lld dropped %lld",
                   static_cast<long long>(injected),
                   static_cast<long long>(delivered),
                   static_cast<long long>(queued),
                   static_cast<long long>(in_flight),
                   static_cast<long long>(dropped));
  SIRIUS_INVARIANT(
      injected == delivered + queued + in_flight + dropped,
      "cell conservation broken: injected %lld != delivered %lld + "
      "queued %lld + in-flight %lld + dropped %lld",
      static_cast<long long>(injected), static_cast<long long>(delivered),
      static_cast<long long>(queued), static_cast<long long>(in_flight),
      static_cast<long long>(dropped));
}

void audit_in_order_release(const std::vector<std::int32_t>& released) {
  for (std::size_t i = 1; i < released.size(); ++i) {
    SIRIUS_INVARIANT(released[i] > released[i - 1],
                     "reorder: released seq %d after seq %d (out of order)",
                     released[i], released[i - 1]);
  }
}

void audit_clock_offsets(const std::vector<double>& offsets_ps,
                         double bound_ps) {
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const double o : offsets_ps) {
    SIRIUS_INVARIANT(std::isfinite(o), "clock offset %g ps is not finite", o);
    if (!std::isfinite(o)) continue;
    lo = first ? o : (o < lo ? o : lo);
    hi = first ? o : (o > hi ? o : hi);
    first = false;
  }
  SIRIUS_INVARIANT(hi - lo <= bound_ps,
                   "clocks diverged after convergence: spread %g ps exceeds "
                   "the %g ps bound",
                   hi - lo, bound_ps);
}

}  // namespace sirius::check
