#include "check/auditors.hpp"

#include <cmath>
#include <utility>

#include "check/invariant.hpp"
#include "node/node.hpp"
#include "node/reorder_buffer.hpp"
#include "sched/schedule.hpp"

namespace sirius::check {

void AuditorRegistry::register_auditor(std::string name,
                                       std::function<void()> fn) {
  auditors_.push_back(Entry{std::move(name), std::move(fn)});
}

void AuditorRegistry::run_all() const {
  for (const Entry& e : auditors_) e.fn();
}

std::vector<std::string> AuditorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(auditors_.size());
  for (const Entry& e : auditors_) out.push_back(e.name);
  return out;
}

void audit_destination_permutation(const std::vector<NodeId>& dsts,
                                   const char* what) {
  // Destinations are small non-negative ids; a seen-bitmap keeps this O(n).
  NodeId max_id = -1;
  for (const NodeId d : dsts) max_id = d > max_id ? d : max_id;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(max_id + 1), 0);
  for (const NodeId d : dsts) {
    if (d == kInvalidNode) continue;  // idle uplink (schedule padding)
    SIRIUS_INVARIANT(d >= 0, "%s: negative destination %d", what, d);
    if (d < 0) continue;
    auto& s = seen[static_cast<std::size_t>(d)];
    SIRIUS_INVARIANT(s == 0,
                     "%s: destination %d receives from two senders in one "
                     "slot (schedule is not a permutation)",
                     what, d);
    s = 1;
  }
}

void audit_slot_permutation(const sched::CyclicSchedule& sched,
                            std::int64_t slot)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
  // Contention-freeness is per uplink: for a fixed (u, slot) the src -> dst
  // map is a bijection. Across uplinks a node legitimately receives up to
  // U cells per slot (one per downlink), so each uplink is audited alone.
  std::vector<NodeId> dsts;
  dsts.reserve(static_cast<std::size_t>(sched.nodes()));
  for (UplinkId u = 0; u < sched.uplinks(); ++u) {
    dsts.clear();
    for (NodeId raw = 0, seen = 0; seen < sched.nodes(); ++raw) {
      if (!sched.is_member(raw)) continue;
      ++seen;
      const NodeId dst = sched.peer_tx(raw, u, slot);
      if (dst == kInvalidNode) continue;
      SIRIUS_INVARIANT(dst != raw, "schedule: node %d sends to itself at slot %lld",
                       raw, static_cast<long long>(slot));
      SIRIUS_INVARIANT(sched.is_member(dst),
                       "schedule: node %d sends to non-member %d at slot %lld",
                       raw, dst, static_cast<long long>(slot));
      dsts.push_back(dst);
    }
    audit_destination_permutation(dsts, "schedule");
  }

  // rx consistency: every receiver that hears someone hears exactly the
  // sender the tx map named (spot-checks the peer_rx inverse).
  for (NodeId raw = 0, seen = 0; seen < sched.nodes(); ++raw) {
    if (!sched.is_member(raw)) continue;
    ++seen;
    for (UplinkId u = 0; u < sched.uplinks(); ++u) {
      const NodeId src = sched.peer_rx(raw, u, slot);
      if (src == kInvalidNode) continue;
      SIRIUS_INVARIANT(
          sched.peer_tx(src, u, slot) == raw,
          "schedule: peer_rx(%d, %d) = %d but peer_tx disagrees at slot %lld",
          raw, u, src, static_cast<long long>(slot));
    }
  }
}

void audit_queue_bound(const node::Node& n, std::int32_t queue_limit,
                       std::int32_t bound)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
  const auto& cc = n.cc();
  for (NodeId d = 0; d < static_cast<NodeId>(n.queue_span()); ++d) {
    const std::int32_t fq = n.fq_depth(d);
    const std::int32_t out = cc.outstanding(d);
    SIRIUS_INVARIANT(fq >= 0 && out >= 0,
                     "node %d: negative queue accounting for dst %d "
                     "(fq %d, outstanding %d)",
                     n.self(), d, fq, out);
    SIRIUS_INVARIANT(out <= queue_limit,
                     "node %d: %d outstanding grants for dst %d exceed Q=%d",
                     n.self(), out, d, queue_limit);
    SIRIUS_INVARIANT(fq + out <= bound,
                     "node %d: relay queue for dst %d holds %d cells with %d "
                     "outstanding grants, above the audited bound %d (Q=%d)",
                     n.self(), d, fq, out, bound, queue_limit);
  }
}

void audit_cell_conservation(std::int64_t injected, std::int64_t delivered,
                             std::int64_t queued, std::int64_t in_flight,
                             std::int64_t dropped) {
  SIRIUS_INVARIANT(injected >= 0 && delivered >= 0 && queued >= 0 &&
                       in_flight >= 0 && dropped >= 0,
                   "negative cell ledger: injected %lld delivered %lld "
                   "queued %lld in-flight %lld dropped %lld",
                   static_cast<long long>(injected),
                   static_cast<long long>(delivered),
                   static_cast<long long>(queued),
                   static_cast<long long>(in_flight),
                   static_cast<long long>(dropped));
  SIRIUS_INVARIANT(
      injected == delivered + queued + in_flight + dropped,
      "cell conservation broken: injected %lld != delivered %lld + "
      "queued %lld + in-flight %lld + dropped %lld",
      static_cast<long long>(injected), static_cast<long long>(delivered),
      static_cast<long long>(queued), static_cast<long long>(in_flight),
      static_cast<long long>(dropped));
}

void audit_reorder(const node::ReorderBuffer& rb) {
  SIRIUS_INVARIANT(rb.next_expected() >= 0 &&
                       rb.next_expected() <= rb.total_cells(),
                   "reorder: in-order prefix %lld outside [0, %lld]",
                   static_cast<long long>(rb.next_expected()),
                   static_cast<long long>(rb.total_cells()));
  SIRIUS_INVARIANT(
      rb.buffered_cells() <= rb.total_cells() - rb.next_expected(),
      "reorder: %lld cells buffered beyond the %lld still outstanding",
      static_cast<long long>(rb.buffered_cells()),
      static_cast<long long>(rb.total_cells() - rb.next_expected()));
}

void audit_in_order_release(const std::vector<std::int32_t>& released) {
  for (std::size_t i = 1; i < released.size(); ++i) {
    SIRIUS_INVARIANT(released[i] > released[i - 1],
                     "reorder: released seq %d after seq %d (out of order)",
                     released[i], released[i - 1]);
  }
}

void audit_clock_offsets(const std::vector<double>& offsets_ps,
                         double bound_ps) {
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const double o : offsets_ps) {
    SIRIUS_INVARIANT(std::isfinite(o), "clock offset %g ps is not finite", o);
    if (!std::isfinite(o)) continue;
    lo = first ? o : (o < lo ? o : lo);
    hi = first ? o : (o > hi ? o : hi);
    first = false;
  }
  SIRIUS_INVARIANT(hi - lo <= bound_ps,
                   "clocks diverged after convergence: spread %g ps exceeds "
                   "the %g ps bound",
                   hi - lo, bound_ps);
}

}  // namespace sirius::check
