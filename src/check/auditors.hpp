// Domain auditors: whole-structure checks over the live simulator state,
// built on SIRIUS_INVARIANT (see invariant.hpp). Modules register the
// auditors that concern them in an AuditorRegistry; the simulator runs the
// registry at round boundaries (SiriusSimConfig::audit_period_rounds) and at
// the end of every run, so a violated property is caught within one audit
// period instead of surfacing later as a corrupted statistic.
//
// This header holds the registry and the *structural* auditors — the ones
// stated over plain values, below every module layer:
//   * audit_destination_permutation — no destination appears twice in a
//     slot's receiver list (the §4.2 contention-freeness core);
//   * audit_cell_conservation — every cell taken from a source LOCAL buffer
//     is delivered, queued, or on the wire (nothing duplicated or lost);
//   * audit_in_order_release — the receiver releases the in-order prefix
//     and nothing else (§4.2 "Cell reordering");
//   * audit_clock_offsets — after §4.4 sync convergence, mutual clock
//     offsets stay inside the configured bound.
//
// Auditors over live module types live with their modules, so check/ never
// depends upward (the layer-order lint rule enforces it):
//   * sched/schedule_audit.hpp — audit_slot_permutation;
//   * node/node_audit.hpp — audit_queue_bound, audit_reorder.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace sirius::check {

/// A named set of audit callbacks. Plain value type: each SiriusSim owns its
/// own registry, so concurrent sims (param sweeps) never share audit state.
class AuditorRegistry {
 public:
  void register_auditor(std::string name, std::function<void()> fn);
  /// Runs every registered auditor; violations are routed through the
  /// InvariantContext like any other SIRIUS_INVARIANT.
  void run_all() const;
  std::size_t size() const { return auditors_.size(); }
  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    std::function<void()> fn;
  };
  std::vector<Entry> auditors_;
};

/// Core permutation check: no destination may appear twice (kInvalidNode
/// entries are idle uplinks and exempt). `what` labels the report.
void audit_destination_permutation(const std::vector<NodeId>& dsts,
                                   const char* what);

/// Conservation: injected == delivered + queued + in_flight + dropped.
void audit_cell_conservation(std::int64_t injected, std::int64_t delivered,
                             std::int64_t queued, std::int64_t in_flight,
                             std::int64_t dropped);

/// The sequence of released cell seqs must be strictly increasing (the
/// in-order-release contract, checked from the outside).
void audit_in_order_release(const std::vector<std::int32_t>& released);

/// All clock phase offsets finite, and every pairwise spread <= bound_ps.
void audit_clock_offsets(const std::vector<double>& offsets_ps,
                         double bound_ps);

}  // namespace sirius::check
