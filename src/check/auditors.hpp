// Domain auditors: whole-structure checks over the live simulator state,
// built on SIRIUS_INVARIANT (see invariant.hpp). Modules register the
// auditors that concern them in an AuditorRegistry; the simulator runs the
// registry at round boundaries (SiriusSimConfig::audit_period_rounds) and at
// the end of every run, so a violated property is caught within one audit
// period instead of surfacing later as a corrupted statistic.
//
// Each auditor states one paper property:
//   * audit_slot_permutation — the §4.2 schedule connects each receiver to
//     at most one sender per slot (contention-freeness);
//   * audit_queue_bound — the §4.3 request/grant protocol keeps every
//     per-destination relay queue within its bound;
//   * audit_cell_conservation — every cell taken from a source LOCAL buffer
//     is delivered, queued, or on the wire (nothing duplicated or lost);
//   * audit_reorder / audit_in_order_release — the receiver releases the
//     in-order prefix and nothing else (§4.2 "Cell reordering");
//   * audit_clock_offsets — after §4.4 sync convergence, mutual clock
//     offsets stay inside the configured bound.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_safety.hpp"
#include "common/units.hpp"

namespace sirius::node {
class Node;
class ReorderBuffer;
}  // namespace sirius::node
namespace sirius::sched {
class CyclicSchedule;
}  // namespace sirius::sched

namespace sirius::check {

/// A named set of audit callbacks. Plain value type: each SiriusSim owns its
/// own registry, so concurrent sims (param sweeps) never share audit state.
class AuditorRegistry {
 public:
  void register_auditor(std::string name, std::function<void()> fn);
  /// Runs every registered auditor; violations are routed through the
  /// InvariantContext like any other SIRIUS_INVARIANT.
  void run_all() const;
  std::size_t size() const { return auditors_.size(); }
  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    std::function<void()> fn;
  };
  std::vector<Entry> auditors_;
};

/// Core permutation check: no destination may appear twice (kInvalidNode
/// entries are idle uplinks and exempt). `what` labels the report.
void audit_destination_permutation(const std::vector<NodeId>& dsts,
                                   const char* what);

/// Audits slot `slot` of the schedule: the tx map over (member, uplink) is
/// a partial permutation, destinations are members distinct from their
/// source, and peer_rx inverts peer_tx.
void audit_slot_permutation(const sched::CyclicSchedule& sched,
                            std::int64_t slot)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

/// Audits one node's per-destination relay (forward) queues against
/// `bound` cells, and its grant accounting against `queue_limit` (the
/// protocol Q). `bound` >= Q: with release-at-transmit grant accounting the
/// conserved quantity is fq + outstanding + granted-cells-in-flight, so the
/// queue alone may transiently hold up to Q plus the in-flight allowance
/// (see SiriusSim::transmit_slot).
void audit_queue_bound(const node::Node& n, std::int32_t queue_limit,
                       std::int32_t bound)
    SIRIUS_REQUIRES_SHARED(common::sim_slot_role);

/// Conservation: injected == delivered + queued + in_flight + dropped.
void audit_cell_conservation(std::int64_t injected, std::int64_t delivered,
                             std::int64_t queued, std::int64_t in_flight,
                             std::int64_t dropped);

/// Structural consistency of a live reorder buffer.
void audit_reorder(const node::ReorderBuffer& rb);

/// The sequence of released cell seqs must be strictly increasing (the
/// in-order-release contract, checked from the outside).
void audit_in_order_release(const std::vector<std::int32_t>& released);

/// All clock phase offsets finite, and every pairwise spread <= bound_ps.
void audit_clock_offsets(const std::vector<double>& offsets_ps,
                         double bound_ps);

}  // namespace sirius::check
