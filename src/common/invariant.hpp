// Runtime-checked domain invariants (docs/ARCHITECTURE.md, "Invariants &
// analysis builds").
//
// The Sirius design is only correct while a handful of properties hold
// exactly: the cyclic schedule stays a permutation, relay queues respect the
// congestion-control bound Q, cells are conserved end to end, reorder
// buffers release in order, event time never runs backwards, and clocks stay
// mutually synchronised after convergence. SIRIUS_INVARIANT(cond, fmt, ...)
// is how modules state those properties in code:
//
//   * In audited builds (-DSIRIUS_AUDIT, on by default — see the
//     SIRIUS_AUDIT CMake option) a failed condition is routed to the global
//     InvariantContext. In InvariantMode::kAbort (default) it prints a
//     formatted report and aborts, like an assert with context. In
//     InvariantMode::kCollect it records the violation and returns, letting
//     the caller continue on a defensive path — used by tests that
//     deliberately violate invariants and by long sweeps that want a tally
//     instead of a crash.
//   * Without SIRIUS_AUDIT the macro compiles down to a plain assert(),
//     keeping the condition but dropping the formatting machinery.
//
// The macro is safe to use inside constexpr functions: the failure branch
// calls a non-constexpr function, so a violation during constant evaluation
// is a compile error (which is exactly what we want).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sirius::check {

/// What a failed SIRIUS_INVARIANT does.
enum class InvariantMode {
  kAbort,    ///< print a report and abort (default)
  kCollect,  ///< record the violation and continue
};

/// One recorded violation (kCollect mode keeps the first few verbatim).
struct Violation {
  const char* file = nullptr;
  int line = 0;
  std::string message;
};

/// Process-wide invariant state: mode switch, violation counter and the
/// retained reports. Thread-safe; the simulator itself is single-threaded
/// but the tsan preset builds everything with -fsanitize=thread.
class InvariantContext {
 public:
  static InvariantContext& instance();

  InvariantMode mode() const;
  void set_mode(InvariantMode m);

  /// Total violations observed since the last reset().
  std::int64_t violations() const;
  /// The first kMaxRetained violations, verbatim.
  std::vector<Violation> reports() const;
  /// Clears the counter and the retained reports (not the mode).
  void reset();
  /// Human-readable summary of the retained reports.
  std::string report() const;

  /// Called by SIRIUS_INVARIANT on failure. Aborts in kAbort mode.
  [[gnu::format(printf, 5, 6)]] void fail(const char* file, int line,
                                          const char* expr, const char* fmt,
                                          ...);

  /// Installs a callback invoked on *every* failed invariant, in both
  /// modes, after the violation is recorded and before the abort/return.
  /// Process-global, last writer wins; pass nullptr to uninstall. Used by
  /// the telemetry flight recorder to dump recent events next to the
  /// report — the hook must not itself rely on invariants holding.
  void set_failure_hook(std::function<void()> hook);

  static constexpr std::size_t kMaxRetained = 64;

 private:
  InvariantContext() = default;
};

/// RAII mode switch for tests: enters kCollect, and on destruction restores
/// the previous mode and clears everything recorded while active.
class ScopedCollect {
 public:
  ScopedCollect();
  ~ScopedCollect();
  ScopedCollect(const ScopedCollect&) = delete;
  ScopedCollect& operator=(const ScopedCollect&) = delete;

  /// Violations recorded since this scope was entered.
  std::int64_t violations() const;

 private:
  InvariantMode saved_;
  std::int64_t baseline_;
};

}  // namespace sirius::check

#if defined(SIRIUS_AUDIT)
#define SIRIUS_INVARIANT(cond, ...)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::sirius::check::InvariantContext::instance().fail(                 \
          __FILE__, __LINE__, #cond, __VA_ARGS__);                        \
    }                                                                     \
  } while (false)
#else
#include <cassert>
#define SIRIUS_INVARIANT(cond, ...) assert(cond)
#endif
