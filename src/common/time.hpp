// Simulation time. Sirius operates at picosecond granularity (laser tuning
// is measured in hundreds of ps, sync accuracy in +/-5 ps), so the base unit
// is the picosecond held in a signed 64-bit count. That covers +/-106 days
// of simulated time, far beyond any experiment here.
//
// All factories and arithmetic are overflow-checked via SIRIUS_INVARIANT:
// an overflow reports a violation and saturates (Time::infinity() is sticky
// under + and *), so audited kCollect runs stay deterministic instead of
// hitting signed-overflow UB.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "common/invariant.hpp"

namespace sirius {

/// A point in (or duration of) simulated time, in picoseconds.
///
/// `Time` is a strong type: it cannot be silently mixed with raw integers.
/// Construct via the factory functions (`Time::ps`, `Time::ns`, ...) or the
/// literals in `sirius::literals`.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time ps(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time ns(std::int64_t v) { return scaled(v, 1'000, "Time::ns"); }
  [[nodiscard]] static constexpr Time us(std::int64_t v) {
    return scaled(v, 1'000'000, "Time::us");
  }
  [[nodiscard]] static constexpr Time ms(std::int64_t v) {
    return scaled(v, 1'000'000'000, "Time::ms");
  }
  [[nodiscard]] static constexpr Time sec(std::int64_t v) {
    return scaled(v, 1'000'000'000'000, "Time::sec");
  }
  /// Builds a Time from a floating-point count of nanoseconds (rounds to
  /// the nearest picosecond).
  [[nodiscard]] static constexpr Time from_ns(double v) {
    return from_double_ps(v * 1e3, "Time::from_ns");
  }
  [[nodiscard]] static constexpr Time from_sec(double v) {
    return from_double_ps(v * 1e12, "Time::from_sec");
  }

  /// The largest representable time; used as "never" by schedulers.
  [[nodiscard]] static constexpr Time infinity() { return Time{INT64_MAX}; }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }

  [[nodiscard]] constexpr std::int64_t picoseconds() const { return ps_; }
  [[nodiscard]] constexpr double to_ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(ps_) * 1e-12; }

  [[nodiscard]] constexpr bool is_infinite() const { return ps_ == INT64_MAX; }

  friend constexpr auto operator<=>(Time, Time) = default;
  friend constexpr Time operator+(Time a, Time b) {
    if (a.is_infinite() || b.is_infinite()) return infinity();
    std::int64_t r = 0;
    if (__builtin_add_overflow(a.ps_, b.ps_, &r)) {
      SIRIUS_INVARIANT(false, "Time overflow: %lld ps + %lld ps",
                       static_cast<long long>(a.ps_),
                       static_cast<long long>(b.ps_));
      return a.ps_ < 0 ? Time{INT64_MIN} : infinity();
    }
    return Time{r};
  }
  friend constexpr Time operator-(Time a, Time b) {
    if (a.is_infinite()) return infinity();  // "never" minus anything: never
    std::int64_t r = 0;
    if (__builtin_sub_overflow(a.ps_, b.ps_, &r)) {
      SIRIUS_INVARIANT(false, "Time overflow: %lld ps - %lld ps",
                       static_cast<long long>(a.ps_),
                       static_cast<long long>(b.ps_));
      return a.ps_ < 0 ? Time{INT64_MIN} : infinity();
    }
    return Time{r};
  }
  friend constexpr Time operator*(Time a, std::int64_t k) {
    if (a.is_infinite() && k > 0) return infinity();
    std::int64_t r = 0;
    if (__builtin_mul_overflow(a.ps_, k, &r)) {
      SIRIUS_INVARIANT(false, "Time overflow: %lld ps * %lld",
                       static_cast<long long>(a.ps_),
                       static_cast<long long>(k));
      return (a.ps_ < 0) == (k < 0) ? infinity() : Time{INT64_MIN};
    }
    return Time{r};
  }
  friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  friend constexpr std::int64_t operator/(Time a, Time b) {
    SIRIUS_INVARIANT(b.ps_ != 0, "Time division by zero (%lld ps / 0)",
                     static_cast<long long>(a.ps_));
    if (b.ps_ == 0) return 0;
    return a.ps_ / b.ps_;
  }
  friend constexpr Time operator/(Time a, std::int64_t k) {
    SIRIUS_INVARIANT(k != 0, "Time division by zero (%lld ps / 0)",
                     static_cast<long long>(a.ps_));
    if (k == 0) return zero();
    return Time{a.ps_ / k};
  }
  friend constexpr Time operator%(Time a, Time b) {
    SIRIUS_INVARIANT(b.ps_ != 0, "Time modulo by zero (%lld ps %% 0)",
                     static_cast<long long>(a.ps_));
    if (b.ps_ == 0) return zero();
    return Time{a.ps_ % b.ps_};
  }
  constexpr Time& operator+=(Time o) { return *this = *this + o; }
  constexpr Time& operator-=(Time o) { return *this = *this - o; }

  /// Human-readable rendering with an auto-selected unit ("3.84 ns").
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t v) : ps_(v) {}

  [[nodiscard]] static constexpr Time scaled(std::int64_t v, std::int64_t unit,
                               const char* what) {
    std::int64_t ps = 0;
    if (__builtin_mul_overflow(v, unit, &ps)) {
      SIRIUS_INVARIANT(false, "%s(%lld) overflows the picosecond tick", what,
                       static_cast<long long>(v));
      return v < 0 ? Time{INT64_MIN} : infinity();
    }
    return Time{ps};
  }
  [[nodiscard]] static constexpr Time from_double_ps(double ps_f, const char* what) {
    const double rounded = ps_f + (ps_f >= 0 ? 0.5 : -0.5);
    // 2^63 rounded down to the nearest double below it; also rejects NaN.
    constexpr double kMax = 9223372036854774784.0;
    if (!(rounded >= -kMax && rounded <= kMax)) {
      SIRIUS_INVARIANT(false, "%s: %g ps is outside the representable range",
                       what, ps_f);
      return ps_f < 0 ? Time{INT64_MIN} : infinity();
    }
    return Time{static_cast<std::int64_t>(rounded)};
  }

  std::int64_t ps_ = 0;
};

namespace literals {
constexpr Time operator""_ps(unsigned long long v) {
  return Time::ps(static_cast<std::int64_t>(v));
}
constexpr Time operator""_ns(unsigned long long v) {
  return Time::ns(static_cast<std::int64_t>(v));
}
constexpr Time operator""_us(unsigned long long v) {
  return Time::us(static_cast<std::int64_t>(v));
}
constexpr Time operator""_ms(unsigned long long v) {
  return Time::ms(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace sirius
