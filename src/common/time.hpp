// Simulation time. Sirius operates at picosecond granularity (laser tuning
// is measured in hundreds of ps, sync accuracy in +/-5 ps), so the base unit
// is the picosecond held in a signed 64-bit count. That covers +/-106 days
// of simulated time, far beyond any experiment here.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace sirius {

/// A point in (or duration of) simulated time, in picoseconds.
///
/// `Time` is a strong type: it cannot be silently mixed with raw integers.
/// Construct via the factory functions (`Time::ps`, `Time::ns`, ...) or the
/// literals in `sirius::literals`.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ps(std::int64_t v) { return Time{v}; }
  static constexpr Time ns(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000'000}; }
  static constexpr Time sec(std::int64_t v) {
    return Time{v * 1'000'000'000'000};
  }
  /// Builds a Time from a floating-point count of nanoseconds (rounds to
  /// the nearest picosecond).
  static constexpr Time from_ns(double v) {
    return Time{static_cast<std::int64_t>(v * 1e3 + (v >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Time from_sec(double v) {
    return Time{static_cast<std::int64_t>(v * 1e12 + (v >= 0 ? 0.5 : -0.5))};
  }

  /// The largest representable time; used as "never" by schedulers.
  static constexpr Time infinity() { return Time{INT64_MAX}; }
  static constexpr Time zero() { return Time{0}; }

  constexpr std::int64_t picoseconds() const { return ps_; }
  constexpr double to_ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double to_us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double to_ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double to_sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr bool is_infinite() const { return ps_ == INT64_MAX; }

  friend constexpr auto operator<=>(Time, Time) = default;
  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) {
    return Time{a.ps_ * k};
  }
  friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  friend constexpr std::int64_t operator/(Time a, Time b) {
    return a.ps_ / b.ps_;
  }
  friend constexpr Time operator/(Time a, std::int64_t k) {
    return Time{a.ps_ / k};
  }
  friend constexpr Time operator%(Time a, Time b) { return Time{a.ps_ % b.ps_}; }
  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
  constexpr Time& operator-=(Time o) { ps_ -= o.ps_; return *this; }

  /// Human-readable rendering with an auto-selected unit ("3.84 ns").
  std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

namespace literals {
constexpr Time operator""_ps(unsigned long long v) {
  return Time::ps(static_cast<std::int64_t>(v));
}
constexpr Time operator""_ns(unsigned long long v) {
  return Time::ns(static_cast<std::int64_t>(v));
}
constexpr Time operator""_us(unsigned long long v) {
  return Time::us(static_cast<std::int64_t>(v));
}
constexpr Time operator""_ms(unsigned long long v) {
  return Time::ms(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace sirius
