#include "common/histogram.hpp"

// Header-only; this TU anchors the library.
