// Crash-safe whole-file writes.
//
// Every durable artifact the tree produces (checkpoints, metrics series,
// traces, manifests) goes through `write_file_atomic`: the bytes land in a
// sibling temporary file, are fsync'd to stable storage, and only then
// replace the destination via an atomic rename. A reader therefore sees
// either the previous complete file or the new complete file — never a
// truncated hybrid — even if the process is killed mid-write.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace sirius {

/// Writes `contents` (which may hold arbitrary binary bytes) to `path`
/// crash-safely: temp file in the same directory, fsync, atomic rename,
/// directory fsync. Returns false and fills `*error` (when non-null) with a
/// one-line diagnostic on any failure; the destination is left untouched and
/// the temporary is cleaned up best-effort.
[[nodiscard]] bool write_file_atomic(const std::filesystem::path& path,
                                     std::string_view contents,
                                     std::string* error = nullptr);

/// Reads the whole file at `path` into `*out`. Returns false and fills
/// `*error` (when non-null) on a missing/unreadable path. Binary-safe.
[[nodiscard]] bool read_file(const std::filesystem::path& path,
                             std::string* out, std::string* error = nullptr);

}  // namespace sirius
