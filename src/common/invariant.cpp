#include "common/invariant.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <utility>

namespace sirius::check {

namespace {

// Kept out of the class so the header stays dependency-free for the hot
// paths that include it (common/time.hpp is pulled in nearly everywhere).
// The invariant registry is deliberately process-wide — it aggregates
// violations across every sim in the process — and is already shard-safe:
// atomics for the counters, mutexes for the report/hook lists.
// sirius-lint: allow(no-mutable-global-state)
std::atomic<InvariantMode> g_mode{InvariantMode::kAbort};
// sirius-lint: allow(no-mutable-global-state)
std::atomic<std::int64_t> g_violations{0};
// sirius-lint: allow(no-mutable-global-state)
std::mutex g_reports_mutex;
std::vector<Violation>& retained() {
  // sirius-lint: allow(no-mutable-global-state) -- guarded by g_reports_mutex
  static std::vector<Violation> reports;
  return reports;
}

// sirius-lint: allow(no-mutable-global-state)
std::mutex g_hook_mutex;
std::function<void()>& failure_hook() {
  // sirius-lint: allow(no-mutable-global-state) -- guarded by g_hook_mutex
  static std::function<void()> hook;
  return hook;
}
// Guards against a hook that itself trips an invariant (the flight
// recorder's dump path must never recurse back into fail()). thread_local,
// so each shard worker gets its own recursion latch.
// sirius-lint: allow(no-mutable-global-state)
thread_local bool g_in_failure_hook = false;

void run_failure_hook() {
  if (g_in_failure_hook) return;
  std::function<void()> hook;
  {
    const std::lock_guard<std::mutex> lock(g_hook_mutex);
    hook = failure_hook();
  }
  if (!hook) return;
  g_in_failure_hook = true;
  hook();
  g_in_failure_hook = false;
}

}  // namespace

InvariantContext& InvariantContext::instance() {
  // Meyers singleton over the shard-safe registry above; the object itself
  // is stateless (all state lives in the guarded globals).
  // sirius-lint: allow(no-mutable-global-state)
  static InvariantContext ctx;
  return ctx;
}

InvariantMode InvariantContext::mode() const {
  return g_mode.load(std::memory_order_relaxed);
}

void InvariantContext::set_mode(InvariantMode m) {
  g_mode.store(m, std::memory_order_relaxed);
}

std::int64_t InvariantContext::violations() const {
  return g_violations.load(std::memory_order_relaxed);
}

std::vector<Violation> InvariantContext::reports() const {
  const std::lock_guard<std::mutex> lock(g_reports_mutex);
  return retained();
}

void InvariantContext::reset() {
  const std::lock_guard<std::mutex> lock(g_reports_mutex);
  g_violations.store(0, std::memory_order_relaxed);
  retained().clear();
}

std::string InvariantContext::report() const {
  const std::lock_guard<std::mutex> lock(g_reports_mutex);
  std::string out = "invariant violations: ";
  out.append(std::to_string(g_violations.load()));
  out.push_back('\n');
  for (const Violation& v : retained()) {
    out.append("  ");
    out.append(v.file);
    out.push_back(':');
    out.append(std::to_string(v.line));
    out.append(": ");
    out.append(v.message);
    out.push_back('\n');
  }
  return out;
}

void InvariantContext::fail(const char* file, int line, const char* expr,
                            const char* fmt, ...) {
  char buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);

  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (mode() == InvariantMode::kCollect) {
    {
      const std::lock_guard<std::mutex> lock(g_reports_mutex);
      if (retained().size() < kMaxRetained) {
        retained().push_back(Violation{
            file, line, std::string(expr) + " — " + buf});
      }
    }
    run_failure_hook();
    return;
  }
  std::fprintf(stderr, "SIRIUS_INVARIANT failed at %s:%d: %s — %s\n", file,
               line, expr, buf);
  run_failure_hook();
  std::abort();
}

void InvariantContext::set_failure_hook(std::function<void()> hook) {
  const std::lock_guard<std::mutex> lock(g_hook_mutex);
  failure_hook() = std::move(hook);
}

ScopedCollect::ScopedCollect()
    : saved_(InvariantContext::instance().mode()),
      baseline_(InvariantContext::instance().violations()) {
  InvariantContext::instance().set_mode(InvariantMode::kCollect);
}

ScopedCollect::~ScopedCollect() {
  InvariantContext::instance().set_mode(saved_);
  InvariantContext::instance().reset();
}

std::int64_t ScopedCollect::violations() const {
  return InvariantContext::instance().violations() - baseline_;
}

}  // namespace sirius::check
