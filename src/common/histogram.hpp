// Percentile tracking and simple histograms for experiment metrics.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/invariant.hpp"

namespace sirius {

/// Exact percentile tracker: stores every sample, sorts on demand.
///
/// Experiments record at most a few hundred thousand samples per run, so an
/// exact tracker is affordable and avoids quantisation questions when
/// reporting tail latency.
class PercentileTracker {
 public:
  void add(double v) {
    // Flow-completion-rate, not slot-rate: one push per finished flow,
    // amortized geometric growth. sirius-lint: allow(hot-path-alloc)
    samples_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() { return percentile(0.0); }
  double max() { return percentile(100.0); }
  double median() { return percentile(50.0); }

  /// Nearest-rank percentile, p in [0, 100]. Requires at least one sample.
  double percentile(double p) {
    assert(!samples_.empty());
    sort_if_needed();
    if (p <= 0.0) return samples_.front();
    if (p >= 100.0) return samples_.back();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }

  void clear() {
    samples_.clear();
    sorted_ = true;
  }

  /// Read-only access to the raw samples (unsorted order not guaranteed).
  const std::vector<double>& samples() const { return samples_; }

  /// Checkpoint restore: replaces the sample set wholesale, preserving the
  /// stored order so later mean() float accumulation is bit-identical.
  void set_samples(std::vector<double> samples) {
    samples_ = std::move(samples);
    sorted_ = false;
  }

 private:
  void sort_if_needed() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Fixed-bin histogram over [lo, hi) with out-of-range clamping, used for
/// device-model CDFs (e.g. SOA switching-time distribution of Fig. 8a).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    assert(hi > lo && bins > 0);
  }

  void add(double v) {
    const auto bins = counts_.size();
    double t = (v - lo_) / (hi_ - lo_);
    t = std::clamp(t, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(t * static_cast<double>(bins));
    if (idx >= bins) idx = bins - 1;
    ++counts_[idx];
    ++total_;
  }

  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count_at(std::size_t bin) const { return counts_.at(bin); }
  double bin_low(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
  }
  double bin_high(std::size_t bin) const { return bin_low(bin + 1); }

  /// Raw bin counts, for checkpoint capture.
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Checkpoint restore: replaces the bin counts wholesale (geometry must
  /// match the constructed histogram). Returns false on a size mismatch.
  bool set_counts(const std::vector<std::uint64_t>& counts) {
    if (counts.size() != counts_.size()) return false;
    counts_ = counts;
    total_ = 0;
    for (const auto c : counts_) total_ += static_cast<std::size_t>(c);
    return true;
  }

  /// Cumulative fraction of samples at or below the upper edge of `bin`.
  double cdf_at(std::size_t bin) const {
    if (total_ == 0) return 0.0;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= bin && i < counts_.size(); ++i) {
      cum += counts_[i];
    }
    return static_cast<double>(cum) / static_cast<double>(total_);
  }

  /// Binned percentile, p in [0, 100], with linear interpolation inside the
  /// covering bin (samples are assumed uniform within a bin). Edge
  /// behaviour: an empty histogram returns lo; p <= 0 returns the lower
  /// edge of the first non-empty bin; p >= 100 the upper edge of the last
  /// non-empty bin. Out-of-range samples were clamped at add() time, so
  /// the result always lies in [lo, hi].
  double percentile(double p) const {
    if (total_ == 0) return lo_;
    std::size_t first = 0;
    while (counts_[first] == 0) ++first;
    std::size_t last = counts_.size() - 1;
    while (counts_[last] == 0) --last;
    if (p <= 0.0) return bin_low(first);
    if (p >= 100.0) return bin_high(last);
    const double target = p / 100.0 * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = first; i <= last; ++i) {
      const auto c = static_cast<double>(counts_[i]);
      if (cum + c >= target && c > 0.0) {
        const double frac = (target - cum) / c;
        return bin_low(i) + (bin_high(i) - bin_low(i)) * frac;
      }
      cum += c;
    }
    return bin_high(last);
  }

  /// Accumulates another histogram's counts into this one. Both must share
  /// the exact (lo, hi, bins) geometry; a mismatch is an invariant
  /// violation and the merge is skipped on the defensive path.
  void merge(const Histogram& other) {
    const bool same = lo_ == other.lo_ && hi_ == other.hi_ &&
                      counts_.size() == other.counts_.size();
    SIRIUS_INVARIANT(same,
                     "Histogram::merge geometry mismatch: [%g, %g)/%zu vs "
                     "[%g, %g)/%zu",
                     lo_, hi_, counts_.size(), other.lo_, other.hi_,
                     other.counts_.size());
    if (!same) return;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
};

/// Running peak/mean tracker for gauge-style metrics (queue occupancy).
class PeakTracker {
 public:
  void observe(double v) {
    peak_ = std::max(peak_, v);
    sum_ += v;
    ++n_;
  }
  double peak() const { return peak_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  std::uint64_t observations() const { return n_; }

 private:
  double peak_ = 0.0;
  double sum_ = 0.0;
  std::uint64_t n_ = 0;
};

}  // namespace sirius
