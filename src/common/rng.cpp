#include "common/rng.hpp"

// Header-only; this TU exists so the library has a concrete object to link.
namespace sirius {
static_assert(Rng::min() == 0);
}  // namespace sirius
