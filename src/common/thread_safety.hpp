// Thread-safety capability annotations for the sharded slot core.
//
// ROADMAP item 2 splits the slot-synchronous loop into per-rack shards.
// The refactor is only safe if the state a shard touches is statically
// known, so the types the sharded core will share — VOQ ownership in
// node/, grant state in cc/, schedule tables in sched/, the telemetry
// Hub — carry Clang thread-safety annotations *now*, while the code is
// still sequential. Under clang (the lint preset / CI tidy job) the
// annotations are enforced by -Wthread-safety as errors; under gcc they
// compile to nothing, so the simulator's behaviour and codegen are
// untouched (the determinism tests assert bit-identical output).
//
// The scheme is role-based, in the style capability systems use before
// real locks exist (cf. Abseil's thread-annotations): a `Role` is a
// stateless capability token, and `RoleLock` is a scoped "acquisition"
// that costs nothing at runtime. Today the single-threaded driver
// acquires `sim_slot_role` once around the slot loop; when sharding
// lands, each shard's worker acquires it around its slot slice and the
// no-op RoleLock is replaced by (or paired with) a real mutex or a
// barrier without touching any annotated declaration. Until then, the
// annotations document and *enforce* which methods may only run inside
// the slot loop.
//
// Macro set (subset of the standard Clang vocabulary, SIRIUS_-prefixed):
//   SIRIUS_CAPABILITY(name)        a class is a capability (role/mutex)
//   SIRIUS_SCOPED_CAPABILITY       RAII type that acquires/releases
//   SIRIUS_GUARDED_BY(cap)         member needs cap held to touch
//   SIRIUS_PT_GUARDED_BY(cap)      pointee needs cap held to touch
//   SIRIUS_REQUIRES(cap)           function needs exclusive cap
//   SIRIUS_REQUIRES_SHARED(cap)    function needs shared (reader) cap
//   SIRIUS_ACQUIRE(cap) / SIRIUS_ACQUIRE_SHARED(cap)
//   SIRIUS_RELEASE(cap) / SIRIUS_RELEASE_SHARED(cap)
//   SIRIUS_EXCLUDES(cap)           function must NOT hold cap
//   SIRIUS_NO_THREAD_SAFETY_ANALYSIS  opt a function out (justify!)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SIRIUS_TS_ATTR(x) __attribute__((x))
#endif
#endif
#if !defined(SIRIUS_TS_ATTR)
#define SIRIUS_TS_ATTR(x)  // no-op outside clang
#endif

#define SIRIUS_CAPABILITY(name) SIRIUS_TS_ATTR(capability(name))
#define SIRIUS_SCOPED_CAPABILITY SIRIUS_TS_ATTR(scoped_lockable)
#define SIRIUS_GUARDED_BY(cap) SIRIUS_TS_ATTR(guarded_by(cap))
#define SIRIUS_PT_GUARDED_BY(cap) SIRIUS_TS_ATTR(pt_guarded_by(cap))
#define SIRIUS_REQUIRES(cap) SIRIUS_TS_ATTR(requires_capability(cap))
#define SIRIUS_REQUIRES_SHARED(cap) \
  SIRIUS_TS_ATTR(requires_shared_capability(cap))
#define SIRIUS_ACQUIRE(cap) SIRIUS_TS_ATTR(acquire_capability(cap))
#define SIRIUS_ACQUIRE_SHARED(cap) SIRIUS_TS_ATTR(acquire_shared_capability(cap))
#define SIRIUS_RELEASE(cap) SIRIUS_TS_ATTR(release_capability(cap))
#define SIRIUS_RELEASE_SHARED(cap) SIRIUS_TS_ATTR(release_shared_capability(cap))
#define SIRIUS_EXCLUDES(cap) SIRIUS_TS_ATTR(locks_excluded(cap))
#define SIRIUS_NO_THREAD_SAFETY_ANALYSIS \
  SIRIUS_TS_ATTR(no_thread_safety_analysis)

namespace sirius::common {

/// A stateless capability token. Nothing is ever stored or locked; the
/// object exists so the annotations have something to name.
class SIRIUS_CAPABILITY("role") Role {
 public:
  constexpr Role() = default;
  Role(const Role&) = delete;
  Role& operator=(const Role&) = delete;

  /// Annotation-only transitions (no-ops at runtime; the analysis treats
  /// them as acquire/release of the capability).
  void acquire() SIRIUS_ACQUIRE() {}
  void acquire_shared() SIRIUS_ACQUIRE_SHARED() {}
  void release() SIRIUS_RELEASE() {}
  void release_shared() SIRIUS_RELEASE_SHARED() {}
};

/// Scoped exclusive "hold" of a Role. Runtime no-op; under clang the
/// analysis sees the capability held for the scope's lifetime. The entry
/// points of the slot-synchronous core (SiriusSim::run(), its constructor,
/// the per-epoch lambdas) each open one of these.
class SIRIUS_SCOPED_CAPABILITY RoleLock {
 public:
  explicit RoleLock(Role& role) SIRIUS_ACQUIRE(role) {
    static_cast<void>(role);
  }
  ~RoleLock() SIRIUS_RELEASE() {}
  RoleLock(const RoleLock&) = delete;
  RoleLock& operator=(const RoleLock&) = delete;
};

/// Scoped shared (reader) hold of a Role, for const paths like the
/// schedule auditors that only read slot-guarded tables.
class SIRIUS_SCOPED_CAPABILITY SharedRoleLock {
 public:
  explicit SharedRoleLock(Role& role) SIRIUS_ACQUIRE_SHARED(role) {
    static_cast<void>(role);
  }
  ~SharedRoleLock() SIRIUS_RELEASE() {}
  SharedRoleLock(const SharedRoleLock&) = delete;
  SharedRoleLock& operator=(const SharedRoleLock&) = delete;
};

/// The slot-synchronous execution role: guards every piece of simulator
/// state the sharded core will partition (VOQs, grant state, schedule
/// tables, the sim's bound instruments). Stateless token, not state —
/// nothing is shared through it.
// sirius-lint: allow(no-mutable-global-state)
inline constinit Role sim_slot_role;

/// The telemetry-hub role: guards the Hub's registry and sinks. The Hub
/// acquires it internally, so producers stay annotation-free.
// sirius-lint: allow(no-mutable-global-state)
inline constinit Role telemetry_hub_role;

}  // namespace sirius::common
