#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace sirius {

std::string Time::to_string() const {
  if (is_infinite()) return "inf";
  const double ps = static_cast<double>(ps_);
  const double abs = std::fabs(ps);
  char buf[64];
  if (abs < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ps", static_cast<long long>(ps_));
  } else if (abs < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3g ns", ps * 1e-3);
  } else if (abs < 1e9) {
    std::snprintf(buf, sizeof buf, "%.4g us", ps * 1e-6);
  } else if (abs < 1e12) {
    std::snprintf(buf, sizeof buf, "%.4g ms", ps * 1e-9);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g s", ps * 1e-12);
  }
  return buf;
}

}  // namespace sirius
