// Random distributions used by the workload generator and device models.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace sirius {

/// Pareto distribution (Type I) with shape `alpha` and a given mean.
///
/// The paper draws flow sizes from Pareto(shape = 1.05, mean = 100 KB):
/// heavy-tailed, most flows small, most bytes in large flows. For a Type I
/// Pareto with shape a > 1, mean = a * x_min / (a - 1), so
/// x_min = mean * (a - 1) / a.
class ParetoDistribution {
 public:
  ParetoDistribution(double shape, double mean)
      : shape_(shape), x_min_(mean * (shape - 1.0) / shape) {}

  /// Inverse-CDF sample: x_min * (1 - u)^(-1/shape).
  double sample(Rng& rng) const {
    const double u = rng.uniform();
    return x_min_ * std::pow(1.0 - u, -1.0 / shape_);
  }

  double shape() const { return shape_; }
  double scale() const { return x_min_; }
  /// Median of the distribution: x_min * 2^(1/shape).
  double median() const { return x_min_ * std::pow(2.0, 1.0 / shape_); }

 private:
  double shape_;
  double x_min_;
};

/// Exponential distribution with a given mean (for Poisson inter-arrivals).
class ExponentialDistribution {
 public:
  explicit ExponentialDistribution(double mean) : mean_(mean) {}

  double sample(Rng& rng) const {
    // Guard against u == 0 which would give log(0).
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    return -mean_ * std::log(u);
  }

  double mean() const { return mean_; }

 private:
  double mean_;
};

/// Normal distribution via Marsaglia polar method.
class NormalDistribution {
 public:
  NormalDistribution(double mean, double stddev)
      : mean_(mean), stddev_(stddev) {}

  double sample(Rng& rng) const {
    double u, v, s;
    do {
      u = rng.uniform(-1.0, 1.0);
      v = rng.uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return mean_ + stddev_ * u * std::sqrt(-2.0 * std::log(s) / s);
  }

 private:
  double mean_;
  double stddev_;
};

/// Log-normal distribution parameterised by the underlying normal's mu/sigma.
/// Device switching times (SOA rise/fall) are modelled as log-normal: strictly
/// positive, unimodal, with a controllable upper tail.
class LogNormalDistribution {
 public:
  LogNormalDistribution(double mu, double sigma) : normal_(mu, sigma) {}

  /// Builds a log-normal from a target median and a target p99.9/median ratio,
  /// which is how we calibrate device models against published worst cases.
  static LogNormalDistribution from_median_and_tail(double median,
                                                    double tail_ratio_p999) {
    // P99.9 of lognormal = median * exp(sigma * z_999), z_999 ~= 3.0902.
    const double sigma = std::log(tail_ratio_p999) / 3.0902;
    return LogNormalDistribution(std::log(median), sigma);
  }

  double sample(Rng& rng) const { return std::exp(normal_.sample(rng)); }

 private:
  NormalDistribution normal_;
};

/// Poisson arrival process: a stream of event times with exponential gaps.
class PoissonProcess {
 public:
  /// `mean_interarrival` is the expected gap between consecutive events.
  PoissonProcess(Time mean_interarrival, Rng rng)
      : exp_(static_cast<double>(mean_interarrival.picoseconds())),
        rng_(rng) {}

  /// Advances and returns the next event time.
  Time next() {
    now_ = now_ + Time::ps(static_cast<std::int64_t>(exp_.sample(rng_) + 0.5));
    return now_;
  }

  Time now() const { return now_; }

 private:
  ExponentialDistribution exp_;
  Rng rng_;
  Time now_ = Time::zero();
};

}  // namespace sirius
