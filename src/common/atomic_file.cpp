#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <system_error>

namespace sirius {

namespace {

void set_error(std::string* error, const std::filesystem::path& path,
               const char* what) {
  if (error == nullptr) return;
  *error = std::string(what) + ": " + path.string();
  if (errno != 0) {
    *error += " (";
    *error += std::strerror(errno);
    *error += ")";
  }
}

// fsync a path (file or directory) by fd; returns false on failure.
bool fsync_path(const std::filesystem::path& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool write_file_atomic(const std::filesystem::path& path,
                       std::string_view contents, std::string* error) {
  errno = 0;
  if (path.empty()) {
    set_error(error, path, "atomic write: empty path");
    return false;
  }
  // Temp file must live on the same filesystem as the destination for the
  // rename to be atomic, so it is a sibling, not /tmp.
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      set_error(error, tmp, "atomic write: cannot open temp file");
      return false;
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      set_error(error, tmp, "atomic write: short write");
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      return false;
    }
  }
  if (!fsync_path(tmp, O_WRONLY)) {
    set_error(error, tmp, "atomic write: fsync failed");
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "atomic write: rename to " + path.string() +
               " failed (" + ec.message() + ")";
    }
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return false;
  }
  // Persist the rename itself. A directory that cannot be fsync'd (some
  // filesystems) is not fatal: the data file is already durable.
  const auto dir = path.has_parent_path() ? path.parent_path()
                                          : std::filesystem::path(".");
  (void)fsync_path(dir, O_RDONLY);
  return true;
}

bool read_file(const std::filesystem::path& path, std::string* out,
               std::string* error) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, path, "cannot open file");
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    set_error(error, path, "read failed");
    return false;
  }
  *out = std::move(data);
  return true;
}

}  // namespace sirius
