#include "common/distributions.hpp"

// Header-only; this TU anchors the library.
