// Deterministic pseudo-random number generation for simulations.
//
// We use xoshiro256**: fast, high quality, and trivially seedable from a
// single 64-bit value via splitmix64. All simulator randomness flows through
// `Rng` so that a (seed, config) pair fully determines an experiment.
#pragma once

#include <cstdint>
#include <cassert>
#include <limits>

namespace sirius {

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` using splitmix64, so distinct
  /// seeds give decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x5157495553ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) {
    assert(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = -n % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child stream (e.g. one per node) so that
  /// per-entity randomness does not depend on iteration order elsewhere.
  Rng fork() { return Rng{(*this)() ^ 0x9e3779b97f4a7c15ull}; }

  /// Exposes the raw 256-bit engine state so a checkpoint can capture the
  /// stream mid-sequence and resume it exactly (reseed() would restart it).
  struct State {
    std::uint64_t s[4];
  };
  [[nodiscard]] State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}};
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t s_[4];
};

}  // namespace sirius
