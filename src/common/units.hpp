// Data sizes, data rates and strong identifier types shared by all modules.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "common/time.hpp"

namespace sirius {

/// An amount of data in bytes (value type, byte-granular).
class DataSize {
 public:
  constexpr DataSize() = default;
  static constexpr DataSize bytes(std::int64_t v) { return DataSize{v}; }
  static constexpr DataSize kilobytes(std::int64_t v) {
    return DataSize{v * 1'000};
  }
  static constexpr DataSize megabytes(std::int64_t v) {
    return DataSize{v * 1'000'000};
  }
  static constexpr DataSize zero() { return DataSize{0}; }

  constexpr std::int64_t in_bytes() const { return bytes_; }
  constexpr std::int64_t in_bits() const { return bytes_ * 8; }
  constexpr double in_kb() const { return static_cast<double>(bytes_) * 1e-3; }

  friend constexpr auto operator<=>(DataSize, DataSize) = default;
  friend constexpr DataSize operator+(DataSize a, DataSize b) {
    return DataSize{a.bytes_ + b.bytes_};
  }
  friend constexpr DataSize operator-(DataSize a, DataSize b) {
    return DataSize{a.bytes_ - b.bytes_};
  }
  friend constexpr DataSize operator*(DataSize a, std::int64_t k) {
    return DataSize{a.bytes_ * k};
  }
  constexpr DataSize& operator+=(DataSize o) { bytes_ += o.bytes_; return *this; }
  constexpr DataSize& operator-=(DataSize o) { bytes_ -= o.bytes_; return *this; }

  std::string to_string() const;

 private:
  constexpr explicit DataSize(std::int64_t v) : bytes_(v) {}
  std::int64_t bytes_ = 0;
};

/// A data rate. Stored in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  static constexpr DataRate bps(std::int64_t v) { return DataRate{v}; }
  static constexpr DataRate gbps(double v) {
    return DataRate{static_cast<std::int64_t>(v * 1e9 + 0.5)};
  }
  static constexpr DataRate tbps(double v) {
    return DataRate{static_cast<std::int64_t>(v * 1e12 + 0.5)};
  }
  static constexpr DataRate zero() { return DataRate{0}; }

  constexpr std::int64_t bits_per_sec() const { return bps_; }
  constexpr double in_gbps() const { return static_cast<double>(bps_) * 1e-9; }
  constexpr double in_tbps() const { return static_cast<double>(bps_) * 1e-12; }

  /// Time to serialise `s` at this rate (rounded up to a whole picosecond).
  constexpr Time transmission_time(DataSize s) const {
    // bits * 1e12 / bps, computed in double then rounded: flows are <= GBs
    // so precision is ample.
    const double ps =
        static_cast<double>(s.in_bits()) * 1e12 / static_cast<double>(bps_);
    return Time::ps(static_cast<std::int64_t>(ps + 0.999999));
  }

  /// Bytes delivered in `t` at this rate (rounded down).
  constexpr DataSize bytes_in(Time t) const {
    const double bytes =
        static_cast<double>(bps_) / 8.0 * t.to_sec();
    return DataSize::bytes(static_cast<std::int64_t>(bytes));
  }

  friend constexpr auto operator<=>(DataRate, DataRate) = default;
  friend constexpr DataRate operator+(DataRate a, DataRate b) {
    return DataRate{a.bps_ + b.bps_};
  }
  friend constexpr DataRate operator*(DataRate a, std::int64_t k) {
    return DataRate{a.bps_ * k};
  }
  friend constexpr DataRate operator/(DataRate a, std::int64_t k) {
    return DataRate{a.bps_ / k};
  }
  friend constexpr double operator/(DataRate a, DataRate b) {
    return static_cast<double>(a.bps_) / static_cast<double>(b.bps_);
  }

  std::string to_string() const;

 private:
  constexpr explicit DataRate(std::int64_t v) : bps_(v) {}
  std::int64_t bps_ = 0;
};

/// Index of a node (rack or server attached to the optical core).
using NodeId = std::int32_t;
/// Index of an uplink transceiver within a node.
using UplinkId = std::int32_t;
/// Index of a wavelength within the laser's tuning range (0-based).
using WavelengthId = std::int32_t;
/// Index of an AWGR grating in the passive core.
using GratingId = std::int32_t;
/// Unique flow identifier.
using FlowId = std::int64_t;

constexpr NodeId kInvalidNode = -1;

}  // namespace sirius
