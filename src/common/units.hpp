// Data sizes, data rates and strong identifier types shared by all modules.
//
// Like Time, the value types here are overflow- and divide-by-zero-checked
// through SIRIUS_INVARIANT: violations report and saturate instead of
// executing signed-overflow or division UB (zero-rate sends return
// Time::infinity(), oversized constructions clamp to the int64 extremes).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "common/invariant.hpp"
#include "common/time.hpp"

namespace sirius {

/// An amount of data in bytes (value type, byte-granular).
class DataSize {
 public:
  constexpr DataSize() = default;
  [[nodiscard]] static constexpr DataSize bytes(std::int64_t v) { return DataSize{v}; }
  [[nodiscard]] static constexpr DataSize kilobytes(std::int64_t v) {
    return scaled(v, 1'000, "DataSize::kilobytes");
  }
  [[nodiscard]] static constexpr DataSize megabytes(std::int64_t v) {
    return scaled(v, 1'000'000, "DataSize::megabytes");
  }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize{0}; }

  [[nodiscard]] constexpr std::int64_t in_bytes() const { return bytes_; }
  [[nodiscard]] constexpr std::int64_t in_bits() const {
    std::int64_t bits = 0;
    if (__builtin_mul_overflow(bytes_, 8, &bits)) {
      SIRIUS_INVARIANT(false, "DataSize: %lld bytes overflows the bit count",
                       static_cast<long long>(bytes_));
      return bytes_ < 0 ? INT64_MIN : INT64_MAX;
    }
    return bits;
  }
  [[nodiscard]] constexpr double in_kb() const { return static_cast<double>(bytes_) * 1e-3; }

  friend constexpr auto operator<=>(DataSize, DataSize) = default;
  friend constexpr DataSize operator+(DataSize a, DataSize b) {
    std::int64_t r = 0;
    if (__builtin_add_overflow(a.bytes_, b.bytes_, &r)) {
      SIRIUS_INVARIANT(false, "DataSize overflow: %lld B + %lld B",
                       static_cast<long long>(a.bytes_),
                       static_cast<long long>(b.bytes_));
      return DataSize{a.bytes_ < 0 ? INT64_MIN : INT64_MAX};
    }
    return DataSize{r};
  }
  friend constexpr DataSize operator-(DataSize a, DataSize b) {
    std::int64_t r = 0;
    if (__builtin_sub_overflow(a.bytes_, b.bytes_, &r)) {
      SIRIUS_INVARIANT(false, "DataSize overflow: %lld B - %lld B",
                       static_cast<long long>(a.bytes_),
                       static_cast<long long>(b.bytes_));
      return DataSize{a.bytes_ < 0 ? INT64_MIN : INT64_MAX};
    }
    return DataSize{r};
  }
  friend constexpr DataSize operator*(DataSize a, std::int64_t k) {
    std::int64_t r = 0;
    if (__builtin_mul_overflow(a.bytes_, k, &r)) {
      SIRIUS_INVARIANT(false, "DataSize overflow: %lld B * %lld",
                       static_cast<long long>(a.bytes_),
                       static_cast<long long>(k));
      return DataSize{(a.bytes_ < 0) == (k < 0) ? INT64_MAX : INT64_MIN};
    }
    return DataSize{r};
  }
  constexpr DataSize& operator+=(DataSize o) { return *this = *this + o; }
  constexpr DataSize& operator-=(DataSize o) { return *this = *this - o; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit DataSize(std::int64_t v) : bytes_(v) {}
  [[nodiscard]] static constexpr DataSize scaled(std::int64_t v, std::int64_t unit,
                                   const char* what) {
    std::int64_t b = 0;
    if (__builtin_mul_overflow(v, unit, &b)) {
      SIRIUS_INVARIANT(false, "%s(%lld) overflows the byte count", what,
                       static_cast<long long>(v));
      return DataSize{v < 0 ? INT64_MIN : INT64_MAX};
    }
    return DataSize{b};
  }
  std::int64_t bytes_ = 0;
};

/// Ceiling division of two sizes: how many `unit`-sized pieces cover `a`
/// (e.g. cells per flow, packets per flow). Lives here so callers outside
/// src/common never need the raw byte counts. A non-positive unit is an
/// invariant violation; the defensive result is 0.
[[nodiscard]] constexpr std::int64_t div_ceil(DataSize a, DataSize unit) {
  SIRIUS_INVARIANT(unit.in_bytes() > 0, "div_ceil with %lld-byte unit",
                   static_cast<long long>(unit.in_bytes()));
  if (unit.in_bytes() <= 0) return 0;
  return (a.in_bytes() + unit.in_bytes() - 1) / unit.in_bytes();
}

/// A data rate. Stored in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  [[nodiscard]] static constexpr DataRate bps(std::int64_t v) { return DataRate{v}; }
  [[nodiscard]] static constexpr DataRate gbps(double v) {
    return from_double_bps(v * 1e9, "DataRate::gbps");
  }
  [[nodiscard]] static constexpr DataRate tbps(double v) {
    return from_double_bps(v * 1e12, "DataRate::tbps");
  }
  [[nodiscard]] static constexpr DataRate zero() { return DataRate{0}; }

  [[nodiscard]] constexpr std::int64_t bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double in_gbps() const { return static_cast<double>(bps_) * 1e-9; }
  [[nodiscard]] constexpr double in_tbps() const { return static_cast<double>(bps_) * 1e-12; }

  /// Time to serialise `s` at this rate (rounded up to a whole picosecond).
  /// A zero or negative rate cannot serialise anything: that is an
  /// invariant violation, and the defensive result is Time::infinity().
  [[nodiscard]] constexpr Time transmission_time(DataSize s) const {
    SIRIUS_INVARIANT(bps_ > 0, "transmission_time at %lld bps",
                     static_cast<long long>(bps_));
    if (bps_ <= 0) return Time::infinity();
    SIRIUS_INVARIANT(s.in_bytes() >= 0, "transmission_time of %lld bytes",
                     static_cast<long long>(s.in_bytes()));
    if (s.in_bytes() < 0) return Time::zero();
    // bits * 1e12 / bps, computed in double then rounded: flows are <= GBs
    // so precision is ample. Saturate rather than float-cast-overflow when
    // a huge size meets a tiny rate.
    const double ps =
        static_cast<double>(s.in_bits()) * 1e12 / static_cast<double>(bps_);
    constexpr double kMax = 9223372036854774784.0;  // below 2^63
    if (ps >= kMax) {
      SIRIUS_INVARIANT(false,
                       "transmission_time overflows: %g ps (%lld B at %lld bps)",
                       ps, static_cast<long long>(s.in_bytes()),
                       static_cast<long long>(bps_));
      return Time::infinity();
    }
    return Time::ps(static_cast<std::int64_t>(ps + 0.999999));
  }

  /// Bytes delivered in `t` at this rate (rounded down).
  [[nodiscard]] constexpr DataSize bytes_in(Time t) const {
    const double bytes =
        static_cast<double>(bps_) / 8.0 * t.to_sec();
    constexpr double kMax = 9223372036854774784.0;  // below 2^63
    if (bytes >= kMax || bytes <= -kMax) {
      SIRIUS_INVARIANT(false, "bytes_in overflows: %g bytes", bytes);
      return DataSize::bytes(bytes < 0 ? INT64_MIN : INT64_MAX);
    }
    return DataSize::bytes(static_cast<std::int64_t>(bytes));
  }

  friend constexpr auto operator<=>(DataRate, DataRate) = default;
  friend constexpr DataRate operator+(DataRate a, DataRate b) {
    std::int64_t r = 0;
    if (__builtin_add_overflow(a.bps_, b.bps_, &r)) {
      SIRIUS_INVARIANT(false, "DataRate overflow: %lld bps + %lld bps",
                       static_cast<long long>(a.bps_),
                       static_cast<long long>(b.bps_));
      return DataRate{a.bps_ < 0 ? INT64_MIN : INT64_MAX};
    }
    return DataRate{r};
  }
  friend constexpr DataRate operator*(DataRate a, std::int64_t k) {
    std::int64_t r = 0;
    if (__builtin_mul_overflow(a.bps_, k, &r)) {
      SIRIUS_INVARIANT(false, "DataRate overflow: %lld bps * %lld",
                       static_cast<long long>(a.bps_),
                       static_cast<long long>(k));
      return DataRate{(a.bps_ < 0) == (k < 0) ? INT64_MAX : INT64_MIN};
    }
    return DataRate{r};
  }
  friend constexpr DataRate operator/(DataRate a, std::int64_t k) {
    SIRIUS_INVARIANT(k != 0, "DataRate division by zero (%lld bps / 0)",
                     static_cast<long long>(a.bps_));
    if (k == 0) return zero();
    return DataRate{a.bps_ / k};
  }
  friend constexpr double operator/(DataRate a, DataRate b) {
    SIRIUS_INVARIANT(b.bps_ != 0, "DataRate ratio with zero denominator");
    if (b.bps_ == 0) return 0.0;
    return static_cast<double>(a.bps_) / static_cast<double>(b.bps_);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit DataRate(std::int64_t v) : bps_(v) {}
  [[nodiscard]] static constexpr DataRate from_double_bps(double v, const char* what) {
    const double rounded = v + (v >= 0 ? 0.5 : -0.5);
    constexpr double kMax = 9223372036854774784.0;  // below 2^63
    if (!(rounded >= -kMax && rounded <= kMax)) {
      SIRIUS_INVARIANT(false, "%s: %g bps is outside the representable range",
                       what, v);
      return DataRate{v < 0 ? INT64_MIN : INT64_MAX};
    }
    return DataRate{static_cast<std::int64_t>(rounded)};
  }
  std::int64_t bps_ = 0;
};

/// Index of a node (rack or server attached to the optical core).
using NodeId = std::int32_t;
/// Index of an uplink transceiver within a node.
using UplinkId = std::int32_t;
/// Index of a wavelength within the laser's tuning range (0-based).
using WavelengthId = std::int32_t;
/// Index of an AWGR grating in the passive core.
using GratingId = std::int32_t;
/// Unique flow identifier.
using FlowId = std::int64_t;

constexpr NodeId kInvalidNode = -1;

}  // namespace sirius
