// SIRIUS_HOT: the slot-kernel hot-path annotation.
//
// Sirius schedules in nanosecond-granularity slots, so the per-slot code —
// the SiriusSim transmit/land/deliver loop, the Node VOQ enqueue/dequeue,
// the cc RequestGrant grant path, the CyclicSchedule lookup — runs on a
// budget where a single heap allocation or virtual dispatch is visible in
// throughput. ROADMAP item 2 will rewrite that code as a sharded
// structure-of-arrays kernel, which is only tractable if the hot set is
// statically known and statically cheap.
//
// Marking a function head SIRIUS_HOT declares it a hot-path entry point.
// sirius-lint builds a conservative name-keyed call graph over the scanned
// tree, walks reachability from every SIRIUS_HOT head, and rejects, in the
// reachable set (docs/STATIC_ANALYSIS.md has the full table):
//
//   hot-path-alloc    new/malloc/make_*, growth calls (push_back, emplace,
//                     resize, ...) on containers with no reserve()/resize()
//                     site anywhere in the tree, std::function construction
//   hot-path-virtual  calls to virtual methods not marked final (and whose
//                     class is not final)
//   hot-path-throw    throw, .at(), stdio
//   hot-path-copy     by-value indexed-container parameters
//
// The contract: annotate the *entry points* (the roots the slot loop calls
// directly); reachability takes care of the callees. Epoch-rate, flow-rate,
// and fault-rate code must NOT be annotated — the point is to keep the
// per-slot set small enough to be provably allocation-free. Justified
// exceptions (e.g. a deque push on a fault-recovery path) carry an
// inline suppression comment and an ALLOWLIST.md entry.
//
// At runtime the macro is `__attribute__((hot))` under GCC/Clang — a
// codegen hint that the determinism tests show is behaviour-neutral — and
// nothing elsewhere.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define SIRIUS_HOT __attribute__((hot))
#else
#define SIRIUS_HOT
#endif
