// Environment-variable helpers used by benches so runs can be scaled
// without recompiling (e.g. SIRIUS_FLOWS=200000 ./bench/fig09_load_sweep).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sirius {

/// Reads an integer environment variable; empty/unset/unparsable -> nullopt.
std::optional<std::int64_t> env_int(const std::string& name);

/// Reads a floating-point environment variable.
std::optional<double> env_double(const std::string& name);

/// Integer env var with default.
std::int64_t env_int_or(const std::string& name, std::int64_t fallback);

/// Floating-point env var with default.
double env_double_or(const std::string& name, double fallback);

}  // namespace sirius
