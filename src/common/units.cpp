#include "common/units.hpp"

#include <cstdio>

namespace sirius {

std::string DataSize::to_string() const {
  char buf[64];
  if (bytes_ < 1'000) {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(bytes_));
  } else if (bytes_ < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.4g KB", static_cast<double>(bytes_) * 1e-3);
  } else if (bytes_ < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.4g MB", static_cast<double>(bytes_) * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g GB", static_cast<double>(bytes_) * 1e-9);
  }
  return buf;
}

std::string DataRate::to_string() const {
  char buf[64];
  if (bps_ < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.4g Mbps", static_cast<double>(bps_) * 1e-6);
  } else if (bps_ < 1'000'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.4g Gbps", static_cast<double>(bps_) * 1e-9);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g Tbps", static_cast<double>(bps_) * 1e-12);
  }
  return buf;
}

}  // namespace sirius
