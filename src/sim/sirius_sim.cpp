#include "sim/sirius_sim.hpp"

#include <algorithm>
#include <cassert>

#include "check/invariant.hpp"

namespace sirius::sim {

namespace {

// Alive member list for the schedule given the failed set.
std::vector<NodeId> alive_members(const SiriusSimConfig& cfg) {
  std::vector<bool> down(static_cast<std::size_t>(cfg.racks), false);
  for (const NodeId f : cfg.failed_racks) {
    down[static_cast<std::size_t>(f)] = true;
  }
  std::vector<NodeId> alive;
  alive.reserve(static_cast<std::size_t>(cfg.racks));
  for (NodeId n = 0; n < cfg.racks; ++n) {
    if (!down[static_cast<std::size_t>(n)]) alive.push_back(n);
  }
  return alive;
}

}  // namespace

SiriusSim::SiriusSim(SiriusSimConfig cfg, const workload::Workload& workload)
    : cfg_(cfg),
      workload_(workload),
      sched_(alive_members(cfg), cfg.uplinks()),
      rng_(cfg.seed ^ 0x5349524955u),
      goodput_(cfg.servers(), cfg.server_share()) {
  SIRIUS_INVARIANT(workload_.servers == cfg_.servers(),
                   "workload generated for %d servers, config has %d",
                   workload_.servers, cfg_.servers());

  const cc::RequestGrantConfig cc_cfg{cfg_.racks, cfg_.queue_limit,
                                     cfg_.spread};
  nodes_.reserve(static_cast<std::size_t>(cfg_.racks));
  for (NodeId n = 0; n < cfg_.racks; ++n) {
    nodes_.emplace_back(n, cc_cfg, cfg_.slots.cell_size());
    for (const NodeId f : cfg_.failed_racks) {
      nodes_.back().cc().exclude(f);
    }
  }
  rx_.resize(workload_.flows.size());
  server_free_.assign(static_cast<std::size_t>(cfg_.servers()), Time::zero());

  prop_slots_ = std::max<std::int64_t>(
      1, (cfg_.propagation_delay + cfg_.slots.slot_duration() -
          Time::ps(1)) /
             cfg_.slots.slot_duration());
  in_flight_.resize(static_cast<std::size_t>(prop_slots_) + 1);

  nic_cell_time_ = cfg_.server_nic.transmission_time(cfg_.slots.cell_size());
  flows_remaining_ = static_cast<std::int64_t>(workload_.flows.size());
  measure_end_ = workload_.last_arrival();
  completions_.assign(workload_.flows.size(), Time::infinity());
  register_auditors();
}

void SiriusSim::register_auditors() {
  // Per-slot contention-freeness of the static schedule (§4.2): the tx map
  // must be a partial permutation and peer_rx its inverse.
  auditors_.register_auditor("schedule-permutation", [this] {
    check::audit_slot_permutation(sched_, audit_slot_);
  });

  // The §4.3 queue bound. The grant accounting releases a token when the
  // granted cell is *transmitted* (see transmit_slot), so between transmit
  // and landing a cell is neither outstanding nor queued: the audited bound
  // is Q plus the number of granted cells a fiber flight can overlap
  // (ceil(prop_slots / slots_per_round) rounds, one grant per dst each).
  if (!cfg_.ideal && cfg_.routing == RoutingMode::kValiant) {
    const auto flight_rounds = static_cast<std::int32_t>(
        (prop_slots_ + sched_.slots_per_round() - 1) /
        sched_.slots_per_round());
    const std::int32_t bound = cfg_.queue_limit + flight_rounds + 1;
    auditors_.register_auditor("queue-bound", [this, bound] {
      for (const auto& n : nodes_) {
        check::audit_queue_bound(n, cfg_.queue_limit, bound);
      }
    });
  }

  // Cell conservation: everything taken out of a LOCAL buffer is delivered,
  // sitting in a VQ/FQ, or on the wire. Nothing is dropped in this sim —
  // flows touching failed racks are rejected before injecting any cell.
  auditors_.register_auditor("cell-conservation", [this] {
    std::int64_t queued = 0;
    for (const auto& n : nodes_) {
      for (NodeId d = 0; d < cfg_.racks; ++d) {
        queued += n.vq_depth(d) + n.fq_depth(d);
      }
    }
    std::int64_t flying = 0;
    for (const auto& bucket : in_flight_) {
      flying += static_cast<std::int64_t>(bucket.size());
    }
    check::audit_cell_conservation(audit_injected_, cells_delivered_, queued,
                                   flying, /*dropped=*/0);
  });

  // Reorder buffers of in-progress flows stay structurally consistent.
  auditors_.register_auditor("reorder-buffers", [this] {
    for (const auto& rxp : rx_) {
      if (rxp != nullptr && !rxp->reorder.complete()) {
        check::audit_reorder(rxp->reorder);
      }
    }
  });
}

void SiriusSim::finish_flow(FlowId flow, Time completion) {
  const auto& f = workload_.flows[static_cast<std::size_t>(flow)];
  fct_.record(f.size, completion - f.arrival);
  completions_[static_cast<std::size_t>(flow)] = completion;
  --flows_remaining_;
}

void SiriusSim::deliver(const node::Cell& cell, Time now) {
  auto& rxp = rx_[static_cast<std::size_t>(cell.flow)];
  SIRIUS_INVARIANT(rxp != nullptr, "cell delivered for unknown flow %lld",
                   static_cast<long long>(cell.flow));
  if (rxp == nullptr) return;
  RxFlow& rx = *rxp;

  // Serialise onto the destination server's downlink.
  Time& free = server_free_[static_cast<std::size_t>(cell.dst_server)];
  const Time delivered_at = std::max(now, free) + nic_cell_time_;
  free = delivered_at;

  if (delivered_at <= measure_end_) {
    goodput_.deliver(DataSize::bytes(cell.payload_bytes));
  }
  ++cells_delivered_;

  rx.reorder.on_arrival(cell.seq, cell.payload_bytes);
  if (rx.reorder.complete() && rx.completion.is_infinite()) {
    rx.completion = delivered_at;
    reorder_peaks_.observe_peak(rx.reorder.peak_buffered());
    finish_flow(cell.flow, delivered_at);
  }
}

void SiriusSim::inject_arrivals(Time now) {
  const Time slot_end = now + cfg_.slots.slot_duration();
  while (next_flow_ < workload_.flows.size() &&
         workload_.flows[next_flow_].arrival < slot_end) {
    const workload::Flow& f = workload_.flows[next_flow_];
    const NodeId src_rack = rack_of(f.src_server);
    const NodeId dst_rack = rack_of(f.dst_server);
    const std::int64_t cells = node::cells_for(f.size, cfg_.slots.cell_size());

    if (!sched_.is_member(src_rack) || !sched_.is_member(dst_rack)) {
      // An endpoint rack is down: the flow cannot be carried (§4.5 — the
      // blast radius of a failure is its own servers plus a 1/N bandwidth
      // loss for everyone else, which the adjusted schedule handles).
      ++rejected_flows_;
      --flows_remaining_;
      ++next_flow_;
      continue;
    }
    if (src_rack == dst_rack) {
      // Intra-rack traffic never touches the optical core (§4.2): it is
      // switched locally by the electrical ToR at server line rate.
      const Time completion = f.arrival +
                              cfg_.server_nic.transmission_time(f.size) +
                              cfg_.rack_switch_latency;
      if (completion <= measure_end_) goodput_.deliver(f.size);
      finish_flow(f.id, completion);
    } else {
      node::LocalFlow lf;
      lf.id = f.id;
      lf.dst_node = dst_rack;
      lf.src_server = f.src_server;
      lf.dst_server = f.dst_server;
      lf.size = f.size;
      lf.arrival = f.arrival;
      lf.total_cells = cells;
      nodes_[static_cast<std::size_t>(src_rack)].add_flow(lf);
      rx_[static_cast<std::size_t>(f.id)] = std::make_unique<RxFlow>(cells);
    }
    ++next_flow_;
  }
}

void SiriusSim::epoch_boundary(std::int64_t round, Time now) {
  // No request/grant round in the idealised mode, and none needed for
  // direct-only routing (each pair owns its slot outright).
  if (cfg_.ideal || cfg_.routing == RoutingMode::kDirect) return;

  // Phase A — every node, acting as intermediate, turns the requests it
  // received during the previous epoch into grants (bounded by Q).
  // Phase B — grants move cells from LOCAL into the per-intermediate
  // virtual queues (or are released if the cell already left).
  for (auto& inter : nodes_) {
    auto grants = inter.cc().issue_grants(
        [&inter](NodeId dst) { return inter.fq_depth(dst); }, rng_);
    for (const cc::Grant& g : grants) {
      auto& src = nodes_[static_cast<std::size_t>(g.to)];
      auto cell = src.take_cell_for(g.dst, now, nic_cell_time_);
      if (cell.has_value()) {
        ++audit_injected_;
        src.push_vq(g.intermediate, *cell);
      } else {
        inter.cc().on_grant_release(g.dst);
        ++stat_released_;
      }
    }
  }

  // Phase C — every node emits this epoch's requests from LOCAL.
  const auto limit = static_cast<std::size_t>(cfg_.racks - 1);
  for (auto& src : nodes_) {
    if (!src.has_unfinished_flows()) continue;
    const auto pending = src.pending_cell_dsts(now, nic_cell_time_, limit);
    const auto vq_has_room = [this, &src](NodeId i) {
      return src.vq_depth(i) < cfg_.max_vq_depth;
    };
    for (const auto& req :
         src.cc().build_requests(pending, round, rng_, vq_has_room)) {
      nodes_[static_cast<std::size_t>(req.intermediate)]
          .cc()
          .receive_request(cc::Request{src.self(), req.dst});
      ++stat_requests_;
    }
  }
}

void SiriusSim::land_arrivals(std::int64_t slot, Time now) {
  auto& bucket = in_flight_[static_cast<std::size_t>(
      slot % static_cast<std::int64_t>(in_flight_.size()))];
  for (const Arrival& a : bucket) {
    if (a.cell.dst_node == a.to) {
      // Reached its destination (second hop, or a lucky direct first hop).
      deliver(a.cell, now);
    } else {
      // First hop into an intermediate: enqueue for relaying. The grant
      // accounting was already settled at transmission time (see
      // transmit_slot): in-flight cells are on the wire, not in the queue
      // that Q bounds.
      nodes_[static_cast<std::size_t>(a.to)].push_fq(a.cell.dst_node, a.cell);
    }
  }
  bucket.clear();
}

void SiriusSim::transmit_slot(std::int64_t slot, Time now) {
  const auto land_slot = static_cast<std::size_t>(
      (slot + prop_slots_) % static_cast<std::int64_t>(in_flight_.size()));
  for (NodeId s = 0; s < cfg_.racks; ++s) {
    auto& n = nodes_[static_cast<std::size_t>(s)];
    for (UplinkId u = 0; u < sched_.uplinks(); ++u) {
      const NodeId p = sched_.peer_tx(s, u, slot);
      if (p == kInvalidNode) continue;
      if (cfg_.routing == RoutingMode::kDirect) {
        // Direct-only: pull the next pending cell addressed to p, if any.
        if (auto cell = n.take_cell_for(p, now, nic_cell_time_)) {
          ++audit_injected_;
          in_flight_[land_slot].push_back(Arrival{*cell, p});
          ++stat_tx_first_;
        }
        continue;
      }
      // Relay traffic first: it is older and its queue bound must drain.
      if (auto cell = n.pop_fq(p)) {
        in_flight_[land_slot].push_back(Arrival{*cell, p});
        ++stat_tx_relay_;
        continue;
      }
      if (cfg_.ideal) {
        if (auto cell = n.take_any_cell(now, nic_cell_time_)) {
          ++audit_injected_;
          in_flight_[land_slot].push_back(Arrival{*cell, p});
        }
      } else if (auto cell = n.pop_vq(p)) {
        // The granted cell is now on the wire towards intermediate p with a
        // deterministic arrival slot, so p's grant accounting can release
        // the outstanding slot immediately (the schedule guarantees p will
        // relay it no sooner than its own (p, dst) slot anyway). Keeping
        // outstanding held for the full fiber flight would turn Q into a
        // bandwidth-delay-product cap at small slot sizes.
        nodes_[static_cast<std::size_t>(p)].cc().on_granted_cell_arrival(
            cell->dst_node);
        in_flight_[land_slot].push_back(Arrival{*cell, p});
        ++stat_tx_first_;
      }
    }
  }
}

SiriusSimResult SiriusSim::run() {
  const Time slot_len = cfg_.slots.slot_duration();
  const std::int64_t last_arrival_slot =
      workload_.last_arrival() / slot_len + 1;
  const std::int64_t hard_stop = last_arrival_slot + cfg_.max_drain_slots;

  std::int64_t slot = 0;
  for (; flows_remaining_ > 0 && slot < hard_stop; ++slot) {
    const Time now = cfg_.slots.slot_start(slot);
    if (slot % sched_.slots_per_round() == 0) {
      const std::int64_t round = slot / sched_.slots_per_round();
      epoch_boundary(round, now);
      // Audit between phases, where the ledger is consistent: cells are
      // delivered, queued, or in an in_flight_ bucket, never mid-move.
      if (cfg_.audit_period_rounds > 0 &&
          round % cfg_.audit_period_rounds == 0) {
        audit_slot_ = slot;
        auditors_.run_all();
      }
    }
    inject_arrivals(now);
    land_arrivals(slot, now);
    transmit_slot(slot, now);
  }
  // Land whatever is still in flight so delivery stats are complete.
  for (std::int64_t k = 0; k <= prop_slots_ && flows_remaining_ > 0; ++k) {
    land_arrivals(slot + k, cfg_.slots.slot_start(slot + k));
  }
  if (cfg_.audit_period_rounds > 0) {
    audit_slot_ = slot;
    auditors_.run_all();
  }

  SiriusSimResult r;
  r.fct = fct_.summarize();
  r.goodput_normalized = goodput_.normalized(measure_end_);
  for (const auto& n : nodes_) {
    r.worst_node_queue_peak_kb =
        std::max(r.worst_node_queue_peak_kb, n.peak_queue().in_kb());
  }
  r.worst_reorder_peak_kb = reorder_peaks_.worst_peak().in_kb();
  r.slots_simulated = slot;
  r.cells_delivered = cells_delivered_;
  r.incomplete_flows = flows_remaining_;
  r.rejected_flows = rejected_flows_;
  r.sim_end = cfg_.slots.slot_start(slot);
  r.per_flow_completion = std::move(completions_);
  r.requests_sent = stat_requests_;
  r.grants_released = stat_released_;
  r.slots_tx_relay = stat_tx_relay_;
  r.slots_tx_first = stat_tx_first_;
  for (const auto& n : nodes_) {
    r.grants_issued += n.cc().stat_grants_issued();
    r.grants_denied_q += n.cc().stat_denied_queue_bound();
  }
  return r;
}

}  // namespace sirius::sim
