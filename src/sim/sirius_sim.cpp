#include "sim/sirius_sim.hpp"

#include <algorithm>
#include <cassert>

#include "common/invariant.hpp"
#include "common/thread_safety.hpp"
#include "node/node_audit.hpp"
#include "sched/schedule_audit.hpp"

namespace sirius::sim {

namespace {

// The static `failed_racks` list is sugar for a fault-plan entry that fails
// the rack at t = 0 and never recovers; folding it in gives both mechanisms
// one code path (schedule membership, exclusions, injection rejection).
ctrl::FaultPlan folded_plan(const SiriusSimConfig& cfg) {
  ctrl::FaultPlan plan = cfg.faults;
  for (const NodeId f : cfg.failed_racks) {
    plan.fail_rack(f, Time::zero());
  }
  return plan;
}

// Alive member list for the initial schedule given the fault plan.
std::vector<NodeId> initial_members(const ctrl::FaultPlan& plan,
                                    std::int32_t racks) {
  std::vector<bool> down(static_cast<std::size_t>(racks), false);
  for (const NodeId f : plan.down_at_start()) {
    if (f >= 0 && f < racks) down[static_cast<std::size_t>(f)] = true;
  }
  std::vector<NodeId> alive;
  alive.reserve(static_cast<std::size_t>(racks));
  for (NodeId n = 0; n < racks; ++n) {
    if (!down[static_cast<std::size_t>(n)]) alive.push_back(n);
  }
  return alive;
}

// Goodput considered "recovered" at this fraction of the pre-fault
// baseline (FailoverStats::recovery).
constexpr double kRecoverFrac = 0.95;

// ---- checkpoint section markers (sirius.ckpt.v1 payload layout) ----------
// Each top-level section opens with a 4-byte tag so a writer/reader layout
// mismatch reports the section name instead of silently misparsing.
constexpr std::uint32_t kTagMeta = 0x4154454du;       // "META"
constexpr std::uint32_t kTagRng = 0x53474e52u;        // "RNGS"
constexpr std::uint32_t kTagSched = 0x44484353u;      // "SCHD"
constexpr std::uint32_t kTagNodes = 0x45444f4eu;      // "NODE"
constexpr std::uint32_t kTagRx = 0x46425852u;         // "RXBF"
constexpr std::uint32_t kTagWire = 0x45524957u;       // "WIRE"
constexpr std::uint32_t kTagStats = 0x54415453u;      // "STAT"
constexpr std::uint32_t kTagFailover = 0x4f4c4146u;   // "FALO"
constexpr std::uint32_t kTagTelemetry = 0x454c4554u;  // "TELE"
constexpr std::uint32_t kTagEnd = 0x21444e45u;        // "END!"

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

void put_cell(ckpt::Writer& w, const node::Cell& c) {
  w.i64(c.flow);
  w.i32(c.seq);
  w.i32(c.dst_node);
  w.i32(c.dst_server);
  w.i32(c.payload_bytes);
  w.i32(c.retries);
}

node::Cell get_cell(ckpt::Reader& r) {
  node::Cell c;
  c.flow = r.i64();
  c.seq = r.i32();
  c.dst_node = r.i32();
  c.dst_server = r.i32();
  c.payload_bytes = r.i32();
  c.retries = r.i32();
  return c;
}

// On-wire size of one serialized Cell, for Reader::count bounds.
constexpr std::size_t kCellBytes = 8 + 5 * 4;

}  // namespace

bool SiriusSim::timer_later(const RetxTimer& a, const RetxTimer& b) {
  if (a.deadline_round != b.deadline_round) {
    return a.deadline_round > b.deadline_round;
  }
  if (a.cell.flow != b.cell.flow) return a.cell.flow > b.cell.flow;
  return a.cell.seq > b.cell.seq;
}

SiriusSim::SiriusSim(SiriusSimConfig cfg, const workload::Workload& workload)
    : cfg_(cfg),
      workload_(workload),
      plan_(folded_plan(cfg)),
      sched_(initial_members(plan_, cfg.racks), cfg.uplinks()),
      rng_(cfg.seed ^ 0x5349524955u),
      // Separate stream for the plan's Bernoulli draws: an empty plan must
      // leave the baseline RNG sequence — and hence every baseline result —
      // bit-identical.
      fault_rng_(cfg.seed ^ 0x4641554C54ull),
      goodput_(cfg.servers(), cfg.server_share()) {
  // Construction is a slot-core entry point: it wires guarded state and
  // calls role-required methods, so it holds the (no-op) role for its body.
  common::RoleLock slot_role(common::sim_slot_role);
  hub_ = cfg_.telemetry;
  if (hub_ == nullptr) {
    own_hub_ = std::make_unique<telemetry::Hub>();
    hub_ = own_hub_.get();
  }
  hub_->attach_nodes(cfg_.racks);
  bind_metrics();
  SIRIUS_INVARIANT(workload_.servers == cfg_.servers(),
                   "workload generated for %d servers, config has %d",
                   workload_.servers, cfg_.servers());
  const auto plan_error = plan_.validate(cfg_.racks);
  SIRIUS_INVARIANT(plan_error == std::nullopt, "invalid fault plan: %s",
                   plan_error ? plan_error->c_str() : "");
  if (plan_error) plan_ = ctrl::FaultPlan{};

  faults_active_ = plan_.dynamic();
  SIRIUS_INVARIANT(!faults_active_ ||
                       (!cfg_.ideal && cfg_.routing == RoutingMode::kValiant),
                   "dynamic fault plans need the request/grant Valiant mode "
                   "(in-band detection rides on its schedule bursts)");
  if (faults_active_ && (cfg_.ideal || cfg_.routing != RoutingMode::kValiant)) {
    faults_active_ = false;
  }

  const cc::RequestGrantConfig cc_cfg{cfg_.racks, cfg_.queue_limit,
                                     cfg_.spread};
  const auto down0 = plan_.down_at_start();
  nodes_.reserve(static_cast<std::size_t>(cfg_.racks));
  for (NodeId n = 0; n < cfg_.racks; ++n) {
    nodes_.emplace_back(n, cc_cfg, cfg_.slots.cell_size());
    for (const NodeId f : down0) {
      nodes_.back().cc().exclude(f);
    }
  }
  rx_.resize(workload_.flows.size());
  server_free_.assign(static_cast<std::size_t>(cfg_.servers()), Time::zero());

  prop_slots_ = std::max<std::int64_t>(
      1, (cfg_.propagation_delay + cfg_.slots.slot_duration() -
          Time::ps(1)) /
             cfg_.slots.slot_duration());
  in_flight_.resize(static_cast<std::size_t>(prop_slots_) + 1);
  audit_flight_rounds_ = static_cast<std::int32_t>(
      (prop_slots_ + sched_.slots_per_round() - 1) / sched_.slots_per_round());

  nic_cell_time_ = cfg_.server_nic.transmission_time(cfg_.slots.cell_size());
  flows_remaining_ = static_cast<std::int64_t>(workload_.flows.size());
  measure_end_ = workload_.last_arrival();
  completions_.assign(workload_.flows.size(), Time::infinity());

  if (faults_active_) {
    std::int32_t q = cfg_.node_down_quorum;
    if (q <= 0) q = std::max<std::int32_t>(2, cfg_.racks / 4);
    quorum_ = std::max<std::int32_t>(
        1, std::min<std::int32_t>(q, cfg_.racks - 1));
    health_.reserve(static_cast<std::size_t>(cfg_.racks));
    views_.reserve(static_cast<std::size_t>(cfg_.racks));
    for (NodeId n = 0; n < cfg_.racks; ++n) {
      health_.emplace_back(cfg_.racks, cfg_.miss_threshold);
      views_.emplace_back(cfg_.racks, n, quorum_);
    }
    truth_down_.assign(static_cast<std::size_t>(cfg_.racks), 0);
    for (const NodeId f : down0) {
      truth_down_[static_cast<std::size_t>(f)] = 1;
    }
    fault_time_ = plan_.first_disruption();
    for (const auto& f : plan_.rack_faults()) {
      if (f.at > Time::zero() && f.at < rack_fault_time_) {
        rack_fault_time_ = f.at;
        first_fault_rack_ = f.rack;
      }
    }
  }
  if (cfg_.record_recovery_curve) {
    recovery_ = std::make_unique<stats::RecoveryMeter>(
        cfg_.servers(), cfg_.server_share(), cfg_.recovery_bin);
  }
  // First checkpoint at the first slot-top at or after one cadence period
  // (a t = 0 snapshot would just duplicate the constructor).
  if (cfg_.checkpoint_every > Time::zero()) {
    next_checkpoint_ = cfg_.checkpoint_every;
  }
  register_auditors();
}

std::int32_t SiriusSim::retx_timeout_rounds() const {
  if (cfg_.retx_timeout_rounds > 0) return cfg_.retx_timeout_rounds;
  // The timer is armed when the cell's first-hop burst leaves the source
  // (see transmit_slot), so the worst legitimate remaining path is: fly,
  // wait out the relay queue (up to Q + flight cells ahead — the audited
  // bound — at one (intermediate, dst) slot per round), fly again — plus
  // slack for epoch phase alignment. Anything slower was lost. Arming at
  // transmission rather than at grant matters: relay traffic has strict
  // priority over granted first-hop cells, so the virtual-queue wait is
  // load-dependent and unbounded — a grant-time timer would fire on cells
  // the source has not even sent yet.
  const auto spr = sched_.slots_per_round();
  const auto flight = static_cast<std::int32_t>((prop_slots_ + spr - 1) / spr);
  return 3 * flight + cfg_.queue_limit + cfg_.miss_threshold + 6;
}

void SiriusSim::bind_metrics() {
  telemetry::MetricsRegistry& m = hub_->metrics();
  c_injected_ = &m.counter("sim.cells_injected");
  c_delivered_ = &m.counter("sim.cells_delivered");
  c_rejected_flows_ = &m.counter("sim.flows_rejected");
  c_tx_first_ = &m.counter("sim.tx_first");
  c_tx_relay_ = &m.counter("sim.tx_relay");
  c_requests_ = &m.counter("cc.requests_sent");
  c_released_ = &m.counter("cc.grants_released");
  c_dropped_ = &m.counter("failover.cells_dropped");
  c_retx_ = &m.counter("failover.cells_retransmitted");
  c_retx_abandoned_ = &m.counter("failover.retx_abandoned");
  c_duplicates_ = &m.counter("failover.duplicates_discarded");
  c_flows_aborted_ = &m.counter("failover.flows_aborted");
  c_swaps_ = &m.counter("failover.schedule_swaps");
  g_flows_remaining_ = &m.gauge("sim.flows_remaining");
  g_queue_worst_kb_ = &m.gauge("queues.worst_kb");
  g_retx_pending_ = &m.gauge("retx.pending");
  g_members_ = &m.gauge("sched.members");
  g_requests_received_ = &m.gauge("cc.requests_received");
  g_grants_issued_ = &m.gauge("cc.grants_issued");
  g_grants_denied_ = &m.gauge("cc.grants_denied_q");
  g_detector_misses_ = &m.gauge("detector.misses_total");
  g_detector_declared_ = &m.gauge("detector.declarations_total");
  h_fct_us_ = &m.histogram("flow.fct_us", 0.0, 50'000.0, 500);
}

void SiriusSim::update_gauges() {
  g_flows_remaining_->set(static_cast<double>(flows_remaining_));
  double worst_kb = 0.0;
  std::int64_t req_rx = 0;
  std::int64_t grants = 0;
  std::int64_t denied = 0;
  for (const auto& n : nodes_) {
    worst_kb = std::max(worst_kb, n.current_queue().in_kb());
    req_rx += n.cc().stat_requests_received();
    grants += n.cc().stat_grants_issued();
    denied += n.cc().stat_denied_queue_bound();
  }
  g_queue_worst_kb_->set(worst_kb);
  g_retx_pending_->set(static_cast<double>(retx_heap_.size()));
  g_members_->set(static_cast<double>(sched_.nodes()));
  g_requests_received_->set(static_cast<double>(req_rx));
  g_grants_issued_->set(static_cast<double>(grants));
  g_grants_denied_->set(static_cast<double>(denied));
  std::int64_t det_misses = 0;
  std::int64_t det_declared = 0;
  for (const auto& h : health_) {
    det_misses += h.stat_misses();
    det_declared += h.stat_declarations();
  }
  g_detector_misses_->set(static_cast<double>(det_misses));
  g_detector_declared_->set(static_cast<double>(det_declared));
}

void SiriusSim::register_auditors() {
  // Per-slot contention-freeness of the static schedule (§4.2): the tx map
  // must be a partial permutation and peer_rx its inverse. The audited slot
  // is schedule-relative (a swap restarts the round phase).
  // Auditor bodies run from run_all() inside the slot loop, but each lambda
  // is its own function to the thread-safety analysis, so each re-opens the
  // (no-op) role for its body.
  auditors_.register_auditor("schedule-permutation", [this] {
    common::SharedRoleLock slot_role(common::sim_slot_role);
    sched::audit_slot_permutation(sched_, audit_slot_);
  });

  // The §4.3 queue bound. The grant accounting releases a token when the
  // granted cell is *transmitted* (see transmit_slot), so between transmit
  // and landing a cell is neither outstanding nor queued: the audited bound
  // is Q plus the number of granted cells a fiber flight can overlap
  // (ceil(prop_slots / slots_per_round) rounds, one grant per dst each),
  // taken over every schedule this run has used (see audit_flight_rounds_).
  if (!cfg_.ideal && cfg_.routing == RoutingMode::kValiant) {
    auditors_.register_auditor("queue-bound", [this] {
      common::SharedRoleLock slot_role(common::sim_slot_role);
      const std::int32_t bound = cfg_.queue_limit + audit_flight_rounds_ + 1;
      for (const auto& n : nodes_) {
        node::audit_queue_bound(n, cfg_.queue_limit, bound);
      }
    });
  }

  // Cell conservation: everything taken out of a LOCAL buffer is delivered,
  // sitting in a VQ/FQ/retx queue, on the wire, or explicitly dropped by
  // the failover path (dead-rack purges, grey losses, relay refusals,
  // discarded duplicates). A fault-free run must audit with dropped == 0.
  auditors_.register_auditor("cell-conservation", [this] {
    common::SharedRoleLock slot_role(common::sim_slot_role);
    std::int64_t queued = 0;
    for (const auto& n : nodes_) {
      for (NodeId d = 0; d < cfg_.racks; ++d) {
        queued += n.vq_depth(d) + n.fq_depth(d);
      }
      queued += n.retx_total();
    }
    std::int64_t flying = 0;
    for (const auto& bucket : in_flight_) {
      flying += static_cast<std::int64_t>(bucket.size());
    }
    check::audit_cell_conservation(c_injected_->value(),
                                   c_delivered_->value(), queued, flying,
                                   c_dropped_->value());
  });

  // Reorder buffers of in-progress flows stay structurally consistent.
  auditors_.register_auditor("reorder-buffers", [this] {
    common::SharedRoleLock slot_role(common::sim_slot_role);
    for (const auto& rxp : rx_) {
      if (rxp != nullptr && !rxp->reorder.complete()) {
        node::audit_reorder(rxp->reorder);
      }
    }
  });
}

void SiriusSim::finish_flow(FlowId flow, Time completion) {
  const auto& f = workload_.flows[static_cast<std::size_t>(flow)];
  fct_.record(f.size, completion - f.arrival);
  if (hub_->metrics_enabled()) {
    h_fct_us_->add((completion - f.arrival).to_us());
  }
  completions_[static_cast<std::size_t>(flow)] = completion;
  --flows_remaining_;
}

void SiriusSim::abort_rx_flow(FlowId flow) {
  auto& rxp = rx_[static_cast<std::size_t>(flow)];
  if (rxp == nullptr || rxp->aborted || rxp->reorder.complete()) return;
  rxp->aborted = true;
  c_flows_aborted_->inc();
  --flows_remaining_;
}

void SiriusSim::deliver(const node::Cell& cell, Time now) {
  // Nested under kTransmit (direct delivery) or kLandInject (fiber
  // landing): the attribution tree shows which path delivery cost rides.
  SIRIUS_PROFILE_SCOPE(hub_->profiler(), telemetry::ProfScope::kDeliver);
  auto& rxp = rx_[static_cast<std::size_t>(cell.flow)];
  SIRIUS_INVARIANT(rxp != nullptr, "cell delivered for unknown flow %lld",
                   static_cast<long long>(cell.flow));
  if (rxp == nullptr) return;
  RxFlow& rx = *rxp;
  if (faults_active_) {
    if (rx.aborted) {
      // An endpoint rack died; the flow is accounted as aborted and every
      // straggler cell is an explicit drop.
      c_dropped_->inc();
      SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, cell.dst_node,
                        kInvalidNode, cell.dst_node, cell.flow, cell.seq);
      return;
    }
    if (rx.reorder.received(cell.seq)) {
      // The original made it after all: the retransmitted copy is spurious.
      c_duplicates_->inc();
      c_dropped_->inc();
      SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, cell.dst_node,
                        kInvalidNode, cell.dst_node, cell.flow, cell.seq);
      return;
    }
  }

  // Serialise onto the destination server's downlink.
  Time& free = server_free_[static_cast<std::size_t>(cell.dst_server)];
  const Time delivered_at = std::max(now, free) + nic_cell_time_;
  free = delivered_at;

  if (delivered_at <= measure_end_) {
    goodput_.deliver(DataSize::bytes(cell.payload_bytes));
  }
  if (recovery_) {
    recovery_->deliver(delivered_at, DataSize::bytes(cell.payload_bytes));
  }
  c_delivered_->inc();
  SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDeliver, delivered_at,
                    cell.dst_node, kInvalidNode, cell.dst_node, cell.flow,
                    cell.seq);

  rx.reorder.on_arrival(cell.seq, cell.payload_bytes);
  if (rx.reorder.complete() && rx.completion.is_infinite()) {
    rx.completion = delivered_at;
    reorder_peaks_.observe_peak(rx.reorder.peak_buffered());
    finish_flow(cell.flow, delivered_at);
  }
}

void SiriusSim::inject_arrivals(Time now) {
  const Time slot_end = now + cfg_.slots.slot_duration();
  while (next_flow_ < workload_.flows.size() &&
         workload_.flows[next_flow_].arrival < slot_end) {
    const workload::Flow& f = workload_.flows[next_flow_];
    const NodeId src_rack = rack_of(f.src_server);
    const NodeId dst_rack = rack_of(f.dst_server);
    const std::int64_t cells = node::cells_for(f.size, cfg_.slots.cell_size());

    // An endpoint rack is down — either out of the schedule already, or
    // fail-stopped but not yet swapped out (its servers are physically
    // dead, so no new flow can start; this is the one place the data plane
    // reads ground truth, and it models the servers, not the fabric). §4.5:
    // the blast radius of a failure is its own servers plus a 1/N
    // bandwidth loss for everyone else.
    const bool endpoint_dead =
        faults_active_ && (truth_down_[static_cast<std::size_t>(src_rack)] !=
                               0 ||
                           truth_down_[static_cast<std::size_t>(dst_rack)] !=
                               0);
    if (!sched_.is_member(src_rack) || !sched_.is_member(dst_rack) ||
        endpoint_dead) {
      c_rejected_flows_->inc();
      --flows_remaining_;
      ++next_flow_;
      continue;
    }
    if (src_rack == dst_rack) {
      // Intra-rack traffic never touches the optical core (§4.2): it is
      // switched locally by the electrical ToR at server line rate.
      const Time completion = f.arrival +
                              cfg_.server_nic.transmission_time(f.size) +
                              cfg_.rack_switch_latency;
      if (completion <= measure_end_) goodput_.deliver(f.size);
      if (recovery_) recovery_->deliver(completion, f.size);
      finish_flow(f.id, completion);
    } else {
      node::LocalFlow lf;
      lf.id = f.id;
      lf.dst_node = dst_rack;
      lf.src_server = f.src_server;
      lf.dst_server = f.dst_server;
      lf.size = f.size;
      lf.arrival = f.arrival;
      lf.total_cells = cells;
      nodes_[static_cast<std::size_t>(src_rack)].add_flow(lf);
      rx_[static_cast<std::size_t>(f.id)] = std::make_unique<RxFlow>(cells);
    }
    ++next_flow_;
  }
}

void SiriusSim::epoch_boundary(std::int64_t round, Time now) {
  // No request/grant round in the idealised mode, and none needed for
  // direct-only routing (each pair owns its slot outright).
  if (cfg_.ideal || cfg_.routing == RoutingMode::kDirect) return;

  // Helper lambdas are separate functions to the thread-safety analysis;
  // each re-opens the (no-op) role it is always called under.
  const auto skip_node = [this](NodeId n) {
    common::SharedRoleLock slot_role(common::sim_slot_role);
    return faults_active_ && (truth_down_[static_cast<std::size_t>(n)] != 0 ||
                              !sched_.is_member(n));
  };

  // Phase A — every node, acting as intermediate, turns the requests it
  // received during the previous epoch into grants (bounded by Q).
  // Phase B — grants move cells from LOCAL into the per-intermediate
  // virtual queues (or are released if the cell already left).
  for (auto& inter : nodes_) {
    if (skip_node(inter.self())) continue;
    auto grants = inter.cc().issue_grants(
        [&inter](NodeId dst) {
          common::SharedRoleLock slot_role(common::sim_slot_role);
          return inter.fq_depth(dst);
        },
        rng_);
    for (const cc::Grant& g : grants) {
      SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kGrant, now,
                        g.intermediate, g.to, g.dst, FlowId{-1}, -1);
      if (faults_active_ && truth_down_[static_cast<std::size_t>(g.to)] != 0) {
        // The grant burst towards a fail-stopped source is lost. The real
        // protocol would leak this outstanding token until a grant timeout;
        // we settle it at issue so the short pre-conviction window (the
        // detector excludes the source within miss_threshold rounds) stays
        // out of the ledger.
        inter.cc().on_grant_release(g.dst);
        c_released_->inc();
        continue;
      }
      auto& src = nodes_[static_cast<std::size_t>(g.to)];
      const bool from_retx = src.retx_depth(g.dst) > 0;
      auto cell = src.take_cell_for(g.dst, now, nic_cell_time_);
      if (cell.has_value()) {
        // Retransmitted cells re-entered the ledger when they were
        // resurrected (expire_retx_timers); only fresh LOCAL cells are new
        // injections.
        if (!from_retx) {
          c_injected_->inc();
          SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kInject, now, g.to,
                            g.intermediate, cell->dst_node, cell->flow,
                            cell->seq);
        }
        src.push_vq(g.intermediate, *cell);
      } else {
        inter.cc().on_grant_release(g.dst);
        c_released_->inc();
      }
    }
  }

  // Phase C — every node emits this epoch's requests from LOCAL (and from
  // its retransmission queue, which pending_cell_dsts lists first).
  const auto limit = static_cast<std::size_t>(cfg_.racks - 1);
  for (auto& src : nodes_) {
    if (skip_node(src.self())) continue;
    if (!src.has_unfinished_flows() && src.retx_total() == 0) continue;
    const auto pending = src.pending_cell_dsts(now, nic_cell_time_, limit);
    const auto vq_has_room = [this, &src](NodeId i) {
      common::SharedRoleLock slot_role(common::sim_slot_role);
      return src.vq_depth(i) < cfg_.max_vq_depth;
    };
    std::function<bool(NodeId, NodeId)> relay_ok;
    if (faults_active_) {
      const NodeId s = src.self();
      relay_ok = [this, s](NodeId inter, NodeId dst) {
        common::SharedRoleLock slot_role(common::sim_slot_role);
        const auto& view = views_[static_cast<std::size_t>(s)];
        // Veto a relay whose link towards dst is reported lost (the cell
        // would blackhole on the second hop), and one this source cannot
        // reach itself (first hop; link_down(x, y) is x's verdict about
        // the directed link y -> x).
        return !view.link_down(dst, inter) && !view.link_down(inter, s);
      };
    }
    for (const auto& req :
         src.cc().build_requests(pending, round, rng_, vq_has_room,
                                 relay_ok)) {
      c_requests_->inc();
      SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kRequest, now, src.self(),
                        req.intermediate, req.dst, FlowId{-1}, -1);
      if (faults_active_ &&
          (truth_down_[static_cast<std::size_t>(req.intermediate)] != 0 ||
           !sched_.is_member(req.intermediate))) {
        continue;  // the request burst lands on a dead receiver
      }
      nodes_[static_cast<std::size_t>(req.intermediate)]
          .cc()
          .receive_request(cc::Request{src.self(), req.dst});
    }
  }
}

void SiriusSim::land_arrivals(std::int64_t slot, Time now) {
  auto& bucket = in_flight_[static_cast<std::size_t>(
      slot % static_cast<std::int64_t>(in_flight_.size()))];
  for (const Arrival& a : bucket) {
    if (faults_active_) {
      if (truth_down_[static_cast<std::size_t>(a.to)] != 0 ||
          !sched_.is_member(a.to)) {
        // The receiver fail-stopped (or was deprovisioned) while the cell
        // was on the fiber.
        c_dropped_->inc();
        SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, a.to,
                          kInvalidNode, a.cell.dst_node, a.cell.flow,
                          a.cell.seq);
        continue;
      }
      if (a.cell.dst_node != a.to &&
          (!sched_.is_member(a.cell.dst_node) ||
           nodes_[static_cast<std::size_t>(a.to)].cc().is_excluded(
               a.cell.dst_node))) {
        // Relay refusal: this intermediate believes the destination is
        // gone, so queueing the cell would blackhole it. The source's
        // retransmission timer (or flow abort) owns recovery.
        c_dropped_->inc();
        SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, a.to,
                          kInvalidNode, a.cell.dst_node, a.cell.flow,
                          a.cell.seq);
        continue;
      }
    }
    if (a.cell.dst_node == a.to) {
      // Reached its destination (second hop, or a lucky direct first hop).
      deliver(a.cell, now);
    } else {
      // First hop into an intermediate: enqueue for relaying. The grant
      // accounting was already settled at transmission time (see
      // transmit_slot): in-flight cells are on the wire, not in the queue
      // that Q bounds.
      nodes_[static_cast<std::size_t>(a.to)].push_fq(a.cell.dst_node, a.cell);
      SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kRelayEnqueue, now, a.to,
                        kInvalidNode, a.cell.dst_node, a.cell.flow,
                        a.cell.seq);
    }
  }
  bucket.clear();
}

bool SiriusSim::observe_burst(NodeId src, NodeId dst, std::int64_t round,
                              Time now) {
  // Called for every scheduled (src -> dst) burst with a live member
  // receiver. The burst is lost when the transmitter is fail-stopped, or
  // to a grey-link Bernoulli draw. Either way the receiver's detector sees
  // only presence/absence — §4.5 probe-less detection.
  bool lost = truth_down_[static_cast<std::size_t>(src)] != 0;
  if (!lost && plan_.link_ever_grey(src, dst)) {
    const double p = plan_.link_loss(src, dst, now);
    lost = p > 0.0 && fault_rng_.chance(p);
  }
  auto& view = views_[static_cast<std::size_t>(dst)];
  if (lost) {
    if (health_[static_cast<std::size_t>(dst)].record_miss(src)) {
      view.report_link(src, true);
      if (detect_round_ < 0) {
        detect_round_ = round;
        detect_time_ = now;
      }
    }
  } else {
    health_[static_cast<std::size_t>(dst)].record_hit(src);
    if (view.link_down(dst, src)) view.report_link(src, false);
    // Every heard burst piggybacks the transmitter's membership view.
    view.merge_from(views_[static_cast<std::size_t>(src)]);
  }
  return lost;
}

void SiriusSim::transmit_slot(std::int64_t slot, Time now) {
  const auto land_slot = static_cast<std::size_t>(
      (slot + prop_slots_) % static_cast<std::int64_t>(in_flight_.size()));
  // The schedule phase restarts at every swap, so peers are looked up at
  // the schedule-relative slot.
  const std::int64_t rel = slot - round_base_slot_;
  const std::int64_t round = round_of_slot(slot);
  for (NodeId s = 0; s < cfg_.racks; ++s) {
    auto& n = nodes_[static_cast<std::size_t>(s)];
    for (UplinkId u = 0; u < sched_.uplinks(); ++u) {
      const NodeId p = sched_.peer_tx(s, u, rel);
      if (p == kInvalidNode) continue;
      if (cfg_.routing == RoutingMode::kDirect) {
        // Direct-only: pull the next pending cell addressed to p, if any.
        if (auto cell = n.take_cell_for(p, now, nic_cell_time_)) {
          c_injected_->inc();
          in_flight_[land_slot].push_back(Arrival{*cell, p});
          c_tx_first_->inc();
          SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kFirstHopTx, now, s,
                            p, cell->dst_node, cell->flow, cell->seq);
        }
        continue;
      }
      bool lost = false;
      bool p_dead = false;
      if (faults_active_) {
        p_dead = truth_down_[static_cast<std::size_t>(p)] != 0;
        if (truth_down_[static_cast<std::size_t>(s)] != 0) {
          // Dead transmitter: the expected burst never arrives; the live
          // receiver records the miss — the §4.5 detection signal.
          if (!p_dead) observe_burst(s, p, round, now);
          continue;
        }
        // A dead receiver observes nothing (its cell is launched into the
        // fiber regardless and dropped on landing).
        if (!p_dead) lost = observe_burst(s, p, round, now);
      }
      // Relay traffic first: it is older and its queue bound must drain.
      if (auto cell = n.pop_fq(p)) {
        if (lost) {
          c_dropped_->inc();
          SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, s, p,
                            cell->dst_node, cell->flow, cell->seq);
        } else {
          in_flight_[land_slot].push_back(Arrival{*cell, p});
          c_tx_relay_->inc();
          SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kRelayDequeue, now, s,
                            p, cell->dst_node, cell->flow, cell->seq);
        }
        continue;
      }
      if (cfg_.ideal) {
        if (auto cell = n.take_any_cell(now, nic_cell_time_)) {
          c_injected_->inc();
          in_flight_[land_slot].push_back(Arrival{*cell, p});
          SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kFirstHopTx, now, s,
                            p, cell->dst_node, cell->flow, cell->seq);
        }
      } else if (auto cell = n.pop_vq(p)) {
        // The retransmission timer starts now — when the cell leaves the
        // source's possession — not at grant time: a granted cell can
        // legitimately starve in the virtual queue behind prioritised
        // relay traffic for an unbounded, load-dependent time, and the
        // source would never retransmit a cell it still holds anyway.
        if (faults_active_) arm_retx_timer(*cell, s, round);
        // The granted cell is now on the wire towards intermediate p with a
        // deterministic arrival slot, so p's grant accounting can release
        // the outstanding slot immediately (the schedule guarantees p will
        // relay it no sooner than its own (p, dst) slot anyway). Keeping
        // outstanding held for the full fiber flight would turn Q into a
        // bandwidth-delay-product cap at small slot sizes. A fail-stopped
        // p's accounting was wiped with the rack, so there is nothing to
        // settle there; a grey-lost cell still settles — the token was
        // consumed at transmission either way.
        if (!p_dead) {
          nodes_[static_cast<std::size_t>(p)].cc().on_granted_cell_arrival(
              cell->dst_node);
        }
        if (lost) {
          c_dropped_->inc();
          SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, s, p,
                            cell->dst_node, cell->flow, cell->seq);
        } else {
          in_flight_[land_slot].push_back(Arrival{*cell, p});
          c_tx_first_->inc();
          SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kFirstHopTx, now, s,
                            p, cell->dst_node, cell->flow, cell->seq);
        }
      }
    }
  }
}

void SiriusSim::arm_retx_timer(const node::Cell& cell, NodeId src,
                               std::int64_t round) {
  // Loss-recovery path only (a timer per lost cell), not the clean
  // slot path. sirius-lint: allow(hot-path-alloc)
  retx_heap_.push_back(RetxTimer{round + retx_timeout_rounds(), cell, src});
  std::push_heap(retx_heap_.begin(), retx_heap_.end(), &SiriusSim::timer_later);
}

void SiriusSim::expire_retx_timers(std::int64_t round, Time now) {
  while (!retx_heap_.empty() && retx_heap_.front().deadline_round <= round) {
    std::pop_heap(retx_heap_.begin(), retx_heap_.end(),
                  &SiriusSim::timer_later);
    const RetxTimer t = retx_heap_.back();
    retx_heap_.pop_back();
    const auto& rxp = rx_[static_cast<std::size_t>(t.cell.flow)];
    if (rxp == nullptr || rxp->aborted || rxp->reorder.complete() ||
        rxp->reorder.received(t.cell.seq)) {
      continue;  // the cell made it after all, or nobody is waiting
    }
    if (truth_down_[static_cast<std::size_t>(t.src)] != 0 ||
        !sched_.is_member(t.src)) {
      continue;  // the source is gone; the flow-abort path owns this flow
    }
    if (t.cell.retries >= cfg_.retry_limit) {
      // Give up: the flow cannot complete without this cell.
      c_retx_abandoned_->inc();
      abort_rx_flow(t.cell.flow);
      continue;
    }
    node::Cell c = t.cell;
    ++c.retries;
    nodes_[static_cast<std::size_t>(t.src)].push_retx(c);
    // The original copy left the ledger as a drop; the resurrected copy
    // re-enters it as a fresh injection sitting in the retx queue.
    c_injected_->inc();
    c_retx_->inc();
    SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kRetransmit, now, t.src,
                      kInvalidNode, c.dst_node, c.flow, c.seq);
  }
}

void SiriusSim::apply_rack_death(NodeId rack, std::int64_t round, Time now) {
  (void)round;
  auto& n = nodes_[static_cast<std::size_t>(rack)];
  // The rack's buffers die with it.
  const std::int64_t purged = n.purge_all_queues();
  c_dropped_->inc(purged);
  if (purged > 0) {
    // Aggregate drop: flow < 0, seq carries the purge count.
    SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, rack,
                      kInvalidNode, kInvalidNode, FlowId{-1},
                      static_cast<std::int32_t>(purged));
  }
  n.cc().clear_protocol_state();
  n.abort_flows_where([](const node::LocalFlow&) { return true; });
  // Every incomplete flow with an endpoint in the rack is lost: tx-side
  // cells were just purged, rx-side servers are down. Only flows already
  // injected have receive state; later arrivals are rejected at injection.
  for (std::size_t i = 0; i < next_flow_; ++i) {
    const workload::Flow& f = workload_.flows[i];
    if (rack_of(f.src_server) == rack || rack_of(f.dst_server) == rack) {
      abort_rx_flow(f.id);
    }
  }
}

void SiriusSim::sync_exclusions(NodeId observer, std::int64_t round,
                                Time now) {
  (void)round;
  auto& n = nodes_[static_cast<std::size_t>(observer)];
  const auto& view = views_[static_cast<std::size_t>(observer)];
  for (NodeId d = 0; d < cfg_.racks; ++d) {
    if (d == observer) continue;
    const bool convicted = view.node_down(d);
    const bool excluded = n.cc().is_excluded(d);
    if (convicted && !excluded) {
      n.cc().exclude(d);
      // Queued cells *to* d are unrecoverable from here: drop them, and
      // release the grant of every purged VQ cell at its — alive —
      // intermediate so the relay's accounting stays exact.
      const std::int64_t purged = n.purge_dst(d, [this, d](NodeId inter) {
        common::RoleLock slot_role(common::sim_slot_role);
        if (truth_down_[static_cast<std::size_t>(inter)] == 0) {
          nodes_[static_cast<std::size_t>(inter)].cc().on_grant_release(d);
          c_released_->inc();
        }
      });
      c_dropped_->inc(purged);
      if (purged > 0) {
        SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, observer,
                          kInvalidNode, d, FlowId{-1},
                          static_cast<std::int32_t>(purged));
      }
      // Cells waiting in the VQ towards d (granted by d as the relay, but
      // not yet transmitted) still belong to this source: re-route them
      // through the retransmission queue instead of dropping — no timer
      // covers them, because timers arm at first-hop transmission. If d is
      // only convicted (grey link, false alarm) its grant accounting is
      // still live and must be released; a fail-stopped d's state died
      // with the rack.
      while (auto c = n.pop_vq(d)) {
        if (truth_down_[static_cast<std::size_t>(d)] == 0) {
          nodes_[static_cast<std::size_t>(d)].cc().on_grant_release(
              c->dst_node);
          c_released_->inc();
        }
        n.push_retx(*c);
      }
      // Flows from this rack to d cannot complete: stop feeding them.
      for (const FlowId id : n.abort_flows_where(
               [d](const node::LocalFlow& f) { return f.dst_node == d; })) {
        abort_rx_flow(id);
      }
    } else if (!convicted && excluded && sched_.is_member(d)) {
      // The verdicts cleared (grey window passed, or a false alarm): the
      // member is usable again. Swapped-out racks stay excluded until the
      // control plane re-provisions them (rejoin_rack).
      n.cc().include(d);
    }
  }
}

void SiriusSim::swap_schedule(std::vector<NodeId> members, std::int64_t round,
                              std::int64_t slot) {
  sched_ = sched::CyclicSchedule(std::move(members), cfg_.uplinks());
  // The new calendar starts at this slot: schedule-relative arithmetic
  // (round boundaries, peer lookups, the permutation audit) rebases here.
  round_base_slot_ = slot;
  rounds_base_ = round;
  audit_flight_rounds_ = std::max(
      audit_flight_rounds_,
      static_cast<std::int32_t>((prop_slots_ + sched_.slots_per_round() - 1) /
                                sched_.slots_per_round()));
  c_swaps_->inc();
}

void SiriusSim::rejoin_rack(NodeId rack, std::int64_t slot,
                            std::int64_t round) {
  // Administrative rejoin (§4.5 leaves re-provisioning to the control
  // plane; in-band rejoin is impossible because a non-member has no
  // schedule slots). The rebooted rack starts from clean state.
  health_[static_cast<std::size_t>(rack)] =
      ctrl::PeerHealth(cfg_.racks, cfg_.miss_threshold);
  views_[static_cast<std::size_t>(rack)] =
      ctrl::MembershipView(cfg_.racks, rack, quorum_);
  for (NodeId n = 0; n < cfg_.racks; ++n) {
    if (n != rack) {
      health_[static_cast<std::size_t>(n)].reset(rack);
      views_[static_cast<std::size_t>(n)].admit(rack);
    }
    nodes_[static_cast<std::size_t>(n)].cc().include(rack);
  }
  nodes_[static_cast<std::size_t>(rack)].cc().clear_protocol_state();

  std::vector<NodeId> members;
  members.reserve(static_cast<std::size_t>(sched_.nodes()) + 1);
  for (NodeId m = 0; m < cfg_.racks; ++m) {
    if (m == rack || sched_.is_member(m)) members.push_back(m);
  }
  // Provision the rebooted rack with the current membership: everything
  // outside it is excluded until convicted otherwise... which for alive
  // members never happens, and for the still-dead is already true.
  auto& cc = nodes_[static_cast<std::size_t>(rack)].cc();
  for (NodeId x = 0; x < cfg_.racks; ++x) {
    if (x == rack) continue;
    const bool member =
        std::find(members.begin(), members.end(), x) != members.end();
    if (member) {
      cc.include(x);
    } else {
      cc.exclude(x);
    }
  }
  swap_schedule(std::move(members), round, slot);
}

void SiriusSim::round_boundary_failover(std::int64_t round, std::int64_t slot,
                                        Time now) {
  const Time round_len =
      cfg_.slots.slot_duration() * sched_.slots_per_round();
  // Anchor the latency stats to the round containing each first disruption.
  if (fault_round_ < 0 && !fault_time_.is_infinite() &&
      fault_time_ < now + round_len) {
    fault_round_ = round;
  }
  if (rack_fault_round_ < 0 && !rack_fault_time_.is_infinite() &&
      rack_fault_time_ < now + round_len) {
    rack_fault_round_ = round;
  }

  // 1. Ground-truth transitions, quantised to round boundaries: a rack
  // that dies inside this round misses every burst of the round (probe at
  // the round's end), which is exactly when its peers start counting.
  const Time probe = now + round_len - Time::ps(1);
  for (NodeId r = 0; r < cfg_.racks; ++r) {
    const bool down = plan_.rack_down(r, probe);
    if (down && truth_down_[static_cast<std::size_t>(r)] == 0) {
      truth_down_[static_cast<std::size_t>(r)] = 1;
      apply_rack_death(r, round, now);
    } else if (!down && truth_down_[static_cast<std::size_t>(r)] != 0) {
      // Powered back on; rejoins the schedule below once the plan's
      // recovery time has passed.
      truth_down_[static_cast<std::size_t>(r)] = 0;
    }
  }

  // 2. Retransmission timeouts resurrect lost granted cells.
  expire_retx_timers(round, now);

  // 3. Every alive member acts on its merged view: exclude newly convicted
  // nodes (and purge the queues that reference them), re-admit cleared
  // members.
  for (NodeId n = 0; n < cfg_.racks; ++n) {
    if (truth_down_[static_cast<std::size_t>(n)] != 0 || !sched_.is_member(n)) {
      continue;
    }
    sync_exclusions(n, round, now);
  }

  // 3b. Dissemination latency: the first mid-run rack fault counts as
  // disseminated when every alive member has excluded the failed rack.
  if (fo_.dissemination_rounds < 0 && first_fault_rack_ != kInvalidNode &&
      rack_fault_round_ >= 0) {
    bool all = true;
    for (NodeId n = 0; n < cfg_.racks && all; ++n) {
      if (n == first_fault_rack_ ||
          truth_down_[static_cast<std::size_t>(n)] != 0 ||
          !sched_.is_member(n)) {
        continue;
      }
      all = nodes_[static_cast<std::size_t>(n)].cc().is_excluded(
          first_fault_rack_);
    }
    if (all) {
      fo_.dissemination_rounds = round - rack_fault_round_;
      Time lat = now - rack_fault_time_;
      if (lat < Time::zero()) lat = Time::zero();
      fo_.dissemination_latency = lat;
    }
  }

  // 4. Schedule swap: a member leaves the calendar once every alive member
  // has excluded it — the views have converged, so everyone rebases onto
  // the new calendar at the same boundary.
  std::vector<NodeId> keep;
  std::vector<NodeId> drop;
  for (NodeId m = 0; m < cfg_.racks; ++m) {
    if (!sched_.is_member(m)) continue;
    bool any_observer = false;
    bool all_excluded = true;
    for (NodeId o = 0; o < cfg_.racks && all_excluded; ++o) {
      if (o == m || truth_down_[static_cast<std::size_t>(o)] != 0 ||
          !sched_.is_member(o)) {
        continue;
      }
      any_observer = true;
      all_excluded = nodes_[static_cast<std::size_t>(o)].cc().is_excluded(m);
    }
    if (any_observer && all_excluded) {
      drop.push_back(m);
    } else {
      keep.push_back(m);
    }
  }
  if (!drop.empty() && keep.size() >= 2) {
    for (const NodeId m : drop) {
      if (truth_down_[static_cast<std::size_t>(m)] != 0) continue;
      // A live rack voted out (quorum of grey links): it is cut off from
      // the fabric, so its flows and queues are as dead as a crashed
      // rack's — the documented blast radius of a false conviction.
      auto& node_m = nodes_[static_cast<std::size_t>(m)];
      const std::int64_t purged = node_m.purge_all_queues();
      c_dropped_->inc(purged);
      if (purged > 0) {
        SIRIUS_CELL_EVENT(hub_, telemetry::CellEvent::kDrop, now, m,
                          kInvalidNode, kInvalidNode, FlowId{-1},
                          static_cast<std::int32_t>(purged));
      }
      node_m.cc().clear_protocol_state();
      for (const FlowId id : node_m.abort_flows_where(
               [](const node::LocalFlow&) { return true; })) {
        abort_rx_flow(id);
      }
      for (std::size_t i = 0; i < next_flow_; ++i) {
        const workload::Flow& f = workload_.flows[i];
        if (rack_of(f.src_server) == m || rack_of(f.dst_server) == m) {
          abort_rx_flow(f.id);
        }
      }
    }
    swap_schedule(std::move(keep), round, slot);
  }

  // 5. Administrative rejoin of recovered racks whose plan recovery time
  // has passed. Driven only by plan recovery events — never inferred from
  // traffic — so a grey-convicted rack cannot oscillate back in.
  for (const auto& f : plan_.rack_faults()) {
    if (f.recover_at.is_infinite() || now < f.recover_at) continue;
    if (truth_down_[static_cast<std::size_t>(f.rack)] != 0 ||
        sched_.is_member(f.rack)) {
      continue;
    }
    rejoin_rack(f.rack, slot, round);
  }
}

SiriusSimResult SiriusSim::run() {
  // THE slot-core entry point: the whole run executes under the (no-op)
  // slot role. When the loop is sharded, this lock moves into the workers.
  common::RoleLock slot_role(common::sim_slot_role);
  const Time slot_len = cfg_.slots.slot_duration();
  const std::int64_t last_arrival_slot =
      workload_.last_arrival() / slot_len + 1;
  const std::int64_t hard_stop = last_arrival_slot + cfg_.max_drain_slots;

  // Baseline for --stop-on-violation: only violations recorded *by this
  // run's slots* stop the loop, not leftovers from an earlier phase.
  const std::int64_t inv_base =
      check::InvariantContext::instance().violations();
  // The cursor is a member: a restored sim re-enters here mid-run and
  // continues from the snapshot's slot.
  for (; flows_remaining_ > 0 && slot_ < hard_stop; ++slot_) {
    SIRIUS_PROFILE_SCOPE(hub_->profiler(), telemetry::ProfScope::kSlotLoop);
    const Time now = cfg_.slots.slot_start(slot_);
    // Checkpoint before any slot work: the top of the slot is the one
    // point where the cell ledger is guaranteed consistent (everything is
    // delivered, queued, in flight, or dropped — never mid-move).
    if (cfg_.checkpoint_sink && now >= next_checkpoint_) {
      SIRIUS_PROFILE_SCOPE(hub_->profiler(),
                           telemetry::ProfScope::kCheckpoint);
      cfg_.checkpoint_sink(slot_, now, checkpoint_state());
      while (next_checkpoint_ <= now) {
        next_checkpoint_ += cfg_.checkpoint_every;
      }
    }
    if ((slot_ - round_base_slot_) % sched_.slots_per_round() == 0) {
      const std::int64_t round = round_of_slot(slot_);
      // Failover first: purges and schedule swaps must precede grant
      // issuance so no grant references a queue that is about to vanish.
      // A swap rebases the round phase at this very slot, so the round
      // index is stable across it.
      if (faults_active_) {
        SIRIUS_PROFILE_SCOPE(hub_->profiler(),
                             telemetry::ProfScope::kFailover);
        round_boundary_failover(round, slot_, now);
      }
      {
        SIRIUS_PROFILE_SCOPE(hub_->profiler(),
                             telemetry::ProfScope::kEpochCc);
        epoch_boundary(round, now);
      }
      // Audit between phases, where the ledger is consistent: cells are
      // delivered, queued, or in an in_flight_ bucket, never mid-move.
      if (cfg_.audit_period_rounds > 0 &&
          round % cfg_.audit_period_rounds == 0) {
        SIRIUS_PROFILE_SCOPE(hub_->profiler(), telemetry::ProfScope::kAudit);
        audit_slot_ = slot_ - round_base_slot_;
        auditors_.run_all();
      }
      // Export cadence rides the round boundary: refresh gauges, then let
      // the sampler decide whether a row is due. Reads sim state, never
      // writes it.
      if (hub_->metrics_enabled()) {
        SIRIUS_PROFILE_SCOPE(hub_->profiler(), telemetry::ProfScope::kStats);
        update_gauges();
        hub_->maybe_sample(now);
      }
    }
    {
      SIRIUS_PROFILE_SCOPE(hub_->profiler(),
                           telemetry::ProfScope::kLandInject);
      inject_arrivals(now);
      land_arrivals(slot_, now);
    }
    {
      SIRIUS_PROFILE_SCOPE(hub_->profiler(), telemetry::ProfScope::kTransmit);
      transmit_slot(slot_, now);
    }
    // Bisection replay: freeze at the first slot whose work recorded a
    // violation. slot_ is left pointing AT the violating slot, which is
    // what SiriusSimResult::slots_simulated then reports.
    if (cfg_.stop_on_violation &&
        check::InvariantContext::instance().violations() > inv_base) {
      break;
    }
  }
  // Land whatever is still in flight so delivery stats are complete.
  for (std::int64_t k = 0; k <= prop_slots_ && flows_remaining_ > 0; ++k) {
    land_arrivals(slot_ + k, cfg_.slots.slot_start(slot_ + k));
  }
  if (cfg_.audit_period_rounds > 0 && !cfg_.stop_on_violation) {
    audit_slot_ = slot_ - round_base_slot_;
    auditors_.run_all();
  }

  // Close out the export: final gauge refresh plus one unconditional row
  // so the series always covers the full run.
  if (hub_->metrics_enabled()) {
    update_gauges();
    hub_->sample(cfg_.slots.slot_start(slot_));
  }

  SiriusSimResult r;
  r.fct = fct_.summarize();
  r.goodput_normalized = goodput_.normalized(measure_end_);
  for (const auto& n : nodes_) {
    r.worst_node_queue_peak_kb =
        std::max(r.worst_node_queue_peak_kb, n.peak_queue().in_kb());
  }
  r.worst_reorder_peak_kb = reorder_peaks_.worst_peak().in_kb();
  r.slots_simulated = slot_;
  r.cells_delivered = c_delivered_->value();
  r.incomplete_flows = flows_remaining_;
  r.rejected_flows = c_rejected_flows_->value();
  r.sim_end = cfg_.slots.slot_start(slot_);
  r.per_flow_completion = std::move(completions_);
  r.requests_sent = c_requests_->value();
  r.grants_released = c_released_->value();
  r.slots_tx_relay = c_tx_relay_->value();
  r.slots_tx_first = c_tx_first_->value();
  for (const auto& n : nodes_) {
    r.grants_issued += n.cc().stat_grants_issued();
    r.grants_denied_q += n.cc().stat_denied_queue_bound();
  }
  // FailoverStats keeps its public shape; the counter-backed fields are
  // snapshotted from the registry here.
  fo_.cells_dropped = c_dropped_->value();
  fo_.cells_retransmitted = c_retx_->value();
  fo_.retx_abandoned = c_retx_abandoned_->value();
  fo_.duplicates_discarded = c_duplicates_->value();
  fo_.flows_aborted = c_flows_aborted_->value();
  fo_.schedule_swaps = c_swaps_->value();
  if (detect_round_ >= 0 && fault_round_ >= 0) {
    fo_.detection_rounds = detect_round_ - fault_round_;
    Time lat = detect_time_ - fault_time_;
    if (lat < Time::zero()) lat = Time::zero();
    fo_.detection_latency = lat;
  }
  if (recovery_) {
    r.recovery_curve = recovery_->curve();
    if (!fault_time_.is_infinite()) {
      fo_.recovery = recovery_->analyze(fault_time_, kRecoverFrac,
                                        measure_end_);
    }
  }
  r.failover = fo_;
  return r;
}

// ---- checkpoint / restore -------------------------------------------------

std::uint64_t SiriusSim::state_fingerprint() const {
  std::uint64_t h = kFnvOffset;
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.racks));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.servers_per_rack));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.uplinks()));
  h = fnv_u64(h,
              static_cast<std::uint64_t>(cfg_.slots.cell_size().in_bytes()));
  h = fnv_u64(
      h, static_cast<std::uint64_t>(cfg_.slots.slot_duration().picoseconds()));
  h = fnv_u64(
      h, static_cast<std::uint64_t>(cfg_.slots.line_rate().bits_per_sec()));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.queue_limit));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.spread));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.max_vq_depth));
  h = fnv_u64(h, cfg_.ideal ? 1u : 0u);
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.routing));
  h = fnv_u64(
      h, static_cast<std::uint64_t>(cfg_.propagation_delay.picoseconds()));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.server_nic.bits_per_sec()));
  h = fnv_u64(
      h, static_cast<std::uint64_t>(cfg_.rack_switch_latency.picoseconds()));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.miss_threshold));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.node_down_quorum));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.retx_timeout_rounds));
  h = fnv_u64(h, static_cast<std::uint64_t>(cfg_.retry_limit));
  h = fnv_u64(h, static_cast<std::uint64_t>(workload_.flows.size()));
  for (const workload::Flow& f : workload_.flows) {
    h = fnv_u64(h, static_cast<std::uint64_t>(f.id));
    h = fnv_u64(h, static_cast<std::uint64_t>(f.src_server));
    h = fnv_u64(h, static_cast<std::uint64_t>(f.dst_server));
    h = fnv_u64(h, static_cast<std::uint64_t>(f.size.in_bytes()));
    h = fnv_u64(h, static_cast<std::uint64_t>(f.arrival.picoseconds()));
  }
  return h;
}

void SiriusSim::serialize_state(ckpt::Writer& w) const {
  w.tag(kTagMeta);
  w.u64(state_fingerprint());
  w.b(faults_active_);
  w.i64(slot_);
  w.i64(audit_slot_);
  w.u64(static_cast<std::uint64_t>(next_flow_));
  w.i64(flows_remaining_);

  w.tag(kTagRng);
  const Rng::State rs = rng_.state();
  for (const std::uint64_t s : rs.s) w.u64(s);
  const Rng::State fs = fault_rng_.state();
  for (const std::uint64_t s : fs.s) w.u64(s);

  w.tag(kTagSched);
  sched_.serialize(w);
  w.i64(round_base_slot_);
  w.i64(rounds_base_);
  w.i32(audit_flight_rounds_);

  w.tag(kTagNodes);
  w.u64(nodes_.size());
  for (const node::Node& n : nodes_) n.serialize(w);

  w.tag(kTagRx);
  w.u64(rx_.size());
  for (const auto& rxp : rx_) {
    w.b(rxp != nullptr);
    if (rxp == nullptr) continue;
    w.i64(rxp->completion.picoseconds());
    w.b(rxp->aborted);
    rxp->reorder.serialize(w);
  }
  {
    std::vector<std::int64_t> free_ps;
    free_ps.reserve(server_free_.size());
    for (const Time t : server_free_) free_ps.push_back(t.picoseconds());
    w.vec_i64(free_ps);
  }

  w.tag(kTagWire);
  w.u64(in_flight_.size());
  for (const auto& bucket : in_flight_) {
    w.u64(bucket.size());
    for (const Arrival& a : bucket) {
      put_cell(w, a.cell);
      w.i32(a.to);
    }
  }

  w.tag(kTagStats);
  fct_.serialize(w);
  goodput_.serialize(w);
  reorder_peaks_.serialize(w);
  {
    std::vector<std::int64_t> done_ps;
    done_ps.reserve(completions_.size());
    for (const Time t : completions_) done_ps.push_back(t.picoseconds());
    w.vec_i64(done_ps);
  }
  w.b(recovery_ != nullptr);
  if (recovery_ != nullptr) recovery_->serialize(w);

  w.tag(kTagFailover);
  if (faults_active_) {
    w.u64(health_.size());
    for (const ctrl::PeerHealth& hh : health_) hh.serialize(w);
    w.u64(views_.size());
    for (const ctrl::MembershipView& v : views_) v.serialize(w);
    w.vec_u8(truth_down_);
    // The live min-heap's array order, verbatim: the run is deterministic,
    // so restoring it byte-for-byte keeps later pop order bit-identical.
    w.u64(retx_heap_.size());
    for (const RetxTimer& t : retx_heap_) {
      w.i64(t.deadline_round);
      put_cell(w, t.cell);
      w.i32(t.src);
    }
    w.i64(fault_round_);
    w.i64(rack_fault_round_);
    w.i64(detect_round_);
    w.i64(detect_time_.picoseconds());
    w.i64(fo_.dissemination_rounds);
    w.i64(fo_.dissemination_latency.picoseconds());
  }

  serialize_telemetry(w);
  w.tag(kTagEnd);
}

void SiriusSim::serialize_telemetry(ckpt::Writer& w) const {
  w.tag(kTagTelemetry);
  // Values travel keyed by name so a restore survives registration-order
  // drift; the final exported artifacts (JSONL rows, histogram summary)
  // of a resumed run must be byte-identical to an uninterrupted run's.
  // Checkpointing is a cold path serialized under the slot role, so
  // walking the registry here cannot race a shard.
  // sirius-lint: allow(singleton-telemetry-escape)
  const telemetry::MetricsRegistry& m = hub_->metrics();
  w.u64(m.counter_names().size());
  for (const std::string& name : m.counter_names()) {
    w.str(name);
    w.i64(m.find_counter(name)->value());
  }
  w.u64(m.gauge_names().size());
  for (const std::string& name : m.gauge_names()) {
    w.str(name);
    w.f64(m.find_gauge(name)->value());
  }
  w.u64(m.histogram_names().size());
  for (const std::string& name : m.histogram_names()) {
    w.str(name);
    w.vec_u64(m.find_histogram(name)->counts());
  }
  const telemetry::TimeSeriesSampler& s = hub_->sampler();
  w.u64(s.columns().size());
  for (const std::string& c : s.columns()) w.str(c);
  w.u64(s.rows().size());
  for (const telemetry::TimeSeriesSampler::Row& row : s.rows()) {
    w.i64(row.at.picoseconds());
    w.vec_f64(row.values);
  }
  w.i64(s.next_sample_at().picoseconds());
}

bool SiriusSim::restore_telemetry(ckpt::Reader& r) {
  if (!r.expect_tag(kTagTelemetry, "telemetry")) return false;
  // Cold path under the exclusive slot role; see serialize_telemetry.
  // sirius-lint: allow(singleton-telemetry-escape)
  telemetry::MetricsRegistry& m = hub_->metrics();
  const std::size_t nc = r.count(9, "counters");
  for (std::size_t i = 0; i < nc && r.ok(); ++i) {
    const std::string name = r.str();
    const std::int64_t v = r.i64();
    if (!r.ok()) break;
    telemetry::Counter* c = m.find_counter_mut(name);
    if (c == nullptr) {
      r.fail("checkpoint carries a counter this run never registered: '" +
             name + "'");
      break;
    }
    if (v < 0) {
      r.fail("negative checkpoint value for counter '" + name + "'");
      break;
    }
    c->set(v);
  }
  const std::size_t ng = r.count(9, "gauges");
  for (std::size_t i = 0; i < ng && r.ok(); ++i) {
    const std::string name = r.str();
    const double v = r.f64();
    if (!r.ok()) break;
    telemetry::Gauge* g = m.find_gauge_mut(name);
    if (g == nullptr) {
      r.fail("checkpoint carries a gauge this run never registered: '" +
             name + "'");
      break;
    }
    g->set(v);
  }
  const std::size_t nh = r.count(9, "histograms");
  for (std::size_t i = 0; i < nh && r.ok(); ++i) {
    const std::string name = r.str();
    const std::vector<std::uint64_t> counts = r.vec_u64("histogram bins");
    if (!r.ok()) break;
    Histogram* hist = m.find_histogram_mut(name);
    if (hist == nullptr) {
      r.fail("checkpoint carries a histogram this run never registered: '" +
             name + "'");
      break;
    }
    if (!hist->set_counts(counts)) {
      r.fail("histogram '" + name +
             "' bin count does not match this run's geometry");
      break;
    }
  }
  const std::size_t ncols = r.count(8, "sampler columns");
  std::vector<std::string> cols;
  cols.reserve(ncols);
  for (std::size_t i = 0; i < ncols && r.ok(); ++i) cols.push_back(r.str());
  const std::size_t nrows = r.count(8, "sampler rows");
  std::vector<telemetry::TimeSeriesSampler::Row> rows;
  rows.reserve(nrows);
  for (std::size_t i = 0; i < nrows && r.ok(); ++i) {
    telemetry::TimeSeriesSampler::Row row;
    row.at = Time::ps(r.i64());
    row.values = r.vec_f64("sampler row");
    if (!r.ok()) break;
    if (row.values.size() != cols.size()) {
      r.fail("sampler row width does not match the column set");
      break;
    }
    rows.push_back(std::move(row));
  }
  const Time next = Time::ps(r.i64());
  if (!r.ok()) return false;
  hub_->sampler().restore_series(std::move(cols), std::move(rows), next);
  return true;
}

bool SiriusSim::restore_state_impl(ckpt::Reader& r) {
  if (!r.expect_tag(kTagMeta, "meta")) return false;
  const std::uint64_t fp = r.u64();
  if (r.ok() && fp != state_fingerprint()) {
    r.fail(
        "checkpoint fingerprint does not match this run's config/workload "
        "(geometry, knobs and workload must be identical; only the seed and "
        "the fault plan may differ)");
  }
  const bool snap_faults = r.b();
  if (r.ok() && snap_faults != faults_active_) {
    r.fail(
        "checkpoint fault-plan dynamism differs from this run's (both the "
        "snapshot and the continuation must have the in-band failover "
        "machinery on, or both off)");
  }
  const std::int64_t slot = r.i64();
  const std::int64_t audit_slot = r.i64();
  const std::uint64_t next_flow = r.u64();
  const std::int64_t flows_remaining = r.i64();
  if (r.ok() && (slot < 0 || audit_slot < 0)) {
    r.fail("negative slot cursor");
  }
  if (r.ok() && next_flow > workload_.flows.size()) {
    r.fail("flow-injection cursor exceeds the workload");
  }
  if (r.ok() &&
      (flows_remaining < 0 ||
       flows_remaining > static_cast<std::int64_t>(workload_.flows.size()))) {
    r.fail("flows-remaining count out of range");
  }
  if (!r.ok()) return false;

  if (!r.expect_tag(kTagRng, "rng")) return false;
  Rng::State rs{};
  for (std::uint64_t& s : rs.s) s = r.u64();
  Rng::State fs{};
  for (std::uint64_t& s : fs.s) s = r.u64();
  if (!r.ok()) return false;

  if (!r.expect_tag(kTagSched, "schedule")) return false;
  if (!sched_.restore(r)) return false;
  const std::int64_t round_base_slot = r.i64();
  const std::int64_t rounds_base = r.i64();
  const std::int32_t audit_flight = r.i32();
  if (r.ok() &&
      (round_base_slot < 0 || round_base_slot > slot || rounds_base < 0 ||
       audit_flight < 1)) {
    r.fail("schedule swap base out of range");
  }
  if (!r.ok()) return false;

  if (!r.expect_tag(kTagNodes, "nodes")) return false;
  if (r.count(1, "nodes") != nodes_.size()) {
    r.fail("node count does not match this run's rack count");
    return false;
  }
  for (node::Node& n : nodes_) {
    if (!n.restore(r)) return false;
  }

  if (!r.expect_tag(kTagRx, "receive state")) return false;
  if (r.count(1, "rx flows") != rx_.size()) {
    r.fail("rx flow count does not match the workload");
    return false;
  }
  for (auto& rxp : rx_) {
    const bool present = r.b();
    if (!r.ok()) return false;
    if (!present) {
      rxp.reset();
      continue;
    }
    const std::int64_t comp_ps = r.i64();
    const bool aborted = r.b();
    auto fresh = std::make_unique<RxFlow>(0);
    if (!fresh->reorder.restore(r)) return false;
    fresh->completion = Time::ps(comp_ps);
    fresh->aborted = aborted;
    rxp = std::move(fresh);
  }
  {
    const std::vector<std::int64_t> free_ps = r.vec_i64("server downlinks");
    if (!r.ok()) return false;
    if (free_ps.size() != server_free_.size()) {
      r.fail("server downlink count does not match this run's config");
      return false;
    }
    for (std::size_t i = 0; i < free_ps.size(); ++i) {
      server_free_[i] = Time::ps(free_ps[i]);
    }
  }

  if (!r.expect_tag(kTagWire, "in-flight ring")) return false;
  if (r.count(1, "in-flight buckets") != in_flight_.size()) {
    r.fail("in-flight ring size does not match this run's config");
    return false;
  }
  for (auto& bucket : in_flight_) {
    bucket.clear();
    const std::size_t n = r.count(kCellBytes + 4, "in-flight cells");
    if (!r.ok()) return false;
    bucket.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Arrival a;
      a.cell = get_cell(r);
      a.to = r.i32();
      if (!r.ok()) return false;
      if (a.to < 0 || a.to >= cfg_.racks) {
        r.fail("in-flight cell addressed outside the rack range");
        return false;
      }
      bucket.push_back(a);
    }
  }

  if (!r.expect_tag(kTagStats, "statistics")) return false;
  if (!fct_.restore(r)) return false;
  if (!goodput_.restore(r)) return false;
  if (!reorder_peaks_.restore(r)) return false;
  {
    const std::vector<std::int64_t> done_ps = r.vec_i64("completion times");
    if (!r.ok()) return false;
    if (done_ps.size() != completions_.size()) {
      r.fail("completion-time count does not match the workload");
      return false;
    }
    for (std::size_t i = 0; i < done_ps.size(); ++i) {
      completions_[i] = Time::ps(done_ps[i]);
    }
  }
  const bool has_recovery = r.b();
  if (!r.ok()) return false;
  if (has_recovery != (recovery_ != nullptr)) {
    r.fail(
        "recovery-curve recording differs between the checkpoint and this "
        "run's config");
    return false;
  }
  if (recovery_ != nullptr && !recovery_->restore(r)) return false;

  if (!r.expect_tag(kTagFailover, "failover")) return false;
  if (faults_active_) {
    if (r.count(1, "peer-health detectors") != health_.size()) {
      r.fail("detector count does not match this run's rack count");
      return false;
    }
    for (ctrl::PeerHealth& hh : health_) {
      if (!hh.restore(r)) return false;
    }
    if (r.count(1, "membership views") != views_.size()) {
      r.fail("membership view count does not match this run's rack count");
      return false;
    }
    for (ctrl::MembershipView& v : views_) {
      if (!v.restore(r)) return false;
    }
    {
      std::vector<std::uint8_t> down = r.vec_u8("ground-truth rack status");
      if (!r.ok()) return false;
      if (down.size() != truth_down_.size()) {
        r.fail("ground-truth vector does not match this run's rack count");
        return false;
      }
      truth_down_ = std::move(down);
    }
    const std::size_t timers =
        r.count(8 + kCellBytes + 4, "retransmission timers");
    if (!r.ok()) return false;
    retx_heap_.clear();
    retx_heap_.reserve(timers);
    for (std::size_t i = 0; i < timers; ++i) {
      RetxTimer t;
      t.deadline_round = r.i64();
      t.cell = get_cell(r);
      t.src = r.i32();
      if (!r.ok()) return false;
      if (t.src < 0 || t.src >= cfg_.racks) {
        r.fail("retransmission timer source outside the rack range");
        return false;
      }
      retx_heap_.push_back(t);
    }
    // A genuine checkpoint serialized a live heap array; verify instead of
    // re-heapifying (make_heap could reorder equivalent layouts and break
    // bit-identical resumption).
    if (!std::is_heap(retx_heap_.begin(), retx_heap_.end(),
                      &SiriusSim::timer_later)) {
      r.fail("retransmission timers are not in heap order");
      return false;
    }
    fault_round_ = r.i64();
    rack_fault_round_ = r.i64();
    detect_round_ = r.i64();
    detect_time_ = Time::ps(r.i64());
    fo_.dissemination_rounds = r.i64();
    fo_.dissemination_latency = Time::ps(r.i64());
    if (!r.ok()) return false;
  }

  if (!restore_telemetry(r)) return false;
  if (!r.expect_tag(kTagEnd, "end")) return false;
  if (!r.expect_end()) return false;

  // All sections decoded and validated: commit the scalar cursors.
  slot_ = slot;
  audit_slot_ = audit_slot;
  next_flow_ = static_cast<std::size_t>(next_flow);
  flows_remaining_ = flows_remaining;
  rng_.set_state(rs);
  fault_rng_.set_state(fs);
  round_base_slot_ = round_base_slot;
  rounds_base_ = rounds_base;
  audit_flight_rounds_ = audit_flight;
  if (cfg_.checkpoint_every > Time::zero()) {
    // The smallest cadence multiple strictly after the restored slot's
    // start reproduces the straight run's sink cursor exactly (the sink
    // fires at the first slot-top at or past each multiple, then advances
    // past `now`).
    const Time now = cfg_.slots.slot_start(slot_);
    next_checkpoint_ =
        cfg_.checkpoint_every * (now / cfg_.checkpoint_every + 1);
  }
  return true;
}

std::string SiriusSim::checkpoint_state() const {
  common::SharedRoleLock slot_role(common::sim_slot_role);
  ckpt::Writer w;
  serialize_state(w);
  return w.data();
}

bool SiriusSim::restore_state(std::string_view payload, std::string* error) {
  common::RoleLock slot_role(common::sim_slot_role);
  ckpt::Reader r(payload);
  if (restore_state_impl(r)) return true;
  if (error != nullptr) {
    *error = r.ok() ? std::string("checkpoint restore failed") : r.error();
  }
  return false;
}

void SiriusSim::reseed_streams(std::uint64_t salt) {
  common::RoleLock slot_role(common::sim_slot_role);
  // Deterministic per salt, unrelated to the restored stream positions:
  // two forks of one snapshot with different salts explore different
  // futures; the same salt reproduces the same future.
  rng_ = Rng(salt ^ 0x464f524b53494dull);
  fault_rng_ = Rng(salt ^ 0x464f524b464cull);
}

}  // namespace sirius::sim
