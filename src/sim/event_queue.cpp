#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace sirius::sim {

void EventQueue::schedule_at(Time at, Handler h) {
  assert(at >= now_ && "cannot schedule into the past");
  heap_.push(Entry{at, next_seq_++, std::move(h)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; the handler is moved out via a
  // const_cast-free copy of the entry (handlers are cheap to move, but top
  // is const — copy, then pop).
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  e.h();
  return true;
}

std::int64_t EventQueue::run_until(Time until) {
  std::int64_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace sirius::sim
