#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/invariant.hpp"

namespace sirius::sim {

void EventQueue::schedule_at(Time at, Handler h) {
  SIRIUS_INVARIANT(at >= now_,
                   "schedule_at(%lld ps) is in the past (now %lld ps)",
                   static_cast<long long>(at.picoseconds()),
                   static_cast<long long>(now_.picoseconds()));
  heap_.push(Entry{std::max(at, now_), next_seq_++, std::move(h)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; the handler is moved out via a
  // const_cast-free copy of the entry (handlers are cheap to move, but top
  // is const — copy, then pop).
  Entry e = heap_.top();
  heap_.pop();
  SIRIUS_INVARIANT(e.at >= now_,
                   "event time ran backwards: %lld ps after %lld ps",
                   static_cast<long long>(e.at.picoseconds()),
                   static_cast<long long>(now_.picoseconds()));
  now_ = std::max(e.at, now_);
  e.h();
  return true;
}

std::int64_t EventQueue::run_until(Time until) {
  std::int64_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
    ++executed;
  }
  // Anchor now() at the horizon once it is reached (drained or not), so a
  // schedule_in() issued after the run measures from `until`, not from the
  // last event that happened to execute. An infinite horizon means "drain";
  // there the clock stays at the last executed event.
  if (!until.is_infinite() && now_ < until) now_ = until;
  return executed;
}


void EventQueue::serialize(ckpt::Writer& w) const {
  w.b(heap_.empty());
  w.i64(now_.picoseconds());
  w.u64(next_seq_);
}

bool EventQueue::restore(ckpt::Reader& r) {
  const bool drained = r.b();
  const std::int64_t now_ps = r.i64();
  const std::uint64_t next_seq = r.u64();
  if (!r.ok()) return false;
  if (!drained) {
    r.fail("event queue was serialized with pending handlers (only a "
           "drained queue is checkpointable)");
    return false;
  }
  while (!heap_.empty()) heap_.pop();
  now_ = Time::ps(now_ps);
  next_seq_ = next_seq;
  return true;
}

}  // namespace sirius::sim
