// Minimal discrete-event core used by device- and protocol-level sims.
//
// The Sirius data-plane simulator is slot-synchronous (see sirius_sim.hpp)
// because everything there happens on slot boundaries; this event queue
// serves the pieces that are not slot-aligned (fluid ESN baseline, device
// experiments, examples).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "ckpt/io.hpp"
#include "common/time.hpp"

namespace sirius::sim {

/// A time-ordered queue of callbacks. Ties are broken by insertion order,
/// so same-time events run deterministically FIFO.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `h` at absolute time `at`. Scheduling into the past is an
  /// invariant violation (SIRIUS_INVARIANT, enforced — not just a comment);
  /// in kCollect mode the event is defensively clamped to now().
  void schedule_at(Time at, Handler h);
  /// Schedules `h` at now() + delay.
  void schedule_in(Time delay, Handler h) { schedule_at(now_ + delay, h); }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Runs the next event; returns false if none remain. Time never moves
  /// backwards (audited).
  bool step();

  /// Runs until the queue is empty or `until` is passed. Returns the
  /// number of events executed. On return now() == min(until, time of the
  /// first unexecuted event), and when the queue drained before a finite
  /// horizon now() advances to `until`, so a subsequent schedule_in() is
  /// anchored at the horizon rather than at the last executed event.
  std::int64_t run_until(Time until = Time::infinity());

  /// Snapshottable — with a restriction: handlers are arbitrary closures
  /// and cannot travel through a file, so only a *drained* queue (the state
  /// between experiment phases, and the only state the slot-synchronous
  /// checkpoints ever see) can be serialized. serialize() on a non-empty
  /// queue is an error the reader reports on restore.
  void serialize(ckpt::Writer& w) const;
  bool restore(ckpt::Reader& r);

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Handler h;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
};

}  // namespace sirius::sim
