// Slot-synchronous packet-level simulator of the Sirius network (§7).
//
// All Sirius transmissions happen on timeslot boundaries, so instead of a
// general event queue the simulator advances one slot at a time:
//
//   slot loop:
//     - at round boundaries, run the congestion-control epoch exchange
//       (grants from last epoch's requests, cell moves, new requests);
//     - inject flows whose Poisson arrival time has been reached;
//     - land cells that finished their fiber propagation;
//     - for every (node, uplink), the static cyclic schedule names the
//       peer; the node transmits one cell: a relayed cell for the peer
//       (forward queue) if any, else a granted first-hop cell towards the
//       peer (virtual queue).
//
// Two operating modes:
//   * request/grant (default): the §4.3 protocol with queue bound Q;
//   * ideal: no request/grant round; sources spray cells round-robin over
//     their flows to the schedule-determined peer (per-flow-queue /
//     back-pressure idealisation, "Sirius (Ideal)" in Fig. 9).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/auditors.hpp"
#include "ckpt/io.hpp"
#include "common/hot_path.hpp"
#include "common/rng.hpp"
#include "common/thread_safety.hpp"
#include "ctrl/fault_plan.hpp"
#include "ctrl/peer_health.hpp"
#include "node/node.hpp"
#include "node/reorder_buffer.hpp"
#include "phy/slot_geometry.hpp"
#include "sched/schedule.hpp"
#include "stats/fct_tracker.hpp"
#include "stats/goodput.hpp"
#include "stats/occupancy.hpp"
#include "stats/recovery.hpp"
#include "telemetry/hub.hpp"
#include "workload/flow.hpp"

namespace sirius::sim {

/// How sources route cells over the static schedule.
enum class RoutingMode {
  /// Valiant/Chang load balancing through a random intermediate (§4.2) —
  /// what Sirius does; needs the request/grant congestion control.
  kValiant,
  /// Direct-only: a cell waits for the slot that connects its source to
  /// its destination. No relaying, no congestion control — but each pair
  /// only owns uplinks/(N-1) of the node bandwidth, so skewed traffic
  /// strands most of the fabric (the §4.1 motivation for load balancing).
  kDirect,
};

struct SiriusSimConfig {
  std::int32_t racks = 64;
  std::int32_t servers_per_rack = 8;
  /// Rack uplinks an equivalent non-blocking ESN would have; Sirius gets
  /// base_uplinks * uplink_multiplier tunable transceivers (§7 uses 1.5x
  /// to compensate the two-hop load-balanced routing).
  std::int32_t base_uplinks = 8;
  double uplink_multiplier = 1.5;
  phy::SlotGeometry slots = phy::default_slot_geometry();
  std::int32_t queue_limit = 4;  ///< Q of §4.3
  /// Request-spreading policy (see cc::SpreadPolicy).
  cc::SpreadPolicy spread = cc::SpreadPolicy::kDesynchronized;
  /// A source stops requesting an intermediate whose virtual queue already
  /// holds this many granted-but-unsent cells (bounds source-side backlog;
  /// the source knows its own queues, so this is free to implement).
  std::int32_t max_vq_depth = 2;
  bool ideal = false;            ///< per-flow-queue idealisation
  RoutingMode routing = RoutingMode::kValiant;
  /// One-way node -> grating -> node propagation (datacenter span).
  Time propagation_delay = Time::ns(500);
  /// Server <-> rack-switch link rate (injection and delivery pacing).
  DataRate server_nic = DataRate::gbps(50);
  /// Intra-rack forwarding latency through the electrical ToR.
  Time rack_switch_latency = Time::ns(500);
  std::uint64_t seed = 1;
  /// Safety cap: give up this many slots after the last flow arrival.
  std::int64_t max_drain_slots = 5'000'000;
  /// Run the registered invariant auditors (schedule permutation, queue
  /// bound, cell conservation, reorder consistency) every this many rounds,
  /// plus once at the end of the run. 0 disables periodic audits.
  std::int64_t audit_period_rounds = 64;
  /// Racks that are down for the whole run (§4.5 fault tolerance): the
  /// schedule is built over the alive set, every node excludes them as
  /// relay intermediates, and flows touching them are rejected at
  /// injection (counted in SiriusSimResult::rejected_flows). Sugar for a
  /// FaultPlan rack failure at t = 0 with no recovery; both mechanisms
  /// share one code path.
  std::vector<NodeId> failed_racks;
  /// Declarative mid-run fault timeline (§4.5). Static t=0 entries behave
  /// exactly like `failed_racks`; anything dynamic — a failure at t > 0, a
  /// recovery, or a grey link — enables the in-band failover machinery
  /// (request/grant Valiant mode only): per-node PeerHealth miss counters
  /// keyed off the cyclic schedule, piggybacked membership views, queue
  /// purging with explicit drop accounting, bounded retransmission, and a
  /// schedule swap once the alive nodes' views agree.
  ctrl::FaultPlan faults;
  /// Consecutive missed schedule bursts before an observer declares a
  /// peer's link dead (§4.5; rides out synchronisation hiccups).
  std::int32_t miss_threshold = 3;
  /// Distinct observers whose reports convict a node as down, so one
  /// locally-grey link cannot evict a healthy rack. 0 = auto:
  /// max(2, alive_racks / 4).
  std::int32_t node_down_quorum = 0;
  /// Rounds a source waits, counted from the cell's first-hop
  /// transmission, before assuming the cell was lost and retransmitting
  /// it. 0 = auto: generously above the worst legitimate flight + relay
  /// queue + flight latency, so only genuinely lost cells are resent.
  std::int32_t retx_timeout_rounds = 0;
  /// Retransmission attempts per cell before it is abandoned.
  std::int32_t retry_limit = 16;
  /// Record a goodput-vs-time curve (SiriusSimResult::recovery_curve)
  /// binned at `recovery_bin`, and reduce it around the plan's first
  /// disruption into FailoverStats::recovery.
  bool record_recovery_curve = false;
  Time recovery_bin = Time::us(2);
  /// Telemetry sink (metrics export, cell tracing, flight recorder,
  /// profiling) — see src/telemetry/. Null means the sim owns a private
  /// disabled hub: the counters still count (they back SiriusSimResult)
  /// but nothing is recorded and no file is written. The hub is strictly
  /// write-only from the sim's point of view, so results are bit-identical
  /// with telemetry attached, detached, or compiled out.
  // Caller-owned hub handed through a value-object config; the sim pins it
  // into hub_ (guarded by sim_slot_role) at construction and never shares
  // the config itself.
  // sirius-lint: allow(no-shared-mutable-ref)
  telemetry::Hub* telemetry = nullptr;
  /// Periodic checkpoint cadence in simulated time (zero = disabled). At
  /// the first top-of-slot point at or after each multiple of
  /// `checkpoint_every` — the consistent ledger point, before any slot
  /// work — `checkpoint_sink` receives the serialized state. Serialization
  /// is strictly read-only, so a checkpointing run is bit-identical to one
  /// without the sink.
  Time checkpoint_every = Time::zero();
  /// Receives (slot, now, payload) at the cadence above. The payload is
  /// the raw SiriusSim::checkpoint_state() bytes; frame it with
  /// ckpt::save() to get a crash-safe `sirius.ckpt.v1` file.
  std::function<void(std::int64_t slot, Time now, const std::string& payload)>
      checkpoint_sink;
  /// Stop the slot loop at the first slot whose work (including the
  /// round-boundary audit) records an invariant violation in
  /// check::InvariantMode::kCollect — the bisection replay knob: restore
  /// the nearest snapshot, set audit_period_rounds = 1 and this flag, and
  /// SiriusSimResult::slots_simulated pinpoints the first failing slot.
  bool stop_on_violation = false;

  [[nodiscard]] std::int32_t servers() const { return racks * servers_per_rack; }
  [[nodiscard]] std::int32_t uplinks() const {
    return static_cast<std::int32_t>(base_uplinks * uplink_multiplier + 0.5);
  }
  /// Provisioned per-server bandwidth (goodput normalisation): the rack's
  /// base uplink capacity divided among its servers.
  [[nodiscard]] DataRate server_share() const {
    return (slots.line_rate() * base_uplinks) / servers_per_rack;
  }
};

/// §4.5 failover observability: what the fault did and how the fabric
/// reacted, all derived in-band (no oracle timestamps except the plan's
/// own fault instant, which anchors the latencies).
struct FailoverStats {
  std::int64_t cells_dropped = 0;          ///< all drop causes, ledger-audited
  std::int64_t cells_retransmitted = 0;    ///< timeout resurrections
  std::int64_t retx_abandoned = 0;         ///< cells past the retry limit
  std::int64_t duplicates_discarded = 0;   ///< spurious retx copies at rx
  std::int64_t flows_aborted = 0;          ///< an endpoint rack died mid-flow
  std::int64_t schedule_swaps = 0;         ///< membership changes applied
  /// Rounds from the first disruption's round to the first in-band
  /// link-down declaration (-1 if never detected / no mid-run fault).
  std::int64_t detection_rounds = -1;
  /// Rounds from the first disruption's round until every alive node has
  /// excluded the failed rack (-1 if n/a; hard rack faults only).
  std::int64_t dissemination_rounds = -1;
  Time detection_latency = Time::infinity();
  Time dissemination_latency = Time::infinity();
  /// Goodput transient around the first disruption (curve mode only).
  stats::RecoverySummary recovery;
};

struct SiriusSimResult {
  stats::FctSummary fct;
  double goodput_normalized = 0.0;       ///< Fig. 9b metric
  double worst_node_queue_peak_kb = 0.0; ///< Fig. 10c metric (VQ+FQ bytes)
  double worst_reorder_peak_kb = 0.0;    ///< Fig. 10d metric (per flow)
  std::int64_t slots_simulated = 0;
  std::int64_t cells_delivered = 0;
  std::int64_t incomplete_flows = 0;
  /// Flows rejected because an endpoint rack was failed.
  std::int64_t rejected_flows = 0;
  Time sim_end;
  /// Completion time of every workload flow (Time::infinity() if it did
  /// not finish before the drain cap). Indexed by flow id.
  std::vector<Time> per_flow_completion;

  // Protocol/diagnostic counters (request/grant mode).
  std::int64_t requests_sent = 0;
  std::int64_t grants_issued = 0;
  std::int64_t grants_denied_q = 0;
  std::int64_t grants_released = 0;
  std::int64_t slots_tx_relay = 0;  ///< second-hop transmissions
  std::int64_t slots_tx_first = 0;  ///< first-hop transmissions

  FailoverStats failover;
  /// Goodput-vs-time curve (record_recovery_curve mode).
  std::vector<stats::RecoveryBin> recovery_curve;
};

/// Runs one Sirius experiment over `workload`. Flow endpoints in the
/// workload are servers; they are mapped onto racks by division.
///
/// All mutable slot-loop state is guarded by common::sim_slot_role and the
/// private slot machinery requires it; the entry points (constructor body,
/// run()) acquire the role with a no-op RoleLock. When the slot loop is
/// sharded (ROADMAP item 2) the lock moves into the shard workers and the
/// compiler re-checks every access against the role.
class SiriusSim {
 public:
  SiriusSim(SiriusSimConfig cfg, const workload::Workload& workload);

  SiriusSimResult run();

  const sched::CyclicSchedule& schedule() const { return sched_; }
  /// The invariant auditors this sim registered (see src/check/).
  const check::AuditorRegistry& auditors() const { return auditors_; }

  // ---- checkpoint / restore (docs/OPERABILITY.md) ------------------------

  /// Serializes the complete mutable simulator state — slot cursor, RNG
  /// streams, schedule and swap bases, every node's queues and CC state,
  /// receive/reorder state, in-flight ring, retx timers, failover
  /// detectors, statistics and the telemetry registry/series — as a
  /// `sirius.ckpt.v1` payload (unframed; see ckpt::save for the file
  /// format). run() calls this at the checkpoint cadence, always at the
  /// top of a slot, where the cell ledger is consistent.
  [[nodiscard]] std::string checkpoint_state() const;
  /// Restores state serialized by checkpoint_state() into this sim, which
  /// must be constructed over the same geometry, knobs and workload
  /// (fingerprint-checked; seed and fault plan are deliberately outside
  /// the fingerprint so fork what-if continuations can vary them). On
  /// failure `*error` (if non-null) gets a diagnostic and the sim is not
  /// safe to run. Hostile payloads are rejected, never crash.
  [[nodiscard]] bool restore_state(std::string_view payload,
                                   std::string* error = nullptr);
  /// Fork divergence: deterministically re-seeds both RNG streams from
  /// `salt`, discarding the restored stream positions. Call after
  /// restore_state() to make N what-if continuations of one snapshot
  /// explore different futures.
  void reseed_streams(std::uint64_t salt);

 private:
  struct RxFlow {
    node::ReorderBuffer reorder;
    Time completion = Time::infinity();
    bool aborted = false;  ///< an endpoint rack died; late cells are dropped
    explicit RxFlow(std::int64_t cells) : reorder(cells) {}
  };
  struct Arrival {
    node::Cell cell;
    NodeId to;
  };
  /// A retransmission timer armed when a cell's first-hop burst leaves
  /// the source; fires at a round boundary and resurrects the cell into
  /// the source's retx queue unless the receive path already has it (lazy
  /// invalidation via ReorderBuffer::received).
  struct RetxTimer {
    std::int64_t deadline_round = 0;
    node::Cell cell;
    NodeId src = 0;
  };
  /// Min-heap order for retransmission timers. Ties are broken by
  /// (flow, seq) so the resurrection order — which feeds back into the
  /// request stream — is deterministic regardless of the standard
  /// library's heap layout.
  static bool timer_later(const RetxTimer& a, const RetxTimer& b);

  [[nodiscard]] NodeId rack_of(std::int32_t server) const {
    return server / cfg_.servers_per_rack;
  }

  void serialize_state(ckpt::Writer& w) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);
  bool restore_state_impl(ckpt::Reader& r)
      SIRIUS_REQUIRES(common::sim_slot_role);
  void serialize_telemetry(ckpt::Writer& w) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);
  bool restore_telemetry(ckpt::Reader& r)
      SIRIUS_REQUIRES(common::sim_slot_role);
  /// FNV-1a over the geometry/knob fields that determine state layout and
  /// slot-loop behaviour, plus the workload. Seed, fault plan, telemetry,
  /// audit cadence and checkpoint cadence are excluded: those are the
  /// fields bisection and fork continuations legitimately override.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  void register_auditors() SIRIUS_REQUIRES(common::sim_slot_role);
  void bind_metrics() SIRIUS_REQUIRES(common::sim_slot_role);
  void update_gauges() SIRIUS_REQUIRES(common::sim_slot_role);
  void epoch_boundary(std::int64_t round, Time now)
      SIRIUS_REQUIRES(common::sim_slot_role);
  void inject_arrivals(Time now) SIRIUS_REQUIRES(common::sim_slot_role);
  SIRIUS_HOT void land_arrivals(std::int64_t slot, Time now)
      SIRIUS_REQUIRES(common::sim_slot_role);
  SIRIUS_HOT void transmit_slot(std::int64_t slot, Time now)
      SIRIUS_REQUIRES(common::sim_slot_role);
  SIRIUS_HOT void deliver(const node::Cell& cell, Time now)
      SIRIUS_REQUIRES(common::sim_slot_role);
  void finish_flow(FlowId flow, Time completion)
      SIRIUS_REQUIRES(common::sim_slot_role);

  // ---- §4.5 failover machinery (active only for dynamic fault plans) ----
  /// Burst observation at the receiver: miss/hit bookkeeping, link-down
  /// reports and piggybacked view merging. Returns true when the burst
  /// (and any data cell on it) is lost to a grey link.
  bool observe_burst(NodeId src, NodeId dst, std::int64_t round, Time now)
      SIRIUS_REQUIRES(common::sim_slot_role);
  /// All round-boundary failover work, in deterministic order: ground
  /// truth transitions, retransmission timeouts, view-driven exclusion
  /// sync, schedule swap, administrative rejoin, latency stats.
  void round_boundary_failover(std::int64_t round, std::int64_t slot,
                               Time now) SIRIUS_REQUIRES(common::sim_slot_role);
  void apply_rack_death(NodeId rack, std::int64_t round, Time now)
      SIRIUS_REQUIRES(common::sim_slot_role);
  void sync_exclusions(NodeId observer, std::int64_t round, Time now)
      SIRIUS_REQUIRES(common::sim_slot_role);
  void expire_retx_timers(std::int64_t round, Time now)
      SIRIUS_REQUIRES(common::sim_slot_role);
  void swap_schedule(std::vector<NodeId> members, std::int64_t round,
                     std::int64_t slot) SIRIUS_REQUIRES(common::sim_slot_role);
  void rejoin_rack(NodeId rack, std::int64_t slot, std::int64_t round)
      SIRIUS_REQUIRES(common::sim_slot_role);
  void arm_retx_timer(const node::Cell& cell, NodeId src, std::int64_t round)
      SIRIUS_REQUIRES(common::sim_slot_role);
  void abort_rx_flow(FlowId flow) SIRIUS_REQUIRES(common::sim_slot_role);
  [[nodiscard]] std::int32_t retx_timeout_rounds() const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role);
  [[nodiscard]] std::int64_t round_of_slot(std::int64_t slot) const
      SIRIUS_REQUIRES_SHARED(common::sim_slot_role) {
    return rounds_base_ + (slot - round_base_slot_) / sched_.slots_per_round();
  }

  SiriusSimConfig cfg_;
  const workload::Workload& workload_;
  ctrl::FaultPlan plan_;  ///< cfg.faults with failed_racks folded in
  sched::CyclicSchedule sched_;
  Rng rng_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  ///< grey-loss draws; separate stream so a fault plan does not perturb
  ///< the baseline RNG sequence
  Rng fault_rng_ SIRIUS_GUARDED_BY(common::sim_slot_role);

  std::vector<node::Node> nodes_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  // indexed by flow id
  std::vector<std::unique_ptr<RxFlow>> rx_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // downlink serialisation
  std::vector<Time> server_free_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  // ring buffer by slot
  std::vector<std::vector<Arrival>> in_flight_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  std::int64_t prop_slots_;
  Time nic_cell_time_;

  // next workload flow to inject
  std::size_t next_flow_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  // not yet completed
  std::int64_t flows_remaining_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  Time measure_end_;              // goodput window = [0, last arrival]

  stats::FctTracker fct_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  stats::GoodputMeter goodput_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  stats::OccupancyAggregator reorder_peaks_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  std::vector<Time> completions_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  check::AuditorRegistry auditors_;
  // schedule-relative slot for the permutation auditor
  std::int64_t audit_slot_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  // Slot-loop cursor, a member (not a run() local) so a restored sim
  // resumes mid-run: run() continues from wherever the snapshot left it.
  std::int64_t slot_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  // Next simulated time the checkpoint sink fires at; derived (never
  // serialized): the smallest multiple of cfg_.checkpoint_every strictly
  // after the current slot's start reproduces the straight run's cadence.
  Time next_checkpoint_ SIRIUS_GUARDED_BY(common::sim_slot_role) =
      Time::infinity();

  // ---- telemetry spine --------------------------------------------------
  // The sim's cumulative statistics live as named counters in the hub's
  // registry (bound once in bind_metrics(), bumped through the pointers).
  // A null SiriusSimConfig::telemetry gets `own_hub_`, a disabled hub whose
  // registry still backs SiriusSimResult.
  std::unique_ptr<telemetry::Hub> own_hub_;
  telemetry::Hub* hub_ SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  // cells out of any LOCAL buffer
  telemetry::Counter* c_injected_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_delivered_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_rejected_flows_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_requests_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_released_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_tx_first_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_tx_relay_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_dropped_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_retx_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_retx_abandoned_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_duplicates_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_flows_aborted_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Counter* c_swaps_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_flows_remaining_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_queue_worst_kb_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_retx_pending_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_members_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_requests_received_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_grants_issued_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_grants_denied_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_detector_misses_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  telemetry::Gauge* g_detector_declared_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;
  Histogram* h_fct_us_ SIRIUS_GUARDED_BY(common::sim_slot_role) = nullptr;

  // ---- §4.5 failover state ----------------------------------------------
  // dynamic plan: in-band machinery on
  bool faults_active_ = false;
  // observers needed to convict a node
  std::int32_t quorum_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 1;
  // earliest mid-run rack fault
  NodeId first_fault_rack_ SIRIUS_GUARDED_BY(common::sim_slot_role) =
      kInvalidNode;
  // per rack, detector state
  std::vector<ctrl::PeerHealth> health_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // per rack, piggybacked
  std::vector<ctrl::MembershipView> views_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // ground-truth rack status
  std::vector<std::uint8_t> truth_down_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  // min-heap by deadline
  std::vector<RetxTimer> retx_heap_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  // first slot of the current schedule
  std::int64_t round_base_slot_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  // rounds completed before that slot
  std::int64_t rounds_base_ SIRIUS_GUARDED_BY(common::sim_slot_role) = 0;
  std::unique_ptr<stats::RecoveryMeter> recovery_
      SIRIUS_GUARDED_BY(common::sim_slot_role);
  FailoverStats fo_ SIRIUS_GUARDED_BY(common::sim_slot_role);
  // plan's first mid-run disruption
  Time fault_time_ SIRIUS_GUARDED_BY(common::sim_slot_role) =
      Time::infinity();
  // round containing fault_time_
  std::int64_t fault_round_ SIRIUS_GUARDED_BY(common::sim_slot_role) = -1;
  // first mid-run *rack* fault
  Time rack_fault_time_ SIRIUS_GUARDED_BY(common::sim_slot_role) =
      Time::infinity();
  // round containing rack_fault_time_
  std::int64_t rack_fault_round_ SIRIUS_GUARDED_BY(common::sim_slot_role) =
      -1;
  // first in-band link-down report
  std::int64_t detect_round_ SIRIUS_GUARDED_BY(common::sim_slot_role) = -1;
  Time detect_time_ SIRIUS_GUARDED_BY(common::sim_slot_role) =
      Time::infinity();
  // Largest flight-rounds value any schedule of this run has had; keeps the
  // queue-bound audit valid across swaps (a rejoin shrinks flight_rounds,
  // but cells granted under the old schedule may still be draining).
  std::int32_t audit_flight_rounds_
      SIRIUS_GUARDED_BY(common::sim_slot_role) = 1;
};

}  // namespace sirius::sim
