// Slot-synchronous packet-level simulator of the Sirius network (§7).
//
// All Sirius transmissions happen on timeslot boundaries, so instead of a
// general event queue the simulator advances one slot at a time:
//
//   slot loop:
//     - at round boundaries, run the congestion-control epoch exchange
//       (grants from last epoch's requests, cell moves, new requests);
//     - inject flows whose Poisson arrival time has been reached;
//     - land cells that finished their fiber propagation;
//     - for every (node, uplink), the static cyclic schedule names the
//       peer; the node transmits one cell: a relayed cell for the peer
//       (forward queue) if any, else a granted first-hop cell towards the
//       peer (virtual queue).
//
// Two operating modes:
//   * request/grant (default): the §4.3 protocol with queue bound Q;
//   * ideal: no request/grant round; sources spray cells round-robin over
//     their flows to the schedule-determined peer (per-flow-queue /
//     back-pressure idealisation, "Sirius (Ideal)" in Fig. 9).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/auditors.hpp"
#include "common/rng.hpp"
#include "node/node.hpp"
#include "node/reorder_buffer.hpp"
#include "phy/slot_geometry.hpp"
#include "sched/schedule.hpp"
#include "stats/fct_tracker.hpp"
#include "stats/goodput.hpp"
#include "stats/occupancy.hpp"
#include "workload/flow.hpp"

namespace sirius::sim {

/// How sources route cells over the static schedule.
enum class RoutingMode {
  /// Valiant/Chang load balancing through a random intermediate (§4.2) —
  /// what Sirius does; needs the request/grant congestion control.
  kValiant,
  /// Direct-only: a cell waits for the slot that connects its source to
  /// its destination. No relaying, no congestion control — but each pair
  /// only owns uplinks/(N-1) of the node bandwidth, so skewed traffic
  /// strands most of the fabric (the §4.1 motivation for load balancing).
  kDirect,
};

struct SiriusSimConfig {
  std::int32_t racks = 64;
  std::int32_t servers_per_rack = 8;
  /// Rack uplinks an equivalent non-blocking ESN would have; Sirius gets
  /// base_uplinks * uplink_multiplier tunable transceivers (§7 uses 1.5x
  /// to compensate the two-hop load-balanced routing).
  std::int32_t base_uplinks = 8;
  double uplink_multiplier = 1.5;
  phy::SlotGeometry slots = phy::default_slot_geometry();
  std::int32_t queue_limit = 4;  ///< Q of §4.3
  /// Request-spreading policy (see cc::SpreadPolicy).
  cc::SpreadPolicy spread = cc::SpreadPolicy::kDesynchronized;
  /// A source stops requesting an intermediate whose virtual queue already
  /// holds this many granted-but-unsent cells (bounds source-side backlog;
  /// the source knows its own queues, so this is free to implement).
  std::int32_t max_vq_depth = 2;
  bool ideal = false;            ///< per-flow-queue idealisation
  RoutingMode routing = RoutingMode::kValiant;
  /// One-way node -> grating -> node propagation (datacenter span).
  Time propagation_delay = Time::ns(500);
  /// Server <-> rack-switch link rate (injection and delivery pacing).
  DataRate server_nic = DataRate::gbps(50);
  /// Intra-rack forwarding latency through the electrical ToR.
  Time rack_switch_latency = Time::ns(500);
  std::uint64_t seed = 1;
  /// Safety cap: give up this many slots after the last flow arrival.
  std::int64_t max_drain_slots = 5'000'000;
  /// Run the registered invariant auditors (schedule permutation, queue
  /// bound, cell conservation, reorder consistency) every this many rounds,
  /// plus once at the end of the run. 0 disables periodic audits.
  std::int64_t audit_period_rounds = 64;
  /// Racks that are down for the whole run (§4.5 fault tolerance): the
  /// schedule is built over the alive set, every node excludes them as
  /// relay intermediates, and flows touching them are rejected at
  /// injection (counted in SiriusSimResult::rejected_flows).
  std::vector<NodeId> failed_racks;

  [[nodiscard]] std::int32_t servers() const { return racks * servers_per_rack; }
  [[nodiscard]] std::int32_t uplinks() const {
    return static_cast<std::int32_t>(base_uplinks * uplink_multiplier + 0.5);
  }
  /// Provisioned per-server bandwidth (goodput normalisation): the rack's
  /// base uplink capacity divided among its servers.
  [[nodiscard]] DataRate server_share() const {
    return (slots.line_rate() * base_uplinks) / servers_per_rack;
  }
};

struct SiriusSimResult {
  stats::FctSummary fct;
  double goodput_normalized = 0.0;       ///< Fig. 9b metric
  double worst_node_queue_peak_kb = 0.0; ///< Fig. 10c metric (VQ+FQ bytes)
  double worst_reorder_peak_kb = 0.0;    ///< Fig. 10d metric (per flow)
  std::int64_t slots_simulated = 0;
  std::int64_t cells_delivered = 0;
  std::int64_t incomplete_flows = 0;
  /// Flows rejected because an endpoint rack was failed.
  std::int64_t rejected_flows = 0;
  Time sim_end;
  /// Completion time of every workload flow (Time::infinity() if it did
  /// not finish before the drain cap). Indexed by flow id.
  std::vector<Time> per_flow_completion;

  // Protocol/diagnostic counters (request/grant mode).
  std::int64_t requests_sent = 0;
  std::int64_t grants_issued = 0;
  std::int64_t grants_denied_q = 0;
  std::int64_t grants_released = 0;
  std::int64_t slots_tx_relay = 0;  ///< second-hop transmissions
  std::int64_t slots_tx_first = 0;  ///< first-hop transmissions
};

/// Runs one Sirius experiment over `workload`. Flow endpoints in the
/// workload are servers; they are mapped onto racks by division.
class SiriusSim {
 public:
  SiriusSim(SiriusSimConfig cfg, const workload::Workload& workload);

  SiriusSimResult run();

  const sched::CyclicSchedule& schedule() const { return sched_; }
  /// The invariant auditors this sim registered (see src/check/).
  const check::AuditorRegistry& auditors() const { return auditors_; }

 private:
  struct RxFlow {
    node::ReorderBuffer reorder;
    Time completion = Time::infinity();
    explicit RxFlow(std::int64_t cells) : reorder(cells) {}
  };
  struct Arrival {
    node::Cell cell;
    NodeId to;
  };

  [[nodiscard]] NodeId rack_of(std::int32_t server) const {
    return server / cfg_.servers_per_rack;
  }

  void register_auditors();
  void epoch_boundary(std::int64_t round, Time now);
  void inject_arrivals(Time now);
  void land_arrivals(std::int64_t slot, Time now);
  void transmit_slot(std::int64_t slot, Time now);
  void deliver(const node::Cell& cell, Time now);
  void finish_flow(FlowId flow, Time completion);

  SiriusSimConfig cfg_;
  const workload::Workload& workload_;
  sched::CyclicSchedule sched_;
  Rng rng_;

  std::vector<node::Node> nodes_;
  std::vector<std::unique_ptr<RxFlow>> rx_;      // indexed by flow id
  std::vector<Time> server_free_;                // downlink serialisation
  std::vector<std::vector<Arrival>> in_flight_;  // ring buffer by slot
  std::int64_t prop_slots_;
  Time nic_cell_time_;

  std::size_t next_flow_ = 0;     // next workload flow to inject
  std::int64_t flows_remaining_;  // not yet completed
  Time measure_end_;              // goodput window = [0, last arrival]

  stats::FctTracker fct_;
  stats::GoodputMeter goodput_;
  stats::OccupancyAggregator reorder_peaks_;
  std::vector<Time> completions_;
  check::AuditorRegistry auditors_;
  std::int64_t audit_injected_ = 0;  // cells taken out of any LOCAL buffer
  std::int64_t audit_slot_ = 0;      // slot the permutation auditor inspects
  std::int64_t cells_delivered_ = 0;
  std::int64_t rejected_flows_ = 0;
  std::int64_t stat_requests_ = 0;
  std::int64_t stat_released_ = 0;
  std::int64_t stat_tx_relay_ = 0;
  std::int64_t stat_tx_first_ = 0;
};

}  // namespace sirius::sim
