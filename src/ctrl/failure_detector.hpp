// Failure detection and dissemination (§4.5).
//
// Because the cyclic schedule reconnects every node pair once per round,
// failure detection needs no probes: a node that misses `threshold`
// consecutive expected bursts from a peer marks it failed, and the
// failed-set piggybacks on every outgoing cell, so within one further
// round the whole datacenter knows and stops relaying through the dead
// node ("quick datacenter-wide communication of any detected failures to
// prevent blackholing"). The same mechanism catches *grey* failures —
// links that drop bursts sporadically — after a run of consecutive
// losses.
//
// This module simulates the detector at round granularity and reports
// detection and dissemination latencies. The miss-run state machine itself
// lives in ctrl::PeerHealth, shared with the packet-level sim::SiriusSim
// so both simulations exercise one implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::ctrl {

struct FailureDetectorConfig {
  std::int32_t nodes = 64;
  /// Consecutive missed bursts from a peer before declaring it failed
  /// (must ride out synchronisation hiccups; 3 is ample).
  std::int32_t miss_threshold = 3;
  Time round_duration = Time::ns(600);  ///< schedule round (epoch) length
};

struct DetectionResult {
  /// Round (after the failure) in which the first node declared it.
  std::int64_t first_detection_round = -1;
  /// Round in which every alive node knew about the failure.
  std::int64_t all_aware_round = -1;
  Time detection_latency;      ///< first detection, in time
  Time dissemination_latency;  ///< everyone aware, in time
};

/// Round-synchronous simulation of the detector.
class FailureDetectorSim {
 public:
  FailureDetectorSim(FailureDetectorConfig cfg, std::uint64_t seed);

  /// Hard failure: node `victim` goes silent at round 0; returns the
  /// detection/dissemination latencies.
  DetectionResult run_hard_failure(NodeId victim,
                                   std::int64_t max_rounds = 1'000);

  /// Grey failure: the (src -> dst) direction of one link drops each burst
  /// with probability `loss`. Returns the round at which dst declares the
  /// link (expected to grow as loss decreases), or -1 if not within
  /// max_rounds.
  std::int64_t run_grey_failure(NodeId src, NodeId dst, double loss,
                                std::int64_t max_rounds = 100'000);

 private:
  FailureDetectorConfig cfg_;
  Rng rng_;
};

}  // namespace sirius::ctrl
