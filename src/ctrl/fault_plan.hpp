// Declarative fault timeline for the simulator (§4.5 fault tolerance).
//
// A FaultPlan is a seed-independent description of *what goes wrong and
// when*: hard rack failures (with optional recovery), and grey links that
// drop each burst of one directed pair with a fixed probability inside a
// time window. The plan is ground truth — the simulated nodes never read
// it; they must discover every fault in-band through missed schedule
// bursts (ctrl::PeerHealth) and piggybacked failed-set dissemination
// (ctrl::MembershipView). Keeping the timeline declarative makes fault
// runs reproducible: a (config, seed, plan) triple fully determines the
// experiment, including the Bernoulli draws of every grey link.
//
// Plans are built from code (fail_rack / grey_link) or parsed from the
// sirius_cli --fault / --grey syntax (see parse_fault / parse_grey).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::ctrl {

/// Hard fail-stop: the rack transmits, receives and relays nothing in
/// [at, recover_at). An infinite recover_at means it never comes back.
struct RackFault {
  NodeId rack = 0;
  Time at;
  Time recover_at = Time::infinity();
};

/// Grey failure: each burst on the directed link src -> dst is lost with
/// probability `loss` while `from <= t < until`. A bounded window with
/// loss 1.0 models a transient total outage of one link.
struct GreyLink {
  NodeId src = 0;
  NodeId dst = 0;
  double loss = 0.0;
  Time from;
  Time until = Time::infinity();
};

class FaultPlan {
 public:
  FaultPlan() = default;

  void fail_rack(NodeId rack, Time at, Time recover_at = Time::infinity());
  void grey_link(NodeId src, NodeId dst, double loss,
                 Time from = Time::zero(), Time until = Time::infinity());

  [[nodiscard]] bool empty() const {
    return rack_faults_.empty() && grey_links_.empty();
  }
  [[nodiscard]] const std::vector<RackFault>& rack_faults() const {
    return rack_faults_;
  }
  [[nodiscard]] const std::vector<GreyLink>& grey_links() const {
    return grey_links_;
  }

  /// Ground truth: is `rack` down (fail-stopped) at time `t`?
  [[nodiscard]] bool rack_down(NodeId rack, Time t) const;

  /// Burst loss probability on the directed link src -> dst at `t`
  /// (0 when the link is clean; overlapping windows combine as
  /// independent loss processes).
  [[nodiscard]] double link_loss(NodeId src, NodeId dst, Time t) const;

  /// True when some grey window (at any time) covers src -> dst; a cheap
  /// gate so the per-slot hot path can skip link_loss for clean links.
  [[nodiscard]] bool link_ever_grey(NodeId src, NodeId dst) const;

  /// True when the plan needs mid-run machinery: any rack fault with
  /// at > 0 or a recovery, or any grey link. A plan of pure t=0
  /// never-recovering failures is the static `failed_racks` case.
  [[nodiscard]] bool dynamic() const;

  /// Racks that are down at t = 0 (initial schedule membership).
  [[nodiscard]] std::vector<NodeId> down_at_start() const;

  /// Earliest disruption that the fabric must react to mid-run: the
  /// smallest positive rack-fault time or grey-window start. Infinite for
  /// static-only or empty plans. Anchors the recovery-curve analysis.
  [[nodiscard]] Time first_disruption() const;

  /// Validates every event against an N-rack network: rack ids in
  /// [0, racks), no duplicate fault for one rack, recovery after failure,
  /// loss in (0, 1], grey windows ordered and src != dst. Returns a
  /// human-readable error, or nullopt when the plan is well-formed.
  [[nodiscard]] std::optional<std::string> validate(std::int32_t racks) const;

  /// Parses one or more comma-separated hard-failure specs
  /// "RACK@T_US[+DURATION_US]": "3@120" fails rack 3 at 120 us forever,
  /// "3@120+500" recovers it 500 us later, "3@0" is a static failure.
  /// Returns an error message, or nullopt on success.
  std::optional<std::string> parse_fault(const std::string& spec);

  /// Parses one or more comma-separated grey-link specs
  /// "SRC>DST@LOSS[@FROM_US-UNTIL_US]": "2>7@0.05" drops 5 % of bursts
  /// from rack 2 to rack 7 for the whole run, "2>7@1.0@100-400" blacks
  /// the link out between 100 us and 400 us. Returns an error message,
  /// or nullopt on success.
  std::optional<std::string> parse_grey(const std::string& spec);

 private:
  std::vector<RackFault> rack_faults_;
  std::vector<GreyLink> grey_links_;
};

}  // namespace sirius::ctrl
