#include "ctrl/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace sirius::ctrl {

namespace {

std::string fmt_error(const char* what, const std::string& spec) {
  return std::string(what) + " in \"" + spec + "\"";
}

/// Splits a comma-separated list into trimmed, non-empty pieces.
std::vector<std::string> split_specs(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    std::size_t a = pos;
    std::size_t b = end;
    while (a < b && s[a] == ' ') ++a;
    while (b > a && s[b - 1] == ' ') --b;
    if (b > a) out.push_back(s.substr(a, b - a));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool parse_int(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_num(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

void FaultPlan::fail_rack(NodeId rack, Time at, Time recover_at) {
  rack_faults_.push_back(RackFault{rack, at, recover_at});
}

void FaultPlan::grey_link(NodeId src, NodeId dst, double loss, Time from,
                          Time until) {
  grey_links_.push_back(GreyLink{src, dst, loss, from, until});
}

bool FaultPlan::rack_down(NodeId rack, Time t) const {
  for (const RackFault& f : rack_faults_) {
    if (f.rack == rack && t >= f.at && t < f.recover_at) return true;
  }
  return false;
}

double FaultPlan::link_loss(NodeId src, NodeId dst, Time t) const {
  double pass = 1.0;
  for (const GreyLink& g : grey_links_) {
    if (g.src == src && g.dst == dst && t >= g.from && t < g.until) {
      pass *= 1.0 - g.loss;
    }
  }
  return 1.0 - pass;
}

bool FaultPlan::link_ever_grey(NodeId src, NodeId dst) const {
  for (const GreyLink& g : grey_links_) {
    if (g.src == src && g.dst == dst) return true;
  }
  return false;
}

bool FaultPlan::dynamic() const {
  if (!grey_links_.empty()) return true;
  for (const RackFault& f : rack_faults_) {
    if (f.at > Time::zero() || !f.recover_at.is_infinite()) return true;
  }
  return false;
}

std::vector<NodeId> FaultPlan::down_at_start() const {
  std::vector<NodeId> out;
  for (const RackFault& f : rack_faults_) {
    if (f.at <= Time::zero() && f.recover_at > Time::zero()) {
      out.push_back(f.rack);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Time FaultPlan::first_disruption() const {
  Time first = Time::infinity();
  for (const RackFault& f : rack_faults_) {
    if (f.at > Time::zero()) first = std::min(first, f.at);
  }
  for (const GreyLink& g : grey_links_) {
    first = std::min(first, std::max(g.from, Time::zero()));
  }
  return first;
}

std::optional<std::string> FaultPlan::validate(std::int32_t racks) const {
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(racks), 0);
  for (const RackFault& f : rack_faults_) {
    if (f.rack < 0 || f.rack >= racks) {
      return "fault rack id " + std::to_string(f.rack) +
             " outside the " + std::to_string(racks) + "-rack network";
    }
    if (seen[static_cast<std::size_t>(f.rack)] != 0) {
      return "duplicate fault for rack " + std::to_string(f.rack);
    }
    seen[static_cast<std::size_t>(f.rack)] = 1;
    if (f.at < Time::zero()) {
      return "fault for rack " + std::to_string(f.rack) +
             " scheduled before t=0";
    }
    if (f.recover_at <= f.at) {
      return "rack " + std::to_string(f.rack) +
             " recovers at or before its failure";
    }
  }
  for (const GreyLink& g : grey_links_) {
    if (g.src < 0 || g.src >= racks || g.dst < 0 || g.dst >= racks) {
      return "grey link " + std::to_string(g.src) + "->" +
             std::to_string(g.dst) + " outside the " +
             std::to_string(racks) + "-rack network";
    }
    if (g.src == g.dst) {
      return "grey link " + std::to_string(g.src) + "->" +
             std::to_string(g.dst) + " loops onto itself";
    }
    if (!(g.loss > 0.0) || g.loss > 1.0) {
      return "grey link loss must be in (0, 1]";
    }
    if (g.until <= g.from || g.from < Time::zero()) {
      return "grey link window is empty or starts before t=0";
    }
  }
  return std::nullopt;
}

std::optional<std::string> FaultPlan::parse_fault(const std::string& spec) {
  for (const std::string& one : split_specs(spec)) {
    const std::size_t at = one.find('@');
    if (at == std::string::npos) {
      return fmt_error("expected RACK@T_US[+DURATION_US]", one);
    }
    std::int64_t rack = 0;
    if (!parse_int(one.substr(0, at), rack)) {
      return fmt_error("bad rack id", one);
    }
    std::string times = one.substr(at + 1);
    const std::size_t plus = times.find('+');
    double fail_us = 0.0;
    double recover_after_us = -1.0;
    if (plus != std::string::npos) {
      if (!parse_num(times.substr(plus + 1), recover_after_us) ||
          recover_after_us <= 0.0) {
        return fmt_error("bad recovery duration", one);
      }
      times = times.substr(0, plus);
    }
    if (!parse_num(times, fail_us) || fail_us < 0.0) {
      return fmt_error("bad failure time", one);
    }
    const Time fail_at = Time::from_ns(fail_us * 1e3);
    const Time recover_at = recover_after_us < 0.0
                                ? Time::infinity()
                                : fail_at + Time::from_ns(recover_after_us * 1e3);
    fail_rack(static_cast<NodeId>(rack), fail_at, recover_at);
  }
  return std::nullopt;
}

std::optional<std::string> FaultPlan::parse_grey(const std::string& spec) {
  for (const std::string& one : split_specs(spec)) {
    const std::size_t arrow = one.find('>');
    const std::size_t at1 = one.find('@');
    if (arrow == std::string::npos || at1 == std::string::npos ||
        arrow > at1) {
      return fmt_error("expected SRC>DST@LOSS[@FROM_US-UNTIL_US]", one);
    }
    std::int64_t src = 0;
    std::int64_t dst = 0;
    if (!parse_int(one.substr(0, arrow), src) ||
        !parse_int(one.substr(arrow + 1, at1 - arrow - 1), dst)) {
      return fmt_error("bad rack id", one);
    }
    std::string rest = one.substr(at1 + 1);
    const std::size_t at2 = rest.find('@');
    Time from = Time::zero();
    Time until = Time::infinity();
    if (at2 != std::string::npos) {
      const std::string window = rest.substr(at2 + 1);
      rest = rest.substr(0, at2);
      const std::size_t dash = window.find('-');
      double from_us = 0.0;
      double until_us = 0.0;
      if (dash == std::string::npos ||
          !parse_num(window.substr(0, dash), from_us) ||
          !parse_num(window.substr(dash + 1), until_us)) {
        return fmt_error("bad grey window (FROM_US-UNTIL_US)", one);
      }
      from = Time::from_ns(from_us * 1e3);
      until = Time::from_ns(until_us * 1e3);
    }
    double loss = 0.0;
    if (!parse_num(rest, loss)) return fmt_error("bad loss probability", one);
    grey_link(static_cast<NodeId>(src), static_cast<NodeId>(dst), loss, from,
              until);
  }
  return std::nullopt;
}

}  // namespace sirius::ctrl
