#include "ctrl/peer_health.hpp"

#include <algorithm>

#include "common/invariant.hpp"

namespace sirius::ctrl {

PeerHealth::PeerHealth(std::int32_t peers, std::int32_t miss_threshold)
    : threshold_(miss_threshold),
      misses_(static_cast<std::size_t>(peers), 0),
      declared_(static_cast<std::size_t>(peers), 0) {
  SIRIUS_INVARIANT(peers >= 1, "PeerHealth needs at least one peer, got %d",
                   peers);
  SIRIUS_INVARIANT(miss_threshold >= 1,
                   "miss_threshold must be >= 1, got %d", miss_threshold);
}

void PeerHealth::record_hit(NodeId peer) {
  SIRIUS_INVARIANT(peer >= 0 && peer < peers(),
                   "PeerHealth hit for peer %d outside [0, %d)", peer,
                   peers());
  if (peer < 0 || peer >= peers()) return;
  misses_[static_cast<std::size_t>(peer)] = 0;
  declared_[static_cast<std::size_t>(peer)] = 0;
}

bool PeerHealth::record_miss(NodeId peer) {
  SIRIUS_INVARIANT(peer >= 0 && peer < peers(),
                   "PeerHealth miss for peer %d outside [0, %d)", peer,
                   peers());
  if (peer < 0 || peer >= peers()) return false;
  const auto i = static_cast<std::size_t>(peer);
  ++stat_misses_;
  if (declared_[i] != 0) return false;  // already convicted; run saturates
  if (++misses_[i] >= threshold_) {
    declared_[i] = 1;
    ++stat_declarations_;
    return true;
  }
  return false;
}

bool PeerHealth::declared(NodeId peer) const {
  if (peer < 0 || peer >= peers()) return false;
  return declared_[static_cast<std::size_t>(peer)] != 0;
}

std::int32_t PeerHealth::misses(NodeId peer) const {
  if (peer < 0 || peer >= peers()) return 0;
  return misses_[static_cast<std::size_t>(peer)];
}

void PeerHealth::reset(NodeId peer) {
  SIRIUS_INVARIANT(peer >= 0 && peer < peers(),
                   "PeerHealth reset for peer %d outside [0, %d)", peer,
                   peers());
  if (peer < 0 || peer >= peers()) return;
  misses_[static_cast<std::size_t>(peer)] = 0;
  declared_[static_cast<std::size_t>(peer)] = 0;
}

MembershipView::MembershipView(std::int32_t racks, NodeId owner,
                               std::int32_t quorum)
    : racks_(racks),
      owner_(owner),
      quorum_(quorum),
      links_(static_cast<std::size_t>(racks) * static_cast<std::size_t>(racks)),
      down_votes_(static_cast<std::size_t>(racks), 0),
      merged_rev_(static_cast<std::size_t>(racks), 0) {
  SIRIUS_INVARIANT(racks >= 2, "MembershipView needs >= 2 racks, got %d",
                   racks);
  SIRIUS_INVARIANT(owner >= 0 && owner < racks,
                   "MembershipView owner %d outside [0, %d)", owner, racks);
  SIRIUS_INVARIANT(quorum >= 1 && quorum < racks,
                   "MembershipView quorum %d outside [1, %d)", quorum, racks);
}

void MembershipView::report_link(NodeId peer, bool down) {
  SIRIUS_INVARIANT(peer >= 0 && peer < racks_,
                   "link report about peer %d outside [0, %d)", peer, racks_);
  if (peer < 0 || peer >= racks_) return;
  LinkState& cell = links_[idx(owner_, peer)];
  if ((cell.down != 0) == down) return;
  cell.down = down ? 1 : 0;
  ++cell.version;
  down_votes_[static_cast<std::size_t>(peer)] += down ? 1 : -1;
  ++revision_;
}

bool MembershipView::merge_from(const MembershipView& other) {
  SIRIUS_INVARIANT(other.racks_ == racks_,
                   "merging views of different fabrics (%d vs %d racks)",
                   other.racks_, racks_);
  if (other.racks_ != racks_) return false;
  const auto from = static_cast<std::size_t>(other.owner_);
  if (merged_rev_[from] == other.revision_) return false;  // nothing new
  bool changed = false;
  for (NodeId obs = 0; obs < racks_; ++obs) {
    if (obs == owner_) continue;  // sole writer of our own row
    for (NodeId peer = 0; peer < racks_; ++peer) {
      const LinkState& theirs = other.links_[idx(obs, peer)];
      LinkState& ours = links_[idx(obs, peer)];
      if (theirs.version <= ours.version) continue;
      if (theirs.down != ours.down) {
        down_votes_[static_cast<std::size_t>(peer)] +=
            theirs.down != 0 ? 1 : -1;
      }
      ours = theirs;
      changed = true;
    }
  }
  merged_rev_[from] = other.revision_;
  if (changed) ++revision_;
  return changed;
}

bool MembershipView::link_down(NodeId observer, NodeId peer) const {
  if (observer < 0 || observer >= racks_ || peer < 0 || peer >= racks_) {
    return false;
  }
  return links_[idx(observer, peer)].down != 0;
}

bool MembershipView::node_down(NodeId node) const {
  if (node < 0 || node >= racks_) return false;
  std::int32_t votes = down_votes_[static_cast<std::size_t>(node)];
  // A node's opinion of its own inbound links is not a vote against it.
  if (links_[idx(node, node)].down != 0) --votes;
  return votes >= quorum_;
}

std::vector<NodeId> MembershipView::down_set() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < racks_; ++n) {
    if (node_down(n)) out.push_back(n);
  }
  return out;
}

void MembershipView::admit(NodeId node) {
  SIRIUS_INVARIANT(node >= 0 && node < racks_,
                   "admit of node %d outside [0, %d)", node, racks_);
  if (node < 0 || node >= racks_) return;
  for (NodeId other = 0; other < racks_; ++other) {
    for (const std::size_t i : {idx(other, node), idx(node, other)}) {
      LinkState& cell = links_[i];
      cell.down = 0;
      ++cell.version;  // stale piggybacked copies must lose future merges
    }
  }
  // Rebuild the vote tally from scratch; admit touched two full lines.
  std::fill(down_votes_.begin(), down_votes_.end(), 0);
  for (NodeId obs = 0; obs < racks_; ++obs) {
    for (NodeId peer = 0; peer < racks_; ++peer) {
      if (links_[idx(obs, peer)].down != 0) {
        ++down_votes_[static_cast<std::size_t>(peer)];
      }
    }
  }
  ++revision_;
}

void PeerHealth::serialize(ckpt::Writer& w) const {
  w.i32(threshold_);
  w.vec_i32(misses_);
  w.vec_u8(declared_);
  w.i64(stat_misses_);
  w.i64(stat_declarations_);
}

bool PeerHealth::restore(ckpt::Reader& r) {
  const std::int32_t threshold = r.i32();
  auto misses = r.vec_i32("peer-health miss runs");
  auto declared = r.vec_u8("peer-health declarations");
  const std::int64_t stat_misses = r.i64();
  const std::int64_t stat_declarations = r.i64();
  if (!r.ok()) return false;
  if (threshold < 1 || misses.size() != declared.size() ||
      stat_misses < 0 || stat_declarations < 0) {
    r.fail("peer-health state out of range");
    return false;
  }
  for (const std::int32_t m : misses) {
    if (m < 0 || m > threshold) {
      r.fail("peer-health miss run outside [0, threshold]");
      return false;
    }
  }
  threshold_ = threshold;
  misses_ = std::move(misses);
  declared_ = std::move(declared);
  stat_misses_ = stat_misses;
  stat_declarations_ = stat_declarations;
  return true;
}

void MembershipView::serialize(ckpt::Writer& w) const {
  w.i32(racks_);
  w.i32(owner_);
  w.i32(quorum_);
  w.u64(revision_);
  w.u64(links_.size());
  for (const LinkState& cell : links_) {
    w.u32(cell.version);
    w.u8(cell.down);
  }
  w.vec_i32(down_votes_);
  w.vec_u64(merged_rev_);
}

bool MembershipView::restore(ckpt::Reader& r) {
  const std::int32_t racks = r.i32();
  const NodeId owner = r.i32();
  const std::int32_t quorum = r.i32();
  const std::uint64_t revision = r.u64();
  const std::size_t n_links = r.count(5, "membership link matrix");
  std::vector<LinkState> links(n_links);
  for (LinkState& cell : links) {
    cell.version = r.u32();
    cell.down = r.u8();
  }
  auto down_votes = r.vec_i32("membership down votes");
  auto merged_rev = r.vec_u64("membership merge cursors");
  if (!r.ok()) return false;
  const auto racks_sz = static_cast<std::size_t>(racks > 0 ? racks : 0);
  if (racks < 1 || owner < 0 || owner >= racks || quorum < 1 ||
      revision == 0 || links.size() != racks_sz * racks_sz ||
      down_votes.size() != racks_sz || merged_rev.size() != racks_sz) {
    r.fail("membership view geometry out of range");
    return false;
  }
  racks_ = racks;
  owner_ = owner;
  quorum_ = quorum;
  revision_ = revision;
  links_ = std::move(links);
  down_votes_ = std::move(down_votes);
  merged_rev_ = std::move(merged_rev);
  return true;
}

}  // namespace sirius::ctrl
