#include "ctrl/failure_detector.hpp"

#include <cassert>

#include "ctrl/peer_health.hpp"

namespace sirius::ctrl {

FailureDetectorSim::FailureDetectorSim(FailureDetectorConfig cfg,
                                       std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  assert(cfg_.nodes >= 2);
  assert(cfg_.miss_threshold >= 1);
}

DetectionResult FailureDetectorSim::run_hard_failure(NodeId victim,
                                                     std::int64_t max_rounds) {
  // One miss run per observer, all tracking the victim: index the shared
  // PeerHealth by observer id (each observer of a hard failure watches
  // exactly one silent peer).
  PeerHealth health(cfg_.nodes, cfg_.miss_threshold);
  const auto n = static_cast<std::size_t>(cfg_.nodes);
  std::vector<std::uint8_t> aware(n, 0);

  DetectionResult out;
  for (std::int64_t round = 1; round <= max_rounds; ++round) {
    // Every alive pair exchanges one burst per round. Observers of the
    // victim miss theirs; everyone else also carries the failed-set.
    bool newly_detected = false;
    for (NodeId obs = 0; obs < cfg_.nodes; ++obs) {
      if (obs == victim || aware[static_cast<std::size_t>(obs)]) continue;
      if (health.record_miss(obs)) {
        aware[static_cast<std::size_t>(obs)] = 1;
        newly_detected = true;
      }
    }
    if (newly_detected && out.first_detection_round < 0) {
      out.first_detection_round = round;
    }
    // Dissemination: any aware node informs every peer it talks to this
    // round — i.e. all of them, since one round connects all pairs. (The
    // direct observers all cross the threshold simultaneously here; with
    // per-pair phase offsets they straggle by at most one round.)
    if (out.first_detection_round >= 0) {
      bool all = true;
      for (NodeId i = 0; i < cfg_.nodes; ++i) {
        if (i != victim && !aware[static_cast<std::size_t>(i)]) all = false;
      }
      if (all) {
        out.all_aware_round = round;
      } else {
        for (NodeId i = 0; i < cfg_.nodes; ++i) {
          if (i != victim) aware[static_cast<std::size_t>(i)] = 1;
        }
        out.all_aware_round = round + 1;
      }
      out.detection_latency =
          cfg_.round_duration * out.first_detection_round;
      out.dissemination_latency = cfg_.round_duration * out.all_aware_round;
      return out;
    }
  }
  return out;
}

std::int64_t FailureDetectorSim::run_grey_failure(NodeId src, NodeId dst,
                                                  double loss,
                                                  std::int64_t max_rounds) {
  assert(src != dst);
  assert(loss > 0.0 && loss <= 1.0);
  // dst watches the single link src -> dst; one Bernoulli draw per round.
  PeerHealth health(1, cfg_.miss_threshold);
  for (std::int64_t round = 1; round <= max_rounds; ++round) {
    if (rng_.chance(loss)) {
      if (health.record_miss(0)) return round;
    } else {
      health.record_hit(0);
    }
  }
  return -1;
}

}  // namespace sirius::ctrl
