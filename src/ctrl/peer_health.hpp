// Shared in-band failure-detection state (§4.5).
//
// Because the cyclic schedule reconnects every node pair once per round,
// failure detection needs no probes: every expected burst that does not
// arrive is evidence. Two small pieces implement the paper's mechanism and
// are shared by the round-granularity ctrl::FailureDetectorSim and the
// packet-level sim::SiriusSim so there is exactly one detector:
//
//   * PeerHealth — one observer's consecutive-miss counters, one per peer.
//     `miss_threshold` consecutive missed bursts declare the peer's link
//     dead; a single heard burst resets the run (this is what lets the
//     same code catch grey links: a p-loss link needs a geometric-tail
//     run of misses, so detection latency grows as loss falls).
//
//   * MembershipView — one node's versioned opinion matrix over directed
//     links, merged peer-to-peer by piggybacking on every outgoing cell.
//     Each observer is the only writer of its own row ("I stopped hearing
//     X"); rows merge by version so stale third-hand reports never
//     overwrite fresher ones. A node counts as *down* when at least
//     `quorum` distinct observers report its transmissions lost — so one
//     locally-grey link cannot evict a healthy rack, but a silent rack is
//     convicted by everyone at once.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/units.hpp"

namespace sirius::ctrl {

/// One observer's consecutive-miss run per peer (the §4.5 detector).
class PeerHealth : public ckpt::Snapshottable {
 public:
  PeerHealth(std::int32_t peers, std::int32_t miss_threshold);

  /// An expected burst from `peer` arrived: the miss run resets.
  void record_hit(NodeId peer);

  /// An expected burst from `peer` did not arrive. Returns true exactly
  /// when this miss is the `miss_threshold`-th consecutive one — i.e. the
  /// moment this observer declares the peer's link dead.
  bool record_miss(NodeId peer);

  /// Has this observer's miss run for `peer` crossed the threshold (and
  /// not been reset by a hit or reset() since)?
  [[nodiscard]] bool declared(NodeId peer) const;

  [[nodiscard]] std::int32_t misses(NodeId peer) const;
  [[nodiscard]] std::int32_t threshold() const { return threshold_; }
  /// Cumulative misses recorded over this detector's lifetime (telemetry;
  /// unlike misses(), never reset by a hit).
  [[nodiscard]] std::int64_t stat_misses() const { return stat_misses_; }
  /// Link-down declarations this observer has made (threshold crossings).
  [[nodiscard]] std::int64_t stat_declarations() const {
    return stat_declarations_;
  }
  [[nodiscard]] std::int32_t peers() const {
    return static_cast<std::int32_t>(misses_.size());
  }

  /// Forget everything about `peer` (administrative rejoin).
  void reset(NodeId peer);

  /// Snapshottable: miss runs, declarations and lifetime stats, so a
  /// restored detector is mid-run exactly where the original was.
  void serialize(ckpt::Writer& w) const override;
  bool restore(ckpt::Reader& r) override;

 private:
  std::int32_t threshold_;
  std::vector<std::int32_t> misses_;
  std::vector<std::uint8_t> declared_;
  std::int64_t stat_misses_ = 0;
  std::int64_t stat_declarations_ = 0;
};

/// One node's view of every directed link, merged in-band (§4.5
/// "failed-set piggybacked on every outgoing cell").
class MembershipView : public ckpt::Snapshottable {
 public:
  /// `quorum`: distinct observers required to convict a node (>= 1).
  MembershipView(std::int32_t racks, NodeId owner, std::int32_t quorum);

  /// The owner's own verdict about the link peer -> owner. Bumps the
  /// entry's version so the report wins every future merge against older
  /// opinions. No-op if the verdict is unchanged.
  void report_link(NodeId peer, bool down);

  /// Folds another node's view into this one: for every directed link the
  /// higher version wins. Returns true when anything changed. O(1) when
  /// `other` has not changed since the last merge from the same owner.
  bool merge_from(const MembershipView& other);

  /// The owner's verdict about the link peer -> owner, as last reported.
  [[nodiscard]] bool link_down(NodeId observer, NodeId peer) const;

  /// Quorum-derived node status: down when at least `quorum` observers
  /// (excluding the node itself) currently report its transmissions lost.
  [[nodiscard]] bool node_down(NodeId node) const;

  /// All nodes currently down per node_down(), ascending.
  [[nodiscard]] std::vector<NodeId> down_set() const;

  /// Administrative rejoin of `node`: clears every verdict *by* and
  /// *about* it, with version bumps so stale piggybacked copies of the
  /// old verdicts lose every future merge. Called on all views at one
  /// round boundary by the control plane (§4.5 leaves rejoin to
  /// provisioning; in-band rejoin is impossible because a non-member has
  /// no schedule slots).
  void admit(NodeId node);

  [[nodiscard]] NodeId owner() const { return owner_; }
  [[nodiscard]] std::int32_t racks() const { return racks_; }
  [[nodiscard]] std::int32_t quorum() const { return quorum_; }

  /// Monotone revision: bumps on every observable change. Equal revisions
  /// from the same owner mean identical content (merge short-circuit).
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// Snapshottable: the full versioned opinion matrix, vote tallies and
  /// merge short-circuit cursors (revisions included — they decide future
  /// merge outcomes, so they must survive a restore bit-exactly).
  void serialize(ckpt::Writer& w) const override;
  bool restore(ckpt::Reader& r) override;

 private:
  struct LinkState {
    std::uint32_t version = 0;
    std::uint8_t down = 0;
  };

  [[nodiscard]] std::size_t idx(NodeId observer, NodeId peer) const {
    return static_cast<std::size_t>(observer) * static_cast<std::size_t>(racks_) +
           static_cast<std::size_t>(peer);
  }

  std::int32_t racks_;
  NodeId owner_;
  std::int32_t quorum_;
  std::uint64_t revision_ = 1;
  std::vector<LinkState> links_;           // observer-major matrix
  std::vector<std::int32_t> down_votes_;   // per node: observers convicting it
  std::vector<std::uint64_t> merged_rev_;  // last revision merged, per owner
};

}  // namespace sirius::ctrl
