#include "sync/clock_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/invariant.hpp"

namespace sirius::sync {

LocalClock::LocalClock(const ClockConfig& cfg, Rng& rng)
    : freq_error_(rng.uniform(-cfg.initial_freq_error_ppm,
                              cfg.initial_freq_error_ppm) *
                  1e-6),
      walk_intensity_(cfg.freq_walk_ppm_per_sqrt_s) {}

void LocalClock::advance(Time dt, Rng& rng) {
  const double dt_s = dt.to_sec();
  // Phase accumulates frequency error: 1 ppm over 1 us = 1 ps.
  phase_ps_ += freq_error_ * static_cast<double>(dt.picoseconds());
  // Frequency random walk ~ N(0, intensity^2 * dt).
  if (walk_intensity_ > 0.0 && dt_s > 0.0) {
    NormalDistribution walk(0.0, walk_intensity_ * std::sqrt(dt_s) * 1e-6);
    freq_error_ += walk.sample(rng);
  }
  SIRIUS_INVARIANT(std::isfinite(phase_ps_) && std::isfinite(freq_error_),
                   "clock state degenerated: phase %g ps, freq error %g",
                   phase_ps_, freq_error_);
}

void LocalClock::apply_frequency_correction(double delta, double max_step) {
  SIRIUS_INVARIANT(max_step >= 0.0,
                   "frequency filter with negative max_step %g", max_step);
  if (max_step < 0.0) max_step = 0.0;
  freq_error_ -= std::clamp(delta, -max_step, max_step);
}

}  // namespace sirius::sync
