#include "sync/delay_calibration.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sirius::sync {

CalibrationResult DelayCalibrator::calibrate(
    const std::vector<double>& fiber_length_m, Rng& rng) const {
  assert(!fiber_length_m.empty());
  CalibrationResult out;
  out.estimated_delay.reserve(fiber_length_m.size());

  NormalDistribution noise(0.0, cfg_.measurement_noise_ps);
  for (double meters : fiber_length_m) {
    const Time truth = propagation_delay(meters);
    // Average several round-trip measurements; each has independent noise
    // and the one-way delay is half the round trip (noise halves too).
    double sum_ps = 0.0;
    for (std::int32_t k = 0; k < cfg_.measurements_per_node; ++k) {
      const double rtt_ps =
          2.0 * static_cast<double>(truth.picoseconds()) + noise.sample(rng);
      sum_ps += rtt_ps / 2.0;
    }
    out.estimated_delay.push_back(Time::ps(static_cast<std::int64_t>(
        sum_ps / cfg_.measurements_per_node + 0.5)));
  }

  const Time max_est =
      *std::max_element(out.estimated_delay.begin(), out.estimated_delay.end());
  out.epoch_start_offset.reserve(fiber_length_m.size());
  for (const Time est : out.estimated_delay) {
    out.epoch_start_offset.push_back(max_est - est);
  }

  // With perfect calibration, node i transmitting at (origin - offset_i)
  // reaches the AWGR at origin + max_delay for all i. The residual error is
  // the spread of (true_delay_i - estimated_delay_i) across nodes.
  double lo = 1e300, hi = -1e300;
  for (std::size_t i = 0; i < fiber_length_m.size(); ++i) {
    const double resid =
        static_cast<double>(propagation_delay(fiber_length_m[i]).picoseconds() -
                            out.estimated_delay[i].picoseconds());
    lo = std::min(lo, resid);
    hi = std::max(hi, resid);
  }
  out.worst_alignment_error_ps = hi - lo;
  return out;
}

}  // namespace sirius::sync
