#include "sync/sync_protocol.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "check/auditors.hpp"
#include "common/invariant.hpp"

namespace sirius::sync {

SyncProtocolSim::SyncProtocolSim(SyncProtocolConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  assert(cfg_.nodes >= 2);
  clocks_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (std::int32_t i = 0; i < cfg_.nodes; ++i) {
    clocks_.emplace_back(cfg_.clock, rng_);
  }
  failed_.assign(static_cast<std::size_t>(cfg_.nodes), false);
  fail_at_epoch_.assign(static_cast<std::size_t>(cfg_.nodes), -1);
}

void SyncProtocolSim::fail_node_at(std::int32_t node, std::int64_t epoch) {
  fail_at_epoch_.at(static_cast<std::size_t>(node)) = epoch;
}

std::int32_t SyncProtocolSim::next_alive_leader(std::int32_t from) const {
  for (std::int32_t k = 0; k < cfg_.nodes; ++k) {
    const std::int32_t cand = (from + k) % cfg_.nodes;
    if (!failed_[static_cast<std::size_t>(cand)]) return cand;
  }
  return -1;
}

SyncRunResult SyncProtocolSim::run(std::int64_t epochs,
                                   std::int64_t warmup_epochs) {
  SyncRunResult result;
  NormalDistribution phase_noise(0.0, cfg_.clock.phase_noise_ps);
  std::int32_t leader_slot = 0;
  std::int32_t last_leader = -1;
  // Post-convergence clock audit (§4.4): only armed while corrections are
  // actually applied — free-running control experiments diverge by design.
  const bool audit_offsets = cfg_.pll_gain > 0.0;
  std::vector<double> offsets_scratch;
  offsets_scratch.reserve(static_cast<std::size_t>(cfg_.nodes));

  for (std::int64_t e = 0; e < epochs; ++e) {
    // Inject scheduled failures.
    for (std::int32_t i = 0; i < cfg_.nodes; ++i) {
      if (fail_at_epoch_[static_cast<std::size_t>(i)] == e) {
        failed_[static_cast<std::size_t>(i)] = true;
      }
    }

    // All oscillators drift for one epoch.
    for (std::int32_t i = 0; i < cfg_.nodes; ++i) {
      if (!failed_[static_cast<std::size_t>(i)]) {
        clocks_[static_cast<std::size_t>(i)].advance(cfg_.epoch, rng_);
      }
    }

    // Leader rotation: advance the rotor every tenure; skip failed nodes
    // (a dead leader's silence is detected within one epoch, §4.4).
    if (e % cfg_.leader_tenure_epochs == 0) {
      leader_slot = (leader_slot + 1) % cfg_.nodes;
    }
    const std::int32_t leader = next_alive_leader(leader_slot);
    SIRIUS_INVARIANT(leader >= 0, "all %d nodes failed by epoch %lld",
                     cfg_.nodes, static_cast<long long>(e));
    if (leader < 0) break;
    if (last_leader != -1 && leader != last_leader &&
        failed_[static_cast<std::size_t>(last_leader)]) {
      ++result.leader_failovers;
    }
    last_leader = leader;

    // Every alive follower recovers the leader clock from the epoch burst
    // and slews phase and frequency towards it.
    auto& lead = clocks_[static_cast<std::size_t>(leader)];
    for (std::int32_t i = 0; i < cfg_.nodes; ++i) {
      if (i == leader || failed_[static_cast<std::size_t>(i)]) continue;
      auto& c = clocks_[static_cast<std::size_t>(i)];
      const double measured_phase = (c.phase_offset_ps() -
                                     lead.phase_offset_ps()) +
                                    phase_noise.sample(rng_);
      const double measured_freq = c.freq_error() - lead.freq_error();
      c.apply_phase_correction(cfg_.pll_gain * measured_phase);
      c.apply_frequency_correction(cfg_.pll_gain * measured_freq,
                                   cfg_.max_freq_step);
    }

    // Sample pairwise offsets among alive nodes.
    double worst = 0.0;
    double sum = 0.0;
    std::int64_t pairs = 0;
    for (std::int32_t i = 0; i < cfg_.nodes; ++i) {
      if (failed_[static_cast<std::size_t>(i)]) continue;
      for (std::int32_t j = i + 1; j < cfg_.nodes; ++j) {
        if (failed_[static_cast<std::size_t>(j)]) continue;
        const double d =
            std::fabs(clocks_[static_cast<std::size_t>(i)].phase_offset_ps() -
                      clocks_[static_cast<std::size_t>(j)].phase_offset_ps());
        worst = std::max(worst, d);
        sum += d;
        ++pairs;
      }
    }
    if (result.convergence_epochs < 0 && worst < 10.0) {
      result.convergence_epochs = e;
    }
    if (audit_offsets && result.convergence_epochs >= 0 &&
        e > result.convergence_epochs) {
      offsets_scratch.clear();
      for (std::int32_t i = 0; i < cfg_.nodes; ++i) {
        if (failed_[static_cast<std::size_t>(i)]) continue;
        offsets_scratch.push_back(
            clocks_[static_cast<std::size_t>(i)].phase_offset_ps());
      }
      check::audit_clock_offsets(offsets_scratch, cfg_.audit_offset_bound_ps);
    }
    if (e >= warmup_epochs) {
      result.max_pairwise_offset_ps =
          std::max(result.max_pairwise_offset_ps, worst);
      result.mean_pairwise_offset_ps += sum / static_cast<double>(pairs);
    }
  }

  const auto measured = epochs - warmup_epochs;
  if (measured > 0) {
    result.mean_pairwise_offset_ps /= static_cast<double>(measured);
  }
  result.epochs_simulated = epochs;
  return result;
}

}  // namespace sirius::sync
