// Local oscillator model for the time-synchronisation study (§4.4, §6).
//
// Each node has a free-running oscillator with a static frequency error
// (crystal tolerance, tens of ppm), a slow random walk of that frequency
// (temperature), and white phase-measurement noise. Sirius does not need
// the clocks to be *correct*, only *mutually synchronised*: every epoch a
// node recovers the current leader's clock from the incoming bit stream
// and slews its own frequency towards it.
#pragma once

#include <cstdint>

#include "common/distributions.hpp"
#include "common/time.hpp"

namespace sirius::sync {

struct ClockConfig {
  double initial_freq_error_ppm = 20.0;  ///< +/- bound on static offset
  /// Frequency random-walk intensity: stddev of ppm change per sqrt(second)
  /// (temperature-induced wander).
  double freq_walk_ppm_per_sqrt_s = 0.01;
  /// RMS phase-measurement noise when recovering a remote clock (ps).
  double phase_noise_ps = 1.0;
};

/// A drifting local clock. Time is advanced by the simulation in steps; the
/// clock integrates its frequency error into a phase offset.
class LocalClock {
 public:
  LocalClock(const ClockConfig& cfg, Rng& rng);

  /// Advances true time by `dt`, integrating frequency error into phase.
  void advance(Time dt, Rng& rng);

  /// Phase offset of this clock versus true time, in picoseconds.
  [[nodiscard]] double phase_offset_ps() const { return phase_ps_; }
  /// Current fractional frequency error (dimensionless, e.g. 20e-6).
  [[nodiscard]] double freq_error() const { return freq_error_; }

  /// Slews the frequency by `delta` (dimensionless), as a PLL/DLL would.
  /// The correction is clamped to +/- `max_step` to filter byzantine or
  /// glitched measurements (§4.4's DLL frequency filter).
  void apply_frequency_correction(double delta, double max_step);

  /// Steps the phase directly (initial offset calibration). The phase is a
  /// *fractional* picosecond quantity (sync converges to +/-5 ps with
  /// ~2 ps measurement noise), so integer Time would round away the signal.
  /// sirius-lint: allow(raw-unit-param)
  void apply_phase_correction(double delta_ps) { phase_ps_ -= delta_ps; }

 private:
  double freq_error_;      // fractional
  double phase_ps_ = 0.0;  // integrated offset vs true time
  double walk_intensity_;  // ppm per sqrt(s)
};

}  // namespace sirius::sync
