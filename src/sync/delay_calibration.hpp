// Propagation-delay calibration (§4.4, §A.2).
//
// Fibers from nodes to the AWGR have different lengths, so without
// compensation, cells sent "in the same slot" would arrive at the grating
// at different times and overlap neighbouring slots. Sirius measures each
// node's distance to the AWGR (the passive core makes a reflection-based
// round-trip measurement exact up to noise), then advances each node's
// epoch start by its own propagation delay relative to the farthest node:
// the farther a node is, the earlier it transmits, so all slot-k cells hit
// the grating simultaneously.
#pragma once

#include <cstdint>
#include <vector>

#include "common/distributions.hpp"
#include "common/time.hpp"

namespace sirius::sync {

/// Propagation constant of standard single-mode fiber.
inline constexpr double kFiberNsPerMeter = 4.9;

struct DelayCalibrationConfig {
  /// RMS error of one round-trip distance measurement, in ps.
  double measurement_noise_ps = 2.0;
  /// Number of round-trip measurements averaged per node.
  std::int32_t measurements_per_node = 16;
};

/// Result of calibrating one set of nodes against their grating.
struct CalibrationResult {
  /// Estimated one-way node->AWGR delay per node.
  std::vector<Time> estimated_delay;
  /// Epoch-start advance per node: (max estimated delay) - (own delay).
  /// A node starts its epoch this much *after* the notional origin; the
  /// farthest node starts first (advance 0 is farthest).
  std::vector<Time> epoch_start_offset;
  /// Worst residual misalignment at the AWGR across node pairs, in ps,
  /// given the true delays (i.e. the calibration error).
  double worst_alignment_error_ps = 0.0;
};

/// Simulates the reflection-based calibration over true fiber lengths.
class DelayCalibrator {
 public:
  explicit DelayCalibrator(DelayCalibrationConfig cfg = {}) : cfg_(cfg) {}

  /// `fiber_length_m[i]` is the true fiber run from node i to the AWGR.
  CalibrationResult calibrate(const std::vector<double>& fiber_length_m,
                              Rng& rng) const;

  /// True one-way propagation delay for a fiber of `meters`.
  static Time propagation_delay(double meters) {
    return Time::ps(
        static_cast<std::int64_t>(meters * kFiberNsPerMeter * 1e3 + 0.5));
  }

 private:
  DelayCalibrationConfig cfg_;
};

}  // namespace sirius::sync
