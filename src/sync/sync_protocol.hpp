// Decentralised time synchronisation (§4.4).
//
// The passive gratings neither retime nor reclock data, so a receiver can
// recover the *sender's* clock from any incoming burst with a PLL/DLL.
// Because the static schedule reconnects every node pair once per epoch,
// Sirius designates a leader whose clock everyone slews towards, and
// rotates the leader every few epochs for robustness: a failed leader is
// replaced within microseconds, before any noticeable drift accumulates.
//
// This module simulates that protocol over drifting oscillators and
// reports the achieved mutual synchronisation accuracy (paper: +/-5 ps
// measured over 24 h between two FPGAs).
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "sync/clock_model.hpp"

namespace sirius::sync {

struct SyncProtocolConfig {
  std::int32_t nodes = 16;
  Time epoch = Time::us(13);          ///< schedule period (leader burst gap)
  std::int32_t leader_tenure_epochs = 4;  ///< epochs before leader rotates
  double pll_gain = 0.5;              ///< fraction of measured error corrected
  /// Max fractional frequency step per correction — the DLL filter that
  /// rejects byzantine/glitched frequency measurements.
  double max_freq_step = 1e-6;
  /// Audited bound on the pairwise clock spread once the protocol has
  /// converged (check::audit_clock_offsets). Generous versus the paper's
  /// +/-5 ps so transients (leader failover, byzantine-clamped slews) pass;
  /// only meaningful when corrections are active (pll_gain > 0).
  double audit_offset_bound_ps = 100.0;
  ClockConfig clock = {};
};

struct SyncRunResult {
  /// Worst pairwise clock offset observed after the warmup window, in ps.
  double max_pairwise_offset_ps = 0.0;
  /// Mean absolute pairwise offset after warmup, in ps.
  double mean_pairwise_offset_ps = 0.0;
  /// Epochs until all pairwise offsets first dropped below 10 ps.
  std::int64_t convergence_epochs = -1;
  std::int64_t epochs_simulated = 0;
  std::int64_t leader_failovers = 0;
};

/// Simulates the leader-rotation synchronisation protocol.
class SyncProtocolSim {
 public:
  SyncProtocolSim(SyncProtocolConfig cfg, std::uint64_t seed);

  /// Marks a node as failed from `epoch` onward; it stops serving as leader
  /// (detected after one epoch of silence) and stops correcting.
  void fail_node_at(std::int32_t node, std::int64_t epoch);

  /// Runs for `epochs` schedule epochs; offsets are sampled each epoch and
  /// statistics collected after `warmup_epochs`.
  SyncRunResult run(std::int64_t epochs, std::int64_t warmup_epochs);

 private:
  [[nodiscard]] std::int32_t next_alive_leader(std::int32_t from) const;

  SyncProtocolConfig cfg_;
  Rng rng_;
  std::vector<LocalClock> clocks_;
  std::vector<bool> failed_;
  std::vector<std::int64_t> fail_at_epoch_;
};

}  // namespace sirius::sync
