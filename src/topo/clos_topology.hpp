// Folded-Clos topology descriptor for the electrically-switched baseline
// (ESN) and for the scale-tax power analysis of Fig. 2a.
//
// We describe the Clos analytically (tier count, radix, oversubscription)
// rather than as an explicit graph: the idealised baseline simulations only
// need the capacity constraints (server NICs, rack uplinks), and the power
// and cost models only need device counts.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace sirius::topo {

struct ClosConfig {
  std::int32_t racks = 128;
  std::int32_t servers_per_rack = 24;
  DataRate server_link = DataRate::gbps(50);
  std::int32_t switch_radix = 64;  ///< ports per electrical switch
  /// Oversubscription at the aggregation tier: 1 = non-blocking, 3 = 3:1.
  std::int32_t oversubscription = 1;
};

/// Device inventory and capacity view of a folded Clos.
class ClosTopology {
 public:
  explicit ClosTopology(ClosConfig cfg);

  const ClosConfig& config() const { return cfg_; }
  [[nodiscard]] std::int32_t servers() const { return cfg_.racks * cfg_.servers_per_rack; }

  /// Number of switch tiers needed to connect `endpoints` endpoints with
  /// switches of radix `radix` in a non-blocking folded Clos: tier t
  /// multiplies reach by radix/2 (except the top tier which uses all
  /// ports downward).
  static std::int32_t tiers_needed(std::int64_t endpoints,
                                   std::int32_t radix);

  /// Tiers of this instance.
  [[nodiscard]] std::int32_t tiers() const { return tiers_; }

  /// Total switch count across all tiers (non-blocking folded Clos; the
  /// oversubscribed variant thins the above-ToR tiers by the factor).
  [[nodiscard]] std::int64_t switch_count() const;

  /// Transceiver count: two per inter-switch link plus one per server port
  /// at the ToR (server-side optics).
  [[nodiscard]] std::int64_t transceiver_count() const;

  /// Aggregate capacity leaving a rack towards the core.
  [[nodiscard]] DataRate rack_uplink_capacity() const {
    const DataRate full = cfg_.server_link * cfg_.servers_per_rack;
    return full / cfg_.oversubscription;
  }

  /// Full-bisection bandwidth of the fabric (servers x link / 2 when
  /// non-blocking, reduced by oversubscription otherwise).
  [[nodiscard]] DataRate bisection_bandwidth() const;

 private:
  ClosConfig cfg_;
  std::int32_t tiers_;
};

}  // namespace sirius::topo
