#include "topo/clos_topology.hpp"

#include <cassert>

namespace sirius::topo {

ClosTopology::ClosTopology(ClosConfig cfg)
    : cfg_(cfg), tiers_(tiers_needed(servers(), cfg.switch_radix)) {
  assert(cfg_.racks >= 1 && cfg_.servers_per_rack >= 1);
  assert(cfg_.oversubscription >= 1);
}

std::int32_t ClosTopology::tiers_needed(std::int64_t endpoints,
                                        std::int32_t radix) {
  assert(radix >= 2);
  if (endpoints <= 2) return 0;  // direct fiber, no switch
  // One switch connects up to `radix` endpoints; each extra folded tier
  // multiplies reach by radix/2 (half the ports face up).
  std::int64_t reach = radix;
  std::int32_t tiers = 1;
  while (reach < endpoints) {
    reach *= radix / 2;
    ++tiers;
  }
  return tiers;
}

std::int64_t ClosTopology::switch_count() const {
  const std::int64_t n = servers();
  const std::int32_t radix = cfg_.switch_radix;
  if (tiers_ == 0) return 0;
  // Tier 1 (ToR): each switch serves radix/2 servers (other half up).
  // Every further non-blocking tier needs the same total port count as the
  // tier below it feeding up, i.e. the same number of switches — except
  // the top tier, which has no up-facing ports and needs half.
  const std::int64_t tor = (n + radix / 2 - 1) / (radix / 2);
  std::int64_t total = tor;
  std::int64_t per_tier = tor;
  for (std::int32_t t = 2; t <= tiers_; ++t) {
    if (t == tiers_) {
      total += (per_tier + 1) / 2;
    } else {
      per_tier = (per_tier / cfg_.oversubscription);
      if (per_tier < 1) per_tier = 1;
      total += per_tier;
    }
  }
  return total;
}

std::int64_t ClosTopology::transceiver_count() const {
  const std::int64_t n = servers();
  if (tiers_ == 0) return 2 * n;  // point-to-point optics
  // Each server's uplink into the ToR uses one transceiver pair's worth at
  // scale (copper in-rack is also common; we follow the paper's W/Tbps
  // accounting which charges optics above the ToR). Each inter-tier link
  // carries two transceivers, and the up-facing capacity of each tier is
  // n / oversubscription links at server speed (non-blocking within the
  // fabric above).
  std::int64_t total = 0;
  std::int64_t uplinks = n / cfg_.oversubscription;
  for (std::int32_t t = 1; t < tiers_; ++t) {
    total += 2 * uplinks;
  }
  return total;
}

DataRate ClosTopology::bisection_bandwidth() const {
  const DataRate full = cfg_.server_link * servers();
  return (full / cfg_.oversubscription) / 2;
}

}  // namespace sirius::topo
