#include "topo/expander.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

namespace sirius::topo {

ExpanderGraph::ExpanderGraph(std::int32_t switches, std::int32_t degree,
                             std::uint64_t seed)
    : n_(switches), d_(degree) {
  assert(n_ >= 4 && d_ >= 2 && d_ < n_);
  assert((static_cast<std::int64_t>(n_) * d_) % 2 == 0 &&
         "n*d must be even for a d-regular graph");
  Rng rng(seed);
  // The pairing model produces O(d^2) self-loops/multi-edges, so whole-
  // sample rejection is hopeless at useful degrees; repair conflicts with
  // random double-edge swaps instead, then resample only if the repaired
  // graph is disconnected (rare for d >= 3).
  for (int attempt = 0; attempt < 100; ++attempt) {
    build(rng);
    if (!adj_.empty() && connected()) return;
  }
  assert(false && "failed to build a connected regular graph");
}

void ExpanderGraph::build(Rng& rng) {
  // Stubs: each switch appears d times; a random perfect matching of the
  // stubs yields the (multi-)edge set.
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(d_));
  for (NodeId v = 0; v < n_; ++v) {
    for (std::int32_t k = 0; k < d_; ++k) stubs.push_back(v);
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.below(i)]);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    edges.push_back({stubs[i], stubs[i + 1]});
  }

  // Double-edge-swap repair: while some edge is a self-loop or duplicate,
  // swap one endpoint with a random other edge (preserves all degrees).
  const auto is_bad = [&edges](std::size_t i,
                               const std::set<std::pair<NodeId, NodeId>>&
                                   seen_before_i) {
    const auto [a, b] = edges[i];
    if (a == b) return true;
    const auto e = std::minmax(a, b);
    return seen_before_i.count({e.first, e.second}) > 0;
  };
  for (int pass = 0; pass < 200; ++pass) {
    // Locate bad edges in one scan.
    std::set<std::pair<NodeId, NodeId>> seen;
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (is_bad(i, seen)) {
        bad.push_back(i);
      } else {
        const auto e = std::minmax(edges[i].first, edges[i].second);
        seen.insert({e.first, e.second});
      }
    }
    if (bad.empty()) break;
    for (const std::size_t i : bad) {
      const std::size_t j = rng.below(edges.size());
      if (j == i) continue;
      std::swap(edges[i].second, edges[j].second);
    }
  }

  // Final validation: any residual conflict aborts this attempt.
  std::set<std::pair<NodeId, NodeId>> uniq;
  for (const auto& [a, b] : edges) {
    if (a == b) {
      adj_.clear();
      return;
    }
    const auto e = std::minmax(a, b);
    if (!uniq.insert({e.first, e.second}).second) {
      adj_.clear();
      return;
    }
  }
  adj_.assign(static_cast<std::size_t>(n_), {});
  for (const auto& [a, b] : uniq) {
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
  }
}

std::vector<std::int32_t> ExpanderGraph::bfs_dist(NodeId src) const {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(n_), -1);
  std::deque<NodeId> q{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop_front();
    for (const NodeId u : adj_[static_cast<std::size_t>(v)]) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push_back(u);
      }
    }
  }
  return dist;
}

bool ExpanderGraph::connected() const {
  const auto dist = bfs_dist(0);
  return std::all_of(dist.begin(), dist.end(),
                     [](std::int32_t d) { return d >= 0; });
}

double ExpanderGraph::average_path_length() const {
  std::int64_t sum = 0;
  std::int64_t pairs = 0;
  for (NodeId v = 0; v < n_; ++v) {
    const auto dist = bfs_dist(v);
    for (NodeId u = 0; u < n_; ++u) {
      if (u == v) continue;
      sum += dist[static_cast<std::size_t>(u)];
      ++pairs;
    }
  }
  return static_cast<double>(sum) / static_cast<double>(pairs);
}

std::int32_t ExpanderGraph::diameter() const {
  std::int32_t worst = 0;
  for (NodeId v = 0; v < n_; ++v) {
    const auto dist = bfs_dist(v);
    for (const std::int32_t d : dist) worst = std::max(worst, d);
  }
  return worst;
}

}  // namespace sirius::topo
