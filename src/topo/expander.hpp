// Static expander topology (§8, Kassing et al. [37]).
//
// The related-work comparison Sirius draws: expander graphs over
// electrical switches offer better cost than Clos at equal throughput,
// but they still ride the (fading) scaling of electrical switching.
// This module builds random regular graphs (the standard expander
// construction), measures the path-length statistics that determine their
// throughput, and provides the cost/power comparison hooks used by the
// ablation bench: Sirius' flat passive core versus expander versus Clos.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace sirius::topo {

/// A d-regular random graph over n switches (pairing-model construction,
/// resampled until simple and connected).
class ExpanderGraph {
 public:
  ExpanderGraph(std::int32_t switches, std::int32_t degree,
                std::uint64_t seed);

  [[nodiscard]] std::int32_t switches() const { return n_; }
  [[nodiscard]] std::int32_t degree() const { return d_; }
  const std::vector<NodeId>& neighbors(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] bool connected() const;

  /// Average shortest-path length over all ordered pairs (BFS).
  [[nodiscard]] double average_path_length() const;
  /// Graph diameter.
  [[nodiscard]] std::int32_t diameter() const;

  /// Upper bound on uniform throughput per switch-port pair: total link
  /// capacity divided by the capacity consumed per delivered byte
  /// (= average path length). Normalised so 1.0 means every edge busy
  /// carrying useful traffic with no detours.
  [[nodiscard]] double uniform_throughput_bound() const {
    return 1.0 / average_path_length();
  }

 private:
  void build(Rng& rng);
  std::vector<std::int32_t> bfs_dist(NodeId src) const;

  std::int32_t n_;
  std::int32_t d_;
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace sirius::topo
