// Sirius physical topology (§4.1, Fig. 5a).
//
// N nodes attach to a single layer of P-port AWGR gratings. Nodes are
// grouped into k = ceil(N/P) blocks of at most P nodes. Each node has
// U = k * replicas uplinks: uplink u serves destination block (u mod k),
// replica (u div k). Grating (a, d, r) connects the TX side of block a to
// the RX side of block d for replica r; a node's position within its block
// is its port index on every grating it touches. Wavelengths select the
// destination's in-block index via the AWGR's cyclic routing.
//
// Fig. 5a is the instance N=4, P=2 (k=2, replicas=1, 4 gratings); the
// paper's datacenter scale is N=25,600 racks with P=100 and 256 uplinks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "optical/awgr.hpp"

namespace sirius::topo {

struct SiriusTopologyConfig {
  std::int32_t nodes = 128;        ///< racks (or servers) on the optical core
  std::int32_t grating_ports = 128;///< AWGR port count = usable wavelengths
  std::int32_t replicas = 1;       ///< parallel gratings per block pair
  DataRate channel_rate = DataRate::gbps(50);
};

/// Where one uplink of one node lands: which grating and which input port.
struct UplinkAttachment {
  GratingId grating;
  std::int32_t input_port;
};

/// Immutable Sirius topology: wiring plan plus wavelength arithmetic.
class SiriusTopology {
 public:
  explicit SiriusTopology(SiriusTopologyConfig cfg);

  const SiriusTopologyConfig& config() const { return cfg_; }
  [[nodiscard]] std::int32_t nodes() const { return cfg_.nodes; }
  [[nodiscard]] std::int32_t blocks() const { return blocks_; }
  /// Uplinks per node = blocks * replicas.
  [[nodiscard]] std::int32_t uplinks_per_node() const { return blocks_ * cfg_.replicas; }
  [[nodiscard]] std::int32_t gratings() const {
    return blocks_ * blocks_ * cfg_.replicas;
  }
  const optical::Awgr& awgr() const { return awgr_; }

  [[nodiscard]] std::int32_t block_of(NodeId n) const { return n / cfg_.grating_ports; }
  [[nodiscard]] std::int32_t index_in_block(NodeId n) const { return n % cfg_.grating_ports; }

  /// Grating + input port where uplink `u` of node `n` attaches.
  UplinkAttachment tx_attachment(NodeId n, UplinkId u) const;

  /// Grating + output port feeding downlink `u` of node `n`.
  UplinkAttachment rx_attachment(NodeId n, UplinkId u) const;

  /// The uplinks of `src` that can reach `dst` (one per replica).
  std::vector<UplinkId> uplinks_towards(NodeId src, NodeId dst) const;

  /// Wavelength `src` must use on uplink `u` so its light exits at `dst`.
  /// Requires that uplink `u` serves dst's block.
  [[nodiscard]] WavelengthId wavelength_to(NodeId src, UplinkId u, NodeId dst) const;

  /// Destination node reached from `src` on uplink `u` at wavelength `w`
  /// (kInvalidNode if the output port is unpopulated, i.e. padding).
  [[nodiscard]] NodeId destination_of(NodeId src, UplinkId u, WavelengthId w) const;

  /// Aggregate bidirectional uplink bandwidth per node.
  [[nodiscard]] DataRate node_uplink_bandwidth() const {
    return cfg_.channel_rate * uplinks_per_node();
  }

  /// Largest deployable node count for a given grating port count and
  /// uplink budget (paper: 100 ports x 256 uplinks = 25,600 racks).
  static std::int64_t max_scale(std::int32_t grating_ports,
                                std::int32_t uplinks) {
    return static_cast<std::int64_t>(grating_ports) * uplinks;
  }

 private:
  SiriusTopologyConfig cfg_;
  std::int32_t blocks_;
  optical::Awgr awgr_;
};

}  // namespace sirius::topo
