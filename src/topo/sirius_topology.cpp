#include "topo/sirius_topology.hpp"

#include <cassert>

namespace sirius::topo {

SiriusTopology::SiriusTopology(SiriusTopologyConfig cfg)
    : cfg_(cfg),
      blocks_((cfg.nodes + cfg.grating_ports - 1) / cfg.grating_ports),
      awgr_(cfg.grating_ports) {
  assert(cfg_.nodes >= 2);
  assert(cfg_.grating_ports >= 1);
  assert(cfg_.replicas >= 1);
}

UplinkAttachment SiriusTopology::tx_attachment(NodeId n, UplinkId u) const {
  assert(n >= 0 && n < cfg_.nodes);
  assert(u >= 0 && u < uplinks_per_node());
  const std::int32_t dst_block = u % blocks_;
  const std::int32_t replica = u / blocks_;
  const std::int32_t src_block = block_of(n);
  const GratingId g =
      (src_block * blocks_ + dst_block) * cfg_.replicas + replica;
  return UplinkAttachment{g, index_in_block(n)};
}

UplinkAttachment SiriusTopology::rx_attachment(NodeId n, UplinkId u) const {
  assert(n >= 0 && n < cfg_.nodes);
  assert(u >= 0 && u < uplinks_per_node());
  // Downlink u of node n comes from source block (u mod blocks), replica
  // (u div blocks), into n's own block column.
  const std::int32_t src_block = u % blocks_;
  const std::int32_t replica = u / blocks_;
  const std::int32_t dst_block = block_of(n);
  const GratingId g =
      (src_block * blocks_ + dst_block) * cfg_.replicas + replica;
  return UplinkAttachment{g, index_in_block(n)};
}

std::vector<UplinkId> SiriusTopology::uplinks_towards(NodeId src,
                                                      NodeId dst) const {
  assert(dst >= 0 && dst < cfg_.nodes);
  const std::int32_t dst_block = block_of(dst);
  std::vector<UplinkId> out;
  out.reserve(static_cast<std::size_t>(cfg_.replicas));
  for (std::int32_t r = 0; r < cfg_.replicas; ++r) {
    out.push_back(r * blocks_ + dst_block);
  }
  (void)src;
  return out;
}

WavelengthId SiriusTopology::wavelength_to(NodeId src, UplinkId u,
                                           NodeId dst) const {
  assert(u % blocks_ == block_of(dst) && "uplink does not serve dst's block");
  return awgr_.wavelength_for(index_in_block(src), index_in_block(dst));
}

NodeId SiriusTopology::destination_of(NodeId src, UplinkId u,
                                      WavelengthId w) const {
  const std::int32_t dst_block = u % blocks_;
  const std::int32_t out_port = awgr_.route(index_in_block(src), w);
  const NodeId dst = dst_block * cfg_.grating_ports + out_port;
  return dst < cfg_.nodes ? dst : kInvalidNode;
}

}  // namespace sirius::topo
