#include "core/network_api.hpp"

#include <algorithm>
#include <cassert>

namespace sirius::core {

SiriusNetwork::SiriusNetwork(sim::SiriusSimConfig cfg) : cfg_(cfg) {}

FlowId SiriusNetwork::send(std::int32_t src_server, std::int32_t dst_server,
                           DataSize size, Time when) {
  assert(src_server >= 0 && src_server < cfg_.servers());
  assert(dst_server >= 0 && dst_server < cfg_.servers());
  assert(src_server != dst_server && "a flow needs two distinct endpoints");
  assert(size.in_bytes() > 0);
  workload::Flow f;
  f.id = next_id_++;
  f.src_server = src_server;
  f.dst_server = dst_server;
  f.size = size;
  f.arrival = when;
  pending_.push_back(f);
  return f.id;
}

void SiriusNetwork::add_workload(const workload::Workload& w) {
  assert(w.servers == cfg_.servers());
  for (workload::Flow f : w.flows) {
    f.id = next_id_++;
    pending_.push_back(f);
  }
}

RunResult SiriusNetwork::run() {
  // The simulator requires arrival order; explicit sends may interleave
  // with generated workloads arbitrarily.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const workload::Flow& a, const workload::Flow& b) {
                     return a.arrival < b.arrival;
                   });
  // Re-id flows by arrival order so simulator indexing matches, keeping a
  // map back to the caller's ids.
  std::vector<std::size_t> order(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    order[static_cast<std::size_t>(pending_[i].id)] = i;
  }
  workload::Workload w;
  w.servers = cfg_.servers();
  w.server_rate = cfg_.server_share();
  w.flows = pending_;
  for (std::size_t i = 0; i < w.flows.size(); ++i) {
    w.flows[i].id = static_cast<FlowId>(i);
  }

  sim::SiriusSim sim(cfg_, w);
  sim::SiriusSimResult raw = sim.run();

  // Permute per-flow completions back to caller ids.
  std::vector<Time> completions(raw.per_flow_completion.size());
  std::vector<workload::Flow> caller_flows(pending_.size());
  for (std::size_t caller_id = 0; caller_id < pending_.size(); ++caller_id) {
    completions[caller_id] = raw.per_flow_completion[order[caller_id]];
    caller_flows[caller_id] = w.flows[order[caller_id]];
  }
  raw.per_flow_completion = std::move(completions);

  pending_.clear();
  next_id_ = 0;
  return RunResult(std::move(raw), std::move(caller_flows));
}

}  // namespace sirius::core
