#include "core/experiment.hpp"

#include <cstdio>

#include "common/config.hpp"

namespace sirius::core {

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig c;
  c.racks = static_cast<std::int32_t>(env_int_or("SIRIUS_RACKS", c.racks));
  c.servers_per_rack = static_cast<std::int32_t>(
      env_int_or("SIRIUS_SERVERS_PER_RACK", c.servers_per_rack));
  c.base_uplinks =
      static_cast<std::int32_t>(env_int_or("SIRIUS_UPLINKS", c.base_uplinks));
  c.flows = env_int_or("SIRIUS_FLOWS", c.flows);
  c.seed = static_cast<std::uint64_t>(
      env_int_or("SIRIUS_SEED", static_cast<std::int64_t>(c.seed)));
  return c;
}

workload::Workload make_workload(const ExperimentConfig& cfg, double load) {
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = load;
  g.mean_flow_size = cfg.mean_flow_size;
  g.flow_count = cfg.flows;
  g.seed = cfg.seed;
  return workload::generate(g);
}

sim::SiriusSimConfig make_sirius_config(const ExperimentConfig& cfg,
                                        const SiriusVariant& v) {
  sim::SiriusSimConfig s;
  s.racks = cfg.racks;
  s.servers_per_rack = cfg.servers_per_rack;
  s.base_uplinks = cfg.base_uplinks;
  s.uplink_multiplier = v.uplink_multiplier;
  s.slots = phy::SlotGeometry::with_guardband_fraction(v.guardband,
                                                       cfg.channel);
  s.queue_limit = v.queue_limit;
  s.ideal = v.ideal;
  s.spread = v.spread;
  s.server_nic = cfg.channel;
  s.seed = cfg.seed;
  return s;
}

RunMetrics run_sirius(const ExperimentConfig& cfg, const SiriusVariant& v,
                      const workload::Workload& w,
                      telemetry::Hub* telemetry) {
  sim::SiriusSimConfig s = make_sirius_config(cfg, v);
  s.telemetry = telemetry;
  sim::SiriusSim sim(s, w);
  const sim::SiriusSimResult r = sim.run();
  RunMetrics m;
  m.system = v.ideal ? "Sirius(Ideal)" : "Sirius";
  m.load = w.offered_load;
  m.short_fct_p99_ms = r.fct.short_fct_p99_ms;
  m.goodput = r.goodput_normalized;
  m.queue_peak_kb = r.worst_node_queue_peak_kb;
  m.reorder_peak_kb = r.worst_reorder_peak_kb;
  m.incomplete = r.incomplete_flows;
  return m;
}

RunMetrics run_sirius(const ExperimentConfig& cfg, const SiriusVariant& v,
                      double load) {
  const workload::Workload w = make_workload(cfg, load);
  return run_sirius(cfg, v, w);
}

RunMetrics run_esn(const ExperimentConfig& cfg, std::int32_t oversub,
                   const workload::Workload& w, telemetry::Hub* telemetry) {
  esn::EsnConfig e;
  e.racks = cfg.racks;
  e.servers_per_rack = cfg.servers_per_rack;
  e.server_rate = cfg.server_share();
  e.oversubscription = oversub;
  e.telemetry = telemetry;
  esn::EsnFluidSim sim(e, w);
  const esn::EsnSimResult r = sim.run();
  RunMetrics m;
  m.system = oversub > 1 ? "ESN-OSUB(Ideal)" : "ESN(Ideal)";
  m.load = w.offered_load;
  m.short_fct_p99_ms = r.fct.short_fct_p99_ms;
  m.goodput = r.goodput_normalized;
  return m;
}

RunMetrics run_esn(const ExperimentConfig& cfg, std::int32_t oversub,
                   double load) {
  const workload::Workload w = make_workload(cfg, load);
  return run_esn(cfg, oversub, w);
}

// The print_metrics_* helpers exist solely so the figure/CLI binaries share
// one table format; stdout is their contract.
void print_metrics_header() {
  // sirius-lint: allow(no-stdio)
  std::printf("%-16s %6s %14s %9s %12s %13s %10s\n", "system", "load",
              "fct99_short_ms", "goodput", "queue_pk_kb", "reorder_pk_kb",
              "incomplete");
}

void print_metrics_row(const RunMetrics& m) {
  // sirius-lint: allow(no-stdio)
  std::printf("%-16s %5.0f%% %14.4f %9.3f %12.1f %13.1f %10lld\n",
              m.system.c_str(), m.load * 100.0, m.short_fct_p99_ms, m.goodput,
              m.queue_peak_kb, m.reorder_peak_kb,
              static_cast<long long>(m.incomplete));
}

}  // namespace sirius::core
