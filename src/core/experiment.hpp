// Experiment runner shared by the bench binaries: builds §7 workloads,
// runs the four systems (Sirius, Sirius (Ideal), ESN (Ideal),
// ESN-OSUB (Ideal)) and returns the figure metrics.
//
// Scale is environment-overridable so the same binaries reproduce either
// the quick default (64 racks x 8 servers, 20 k flows — minutes on one
// core) or the paper's full configuration (SIRIUS_RACKS=128
// SIRIUS_SERVERS_PER_RACK=24 SIRIUS_FLOWS=200000).
#pragma once

#include <cstdint>
#include <string>

#include "esn/fluid_sim.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace sirius::core {

/// Scale and workload knobs common to every §7 experiment.
struct ExperimentConfig {
  std::int32_t racks = 64;
  std::int32_t servers_per_rack = 8;
  std::int32_t base_uplinks = 8;
  DataRate channel = DataRate::gbps(50);
  std::int64_t flows = 20'000;
  DataSize mean_flow_size = DataSize::kilobytes(100);
  std::uint64_t seed = 1;

  std::int32_t servers() const { return racks * servers_per_rack; }
  DataRate server_share() const {
    return (channel * base_uplinks) / servers_per_rack;
  }

  /// Reads SIRIUS_RACKS, SIRIUS_SERVERS_PER_RACK, SIRIUS_UPLINKS,
  /// SIRIUS_FLOWS, SIRIUS_SEED from the environment over the defaults.
  static ExperimentConfig from_env();
};

/// Per-system knobs layered on the base config.
struct SiriusVariant {
  double uplink_multiplier = 1.5;
  std::int32_t queue_limit = 4;
  Time guardband = Time::ns(10);
  bool ideal = false;
  cc::SpreadPolicy spread = cc::SpreadPolicy::kDesynchronized;
};

/// The metrics every figure draws from.
struct RunMetrics {
  std::string system;
  double load = 0.0;
  double short_fct_p99_ms = 0.0;
  double goodput = 0.0;
  double queue_peak_kb = 0.0;    ///< Sirius only (Fig. 10c)
  double reorder_peak_kb = 0.0;  ///< Sirius only (Fig. 10d)
  std::int64_t incomplete = 0;
};

/// Generates the §7 workload for a given load and mean flow size.
workload::Workload make_workload(const ExperimentConfig& cfg, double load);

/// Runs Sirius (request/grant or ideal) at `load`. `telemetry`, when
/// non-null, is attached to the underlying simulation for the run (see
/// sim::SiriusSimConfig::telemetry).
RunMetrics run_sirius(const ExperimentConfig& cfg, const SiriusVariant& v,
                      double load);
RunMetrics run_sirius(const ExperimentConfig& cfg, const SiriusVariant& v,
                      const workload::Workload& w,
                      telemetry::Hub* telemetry = nullptr);

/// Runs the idealised electrical baseline (`oversub` = 1 or 3).
RunMetrics run_esn(const ExperimentConfig& cfg, std::int32_t oversub,
                   double load);
RunMetrics run_esn(const ExperimentConfig& cfg, std::int32_t oversub,
                   const workload::Workload& w,
                   telemetry::Hub* telemetry = nullptr);

/// Builds the SiriusSimConfig for a variant (exposed for tests/examples).
sim::SiriusSimConfig make_sirius_config(const ExperimentConfig& cfg,
                                        const SiriusVariant& v);

/// Prints one CSV-style metrics row ("system,load,fct_p99_ms,goodput,...").
void print_metrics_row(const RunMetrics& m);
void print_metrics_header();

}  // namespace sirius::core
