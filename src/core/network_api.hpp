// Public façade of the Sirius library.
//
// `SiriusNetwork` is the entry point downstream users program against: it
// wraps topology, schedule, congestion control and the slot-synchronous
// simulator behind a "submit flows, run, inspect results" API. The bench
// and example binaries are all built on it.
//
//   sirius::core::SiriusNetwork net(config);
//   auto f = net.send(/*src_server=*/0, /*dst_server=*/42,
//                     sirius::DataSize::kilobytes(64), sirius::Time::zero());
//   auto result = net.run();
//   result.fct_of(f);  // end-to-end completion time of that flow
#pragma once

#include <cstdint>
#include <vector>

#include "esn/fluid_sim.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace sirius::core {

/// Result of one SiriusNetwork run, with per-flow lookup.
class RunResult {
 public:
  RunResult(sim::SiriusSimResult r, std::vector<workload::Flow> flows)
      : r_(std::move(r)), flows_(std::move(flows)) {}

  const sim::SiriusSimResult& raw() const { return r_; }
  const stats::FctSummary& fct_summary() const { return r_.fct; }
  double goodput_normalized() const { return r_.goodput_normalized; }

  /// Completion latency of `flow` (infinite if it never finished).
  Time fct_of(FlowId flow) const {
    const Time done = r_.per_flow_completion.at(static_cast<std::size_t>(flow));
    if (done.is_infinite()) return Time::infinity();
    return done - flows_.at(static_cast<std::size_t>(flow)).arrival;
  }
  /// Absolute completion time of `flow`.
  Time completion_of(FlowId flow) const {
    return r_.per_flow_completion.at(static_cast<std::size_t>(flow));
  }
  std::size_t flow_count() const { return flows_.size(); }

 private:
  sim::SiriusSimResult r_;
  std::vector<workload::Flow> flows_;
};

/// User-facing handle on a simulated Sirius deployment.
class SiriusNetwork {
 public:
  explicit SiriusNetwork(sim::SiriusSimConfig cfg);

  const sim::SiriusSimConfig& config() const { return cfg_; }
  std::int32_t servers() const { return cfg_.servers(); }

  /// Queues a flow of `size` bytes from `src_server` to `dst_server`,
  /// entering the network at absolute time `when`. Returns its id.
  FlowId send(std::int32_t src_server, std::int32_t dst_server, DataSize size,
              Time when);

  /// Queues a synthetic §7 workload on top of any explicit sends.
  void add_workload(const workload::Workload& w);

  /// Runs the network until every queued flow completes (or the drain cap
  /// is hit) and returns the results. The flow set resets afterwards.
  RunResult run();

 private:
  sim::SiriusSimConfig cfg_;
  std::vector<workload::Flow> pending_;
  FlowId next_id_ = 0;
};

}  // namespace sirius::core
