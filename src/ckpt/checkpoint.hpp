// `sirius.ckpt.v1` file framing: magic, version, length, CRC, payload.
//
// On-disk layout (all integers little-endian):
//
//   offset size  field
//   0      8     magic  "SIRCKPT\n"
//   8      4     version (currently 1)
//   12     8     payload length in bytes
//   20     4     CRC-32 (IEEE 802.3, reflected) of the payload bytes
//   24     n     payload (opaque to this layer; see sim serialize order)
//
// Writes are crash-safe via common/atomic_file; reads are defensive: an
// empty file, truncated header, wrong magic, unsupported version,
// truncated payload and CRC mismatch are each rejected with a distinct
// diagnostic and a distinct status, and none of them can crash the
// process or read out of bounds.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

namespace sirius::ckpt {

inline constexpr std::string_view kSchema = "sirius.ckpt.v1";
inline constexpr std::uint32_t kVersion = 1;

enum class LoadStatus : std::uint8_t {
  kOk,
  kIoError,           // file missing / unreadable
  kEmptyFile,         // zero bytes
  kTruncatedHeader,   // shorter than the fixed header
  kBadMagic,          // not a sirius checkpoint at all
  kBadVersion,        // framed by a future/unknown format version
  kTruncatedPayload,  // header promises more bytes than the file holds
  kCrcMismatch,       // bit-flip somewhere in the payload
};

struct LoadResult {
  LoadStatus status = LoadStatus::kIoError;
  std::string message;  // one-line human diagnostic, always set on failure
  std::string payload;  // valid only when status == kOk
  [[nodiscard]] bool ok() const { return status == LoadStatus::kOk; }
};

/// CRC-32 (IEEE, reflected, init/final 0xffffffff) over `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Frames `payload` with magic/version/length/CRC; the returned bytes are
/// the exact file contents.
[[nodiscard]] std::string frame(std::string_view payload);

/// Validates and unwraps file bytes produced by `frame`. Never throws.
[[nodiscard]] LoadResult parse(std::string_view file_bytes);

/// frame() + crash-safe write (temp file, fsync, atomic rename).
[[nodiscard]] bool save(const std::filesystem::path& path,
                        std::string_view payload, std::string* error);

/// Reads `path` and parse()s it; IO failures surface as kIoError.
[[nodiscard]] LoadResult load(const std::filesystem::path& path);

}  // namespace sirius::ckpt
