#include "ckpt/checkpoint.hpp"

#include <array>

#include "ckpt/io.hpp"
#include "common/atomic_file.hpp"

namespace sirius::ckpt {

namespace {

constexpr std::string_view kMagic = "SIRCKPT\n";
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;

// frame/CellCodec has its own CRC-32 but sits at the same layer rank, so
// the checkpoint framing keeps an independent table (same polynomial).
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string frame(std::string_view payload) {
  Writer w;
  for (const char ch : kMagic) w.u8(static_cast<std::uint8_t>(ch));
  w.u32(kVersion);
  w.u64(payload.size());
  w.u32(crc32(payload));
  std::string out = w.data();
  out.append(payload.data(), payload.size());
  return out;
}

LoadResult parse(std::string_view file_bytes) {
  LoadResult r;
  if (file_bytes.empty()) {
    r.status = LoadStatus::kEmptyFile;
    r.message = "checkpoint is empty (0 bytes); expected a " +
                std::string(kSchema) + " file";
    return r;
  }
  if (file_bytes.size() < kHeaderSize) {
    r.status = LoadStatus::kTruncatedHeader;
    r.message = "checkpoint header truncated: " +
                std::to_string(file_bytes.size()) + " bytes, need " +
                std::to_string(kHeaderSize);
    return r;
  }
  if (file_bytes.substr(0, kMagic.size()) != kMagic) {
    r.status = LoadStatus::kBadMagic;
    r.message = "bad magic: not a " + std::string(kSchema) + " checkpoint";
    return r;
  }
  Reader hdr(file_bytes.substr(kMagic.size(), kHeaderSize - kMagic.size()));
  const std::uint32_t version = hdr.u32();
  const std::uint64_t payload_len = hdr.u64();
  const std::uint32_t stored_crc = hdr.u32();
  if (version != kVersion) {
    r.status = LoadStatus::kBadVersion;
    r.message = "unsupported checkpoint version " + std::to_string(version) +
                " (this build reads version " + std::to_string(kVersion) +
                ")";
    return r;
  }
  const std::string_view payload = file_bytes.substr(kHeaderSize);
  if (payload.size() != payload_len) {
    r.status = LoadStatus::kTruncatedPayload;
    r.message = "checkpoint payload truncated: header promises " +
                std::to_string(payload_len) + " bytes, file holds " +
                std::to_string(payload.size());
    return r;
  }
  const std::uint32_t actual_crc = crc32(payload);
  if (actual_crc != stored_crc) {
    r.status = LoadStatus::kCrcMismatch;
    r.message = "checkpoint CRC mismatch (stored " +
                std::to_string(stored_crc) + ", computed " +
                std::to_string(actual_crc) + "): file is corrupt";
    return r;
  }
  r.status = LoadStatus::kOk;
  r.payload.assign(payload.data(), payload.size());
  return r;
}

bool save(const std::filesystem::path& path, std::string_view payload,
          std::string* error) {
  return write_file_atomic(path, frame(payload), error);
}

LoadResult load(const std::filesystem::path& path) {
  std::string bytes;
  std::string error;
  if (!read_file(path, &bytes, &error)) {
    LoadResult r;
    r.status = LoadStatus::kIoError;
    r.message = error;
    return r;
  }
  return parse(bytes);
}

}  // namespace sirius::ckpt
