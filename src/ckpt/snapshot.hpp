// The serialize/restore interface checkpointable state implements.
//
// Modules at layer rank >= 3 (stats, cc, node, sched, ctrl, sim) expose
// their private state to checkpoints by implementing this interface as
// ordinary member functions; the leaf types below rank 3 (Rng, Histogram,
// telemetry counters) instead expose plain state accessors and are
// serialized *by* their owners, which keeps the layer matrix acyclic
// (ckpt sits at rank 2, so rank <= 2 code cannot include it).
//
// Contract: `restore(serialize(x))` must reproduce the object so exactly
// that continuing the simulation is bit-identical to never having
// checkpointed — including RNG streams, float accumulation order and
// container iteration order. `restore` must never exhibit UB on hostile
// input: decode through the bounds-checked Reader, validate semantic
// ranges, and report failure via `Reader::fail`.
#pragma once

#include "ckpt/io.hpp"

namespace sirius::ckpt {

class Snapshottable {
 public:
  virtual void serialize(Writer& w) const = 0;
  /// Returns false (with the diagnostic latched in `r`) on malformed input.
  virtual bool restore(Reader& r) = 0;

 protected:
  ~Snapshottable() = default;
};

}  // namespace sirius::ckpt
