// Binary serialization primitives for `sirius.ckpt.v1` payloads.
//
// `Writer` appends little-endian fixed-width fields to a byte buffer;
// `Reader` consumes them with sticky, bounds-checked failure semantics: the
// first malformed field latches an error message and every later read
// returns a zero value, so restore code can decode an entire section and
// check `ok()` once — hostile input degrades to a clean diagnostic, never
// out-of-bounds access or UB.
//
// The format is deliberately position-based (no field names): checkpoints
// are written and read by the same binary version, and the file-level
// version byte (see checkpoint.hpp) is the compatibility gate. Section
// `tag()` markers catch writer/reader drift with a precise message.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace sirius::ckpt {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }
  /// Section marker: a 4-byte sentinel the reader asserts, so a layout
  /// mismatch reports the section name instead of silently misparsing.
  void tag(std::uint32_t sentinel) { u32(sentinel); }

  void vec_u8(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    for (const auto x : v) u8(x);
  }
  void vec_i32(const std::vector<std::int32_t>& v) {
    u64(v.size());
    for (const auto x : v) i32(x);
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (const auto x : v) u64(x);
  }
  void vec_i64(const std::vector<std::int64_t>& v) {
    u64(v.size());
    for (const auto x : v) i64(x);
  }
  void vec_f64(const std::vector<double>& v) {
    u64(v.size());
    for (const auto x : v) f64(x);
  }

  [[nodiscard]] const std::string& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!need(1, "u8")) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() { return read_le<std::uint32_t>("u32"); }
  [[nodiscard]] std::uint64_t u64() { return read_le<std::uint64_t>("u64"); }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(read_le<std::uint32_t>("i32"));
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>("i64"));
  }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = read_le<std::uint64_t>("f64");
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    if (failed_ || !need(n, "string body")) return {};
    std::string s(data_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Asserts the next 4 bytes are `sentinel`; on mismatch latches an error
  /// naming `section`.
  bool expect_tag(std::uint32_t sentinel, const char* section) {
    const std::uint32_t got = u32();
    if (failed_) return false;
    if (got != sentinel) {
      fail(std::string("section marker mismatch at '") + section +
           "' (layout drift or corrupt payload)");
      return false;
    }
    return true;
  }

  /// Reads a `u64` element count, rejecting counts that cannot fit in the
  /// remaining bytes (`elem_size` bytes each) — a hostile length prefix must
  /// not drive a multi-gigabyte allocation.
  [[nodiscard]] std::size_t count(std::size_t elem_size, const char* what) {
    const std::uint64_t n = u64();
    if (failed_) return 0;
    const std::size_t min_bytes =
        static_cast<std::size_t>(n) * (elem_size > 0 ? elem_size : 1);
    if (n > remaining() || min_bytes > remaining()) {
      fail(std::string("element count for '") + what +
           "' exceeds remaining payload (truncated or corrupt)");
      return 0;
    }
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::vector<std::uint8_t> vec_u8(const char* what) {
    const std::size_t n = count(1, what);
    std::vector<std::uint8_t> v(n);
    for (auto& x : v) x = u8();
    return v;
  }
  [[nodiscard]] std::vector<std::int32_t> vec_i32(const char* what) {
    const std::size_t n = count(4, what);
    std::vector<std::int32_t> v(n);
    for (auto& x : v) x = i32();
    return v;
  }
  [[nodiscard]] std::vector<std::uint64_t> vec_u64(const char* what) {
    const std::size_t n = count(8, what);
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = u64();
    return v;
  }
  [[nodiscard]] std::vector<std::int64_t> vec_i64(const char* what) {
    const std::size_t n = count(8, what);
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = i64();
    return v;
  }
  [[nodiscard]] std::vector<double> vec_f64(const char* what) {
    const std::size_t n = count(8, what);
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }

  /// Latches a semantic failure discovered by the caller (e.g. a value out
  /// of its legal range) so it reports through the same channel.
  void fail(std::string message) {
    if (failed_) return;  // first error wins
    failed_ = true;
    error_ = std::move(message);
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// The payload must be fully consumed: trailing bytes mean layout drift.
  bool expect_end() {
    if (!failed_ && remaining() != 0) {
      fail("trailing bytes after final section (layout drift or corrupt "
           "payload)");
    }
    return ok();
  }

 private:
  bool need(std::uint64_t n, const char* what) {
    if (failed_) return false;
    if (n > remaining()) {
      fail(std::string("payload truncated while reading ") + what);
      return false;
    }
    return true;
  }
  template <typename T>
  T read_le(const char* what) {
    if (!need(sizeof(T), what)) return 0;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace sirius::ckpt
