#include "esn/fluid_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace sirius::esn {
namespace {

constexpr double kEpsilonBits = 1.0;  // flows below this are complete

}  // namespace

EsnFluidSim::EsnFluidSim(EsnConfig cfg, const workload::Workload& workload)
    : cfg_(cfg),
      workload_(workload),
      goodput_(cfg.servers(), cfg.server_rate),
      measure_end_(workload.last_arrival()) {
  assert(workload_.servers == cfg_.servers() &&
         "workload generated for a different server count");
  hub_ = cfg_.telemetry;
  if (hub_ == nullptr) {
    own_hub_ = std::make_unique<telemetry::Hub>();
    hub_ = own_hub_.get();
  }
  hub_->attach_nodes(cfg_.racks);
  telemetry::MetricsRegistry& m = hub_->metrics();
  c_completed_ = &m.counter("esn.flows_completed");
  c_recomputes_ = &m.counter("esn.rate_recomputes");
  g_active_ = &m.gauge("esn.active_flows");
  const std::int32_t s = cfg_.servers();
  const std::int32_t r = cfg_.racks;
  capacity_.assign(static_cast<std::size_t>(2 * s + 2 * r), 0.0);
  const double nic = static_cast<double>(cfg_.server_rate.bits_per_sec());
  for (std::int32_t i = 0; i < 2 * s; ++i) {
    capacity_[static_cast<std::size_t>(i)] = nic;
  }
  const double rack_cap =
      nic * cfg_.servers_per_rack / cfg_.oversubscription;
  for (std::int32_t i = 2 * s; i < 2 * s + 2 * r; ++i) {
    capacity_[static_cast<std::size_t>(i)] = rack_cap;
  }
}

std::int32_t EsnFluidSim::src_constraint(const workload::Flow& f) const {
  return f.src_server;
}
std::int32_t EsnFluidSim::dst_constraint(const workload::Flow& f) const {
  return cfg_.servers() + f.dst_server;
}
std::int32_t EsnFluidSim::rack_up_constraint(const workload::Flow& f) const {
  return 2 * cfg_.servers() + f.src_server / cfg_.servers_per_rack;
}
std::int32_t EsnFluidSim::rack_down_constraint(const workload::Flow& f) const {
  return 2 * cfg_.servers() + cfg_.racks +
         f.dst_server / cfg_.servers_per_rack;
}

void EsnFluidSim::recompute_rates() {
  // Exact max-min fair allocation by progressive filling with a lazy heap:
  // repeatedly saturate the constraint with the smallest fair share and
  // freeze its flows at that share.
  std::vector<double>& cap = scratch_cap_;
  std::vector<std::int32_t>& cnt = scratch_cnt_;
  std::vector<std::vector<std::int32_t>>& members = scratch_members_;
  std::vector<std::int32_t>& touched = scratch_touched_;

  if (cap.size() < capacity_.size()) {
    cap.resize(capacity_.size());
    cnt.assign(capacity_.size(), 0);
    members.resize(capacity_.size());
  }
  for (const std::int32_t c : touched) {
    cnt[static_cast<std::size_t>(c)] = 0;
    members[static_cast<std::size_t>(c)].clear();
  }
  touched.clear();

  for (std::size_t i = 0; i < active_.size(); ++i) {
    ActiveFlow& f = active_[i];
    f.frozen = false;
    for (std::int32_t k = 0; k < f.n_constraints; ++k) {
      const auto c = static_cast<std::size_t>(f.constraints[k]);
      if (cnt[c] == 0) {
        touched.push_back(f.constraints[k]);
        cap[c] = capacity_[c];
      }
      ++cnt[c];
      members[c].push_back(static_cast<std::int32_t>(i));
    }
  }

  using HeapItem = std::pair<double, std::int32_t>;  // (fair share, c)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (const std::int32_t c : touched) {
    const auto ci = static_cast<std::size_t>(c);
    heap.emplace(cap[ci] / cnt[ci], c);
  }

  std::size_t frozen = 0;
  while (frozen < active_.size() && !heap.empty()) {
    const auto [fair, c] = heap.top();
    heap.pop();
    const auto ci = static_cast<std::size_t>(c);
    if (cnt[ci] == 0) continue;
    const double current_fair = cap[ci] / cnt[ci];
    if (current_fair > fair * (1.0 + 1e-12)) {
      heap.emplace(current_fair, c);  // stale entry; re-key
      continue;
    }
    for (const std::int32_t fi : members[ci]) {
      ActiveFlow& f = active_[static_cast<std::size_t>(fi)];
      if (f.frozen) continue;
      f.frozen = true;
      f.rate_bps = current_fair;
      ++frozen;
      for (std::int32_t k = 0; k < f.n_constraints; ++k) {
        const auto c2 = static_cast<std::size_t>(f.constraints[k]);
        cap[c2] -= current_fair;
        --cnt[c2];
        if (c2 != ci && cnt[c2] > 0) {
          heap.emplace(std::max(cap[c2], 0.0) / cnt[c2], f.constraints[k]);
        }
      }
    }
    cnt[ci] = 0;
  }
}

EsnSimResult EsnFluidSim::run() {
  std::size_t next_arrival = 0;
  double now_sec = 0.0;
  const double measure_end_sec = measure_end_.to_sec();

  while (next_arrival < workload_.flows.size() || !active_.empty()) {
    // Next event: earliest of next arrival and earliest completion.
    double t_event = 1e300;
    bool is_arrival = false;
    if (next_arrival < workload_.flows.size()) {
      t_event = workload_.flows[next_arrival].arrival.to_sec();
      is_arrival = true;
    }
    for (const ActiveFlow& f : active_) {
      if (f.rate_bps <= 0.0) continue;
      const double done = now_sec + f.remaining_bits / f.rate_bps;
      if (done < t_event) {
        t_event = done;
        is_arrival = false;
      }
    }
    assert(t_event < 1e299 && "stuck: no arrivals and no progressing flows");
    if (is_arrival) {
      t_event = workload_.flows[next_arrival].arrival.to_sec();
    }

    // Advance all active flows to t_event, crediting goodput within the
    // measurement window.
    const double dt = t_event - now_sec;
    if (dt > 0.0) {
      const double window = std::clamp(measure_end_sec - now_sec, 0.0, dt);
      for (ActiveFlow& f : active_) {
        const double bits = f.rate_bps * dt;
        f.remaining_bits -= bits;
        if (window > 0.0) {
          goodput_.deliver(DataSize::bytes(static_cast<std::int64_t>(
              f.rate_bps * window / 8.0)));
        }
      }
      now_sec = t_event;
    } else {
      now_sec = std::max(now_sec, t_event);
    }

    // Retire completed flows.
    for (std::size_t i = 0; i < active_.size();) {
      if (active_[i].remaining_bits <= kEpsilonBits) {
        const auto& wf = workload_.flows[active_[i].wl_index];
        const Time fct =
            Time::from_sec(now_sec) - wf.arrival + cfg_.base_latency;
        fct_.record(wf.size, fct);
        c_completed_->inc();
        active_[i] = active_.back();
        active_.pop_back();
      } else {
        ++i;
      }
    }

    // Admit all arrivals at this instant.
    while (next_arrival < workload_.flows.size() &&
           workload_.flows[next_arrival].arrival.to_sec() <= now_sec + 1e-15) {
      const workload::Flow& wf = workload_.flows[next_arrival];
      ActiveFlow f;
      f.wl_index = next_arrival;
      f.remaining_bits = static_cast<double>(wf.size.in_bits());
      f.n_constraints = 0;
      f.constraints[f.n_constraints++] = src_constraint(wf);
      f.constraints[f.n_constraints++] = dst_constraint(wf);
      if (cfg_.oversubscription > 1 &&
          wf.src_server / cfg_.servers_per_rack !=
              wf.dst_server / cfg_.servers_per_rack) {
        f.constraints[f.n_constraints++] = rack_up_constraint(wf);
        f.constraints[f.n_constraints++] = rack_down_constraint(wf);
      }
      f.frozen = false;
      active_.push_back(f);
      ++next_arrival;
    }

    {
      SIRIUS_PROFILE_SCOPE(hub_->profiler(),
                           telemetry::ProfScope::kEsnRates);
      recompute_rates();
    }
    c_recomputes_->inc();
    if (hub_->metrics_enabled()) {
      g_active_->set(static_cast<double>(active_.size()));
      hub_->maybe_sample(Time::from_sec(now_sec));
    }
  }

  if (hub_->metrics_enabled()) {
    g_active_->set(static_cast<double>(active_.size()));
    hub_->sample(Time::from_sec(now_sec));
  }

  EsnSimResult r;
  r.fct = fct_.summarize();
  r.goodput_normalized = goodput_.normalized(measure_end_);
  r.completed_flows = r.fct.completed_flows;
  r.sim_end = Time::from_sec(now_sec);
  return r;
}

}  // namespace sirius::esn
