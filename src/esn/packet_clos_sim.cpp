#include "esn/packet_clos_sim.hpp"

#include <cassert>

namespace sirius::esn {
namespace {

std::int64_t packets_for(DataSize size, DataSize mtu) {
  return (size.in_bytes() + mtu.in_bytes() - 1) / mtu.in_bytes();
}

std::int32_t bytes_of_packet(DataSize size, DataSize mtu, std::int64_t idx) {
  const std::int64_t total = packets_for(size, mtu);
  if (idx + 1 < total) return static_cast<std::int32_t>(mtu.in_bytes());
  return static_cast<std::int32_t>(size.in_bytes() -
                                   mtu.in_bytes() * (total - 1));
}

}  // namespace

PacketClosSim::PacketClosSim(PacketClosConfig cfg,
                             const workload::Workload& workload)
    : cfg_(cfg),
      workload_(workload),
      goodput_(cfg.esn.servers(), cfg.esn.server_rate),
      measure_end_(workload.last_arrival()) {
  assert(workload_.servers == cfg_.esn.servers());
  const std::int32_t s = cfg_.esn.servers();
  const std::int32_t r = cfg_.esn.racks;
  ports_.resize(static_cast<std::size_t>(2 * s + 2 * r));
  const DataRate rack_pipe =
      (cfg_.esn.server_rate * cfg_.esn.servers_per_rack) /
      cfg_.esn.oversubscription;
  for (std::int32_t i = 0; i < s; ++i) {
    ports_[static_cast<std::size_t>(i)].rate = cfg_.esn.server_rate;
    ports_[static_cast<std::size_t>(s + 2 * r + i)].rate =
        cfg_.esn.server_rate;
  }
  for (std::int32_t i = 0; i < 2 * r; ++i) {
    ports_[static_cast<std::size_t>(s + i)].rate = rack_pipe;
  }

  const std::size_t flows = workload_.flows.size();
  packets_left_.resize(flows);
  next_to_inject_.assign(flows, 0);
  flow_src_.resize(flows);
  flow_dst_.resize(flows);
}

std::int32_t PacketClosSim::port_for(const Packet& p) const {
  const std::int32_t s = cfg_.esn.servers();
  const std::int32_t r = cfg_.esn.racks;
  const std::int32_t src = flow_src_[static_cast<std::size_t>(p.flow)];
  const std::int32_t dst = flow_dst_[static_cast<std::size_t>(p.flow)];
  switch (p.stage) {
    case 0: return src;
    case 1: return s + src / cfg_.esn.servers_per_rack;
    case 2: return s + r + dst / cfg_.esn.servers_per_rack;
    case 3: return s + 2 * r + dst;
    default: assert(false); return -1;
  }
}

void PacketClosSim::inject_next(FlowId flow) {
  const auto fi = static_cast<std::size_t>(flow);
  const workload::Flow& wf = workload_.flows[fi];
  const std::int64_t total = packets_for(wf.size, cfg_.mtu);
  if (next_to_inject_[fi] >= total) return;
  Packet p;
  p.flow = flow;
  p.bytes = bytes_of_packet(wf.size, cfg_.mtu, next_to_inject_[fi]);
  p.last = (next_to_inject_[fi] + 1 == total);
  p.stage = 0;
  ++next_to_inject_[fi];
  enqueue(port_for(p), p);
}

void PacketClosSim::enqueue(std::int32_t port_id, Packet p) {
  Port& port = ports_[static_cast<std::size_t>(port_id)];
  port.fifo.push_back(p);
  if (!port.busy) {
    port.busy = true;
    serve(port_id);
  }
}

void PacketClosSim::serve(std::int32_t port_id) {
  Port& port = ports_[static_cast<std::size_t>(port_id)];
  assert(!port.fifo.empty());
  const Packet p = port.fifo.front();
  const Time tx = port.rate.transmission_time(DataSize::bytes(p.bytes));
  q_.schedule_in(tx, [this, port_id] {
    Port& pt = ports_[static_cast<std::size_t>(port_id)];
    const Packet done = pt.fifo.front();
    pt.fifo.pop_front();
    on_served(done);
    if (!pt.fifo.empty()) {
      serve(port_id);
    } else {
      pt.busy = false;
    }
  });
}

void PacketClosSim::on_served(Packet p) {
  const auto fi = static_cast<std::size_t>(p.flow);
  const workload::Flow& wf = workload_.flows[fi];
  const bool intra_rack = flow_src_[fi] / cfg_.esn.servers_per_rack ==
                          flow_dst_[fi] / cfg_.esn.servers_per_rack;

  if (p.stage < 3) {
    // Forward to the next stage (intra-rack traffic skips the core pipes).
    Packet nxt = p;
    nxt.stage = (intra_rack && p.stage == 0) ? 3 : p.stage + 1;
    q_.schedule_in(cfg_.per_hop_latency,
                   [this, nxt] { enqueue(port_for(nxt), nxt); });
    if (p.stage == 0) {
      // Self-clocked source: the flow's next packet enters the NIC queue
      // only now, which interleaves concurrent flows 1:1 — the packetised
      // analogue of per-flow fair queuing.
      inject_next(p.flow);
    }
    return;
  }

  // Stage 3: delivered to the destination server.
  if (q_.now() <= measure_end_) {
    goodput_.deliver(DataSize::bytes(p.bytes));
  }
  if (--packets_left_[fi] == 0) {
    fct_.record(wf.size, q_.now() - wf.arrival);
  }
}

EsnSimResult PacketClosSim::run() {
  for (std::size_t i = 0; i < workload_.flows.size(); ++i) {
    const workload::Flow& wf = workload_.flows[i];
    flow_src_[i] = wf.src_server;
    flow_dst_[i] = wf.dst_server;
    packets_left_[i] = packets_for(wf.size, cfg_.mtu);
    const auto flow = static_cast<FlowId>(i);
    q_.schedule_at(wf.arrival, [this, flow] { inject_next(flow); });
  }
  while (q_.step()) {
  }

  EsnSimResult r;
  r.fct = fct_.summarize();
  r.goodput_normalized = goodput_.normalized(measure_end_);
  r.completed_flows = r.fct.completed_flows;
  r.sim_end = q_.now();
  return r;
}

}  // namespace sirius::esn
