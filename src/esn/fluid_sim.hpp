// Idealised electrically-switched network (ESN) baseline (§7).
//
// The paper's baseline is deliberately idealised: a folded-Clos fabric with
// per-flow queues, back-pressure at every switch, and packet spraying over
// all paths — an upper bound for any real routing/congestion-control
// combination. Under those assumptions the fabric core never congests
// (non-blocking) and the only capacity constraints are the server NICs
// plus, in the oversubscribed variant, each rack's uplink capacity.
//
// That idealisation is *exactly* a max-min fair fluid model, which we
// simulate event-by-event: on every flow arrival/completion we recompute
// the global max-min allocation by progressive filling and advance all
// remaining-byte counters analytically. The same machinery with zero core
// constraints also provides the generic "ideal fabric" used in tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "stats/fct_tracker.hpp"
#include "stats/goodput.hpp"
#include "telemetry/hub.hpp"
#include "workload/flow.hpp"

namespace sirius::esn {

struct EsnConfig {
  std::int32_t racks = 64;
  std::int32_t servers_per_rack = 8;
  /// Per-server access rate (NIC / ToR port).
  DataRate server_rate = DataRate::gbps(50);
  /// Aggregation-tier oversubscription: 1 = non-blocking ("ESN (Ideal)"),
  /// 3 = 3:1 ("ESN-OSUB (Ideal)").
  std::int32_t oversubscription = 1;
  /// Base propagation + switching latency added to every flow (store and
  /// forward through the Clos tiers).
  Time base_latency = Time::us(2);
  /// Telemetry sink; null means a private disabled hub (see
  /// sim::SiriusSimConfig::telemetry for the contract).
  telemetry::Hub* telemetry = nullptr;

  [[nodiscard]] std::int32_t servers() const { return racks * servers_per_rack; }
};

struct EsnSimResult {
  stats::FctSummary fct;
  double goodput_normalized = 0.0;
  std::int64_t completed_flows = 0;
  Time sim_end;
};

/// Runs the fluid baseline over `workload`.
class EsnFluidSim {
 public:
  EsnFluidSim(EsnConfig cfg, const workload::Workload& workload);

  EsnSimResult run();

 private:
  struct ActiveFlow {
    std::size_t wl_index;      // index into workload_.flows
    double remaining_bits;
    double rate_bps = 0.0;
    std::int32_t constraints[4];
    std::int32_t n_constraints;
    bool frozen;               // scratch for the water-filling pass
  };

  void recompute_rates();
  [[nodiscard]] std::int32_t src_constraint(const workload::Flow& f) const;
  [[nodiscard]] std::int32_t dst_constraint(const workload::Flow& f) const;
  [[nodiscard]] std::int32_t rack_up_constraint(const workload::Flow& f) const;
  [[nodiscard]] std::int32_t rack_down_constraint(const workload::Flow& f) const;

  EsnConfig cfg_;
  const workload::Workload& workload_;
  std::vector<double> capacity_;  // per constraint, bits/sec

  std::vector<ActiveFlow> active_;
  stats::FctTracker fct_;
  stats::GoodputMeter goodput_;
  Time measure_end_;

  // recompute_rates() scratch, owned by the solver instance so the
  // water-filling pass carries no function-static state (each future shard
  // gets its own solver, so shards never meet through these).
  std::vector<double> scratch_cap_;
  std::vector<std::int32_t> scratch_cnt_;
  std::vector<std::vector<std::int32_t>> scratch_members_;
  std::vector<std::int32_t> scratch_touched_;

  // Telemetry spine (see sim::SiriusSim): counters bound once at
  // construction, bumped through the pointers.
  std::unique_ptr<telemetry::Hub> own_hub_;
  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* c_completed_ = nullptr;
  telemetry::Counter* c_recomputes_ = nullptr;
  telemetry::Gauge* g_active_ = nullptr;
};

}  // namespace sirius::esn
