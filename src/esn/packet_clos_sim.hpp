// Packet-level folded-Clos baseline, used to cross-validate the fluid
// ESN model at small scale.
//
// With per-flow queues, back-pressure and packet spraying (the paper's
// idealised baseline), a Clos fabric behaves like a tandem of four
// contention points per packet: source NIC -> rack uplink pipe -> rack
// downlink pipe -> destination NIC. Packet spraying makes the spine a
// single aggregated pipe (perfect balance), so this simulator models each
// stage as an explicit queue served at its stage rate, with fair (round-
// robin per flow) service at the NICs and FIFO service in the pipes.
//
// It is intentionally small-scale: per-packet events cost far more than
// the fluid model, and its role is validation, not headline numbers.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "esn/fluid_sim.hpp"
#include "sim/event_queue.hpp"

namespace sirius::esn {

struct PacketClosConfig {
  EsnConfig esn;  ///< same capacity parameters as the fluid model
  DataSize mtu = DataSize::bytes(1500);
  Time per_hop_latency = Time::ns(500);  ///< propagation + switch latency
};

/// Runs the packet-level baseline over `workload`.
class PacketClosSim {
 public:
  PacketClosSim(PacketClosConfig cfg, const workload::Workload& workload);

  EsnSimResult run();

 private:
  struct Packet {
    FlowId flow;
    std::int32_t bytes;
    bool last;
    std::int32_t stage;  // 0=nic up, 1=rack up, 2=rack down, 3=nic down
  };
  /// A served queue: FIFO or per-flow round-robin.
  struct Port {
    DataRate rate;
    bool busy = false;
    std::deque<Packet> fifo;
  };

  void inject_next(FlowId flow);
  void enqueue(std::int32_t port_id, Packet p);
  void serve(std::int32_t port_id);
  [[nodiscard]] std::int32_t port_for(const Packet& p) const;
  void on_served(Packet p);

  PacketClosConfig cfg_;
  const workload::Workload& workload_;
  sim::EventQueue q_;
  std::vector<Port> ports_;
  // Flow bookkeeping.
  std::vector<std::int64_t> packets_left_;    // per flow, not yet delivered
  std::vector<std::int64_t> next_to_inject_;  // per flow, next packet index
  std::vector<std::int32_t> flow_src_;
  std::vector<std::int32_t> flow_dst_;
  stats::FctTracker fct_;
  stats::GoodputMeter goodput_;
  Time measure_end_;
};

}  // namespace sirius::esn
