// Recovery-curve instrumentation for mid-run faults (§4.5).
//
// The resilience question the paper's fault-tolerance story raises is not
// *whether* goodput survives a rack failure but *what the transient looks
// like*: how deep the dip is while cells blackhole into the dead rack, how
// wide it is until detection + dissemination + schedule swap complete, and
// when throughput is back at the pre-fault level. RecoveryMeter bins
// delivered bytes into fixed-width time buckets during the run and, given
// the fault time, reduces the curve to dip depth / dip width /
// time-to-recover numbers comparable across scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "telemetry/series.hpp"

namespace sirius::stats {

/// One bucket of the goodput-vs-time curve.
struct RecoveryBin {
  Time start;
  double goodput_normalized = 0.0;
};

/// The reduced transient, all relative to the fault instant.
struct RecoverySummary {
  /// Deepest post-fault bin, as a fraction of the pre-fault baseline
  /// (1.0 = no visible dip; 0.0 = delivery fully stalled).
  double dip_floor_frac = 1.0;
  /// Total time post-fault bins spent below the recovery fraction.
  Time dip_width;
  /// First time after the fault at which goodput is back at or above
  /// `recover_frac` of the pre-fault baseline and stays there for the
  /// rest of the measured window. Infinite if it never recovers.
  Time time_to_recover = Time::infinity();
  /// Mean normalised goodput over the pre-fault bins (the baseline).
  double baseline = 0.0;
  bool recovered = false;
};

class RecoveryMeter : public ckpt::Snapshottable {
 public:
  /// `servers` and `server_rate` normalise bytes to fabric capacity, as in
  /// GoodputMeter; `bin` is the curve resolution.
  RecoveryMeter(std::int32_t servers, DataRate server_rate, Time bin);

  /// Accounts `bytes` delivered at time `now` to the covering bin.
  void deliver(Time now, DataSize bytes);

  /// The binned goodput curve from t = 0 to the last delivery, each bin
  /// normalised like GoodputMeter::normalized (1.0 = all servers at line
  /// rate for the whole bin).
  [[nodiscard]] std::vector<RecoveryBin> curve() const;

  /// Reduces the curve around a fault at `fault_at`: baseline = mean of
  /// complete pre-fault bins, dip/recovery measured against
  /// `recover_frac` x baseline. Bins at or after `until` are ignored
  /// (pass the end of the arrival window so the drain tail does not
  /// read as a dip). An infinite `until` keeps every bin.
  [[nodiscard]] RecoverySummary analyze(Time fault_at, double recover_frac,
                                        Time until = Time::infinity()) const;

  [[nodiscard]] Time bin() const { return bin_; }

  /// The underlying delivered-bytes series (telemetry spine); curve() is a
  /// normalised view of exactly these bins.
  [[nodiscard]] const telemetry::BinnedSeries& series() const {
    return series_;
  }

  /// Snapshottable: geometry is validated, the accumulated bins travel.
  void serialize(ckpt::Writer& w) const override;
  bool restore(ckpt::Reader& r) override;

 private:
  std::int32_t servers_;
  DataRate server_rate_;
  Time bin_;
  telemetry::BinnedSeries series_;  // delivered bytes per bin
};

}  // namespace sirius::stats
