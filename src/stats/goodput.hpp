// Normalised server goodput (Fig. 9b): total bytes delivered to
// applications during the measurement window, divided by simulated time
// and by the aggregate server bandwidth N * R.
#pragma once

#include <cstdint>

#include "ckpt/snapshot.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::stats {

class GoodputMeter : public ckpt::Snapshottable {
 public:
  GoodputMeter(std::int32_t servers, DataRate server_rate)
      : servers_(servers), server_rate_(server_rate) {}

  void deliver(DataSize bytes) { delivered_ += bytes; }

  [[nodiscard]] DataSize delivered() const { return delivered_; }

  /// Goodput over [0, horizon], normalised by N * R (1.0 = every server
  /// receiving at line rate for the whole window).
  [[nodiscard]] double normalized(Time horizon) const;

  /// Snapshottable: geometry is validated against the constructed meter.
  void serialize(ckpt::Writer& w) const override;
  bool restore(ckpt::Reader& r) override;

 private:
  std::int32_t servers_;
  DataRate server_rate_;
  DataSize delivered_;
};

}  // namespace sirius::stats
