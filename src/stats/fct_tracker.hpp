// Flow-completion-time bookkeeping for both simulators.
//
// The paper reports the 99th-percentile FCT of *short* flows
// (size < 100 KB) and the normalised average server goodput (Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/histogram.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius::stats {

/// The short-flow threshold used throughout §7.
inline constexpr std::int64_t kShortFlowBytes = 100'000;

struct FctSummary {
  std::int64_t completed_flows = 0;
  std::int64_t short_flows = 0;
  double short_fct_p99_ms = 0.0;
  double short_fct_p50_ms = 0.0;
  double short_fct_mean_ms = 0.0;
  double all_fct_p99_ms = 0.0;
  double all_fct_mean_ms = 0.0;
};

/// Collects completion records and summarises them.
class FctTracker : public ckpt::Snapshottable {
 public:
  /// Records a completed flow of `size` with completion latency `fct`.
  void record(DataSize size, Time fct);

  [[nodiscard]] std::int64_t completed() const { return completed_; }

  FctSummary summarize();

  /// Snapshottable: samples travel in insertion order so the summary's
  /// float accumulation is bit-identical after a restore.
  void serialize(ckpt::Writer& w) const override;
  bool restore(ckpt::Reader& r) override;

 private:
  PercentileTracker all_ms_;
  PercentileTracker short_ms_;
  std::int64_t completed_ = 0;
};

}  // namespace sirius::stats
