#include "stats/occupancy.hpp"

namespace sirius::stats {

double OccupancyAggregator::mean_peak_bytes() const {
  if (entities_ == 0) return 0.0;
  return static_cast<double>(sum_peaks_.in_bytes()) /
         static_cast<double>(entities_);
}


void ByteGauge::serialize(ckpt::Writer& w) const {
  w.i64(current_.in_bytes());
  w.i64(peak_.in_bytes());
}

bool ByteGauge::restore(ckpt::Reader& r) {
  const std::int64_t current = r.i64();
  const std::int64_t peak = r.i64();
  if (!r.ok()) return false;
  if (current < 0 || peak < current) {
    r.fail("byte gauge state out of range");
    return false;
  }
  current_ = DataSize::bytes(current);
  peak_ = DataSize::bytes(peak);
  return true;
}

void OccupancyAggregator::serialize(ckpt::Writer& w) const {
  w.i64(worst_peak_.in_bytes());
  w.i64(sum_peaks_.in_bytes());
  w.i64(entities_);
}

bool OccupancyAggregator::restore(ckpt::Reader& r) {
  const std::int64_t worst = r.i64();
  const std::int64_t sum = r.i64();
  const std::int64_t entities = r.i64();
  if (!r.ok()) return false;
  if (worst < 0 || sum < 0 || entities < 0) {
    r.fail("occupancy aggregator state out of range");
    return false;
  }
  worst_peak_ = DataSize::bytes(worst);
  sum_peaks_ = DataSize::bytes(sum);
  entities_ = entities;
  return true;
}

}  // namespace sirius::stats
