#include "stats/occupancy.hpp"

// Header-only; this TU anchors the library.
