#include "stats/occupancy.hpp"

namespace sirius::stats {

double OccupancyAggregator::mean_peak_bytes() const {
  if (entities_ == 0) return 0.0;
  return static_cast<double>(sum_peaks_.in_bytes()) /
         static_cast<double>(entities_);
}

}  // namespace sirius::stats
