#include "stats/recovery.hpp"

#include <algorithm>

#include "common/invariant.hpp"

namespace sirius::stats {

RecoveryMeter::RecoveryMeter(std::int32_t servers, DataRate server_rate,
                             Time bin)
    : servers_(servers), server_rate_(server_rate), bin_(bin), series_(bin) {
  SIRIUS_INVARIANT(servers >= 1, "RecoveryMeter needs >= 1 server, got %d",
                   servers);
  SIRIUS_INVARIANT(bin > Time::zero(), "RecoveryMeter bin must be positive");
}

void RecoveryMeter::deliver(Time now, DataSize bytes) {
  series_.add(now, static_cast<double>(bytes.in_bytes()));
}

std::vector<RecoveryBin> RecoveryMeter::curve() const {
  const std::vector<double>& per_bin = series_.bins();
  std::vector<RecoveryBin> out;
  out.reserve(per_bin.size());
  const double capacity_bits =
      static_cast<double>(server_rate_.bits_per_sec()) * servers_ *
      bin_.to_sec();
  for (std::size_t i = 0; i < per_bin.size(); ++i) {
    RecoveryBin b;
    b.start = series_.bin_start(i);
    b.goodput_normalized =
        capacity_bits > 0.0 ? per_bin[i] * 8.0 / capacity_bits : 0.0;
    out.push_back(b);
  }
  return out;
}

RecoverySummary RecoveryMeter::analyze(Time fault_at, double recover_frac,
                                       Time until) const {
  RecoverySummary out;
  const std::vector<RecoveryBin> bins = curve();
  // Baseline: complete bins strictly before the fault.
  double pre_sum = 0.0;
  std::int64_t pre_n = 0;
  std::size_t first_post = bins.size();
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i].start + bin_ <= fault_at) {
      // Deterministic reduction: bins are iterated in dense index order, so
      // the floating-point sum is bit-identical run to run and shard count
      // can never change it (the curve is assembled on one thread).
      // sirius-lint: allow(float-reduction-order)
      pre_sum += bins[i].goodput_normalized;
      ++pre_n;
    } else if (first_post == bins.size()) {
      first_post = i;
    }
  }
  if (pre_n == 0) return out;  // fault before any complete bin: undefined
  out.baseline = pre_sum / static_cast<double>(pre_n);
  if (out.baseline <= 0.0) return out;

  const double floor = recover_frac * out.baseline;
  double dip_floor = 1.0;
  Time dip_width = Time::zero();
  std::size_t last_bad = first_post;  // one past the last below-floor bin
  std::size_t end_i = first_post;     // one past the last counted bin
  for (std::size_t i = first_post; i < bins.size(); ++i) {
    if (bins[i].start + bin_ > until) break;  // drain tail: not a dip
    end_i = i + 1;
    const double frac = bins[i].goodput_normalized / out.baseline;
    dip_floor = std::min(dip_floor, frac);
    if (bins[i].goodput_normalized < floor) {
      dip_width = dip_width + bin_;
      last_bad = i + 1;
    }
  }
  out.dip_floor_frac = dip_floor;
  out.dip_width = dip_width;
  // Recovered = the window has post-fault bins and the final one is back
  // at or above the floor (the dip ended inside the window).
  if (end_i > first_post && last_bad < end_i) {
    out.recovered = true;
    const Time back_at = last_bad == first_post
                             ? fault_at
                             : bins[last_bad - 1].start + bin_;
    out.time_to_recover =
        back_at > fault_at ? back_at - fault_at : Time::zero();
  }
  return out;
}


void RecoveryMeter::serialize(ckpt::Writer& w) const {
  w.i32(servers_);
  w.i64(server_rate_.bits_per_sec());
  w.i64(bin_.picoseconds());
  w.vec_f64(series_.bins());
}

bool RecoveryMeter::restore(ckpt::Reader& r) {
  const std::int32_t servers = r.i32();
  const std::int64_t rate_bps = r.i64();
  const std::int64_t bin_ps = r.i64();
  auto bins = r.vec_f64("recovery curve bins");
  if (!r.ok()) return false;
  if (servers != servers_ || rate_bps != server_rate_.bits_per_sec() ||
      bin_ps != bin_.picoseconds()) {
    r.fail("recovery meter geometry does not match this run's config");
    return false;
  }
  series_.set_bins(std::move(bins));
  return true;
}

}  // namespace sirius::stats
