#include "stats/fct_tracker.hpp"

namespace sirius::stats {

void FctTracker::record(DataSize size, Time fct) {
  const double ms = fct.to_ms();
  all_ms_.add(ms);
  if (size.in_bytes() < kShortFlowBytes) {
    short_ms_.add(ms);
  }
  ++completed_;
}

FctSummary FctTracker::summarize() {
  FctSummary s;
  s.completed_flows = completed_;
  s.short_flows = static_cast<std::int64_t>(short_ms_.count());
  if (!short_ms_.empty()) {
    s.short_fct_p99_ms = short_ms_.percentile(99.0);
    s.short_fct_p50_ms = short_ms_.percentile(50.0);
    s.short_fct_mean_ms = short_ms_.mean();
  }
  if (!all_ms_.empty()) {
    s.all_fct_p99_ms = all_ms_.percentile(99.0);
    s.all_fct_mean_ms = all_ms_.mean();
  }
  return s;
}

}  // namespace sirius::stats
