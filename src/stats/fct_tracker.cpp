#include "stats/fct_tracker.hpp"

namespace sirius::stats {

void FctTracker::record(DataSize size, Time fct) {
  const double ms = fct.to_ms();
  all_ms_.add(ms);
  if (size.in_bytes() < kShortFlowBytes) {
    short_ms_.add(ms);
  }
  ++completed_;
}

FctSummary FctTracker::summarize() {
  FctSummary s;
  s.completed_flows = completed_;
  s.short_flows = static_cast<std::int64_t>(short_ms_.count());
  if (!short_ms_.empty()) {
    s.short_fct_p99_ms = short_ms_.percentile(99.0);
    s.short_fct_p50_ms = short_ms_.percentile(50.0);
    s.short_fct_mean_ms = short_ms_.mean();
  }
  if (!all_ms_.empty()) {
    s.all_fct_p99_ms = all_ms_.percentile(99.0);
    s.all_fct_mean_ms = all_ms_.mean();
  }
  return s;
}


void FctTracker::serialize(ckpt::Writer& w) const {
  w.vec_f64(all_ms_.samples());
  w.vec_f64(short_ms_.samples());
  w.i64(completed_);
}

bool FctTracker::restore(ckpt::Reader& r) {
  auto all = r.vec_f64("fct all-flow samples");
  auto shorts = r.vec_f64("fct short-flow samples");
  const std::int64_t completed = r.i64();
  if (!r.ok()) return false;
  if (completed < 0 ||
      all.size() != static_cast<std::size_t>(completed) ||
      shorts.size() > all.size()) {
    r.fail("fct tracker state out of range");
    return false;
  }
  all_ms_.set_samples(std::move(all));
  short_ms_.set_samples(std::move(shorts));
  completed_ = completed;
  return true;
}

}  // namespace sirius::stats
