#include "stats/goodput.hpp"

namespace sirius::stats {

double GoodputMeter::normalized(Time horizon) const {
  if (horizon <= Time::zero()) return 0.0;
  const double bits = static_cast<double>(delivered_.in_bits());
  const double capacity =
      static_cast<double>(server_rate_.bits_per_sec()) * servers_ *
      horizon.to_sec();
  return bits / capacity;
}

}  // namespace sirius::stats
