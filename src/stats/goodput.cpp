#include "stats/goodput.hpp"

namespace sirius::stats {

double GoodputMeter::normalized(Time horizon) const {
  if (horizon <= Time::zero()) return 0.0;
  const double bits = static_cast<double>(delivered_.in_bits());
  const double capacity =
      static_cast<double>(server_rate_.bits_per_sec()) * servers_ *
      horizon.to_sec();
  return bits / capacity;
}


void GoodputMeter::serialize(ckpt::Writer& w) const {
  w.i32(servers_);
  w.i64(server_rate_.bits_per_sec());
  w.i64(delivered_.in_bytes());
}

bool GoodputMeter::restore(ckpt::Reader& r) {
  const std::int32_t servers = r.i32();
  const std::int64_t rate_bps = r.i64();
  const std::int64_t delivered = r.i64();
  if (!r.ok()) return false;
  if (servers != servers_ || rate_bps != server_rate_.bits_per_sec()) {
    r.fail("goodput meter geometry does not match this run's config");
    return false;
  }
  if (delivered < 0) {
    r.fail("goodput meter delivered bytes negative");
    return false;
  }
  delivered_ = DataSize::bytes(delivered);
  return true;
}

}  // namespace sirius::stats
