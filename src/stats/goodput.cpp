#include "stats/goodput.hpp"

// Header-only; this TU anchors the library.
