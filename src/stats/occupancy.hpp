// Queue-occupancy accounting (Fig. 10c/10d): peak aggregate queue bytes
// per node and peak per-flow reorder-buffer bytes at receivers.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "common/units.hpp"

namespace sirius::stats {

/// Tracks a single gauge in bytes with peak.
class ByteGauge {
 public:
  void add(DataSize d) {
    current_ += d.in_bytes();
    peak_ = std::max(peak_, current_);
  }
  void remove(DataSize d) { current_ -= d.in_bytes(); }

  std::int64_t current_bytes() const { return current_; }
  std::int64_t peak_bytes() const { return peak_; }
  double peak_kb() const { return static_cast<double>(peak_) * 1e-3; }

 private:
  std::int64_t current_ = 0;
  std::int64_t peak_ = 0;
};

/// Aggregates per-entity gauges into a fleet-wide worst case.
class OccupancyAggregator {
 public:
  void observe_peak(std::int64_t peak_bytes) {
    worst_peak_ = std::max(worst_peak_, peak_bytes);
    sum_peaks_ += peak_bytes;
    ++entities_;
  }
  std::int64_t worst_peak_bytes() const { return worst_peak_; }
  double worst_peak_kb() const {
    return static_cast<double>(worst_peak_) * 1e-3;
  }
  double mean_peak_bytes() const {
    return entities_ ? static_cast<double>(sum_peaks_) /
                           static_cast<double>(entities_)
                     : 0.0;
  }

 private:
  std::int64_t worst_peak_ = 0;
  std::int64_t sum_peaks_ = 0;
  std::int64_t entities_ = 0;
};

}  // namespace sirius::stats
