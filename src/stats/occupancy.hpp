// Queue-occupancy accounting (Fig. 10c/10d): peak aggregate queue bytes
// per node and peak per-flow reorder-buffer bytes at receivers.
#pragma once

#include <algorithm>
#include <cstdint>

#include "ckpt/io.hpp"
#include "common/histogram.hpp"
#include "common/units.hpp"

namespace sirius::stats {

/// Tracks a single byte-counted gauge with its sticky peak.
class ByteGauge {
 public:
  void add(DataSize d) {
    current_ += d;
    peak_ = std::max(peak_, current_);
  }
  void remove(DataSize d) { current_ -= d; }

  [[nodiscard]] DataSize current() const { return current_; }
  [[nodiscard]] DataSize peak() const { return peak_; }

  /// Snapshottable (value type): current level + sticky peak.
  void serialize(ckpt::Writer& w) const;
  bool restore(ckpt::Reader& r);

 private:
  DataSize current_;
  DataSize peak_;
};

/// Aggregates per-entity gauge peaks into a fleet-wide worst case.
class OccupancyAggregator {
 public:
  void observe_peak(DataSize peak) {
    worst_peak_ = std::max(worst_peak_, peak);
    sum_peaks_ += peak;
    ++entities_;
  }
  [[nodiscard]] DataSize worst_peak() const { return worst_peak_; }
  /// Mean of the observed per-entity peaks, in bytes.
  [[nodiscard]] double mean_peak_bytes() const;

  /// Snapshottable (value type).
  void serialize(ckpt::Writer& w) const;
  bool restore(ckpt::Reader& r);

 private:
  DataSize worst_peak_;
  DataSize sum_peaks_;
  std::int64_t entities_ = 0;
};

}  // namespace sirius::stats
