// Trace replay + failure drill: generate a §7 workload, persist it as a
// CSV trace, reload it, and replay the identical flows through (a) the
// healthy network, (b) the network with two failed racks running the
// adjusted alive-set schedule, and (c) the idealised ESN — the workflow an
// operator would use to evaluate Sirius against production traces.
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "esn/fluid_sim.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/trace_io.hpp"

using namespace sirius;
using namespace sirius::core;

int main() {
  ExperimentConfig cfg;
  cfg.racks = 32;
  cfg.servers_per_rack = 4;
  cfg.base_uplinks = 4;
  cfg.flows = 5'000;

  // 1. Generate and persist.
  const auto generated = make_workload(cfg, 0.5);
  const std::string path = "/tmp/sirius_trace_example.csv";
  if (!workload::save_trace_csv(generated, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("saved %zu flows (%s) to %s\n", generated.flows.size(),
              generated.total_bytes().to_string().c_str(), path.c_str());

  // 2. Reload — this is where a real production trace would come in.
  auto loaded = workload::load_trace_csv(path, cfg.servers(),
                                         cfg.server_share());
  if (!loaded.has_value()) {
    std::fprintf(stderr, "trace reload failed\n");
    return 1;
  }
  loaded->offered_load = 0.5;

  // 3. Replay.
  std::printf("\nreplaying the trace:\n");
  print_metrics_header();
  {
    auto m = run_sirius(cfg, SiriusVariant{}, *loaded);
    print_metrics_row(m);
  }
  {
    sim::SiriusSimConfig broken = make_sirius_config(cfg, SiriusVariant{});
    broken.failed_racks = {3, 17};
    sim::SiriusSim sim(broken, *loaded);
    const auto r = sim.run();
    std::printf("%-16s %5.0f%% %14.4f %9.3f %12.1f %13.1f %10lld"
                "   (+%lld flows rejected: endpoints on failed racks)\n",
                "Sirius-2failed", 50.0, r.fct.short_fct_p99_ms,
                r.goodput_normalized, r.worst_node_queue_peak_kb,
                r.worst_reorder_peak_kb,
                static_cast<long long>(r.incomplete_flows),
                static_cast<long long>(r.rejected_flows));
  }
  {
    auto m = run_esn(cfg, 1, *loaded);
    print_metrics_row(m);
  }
  std::printf("\nIdentical arrivals, three systems: the CSV is the contract."
              "\n");
  std::remove(path.c_str());
  return 0;
}
