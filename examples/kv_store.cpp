// Key-value store traffic (§2.2): RPC-sized transfers with high fanout —
// the bursty, small-packet workload that motivates nanosecond switching.
// Reproduces the §2.2 arithmetic on the packet mix and then measures the
// tail latency of small GET responses on Sirius at increasing load.
#include <cstdio>

#include "common/histogram.hpp"
#include "core/network_api.hpp"
#include "workload/packet_mix.hpp"
#include <initializer_list>

using namespace sirius;

int main() {
  // --- The §2.2 motivation, from the packet-mix model -------------------
  const auto mix = workload::PacketMix::cloud_trace_2019();
  std::printf("cloud trace packet mix: %.1f%% < 128 B, %.1f%% <= 576 B\n",
              mix.fraction_at_or_below(DataSize::bytes(128)) * 100.0,
              mix.fraction_at_or_below(DataSize::bytes(576)) * 100.0);
  const Time interval = workload::switch_interval(DataSize::bytes(576),
                                                  DataRate::gbps(50));
  std::printf("576 B at 50 Gbps serialises in %s -> a spraying endpoint "
              "re-tunes every packet;\nguardband for <10%% overhead: %s\n\n",
              interval.to_string().c_str(),
              workload::max_guardband_for_overhead(DataSize::bytes(576),
                                                   DataRate::gbps(50), 0.1)
                  .to_string()
                  .c_str());

  // --- GET-response tail latency on Sirius -------------------------------
  sim::SiriusSimConfig cfg;
  cfg.racks = 32;
  cfg.servers_per_rack = 8;
  cfg.base_uplinks = 8;

  Rng rng(7);
  for (const double load : {0.1, 0.5}) {
    core::SiriusNetwork net(cfg);
    // One cache server per rack answers GETs from random clients; response
    // sizes follow the trace mix, a few thousand RPCs per run.
    constexpr int kRpcs = 5'000;
    const double interarrival_ns =
        576.0 * 8.0 / (50.0 * load) * 32.0 / kRpcs * kRpcs;  // per server
    std::vector<FlowId> ids;
    Time clock = Time::zero();
    for (int i = 0; i < kRpcs; ++i) {
      const auto cache =
          static_cast<std::int32_t>(rng.below(32)) * cfg.servers_per_rack;
      auto client = static_cast<std::int32_t>(rng.below(
          static_cast<std::uint64_t>(cfg.servers())));
      if (client == cache) client = (client + 1) % cfg.servers();
      const DataSize resp = mix.sample(rng);
      ids.push_back(net.send(cache, client, resp, clock));
      clock += Time::from_ns(interarrival_ns / kRpcs * 32.0 / load);
    }
    auto result = net.run();
    PercentileTracker fct_us;
    for (const FlowId id : ids) {
      fct_us.add(result.fct_of(id).to_us());
    }
    std::printf("load %3.0f%%: GET response FCT p50 %6.2f us   p99 %6.2f us"
                "   p99.9 %6.2f us\n",
                load * 100.0, fct_us.percentile(50.0), fct_us.percentile(99.0),
                fct_us.percentile(99.9));
  }
  std::printf("\nSingle-cell responses cross the flat core in a handful of "
              "epochs even at the tail — no electrical hierarchy to "
              "traverse.\n");
  return 0;
}
