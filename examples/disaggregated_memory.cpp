// Memory disaggregation (§1, §2.1): compute servers page 4 KB blocks
// to/from remote memory servers. The fetch latency budget is brutal —
// every microsecond of network latency lands directly on the memory-stall
// path — and the access pattern is a high-fanout stream of small
// transfers, exactly the §2.2 regime.
//
// Measures the remote-read latency distribution on Sirius with the
// request/grant protocol, and shows the effect of the queue bound Q on
// the tail under contention (many compute nodes hammering few memory
// nodes).
#include <cstdio>
#include <vector>

#include "common/histogram.hpp"
#include "core/network_api.hpp"
#include <initializer_list>

using namespace sirius;

namespace {

PercentileTracker run_trial(std::int32_t q, double contention) {
  sim::SiriusSimConfig cfg;
  cfg.racks = 32;
  cfg.servers_per_rack = 8;
  cfg.base_uplinks = 8;
  cfg.queue_limit = q;

  // Racks 0-3 hold memory servers; the rest are compute.
  Rng rng(13);
  core::SiriusNetwork net(cfg);
  std::vector<FlowId> reads;
  constexpr int kReads = 4'000;
  const DataSize page = DataSize::kilobytes(4);
  Time clock = Time::zero();
  for (int i = 0; i < kReads; ++i) {
    const auto mem_rack = static_cast<std::int32_t>(rng.below(4));
    const auto mem_server =
        mem_rack * cfg.servers_per_rack +
        static_cast<std::int32_t>(rng.below(
            static_cast<std::uint64_t>(cfg.servers_per_rack)));
    const auto compute_server =
        4 * cfg.servers_per_rack +
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(
            cfg.servers() - 4 * cfg.servers_per_rack)));
    // Page fetch: memory server -> compute server.
    reads.push_back(net.send(mem_server, compute_server, page, clock));
    clock += Time::from_ns(4096.0 * 8.0 / (50.0 * contention));
  }
  auto result = net.run();
  PercentileTracker lat_us;
  for (const FlowId id : reads) {
    lat_us.add(result.fct_of(id).to_us());
  }
  return lat_us;
}

}  // namespace

int main() {
  std::printf("remote 4 KB page reads from 4 memory racks (32-rack "
              "cluster)\n\n");
  std::printf("%-4s %-12s %-10s %-10s %-10s\n", "Q", "contention", "p50(us)",
              "p99(us)", "p99.9(us)");
  for (const double contention : {0.2, 0.8}) {
    for (const std::int32_t q : {2, 4, 16}) {
      auto lat = run_trial(q, contention);
      std::printf("%-4d %-12.1f %-10.2f %-10.2f %-10.2f\n", q, contention,
                  lat.percentile(50.0), lat.percentile(99.0),
                  lat.percentile(99.9));
    }
  }
  std::printf("\nBounded intermediate queues (Q=4) keep the paging tail "
              "flat under contention: the fabric adds predictable "
              "epoch-granularity latency, not queue-depth latency.\n");
  return 0;
}
