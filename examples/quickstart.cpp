// Quickstart: build a Sirius deployment, send a few flows, inspect results.
//
//   $ ./examples/quickstart
//
// Walks through the three layers of the public API:
//  1. device level   — lasers, gratings, link budget;
//  2. network level  — topology, schedule, guardband;
//  3. system level   — SiriusNetwork: submit flows, run, read FCTs.
#include <cstdio>
#include <memory>

#include "core/network_api.hpp"
#include "optical/disaggregated_laser.hpp"
#include "optical/link_budget.hpp"
#include "phy/transceiver.hpp"
#include "sched/schedule.hpp"

using namespace sirius;

int main() {
  // --- 1. Devices --------------------------------------------------------
  Rng rng(1);
  auto laser = std::make_unique<optical::FixedBankLaser>(
      112, optical::SoaConfig{}, rng);
  std::printf("disaggregated laser: %d wavelengths, worst-case tuning %s\n",
              laser->wavelengths(),
              laser->worst_case_latency().to_string().c_str());

  optical::LinkBudget budget;
  std::printf("link budget: launch %.1f dBm required; a 16.1 dBm laser "
              "feeds %d transceivers\n",
              budget.required_launch_power().in_dbm(),
              budget.max_sharing_degree(optical::OpticalPower::dbm(16.1)));

  phy::Transceiver xcvr(std::move(laser), /*peers=*/64);
  std::printf("end-to-end reconfiguration budget: %s\n\n",
              xcvr.reconfiguration_budget().total().to_string().c_str());

  // --- 2. Network --------------------------------------------------------
  sim::SiriusSimConfig cfg;
  cfg.racks = 32;
  cfg.servers_per_rack = 8;
  cfg.base_uplinks = 8;          // ESN-equivalent uplinks
  cfg.uplink_multiplier = 1.5;   // Valiant-routing headroom
  cfg.queue_limit = 4;           // congestion-control bound Q

  sched::CyclicSchedule sched(cfg.racks, cfg.uplinks());
  std::printf("network: %d racks, %d uplinks each, %d slots/round "
              "(%s per round)\n",
              cfg.racks, cfg.uplinks(), sched.slots_per_round(),
              (cfg.slots.slot_duration() * sched.slots_per_round())
                  .to_string()
                  .c_str());

  // --- 3. Flows ----------------------------------------------------------
  core::SiriusNetwork net(cfg);
  const FlowId small = net.send(0, 100, DataSize::kilobytes(4), Time::zero());
  const FlowId medium =
      net.send(17, 200, DataSize::kilobytes(100), Time::zero());
  const FlowId large =
      net.send(42, 250, DataSize::megabytes(10), Time::us(5));

  auto result = net.run();
  std::printf("\nflow completion times:\n");
  std::printf("  4 KB   : %s\n", result.fct_of(small).to_string().c_str());
  std::printf("  100 KB : %s\n", result.fct_of(medium).to_string().c_str());
  std::printf("  10 MB  : %s\n", result.fct_of(large).to_string().c_str());
  std::printf("cells delivered through the optical core: %lld\n",
              static_cast<long long>(result.raw().cells_delivered));
  return 0;
}
