// Distributed DNN training (§1, §2.1): a ring all-reduce of gradient
// shards across accelerator servers — the hardware-driven, high-fanout
// workload Sirius targets. Compares the all-reduce step time on Sirius
// against the idealised non-blocking ESN.
//
// Ring all-reduce over W workers of a G-byte gradient: 2(W-1) phases, each
// sending G/W bytes to the ring neighbour. We issue each phase's flows
// when the previous phase's slowest flow finishes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/network_api.hpp"
#include "esn/fluid_sim.hpp"
#include <initializer_list>

using namespace sirius;

namespace {

struct PhasePlan {
  std::vector<workload::Flow> flows;
};

// Builds the flows of one all-reduce phase starting at `start`.
std::vector<std::pair<std::int32_t, std::int32_t>> ring_pairs(
    const std::vector<std::int32_t>& workers) {
  std::vector<std::pair<std::int32_t, std::int32_t>> out;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    out.push_back({workers[i], workers[(i + 1) % workers.size()]});
  }
  return out;
}

}  // namespace

int main() {
  sim::SiriusSimConfig cfg;
  cfg.racks = 32;
  cfg.servers_per_rack = 8;
  cfg.base_uplinks = 8;

  // 16 workers spread one-per-rack (worst case for locality).
  std::vector<std::int32_t> workers;
  for (std::int32_t r = 0; r < 32; r += 2) {
    workers.push_back(r * cfg.servers_per_rack);
  }
  const DataSize gradient = DataSize::megabytes(32);
  const DataSize shard =
      DataSize::bytes(gradient.in_bytes() /
                      static_cast<std::int64_t>(workers.size()));
  const int phases = 2 * (static_cast<int>(workers.size()) - 1);

  std::printf("ring all-reduce: %zu workers, %s gradient, %s shards, %d "
              "phases\n\n",
              workers.size(), gradient.to_string().c_str(),
              shard.to_string().c_str(), phases);

  // Phase-by-phase on Sirius: issue a phase, run it, take the slowest
  // completion as the next phase's start.
  Time sirius_clock = Time::zero();
  for (int p = 0; p < phases; ++p) {
    core::SiriusNetwork net(cfg);
    std::vector<FlowId> ids;
    for (const auto& [src, dst] : ring_pairs(workers)) {
      ids.push_back(net.send(src, dst, shard, sirius_clock));
    }
    auto result = net.run();
    Time slowest = Time::zero();
    for (const FlowId id : ids) {
      slowest = std::max(slowest, result.completion_of(id));
    }
    sirius_clock = slowest;
  }

  // The same schedule on the idealised ESN fluid model.
  Time esn_clock = Time::zero();
  esn::EsnConfig ecfg;
  ecfg.racks = cfg.racks;
  ecfg.servers_per_rack = cfg.servers_per_rack;
  ecfg.server_rate = cfg.server_share();
  for (int p = 0; p < phases; ++p) {
    workload::Workload w;
    w.servers = cfg.servers();
    w.server_rate = ecfg.server_rate;
    FlowId id = 0;
    for (const auto& [src, dst] : ring_pairs(workers)) {
      workload::Flow f;
      f.id = id++;
      f.src_server = src;
      f.dst_server = dst;
      f.size = shard;
      f.arrival = esn_clock;
      w.flows.push_back(f);
    }
    esn::EsnFluidSim sim(ecfg, w);
    esn_clock = sim.run().sim_end;
  }

  const double ideal_ms =
      2.0 * (static_cast<double>(workers.size()) - 1.0) *
      static_cast<double>(shard.in_bits()) /
      static_cast<double>(cfg.server_share().bits_per_sec()) * 1e3;

  std::printf("all-reduce step time:\n");
  std::printf("  Sirius          : %8.3f ms\n", sirius_clock.to_ms());
  std::printf("  ESN (Ideal)     : %8.3f ms\n", esn_clock.to_ms());
  std::printf("  analytic bound  : %8.3f ms (2(W-1)·shard / link)\n",
              ideal_ms);
  std::printf("\nSirius sustains the synchronous, high-fanout phases within "
              "a small factor of the ideal fabric while using a passive "
              "core.\n");
  return 0;
}
