// Ablation — §8's related-work comparison: static expander topologies
// (Kassing et al. [37]) versus Sirius.
//
// Expanders beat Clos on cost at equal throughput, but every byte still
// crosses ~log_d(N) electrical switches, so their power/cost rides the
// fading CMOS curve. Sirius' detour costs a flat 2 hops through a passive
// core. This bench prints the expander's path-length statistics (which set
// its capacity tax) next to Sirius' constant 2, and the per-Tbps power of
// the three designs.
#include <cstdio>
#include <initializer_list>

#include "powercost/power_model.hpp"
#include "topo/expander.hpp"

using namespace sirius;
using namespace sirius::topo;

int main() {
  std::printf("Expander path-length vs Sirius' flat detour\n");
  std::printf("%-10s %-8s %-12s %-10s %-18s\n", "switches", "degree",
              "avg path", "diameter", "capacity tax (hops)");
  for (const auto& [n, d] : {std::pair{64, 8}, {128, 12}, {256, 16},
                             {512, 16}, {1024, 32}}) {
    ExpanderGraph g(n, d, 7);
    std::printf("%-10d %-8d %-12.2f %-10d %-18.2f\n", n, d,
                g.average_path_length(), g.diameter(),
                g.average_path_length());
  }
  std::printf("%-10s %-8s %-12s %-10s %-18s\n", "Sirius", "-", "2.00 flat",
              "2", "2.00 (Valiant)");

  // Power: each hop of an expander path crosses a switch + transceiver
  // pair; Sirius crosses two tunable transceivers and zero core switches.
  powercost::PowerModel pm;
  ExpanderGraph g(512, 16, 7);
  const double hops = g.average_path_length();
  const double expander_w =
      hops * pm.switch_watts_per_tbps() +
      (hops + 1.0) * 2.0 * pm.transceiver_watts_per_tbps();
  std::printf("\npower per Tbps (large deployment):\n");
  std::printf("  ESN (4-tier Clos)    : %7.1f W/Tbps\n",
              pm.esn_power_per_tbps(4));
  std::printf("  expander (512 x 16)  : %7.1f W/Tbps\n", expander_w);
  std::printf("  Sirius (3x tunables) : %7.1f W/Tbps\n",
              pm.sirius_power_per_tbps(3.0));
  std::printf("\n(expanders soften the Clos scale tax but stay on the CMOS "
              "curve; Sirius' core is passive and generation-proof, §8)\n");
  return 0;
}
