// Ablation — time-synchronisation design choices (§4.4):
//   * leader rotation vs a fixed leader under failures,
//   * PLL gain sensitivity,
//   * phase-measurement-noise sensitivity.
#include <cstdio>

#include "sync/sync_protocol.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::sync;

int main() {
  constexpr std::int64_t kEpochs = 120'000;
  constexpr std::int64_t kWarmup = 20'000;

  std::printf("Ablation A: leader rotation vs fixed leader under failure\n");
  {
    // Rotation (default): a failed leader is skipped within one epoch.
    SyncProtocolConfig rot;
    rot.nodes = 8;
    SyncProtocolSim sim(rot, 1);
    sim.fail_node_at(0, kEpochs / 2);
    const auto r = sim.run(kEpochs, kEpochs / 2 + 1'000);
    std::printf("  rotation, node-0 fails : max offset %.2f ps, "
                "failovers %lld\n",
                r.max_pairwise_offset_ps,
                static_cast<long long>(r.leader_failovers));
    // A "fixed leader" is rotation with an infinite tenure; if that leader
    // dies the others free-run on residual frequency error until the skip
    // logic kicks in — here the skip saves it, the point is the tenure.
    SyncProtocolConfig fixed = rot;
    fixed.leader_tenure_epochs = kEpochs;  // never rotates voluntarily
    SyncProtocolSim sim2(fixed, 1);
    sim2.fail_node_at(1, kEpochs / 2);  // node 1 is the fixed leader
    const auto r2 = sim2.run(kEpochs, kEpochs / 2 + 1'000);
    std::printf("  fixed leader fails     : max offset %.2f ps "
                "(recovered by failover skip)\n",
                r2.max_pairwise_offset_ps);
  }

  std::printf("\nAblation B: PLL gain\n");
  for (const double gain : {0.1, 0.5, 0.9}) {
    SyncProtocolConfig cfg;
    cfg.nodes = 8;
    cfg.pll_gain = gain;
    const auto r = SyncProtocolSim(cfg, 2).run(kEpochs, kWarmup);
    std::printf("  gain %.1f: max offset %.2f ps, converged@%lld epochs\n",
                gain, r.max_pairwise_offset_ps,
                static_cast<long long>(r.convergence_epochs));
  }

  std::printf("\nAblation C: phase-measurement noise\n");
  for (const double noise_ps : {0.2, 1.0, 5.0}) {
    SyncProtocolConfig cfg;
    cfg.nodes = 8;
    cfg.clock.phase_noise_ps = noise_ps;
    const auto r = SyncProtocolSim(cfg, 3).run(kEpochs, kWarmup);
    std::printf("  noise %.1f ps RMS: max offset %.2f ps\n", noise_ps,
                r.max_pairwise_offset_ps);
  }
  std::printf("\n(paper: +/-5 ps achieved with standard PLL/DLL hardware)\n");
  return 0;
}
