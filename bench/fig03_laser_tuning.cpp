// §3.2 — DSDBR tunable-laser tuning latency with the custom dampened-drive
// board: median 14 ns / worst-case 92 ns across all 12,432 ordered pairs of
// 112 wavelengths, versus ~10 ms with off-the-shelf drive electronics.
#include <cstdio>

#include "common/histogram.hpp"
#include "optical/dsdbr_laser.hpp"
#include <initializer_list>

using namespace sirius;
using optical::DriveMode;
using optical::DsdbrConfig;
using optical::DsdbrLaser;

int main() {
  DsdbrLaser dampened;
  DsdbrConfig slow_cfg;
  slow_cfg.drive = DriveMode::kOffTheShelf;
  DsdbrLaser off_the_shelf(slow_cfg);

  std::printf("Sec 3.2: DSDBR tuning latency across all wavelength pairs\n");
  std::printf("%-18s %-14s %-14s %-10s\n", "drive", "median", "worst",
              "pairs");
  const auto pairs =
      static_cast<long long>(dampened.wavelengths()) *
      (dampened.wavelengths() - 1);
  std::printf("%-18s %-14s %-14s %-10lld   (paper: 14 ns / 92 ns)\n",
              "dampened", dampened.median_latency().to_string().c_str(),
              dampened.worst_case_latency().to_string().c_str(), pairs);
  std::printf("%-18s %-14s %-14s %-10lld   (paper: ~10 ms)\n",
              "off-the-shelf", off_the_shelf.median_latency().to_string().c_str(),
              off_the_shelf.worst_case_latency().to_string().c_str(), pairs);

  // Latency distribution of the dampened drive (CDF over all pairs).
  PercentileTracker t;
  for (WavelengthId i = 0; i < dampened.wavelengths(); ++i) {
    for (WavelengthId j = 0; j < dampened.wavelengths(); ++j) {
      if (i != j) {
        t.add(dampened.tuning_latency(i, j).to_ns());
      }
    }
  }
  std::printf("\nDampened-drive latency percentiles (ns):\n");
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    std::printf("  p%-5.1f %8.2f\n", p, t.percentile(p));
  }
  return 0;
}
