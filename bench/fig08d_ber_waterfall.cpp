// Fig. 8d — BER vs received optical power for four switching wavelengths:
// the waterfall crosses the FEC threshold at -8 dBm, giving post-FEC
// error-free operation there. Also prints the §4.5 link-budget table that
// fixes the required launch power and the laser-sharing degree.
#include <cmath>
#include <cstdio>

#include "optical/ber_model.hpp"
#include "optical/link_budget.hpp"
#include <initializer_list>

using namespace sirius::optical;

int main() {
  std::printf("Fig 8d: log10(pre-FEC BER) vs received power, 4 channels\n");
  std::printf("%-10s", "dBm");
  for (int ch = 1; ch <= 4; ++ch) std::printf("   ch#%d  ", ch);
  std::printf("\n");
  // Per-channel penalties: tiny wavelength-dependent spread as in Fig. 8d.
  const double penalties[4] = {0.0, 0.1, 0.2, 0.3};
  BerModel models[4] = {
      BerModel({.channel_penalty_db = penalties[0]}),
      BerModel({.channel_penalty_db = penalties[1]}),
      BerModel({.channel_penalty_db = penalties[2]}),
      BerModel({.channel_penalty_db = penalties[3]})};
  for (double dbm = -10.0; dbm <= -2.0; dbm += 0.5) {
    std::printf("%-10.1f", dbm);
    for (const auto& m : models) {
      const double ber = m.pre_fec_ber(OpticalPower::dbm(dbm));
      std::printf(" %7.2f ", std::log10(std::max(ber, 1e-300)));
    }
    std::printf("\n");
  }
  std::printf("\nFEC threshold (pre-FEC): %.1e; post-FEC error-free at "
              "-8 dBm: %s (paper: yes)\n",
              models[0].config().fec_threshold,
              models[0].error_free(OpticalPower::dbm(-8.0)) ? "yes" : "no");

  LinkBudget lb;
  std::printf("\nSec 4.5 link budget:\n");
  std::printf("  grating insertion loss : %.1f dB\n",
              lb.config().grating_insertion_loss_db);
  std::printf("  coupling + modulator   : %.1f dB\n",
              lb.config().coupling_modulator_loss_db);
  std::printf("  margin                 : %.1f dB\n", lb.config().margin_db);
  std::printf("  receiver sensitivity   : %.1f dBm\n",
              lb.config().receiver_sensitivity.in_dbm());
  std::printf("  required launch power  : %.1f dBm (paper: 7 dBm)\n",
              lb.required_launch_power().in_dbm());
  std::printf("  sharing of 16.1 dBm laser: %d transceivers (paper: 8)\n",
              lb.max_sharing_degree(OpticalPower::dbm(16.1)));
  std::printf("  lasers for 256 uplinks : %d chips (paper: 32)\n",
              lb.lasers_needed(256, OpticalPower::dbm(16.1)));
  return 0;
}
