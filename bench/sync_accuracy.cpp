// §6 — time-synchronisation accuracy: the leader-rotation protocol holds
// all clocks within +/-5 ps of each other (paper: measured over 24 h
// between two FPGAs; we simulate hundreds of thousands of epochs), and the
// propagation-delay calibration aligns slot starts at the AWGR.
#include <cstdio>

#include "common/config.hpp"
#include "sync/delay_calibration.hpp"
#include "sync/sync_protocol.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::sync;

int main() {
  const auto epochs = env_int_or("SIRIUS_SYNC_EPOCHS", 300'000);

  std::printf("Sec 6: decentralised time synchronisation\n");
  std::printf("%-10s %-16s %-16s %-14s\n", "nodes", "max offset (ps)",
              "mean offset (ps)", "converged@");
  for (const std::int32_t nodes : {2, 8, 32}) {
    SyncProtocolConfig cfg;
    cfg.nodes = nodes;
    SyncProtocolSim sim(cfg, 42);
    const auto r = sim.run(epochs, epochs / 10);
    std::printf("%-10d %-16.2f %-16.2f %-14lld\n", nodes,
                r.max_pairwise_offset_ps, r.mean_pairwise_offset_ps,
                static_cast<long long>(r.convergence_epochs));
  }
  std::printf("(paper: +/-5 ps max deviation)\n");

  // Leader-failure robustness.
  {
    SyncProtocolConfig cfg;
    cfg.nodes = 16;
    SyncProtocolSim sim(cfg, 7);
    sim.fail_node_at(0, epochs / 3);
    sim.fail_node_at(5, epochs / 2);
    const auto r = sim.run(epochs, epochs * 2 / 3);
    std::printf("\nWith two node failures mid-run: max offset %.2f ps "
                "after failover (still within budget)\n",
                r.max_pairwise_offset_ps);
  }

  // Propagation-delay calibration across a 500 m datacenter span.
  DelayCalibrator cal;
  Rng rng(11);
  std::vector<double> lengths;
  for (int i = 0; i < 128; ++i) lengths.push_back(5.0 + 495.0 * i / 127.0);
  const auto c = cal.calibrate(lengths, rng);
  std::printf("\nSec A.2 delay calibration over 128 nodes, 5-500 m fibers:\n");
  std::printf("  worst slot misalignment at the AWGR: %.2f ps\n",
              c.worst_alignment_error_ps);
  std::printf("  largest epoch-start advance: %s (farthest node starts "
              "first)\n",
              c.epoch_start_offset.front().to_string().c_str());
  return 0;
}
