// Shared plumbing for the machine-readable bench writers (micro_bench
// --summary and perf_bench): the `sirius.bench.v1` provenance block, RSS
// accounting with baseline subtraction, a machine-speed calibration
// probe, and monotonic timing helpers.
//
// bench/ sits outside the sirius-lint `no-wallclock` scope (the rule
// guards src/ library code): benchmarks are the one place whose entire
// point is reading the host clock.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/json.hpp"

namespace sirius::bench {

/// Schema tag shared by every bench JSON artifact (BENCH_<n>.json at the
/// repo root, CI uploads). Bump only with a migration note in
/// docs/OBSERVABILITY.md.
inline constexpr const char* kBenchSchema = "sirius.bench.v1";

/// Provenance block: everything needed to interpret a BENCH_<n>.json diff
/// across the trajectory — git sha (captured at configure time),
/// compiler id/version, build type, and the build-flag fingerprint
/// (SIRIUS_TELEMETRY / SIRIUS_AUDIT / NDEBUG).
[[nodiscard]] telemetry::JsonObject provenance_json();

/// Process peak-RSS high-water mark (ru_maxrss), in KiB. Monotone: to
/// attribute RSS to a scenario, record it before (baseline) and after
/// (peak) and report the delta — the baseline carries static-init and
/// harness footprint that would otherwise inflate small-config numbers.
[[nodiscard]] std::int64_t peak_rss_kb();

/// Monotonic host clock, nanoseconds.
[[nodiscard]] std::uint64_t now_ns();

/// Wall-ns for a fixed deterministic CPU workload (CRC-32 sweeps + RNG
/// draws). Scales with single-core speed, so the regression gate can
/// normalise a committed baseline to the machine running the comparison
/// (docs/OBSERVABILITY.md, "Performance observability").
[[nodiscard]] std::uint64_t calibration_ns();

/// Busy-spins for at least `ns` nanoseconds. Used by perf_bench
/// --inject-spin-ns to demonstrate that the regression gate fails on a
/// real slowdown; never on by default.
void spin_ns(std::uint64_t ns);

}  // namespace sirius::bench
