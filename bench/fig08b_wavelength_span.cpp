// Fig. 8b — with the disaggregated laser, switching time is independent of
// the wavelength span: adjacent channels (1552.524 -> 1552.926 nm) and
// distant ones (1550.116 -> 1559.389 nm) both switch in under ~900 ps,
// unlike the standard DSDBR whose settle time grows with span.
#include <cstdio>

#include "optical/disaggregated_laser.hpp"
#include "optical/power.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::optical;

int main() {
  Rng rng(8);
  FixedBankLaser fast(112, SoaConfig{}, rng);
  DsdbrLaser standard;
  WavelengthGrid grid(112, 50.0);

  struct Transition {
    const char* label;
    WavelengthId from, to;
  };
  const Transition cases[] = {
      {"adjacent", 55, 56},
      {"medium span", 30, 70},
      {"full C-band", 0, 111},
  };

  std::printf("Fig 8b: switching time vs wavelength span\n");
  std::printf("%-14s %-22s %-16s %-16s\n", "case", "wavelengths (nm)",
              "disaggregated", "standard DSDBR");
  for (const auto& c : cases) {
    fast.tune_to(c.from);
    const Time t_fast = fast.tune_to(c.to);
    const Time t_std = standard.tuning_latency(c.from, c.to);
    std::printf("%-14s %8.3f -> %-10.3f %-16s %-16s\n", c.label,
                grid.wavelength_nm(c.from), grid.wavelength_nm(c.to),
                t_fast.to_string().c_str(), t_std.to_string().c_str());
  }
  std::printf("\n(paper: both adjacent and distant transitions < ~900 ps on "
              "the chip)\n");
  return 0;
}
