// Fig. 12 — goodput versus load for Sirius with 1x / 1.5x / 2x the
// transceiver count of the equivalent ESN. Paper: at low load no extra
// uplinks are needed; at L=100 % Sirius(1x) reaches only 79 % of ESN's
// goodput while 1.5x already matches it.
#include <cstdio>

#include "core/experiment.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::core;

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Fig 12: uplink-multiplier sweep (%d racks x %d servers, %lld "
              "flows)\n",
              cfg.racks, cfg.servers_per_rack,
              static_cast<long long>(cfg.flows));
  std::printf("%-5s ", "mult");
  print_metrics_header();

  for (const double load : {0.10, 0.50, 1.00}) {
    const auto w = make_workload(cfg, load);
    {
      auto m = run_esn(cfg, 1, w);
      std::printf("%-5s ", "-");
      print_metrics_row(m);
    }
    for (const double mult : {1.0, 1.5, 2.0}) {
      SiriusVariant v;
      v.uplink_multiplier = mult;
      auto m = run_sirius(cfg, v, w);
      std::printf("%-5.1f ", mult);
      print_metrics_row(m);
    }
  }
  std::printf("\n(paper shape: the gap between 1x and ESN opens only at "
              "high load; 1.5x suffices to close it)\n");
  return 0;
}
