// FEC validation — the Fig. 8d "post-FEC error-free" claim from first
// principles: Monte-Carlo a real RS decoder (t = 15, KP4-like rate)
// against random symbol errors at several raw BERs, and compare the
// measured codeword-failure rate with the binomial tail prediction.
//
// At the -8 dBm sensitivity the raw BER is 2.4e-4: the expected number of
// symbol errors per codeword is ~0.5, and P(>15 errors) is ~1e-20 —
// operationally error-free, exactly what the prototype measures.
#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "fec/reed_solomon.hpp"
#include "optical/ber_model.hpp"

using namespace sirius;
using fec::ReedSolomon;

namespace {

double symbol_error_prob(double ber) { return 1.0 - std::pow(1.0 - ber, 8); }

// log10 of the binomial tail P(X > t), X ~ Bin(n, p), summed in logs.
double log10_tail(std::int32_t n, double p, std::int32_t t) {
  double tail = 0.0;
  for (std::int32_t k = t + 1; k <= n; ++k) {
    double logc = 0.0;
    for (std::int32_t i = 0; i < k; ++i) {
      logc += std::log10(static_cast<double>(n - i) / (k - i));
    }
    tail += std::pow(10.0, logc + k * std::log10(p) +
                               (n - k) * std::log10(1.0 - p));
  }
  return tail > 0 ? std::log10(tail) : -300.0;
}

}  // namespace

int main() {
  const auto rs = ReedSolomon::kp4_like();
  const auto codewords = env_int_or("SIRIUS_FEC_CODEWORDS", 3'000);
  Rng rng(2020);

  std::printf("RS(%d,%d), t=%d, rate %.3f — Monte-Carlo vs analytic\n\n",
              rs.n(), rs.k(), rs.t(), rs.rate());
  std::printf("%-10s %-12s %-18s %-18s\n", "raw BER", "E[errs/cw]",
              "measured fail rate", "analytic log10");
  for (const double ber : {2e-2, 1e-2, 8e-3, 5e-3, 2e-3, 2.4e-4}) {
    const double ps = symbol_error_prob(ber);
    std::int64_t failures = 0;
    std::vector<std::uint8_t> data(static_cast<std::size_t>(rs.k()));
    for (std::int64_t cw = 0; cw < codewords; ++cw) {
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
      auto code = rs.encode(data);
      for (auto& sym : code) {
        if (rng.chance(ps)) sym ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
      const auto decoded = rs.decode(code);
      if (!decoded.has_value() || *decoded != data) ++failures;
    }
    std::printf("%-10.1e %-12.2f %-18.5f %-18.2f\n", ber,
                ps * rs.n(), static_cast<double>(failures) / codewords,
                log10_tail(rs.n(), ps, rs.t()));
  }

  // Tie back to the optical model: the -8 dBm sensitivity point.
  optical::BerModel link;
  const double raw = link.pre_fec_ber(optical::OpticalPower::dbm(-8.0));
  std::printf("\nAt -8 dBm received power: raw BER %.2e -> analytic "
              "post-FEC codeword failure 1e%.0f\n(operationally error-free; "
              "paper: post-FEC error-free at -8 dBm, Fig. 8d)\n",
              raw, log10_tail(rs.n(), symbol_error_prob(raw), rs.t()));
  return 0;
}
