// Fig. 9 — 99th-percentile FCT of short flows (<100 KB) and normalised
// average server goodput versus offered load, for Sirius, Sirius (Ideal),
// ESN (Ideal) and ESN-OSUB (Ideal).
//
// Scale via env: SIRIUS_RACKS, SIRIUS_SERVERS_PER_RACK, SIRIUS_UPLINKS,
// SIRIUS_FLOWS, SIRIUS_SEED (defaults: 64 racks x 8 servers, 20 k flows).
#include <cstdio>

#include "core/experiment.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::core;

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Fig 9: load sweep (%d racks x %d servers, %lld flows)\n",
              cfg.racks, cfg.servers_per_rack,
              static_cast<long long>(cfg.flows));
  print_metrics_header();

  for (const double load : {0.10, 0.25, 0.50, 0.75, 1.00}) {
    const auto w = make_workload(cfg, load);

    SiriusVariant sirius;                     // request/grant, Q=4, 1.5x
    SiriusVariant ideal = sirius;
    ideal.ideal = true;

    print_metrics_row(run_esn(cfg, 1, w));
    print_metrics_row(run_esn(cfg, 3, w));
    print_metrics_row(run_sirius(cfg, sirius, w));
    print_metrics_row(run_sirius(cfg, ideal, w));
  }
  std::printf("\n(paper shape: Sirius tracks ESN (Ideal); ESN-OSUB is up to "
              "86%% worse FCT / 6.7x lower goodput at high load; "
              "Sirius (Ideal) beats Sirius on FCT at low load)\n");
  return 0;
}
