// Ablation — what each piece of the congestion-control design buys:
//   * request/grant vs the idealised per-flow-queue variant (protocol
//     overhead at low load, §7's Sirius vs Sirius (Ideal));
//   * the queue bound Q as back-pressure: Q=2 vs 4 vs effectively-unbounded
//     (Q=64) under a hot-spot (incast-like) traffic pattern where many
//     sources target one rack.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/network_api.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::core;

namespace {

// Hot-spot (incast) workload: every server outside rack 0 sends two 50 KB
// flows into rack 0 within a 100 us window — far beyond the victim rack's
// ingress capacity, so the congestion control is the only thing standing
// between the relays and unbounded queues.
workload::Workload hotspot(const ExperimentConfig& cfg) {
  workload::Workload w;
  w.servers = cfg.servers();
  w.server_rate = cfg.server_share();
  w.offered_load = 1.0;
  Rng rng(99);
  FlowId id = 0;
  for (std::int32_t s = cfg.servers_per_rack; s < cfg.servers(); ++s) {
    for (int k = 0; k < 2; ++k) {
      workload::Flow f;
      f.id = id++;
      f.src_server = s;
      f.dst_server =
          static_cast<std::int32_t>(rng.below(cfg.servers_per_rack));
      f.size = DataSize::kilobytes(50);
      f.arrival = Time::us(static_cast<std::int64_t>(rng.below(100)));
      w.flows.push_back(f);
    }
  }
  std::sort(w.flows.begin(), w.flows.end(),
            [](const auto& a, const auto& b) { return a.arrival < b.arrival; });
  for (std::size_t i = 0; i < w.flows.size(); ++i) {
    w.flows[i].id = static_cast<FlowId>(i);
  }
  return w;
}

}  // namespace

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();

  std::printf("Ablation A: protocol overhead at low load, tiny flows\n");
  {
    ExperimentConfig small = cfg;
    small.mean_flow_size = DataSize::kilobytes(2);
    const auto w = make_workload(small, 0.1);
    SiriusVariant rg, ideal;
    ideal.ideal = true;
    print_metrics_header();
    print_metrics_row(run_sirius(small, rg, w));
    print_metrics_row(run_sirius(small, ideal, w));
    std::printf("(the request/grant round adds ~an epoch of startup "
                "latency; paper: 63%% higher FCT at L=10%%)\n\n");
  }

  std::printf("Ablation B: queue bound under a hot-spot pattern\n");
  {
    const auto w = hotspot(cfg);
    std::printf("%-4s ", "Q");
    print_metrics_header();
    for (const std::int32_t q : {2, 4, 64}) {
      SiriusVariant v;
      v.queue_limit = q;
      const auto m = run_sirius(cfg, v, w);
      std::printf("%-4d ", q);
      print_metrics_row(m);
    }
    std::printf("(Q bounds intermediate queuing even under incast: "
                "occupancy grows with Q while goodput saturates)\n");
  }
  return 0;
}
