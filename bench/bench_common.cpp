#include "bench_common.hpp"

#include <sys/resource.h>

#include <chrono>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/manifest.hpp"

#ifndef SIRIUS_GIT_SHA
#define SIRIUS_GIT_SHA "unknown"
#endif
#ifndef SIRIUS_BUILD_TYPE
#define SIRIUS_BUILD_TYPE "unknown"
#endif

namespace sirius::bench {

telemetry::JsonObject provenance_json() {
  telemetry::JsonObject p;
  p.add("git_sha", SIRIUS_GIT_SHA);
  p.add("build_type", SIRIUS_BUILD_TYPE);
  telemetry::Manifest::add_build_info(p);
  return p;
}

std::int64_t peak_rss_kb() {
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
  return static_cast<std::int64_t>(u.ru_maxrss);  // Linux: KiB.
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t calibration_ns() {
  // Fixed, deterministic single-core workload (~tens of ms on 2020-era
  // hardware): CRC-32 over an RNG-filled buffer, repeated. The absolute
  // value is meaningless; the *ratio* between two machines' results is
  // the speed factor the regression gate uses to rescale its baseline.
  constexpr std::size_t kBufWords = 1 << 12;
  constexpr int kSweeps = 64;
  Rng rng(0xCA11B8A7Eull);
  std::vector<std::uint64_t> buf(kBufWords);
  for (auto& w : buf) w = rng();

  const std::uint64_t t0 = now_ns();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (std::uint64_t w : buf) {
      w ^= crc;
      for (int bit = 0; bit < 64; ++bit) {
        const std::uint32_t mix = static_cast<std::uint32_t>(w >> bit) & 1u;
        crc = (crc >> 1) ^ (0xEDB88320u * ((crc ^ mix) & 1u));
      }
    }
  }
  const std::uint64_t elapsed = now_ns() - t0;
  // Fold the checksum into a side effect the optimiser cannot drop.
  volatile std::uint32_t sink = crc;
  static_cast<void>(sink);
  return elapsed == 0 ? 1 : elapsed;
}

void spin_ns(std::uint64_t ns) {
  const std::uint64_t until = now_ns() + ns;
  while (now_ns() < until) {
    // busy wait
  }
}

}  // namespace sirius::bench
