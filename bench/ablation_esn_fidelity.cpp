// Ablation — baseline fidelity: the fluid max-min model (used for the
// headline ESN numbers) versus the packet-level Clos simulator on a small
// workload. The two should agree on FCT and goodput within modelling
// error, validating the idealisation.
#include <cstdio>

#include "esn/fluid_sim.hpp"
#include "esn/packet_clos_sim.hpp"
#include "workload/generator.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::esn;

int main() {
  EsnConfig cfg;
  cfg.racks = 8;
  cfg.servers_per_rack = 4;
  cfg.server_rate = DataRate::gbps(50);

  std::printf("ESN baseline fidelity: fluid max-min vs packet-level Clos\n");
  std::printf("%-6s %-10s %-22s %-22s\n", "load", "model", "mean FCT (ms)",
              "goodput");
  for (const double load : {0.2, 0.4, 0.6}) {
    workload::GeneratorConfig g;
    g.servers = cfg.servers();
    g.server_rate = cfg.server_rate;
    g.load = load;
    g.flow_count = 1'000;
    g.max_flow_size = DataSize::megabytes(2);
    g.seed = 5;
    const auto w = workload::generate(g);

    EsnFluidSim fluid(cfg, w);
    const auto rf = fluid.run();
    PacketClosConfig pc;
    pc.esn = cfg;
    PacketClosSim pkt(pc, w);
    const auto rp = pkt.run();

    std::printf("%-6.1f %-10s %-22.4f %-22.3f\n", load, "fluid",
                rf.fct.all_fct_mean_ms, rf.goodput_normalized);
    std::printf("%-6.1f %-10s %-22.4f %-22.3f\n", load, "packet",
                rp.fct.all_fct_mean_ms, rp.goodput_normalized);
  }
  std::printf("\n(agreement validates using the fluid model for the large "
              "Fig. 9-13 sweeps)\n");
  return 0;
}
