// perf_bench: the pinned perf-observability suite (`sirius.bench.v1`).
//
// Runs four canonical end-to-end scenarios — a 128-rack load-sweep point,
// a fault-storm run with mid-run failover, a telemetry-on vs telemetry-off
// pair (which also asserts the bit-identical determinism contract with the
// out-of-band sampler thread live), and a checkpoint-cadence run — and
// emits one schema'd JSON document: per-config cells/sec, wall-ns/slot,
// peak RSS over a pre-scenario baseline, checkpoint costs, plus a
// provenance block (git sha, compiler, flags, build type) and a
// machine-speed calibration figure the CI regression gate uses to rescale
// the committed baseline (BENCH_<n>.json at the repo root).
//
// Flags:
//   --quick            run only the quick_* configs (CI gate cadence)
//   --out <path>       write the JSON document there (default stdout)
//   --flame <path>     also write the hierarchical profile of the
//                      telemetry-on run as flame-style JSON
//   --only <substr>    run only configs whose name contains <substr>
//   --inject-spin-ns N busy-spin N ns per simulated slot inside the timed
//                      region — a deliberate slowdown used by the
//                      regression gate's self-test, never on by default
//
// Timing methodology: one warm-up run (pre-faults allocator and page
// cache), then kRepeats measured runs, reporting the minimum (the run
// least perturbed by the host). RSS is reported as the delta over the RSS
// high-water mark captured just before the scenario; because ru_maxrss is
// a process-wide high-water mark, configs are ordered largest-first and
// later, smaller configs may legitimately report a delta of zero.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/atomic_file.hpp"
#include "ctrl/fault_plan.hpp"
#include "sim/sirius_sim.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/json.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sirius;

struct Options {
  bool quick = false;
  std::string out;
  std::string flame;
  std::string only;
  std::uint64_t inject_spin_ns = 0;
};

/// Scale knobs shared by every scenario; quick variants shrink the network
/// and the flow count so the CI gate finishes in seconds.
struct Scale {
  const char* prefix;  ///< "" (full) or "quick_"
  std::int32_t load_sweep_racks;
  std::int64_t load_sweep_flows;
  std::int32_t other_racks;
  std::int64_t other_flows;
};

constexpr Scale kFull{"", 128, 4'000, 32, 2'000};
constexpr Scale kQuick{"quick_", 16, 1'000, 8, 600};

constexpr int kRepeats = 2;

sim::SiriusSimConfig base_config(std::int32_t racks) {
  sim::SiriusSimConfig cfg;
  cfg.racks = racks;
  cfg.servers_per_rack = 8;
  cfg.base_uplinks = 8;
  return cfg;
}

workload::Workload make_workload(const sim::SiriusSimConfig& cfg,
                                 double load, std::int64_t flows) {
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = load;
  g.flow_count = flows;
  g.max_flow_size = DataSize::megabytes(2);
  return workload::generate(g);
}

struct Measured {
  std::uint64_t wall_ns = 0;  ///< min over kRepeats
  sim::SiriusSimResult result;
};

/// Warm-up + best-of-kRepeats around `run`, which builds a fresh sim and
/// returns its result. The spin injection happens inside the timed window,
/// scaled by slots simulated, so it moves wall_ns_per_slot by ~spin_ns.
template <typename RunFn>
Measured best_of(const Options& opt, RunFn&& run) {
  (void)run();  // warm-up, untimed
  Measured m;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const std::uint64_t t0 = bench::now_ns();
    sim::SiriusSimResult r = run();
    if (opt.inject_spin_ns > 0 && r.slots_simulated > 0) {
      bench::spin_ns(opt.inject_spin_ns *
                     static_cast<std::uint64_t>(r.slots_simulated));
    }
    const std::uint64_t wall = bench::now_ns() - t0;
    if (rep == 0 || wall < m.wall_ns) {
      m.wall_ns = wall;
      m.result = std::move(r);
    }
  }
  return m;
}

/// Shared result fields every config entry carries; scenario extras are
/// appended by the caller before str().
telemetry::JsonObject config_json(const std::string& name,
                                  const sim::SiriusSimConfig& cfg,
                                  std::int64_t flows, double load,
                                  const Measured& m,
                                  std::int64_t rss_before_kb) {
  telemetry::JsonObject o;
  o.add("name", name);
  o.add_int("racks", cfg.racks);
  o.add_int("flows", flows);
  o.add_num("load", load);
  o.add_int("slots_simulated", m.result.slots_simulated);
  o.add_int("cells_delivered", m.result.cells_delivered);
  o.add_int("wall_ns", static_cast<std::int64_t>(m.wall_ns));
  const double wall = static_cast<double>(m.wall_ns);
  o.add_num("cells_per_sec",
            wall > 0.0
                ? static_cast<double>(m.result.cells_delivered) * 1e9 / wall
                : 0.0);
  o.add_num("wall_ns_per_slot",
            m.result.slots_simulated > 0
                ? wall / static_cast<double>(m.result.slots_simulated)
                : 0.0);
  o.add_int("baseline_rss_kb", rss_before_kb);
  const std::int64_t after = bench::peak_rss_kb();
  o.add_int("peak_rss_delta_kb",
            after > rss_before_kb ? after - rss_before_kb : 0);
  return o;
}

bool wants(const Options& opt, const std::string& name) {
  return opt.only.empty() || name.find(opt.only) != std::string::npos;
}

// ---- scenarios -------------------------------------------------------------

/// One point of the §7 load sweep at full scale: the largest network the
/// suite pins, so it runs first and owns the RSS high-water mark.
void scenario_load_sweep(const Options& opt, const Scale& s,
                         std::vector<std::string>* out) {
  const std::string name =
      std::string(s.prefix) + "load_sweep_" +
      std::to_string(s.load_sweep_racks) + "rack";
  if (!wants(opt, name)) return;
  const auto cfg = base_config(s.load_sweep_racks);
  const auto w = make_workload(cfg, 0.6, s.load_sweep_flows);
  const std::int64_t rss0 = bench::peak_rss_kb();
  const Measured m =
      best_of(opt, [&] { return sim::SiriusSim(cfg, w).run(); });
  auto o = config_json(name, cfg, s.load_sweep_flows, 0.6, m, rss0);
  o.add_int("incomplete_flows", m.result.incomplete_flows);
  out->push_back(o.str());
}

/// §4.5 fault storm: a rack failure with recovery plus a grey link, with
/// the goodput-vs-time recovery curve recorded — the most control-plane-
/// heavy path the sim has.
void scenario_fault_storm(const Options& opt, const Scale& s,
                          std::vector<std::string>* out) {
  const std::string name = std::string(s.prefix) + "fault_storm_" +
                           std::to_string(s.other_racks) + "rack";
  if (!wants(opt, name)) return;
  auto cfg = base_config(s.other_racks);
  cfg.faults.fail_rack(2, Time::us(200), Time::us(900));
  cfg.faults.grey_link(0, 1, 0.2, Time::us(100), Time::us(700));
  cfg.record_recovery_curve = true;
  const auto w = make_workload(cfg, 0.5, s.other_flows);
  const std::int64_t rss0 = bench::peak_rss_kb();
  const Measured m =
      best_of(opt, [&] { return sim::SiriusSim(cfg, w).run(); });
  auto o = config_json(name, cfg, s.other_flows, 0.5, m, rss0);
  o.add_int("rejected_flows", m.result.rejected_flows);
  o.add_int("recovery_curve_bins",
            static_cast<std::int64_t>(m.result.recovery_curve.size()));
  out->push_back(o.str());
}

/// Telemetry-off vs telemetry-on pair. The "on" run attaches a hub with
/// the hierarchical profiler live and the out-of-band sampler thread
/// snapshotting the phase board at 500 host-us cadence, then asserts the
/// determinism contract: results bit-identical to the bare run. Emits two
/// config entries plus the measured overhead, and (with --flame) the
/// flame-style attribution JSON of the instrumented run.
bool scenario_telemetry_pair(const Options& opt, const Scale& s,
                             std::vector<std::string>* out) {
  const std::string rack_tag = std::to_string(s.other_racks) + "rack";
  const std::string off_name =
      std::string(s.prefix) + "telemetry_off_" + rack_tag;
  const std::string on_name =
      std::string(s.prefix) + "telemetry_on_" + rack_tag;
  if (!wants(opt, off_name) && !wants(opt, on_name)) return true;
  const auto cfg = base_config(s.other_racks);
  const auto w = make_workload(cfg, 0.5, s.other_flows);

  const std::int64_t rss_off = bench::peak_rss_kb();
  const Measured off =
      best_of(opt, [&] { return sim::SiriusSim(cfg, w).run(); });

  telemetry::TelemetryConfig tcfg;
  tcfg.profile = true;
  tcfg.oob_sample_us = 500;
  // The flame export comes from the full-scale instrumented run (or the
  // quick one under --quick, where the full pair never runs).
  const bool flame_here = !opt.flame.empty() &&
                          (s.prefix[0] == '\0' || opt.quick);
  std::int64_t oob_samples = 0;
  std::string flame_json;
  const std::int64_t rss_on = bench::peak_rss_kb();
  const Measured on = best_of(opt, [&] {
    telemetry::Hub hub(tcfg);
    auto run_cfg = cfg;
    run_cfg.telemetry = &hub;
    sim::SiriusSim sim(run_cfg, w);
    auto r = sim.run();
    (void)hub.finish();  // joins the sampler thread
    oob_samples =
        static_cast<std::int64_t>(hub.oob_sampler().samples().size());
    if (flame_here) flame_json = hub.profiler().flame_json();
    return r;
  });

  // Determinism contract (see telemetry/hub.hpp): the hub is write-only
  // from the sim's point of view, so the instrumented run — sampler
  // thread and all — must be bit-identical to the bare run.
  const bool identical =
      on.result.slots_simulated == off.result.slots_simulated &&
      on.result.cells_delivered == off.result.cells_delivered &&
      on.result.incomplete_flows == off.result.incomplete_flows &&
      on.result.requests_sent == off.result.requests_sent &&
      on.result.grants_issued == off.result.grants_issued;
  if (!identical) {
    std::fprintf(stderr,
                 "perf_bench: DETERMINISM VIOLATION in %s: instrumented run "
                 "diverged from bare run\n",
                 on_name.c_str());
  }

  {
    auto o = config_json(off_name, cfg, s.other_flows, 0.5, off, rss_off);
    out->push_back(o.str());
  }
  {
    auto o = config_json(on_name, cfg, s.other_flows, 0.5, on, rss_on);
    const double off_ns = static_cast<double>(off.wall_ns);
    o.add_num("telemetry_overhead_pct",
              off_ns > 0.0
                  ? (static_cast<double>(on.wall_ns) / off_ns - 1.0) * 100.0
                  : 0.0);
    o.add_int("oob_samples", oob_samples);
    o.add_bool("bit_identical", identical);
    out->push_back(o.str());
  }

  if (flame_here && !flame_json.empty()) {
    std::string err;
    if (!write_file_atomic(opt.flame, flame_json + "\n", &err)) {
      std::fprintf(stderr, "perf_bench: cannot write %s: %s\n",
                   opt.flame.c_str(), err.c_str());
      return false;
    }
  }
  return identical;
}

/// Checkpoint cadence run: serialization cost in-loop (sirius.ckpt.v1
/// payloads every 500 simulated us) plus the out-of-loop write (frame +
/// fsync + atomic rename) and restore costs against a mid-run state.
void scenario_checkpoint(const Options& opt, const Scale& s,
                         std::vector<std::string>* out) {
  const std::string name = std::string(s.prefix) + "checkpoint_500us_" +
                           std::to_string(s.other_racks) + "rack";
  if (!wants(opt, name)) return;
  auto cfg = base_config(s.other_racks);
  cfg.checkpoint_every = Time::us(500);
  const auto w = make_workload(cfg, 0.5, s.other_flows);

  std::int64_t ckpt_count = 0;
  std::string snap;
  cfg.checkpoint_sink = [&ckpt_count, &snap](std::int64_t, Time,
                                             const std::string& payload) {
    ++ckpt_count;
    if (snap.empty()) snap = payload;
  };

  const std::int64_t rss0 = bench::peak_rss_kb();
  const Measured m = best_of(opt, [&] {
    ckpt_count = 0;
    return sim::SiriusSim(cfg, w).run();
  });
  auto o = config_json(name, cfg, s.other_flows, 0.5, m, rss0);
  o.add_int("ckpt_count", ckpt_count);
  o.add_int("ckpt_bytes", static_cast<std::int64_t>(snap.size()));

  double write_ns = 0.0;
  double restore_ns = 0.0;
  if (!snap.empty()) {
    auto probe_cfg = base_config(s.other_racks);
    sim::SiriusSim probe(probe_cfg, w);
    std::string err;
    if (probe.restore_state(snap, &err)) {
      const std::filesystem::path tmp =
          std::filesystem::temp_directory_path() / "sirius_perf_bench.ckpt";
      constexpr int kIters = 10;
      const std::uint64_t w0 = bench::now_ns();
      for (int i = 0; i < kIters; ++i) {
        if (!ckpt::save(tmp, probe.checkpoint_state(), &err)) break;
      }
      write_ns = static_cast<double>(bench::now_ns() - w0) / kIters;
      const std::uint64_t r0 = bench::now_ns();
      for (int i = 0; i < kIters; ++i) {
        if (!probe.restore_state(snap, &err)) break;
      }
      restore_ns = static_cast<double>(bench::now_ns() - r0) / kIters;
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
    }
  }
  o.add_num("ckpt_write_ns", write_ns);
  o.add_num("ckpt_restore_ns", restore_ns);
  out->push_back(o.str());
}

int run_suite(const Options& opt) {
  std::vector<std::string> configs;
  bool ok = true;
  // Largest network first so the RSS high-water deltas attribute to it.
  for (const Scale* s : opt.quick ? std::vector<const Scale*>{&kQuick}
                                  : std::vector<const Scale*>{&kFull,
                                                              &kQuick}) {
    scenario_load_sweep(opt, *s, &configs);
    scenario_fault_storm(opt, *s, &configs);
    ok = scenario_telemetry_pair(opt, *s, &configs) && ok;
    scenario_checkpoint(opt, *s, &configs);
  }

  telemetry::JsonObject doc;
  doc.add("schema", bench::kBenchSchema);
  doc.add_bool("quick", opt.quick);
  doc.add_int("calibration_ns",
              static_cast<std::int64_t>(bench::calibration_ns()));
  doc.add_raw("provenance", bench::provenance_json().str());
  doc.add_raw("configs", telemetry::json_array(configs));
  const std::string body = doc.str() + "\n";

  if (opt.out.empty()) {
    std::fputs(body.c_str(), stdout);
  } else {
    std::string err;
    if (!write_file_atomic(opt.out, body, &err)) {
      std::fprintf(stderr, "perf_bench: cannot write %s: %s\n",
                   opt.out.c_str(), err.c_str());
      return 1;
    }
  }
  return ok ? 0 : 2;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--out <path>] [--flame <path>] "
               "[--only <substr>] [--inject-spin-ns <n>]\n",
               argv0);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(a, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(a, "--out") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.out = v;
    } else if (std::strcmp(a, "--flame") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.flame = v;
    } else if (std::strcmp(a, "--only") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.only = v;
    } else if (std::strcmp(a, "--inject-spin-ns") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.inject_spin_ns =
          static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }
  return run_suite(opt);
}
