// Fig. 8a — CDF of SOA gate rise and fall times on the fabricated 19-SOA
// chip: sub-nanosecond switching, worst measured rise 527 ps / fall 912 ps.
#include <cstdio>

#include "common/histogram.hpp"
#include "optical/soa_gate.hpp"

using namespace sirius;
using optical::SoaConfig;
using optical::SoaGate;

int main() {
  // Sample many fabricated chips' worth of devices to populate the CDF.
  constexpr int kDevices = 19 * 200;
  SoaConfig cfg;
  Rng rng(2020);
  Histogram rise(0.0, 1.2, 24);
  Histogram fall(0.0, 1.2, 24);
  Time worst_rise = Time::zero(), worst_fall = Time::zero();
  for (int i = 0; i < kDevices; ++i) {
    SoaGate g(cfg, rng);
    rise.add(g.rise_time().to_ns());
    fall.add(g.fall_time().to_ns());
    worst_rise = std::max(worst_rise, g.rise_time());
    worst_fall = std::max(worst_fall, g.fall_time());
  }

  std::printf("Fig 8a: CDF of SOA rise/fall times (%d devices)\n", kDevices);
  std::printf("%-12s %-12s %-12s\n", "time (ns)", "CDF rise", "CDF fall");
  for (std::size_t b = 0; b < rise.bins(); ++b) {
    std::printf("%-12.2f %-12.3f %-12.3f\n", rise.bin_high(b), rise.cdf_at(b),
                fall.cdf_at(b));
  }
  std::printf("\nworst rise: %s (paper: 527 ps)   worst fall: %s "
              "(paper: 912 ps)\n",
              worst_rise.to_string().c_str(), worst_fall.to_string().c_str());
  return 0;
}
