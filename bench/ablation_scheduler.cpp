// Ablation — scheduler-less vs on-demand scheduling (§4.2).
//
// The paper's argument for the static schedule, quantified:
//   1. under uniform(ised) demand — which Valiant load balancing creates
//      from *any* traffic matrix — the static rotation already serves
//      everything, so a demand-collecting scheduler buys nothing;
//   2. under raw skewed demand the matcher wins on paper, but its control
//      loop (collect demands across the fabric, run the matcher,
//      distribute schedules) is dozens of slots stale at nanosecond slot
//      sizes — it cannot exist at Sirius timescales.
#include <cstdio>
#include <initializer_list>

#include "sched/demand_scheduler.hpp"

using namespace sirius;
using namespace sirius::sched;

int main() {
  constexpr std::int32_t kNodes = 64;
  constexpr std::int32_t kSlots = kNodes - 1;  // one rotation round
  Rng rng(42);

  std::printf("Scheduler ablation (%d nodes, %d-slot horizon)\n\n", kNodes,
              kSlots);
  std::printf("%-26s %-18s %-18s\n", "demand matrix", "static rotation",
              "on-demand matcher");
  struct Case {
    const char* name;
    std::vector<std::int64_t> demand;
  };
  std::vector<Case> cases;
  cases.push_back({"uniform (1/pair)", uniform_demand(kNodes, 1)});
  cases.push_back({"hotspot dst 80%", hotspot_demand(kNodes, 2'000, 0.8, rng)});
  cases.push_back(
      {"8 skewed pairs", skewed_pairs_demand(kNodes, 8, kSlots)});

  for (const auto& c : cases) {
    const double stat =
        DemandScheduler::static_rotation_service(c.demand, kNodes, kSlots);
    DemandScheduler ds(kNodes, 7);
    MatchStats stats;
    auto residual = c.demand;
    ds.decompose(residual, kSlots, 4, stats);
    std::int64_t total = 0;
    for (const auto v : c.demand) total += v;
    const double dyn = static_cast<double>(stats.demand_served) /
                       static_cast<double>(total);
    std::printf("%-26s %16.1f%% %16.1f%%\n", c.name, stat * 100.0,
                dyn * 100.0);
  }

  std::printf("\nValiant load balancing turns every matrix into the uniform "
              "row above,\nwhich the static rotation serves optimally — "
              "with zero control traffic.\n");

  const Time control = DemandScheduler::control_latency(
      Time::us(5), /*iterations=*/4, Time::ns(10));
  std::printf("\nOn-demand control loop: ~%s per schedule update "
              "(demand collection RTT + matching),\nversus a 100 ns slot: "
              "every computed schedule is ~%lld slots stale.\n",
              control.to_string().c_str(),
              static_cast<long long>(control / Time::ns(100)));
  return 0;
}
