// Ablation — why load-balanced routing (§4.1/§4.2).
//
// "While Sirius' topology is flat ... by itself the topology provides
//  direct connectivity between any pairs of nodes through only one of
//  their uplink ports. So, with simple direct routing, the nodes would
//  only be able to communicate directly with a fraction of their total
//  uplink bandwidth."
//
// Direct-only routing gives each pair exactly uplinks/(N-1) of a node's
// bandwidth. Under the uniform §7 mix the deficit hides at low load but
// at skewed or heavy traffic the stranded capacity shows immediately;
// Valiant detouring converts any matrix into the uniform one the static
// schedule serves.
#include <cstdio>
#include <initializer_list>

#include "core/experiment.hpp"
#include "sim/sirius_sim.hpp"

using namespace sirius;
using namespace sirius::core;

namespace {

RunMetrics run_mode(const ExperimentConfig& cfg, sim::RoutingMode mode,
                    const workload::Workload& w, const char* label) {
  sim::SiriusSimConfig s = make_sirius_config(cfg, SiriusVariant{});
  s.routing = mode;
  sim::SiriusSim sim(s, w);
  const auto r = sim.run();
  RunMetrics m;
  m.system = label;
  m.load = w.offered_load;
  m.short_fct_p99_ms = r.fct.short_fct_p99_ms;
  m.goodput = r.goodput_normalized;
  m.queue_peak_kb = r.worst_node_queue_peak_kb;
  m.reorder_peak_kb = r.worst_reorder_peak_kb;
  m.incomplete = r.incomplete_flows;
  return m;
}

// A few racks exchange heavy pairwise traffic (the skew that breaks
// direct routing: each hot pair owns only uplinks/(N-1) of the node).
workload::Workload skewed(const ExperimentConfig& cfg) {
  workload::Workload w;
  w.servers = cfg.servers();
  w.server_rate = cfg.server_share();
  w.offered_load = 1.0;
  Rng rng(5);
  FlowId id = 0;
  for (std::int32_t pair = 0; pair < 8; ++pair) {
    const std::int32_t src_rack = 2 * pair;
    const std::int32_t dst_rack = 2 * pair + 1;
    for (int k = 0; k < 24; ++k) {
      workload::Flow f;
      f.id = id++;
      f.src_server = src_rack * cfg.servers_per_rack +
                     static_cast<std::int32_t>(rng.below(
                         static_cast<std::uint64_t>(cfg.servers_per_rack)));
      f.dst_server = dst_rack * cfg.servers_per_rack +
                     static_cast<std::int32_t>(rng.below(
                         static_cast<std::uint64_t>(cfg.servers_per_rack)));
      f.size = DataSize::kilobytes(200);
      f.arrival = Time::us(static_cast<std::int64_t>(rng.below(20)));
      w.flows.push_back(f);
    }
  }
  std::sort(w.flows.begin(), w.flows.end(),
            [](const auto& a, const auto& b) { return a.arrival < b.arrival; });
  for (std::size_t i = 0; i < w.flows.size(); ++i) {
    w.flows[i].id = static_cast<FlowId>(i);
  }
  return w;
}

}  // namespace

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Routing ablation (%d racks, %lld flows)\n\n", cfg.racks,
              static_cast<long long>(cfg.flows));

  std::printf("Uniform Sec-7 mix:\n");
  print_metrics_header();
  for (const double load : {0.25, 0.75}) {
    const auto w = make_workload(cfg, load);
    print_metrics_row(run_mode(cfg, sim::RoutingMode::kValiant, w,
                               "Valiant+CC"));
    print_metrics_row(run_mode(cfg, sim::RoutingMode::kDirect, w,
                               "direct-only"));
  }

  std::printf("\nSkewed rack-pair traffic (8 hot pairs):\n");
  print_metrics_header();
  {
    const auto w = skewed(cfg);
    print_metrics_row(run_mode(cfg, sim::RoutingMode::kValiant, w,
                               "Valiant+CC"));
    print_metrics_row(run_mode(cfg, sim::RoutingMode::kDirect, w,
                               "direct-only"));
  }
  std::printf("\n(a hot pair owns %d/%d of its node's slots under direct "
              "routing; Valiant spreads it across every uplink)\n",
              1, cfg.racks - 1);
  return 0;
}
