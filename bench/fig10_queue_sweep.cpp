// Fig. 10 — impact of the congestion-control queue bound Q in {2,4,8,16}:
// (a) 99th-pct short-flow FCT, (b) goodput, (c) peak aggregate queue
// occupancy per node, (d) peak reorder buffer. Paper: Q=4 is the sweet
// spot; worst-case occupancy 78.2 KB, reorder peak 163 KB.
#include <cstdio>

#include "core/experiment.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::core;

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Fig 10: queue-bound sweep (%d racks x %d servers, %lld "
              "flows)\n",
              cfg.racks, cfg.servers_per_rack,
              static_cast<long long>(cfg.flows));
  std::printf("%-4s ", "Q");
  print_metrics_header();

  for (const std::int32_t q : {2, 4, 8, 16}) {
    for (const double load : {0.10, 0.50, 1.00}) {
      SiriusVariant v;
      v.queue_limit = q;
      const auto m = run_sirius(cfg, v, load);
      std::printf("%-4d ", q);
      print_metrics_row(m);
    }
  }
  std::printf("\n(paper shape: FCT and occupancy grow with Q; Q=2 loses "
              "goodput under bursts; Q=4 balances both)\n");
  return 0;
}
