// Fig. 8c — the end-to-end reconfiguration guardband. The prototype fits
// laser tuning plus cell preamble (CDR relock with phase caching, amplitude
// caching, sync margin) into 3.84 ns, allowing slots as short as 38 ns.
#include <cstdio>
#include <memory>

#include "phy/slot_geometry.hpp"
#include "phy/transceiver.hpp"

using namespace sirius;
using namespace sirius::phy;

int main() {
  Rng rng(3);
  auto laser =
      std::make_unique<optical::FixedBankLaser>(112, optical::SoaConfig{}, rng);
  Transceiver t(std::move(laser), 128);
  const GuardbandBudget b = t.reconfiguration_budget();

  std::printf("Fig 8c: end-to-end reconfiguration budget (guardband)\n");
  std::printf("  laser tuning (worst SOA switch) : %s\n",
              b.laser_tuning.to_string().c_str());
  std::printf("  CDR relock (phase caching)      : %s\n",
              b.cdr_lock.to_string().c_str());
  std::printf("  PAM-4 equalizer DSP             : %s\n",
              b.equalization.to_string().c_str());
  std::printf("  amplitude caching               : %s\n",
              b.amplitude_cache.to_string().c_str());
  std::printf("  time-sync margin                : %s\n",
              b.sync_margin.to_string().c_str());
  std::printf("  ------------------------------------------\n");
  std::printf("  total guardband                 : %s   (paper: 3.84 ns)\n",
              b.total().to_string().c_str());

  const auto slot = SlotGeometry::with_guardband_fraction(
      b.total(), DataRate::gbps(50));
  std::printf("\nMinimum slot at 10%% overhead and 50 Gbps: %s "
              "(paper: ~38 ns), cell %lld B\n",
              slot.slot_duration().to_string().c_str(),
              static_cast<long long>(slot.cell_size().in_bytes()));
  return 0;
}
