// Fig. 13 — impact of the mean flow size (512 B ... 100 KB) on FCT and
// goodput: Sirius pads small flows to fixed 562 B cells, so at mean 512 B
// the paper reports 2.3x worse FCT and 1.7x lower goodput than ESN with
// variable-size packets; by 16 KB the gap shrinks to 1.2x / 1.05x.
#include <cstdio>

#include "core/experiment.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::core;

int main() {
  ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Fig 13: mean-flow-size sweep at L=50%% (%d racks x %d "
              "servers, %lld flows)\n",
              cfg.racks, cfg.servers_per_rack,
              static_cast<long long>(cfg.flows));
  std::printf("%-9s ", "meanF");
  print_metrics_header();

  for (const std::int64_t mean :
       {512ll, 1'024ll, 2'048ll, 4'096ll, 16'384ll, 32'768ll, 65'536ll,
        100'000ll}) {
    cfg.mean_flow_size = DataSize::bytes(mean);
    const auto w = make_workload(cfg, 0.5);
    {
      auto m = run_esn(cfg, 1, w);
      std::printf("%-9lld ", static_cast<long long>(mean));
      print_metrics_row(m);
    }
    {
      auto m = run_sirius(cfg, SiriusVariant{}, w);
      std::printf("%-9lld ", static_cast<long long>(mean));
      print_metrics_row(m);
    }
  }
  std::printf("\n(paper shape: the fixed-cell padding penalty is largest at "
              "512 B mean and fades as flows grow)\n");
  return 0;
}
