// Ablation — §4.5 fault tolerance: with k failed racks out of N, the
// adjusted schedule (rotation over the alive set, failed relays excluded
// by congestion control) keeps the network functional with a proportional
// ~k/N bandwidth loss, instead of blackholing 1/N of every node's traffic
// through the dead relay.
#include <cstdio>
#include <initializer_list>

#include "core/experiment.hpp"
#include "sim/sirius_sim.hpp"

using namespace sirius;
using namespace sirius::core;

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Fault tolerance: failed racks vs goodput/FCT (%d racks, "
              "%lld flows, L=75%%)\n",
              cfg.racks, static_cast<long long>(cfg.flows));
  std::printf("%-8s %-14s %-10s %-10s %-10s\n", "failed", "fct99_short_ms",
              "goodput", "rejected", "incomplete");

  const auto w = make_workload(cfg, 0.75);
  for (const std::int32_t k : {0, 1, 2, 4, 8}) {
    sim::SiriusSimConfig s = make_sirius_config(cfg, SiriusVariant{});
    for (std::int32_t f = 0; f < k; ++f) {
      // Spread failures across the id space.
      s.failed_racks.push_back(f * (cfg.racks / std::max(1, k)));
    }
    sim::SiriusSim sim(s, w);
    const auto r = sim.run();
    std::printf("%-8d %-14.4f %-10.3f %-10lld %-10lld\n", k,
                r.fct.short_fct_p99_ms, r.goodput_normalized,
                static_cast<long long>(r.rejected_flows),
                static_cast<long long>(r.incomplete_flows));
  }
  std::printf("\n(§4.5: a node failure costs every other node ~1/N of its "
              "bandwidth; the alive-set schedule regains the rest — goodput "
              "degrades gracefully and nothing blackholes)\n");
  return 0;
}
