// Ablation — §4.5 fault tolerance, two experiments:
//
//   1. Static sweep: with k failed racks out of N, the adjusted schedule
//      (rotation over the alive set, failed relays excluded by congestion
//      control) keeps the network functional with a proportional ~k/N
//      bandwidth loss, instead of blackholing 1/N of every node's traffic
//      through the dead relay.
//
//   2. Recovery curves: a rack hard-fails (or one link goes grey) in the
//      middle of the run, and the fabric must detect it in-band, swap the
//      schedule, and retransmit what was lost. The goodput-vs-time curve
//      shows the transient: dip depth while cells blackhole, dip width
//      until detection + dissemination + swap complete, and the time until
//      goodput is back at the pre-fault level.
#include <algorithm>
#include <cstdio>
#include <initializer_list>
#include <vector>

#include "core/experiment.hpp"
#include "sim/sirius_sim.hpp"
#include "telemetry/series.hpp"

using namespace sirius;
using namespace sirius::core;

namespace {

void print_recovery(const char* label, const sim::SiriusSimResult& r,
                    Time fault_at) {
  const auto& fo = r.failover;
  std::printf("\n%s\n", label);
  std::printf("  detection %lld rounds (%s), dissemination %lld rounds "
              "(%s), %lld swap(s)\n",
              static_cast<long long>(fo.detection_rounds),
              fo.detection_latency.to_string().c_str(),
              static_cast<long long>(fo.dissemination_rounds),
              fo.dissemination_latency.to_string().c_str(),
              static_cast<long long>(fo.schedule_swaps));
  std::printf("  dropped %lld, retransmitted %lld (%lld abandoned, %lld "
              "duplicates), aborted %lld flows, %lld incomplete\n",
              static_cast<long long>(fo.cells_dropped),
              static_cast<long long>(fo.cells_retransmitted),
              static_cast<long long>(fo.retx_abandoned),
              static_cast<long long>(fo.duplicates_discarded),
              static_cast<long long>(fo.flows_aborted),
              static_cast<long long>(r.incomplete_flows));
  std::printf("  dip floor %.2f of baseline %.3f, width %s, recover in "
              "%s%s\n",
              fo.recovery.dip_floor_frac, fo.recovery.baseline,
              fo.recovery.dip_width.to_string().c_str(),
              fo.recovery.time_to_recover.to_string().c_str(),
              fo.recovery.recovered ? "" : " (never)");
  // The curve itself, rendered by the shared telemetry strip-chart: one
  // glyph per column scaled to the pre-fault baseline, 'X' marking the
  // fault bin, drain tail trimmed (it would read as a dip).
  std::vector<double> per_bin;
  per_bin.reserve(r.recovery_curve.size());
  std::ptrdiff_t mark = -1;
  for (std::size_t i = 0; i < r.recovery_curve.size(); ++i) {
    per_bin.push_back(r.recovery_curve[i].goodput_normalized);
    if (r.recovery_curve[i].start <= fault_at &&
        fault_at < r.recovery_curve[i].start + Time::us(2)) {
      mark = static_cast<std::ptrdiff_t>(i);
    }
  }
  const telemetry::StripChart chart =
      telemetry::render_strip_chart(per_bin, fo.recovery.baseline, mark);
  std::printf("  goodput/baseline, %zu x 2 us per column:\n  [%s]\n",
              chart.stride, chart.cells.c_str());
}

}  // namespace

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Fault tolerance: failed racks vs goodput/FCT (%d racks, "
              "%lld flows, L=75%%)\n",
              cfg.racks, static_cast<long long>(cfg.flows));
  std::printf("%-8s %-14s %-10s %-10s %-10s\n", "failed", "fct99_short_ms",
              "goodput", "rejected", "incomplete");

  const auto w = make_workload(cfg, 0.75);
  for (const std::int32_t k : {0, 1, 2, 4, 8}) {
    sim::SiriusSimConfig s = make_sirius_config(cfg, SiriusVariant{});
    for (std::int32_t f = 0; f < k; ++f) {
      // Spread failures across the id space.
      s.failed_racks.push_back(f * (cfg.racks / std::max(1, k)));
    }
    sim::SiriusSim sim(s, w);
    const auto r = sim.run();
    std::printf("%-8d %-14.4f %-10.3f %-10lld %-10lld\n", k,
                r.fct.short_fct_p99_ms, r.goodput_normalized,
                static_cast<long long>(r.rejected_flows),
                static_cast<long long>(r.incomplete_flows));
  }
  std::printf("\n(§4.5: a node failure costs every other node ~1/N of its "
              "bandwidth; the alive-set schedule regains the rest — goodput "
              "degrades gracefully and nothing blackholes)\n");

  // ---- recovery curves: mid-run faults, detected in-band ----------------
  const auto w50 = make_workload(cfg, 0.50);
  const Time fault_at = Time::us(60);
  {
    sim::SiriusSimConfig s = make_sirius_config(cfg, SiriusVariant{});
    s.faults.fail_rack(1, fault_at);
    s.record_recovery_curve = true;
    sim::SiriusSim sim(s, w50);
    print_recovery("Mid-run hard failure: rack 1 dies at 60 us (L=50%)",
                   sim.run(), fault_at);
  }
  {
    sim::SiriusSimConfig s = make_sirius_config(cfg, SiriusVariant{});
    // Transient total outage of one directed link: grey with loss 1.0 for
    // 120 us, then clean again. Only the victim observer can notice.
    s.faults.grey_link(2, 5, 1.0, fault_at, fault_at + Time::us(120));
    s.record_recovery_curve = true;
    sim::SiriusSim sim(s, w50);
    print_recovery("Grey link: 2 -> 5 blacked out 60-180 us (L=50%)",
                   sim.run(), fault_at);
  }
  return 0;
}
