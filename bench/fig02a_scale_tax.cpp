// Fig. 2a — the "scale tax": network power per unit bisection bandwidth as
// the electrically-switched network grows (layers of hierarchy added).
// Paper series: 2 nodes (0 layers) = 50 W/Tbps ... 2M nodes (4 layers) =
// 487 W/Tbps. A 100 Pbps datacenter network at 4 tiers: ~48.7 MW.
#include <cstdio>

#include "powercost/power_model.hpp"
#include <initializer_list>

int main() {
  using sirius::powercost::PowerModel;
  PowerModel model;

  std::printf("Fig 2a: scale tax of the electrically-switched network\n");
  std::printf("%-12s %-8s %-18s\n", "endpoints", "layers", "power (W/Tbps)");
  const long long scales[] = {2, 64, 2'048, 65'536, 2'000'000};
  for (const long long endpoints : scales) {
    const int layers = PowerModel::tiers_for_endpoints(endpoints);
    std::printf("%-12lld %-8d %-18.1f\n", endpoints, layers,
                model.esn_power_per_tbps(layers));
  }

  const double mw_100pbps = model.esn_power_per_tbps(4) * 100'000.0 / 1e6;
  std::printf("\n100 Pbps non-blocking network at 4 layers: %.1f MW "
              "(paper: 48.7 MW, vs a 32 MW datacenter allocation)\n",
              mw_100pbps);
  return 0;
}
