// Microbenchmarks (google-benchmark) for the hot paths of the library:
// AWGR routing, schedule lookups, laser-latency queries, RNG, workload
// generation and end-to-end simulator slot throughput.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fec/reed_solomon.hpp"
#include "frame/cell_frame.hpp"
#include "optical/awgr.hpp"
#include "optical/dsdbr_laser.hpp"
#include "sched/schedule.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sirius;

void BM_AwgrRoute(benchmark::State& state) {
  optical::Awgr awgr(100);
  std::int32_t in = 0;
  WavelengthId w = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(awgr.route(in, w));
    in = (in + 1) % 100;
    w = (w + 7) % 100;
  }
}
BENCHMARK(BM_AwgrRoute);

void BM_SchedulePeerTx(benchmark::State& state) {
  sched::CyclicSchedule sched(128, 12);
  NodeId n = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.peer_tx(n, 3, t));
    n = (n + 1) % 128;
    ++t;
  }
}
BENCHMARK(BM_SchedulePeerTx);

void BM_DsdbrTuningLatency(benchmark::State& state) {
  optical::DsdbrLaser laser;
  WavelengthId from = 0, to = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(laser.tuning_latency(from, to));
    from = (from + 3) % 112;
    to = (to + 11) % 112;
  }
}
BENCHMARK(BM_DsdbrTuningLatency);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(127));
  }
}
BENCHMARK(BM_RngBelow);

void BM_WorkloadGeneration(benchmark::State& state) {
  workload::GeneratorConfig g;
  g.servers = 512;
  g.server_rate = DataRate::gbps(50);
  g.load = 0.5;
  g.flow_count = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate(g));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(10'000);

void BM_FrameEncodeDecode(benchmark::State& state) {
  frame::CellCodec codec;
  frame::CellFrame f;
  f.flow = 99;
  f.payload.assign(static_cast<std::size_t>(codec.payload_capacity()), 0x3c);
  for (auto _ : state) {
    const auto wire = codec.encode(f);
    benchmark::DoNotOptimize(codec.decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * 562);
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_Crc32Cell(benchmark::State& state) {
  std::vector<std::uint8_t> data(562, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame::CellCodec::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * 562);
}
BENCHMARK(BM_Crc32Cell);

void BM_RsEncode(benchmark::State& state) {
  const auto rs = fec::ReedSolomon::kp4_like();
  std::vector<std::uint8_t> data(static_cast<std::size_t>(rs.k()), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(state.iterations() * rs.k());
}
BENCHMARK(BM_RsEncode);

void BM_RsDecodeWithErrors(benchmark::State& state) {
  const auto rs = fec::ReedSolomon::kp4_like();
  std::vector<std::uint8_t> data(static_cast<std::size_t>(rs.k()), 0x42);
  auto code = rs.encode(data);
  const auto errors = state.range(0);
  for (std::int64_t e = 0; e < errors; ++e) {
    code[static_cast<std::size_t>(e * 7)] ^= 0x81;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(code));
  }
  state.SetBytesProcessed(state.iterations() * rs.k());
}
BENCHMARK(BM_RsDecodeWithErrors)->Arg(0)->Arg(4)->Arg(15);

void BM_SiriusSimSlots(benchmark::State& state) {
  // End-to-end simulator throughput: slots simulated per second for a
  // 32-rack network at 50 % load.
  sim::SiriusSimConfig cfg;
  cfg.racks = 32;
  cfg.servers_per_rack = 8;
  cfg.base_uplinks = 8;
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = 0.5;
  g.flow_count = 2'000;
  g.max_flow_size = DataSize::megabytes(2);
  const auto w = workload::generate(g);
  std::int64_t slots = 0;
  for (auto _ : state) {
    sim::SiriusSim sim(cfg, w);
    const auto r = sim.run();
    slots += r.slots_simulated;
    benchmark::DoNotOptimize(r.cells_delivered);
  }
  state.SetItemsProcessed(slots);
}
BENCHMARK(BM_SiriusSimSlots)->Unit(benchmark::kMillisecond);

}  // namespace
