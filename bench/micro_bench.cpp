// Microbenchmarks (google-benchmark) for the hot paths of the library:
// AWGR routing, schedule lookups, laser-latency queries, RNG, workload
// generation and end-to-end simulator slot throughput.
//
// `micro_bench --summary [path]` skips google-benchmark and instead runs
// the end-to-end slot-throughput scenario once, writing a machine-readable
// `sirius.bench.v1` summary (simulated cells/sec, wall-ns per sim-slot,
// peak RSS over the pre-scenario baseline, plus a provenance block) to
// `path` (stdout when omitted). perf_bench pins the wider suite; the
// committed BENCH_<n>.json snapshots at the repo root come from there.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "fec/reed_solomon.hpp"
#include "frame/cell_frame.hpp"
#include "optical/awgr.hpp"
#include "optical/dsdbr_laser.hpp"
#include "sched/schedule.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sirius;

void BM_AwgrRoute(benchmark::State& state) {
  optical::Awgr awgr(100);
  std::int32_t in = 0;
  WavelengthId w = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(awgr.route(in, w));
    in = (in + 1) % 100;
    w = (w + 7) % 100;
  }
}
BENCHMARK(BM_AwgrRoute);

void BM_SchedulePeerTx(benchmark::State& state) {
  sched::CyclicSchedule sched(128, 12);
  NodeId n = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.peer_tx(n, 3, t));
    n = (n + 1) % 128;
    ++t;
  }
}
BENCHMARK(BM_SchedulePeerTx);

void BM_DsdbrTuningLatency(benchmark::State& state) {
  optical::DsdbrLaser laser;
  WavelengthId from = 0, to = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(laser.tuning_latency(from, to));
    from = (from + 3) % 112;
    to = (to + 11) % 112;
  }
}
BENCHMARK(BM_DsdbrTuningLatency);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(127));
  }
}
BENCHMARK(BM_RngBelow);

void BM_WorkloadGeneration(benchmark::State& state) {
  workload::GeneratorConfig g;
  g.servers = 512;
  g.server_rate = DataRate::gbps(50);
  g.load = 0.5;
  g.flow_count = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate(g));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(10'000);

void BM_FrameEncodeDecode(benchmark::State& state) {
  frame::CellCodec codec;
  frame::CellFrame f;
  f.flow = 99;
  f.payload.assign(static_cast<std::size_t>(codec.payload_capacity()), 0x3c);
  for (auto _ : state) {
    const auto wire = codec.encode(f);
    benchmark::DoNotOptimize(codec.decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * 562);
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_Crc32Cell(benchmark::State& state) {
  std::vector<std::uint8_t> data(562, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame::CellCodec::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * 562);
}
BENCHMARK(BM_Crc32Cell);

void BM_RsEncode(benchmark::State& state) {
  const auto rs = fec::ReedSolomon::kp4_like();
  std::vector<std::uint8_t> data(static_cast<std::size_t>(rs.k()), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(state.iterations() * rs.k());
}
BENCHMARK(BM_RsEncode);

void BM_RsDecodeWithErrors(benchmark::State& state) {
  const auto rs = fec::ReedSolomon::kp4_like();
  std::vector<std::uint8_t> data(static_cast<std::size_t>(rs.k()), 0x42);
  auto code = rs.encode(data);
  const auto errors = state.range(0);
  for (std::int64_t e = 0; e < errors; ++e) {
    code[static_cast<std::size_t>(e * 7)] ^= 0x81;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(code));
  }
  state.SetBytesProcessed(state.iterations() * rs.k());
}
BENCHMARK(BM_RsDecodeWithErrors)->Arg(0)->Arg(4)->Arg(15);

void BM_SiriusSimSlots(benchmark::State& state) {
  // End-to-end simulator throughput: slots simulated per second for a
  // 32-rack network at 50 % load.
  sim::SiriusSimConfig cfg;
  cfg.racks = 32;
  cfg.servers_per_rack = 8;
  cfg.base_uplinks = 8;
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = 0.5;
  g.flow_count = 2'000;
  g.max_flow_size = DataSize::megabytes(2);
  const auto w = workload::generate(g);
  std::int64_t slots = 0;
  for (auto _ : state) {
    sim::SiriusSim sim(cfg, w);
    const auto r = sim.run();
    slots += r.slots_simulated;
    benchmark::DoNotOptimize(r.cells_delivered);
  }
  state.SetItemsProcessed(slots);
}
BENCHMARK(BM_SiriusSimSlots)->Unit(benchmark::kMillisecond);

// ---- machine-readable summary mode -----------------------------------------

// The same 32-rack / 50 % load scenario as BM_SiriusSimSlots, timed with a
// monotonic clock across one full run (the sim itself is deterministic, so
// one run measures the steady state; a short warm-up run pre-faults the
// allocator and page cache).
int run_summary(const char* path) {
  // Baseline RSS before any scenario state is built: the reported peak is
  // the delta over this, so static-init and harness footprint (notably
  // google-benchmark's registry) stop inflating the scenario number.
  const std::int64_t baseline_rss_kb = bench::peak_rss_kb();
  sim::SiriusSimConfig cfg;
  cfg.racks = 32;
  cfg.servers_per_rack = 8;
  cfg.base_uplinks = 8;
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = 0.5;
  g.flow_count = 2'000;
  g.max_flow_size = DataSize::megabytes(2);
  const auto w = workload::generate(g);

  {
    sim::SiriusSim warmup(cfg, w);
    (void)warmup.run();
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim::SiriusSim sim(cfg, w);
  const auto r = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  if (wall_ns <= 0.0 || r.slots_simulated <= 0) {
    std::fprintf(stderr, "micro_bench: degenerate run (%.0f ns, %lld slots)\n",
                 wall_ns, static_cast<long long>(r.slots_simulated));
    return 1;
  }

  const std::int64_t peak_rss_kb = bench::peak_rss_kb();

  // Checkpoint cost: capture one mid-run `sirius.ckpt.v1` payload, then
  // time the full write path (serialize + frame + fsync + atomic rename)
  // and the restore path against a live mid-run state.
  std::string snap;
  {
    sim::SiriusSimConfig ck_cfg = cfg;
    ck_cfg.checkpoint_every = Time::us(500);
    ck_cfg.checkpoint_sink = [&snap](std::int64_t, Time,
                                     const std::string& payload) {
      if (snap.empty()) snap = payload;
    };
    sim::SiriusSim capture(ck_cfg, w);
    (void)capture.run();
  }
  double ckpt_write_ns = 0.0;
  double ckpt_restore_ns = 0.0;
  if (!snap.empty()) {
    sim::SiriusSim probe(cfg, w);
    std::string err;
    if (probe.restore_state(snap, &err)) {
      const std::filesystem::path tmp =
          std::filesystem::temp_directory_path() / "sirius_micro_bench.ckpt";
      constexpr int kIters = 10;
      const auto w0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        if (!ckpt::save(tmp, probe.checkpoint_state(), &err)) break;
      }
      const auto w1 = std::chrono::steady_clock::now();
      ckpt_write_ns =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(w1 - w0)
                  .count()) /
          kIters;
      const auto r0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        if (!probe.restore_state(snap, &err)) break;
      }
      const auto r1 = std::chrono::steady_clock::now();
      ckpt_restore_ns =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(r1 - r0)
                  .count()) /
          kIters;
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
    }
  }

  // Same `sirius.bench.v1` shape as perf_bench: schema + provenance at the
  // top level, one entry in `configs` (this binary pins a single scenario).
  telemetry::JsonObject entry;
  entry.add("name", "sim_slots_32rack_load50");
  entry.add_int("racks", cfg.racks);
  entry.add_int("flows", g.flow_count);
  entry.add_num("load", g.load);
  entry.add_int("slots_simulated", r.slots_simulated);
  entry.add_int("cells_delivered", r.cells_delivered);
  entry.add_num("wall_ns", wall_ns);
  entry.add_num("cells_per_sec",
                static_cast<double>(r.cells_delivered) * 1e9 / wall_ns);
  entry.add_num("wall_ns_per_slot",
                wall_ns / static_cast<double>(r.slots_simulated));
  entry.add_int("ckpt_bytes", static_cast<std::int64_t>(snap.size()));
  entry.add_num("ckpt_write_ns", ckpt_write_ns);
  entry.add_num("ckpt_restore_ns", ckpt_restore_ns);
  entry.add_int("baseline_rss_kb", baseline_rss_kb);
  entry.add_int("peak_rss_delta_kb", peak_rss_kb > baseline_rss_kb
                                         ? peak_rss_kb - baseline_rss_kb
                                         : 0);

  telemetry::JsonObject doc;
  doc.add("schema", bench::kBenchSchema);
  doc.add_raw("provenance", bench::provenance_json().str());
  doc.add_raw("configs", telemetry::json_array({entry.str()}));
  const std::string body = doc.str() + "\n";

  if (path == nullptr) {
    std::fputs(body.c_str(), stdout);
    return 0;
  }
  std::string werr;
  if (!write_file_atomic(path, body, &werr)) {
    std::fprintf(stderr, "micro_bench: cannot write %s: %s\n", path,
                 werr.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summary") == 0) {
      const char* path =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1] : nullptr;
      return run_summary(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
