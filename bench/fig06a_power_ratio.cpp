// Fig. 6a — Sirius power relative to a non-blocking electrically-switched
// network (ESN) as the tunable laser's power overhead over a fixed laser
// varies. Paper: at 3-5x, Sirius draws 23-26 % of the ESN's power.
#include <cstdio>

#include "powercost/power_model.hpp"
#include <initializer_list>

int main() {
  sirius::powercost::PowerModel model;

  std::printf("Fig 6a: Sirius / ESN power vs tunable-laser power overhead\n");
  std::printf("%-22s %-20s %-14s\n", "tunable/fixed power",
              "Sirius (W/Tbps)", "Sirius/ESN");
  const double esn = model.esn_power_per_tbps(model.config().esn_tiers);
  for (const double k : {1.0, 3.0, 5.0, 7.0, 10.0, 20.0}) {
    std::printf("%-22.0f %-20.1f %6.1f%%\n", k,
                model.sirius_power_per_tbps(k), model.power_ratio(k) * 100.0);
  }
  std::printf("\nESN (4 layers): %.1f W/Tbps; paper band at 3-5x: 23-26%% "
              "(74-77%% lower power)\n", esn);
  return 0;
}
