// Fig. 11 — 99th-pct short-flow FCT at L = 100 % as the guardband varies
// in {1, 5, 10, 20, 40} ns, with the slot length rescaled so the guardband
// is always 10 % of the slot. Paper: FCT grows sharply beyond ~10 ns,
// motivating sub-10 ns end-to-end reconfiguration.
#include <cstdio>

#include "core/experiment.hpp"
#include <initializer_list>

using namespace sirius;
using namespace sirius::core;

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Fig 11: guardband sweep at L=100%% (%d racks x %d servers, "
              "%lld flows)\n",
              cfg.racks, cfg.servers_per_rack,
              static_cast<long long>(cfg.flows));
  std::printf("%-6s ", "G(ns)");
  print_metrics_header();

  const auto w = make_workload(cfg, 1.0);
  for (const std::int64_t g : {1, 5, 10, 20, 40}) {
    SiriusVariant v;
    v.guardband = Time::ns(g);
    const auto m = run_sirius(cfg, v, w);
    std::printf("%-6lld ", static_cast<long long>(g));
    print_metrics_row(m);

    SiriusVariant ideal = v;
    ideal.ideal = true;
    const auto mi = run_sirius(cfg, ideal, w);
    std::printf("%-6lld ", static_cast<long long>(g));
    print_metrics_row(mi);
  }
  std::printf("\n(paper shape: FCT worsens as G grows — the epoch, and with "
              "it intermediate queuing delay, stretches proportionally)\n");
  return 0;
}
