// Fig. 6b — Sirius cost relative to ESN as the grating's cost (fraction of
// an electrical switch) varies; solid series vs a non-blocking ESN, dashed
// vs a 3:1 oversubscribed ESN. Paper: 28 % at grating = 25 % of a switch
// and tunable laser = 3x fixed (error bars to 5x); 53 % vs oversubscribed;
// 55 % vs an electrically-switched Sirius variant.
#include <cstdio>

#include "powercost/cost_model.hpp"
#include <initializer_list>

int main() {
  sirius::powercost::CostModel model;

  std::printf("Fig 6b: Sirius / ESN cost vs grating cost (laser 3x fixed, "
              "error bars at 5x)\n");
  std::printf("%-16s %-26s %-26s\n", "grating/switch",
              "vs non-blocking ESN", "vs 3:1 oversubscribed ESN");
  for (const double g : {0.05, 0.10, 0.25, 0.50, 0.75, 1.00}) {
    std::printf("%13.0f%%  %8.1f%% [%5.1f%%]         %8.1f%% [%5.1f%%]\n",
                g * 100.0,
                model.cost_ratio_nonblocking(g, 3.0) * 100.0,
                model.cost_ratio_nonblocking(g, 5.0) * 100.0,
                model.cost_ratio_oversubscribed(g, 3.0) * 100.0,
                model.cost_ratio_oversubscribed(g, 5.0) * 100.0);
  }

  std::printf("\nHeadline points (grating at 25%%, laser 3x):\n");
  std::printf("  vs non-blocking ESN:        %5.1f%%  (paper: 28%%)\n",
              model.cost_ratio_nonblocking(0.25, 3.0) * 100.0);
  std::printf("  vs 3:1 oversubscribed ESN:  %5.1f%%  (paper: 53%%)\n",
              model.cost_ratio_oversubscribed(0.25, 3.0) * 100.0);
  std::printf("  vs electrical Sirius:       %5.1f%%  (paper: 55%%)\n",
              model.sirius_cost_per_tbps(0.25, 3.0) /
                  model.electrical_sirius_cost_per_tbps() * 100.0);
  return 0;
}
