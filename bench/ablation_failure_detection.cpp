// Ablation — §4.5 failure detection: the cyclic schedule gives free,
// probe-less failure detection. A hard failure is declared after
// `threshold` missed rounds and known datacenter-wide one round later;
// grey (sporadic) failures are caught after an expected ~1/p^k rounds.
#include <algorithm>
#include <cstdio>
#include <vector>
#include <initializer_list>

#include "ctrl/failure_detector.hpp"

using namespace sirius;
using namespace sirius::ctrl;

int main() {
  std::printf("Failure detection via missed schedule slots\n\n");
  std::printf("%-8s %-12s %-18s %-20s\n", "nodes", "round", "detected after",
              "fleet-wide after");
  for (const std::int32_t nodes : {16, 64, 128}) {
    FailureDetectorConfig cfg;
    cfg.nodes = nodes;
    // Round length grows with N at fixed uplinks: (N-1)/12 slots x 100 ns.
    cfg.round_duration =
        Time::ns(100) * std::max<std::int64_t>(1, (nodes - 1) / 12);
    FailureDetectorSim sim(cfg, 1);
    const auto r = sim.run_hard_failure(nodes / 2);
    std::printf("%-8d %-12s %-18s %-20s\n", nodes,
                cfg.round_duration.to_string().c_str(),
                r.detection_latency.to_string().c_str(),
                r.dissemination_latency.to_string().c_str());
  }
  std::printf("(§4.4/§4.5: a failed node is routed around within "
              "microseconds)\n");

  std::printf("\nGrey failures: rounds until a p-lossy link trips the "
              "3-consecutive-miss detector\n");
  std::printf("%-12s %-16s\n", "loss prob", "rounds (median of 9)");
  FailureDetectorConfig cfg;
  cfg.nodes = 64;
  for (const double p : {0.5, 0.2, 0.1, 0.05}) {
    std::vector<std::int64_t> samples;
    for (std::uint64_t seed = 1; seed <= 9; ++seed) {
      FailureDetectorSim sim(cfg, seed);
      samples.push_back(sim.run_grey_failure(0, 1, p, 10'000'000));
    }
    std::sort(samples.begin(), samples.end());
    std::printf("%-12.2f %-16lld\n", p,
                static_cast<long long>(samples[samples.size() / 2]));
  }
  std::printf("(sporadic loss is caught in ~1/p^3 rounds — microseconds to "
              "milliseconds — without any dedicated probing)\n");
  return 0;
}
