// Ablation — request-spreading policy in the congestion control.
//
// §4.3 describes requests as going to a uniformly random intermediate.
// Single-shot random matching loses ~1-1/e of grant opportunities to
// destination collisions at intermediates, which caps goodput below the
// schedule's capacity at saturation. The DRRM-style desynchronised
// assignment (first request per distinct destination goes to a rotating,
// per-source-offset slot) removes the collision loss — this is our
// reading of the paper's DRRM [13] heritage ("amenable to a simple and
// fast hardware implementation"), and the difference is exactly what this
// ablation quantifies.
#include <cstdio>
#include <initializer_list>

#include "core/experiment.hpp"

using namespace sirius;
using namespace sirius::core;

int main() {
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  std::printf("Request-spreading policy ablation (%d racks, %lld flows)\n",
              cfg.racks, static_cast<long long>(cfg.flows));
  std::printf("%-16s ", "policy");
  print_metrics_header();

  for (const double load : {0.50, 1.00}) {
    const auto w = make_workload(cfg, load);
    SiriusVariant rnd;
    rnd.spread = cc::SpreadPolicy::kRandom;
    SiriusVariant desync;
    desync.spread = cc::SpreadPolicy::kDesynchronized;
    {
      const auto m = run_sirius(cfg, rnd, w);
      std::printf("%-16s ", "random");
      print_metrics_row(m);
    }
    {
      const auto m = run_sirius(cfg, desync, w);
      std::printf("%-16s ", "desynchronized");
      print_metrics_row(m);
    }
  }
  return 0;
}
