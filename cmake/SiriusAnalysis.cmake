# Correctness-tooling knobs: sanitizers, warnings-as-errors, clang-tidy and
# the invariant auditing mode. Included from the top-level CMakeLists; the
# presets in CMakePresets.json are thin wrappers over these options.

# SIRIUS_SANITIZE is a semicolon list of sanitizers, e.g. "address;undefined"
# or "thread". Applied to every target (compile + link).
set(SIRIUS_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers to enable (address;undefined | thread)")

option(SIRIUS_WERROR "Treat compiler warnings as errors" OFF)
option(SIRIUS_LINT "Run clang-tidy over src/ (needs clang-tidy in PATH)" OFF)
option(SIRIUS_AUDIT
       "Compile SIRIUS_INVARIANT as runtime-checked audits (plain assert() \
when OFF)" ON)
option(SIRIUS_TELEMETRY
       "Compile the telemetry macros (SIRIUS_CELL_EVENT, \
SIRIUS_PROFILE_SCOPE) as live sinks; OFF compiles them away entirely" ON)

if(SIRIUS_AUDIT)
  add_compile_definitions(SIRIUS_AUDIT)
endif()

if(SIRIUS_TELEMETRY)
  add_compile_definitions(SIRIUS_TELEMETRY)
endif()

if(SIRIUS_WERROR)
  add_compile_options(-Werror)
endif()

if(SIRIUS_SANITIZE)
  foreach(san IN LISTS SIRIUS_SANITIZE)
    add_compile_options(-fsanitize=${san})
    add_link_options(-fsanitize=${san})
  endforeach()
  # Keep stacks readable and make UB fatal instead of printing-and-carrying-
  # on, so ctest fails on the first report.
  add_compile_options(-fno-omit-frame-pointer)
  if("undefined" IN_LIST SIRIUS_SANITIZE)
    add_compile_options(-fno-sanitize-recover=undefined)
  endif()
endif()

# Clang's -Wthread-safety analysis checks the SIRIUS_GUARDED_BY /
# SIRIUS_REQUIRES role annotations (src/common/thread_safety.hpp). The
# macros expand to nothing on other compilers, so the flag is clang-only;
# under the lint preset the analysis is promoted to an error. Applied
# directory-scoped in src/ only — tests, bench and tools call the
# annotated API from unannotated contexts and are checked by tsan instead.
set(SIRIUS_THREAD_SAFETY_OPTIONS "")
if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  set(SIRIUS_THREAD_SAFETY_OPTIONS -Wthread-safety)
  if(SIRIUS_LINT)
    list(APPEND SIRIUS_THREAD_SAFETY_OPTIONS -Werror=thread-safety)
  endif()
endif()

# Strict warning set for the unit-defining zone (src/common, src/check):
# these TUs define the overflow-checked value types everything else trusts,
# so silent narrowing or shadowing there corrupts every figure downstream.
set(SIRIUS_STRICT_WARNINGS -Wshadow -Wextra-semi -Wconversion)

# Proves every header under src/ is self-contained: each one is compiled
# standalone (a generated one-line TU per header), so a header that leans on
# its includer's includes fails the regular build, not some future refactor.
function(sirius_add_header_selfcontainment)
  file(GLOB_RECURSE _headers CONFIGURE_DEPENDS "${CMAKE_SOURCE_DIR}/src/*.hpp")
  set(_gen_dir "${CMAKE_BINARY_DIR}/header_selfcontainment")
  set(_stubs "")
  foreach(_hdr IN LISTS _headers)
    file(RELATIVE_PATH _rel "${CMAKE_SOURCE_DIR}/src" "${_hdr}")
    string(REPLACE "/" "__" _name "${_rel}")
    set(_stub "${_gen_dir}/${_name}.cpp")
    file(CONFIGURE OUTPUT "${_stub}"
         CONTENT "#include \"${_rel}\"\n")
    list(APPEND _stubs "${_stub}")
  endforeach()
  add_library(sirius_header_selfcontainment OBJECT ${_stubs})
  target_include_directories(sirius_header_selfcontainment
                             PRIVATE "${CMAKE_SOURCE_DIR}/src")
endfunction()

if(SIRIUS_LINT)
  find_program(SIRIUS_CLANG_TIDY_EXE NAMES clang-tidy)
  if(SIRIUS_CLANG_TIDY_EXE)
    # The caller scopes this to src/ by setting CMAKE_CXX_CLANG_TIDY around
    # add_subdirectory(src); tests/bench/examples stay un-tidied.
    set(SIRIUS_CLANG_TIDY_COMMAND "${SIRIUS_CLANG_TIDY_EXE}"
        "--warnings-as-errors=*")
  else()
    message(WARNING
      "SIRIUS_LINT=ON but clang-tidy was not found in PATH; the lint gate "
      "is skipped for this build.")
    set(SIRIUS_CLANG_TIDY_COMMAND "")
  endif()
endif()
