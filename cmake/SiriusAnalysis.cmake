# Correctness-tooling knobs: sanitizers, warnings-as-errors, clang-tidy and
# the invariant auditing mode. Included from the top-level CMakeLists; the
# presets in CMakePresets.json are thin wrappers over these options.

# SIRIUS_SANITIZE is a semicolon list of sanitizers, e.g. "address;undefined"
# or "thread". Applied to every target (compile + link).
set(SIRIUS_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers to enable (address;undefined | thread)")

option(SIRIUS_WERROR "Treat compiler warnings as errors" OFF)
option(SIRIUS_LINT "Run clang-tidy over src/ (needs clang-tidy in PATH)" OFF)
option(SIRIUS_AUDIT
       "Compile SIRIUS_INVARIANT as runtime-checked audits (plain assert() \
when OFF)" ON)

if(SIRIUS_AUDIT)
  add_compile_definitions(SIRIUS_AUDIT)
endif()

if(SIRIUS_WERROR)
  add_compile_options(-Werror)
endif()

if(SIRIUS_SANITIZE)
  foreach(san IN LISTS SIRIUS_SANITIZE)
    add_compile_options(-fsanitize=${san})
    add_link_options(-fsanitize=${san})
  endforeach()
  # Keep stacks readable and make UB fatal instead of printing-and-carrying-
  # on, so ctest fails on the first report.
  add_compile_options(-fno-omit-frame-pointer)
  if("undefined" IN_LIST SIRIUS_SANITIZE)
    add_compile_options(-fno-sanitize-recover=undefined)
  endif()
endif()

if(SIRIUS_LINT)
  find_program(SIRIUS_CLANG_TIDY_EXE NAMES clang-tidy)
  if(SIRIUS_CLANG_TIDY_EXE)
    # The caller scopes this to src/ by setting CMAKE_CXX_CLANG_TIDY around
    # add_subdirectory(src); tests/bench/examples stay un-tidied.
    set(SIRIUS_CLANG_TIDY_COMMAND "${SIRIUS_CLANG_TIDY_EXE}"
        "--warnings-as-errors=*")
  else()
    message(WARNING
      "SIRIUS_LINT=ON but clang-tidy was not found in PATH; the lint gate "
      "is skipped for this build.")
    set(SIRIUS_CLANG_TIDY_COMMAND "")
  endif()
endif()
