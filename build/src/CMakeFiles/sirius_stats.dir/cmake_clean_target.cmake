file(REMOVE_RECURSE
  "libsirius_stats.a"
)
