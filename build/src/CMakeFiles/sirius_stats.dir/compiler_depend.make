# Empty compiler generated dependencies file for sirius_stats.
# This may be replaced when dependencies are built.
