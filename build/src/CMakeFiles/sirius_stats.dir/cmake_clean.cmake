file(REMOVE_RECURSE
  "CMakeFiles/sirius_stats.dir/stats/fct_tracker.cpp.o"
  "CMakeFiles/sirius_stats.dir/stats/fct_tracker.cpp.o.d"
  "CMakeFiles/sirius_stats.dir/stats/goodput.cpp.o"
  "CMakeFiles/sirius_stats.dir/stats/goodput.cpp.o.d"
  "CMakeFiles/sirius_stats.dir/stats/occupancy.cpp.o"
  "CMakeFiles/sirius_stats.dir/stats/occupancy.cpp.o.d"
  "libsirius_stats.a"
  "libsirius_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
