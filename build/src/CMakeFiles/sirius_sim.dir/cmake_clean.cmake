file(REMOVE_RECURSE
  "CMakeFiles/sirius_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/sirius_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/sirius_sim.dir/sim/sirius_sim.cpp.o"
  "CMakeFiles/sirius_sim.dir/sim/sirius_sim.cpp.o.d"
  "libsirius_sim.a"
  "libsirius_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
