# Empty dependencies file for sirius_sim.
# This may be replaced when dependencies are built.
