# Empty compiler generated dependencies file for sirius_node.
# This may be replaced when dependencies are built.
