file(REMOVE_RECURSE
  "libsirius_node.a"
)
