file(REMOVE_RECURSE
  "CMakeFiles/sirius_node.dir/node/node.cpp.o"
  "CMakeFiles/sirius_node.dir/node/node.cpp.o.d"
  "CMakeFiles/sirius_node.dir/node/reorder_buffer.cpp.o"
  "CMakeFiles/sirius_node.dir/node/reorder_buffer.cpp.o.d"
  "libsirius_node.a"
  "libsirius_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
