file(REMOVE_RECURSE
  "CMakeFiles/sirius_sync.dir/sync/clock_model.cpp.o"
  "CMakeFiles/sirius_sync.dir/sync/clock_model.cpp.o.d"
  "CMakeFiles/sirius_sync.dir/sync/delay_calibration.cpp.o"
  "CMakeFiles/sirius_sync.dir/sync/delay_calibration.cpp.o.d"
  "CMakeFiles/sirius_sync.dir/sync/sync_protocol.cpp.o"
  "CMakeFiles/sirius_sync.dir/sync/sync_protocol.cpp.o.d"
  "libsirius_sync.a"
  "libsirius_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
