
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/clock_model.cpp" "src/CMakeFiles/sirius_sync.dir/sync/clock_model.cpp.o" "gcc" "src/CMakeFiles/sirius_sync.dir/sync/clock_model.cpp.o.d"
  "/root/repo/src/sync/delay_calibration.cpp" "src/CMakeFiles/sirius_sync.dir/sync/delay_calibration.cpp.o" "gcc" "src/CMakeFiles/sirius_sync.dir/sync/delay_calibration.cpp.o.d"
  "/root/repo/src/sync/sync_protocol.cpp" "src/CMakeFiles/sirius_sync.dir/sync/sync_protocol.cpp.o" "gcc" "src/CMakeFiles/sirius_sync.dir/sync/sync_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
