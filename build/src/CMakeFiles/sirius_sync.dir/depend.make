# Empty dependencies file for sirius_sync.
# This may be replaced when dependencies are built.
