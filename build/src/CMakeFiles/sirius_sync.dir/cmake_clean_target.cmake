file(REMOVE_RECURSE
  "libsirius_sync.a"
)
