file(REMOVE_RECURSE
  "libsirius_fec.a"
)
