# Empty dependencies file for sirius_fec.
# This may be replaced when dependencies are built.
