file(REMOVE_RECURSE
  "CMakeFiles/sirius_fec.dir/fec/gf256.cpp.o"
  "CMakeFiles/sirius_fec.dir/fec/gf256.cpp.o.d"
  "CMakeFiles/sirius_fec.dir/fec/reed_solomon.cpp.o"
  "CMakeFiles/sirius_fec.dir/fec/reed_solomon.cpp.o.d"
  "libsirius_fec.a"
  "libsirius_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
