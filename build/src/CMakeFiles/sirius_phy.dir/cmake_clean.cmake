file(REMOVE_RECURSE
  "CMakeFiles/sirius_phy.dir/phy/amplitude_cache.cpp.o"
  "CMakeFiles/sirius_phy.dir/phy/amplitude_cache.cpp.o.d"
  "CMakeFiles/sirius_phy.dir/phy/cdr.cpp.o"
  "CMakeFiles/sirius_phy.dir/phy/cdr.cpp.o.d"
  "CMakeFiles/sirius_phy.dir/phy/slot_geometry.cpp.o"
  "CMakeFiles/sirius_phy.dir/phy/slot_geometry.cpp.o.d"
  "CMakeFiles/sirius_phy.dir/phy/transceiver.cpp.o"
  "CMakeFiles/sirius_phy.dir/phy/transceiver.cpp.o.d"
  "libsirius_phy.a"
  "libsirius_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
