
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/amplitude_cache.cpp" "src/CMakeFiles/sirius_phy.dir/phy/amplitude_cache.cpp.o" "gcc" "src/CMakeFiles/sirius_phy.dir/phy/amplitude_cache.cpp.o.d"
  "/root/repo/src/phy/cdr.cpp" "src/CMakeFiles/sirius_phy.dir/phy/cdr.cpp.o" "gcc" "src/CMakeFiles/sirius_phy.dir/phy/cdr.cpp.o.d"
  "/root/repo/src/phy/slot_geometry.cpp" "src/CMakeFiles/sirius_phy.dir/phy/slot_geometry.cpp.o" "gcc" "src/CMakeFiles/sirius_phy.dir/phy/slot_geometry.cpp.o.d"
  "/root/repo/src/phy/transceiver.cpp" "src/CMakeFiles/sirius_phy.dir/phy/transceiver.cpp.o" "gcc" "src/CMakeFiles/sirius_phy.dir/phy/transceiver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sirius_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
