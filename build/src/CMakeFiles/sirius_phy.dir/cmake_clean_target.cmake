file(REMOVE_RECURSE
  "libsirius_phy.a"
)
