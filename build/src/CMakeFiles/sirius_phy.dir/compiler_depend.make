# Empty compiler generated dependencies file for sirius_phy.
# This may be replaced when dependencies are built.
