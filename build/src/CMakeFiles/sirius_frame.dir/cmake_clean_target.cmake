file(REMOVE_RECURSE
  "libsirius_frame.a"
)
