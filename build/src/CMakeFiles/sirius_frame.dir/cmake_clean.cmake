file(REMOVE_RECURSE
  "CMakeFiles/sirius_frame.dir/frame/cell_frame.cpp.o"
  "CMakeFiles/sirius_frame.dir/frame/cell_frame.cpp.o.d"
  "libsirius_frame.a"
  "libsirius_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
