# Empty dependencies file for sirius_frame.
# This may be replaced when dependencies are built.
