file(REMOVE_RECURSE
  "CMakeFiles/sirius_topo.dir/topo/clos_topology.cpp.o"
  "CMakeFiles/sirius_topo.dir/topo/clos_topology.cpp.o.d"
  "CMakeFiles/sirius_topo.dir/topo/expander.cpp.o"
  "CMakeFiles/sirius_topo.dir/topo/expander.cpp.o.d"
  "CMakeFiles/sirius_topo.dir/topo/sirius_topology.cpp.o"
  "CMakeFiles/sirius_topo.dir/topo/sirius_topology.cpp.o.d"
  "libsirius_topo.a"
  "libsirius_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
