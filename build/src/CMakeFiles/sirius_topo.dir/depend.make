# Empty dependencies file for sirius_topo.
# This may be replaced when dependencies are built.
