file(REMOVE_RECURSE
  "libsirius_topo.a"
)
