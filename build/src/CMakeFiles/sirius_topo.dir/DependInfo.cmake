
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/clos_topology.cpp" "src/CMakeFiles/sirius_topo.dir/topo/clos_topology.cpp.o" "gcc" "src/CMakeFiles/sirius_topo.dir/topo/clos_topology.cpp.o.d"
  "/root/repo/src/topo/expander.cpp" "src/CMakeFiles/sirius_topo.dir/topo/expander.cpp.o" "gcc" "src/CMakeFiles/sirius_topo.dir/topo/expander.cpp.o.d"
  "/root/repo/src/topo/sirius_topology.cpp" "src/CMakeFiles/sirius_topo.dir/topo/sirius_topology.cpp.o" "gcc" "src/CMakeFiles/sirius_topo.dir/topo/sirius_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
