# Empty compiler generated dependencies file for sirius_optical.
# This may be replaced when dependencies are built.
