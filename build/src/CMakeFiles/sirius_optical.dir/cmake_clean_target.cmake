file(REMOVE_RECURSE
  "libsirius_optical.a"
)
