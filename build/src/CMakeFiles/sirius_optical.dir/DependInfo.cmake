
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optical/awgr.cpp" "src/CMakeFiles/sirius_optical.dir/optical/awgr.cpp.o" "gcc" "src/CMakeFiles/sirius_optical.dir/optical/awgr.cpp.o.d"
  "/root/repo/src/optical/ber_model.cpp" "src/CMakeFiles/sirius_optical.dir/optical/ber_model.cpp.o" "gcc" "src/CMakeFiles/sirius_optical.dir/optical/ber_model.cpp.o.d"
  "/root/repo/src/optical/crosstalk.cpp" "src/CMakeFiles/sirius_optical.dir/optical/crosstalk.cpp.o" "gcc" "src/CMakeFiles/sirius_optical.dir/optical/crosstalk.cpp.o.d"
  "/root/repo/src/optical/disaggregated_laser.cpp" "src/CMakeFiles/sirius_optical.dir/optical/disaggregated_laser.cpp.o" "gcc" "src/CMakeFiles/sirius_optical.dir/optical/disaggregated_laser.cpp.o.d"
  "/root/repo/src/optical/dsdbr_laser.cpp" "src/CMakeFiles/sirius_optical.dir/optical/dsdbr_laser.cpp.o" "gcc" "src/CMakeFiles/sirius_optical.dir/optical/dsdbr_laser.cpp.o.d"
  "/root/repo/src/optical/link_budget.cpp" "src/CMakeFiles/sirius_optical.dir/optical/link_budget.cpp.o" "gcc" "src/CMakeFiles/sirius_optical.dir/optical/link_budget.cpp.o.d"
  "/root/repo/src/optical/power.cpp" "src/CMakeFiles/sirius_optical.dir/optical/power.cpp.o" "gcc" "src/CMakeFiles/sirius_optical.dir/optical/power.cpp.o.d"
  "/root/repo/src/optical/soa_gate.cpp" "src/CMakeFiles/sirius_optical.dir/optical/soa_gate.cpp.o" "gcc" "src/CMakeFiles/sirius_optical.dir/optical/soa_gate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
