file(REMOVE_RECURSE
  "CMakeFiles/sirius_optical.dir/optical/awgr.cpp.o"
  "CMakeFiles/sirius_optical.dir/optical/awgr.cpp.o.d"
  "CMakeFiles/sirius_optical.dir/optical/ber_model.cpp.o"
  "CMakeFiles/sirius_optical.dir/optical/ber_model.cpp.o.d"
  "CMakeFiles/sirius_optical.dir/optical/crosstalk.cpp.o"
  "CMakeFiles/sirius_optical.dir/optical/crosstalk.cpp.o.d"
  "CMakeFiles/sirius_optical.dir/optical/disaggregated_laser.cpp.o"
  "CMakeFiles/sirius_optical.dir/optical/disaggregated_laser.cpp.o.d"
  "CMakeFiles/sirius_optical.dir/optical/dsdbr_laser.cpp.o"
  "CMakeFiles/sirius_optical.dir/optical/dsdbr_laser.cpp.o.d"
  "CMakeFiles/sirius_optical.dir/optical/link_budget.cpp.o"
  "CMakeFiles/sirius_optical.dir/optical/link_budget.cpp.o.d"
  "CMakeFiles/sirius_optical.dir/optical/power.cpp.o"
  "CMakeFiles/sirius_optical.dir/optical/power.cpp.o.d"
  "CMakeFiles/sirius_optical.dir/optical/soa_gate.cpp.o"
  "CMakeFiles/sirius_optical.dir/optical/soa_gate.cpp.o.d"
  "libsirius_optical.a"
  "libsirius_optical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_optical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
