file(REMOVE_RECURSE
  "libsirius_ctrl.a"
)
