# Empty dependencies file for sirius_ctrl.
# This may be replaced when dependencies are built.
