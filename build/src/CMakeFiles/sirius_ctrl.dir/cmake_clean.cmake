file(REMOVE_RECURSE
  "CMakeFiles/sirius_ctrl.dir/ctrl/failure_detector.cpp.o"
  "CMakeFiles/sirius_ctrl.dir/ctrl/failure_detector.cpp.o.d"
  "libsirius_ctrl.a"
  "libsirius_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
