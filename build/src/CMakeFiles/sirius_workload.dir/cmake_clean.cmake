file(REMOVE_RECURSE
  "CMakeFiles/sirius_workload.dir/workload/flow.cpp.o"
  "CMakeFiles/sirius_workload.dir/workload/flow.cpp.o.d"
  "CMakeFiles/sirius_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/sirius_workload.dir/workload/generator.cpp.o.d"
  "CMakeFiles/sirius_workload.dir/workload/packet_mix.cpp.o"
  "CMakeFiles/sirius_workload.dir/workload/packet_mix.cpp.o.d"
  "CMakeFiles/sirius_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/sirius_workload.dir/workload/trace_io.cpp.o.d"
  "libsirius_workload.a"
  "libsirius_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
