
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flow.cpp" "src/CMakeFiles/sirius_workload.dir/workload/flow.cpp.o" "gcc" "src/CMakeFiles/sirius_workload.dir/workload/flow.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/sirius_workload.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/sirius_workload.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/packet_mix.cpp" "src/CMakeFiles/sirius_workload.dir/workload/packet_mix.cpp.o" "gcc" "src/CMakeFiles/sirius_workload.dir/workload/packet_mix.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/CMakeFiles/sirius_workload.dir/workload/trace_io.cpp.o" "gcc" "src/CMakeFiles/sirius_workload.dir/workload/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
