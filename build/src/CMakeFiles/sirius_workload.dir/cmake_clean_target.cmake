file(REMOVE_RECURSE
  "libsirius_workload.a"
)
