# Empty dependencies file for sirius_workload.
# This may be replaced when dependencies are built.
