file(REMOVE_RECURSE
  "libsirius_esn.a"
)
