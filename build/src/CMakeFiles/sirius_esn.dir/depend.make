# Empty dependencies file for sirius_esn.
# This may be replaced when dependencies are built.
