file(REMOVE_RECURSE
  "CMakeFiles/sirius_esn.dir/esn/fluid_sim.cpp.o"
  "CMakeFiles/sirius_esn.dir/esn/fluid_sim.cpp.o.d"
  "CMakeFiles/sirius_esn.dir/esn/packet_clos_sim.cpp.o"
  "CMakeFiles/sirius_esn.dir/esn/packet_clos_sim.cpp.o.d"
  "libsirius_esn.a"
  "libsirius_esn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_esn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
