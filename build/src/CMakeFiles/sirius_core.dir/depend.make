# Empty dependencies file for sirius_core.
# This may be replaced when dependencies are built.
