file(REMOVE_RECURSE
  "libsirius_core.a"
)
