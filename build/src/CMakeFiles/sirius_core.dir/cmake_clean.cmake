file(REMOVE_RECURSE
  "CMakeFiles/sirius_core.dir/core/experiment.cpp.o"
  "CMakeFiles/sirius_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/sirius_core.dir/core/network_api.cpp.o"
  "CMakeFiles/sirius_core.dir/core/network_api.cpp.o.d"
  "libsirius_core.a"
  "libsirius_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
