file(REMOVE_RECURSE
  "CMakeFiles/sirius_cc.dir/cc/request_grant.cpp.o"
  "CMakeFiles/sirius_cc.dir/cc/request_grant.cpp.o.d"
  "libsirius_cc.a"
  "libsirius_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
