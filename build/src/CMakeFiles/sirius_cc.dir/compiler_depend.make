# Empty compiler generated dependencies file for sirius_cc.
# This may be replaced when dependencies are built.
