file(REMOVE_RECURSE
  "libsirius_cc.a"
)
