file(REMOVE_RECURSE
  "libsirius_common.a"
)
