file(REMOVE_RECURSE
  "CMakeFiles/sirius_common.dir/common/config.cpp.o"
  "CMakeFiles/sirius_common.dir/common/config.cpp.o.d"
  "CMakeFiles/sirius_common.dir/common/distributions.cpp.o"
  "CMakeFiles/sirius_common.dir/common/distributions.cpp.o.d"
  "CMakeFiles/sirius_common.dir/common/histogram.cpp.o"
  "CMakeFiles/sirius_common.dir/common/histogram.cpp.o.d"
  "CMakeFiles/sirius_common.dir/common/rng.cpp.o"
  "CMakeFiles/sirius_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/sirius_common.dir/common/time.cpp.o"
  "CMakeFiles/sirius_common.dir/common/time.cpp.o.d"
  "CMakeFiles/sirius_common.dir/common/units.cpp.o"
  "CMakeFiles/sirius_common.dir/common/units.cpp.o.d"
  "libsirius_common.a"
  "libsirius_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
