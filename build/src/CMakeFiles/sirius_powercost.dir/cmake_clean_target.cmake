file(REMOVE_RECURSE
  "libsirius_powercost.a"
)
