file(REMOVE_RECURSE
  "CMakeFiles/sirius_powercost.dir/powercost/cost_model.cpp.o"
  "CMakeFiles/sirius_powercost.dir/powercost/cost_model.cpp.o.d"
  "CMakeFiles/sirius_powercost.dir/powercost/power_model.cpp.o"
  "CMakeFiles/sirius_powercost.dir/powercost/power_model.cpp.o.d"
  "libsirius_powercost.a"
  "libsirius_powercost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_powercost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
