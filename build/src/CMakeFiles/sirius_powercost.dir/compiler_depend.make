# Empty compiler generated dependencies file for sirius_powercost.
# This may be replaced when dependencies are built.
