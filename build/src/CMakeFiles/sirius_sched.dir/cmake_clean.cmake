file(REMOVE_RECURSE
  "CMakeFiles/sirius_sched.dir/sched/demand_scheduler.cpp.o"
  "CMakeFiles/sirius_sched.dir/sched/demand_scheduler.cpp.o.d"
  "CMakeFiles/sirius_sched.dir/sched/schedule.cpp.o"
  "CMakeFiles/sirius_sched.dir/sched/schedule.cpp.o.d"
  "libsirius_sched.a"
  "libsirius_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
