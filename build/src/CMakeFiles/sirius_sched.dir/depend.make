# Empty dependencies file for sirius_sched.
# This may be replaced when dependencies are built.
