
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/demand_scheduler.cpp" "src/CMakeFiles/sirius_sched.dir/sched/demand_scheduler.cpp.o" "gcc" "src/CMakeFiles/sirius_sched.dir/sched/demand_scheduler.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/sirius_sched.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/sirius_sched.dir/sched/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sirius_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
