file(REMOVE_RECURSE
  "libsirius_sched.a"
)
