# Empty compiler generated dependencies file for dnn_allreduce.
# This may be replaced when dependencies are built.
