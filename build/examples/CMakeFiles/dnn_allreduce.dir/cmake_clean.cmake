file(REMOVE_RECURSE
  "CMakeFiles/dnn_allreduce.dir/dnn_allreduce.cpp.o"
  "CMakeFiles/dnn_allreduce.dir/dnn_allreduce.cpp.o.d"
  "dnn_allreduce"
  "dnn_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
