
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/node_test.cpp" "tests/CMakeFiles/node_test.dir/node_test.cpp.o" "gcc" "tests/CMakeFiles/node_test.dir/node_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sirius_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_esn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_powercost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
