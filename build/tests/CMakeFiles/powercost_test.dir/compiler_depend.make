# Empty compiler generated dependencies file for powercost_test.
# This may be replaced when dependencies are built.
