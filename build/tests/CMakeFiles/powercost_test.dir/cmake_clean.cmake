file(REMOVE_RECURSE
  "CMakeFiles/powercost_test.dir/powercost_test.cpp.o"
  "CMakeFiles/powercost_test.dir/powercost_test.cpp.o.d"
  "powercost_test"
  "powercost_test.pdb"
  "powercost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powercost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
