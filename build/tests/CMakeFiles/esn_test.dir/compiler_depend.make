# Empty compiler generated dependencies file for esn_test.
# This may be replaced when dependencies are built.
