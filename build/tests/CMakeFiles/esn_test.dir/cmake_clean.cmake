file(REMOVE_RECURSE
  "CMakeFiles/esn_test.dir/esn_test.cpp.o"
  "CMakeFiles/esn_test.dir/esn_test.cpp.o.d"
  "esn_test"
  "esn_test.pdb"
  "esn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
