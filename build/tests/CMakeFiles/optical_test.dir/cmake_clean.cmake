file(REMOVE_RECURSE
  "CMakeFiles/optical_test.dir/optical_test.cpp.o"
  "CMakeFiles/optical_test.dir/optical_test.cpp.o.d"
  "optical_test"
  "optical_test.pdb"
  "optical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
