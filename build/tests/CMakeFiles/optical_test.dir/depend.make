# Empty dependencies file for optical_test.
# This may be replaced when dependencies are built.
