# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/optical_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/esn_test[1]_include.cmake")
include("/root/repo/build/tests/powercost_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/frame_test[1]_include.cmake")
include("/root/repo/build/tests/ctrl_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/fec_test[1]_include.cmake")
include("/root/repo/build/tests/param_sweep_test[1]_include.cmake")
