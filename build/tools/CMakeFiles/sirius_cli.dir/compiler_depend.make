# Empty compiler generated dependencies file for sirius_cli.
# This may be replaced when dependencies are built.
