file(REMOVE_RECURSE
  "CMakeFiles/sirius_cli.dir/sirius_cli.cpp.o"
  "CMakeFiles/sirius_cli.dir/sirius_cli.cpp.o.d"
  "sirius_cli"
  "sirius_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
