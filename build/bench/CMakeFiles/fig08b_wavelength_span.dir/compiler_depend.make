# Empty compiler generated dependencies file for fig08b_wavelength_span.
# This may be replaced when dependencies are built.
