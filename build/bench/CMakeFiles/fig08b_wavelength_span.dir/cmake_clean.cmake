file(REMOVE_RECURSE
  "CMakeFiles/fig08b_wavelength_span.dir/fig08b_wavelength_span.cpp.o"
  "CMakeFiles/fig08b_wavelength_span.dir/fig08b_wavelength_span.cpp.o.d"
  "fig08b_wavelength_span"
  "fig08b_wavelength_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_wavelength_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
