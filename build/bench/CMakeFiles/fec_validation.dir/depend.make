# Empty dependencies file for fec_validation.
# This may be replaced when dependencies are built.
