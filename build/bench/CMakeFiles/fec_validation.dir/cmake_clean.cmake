file(REMOVE_RECURSE
  "CMakeFiles/fec_validation.dir/fec_validation.cpp.o"
  "CMakeFiles/fec_validation.dir/fec_validation.cpp.o.d"
  "fec_validation"
  "fec_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
