# Empty dependencies file for fig13_flowsize_sweep.
# This may be replaced when dependencies are built.
