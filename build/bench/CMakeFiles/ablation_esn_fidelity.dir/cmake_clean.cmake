file(REMOVE_RECURSE
  "CMakeFiles/ablation_esn_fidelity.dir/ablation_esn_fidelity.cpp.o"
  "CMakeFiles/ablation_esn_fidelity.dir/ablation_esn_fidelity.cpp.o.d"
  "ablation_esn_fidelity"
  "ablation_esn_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_esn_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
