# Empty compiler generated dependencies file for ablation_esn_fidelity.
# This may be replaced when dependencies are built.
