# Empty dependencies file for fig12_uplink_sweep.
# This may be replaced when dependencies are built.
