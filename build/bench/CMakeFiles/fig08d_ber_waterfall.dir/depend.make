# Empty dependencies file for fig08d_ber_waterfall.
# This may be replaced when dependencies are built.
