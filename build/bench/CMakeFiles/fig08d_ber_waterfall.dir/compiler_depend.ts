# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08d_ber_waterfall.
