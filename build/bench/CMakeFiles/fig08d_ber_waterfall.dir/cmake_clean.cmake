file(REMOVE_RECURSE
  "CMakeFiles/fig08d_ber_waterfall.dir/fig08d_ber_waterfall.cpp.o"
  "CMakeFiles/fig08d_ber_waterfall.dir/fig08d_ber_waterfall.cpp.o.d"
  "fig08d_ber_waterfall"
  "fig08d_ber_waterfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08d_ber_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
