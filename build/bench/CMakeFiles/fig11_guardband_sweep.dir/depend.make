# Empty dependencies file for fig11_guardband_sweep.
# This may be replaced when dependencies are built.
