file(REMOVE_RECURSE
  "CMakeFiles/ablation_expander.dir/ablation_expander.cpp.o"
  "CMakeFiles/ablation_expander.dir/ablation_expander.cpp.o.d"
  "ablation_expander"
  "ablation_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
