# Empty dependencies file for ablation_expander.
# This may be replaced when dependencies are built.
