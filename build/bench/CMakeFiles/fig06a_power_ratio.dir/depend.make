# Empty dependencies file for fig06a_power_ratio.
# This may be replaced when dependencies are built.
