file(REMOVE_RECURSE
  "CMakeFiles/fig06a_power_ratio.dir/fig06a_power_ratio.cpp.o"
  "CMakeFiles/fig06a_power_ratio.dir/fig06a_power_ratio.cpp.o.d"
  "fig06a_power_ratio"
  "fig06a_power_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06a_power_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
