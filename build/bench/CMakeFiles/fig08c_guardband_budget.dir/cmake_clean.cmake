file(REMOVE_RECURSE
  "CMakeFiles/fig08c_guardband_budget.dir/fig08c_guardband_budget.cpp.o"
  "CMakeFiles/fig08c_guardband_budget.dir/fig08c_guardband_budget.cpp.o.d"
  "fig08c_guardband_budget"
  "fig08c_guardband_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08c_guardband_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
