# Empty dependencies file for fig08c_guardband_budget.
# This may be replaced when dependencies are built.
