# Empty compiler generated dependencies file for ablation_failure_detection.
# This may be replaced when dependencies are built.
