file(REMOVE_RECURSE
  "CMakeFiles/ablation_failure_detection.dir/ablation_failure_detection.cpp.o"
  "CMakeFiles/ablation_failure_detection.dir/ablation_failure_detection.cpp.o.d"
  "ablation_failure_detection"
  "ablation_failure_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failure_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
