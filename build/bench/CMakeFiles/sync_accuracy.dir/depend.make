# Empty dependencies file for sync_accuracy.
# This may be replaced when dependencies are built.
