file(REMOVE_RECURSE
  "CMakeFiles/sync_accuracy.dir/sync_accuracy.cpp.o"
  "CMakeFiles/sync_accuracy.dir/sync_accuracy.cpp.o.d"
  "sync_accuracy"
  "sync_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
