# Empty dependencies file for fig08a_soa_cdf.
# This may be replaced when dependencies are built.
