file(REMOVE_RECURSE
  "CMakeFiles/fig08a_soa_cdf.dir/fig08a_soa_cdf.cpp.o"
  "CMakeFiles/fig08a_soa_cdf.dir/fig08a_soa_cdf.cpp.o.d"
  "fig08a_soa_cdf"
  "fig08a_soa_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_soa_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
