# Empty dependencies file for fig10_queue_sweep.
# This may be replaced when dependencies are built.
