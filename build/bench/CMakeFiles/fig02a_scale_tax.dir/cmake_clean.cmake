file(REMOVE_RECURSE
  "CMakeFiles/fig02a_scale_tax.dir/fig02a_scale_tax.cpp.o"
  "CMakeFiles/fig02a_scale_tax.dir/fig02a_scale_tax.cpp.o.d"
  "fig02a_scale_tax"
  "fig02a_scale_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02a_scale_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
