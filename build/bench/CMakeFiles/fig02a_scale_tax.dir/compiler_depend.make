# Empty compiler generated dependencies file for fig02a_scale_tax.
# This may be replaced when dependencies are built.
