# Empty dependencies file for fig09_load_sweep.
# This may be replaced when dependencies are built.
