file(REMOVE_RECURSE
  "CMakeFiles/fig09_load_sweep.dir/fig09_load_sweep.cpp.o"
  "CMakeFiles/fig09_load_sweep.dir/fig09_load_sweep.cpp.o.d"
  "fig09_load_sweep"
  "fig09_load_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_load_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
