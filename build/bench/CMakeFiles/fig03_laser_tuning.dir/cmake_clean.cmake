file(REMOVE_RECURSE
  "CMakeFiles/fig03_laser_tuning.dir/fig03_laser_tuning.cpp.o"
  "CMakeFiles/fig03_laser_tuning.dir/fig03_laser_tuning.cpp.o.d"
  "fig03_laser_tuning"
  "fig03_laser_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_laser_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
