# Empty dependencies file for fig03_laser_tuning.
# This may be replaced when dependencies are built.
