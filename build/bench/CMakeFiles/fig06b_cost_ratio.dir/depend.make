# Empty dependencies file for fig06b_cost_ratio.
# This may be replaced when dependencies are built.
