file(REMOVE_RECURSE
  "CMakeFiles/fig06b_cost_ratio.dir/fig06b_cost_ratio.cpp.o"
  "CMakeFiles/fig06b_cost_ratio.dir/fig06b_cost_ratio.cpp.o.d"
  "fig06b_cost_ratio"
  "fig06b_cost_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_cost_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
