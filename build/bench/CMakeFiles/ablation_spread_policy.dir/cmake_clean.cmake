file(REMOVE_RECURSE
  "CMakeFiles/ablation_spread_policy.dir/ablation_spread_policy.cpp.o"
  "CMakeFiles/ablation_spread_policy.dir/ablation_spread_policy.cpp.o.d"
  "ablation_spread_policy"
  "ablation_spread_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spread_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
