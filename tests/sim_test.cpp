// Tests for the slot-synchronous Sirius simulator (sim/).
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace sirius::sim {
namespace {

SiriusSimConfig small_net() {
  SiriusSimConfig cfg;
  cfg.racks = 16;
  cfg.servers_per_rack = 4;
  cfg.base_uplinks = 4;
  cfg.uplink_multiplier = 1.5;
  cfg.seed = 3;
  return cfg;
}

workload::Workload make_load(const SiriusSimConfig& net, double load,
                             std::int64_t flows,
                             DataSize mean = DataSize::kilobytes(100)) {
  workload::GeneratorConfig g;
  g.servers = net.servers();
  g.server_rate = net.server_share();
  g.load = load;
  g.flow_count = flows;
  g.mean_flow_size = mean;
  g.max_flow_size = DataSize::megabytes(5);
  g.seed = 11;
  return workload::generate(g);
}

workload::Workload single_flow(const SiriusSimConfig& net, DataSize size) {
  workload::Workload w;
  w.servers = net.servers();
  w.server_rate = net.server_share();
  w.offered_load = 0.0;
  w.mean_flow_size = size;
  workload::Flow f;
  f.id = 0;
  f.src_server = 0;
  f.dst_server = net.servers() - 1;  // a different rack
  f.size = size;
  f.arrival = Time::zero();
  w.flows.push_back(f);
  return w;
}

TEST(EventQueue, OrdersByTimeThenFifo) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Time::ns(20), [&] { order.push_back(2); });
  q.schedule_at(Time::ns(10), [&] { order.push_back(1); });
  q.schedule_at(Time::ns(20), [&] { order.push_back(3); });
  q.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Time::ns(20));
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(Time::ns(5), [&] { ++fired; });
  q.schedule_at(Time::ns(50), [&] { ++fired; });
  EXPECT_EQ(q.run_until(Time::ns(10)), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, DrainAdvancesNowToHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(Time::ns(5), [&] { ++fired; });
  q.run_until(Time::ns(100));
  // The queue drained before the horizon, but time still advances to it:
  // a subsequent schedule_in() must anchor at the horizon, not at the last
  // event, or relative delays silently shrink.
  EXPECT_EQ(q.now(), Time::ns(100));
  q.schedule_in(Time::ns(10), [&] { ++fired; });
  q.run_until();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), Time::ns(110));
}

TEST(EventQueue, UnboundedDrainKeepsLastEventTime) {
  EventQueue q;
  q.schedule_at(Time::ns(7), [] {});
  q.run_until();  // infinite horizon: now() stays at the last event
  EXPECT_EQ(q.now(), Time::ns(7));
}

TEST(EventQueue, NestedScheduling) {
  EventQueue q;
  int depth = 0;
  q.schedule_at(Time::ns(1), [&] {
    q.schedule_in(Time::ns(1), [&] { depth = 2; });
    depth = 1;
  });
  q.run_until();
  EXPECT_EQ(depth, 2);
}

TEST(SiriusSim, SingleFlowCompletes) {
  const SiriusSimConfig cfg = small_net();
  const auto w = single_flow(cfg, DataSize::kilobytes(10));
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.incomplete_flows, 0);
  EXPECT_EQ(r.fct.completed_flows, 1);
  ASSERT_EQ(r.per_flow_completion.size(), 1u);
  EXPECT_FALSE(r.per_flow_completion[0].is_infinite());
  // 10 KB = 18 cells; with request/grant pacing over ~2-slot rounds this is
  // tens of microseconds at most on an idle network.
  EXPECT_LT(r.per_flow_completion[0], Time::us(100));
  // And never faster than the pure serialisation bound.
  EXPECT_GT(r.per_flow_completion[0], Time::us(1));
}

TEST(SiriusSim, SingleFlowIdealFasterThanRequestGrant) {
  // The request/grant round costs roughly an epoch of startup latency
  // (§4.3); the ideal mode has no such round.
  const SiriusSimConfig cfg = small_net();
  const auto w = single_flow(cfg, DataSize::kilobytes(50));
  SiriusSim rg(cfg, w);
  const Time t_rg = rg.run().per_flow_completion[0];
  SiriusSimConfig ideal_cfg = cfg;
  ideal_cfg.ideal = true;
  SiriusSim ideal(ideal_cfg, w);
  const Time t_ideal = ideal.run().per_flow_completion[0];
  EXPECT_LT(t_ideal, t_rg);
}

TEST(SiriusSim, IntraRackFlowBypassesOptics) {
  SiriusSimConfig cfg = small_net();
  workload::Workload w;
  w.servers = cfg.servers();
  w.server_rate = cfg.server_share();
  workload::Flow f;
  f.id = 0;
  f.src_server = 0;
  f.dst_server = 1;  // same rack of 4 servers
  f.size = DataSize::kilobytes(10);
  f.arrival = Time::zero();
  w.flows.push_back(f);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.incomplete_flows, 0);
  // 10 KB at 50 Gbps = 1.6 us + 500 ns switch latency: well under 5 us.
  EXPECT_LT(r.per_flow_completion[0], Time::us(5));
  EXPECT_EQ(r.cells_delivered, 0);  // nothing crossed the optical core
}

TEST(SiriusSim, AllFlowsCompleteAtModerateLoad) {
  const SiriusSimConfig cfg = small_net();
  const auto w = make_load(cfg, 0.3, 2'000);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.incomplete_flows, 0);
  EXPECT_EQ(r.fct.completed_flows, 2'000);
  EXPECT_GT(r.cells_delivered, 0);
}

TEST(SiriusSim, GoodputTracksOfferedLoadWhenUnderloaded) {
  const SiriusSimConfig cfg = small_net();
  for (double load : {0.1, 0.3}) {
    const auto w = make_load(cfg, load, 4'000);
    // The heavy-tailed sizes are capped, so compare against the bytes the
    // workload actually offers within the arrival window, not nominal L.
    const double offered =
        static_cast<double>(w.total_bytes().in_bits()) /
        (static_cast<double>(cfg.server_share().bits_per_sec()) *
         cfg.servers() * w.last_arrival().to_sec());
    SiriusSim sim(cfg, w);
    const auto r = sim.run();
    EXPECT_EQ(r.incomplete_flows, 0);
    // Some delivery spills past the window; tolerance is generous.
    EXPECT_GT(r.goodput_normalized, offered * 0.6) << "load " << load;
    EXPECT_LT(r.goodput_normalized, offered * 1.1) << "load " << load;
  }
}

TEST(SiriusSim, QueueOccupancyBoundedByQ) {
  // Fig. 10c's premise: with queue limit Q, an intermediate holds at most
  // Q cells per destination, so a node's forward queues are bounded by
  // Q * (N-1) cells; virtual queues add a little on top but the total
  // must stay within the same order.
  SiriusSimConfig cfg = small_net();
  cfg.queue_limit = 4;
  const auto w = make_load(cfg, 0.8, 4'000);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  // Queue occupancy is bounded by Q per (intermediate, destination) plus a
  // small wire-flight overshoot (grant accounting releases at transmit
  // time) plus transient virtual-queue backlog: 4x the pure Q bound covers
  // all three with margin.
  const double hard_bound_kb =
      5.0 * cfg.queue_limit * (cfg.racks - 1) * 562.0 * 1e-3;
  EXPECT_LT(r.worst_node_queue_peak_kb, hard_bound_kb);
  EXPECT_GT(r.worst_node_queue_peak_kb, 0.0);
}

TEST(SiriusSim, LargerQAllowsDeeperQueues) {
  SiriusSimConfig cfg = small_net();
  const auto w = make_load(cfg, 1.0, 4'000);
  cfg.queue_limit = 2;
  const double q2 = SiriusSim(cfg, w).run().worst_node_queue_peak_kb;
  cfg.queue_limit = 16;
  const double q16 = SiriusSim(cfg, w).run().worst_node_queue_peak_kb;
  EXPECT_GT(q16, q2);
}

TEST(SiriusSim, ReorderBufferSmallAtLowLoad) {
  const SiriusSimConfig cfg = small_net();
  const auto w = make_load(cfg, 0.2, 2'000);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  // Low queuing -> little path-delay spread -> small reorder buffers.
  EXPECT_LT(r.worst_reorder_peak_kb, 200.0);
}

TEST(SiriusSim, MoreUplinksImproveHighLoadGoodput) {
  SiriusSimConfig cfg = small_net();
  // Nominal load 2.5 saturates the network even after the flow-size cap
  // trims the heavy tail; saturation is where uplink count matters.
  const auto w = make_load(cfg, 2.5, 6'000);
  cfg.uplink_multiplier = 1.0;
  const double g1 = SiriusSim(cfg, w).run().goodput_normalized;
  cfg.uplink_multiplier = 2.0;
  const double g2 = SiriusSim(cfg, w).run().goodput_normalized;
  EXPECT_GT(g2, g1 * 1.1);  // Fig. 12's effect
}

TEST(SiriusSim, DeterministicForSeed) {
  const SiriusSimConfig cfg = small_net();
  const auto w = make_load(cfg, 0.5, 1'000);
  const auto a = SiriusSim(cfg, w).run();
  const auto b = SiriusSim(cfg, w).run();
  EXPECT_EQ(a.cells_delivered, b.cells_delivered);
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
  EXPECT_DOUBLE_EQ(a.goodput_normalized, b.goodput_normalized);
}

// Parameterised sweep: the simulator must terminate with zero incomplete
// flows across loads and queue limits (the drain cap is a bug backstop,
// not an expected exit).
class SimSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(SimSweep, CompletesCleanly) {
  const auto [load, q] = GetParam();
  SiriusSimConfig cfg = small_net();
  cfg.queue_limit = q;
  const auto w = make_load(cfg, load, 1'500);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.incomplete_flows, 0) << "load " << load << " Q " << q;
}

INSTANTIATE_TEST_SUITE_P(
    LoadAndQ, SimSweep,
    ::testing::Combine(::testing::Values(0.1, 0.5, 1.0),
                       ::testing::Values(2, 4, 16)));

TEST(SiriusSim, DirectRoutingCompletesUniformTraffic) {
  SiriusSimConfig cfg = small_net();
  cfg.routing = RoutingMode::kDirect;
  const auto w = make_load(cfg, 0.3, 1'500);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.incomplete_flows, 0);
  // No congestion-control traffic at all in direct mode.
  EXPECT_EQ(r.requests_sent, 0);
  EXPECT_EQ(r.grants_issued, 0);
  EXPECT_EQ(r.slots_tx_relay, 0);
}

TEST(SiriusSim, DirectRoutingStarvesHotPairs) {
  // One rack pair exchanging heavy traffic: direct routing caps the pair
  // at uplinks/(N-1) of the node bandwidth; Valiant uses all uplinks.
  SiriusSimConfig cfg = small_net();
  workload::Workload w;
  w.servers = cfg.servers();
  w.server_rate = cfg.server_share();
  w.offered_load = 1.0;
  for (FlowId id = 0; id < 8; ++id) {
    workload::Flow f;
    f.id = id;
    f.src_server = static_cast<std::int32_t>(id % 4);           // rack 0
    f.dst_server = cfg.servers_per_rack + static_cast<std::int32_t>(id % 4);
    f.size = DataSize::kilobytes(200);
    f.arrival = Time::zero();
    w.flows.push_back(f);
  }
  SiriusSimConfig direct = cfg;
  direct.routing = RoutingMode::kDirect;
  const auto r_direct = SiriusSim(direct, w).run();
  const auto r_valiant = SiriusSim(cfg, w).run();
  ASSERT_EQ(r_direct.incomplete_flows, 0);
  ASSERT_EQ(r_valiant.incomplete_flows, 0);
  // Valiant finishes the transfer several times faster.
  EXPECT_LT(r_valiant.sim_end.picoseconds(),
            r_direct.sim_end.picoseconds() / 2);
}

TEST(SiriusSim, ProtocolCountersConsistent) {
  // Conservation invariants over the protocol counters: every first-hop
  // transmission was granted; grants never exceed requests; delivered
  // cells equal the workload's inter-rack cell count.
  const SiriusSimConfig cfg = small_net();
  const auto w = make_load(cfg, 0.6, 2'000);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.incomplete_flows, 0);
  EXPECT_LE(r.grants_issued, r.requests_sent);
  EXPECT_EQ(r.slots_tx_first, r.grants_issued - r.grants_released);
  // Second-hop transmissions: first-hop cells that did not land directly
  // on their destination.
  EXPECT_LE(r.slots_tx_relay, r.slots_tx_first);
  std::int64_t expected_cells = 0;
  for (const auto& f : w.flows) {
    const bool intra = f.src_server / cfg.servers_per_rack ==
                       f.dst_server / cfg.servers_per_rack;
    if (!intra) {
      expected_cells +=
          node::cells_for(f.size, cfg.slots.cell_size());
    }
  }
  EXPECT_EQ(r.cells_delivered, expected_cells);
  EXPECT_EQ(r.slots_tx_first, expected_cells);
}

TEST(SiriusSim, GrantDenialsAppearUnderQPressure) {
  SiriusSimConfig cfg = small_net();
  cfg.queue_limit = 2;
  const auto w = make_load(cfg, 1.5, 3'000);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_GT(r.grants_denied_q, 0);
}

// Parameterised shape sweep: the simulator must run correctly across
// network geometries, including the server-based deployment (1 server per
// node, §4: servers attach directly to the optical core) and non-divisible
// uplink counts.
class ShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(ShapeSweep, CompletesAndConservesFlows) {
  const auto [racks, servers_per_rack, uplinks, mult] = GetParam();
  SiriusSimConfig cfg;
  cfg.racks = racks;
  cfg.servers_per_rack = servers_per_rack;
  cfg.base_uplinks = uplinks;
  cfg.uplink_multiplier = mult;
  cfg.seed = 17;
  const auto w = make_load(cfg, 0.4, 800);
  SiriusSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.incomplete_flows, 0);
  EXPECT_EQ(r.fct.completed_flows, 800);
  EXPECT_GT(r.goodput_normalized, 0.0);
  // Every completion is recorded.
  for (const Time t : r.per_flow_completion) {
    EXPECT_FALSE(t.is_infinite());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ShapeSweep,
    ::testing::Values(
        std::make_tuple(8, 4, 4, 1.5),    // small rack-based
        std::make_tuple(32, 1, 4, 1.5),   // server-based deployment
        std::make_tuple(16, 8, 6, 1.0),   // no Valiant headroom
        std::make_tuple(12, 2, 5, 2.0),   // ragged (N-1 not divisible)
        std::make_tuple(48, 2, 8, 1.5))); // wider fan-out

}  // namespace
}  // namespace sirius::sim
