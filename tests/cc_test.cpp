// Unit tests for the request/grant congestion control (§4.3).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cc/request_grant.hpp"

namespace sirius::cc {
namespace {

RequestGrantConfig cfg(std::int32_t nodes, std::int32_t q = 4) {
  return RequestGrantConfig{nodes, q};
}

TEST(BuildRequests, OnePerIntermediateAndNeverSelf) {
  RequestGrantNode n(0, cfg(16));
  Rng rng(1);
  // 40 pending cells, all to node 5: at most 15 requests (one per possible
  // intermediate), none to ourselves.
  std::vector<NodeId> pending(40, 5);
  const auto reqs = n.build_requests(pending, 0, rng);
  EXPECT_EQ(reqs.size(), 15u);
  std::set<NodeId> intermediates;
  for (const auto& r : reqs) {
    EXPECT_NE(r.intermediate, 0);
    EXPECT_EQ(r.dst, 5);
    EXPECT_TRUE(intermediates.insert(r.intermediate).second);
  }
}

TEST(BuildRequests, FollowsFifoOrderOfPendingCells) {
  RequestGrantNode n(2, cfg(8));
  Rng rng(2);
  const std::vector<NodeId> pending = {1, 3, 1};
  const auto reqs = n.build_requests(pending, 0, rng);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].dst, 1);
  EXPECT_EQ(reqs[1].dst, 3);
  EXPECT_EQ(reqs[2].dst, 1);
}

TEST(BuildRequests, EmptyLocalMeansNoRequests) {
  RequestGrantNode n(0, cfg(8));
  Rng rng(3);
  EXPECT_TRUE(n.build_requests({}, 0, rng).empty());
}

TEST(BuildRequests, IntermediatesUniformlySpread) {
  // Over many epochs, each intermediate should be picked roughly equally
  // (the uniform spreading is what flattens the demand matrix).
  RequestGrantNode n(0, cfg(9));
  Rng rng(4);
  std::map<NodeId, int> counts;
  for (int epoch = 0; epoch < 8'000; ++epoch) {
    for (const auto& r : n.build_requests({4}, epoch, rng)) {
      ++counts[r.intermediate];
    }
  }
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [node, c] : counts) {
    EXPECT_NEAR(c, 1'000, 120) << "intermediate " << node;
  }
}

TEST(IssueGrants, OneGrantPerDestinationPerEpoch) {
  RequestGrantNode i(7, cfg(16));
  // Three sources all want to relay to destination 2 through node 7.
  i.receive_request({0, 2});
  i.receive_request({1, 2});
  i.receive_request({3, 2});
  Rng rng(5);
  const auto grants = i.issue_grants([](NodeId) { return 0; }, rng);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].intermediate, 7);
  EXPECT_EQ(grants[0].dst, 2);
  EXPECT_EQ(i.outstanding(2), 1);
}

TEST(IssueGrants, RandomSelectionAmongRequesters) {
  Rng rng(6);
  std::map<NodeId, int> winners;
  for (int epoch = 0; epoch < 3'000; ++epoch) {
    RequestGrantNode i(7, cfg(16));
    i.receive_request({0, 2});
    i.receive_request({1, 2});
    i.receive_request({3, 2});
    const auto grants = i.issue_grants([](NodeId) { return 0; }, rng);
    ASSERT_EQ(grants.size(), 1u);
    ++winners[grants[0].to];
  }
  EXPECT_EQ(winners.size(), 3u);
  for (const auto& [src, c] : winners) {
    EXPECT_NEAR(c, 1'000, 150) << "source " << src;
  }
}

TEST(IssueGrants, QueueBoundRespected) {
  RequestGrantNode i(1, cfg(8, /*q=*/2));
  Rng rng(7);
  // Queue for dst 4 already holds 2 cells: no grant.
  i.receive_request({0, 4});
  EXPECT_TRUE(i.issue_grants([](NodeId) { return 2; }, rng).empty());
  // One slot free: grant.
  i.receive_request({0, 4});
  EXPECT_EQ(i.issue_grants([](NodeId) { return 1; }, rng).size(), 1u);
  // Now queued(1) + outstanding(1) == Q: no further grant.
  i.receive_request({0, 4});
  EXPECT_TRUE(i.issue_grants([](NodeId) { return 1; }, rng).empty());
}

TEST(IssueGrants, OutstandingDecrementsOnArrivalAndRelease) {
  RequestGrantNode i(1, cfg(8, 4));
  Rng rng(8);
  i.receive_request({0, 3});
  i.issue_grants([](NodeId) { return 0; }, rng);
  EXPECT_EQ(i.outstanding(3), 1);
  i.on_granted_cell_arrival(3);
  EXPECT_EQ(i.outstanding(3), 0);

  i.receive_request({0, 3});
  i.issue_grants([](NodeId) { return 0; }, rng);
  EXPECT_EQ(i.outstanding(3), 1);
  i.on_grant_release(3);
  EXPECT_EQ(i.outstanding(3), 0);
  // Never negative.
  i.on_grant_release(3);
  EXPECT_EQ(i.outstanding(3), 0);
}

TEST(IssueGrants, DistinctDestinationsGrantIndependently) {
  RequestGrantNode i(0, cfg(8, 4));
  Rng rng(9);
  i.receive_request({1, 2});
  i.receive_request({3, 4});
  i.receive_request({5, 6});
  const auto grants = i.issue_grants([](NodeId) { return 0; }, rng);
  EXPECT_EQ(grants.size(), 3u);
}

TEST(IssueGrants, InboxClearedEachEpoch) {
  RequestGrantNode i(0, cfg(8, 4));
  Rng rng(10);
  i.receive_request({1, 2});
  EXPECT_EQ(i.issue_grants([](NodeId) { return 0; }, rng).size(), 1u);
  // The same request must not be considered again next epoch.
  EXPECT_TRUE(i.issue_grants([](NodeId) { return 0; }, rng).empty());
}

// Counts, for one fully-loaded epoch (every source has one pending cell
// per destination), how many requests are lost to (intermediate,
// destination) collisions under the given spread policy.
std::int64_t collisions_in_epoch(SpreadPolicy policy, std::int64_t epoch,
                                 Rng& rng) {
  constexpr std::int32_t kNodes = 12;
  RequestGrantConfig c{kNodes, 4, policy};
  std::set<std::pair<NodeId, NodeId>> inter_dst;
  std::int64_t collisions = 0;
  for (NodeId src = 0; src < kNodes; ++src) {
    RequestGrantNode n(src, c);
    std::vector<NodeId> pending;
    for (NodeId d = 0; d < kNodes; ++d) {
      if (d != src) pending.push_back(d);
    }
    for (const auto& r : n.build_requests(pending, epoch, rng)) {
      if (!inter_dst.insert({r.intermediate, r.dst}).second) ++collisions;
    }
  }
  return collisions;
}

TEST(SpreadPolicy, DesynchronizedNearlyCollisionFree) {
  // Every source's first-choice requests land on distinct (intermediate,
  // destination) pairs by construction; the single per-source fallback
  // (the destination whose rotating slot is the source itself) is the only
  // possible collision source. Random spreading, in contrast, loses a
  // large constant fraction (~1-1/e of grant opportunities).
  Rng rng(21);
  std::int64_t desync_total = 0, random_total = 0;
  constexpr std::int64_t kEpochs = 40;
  for (std::int64_t e = 0; e < kEpochs; ++e) {
    desync_total += collisions_in_epoch(SpreadPolicy::kDesynchronized, e, rng);
    random_total += collisions_in_epoch(SpreadPolicy::kRandom, e, rng);
  }
  // Roughly one fallback per source per epoch, and those fallbacks all
  // chase the same blind-spot destination, so they mostly collide: ~N
  // collisions per epoch versus ~N^2(1-1/e)/N... for random spreading.
  EXPECT_LE(desync_total, kEpochs * 15);
  EXPECT_LT(desync_total * 3, random_total);
}

TEST(SpreadPolicy, RandomPolicyStillOnePerIntermediate) {
  RequestGrantConfig c{10, 4, SpreadPolicy::kRandom};
  RequestGrantNode n(0, c);
  Rng rng(22);
  std::vector<NodeId> pending(30, 5);
  const auto reqs = n.build_requests(pending, 0, rng);
  EXPECT_EQ(reqs.size(), 9u);
  std::set<NodeId> seen;
  for (const auto& r : reqs) EXPECT_TRUE(seen.insert(r.intermediate).second);
}

// Property sweep: grants per destination never exceed Q across many epochs
// of random request traffic, counting outstanding correctly.
class QueueBoundProperty : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(QueueBoundProperty, NeverExceedsQ) {
  const std::int32_t q = GetParam();
  RequestGrantNode inter(0, cfg(12, q));
  Rng rng(11 + static_cast<std::uint64_t>(q));
  std::vector<std::int32_t> queue(12, 0);  // simulated relay queues
  for (int epoch = 0; epoch < 2'000; ++epoch) {
    // Random requests from random sources for random destinations.
    const int n_req = static_cast<int>(rng.below(6));
    for (int k = 0; k < n_req; ++k) {
      const auto src = static_cast<NodeId>(1 + rng.below(11));
      const auto dst = static_cast<NodeId>(1 + rng.below(11));
      inter.receive_request({src, dst});
    }
    auto grants = inter.issue_grants(
        [&queue](NodeId d) { return queue[static_cast<std::size_t>(d)]; },
        rng);
    for (const auto& g : grants) {
      // Granted cell arrives this epoch.
      ++queue[static_cast<std::size_t>(g.dst)];
      inter.on_granted_cell_arrival(g.dst);
      ASSERT_LE(queue[static_cast<std::size_t>(g.dst)], q);
    }
    // The relay drains one cell per destination per epoch.
    for (auto& depth : queue) {
      if (depth > 0) --depth;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(QueueLimits, QueueBoundProperty,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace sirius::cc
