// Unit + property tests for the static cyclic schedule (§4.2).
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "sched/schedule.hpp"

namespace sirius::sched {
namespace {

TEST(CyclicSchedule, RoundLength) {
  EXPECT_EQ(CyclicSchedule(64, 12).slots_per_round(), 6);   // ceil(63/12)
  EXPECT_EQ(CyclicSchedule(128, 12).slots_per_round(), 11); // ceil(127/12)
  EXPECT_EQ(CyclicSchedule(4, 2).slots_per_round(), 2);     // Fig. 5b epoch
  EXPECT_EQ(CyclicSchedule(16, 1).slots_per_round(), 15);
}

TEST(CyclicSchedule, NeverSelf) {
  CyclicSchedule s(16, 4);
  for (std::int64_t t = 0; t < 32; ++t) {
    for (NodeId n = 0; n < 16; ++n) {
      for (UplinkId u = 0; u < 4; ++u) {
        EXPECT_NE(s.peer_tx(n, u, t), n);
      }
    }
  }
}

TEST(CyclicSchedule, RxInvertsTx) {
  CyclicSchedule s(20, 3);
  for (std::int64_t t = 0; t < s.slots_per_round() * 2; ++t) {
    for (NodeId n = 0; n < 20; ++n) {
      for (UplinkId u = 0; u < 3; ++u) {
        const NodeId dst = s.peer_tx(n, u, t);
        if (dst == kInvalidNode) {
          EXPECT_EQ(s.peer_rx(n, u, t), kInvalidNode);
          continue;
        }
        EXPECT_EQ(s.peer_rx(dst, u, t), n);
      }
    }
  }
}

TEST(CyclicSchedule, ConnectionLookupAgreesWithSchedule) {
  CyclicSchedule s(24, 4);
  for (NodeId a = 0; a < 24; ++a) {
    for (NodeId b = 0; b < 24; ++b) {
      if (a == b) continue;
      const auto c = s.connection(a, b);
      EXPECT_EQ(s.peer_tx(a, c.uplink, c.slot_in_round), b);
    }
  }
}

TEST(CyclicSchedule, RoundIndexing) {
  CyclicSchedule s(10, 3);  // 3 slots per round
  EXPECT_EQ(s.round_of(0), 0);
  EXPECT_EQ(s.round_of(2), 0);
  EXPECT_EQ(s.round_of(3), 1);
  EXPECT_EQ(s.round_start(4), 12);
}

// Property sweep: for many (N, U) shapes, one round connects every ordered
// pair exactly once and no receiver hears two senders in one slot.
class SchedulePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>> {
};

TEST_P(SchedulePropertyTest, EachPairOncePerRound) {
  const auto [n, u] = GetParam();
  CyclicSchedule s(n, u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (std::int64_t t = 0; t < s.slots_per_round(); ++t) {
    for (NodeId src = 0; src < n; ++src) {
      for (UplinkId up = 0; up < u; ++up) {
        const NodeId dst = s.peer_tx(src, up, t);
        if (dst == kInvalidNode) continue;
        EXPECT_TRUE(seen.insert({src, dst}).second)
            << "pair (" << src << "," << dst << ") connected twice";
      }
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * (n - 1));
}

TEST_P(SchedulePropertyTest, ContentionFreePerSlot) {
  const auto [n, u] = GetParam();
  CyclicSchedule s(n, u);
  for (std::int64_t t = 0; t < s.slots_per_round(); ++t) {
    for (UplinkId up = 0; up < u; ++up) {
      std::set<NodeId> receivers;
      for (NodeId src = 0; src < n; ++src) {
        const NodeId dst = s.peer_tx(src, up, t);
        if (dst == kInvalidNode) continue;
        EXPECT_TRUE(receivers.insert(dst).second)
            << "two senders hit " << dst << " on uplink " << up;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchedulePropertyTest,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(8, 4),
                      std::make_tuple(16, 4), std::make_tuple(16, 5),
                      std::make_tuple(64, 12), std::make_tuple(128, 12),
                      std::make_tuple(9, 2), std::make_tuple(3, 1),
                      std::make_tuple(100, 7)));

TEST(PhysicalSchedule, ContentionFreeOnBlockTopology) {
  // N divisible into blocks, one uplink per block: the strided schedule
  // maps onto gratings without collisions.
  for (const auto& [nodes, ports] :
       std::vector<std::pair<std::int32_t, std::int32_t>>{
           {8, 2}, {16, 4}, {64, 8}}) {
    topo::SiriusTopologyConfig tc;
    tc.nodes = nodes;
    tc.grating_ports = ports;
    topo::SiriusTopology topo(tc);
    CyclicSchedule sched(nodes, topo.uplinks_per_node());
    EXPECT_TRUE(physically_contention_free(topo, sched))
        << nodes << " nodes, " << ports << "-port gratings";
  }
}

TEST(PhysicalSchedule, ContentionFreeWithReplicas) {
  topo::SiriusTopologyConfig tc;
  tc.nodes = 16;
  tc.grating_ports = 8;  // 2 blocks
  tc.replicas = 2;       // 4 uplinks per node
  topo::SiriusTopology topo(tc);
  CyclicSchedule sched(16, topo.uplinks_per_node());
  EXPECT_TRUE(physically_contention_free(topo, sched));
}

}  // namespace
}  // namespace sirius::sched
