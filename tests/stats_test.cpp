// Unit tests for stats/: FCT tracking, goodput normalisation, occupancy.
#include <gtest/gtest.h>

#include "stats/fct_tracker.hpp"
#include "stats/goodput.hpp"
#include "stats/occupancy.hpp"

namespace sirius::stats {
namespace {

TEST(FctTracker, ShortFlowThresholdIsHundredKb) {
  FctTracker t;
  t.record(DataSize::bytes(99'999), Time::us(10));   // short
  t.record(DataSize::bytes(100'000), Time::ms(5));   // long (boundary)
  t.record(DataSize::megabytes(10), Time::ms(50));   // long
  auto s = t.summarize();
  EXPECT_EQ(s.completed_flows, 3);
  EXPECT_EQ(s.short_flows, 1);
  EXPECT_NEAR(s.short_fct_p99_ms, 0.01, 1e-9);
  EXPECT_GT(s.all_fct_p99_ms, 40.0);
}

TEST(FctTracker, PercentilesOverManyFlows) {
  FctTracker t;
  for (int i = 1; i <= 1'000; ++i) {
    t.record(DataSize::bytes(1'000), Time::us(i));
  }
  auto s = t.summarize();
  EXPECT_EQ(s.short_flows, 1'000);
  EXPECT_NEAR(s.short_fct_p50_ms, 0.5, 0.01);
  EXPECT_NEAR(s.short_fct_p99_ms, 0.99, 0.01);
  EXPECT_NEAR(s.short_fct_mean_ms, 0.5, 0.01);
}

TEST(FctTracker, EmptySummarizes) {
  FctTracker t;
  auto s = t.summarize();
  EXPECT_EQ(s.completed_flows, 0);
  EXPECT_EQ(s.short_flows, 0);
  EXPECT_DOUBLE_EQ(s.short_fct_p99_ms, 0.0);
}

TEST(GoodputMeter, NormalisesByCapacity) {
  // 4 servers at 100 Gbps for 1 ms = 50 MB capacity.
  GoodputMeter m(4, DataRate::gbps(100));
  m.deliver(DataSize::megabytes(25));
  EXPECT_NEAR(m.normalized(Time::ms(1)), 0.5, 1e-9);
  m.deliver(DataSize::megabytes(25));
  EXPECT_NEAR(m.normalized(Time::ms(1)), 1.0, 1e-9);
}

TEST(GoodputMeter, ZeroWindowIsZero) {
  GoodputMeter m(4, DataRate::gbps(100));
  m.deliver(DataSize::megabytes(1));
  EXPECT_DOUBLE_EQ(m.normalized(Time::zero()), 0.0);
}

TEST(ByteGauge, PeakIsSticky) {
  ByteGauge g;
  g.add(DataSize::bytes(562));
  g.add(DataSize::bytes(562));
  g.remove(DataSize::bytes(562));
  g.add(DataSize::bytes(100));
  EXPECT_EQ(g.current(), DataSize::bytes(662));
  EXPECT_EQ(g.peak(), DataSize::bytes(1'124));
  EXPECT_NEAR(g.peak().in_kb(), 1.124, 1e-9);
}

TEST(OccupancyAggregator, WorstAcrossEntities) {
  OccupancyAggregator a;
  a.observe_peak(DataSize::bytes(1'000));
  a.observe_peak(DataSize::bytes(78'200));  // the paper's worst case
  a.observe_peak(DataSize::bytes(50'000));
  EXPECT_EQ(a.worst_peak(), DataSize::bytes(78'200));
  EXPECT_NEAR(a.worst_peak().in_kb(), 78.2, 1e-9);
  EXPECT_NEAR(a.mean_peak_bytes(), (1'000 + 78'200 + 50'000) / 3.0, 1e-6);
}

}  // namespace
}  // namespace sirius::stats
