// Tests for workload trace persistence (CSV save/load round trips).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace sirius::workload {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTripPreservesFlows) {
  GeneratorConfig g;
  g.servers = 32;
  g.server_rate = DataRate::gbps(50);
  g.load = 0.4;
  g.flow_count = 500;
  g.seed = 3;
  const Workload original = generate(g);

  const std::string path = temp_path("trace_roundtrip.csv");
  ASSERT_TRUE(save_trace_csv(original, path));
  const auto loaded = load_trace_csv(path, 32, DataRate::gbps(50));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->flows.size(), original.flows.size());
  for (std::size_t i = 0; i < original.flows.size(); ++i) {
    EXPECT_EQ(loaded->flows[i].src_server, original.flows[i].src_server);
    EXPECT_EQ(loaded->flows[i].dst_server, original.flows[i].dst_server);
    EXPECT_EQ(loaded->flows[i].size, original.flows[i].size);
    EXPECT_EQ(loaded->flows[i].arrival, original.flows[i].arrival);
  }
  EXPECT_EQ(loaded->total_bytes(), original.total_bytes());
  std::remove(path.c_str());
}

TEST(TraceIo, LoadSortsByArrival) {
  const std::string path = temp_path("trace_unsorted.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("flow_id,src_server,dst_server,size_bytes,arrival_ps\n", f);
  std::fputs("0,1,2,1000,5000\n", f);
  std::fputs("1,3,4,2000,1000\n", f);
  std::fclose(f);

  const auto w = load_trace_csv(path, 8, DataRate::gbps(50));
  ASSERT_TRUE(w.has_value());
  ASSERT_EQ(w->flows.size(), 2u);
  EXPECT_EQ(w->flows[0].arrival, Time::ps(1'000));
  EXPECT_EQ(w->flows[0].id, 0);  // re-numbered by arrival order
  EXPECT_EQ(w->flows[0].src_server, 3);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMalformedRows) {
  const std::string path = temp_path("trace_bad.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("flow_id,src_server,dst_server,size_bytes,arrival_ps\n", f);
  std::fputs("0,1,not_a_number,1000,0\n", f);
  std::fclose(f);
  EXPECT_FALSE(load_trace_csv(path, 8, DataRate::gbps(50)).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsOutOfRangeEndpoints) {
  const std::string path = temp_path("trace_range.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("flow_id,src_server,dst_server,size_bytes,arrival_ps\n", f);
  std::fputs("0,1,99,1000,0\n", f);  // dst beyond 8 servers
  std::fclose(f);
  EXPECT_FALSE(load_trace_csv(path, 8, DataRate::gbps(50)).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails) {
  EXPECT_FALSE(load_trace_csv(temp_path("does_not_exist.csv"), 8,
                              DataRate::gbps(50))
                   .has_value());
}

}  // namespace
}  // namespace sirius::workload
