// Tests for the idealised ESN baselines (fluid + packet-level Clos).
#include <gtest/gtest.h>

#include "esn/fluid_sim.hpp"
#include "esn/packet_clos_sim.hpp"
#include "workload/generator.hpp"

namespace sirius::esn {
namespace {

EsnConfig small_esn(std::int32_t oversub = 1) {
  EsnConfig cfg;
  cfg.racks = 8;
  cfg.servers_per_rack = 4;
  cfg.server_rate = DataRate::gbps(50);
  cfg.oversubscription = oversub;
  return cfg;
}

workload::Workload explicit_flows(
    const EsnConfig& cfg,
    std::vector<std::tuple<std::int32_t, std::int32_t, std::int64_t,
                           std::int64_t>>
        specs) {
  workload::Workload w;
  w.servers = cfg.servers();
  w.server_rate = cfg.server_rate;
  FlowId id = 0;
  for (const auto& [src, dst, bytes, arrival_ns] : specs) {
    workload::Flow f;
    f.id = id++;
    f.src_server = src;
    f.dst_server = dst;
    f.size = DataSize::bytes(bytes);
    f.arrival = Time::ns(arrival_ns);
    w.flows.push_back(f);
  }
  return w;
}

workload::Workload synthetic(const EsnConfig& cfg, double load,
                             std::int64_t flows) {
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_rate;
  g.load = load;
  g.flow_count = flows;
  g.max_flow_size = DataSize::megabytes(5);
  g.seed = 21;
  return workload::generate(g);
}

TEST(FluidSim, LoneFlowGetsLineRate) {
  const EsnConfig cfg = small_esn();
  // 1 MB at 50 Gbps = 160 us; plus the 2 us base latency.
  const auto w = explicit_flows(cfg, {{0, 12, 1'000'000, 0}});
  EsnFluidSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.completed_flows, 1);
  EXPECT_NEAR(r.fct.all_fct_mean_ms, 0.162, 0.002);
}

TEST(FluidSim, TwoFlowsToOneDestinationShare) {
  const EsnConfig cfg = small_esn();
  // Two senders to the same server: each gets 25 Gbps -> 1 MB in 320 us.
  const auto w = explicit_flows(
      cfg, {{0, 12, 1'000'000, 0}, {4, 12, 1'000'000, 0}});
  EsnFluidSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.completed_flows, 2);
  EXPECT_NEAR(r.fct.all_fct_mean_ms, 0.322, 0.004);
}

TEST(FluidSim, MaxMinRedistributesAfterBottleneck) {
  const EsnConfig cfg = small_esn();
  // Flow A: 0 -> 12 alone on its source. Flows B, C: 4 -> 12 and 4 -> 13:
  // B and C share source 4 (25 G each), then A gets the remaining 25 G of
  // destination 12's NIC. Exact max-min: A=25, B=25, C=25.
  const auto w = explicit_flows(cfg, {{0, 12, 500'000, 0},
                                      {4, 12, 500'000, 0},
                                      {4, 13, 500'000, 0}});
  EsnFluidSim sim(cfg, w);
  const auto r = sim.run();
  // All three at 25 Gbps: 500 KB in 160 us.
  EXPECT_NEAR(r.fct.all_fct_mean_ms, 0.162, 0.003);
}

TEST(FluidSim, OversubscriptionThrottlesInterRackOnly) {
  const EsnConfig osub = small_esn(4);
  // Four single-flow senders in rack 0 to four distinct remote servers:
  // rack uplink = 4 x 50 / 4 = 50 Gbps shared -> 12.5 Gbps each.
  const auto w = explicit_flows(osub, {{0, 8, 500'000, 0},
                                       {1, 12, 500'000, 0},
                                       {2, 16, 500'000, 0},
                                       {3, 20, 500'000, 0}});
  EsnFluidSim sim(osub, w);
  const auto r = sim.run();
  // 500 KB at 12.5 Gbps = 320 us.
  EXPECT_NEAR(r.fct.all_fct_mean_ms, 0.322, 0.005);

  // The same flows kept intra-rack are not throttled.
  const auto w2 = explicit_flows(osub, {{0, 1, 500'000, 0},
                                        {2, 3, 500'000, 0}});
  EsnFluidSim sim2(osub, w2);
  EXPECT_NEAR(sim2.run().fct.all_fct_mean_ms, 0.082, 0.003);
}

TEST(FluidSim, SyntheticLoadCompletes) {
  const EsnConfig cfg = small_esn();
  const auto w = synthetic(cfg, 0.5, 4'000);
  const double offered =
      static_cast<double>(w.total_bytes().in_bits()) /
      (static_cast<double>(cfg.server_rate.bits_per_sec()) * cfg.servers() *
       w.last_arrival().to_sec());
  EsnFluidSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.completed_flows, 4'000);
  EXPECT_GT(r.goodput_normalized, offered * 0.6);
  EXPECT_LE(r.goodput_normalized, 1.0);
}

TEST(FluidSim, OversubscribedLosesGoodputAtHighLoad) {
  // Nominal load 3 saturates the fabric despite the flow-size cap; the
  // 3:1 oversubscribed variant then silos inter-rack traffic (Fig. 9b).
  const auto w = synthetic(small_esn(), 3.0, 6'000);
  const double nb = EsnFluidSim(small_esn(1), w).run().goodput_normalized;
  const double os = EsnFluidSim(small_esn(3), w).run().goodput_normalized;
  EXPECT_GT(nb, os * 1.15);
}

TEST(PacketClos, SingleFlowMatchesSerialisation) {
  PacketClosConfig cfg;
  cfg.esn = small_esn();
  const auto w = explicit_flows(cfg.esn, {{0, 12, 150'000, 0}});
  PacketClosSim sim(cfg, w);
  const auto r = sim.run();
  EXPECT_EQ(r.completed_flows, 1);
  // 150 KB at 50 Gbps = 24 us store-and-forward dominated; plus per-hop
  // latency and pipelining slack, well under 40 us.
  EXPECT_LT(r.fct.all_fct_mean_ms, 0.040);
  EXPECT_GT(r.fct.all_fct_mean_ms, 0.024);
}

TEST(PacketClos, AgreesWithFluidOnSmallWorkload) {
  PacketClosConfig pc;
  pc.esn = small_esn();
  const auto w = synthetic(pc.esn, 0.4, 800);
  const auto fluid = EsnFluidSim(pc.esn, w).run();
  const auto pkt = PacketClosSim(pc, w).run();
  EXPECT_EQ(fluid.completed_flows, pkt.completed_flows);
  // The fluid model is the idealisation of the packet simulator: mean FCTs
  // agree within 35 % and goodput within 20 % on an underloaded network.
  EXPECT_NEAR(pkt.fct.all_fct_mean_ms, fluid.fct.all_fct_mean_ms,
              fluid.fct.all_fct_mean_ms * 0.35 + 0.01);
  EXPECT_NEAR(pkt.goodput_normalized, fluid.goodput_normalized,
              fluid.goodput_normalized * 0.2 + 0.02);
}

TEST(PacketClos, FairnessBetweenConcurrentFlows) {
  PacketClosConfig pc;
  pc.esn = small_esn();
  // Two equal flows from distinct sources to one destination, started
  // together, should finish together (round-robin interleaving).
  const auto w = explicit_flows(pc.esn, {{0, 12, 300'000, 0},
                                         {4, 12, 300'000, 0}});
  PacketClosSim sim(pc, w);
  const auto r = sim.run();
  EXPECT_EQ(r.completed_flows, 2);
  EXPECT_LT(r.fct.all_fct_p99_ms / r.fct.all_fct_mean_ms, 1.1);
}

}  // namespace
}  // namespace sirius::esn
