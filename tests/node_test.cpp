// Unit tests for node/: cells, LOCAL buffer semantics, queues, reordering.
#include <gtest/gtest.h>

#include "node/cell.hpp"
#include "node/node.hpp"
#include "node/reorder_buffer.hpp"

namespace sirius::node {
namespace {

constexpr DataSize kCell = DataSize::bytes(562);
const Time kInject = Time::ns(90);  // one cell per 90 ns at 50 Gbps

cc::RequestGrantConfig cc_cfg() { return cc::RequestGrantConfig{8, 4}; }

LocalFlow flow(FlowId id, NodeId dst, DataSize size, Time arrival) {
  LocalFlow f;
  f.id = id;
  f.dst_node = dst;
  f.dst_server = dst * 10;
  f.size = size;
  f.arrival = arrival;
  f.total_cells = cells_for(size, kCell);
  return f;
}

TEST(CellMath, CellsForAndPayload) {
  EXPECT_EQ(cells_for(DataSize::bytes(1), kCell), 1);
  EXPECT_EQ(cells_for(DataSize::bytes(562), kCell), 1);
  EXPECT_EQ(cells_for(DataSize::bytes(563), kCell), 2);
  EXPECT_EQ(cells_for(DataSize::kilobytes(100), kCell), 178);
  // Last cell carries the remainder.
  EXPECT_EQ(payload_of(DataSize::bytes(1'000), kCell, 0), 562);
  EXPECT_EQ(payload_of(DataSize::bytes(1'000), kCell, 1), 438);
  EXPECT_EQ(payload_of(DataSize::bytes(46), kCell, 0), 46);
}

TEST(LocalFlowPacing, CellsReleaseAtLineRate) {
  const LocalFlow f = flow(0, 1, DataSize::bytes(562 * 10), Time::zero());
  EXPECT_EQ(f.available(Time::zero(), kInject), 1);
  EXPECT_EQ(f.available(Time::ns(89), kInject), 1);
  EXPECT_EQ(f.available(Time::ns(90), kInject), 2);
  EXPECT_EQ(f.available(Time::ns(900), kInject), 10);
  EXPECT_EQ(f.available(Time::ms(1), kInject), 10);  // capped at total
}

TEST(Node, PendingDstsRoundRobinAcrossFlows) {
  Node n(0, cc_cfg(), kCell);
  n.add_flow(flow(0, 3, DataSize::bytes(562 * 2), Time::zero()));
  n.add_flow(flow(1, 5, DataSize::bytes(562), Time::zero()));
  // One cell per flow first (credit-based fairness), then the remainder.
  const auto all = n.pending_cell_dsts(Time::us(1), kInject, 100);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 3);
  EXPECT_EQ(all[1], 5);
  EXPECT_EQ(all[2], 3);
  EXPECT_EQ(n.pending_cell_dsts(Time::us(1), kInject, 2).size(), 2u);
}

TEST(Node, PendingDstsFairAcrossServers) {
  // An elephant on server 1 must not dilute server 2's lone flow: the
  // two-level round-robin alternates servers first.
  Node n(0, cc_cfg(), kCell);
  LocalFlow elephant = flow(0, 3, DataSize::bytes(562 * 50), Time::zero());
  elephant.src_server = 1;
  LocalFlow mouse = flow(1, 5, DataSize::bytes(562 * 2), Time::zero());
  mouse.src_server = 2;
  n.add_flow(elephant);
  n.add_flow(mouse);
  const auto dsts = n.pending_cell_dsts(Time::us(100), kInject, 6);
  ASSERT_EQ(dsts.size(), 6u);
  // Alternating until the mouse runs out: 3,5,3,5,3,3.
  EXPECT_EQ(dsts[0], 3);
  EXPECT_EQ(dsts[1], 5);
  EXPECT_EQ(dsts[2], 3);
  EXPECT_EQ(dsts[3], 5);
  EXPECT_EQ(dsts[4], 3);
  EXPECT_EQ(dsts[5], 3);
}

TEST(Node, PendingRespectsInjectionPacing) {
  Node n(0, cc_cfg(), kCell);
  n.add_flow(flow(0, 3, DataSize::bytes(562 * 100), Time::zero()));
  // At t=0 only the first cell has crossed the server link.
  EXPECT_EQ(n.pending_cell_dsts(Time::zero(), kInject, 100).size(), 1u);
  EXPECT_EQ(n.pending_cell_dsts(Time::ns(450), kInject, 100).size(), 6u);
}

TEST(Node, TakeCellForCutsInFifoOrderWithSeqs) {
  Node n(0, cc_cfg(), kCell);
  n.add_flow(flow(7, 3, DataSize::bytes(562 * 2), Time::zero()));
  const Time late = Time::us(10);
  auto c0 = n.take_cell_for(3, late, kInject);
  ASSERT_TRUE(c0.has_value());
  EXPECT_EQ(c0->flow, 7);
  EXPECT_EQ(c0->seq, 0);
  EXPECT_EQ(c0->dst_node, 3);
  auto c1 = n.take_cell_for(3, late, kInject);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->seq, 1);
  EXPECT_FALSE(n.take_cell_for(3, late, kInject).has_value());
  EXPECT_FALSE(n.has_unfinished_flows());
}

TEST(Node, TakeCellForWrongDstFails) {
  Node n(0, cc_cfg(), kCell);
  n.add_flow(flow(0, 3, DataSize::bytes(562), Time::zero()));
  EXPECT_FALSE(n.take_cell_for(4, Time::us(1), kInject).has_value());
  EXPECT_TRUE(n.take_cell_for(3, Time::us(1), kInject).has_value());
}

TEST(Node, OldestFlowServedFirstPerDestination) {
  Node n(0, cc_cfg(), kCell);
  n.add_flow(flow(1, 3, DataSize::bytes(562), Time::zero()));
  n.add_flow(flow(2, 3, DataSize::bytes(562), Time::ns(1)));
  auto c = n.take_cell_for(3, Time::us(1), kInject);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->flow, 1);
}

TEST(Node, SprayRoundRobinsAcrossFlows) {
  Node n(0, cc_cfg(), kCell);
  n.add_flow(flow(1, 3, DataSize::bytes(562 * 4), Time::zero()));
  n.add_flow(flow(2, 5, DataSize::bytes(562 * 4), Time::zero()));
  const Time late = Time::us(10);
  auto a = n.take_any_cell(late, kInject);
  auto b = n.take_any_cell(late, kInject);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->flow, b->flow);  // strict alternation between the two flows
  auto c = n.take_any_cell(late, kInject);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->flow, a->flow);
}

TEST(Node, QueueGaugesTrackVqAndFq) {
  Node n(0, cc_cfg(), kCell);
  Cell c{};
  c.flow = 1;
  c.dst_node = 3;
  c.payload_bytes = 100;
  n.push_vq(2, c);
  n.push_fq(3, c);
  EXPECT_EQ(n.current_queue(), DataSize::bytes(2 * 562));
  EXPECT_EQ(n.peak_queue(), DataSize::bytes(2 * 562));
  EXPECT_TRUE(n.pop_vq(2).has_value());
  EXPECT_FALSE(n.pop_vq(2).has_value());
  EXPECT_EQ(n.fq_depth(3), 1);
  EXPECT_TRUE(n.pop_fq(3).has_value());
  EXPECT_EQ(n.current_queue(), DataSize::zero());
  EXPECT_EQ(n.peak_queue(), DataSize::bytes(2 * 562));  // peak is sticky
}

TEST(ReorderBuffer, InOrderPassthrough) {
  ReorderBuffer rb(3);
  EXPECT_EQ(rb.on_arrival(0, 562), 1);
  EXPECT_EQ(rb.on_arrival(1, 562), 1);
  EXPECT_EQ(rb.on_arrival(2, 100), 1);
  EXPECT_TRUE(rb.complete());
  EXPECT_EQ(rb.peak_buffered(), DataSize::zero());
}

TEST(ReorderBuffer, OutOfOrderBuffersAndReleases) {
  ReorderBuffer rb(4);
  EXPECT_EQ(rb.on_arrival(2, 562), 0);
  EXPECT_EQ(rb.on_arrival(1, 562), 0);
  EXPECT_EQ(rb.buffered_cells(), 2);
  EXPECT_EQ(rb.peak_buffered(), DataSize::bytes(2 * 562));
  // Seq 0 releases 0,1,2 at once.
  EXPECT_EQ(rb.on_arrival(0, 562), 3);
  EXPECT_EQ(rb.buffered_cells(), 0);
  EXPECT_FALSE(rb.complete());
  EXPECT_EQ(rb.on_arrival(3, 10), 1);
  EXPECT_TRUE(rb.complete());
}

TEST(ReorderBuffer, DuplicatesIgnored) {
  ReorderBuffer rb(2);
  rb.on_arrival(0, 562);
  EXPECT_EQ(rb.on_arrival(0, 562), 0);
  rb.on_arrival(1, 562);
  EXPECT_TRUE(rb.complete());
}

TEST(ReorderBuffer, PeakSurvivesRelease) {
  ReorderBuffer rb(10);
  for (std::int32_t s = 9; s >= 1; --s) rb.on_arrival(s, 562);
  EXPECT_EQ(rb.peak_buffered(), DataSize::bytes(9 * 562));
  rb.on_arrival(0, 562);
  EXPECT_TRUE(rb.complete());
  EXPECT_EQ(rb.peak_buffered(), DataSize::bytes(9 * 562));
}

}  // namespace
}  // namespace sirius::node
