// Unit tests for workload/: §7 generator, load arithmetic, §2.2 packet mix.
#include <gtest/gtest.h>

#include <algorithm>

#include "workload/generator.hpp"
#include "workload/packet_mix.hpp"

namespace sirius::workload {
namespace {

GeneratorConfig small_cfg(double load) {
  GeneratorConfig g;
  g.servers = 64;
  g.server_rate = DataRate::gbps(50);
  g.load = load;
  g.flow_count = 20'000;
  g.seed = 7;
  return g;
}

TEST(Generator, LoadFormula) {
  // L = F / (R N tau)  =>  tau = F / (R N L).
  GeneratorConfig g = small_cfg(0.5);
  const Time tau = mean_interarrival_for_load(g);
  const double expected_sec =
      (100'000.0 * 8.0) / (50e9 * 64 * 0.5);
  EXPECT_NEAR(tau.to_sec(), expected_sec, expected_sec * 1e-6);
}

TEST(Generator, ArrivalsMatchConfiguredLoad) {
  GeneratorConfig g = small_cfg(0.25);
  const Workload w = generate(g);
  const double measured_tau =
      w.last_arrival().to_sec() / static_cast<double>(w.flows.size());
  EXPECT_NEAR(measured_tau, mean_interarrival_for_load(g).to_sec(),
              mean_interarrival_for_load(g).to_sec() * 0.05);
}

TEST(Generator, FlowsSortedWithDistinctEndpoints) {
  const Workload w = generate(small_cfg(0.5));
  ASSERT_EQ(w.flows.size(), 20'000u);
  Time prev = Time::zero();
  for (const auto& f : w.flows) {
    EXPECT_GE(f.arrival, prev);
    prev = f.arrival;
    EXPECT_NE(f.src_server, f.dst_server);
    EXPECT_GE(f.src_server, 0);
    EXPECT_LT(f.src_server, 64);
    EXPECT_GE(f.dst_server, 0);
    EXPECT_LT(f.dst_server, 64);
    EXPECT_GE(f.size.in_bytes(), 1);
  }
}

TEST(Generator, HeavyTailShape) {
  // Pareto(1.05, mean 100 KB): most flows are small, most bytes in large
  // flows — the defining property of the workload (§7).
  const Workload w = generate(small_cfg(0.5));
  std::vector<std::int64_t> sizes;
  sizes.reserve(w.flows.size());
  for (const auto& f : w.flows) sizes.push_back(f.size.in_bytes());
  std::sort(sizes.begin(), sizes.end());
  const std::int64_t median = sizes[sizes.size() / 2];
  // Cap-aware calibration raises the scale a little; the median still sits
  // far below the 100 KB mean (most flows are small).
  EXPECT_LT(median, 35'000);

  std::int64_t total = 0;
  for (auto s : sizes) total += s;
  std::int64_t top10 = 0;
  for (std::size_t i = sizes.size() * 9 / 10; i < sizes.size(); ++i) {
    top10 += sizes[i];
  }
  EXPECT_GT(static_cast<double>(top10) / static_cast<double>(total), 0.5);
}

TEST(Generator, DeterministicPerSeed) {
  const Workload a = generate(small_cfg(0.5));
  const Workload b = generate(small_cfg(0.5));
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.flows[i].arrival, b.flows[i].arrival);
    EXPECT_EQ(a.flows[i].size, b.flows[i].size);
    EXPECT_EQ(a.flows[i].src_server, b.flows[i].src_server);
  }
  GeneratorConfig other = small_cfg(0.5);
  other.seed = 8;
  const Workload c = generate(other);
  EXPECT_NE(a.flows[0].size, c.flows[0].size);
}

TEST(Generator, MaxFlowSizeCapApplies) {
  GeneratorConfig g = small_cfg(0.5);
  g.max_flow_size = DataSize::kilobytes(500);
  const Workload w = generate(g);
  for (const auto& f : w.flows) {
    EXPECT_LE(f.size, DataSize::kilobytes(500));
  }
}

TEST(Generator, MeanFlowSizeSweepsForFig13) {
  // With cap-aware calibration, the sample mean tracks the configured mean
  // closely (the capped distribution has finite, modest variance).
  for (const std::int64_t mean :
       {512ll, 1'024ll, 4'096ll, 16'384ll, 100'000ll}) {
    GeneratorConfig g = small_cfg(0.5);
    g.mean_flow_size = DataSize::bytes(mean);
    g.flow_count = 50'000;
    const Workload w = generate(g);
    double sum = 0.0;
    for (const auto& f : w.flows) sum += static_cast<double>(f.size.in_bytes());
    // Finite-sample tail noise of Pareto(1.05) keeps the sample mean a
    // little under the nominal value even after cap calibration.
    EXPECT_GT(sum / 50'000.0, static_cast<double>(mean) * 0.7);
    EXPECT_LT(sum / 50'000.0, static_cast<double>(mean) * 1.25);
  }
}

TEST(Generator, OfferedLoadMatchesNominal) {
  // The whole point of the calibration: bytes offered over the arrival
  // window realise the configured load L.
  GeneratorConfig g = small_cfg(0.5);
  g.flow_count = 50'000;
  const Workload w = generate(g);
  const double offered =
      static_cast<double>(w.total_bytes().in_bits()) /
      (static_cast<double>(g.server_rate.bits_per_sec()) * g.servers *
       w.last_arrival().to_sec());
  EXPECT_NEAR(offered, 0.5, 0.05);
}

TEST(PacketMix, CloudTraceFractions) {
  // §2.2: over 34 % of packets < 128 B, 97.8 % <= 576 B.
  const PacketMix mix = PacketMix::cloud_trace_2019();
  EXPECT_NEAR(mix.fraction_at_or_below(DataSize::bytes(128)), 0.34, 1e-9);
  EXPECT_NEAR(mix.fraction_at_or_below(DataSize::bytes(576)), 0.978, 1e-9);
  EXPECT_NEAR(mix.fraction_at_or_below(DataSize::bytes(1500)), 1.0, 1e-9);
}

TEST(PacketMix, MemcachedFractions) {
  // [80]: over 91 % of packets are 576 B or less.
  const PacketMix mix = PacketMix::memcached();
  EXPECT_GE(mix.fraction_at_or_below(DataSize::bytes(576)), 0.91);
}

TEST(PacketMix, SamplesRespectBands) {
  const PacketMix mix = PacketMix::cloud_trace_2019();
  Rng rng(1);
  int below_576 = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const DataSize s = mix.sample(rng);
    EXPECT_GE(s.in_bytes(), 64);
    EXPECT_LE(s.in_bytes(), 1'500);
    if (s <= DataSize::bytes(576)) ++below_576;
  }
  EXPECT_NEAR(below_576 / static_cast<double>(kDraws), 0.978, 0.01);
}

TEST(SwitchingArithmetic, PaperNumbers) {
  // §2.2: 576 B at 50 Gbps -> switch every ~92 ns; <10 % overhead needs a
  // guardband under ~9.2 ns (hence the <10 ns reconfiguration target).
  const Time interval =
      switch_interval(DataSize::bytes(576), DataRate::gbps(50));
  EXPECT_NEAR(interval.to_ns(), 92.16, 0.01);
  const Time guard = max_guardband_for_overhead(DataSize::bytes(576),
                                                DataRate::gbps(50), 0.10);
  EXPECT_NEAR(guard.to_ns(), 9.2, 0.05);
  // The prototype's 3.84 ns guardband keeps overhead at ~4 %.
  EXPECT_LE(3.84 / (3.84 + interval.to_ns()), 0.041);
}

}  // namespace
}  // namespace sirius::workload
