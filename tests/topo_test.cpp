// Unit tests for topo/: Sirius wiring plan and Clos descriptor.
#include <gtest/gtest.h>

#include <set>

#include "topo/clos_topology.hpp"
#include "topo/expander.hpp"
#include "topo/sirius_topology.hpp"

namespace sirius::topo {
namespace {

SiriusTopology fig5a() {
  // Fig. 5a: 4 nodes, 2 uplinks each, 2-port gratings (2 blocks of 2).
  SiriusTopologyConfig cfg;
  cfg.nodes = 4;
  cfg.grating_ports = 2;
  cfg.replicas = 1;
  return SiriusTopology(cfg);
}

TEST(SiriusTopology, Fig5aShape) {
  const auto t = fig5a();
  EXPECT_EQ(t.blocks(), 2);
  EXPECT_EQ(t.uplinks_per_node(), 2);
  EXPECT_EQ(t.gratings(), 4);
}

TEST(SiriusTopology, BlockArithmetic) {
  const auto t = fig5a();
  EXPECT_EQ(t.block_of(0), 0);
  EXPECT_EQ(t.block_of(1), 0);
  EXPECT_EQ(t.block_of(2), 1);
  EXPECT_EQ(t.index_in_block(3), 1);
}

TEST(SiriusTopology, EveryUplinkLandsOnDistinctGrating) {
  const auto t = fig5a();
  for (NodeId n = 0; n < 4; ++n) {
    std::set<GratingId> gratings;
    for (UplinkId u = 0; u < t.uplinks_per_node(); ++u) {
      gratings.insert(t.tx_attachment(n, u).grating);
    }
    EXPECT_EQ(gratings.size(), static_cast<std::size_t>(t.uplinks_per_node()));
  }
}

TEST(SiriusTopology, GratingPortsNeverShared) {
  // No two nodes may drive the same input port of the same grating.
  const auto t = fig5a();
  std::set<std::pair<GratingId, std::int32_t>> taken;
  for (NodeId n = 0; n < 4; ++n) {
    for (UplinkId u = 0; u < t.uplinks_per_node(); ++u) {
      const auto att = t.tx_attachment(n, u);
      EXPECT_TRUE(taken.insert({att.grating, att.input_port}).second)
          << "node " << n << " uplink " << u;
    }
  }
}

TEST(SiriusTopology, WavelengthRoundTrip) {
  const auto t = fig5a();
  for (NodeId src = 0; src < 4; ++src) {
    for (NodeId dst = 0; dst < 4; ++dst) {
      for (UplinkId u : t.uplinks_towards(src, dst)) {
        const WavelengthId w = t.wavelength_to(src, u, dst);
        EXPECT_EQ(t.destination_of(src, u, w), dst);
      }
    }
  }
}

TEST(SiriusTopology, FullReachability) {
  // Every node reaches every other node through some (uplink, wavelength).
  SiriusTopologyConfig cfg;
  cfg.nodes = 24;
  cfg.grating_ports = 8;  // 3 blocks
  SiriusTopology t(cfg);
  for (NodeId src = 0; src < cfg.nodes; ++src) {
    std::set<NodeId> reached;
    for (UplinkId u = 0; u < t.uplinks_per_node(); ++u) {
      for (WavelengthId w = 0; w < cfg.grating_ports; ++w) {
        const NodeId d = t.destination_of(src, u, w);
        if (d != kInvalidNode) reached.insert(d);
      }
    }
    EXPECT_EQ(reached.size(), 24u);  // includes a path back to itself
  }
}

TEST(SiriusTopology, ReplicasAddParallelUplinks) {
  SiriusTopologyConfig cfg;
  cfg.nodes = 8;
  cfg.grating_ports = 4;
  cfg.replicas = 2;
  SiriusTopology t(cfg);
  EXPECT_EQ(t.uplinks_per_node(), 4);
  EXPECT_EQ(t.gratings(), 8);
  const auto ups = t.uplinks_towards(0, 5);
  EXPECT_EQ(ups.size(), 2u);
  for (UplinkId u : ups) {
    EXPECT_EQ(t.destination_of(0, u, t.wavelength_to(0, u, 5)), 5);
  }
}

TEST(SiriusTopology, PaperScale) {
  // §4.1: 100-port gratings x 256 uplinks = 25,600 racks.
  EXPECT_EQ(SiriusTopology::max_scale(100, 256), 25'600);
  // Modern accelerator server: 48 x 50 Gbps channels on 100-port gratings
  // connects 4,800 servers.
  EXPECT_EQ(SiriusTopology::max_scale(100, 48), 4'800);
  // 4,096 racks through 16-port gratings with 256 uplinks.
  EXPECT_GE(SiriusTopology::max_scale(16, 256), 4'096);
}

TEST(SiriusTopology, UplinkBandwidth) {
  SiriusTopologyConfig cfg;
  cfg.nodes = 128;
  cfg.grating_ports = 128;
  cfg.replicas = 12;  // 12 uplinks on a single-block cluster
  SiriusTopology t(cfg);
  EXPECT_EQ(t.uplinks_per_node(), 12);
  EXPECT_NEAR(t.node_uplink_bandwidth().in_gbps(), 600.0, 0.1);
}

TEST(ClosTopology, TiersNeeded) {
  // Fig. 2a x-axis with radix-64 switches: 2 -> 0, 64 -> 1, 2K -> 2,
  // 65K -> 3, 2M -> 4.
  EXPECT_EQ(ClosTopology::tiers_needed(2, 64), 0);
  EXPECT_EQ(ClosTopology::tiers_needed(64, 64), 1);
  EXPECT_EQ(ClosTopology::tiers_needed(2'048, 64), 2);
  EXPECT_EQ(ClosTopology::tiers_needed(65'536, 64), 3);
  EXPECT_EQ(ClosTopology::tiers_needed(2'000'000, 64), 4);
}

TEST(ClosTopology, RackCapacityAndOversubscription) {
  ClosConfig cfg;
  cfg.racks = 128;
  cfg.servers_per_rack = 24;
  cfg.server_link = DataRate::gbps(50);
  ClosTopology nb(cfg);
  EXPECT_EQ(nb.servers(), 3'072);
  EXPECT_NEAR(nb.rack_uplink_capacity().in_gbps(), 1'200.0, 0.1);

  cfg.oversubscription = 3;
  ClosTopology osub(cfg);
  EXPECT_NEAR(osub.rack_uplink_capacity().in_gbps(), 400.0, 0.1);
  EXPECT_LT(osub.bisection_bandwidth().in_tbps(),
            nb.bisection_bandwidth().in_tbps());
}

TEST(ClosTopology, DeviceCountsGrowWithScale) {
  ClosConfig small;
  small.racks = 16;
  small.servers_per_rack = 16;
  ClosConfig large;
  large.racks = 256;
  large.servers_per_rack = 24;
  EXPECT_LT(ClosTopology(small).switch_count(),
            ClosTopology(large).switch_count());
  EXPECT_LT(ClosTopology(small).transceiver_count(),
            ClosTopology(large).transceiver_count());
}

TEST(Expander, RegularAndConnected) {
  ExpanderGraph g(64, 8, 1);
  EXPECT_TRUE(g.connected());
  for (NodeId v = 0; v < 64; ++v) {
    EXPECT_EQ(g.neighbors(v).size(), 8u);
    // Simple graph: no self loops, no duplicate neighbors.
    std::set<NodeId> uniq(g.neighbors(v).begin(), g.neighbors(v).end());
    EXPECT_EQ(uniq.size(), 8u);
    EXPECT_EQ(uniq.count(v), 0u);
  }
}

TEST(Expander, PathLengthLogarithmic) {
  // Random regular graphs have diameter ~ log_{d-1}(n): tiny even at
  // hundreds of switches.
  ExpanderGraph g(256, 16, 2);
  EXPECT_LE(g.diameter(), 4);
  EXPECT_GT(g.average_path_length(), 1.0);
  EXPECT_LT(g.average_path_length(), 3.0);
}

TEST(Expander, ThroughputBoundDecaysWithScaleAtFixedDegree) {
  ExpanderGraph small(64, 8, 3);
  ExpanderGraph large(512, 8, 3);
  EXPECT_GT(small.uniform_throughput_bound(),
            large.uniform_throughput_bound());
}

TEST(Expander, DeterministicPerSeed) {
  ExpanderGraph a(64, 6, 9);
  ExpanderGraph b(64, 6, 9);
  for (NodeId v = 0; v < 64; ++v) {
    EXPECT_EQ(a.neighbors(v), b.neighbors(v));
  }
}

}  // namespace
}  // namespace sirius::topo
