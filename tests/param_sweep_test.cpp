// Cross-module parameterised property sweeps (TEST_P): device models,
// codecs and protocols must hold their invariants across their whole
// configuration space, not just the paper's operating point.
#include <gtest/gtest.h>

#include <tuple>

#include "fec/reed_solomon.hpp"
#include "frame/cell_frame.hpp"
#include "optical/awgr.hpp"
#include "optical/dsdbr_laser.hpp"
#include "optical/crosstalk.hpp"
#include "phy/slot_geometry.hpp"
#include "sync/sync_protocol.hpp"

namespace sirius {
namespace {

// ---------------------------------------------------------------- AWGR --

class AwgrPortSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(AwgrPortSweep, CyclicRoutingIsAlwaysAPermutationFamily) {
  const std::int32_t ports = GetParam();
  optical::Awgr g(ports);
  for (WavelengthId w = 0; w < ports; ++w) {
    std::vector<bool> hit(static_cast<std::size_t>(ports), false);
    for (std::int32_t in = 0; in < ports; ++in) {
      const std::int32_t out = g.route(in, w);
      ASSERT_GE(out, 0);
      ASSERT_LT(out, ports);
      ASSERT_FALSE(hit[static_cast<std::size_t>(out)]);
      hit[static_cast<std::size_t>(out)] = true;
      ASSERT_EQ(g.wavelength_for(in, out), w);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ports, AwgrPortSweep,
                         ::testing::Values(2, 3, 16, 100, 128, 512));

// --------------------------------------------------------------- DSDBR --

class DsdbrRangeSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(DsdbrRangeSweep, WorstCaseAtConfiguredBoundAndSymmetricFloor) {
  optical::DsdbrConfig cfg;
  cfg.wavelengths = GetParam();
  optical::DsdbrLaser l(cfg);
  const Time worst = l.worst_case_latency();
  EXPECT_LE(worst, cfg.dampened_worst_case);
  EXPECT_GE(worst, cfg.dampened_worst_case / 2);  // attained near full span
  // Latency is bounded below by the drive-electronics floor and above by
  // the configured worst case for every pair.
  for (WavelengthId i = 0; i < cfg.wavelengths; i += 7) {
    for (WavelengthId j = 0; j < cfg.wavelengths; j += 5) {
      if (i == j) continue;
      const Time t = l.tuning_latency(i, j);
      EXPECT_GE(t, Time::ns(2));
      EXPECT_LE(t, cfg.dampened_worst_case);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, DsdbrRangeSweep,
                         ::testing::Values(8, 16, 56, 112));

// ----------------------------------------------------------------- FEC --

class RsProfileSweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>> {
};

TEST_P(RsProfileSweep, CorrectsExactlyUpToT) {
  const auto [n, k] = GetParam();
  fec::ReedSolomon rs(n, k);
  Rng rng(static_cast<std::uint64_t>(n * 1'000 + k));
  std::vector<std::uint8_t> data(static_cast<std::size_t>(k));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  auto code = rs.encode(data);
  // Inject exactly t errors at spread positions.
  for (std::int32_t e = 0; e < rs.t(); ++e) {
    code[static_cast<std::size_t>((e * 37) % n)] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
  }
  const auto decoded = rs.decode(code);
  ASSERT_TRUE(decoded.has_value()) << "RS(" << n << "," << k << ")";
  EXPECT_EQ(*decoded, data);
  EXPECT_EQ(rs.last_corrections(), rs.t());
}

INSTANTIATE_TEST_SUITE_P(Profiles, RsProfileSweep,
                         ::testing::Values(std::make_tuple(255, 223),
                                           std::make_tuple(255, 239),
                                           std::make_tuple(64, 32),
                                           std::make_tuple(16, 8),
                                           std::make_tuple(254, 224)));

// --------------------------------------------------------------- Frame --

class FrameCellSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(FrameCellSweep, RoundTripAtEveryCellSize) {
  // The Fig. 11 sweep rescales cells from 56 B to 2.2 KB; the wire format
  // must round-trip at each geometry.
  frame::CellCodec codec(DataSize::bytes(GetParam()), 4);
  frame::CellFrame f;
  f.flow = 123456;
  f.seq = 9;
  f.src_node = 63;
  f.dst_node = 1;
  f.cc = {frame::CcSignal::Kind::kRequest, 17};
  const auto cap = static_cast<std::size_t>(codec.payload_capacity());
  for (std::size_t i = 0; i < std::min<std::size_t>(cap, 64); ++i) {
    f.payload.push_back(static_cast<std::uint8_t>(i));
  }
  const auto decoded = codec.decode(codec.encode(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, f);
}

INSTANTIATE_TEST_SUITE_P(CellSizes, FrameCellSweep,
                         ::testing::Values(56, 112, 281, 562, 1124, 2248));

// ---------------------------------------------------------------- Sync --

class SyncScaleSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(SyncScaleSweep, AccuracyHoldsAcrossFleetSizes) {
  sync::SyncProtocolConfig cfg;
  cfg.nodes = GetParam();
  sync::SyncProtocolSim sim(cfg, 99);
  const auto r = sim.run(60'000, 10'000);
  EXPECT_LE(r.max_pairwise_offset_ps, 6.0) << cfg.nodes << " nodes";
}

INSTANTIATE_TEST_SUITE_P(Fleet, SyncScaleSweep,
                         ::testing::Values(2, 4, 16, 48));

// ---------------------------------------------------------- Crosstalk --

class CrosstalkIsolationSweep : public ::testing::TestWithParam<double> {};

TEST_P(CrosstalkIsolationSweep, PenaltyMonotoneAndRadixConsistent) {
  optical::CrosstalkConfig cfg;
  cfg.adjacent_isolation_db = GetParam();
  cfg.nonadjacent_isolation_db = GetParam() + 10.0;
  optical::CrosstalkModel m(cfg);
  double prev = -1.0;
  for (const std::int32_t p : {2, 8, 32, 128, 512}) {
    const double pen = m.power_penalty_db(p);
    EXPECT_GE(pen, prev);
    prev = pen;
  }
  // The reported max radix indeed satisfies the margin, and +1 violates it.
  const std::int32_t radix = m.max_ports_within_penalty(2.0, 2'048);
  EXPECT_LE(m.power_penalty_db(radix), 2.0);
  if (radix < 2'048) {
    EXPECT_GT(m.power_penalty_db(radix + 1), 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Isolation, CrosstalkIsolationSweep,
                         ::testing::Values(18.0, 22.0, 27.0, 33.0));

// ------------------------------------------------------- SlotGeometry --

class SlotRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(SlotRateSweep, GuardFractionHoldsAcrossLineRates) {
  const DataRate rate = DataRate::gbps(GetParam());
  for (const std::int64_t g_ns : {2, 10, 40}) {
    const auto geo =
        phy::SlotGeometry::with_guardband_fraction(Time::ns(g_ns), rate);
    EXPECT_NEAR(geo.guard_overhead(), 0.10, 0.02)
        << rate.to_string() << " @ " << g_ns << " ns";
    EXPECT_GT(geo.cell_size().in_bytes(), 0);
    EXPECT_NEAR(geo.effective_rate().bits_per_sec() /
                    static_cast<double>(rate.bits_per_sec()),
                0.9, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SlotRateSweep,
                         ::testing::Values(25.0, 50.0, 100.0, 200.0));

}  // namespace
}  // namespace sirius
