// Tests for the failure-detection control plane (ctrl/) and the
// on-demand scheduler baseline (sched/demand_scheduler).
#include <gtest/gtest.h>

#include "ctrl/failure_detector.hpp"
#include "sched/demand_scheduler.hpp"

namespace sirius {
namespace {

TEST(FailureDetector, HardFailureDetectedAtThreshold) {
  ctrl::FailureDetectorConfig cfg;
  cfg.nodes = 32;
  cfg.miss_threshold = 3;
  ctrl::FailureDetectorSim sim(cfg, 1);
  const auto r = sim.run_hard_failure(5);
  EXPECT_EQ(r.first_detection_round, 3);
  // Dissemination completes within one further round (§4.5: every pair is
  // reconnected each round).
  EXPECT_LE(r.all_aware_round, r.first_detection_round + 1);
  EXPECT_EQ(r.detection_latency, cfg.round_duration * 3);
}

TEST(FailureDetector, LatencyScalesWithRoundDuration) {
  ctrl::FailureDetectorConfig cfg;
  cfg.nodes = 16;
  cfg.round_duration = Time::us(2);
  ctrl::FailureDetectorSim sim(cfg, 2);
  const auto r = sim.run_hard_failure(0);
  // Microseconds, as §4.4 promises ("replaced in a few microseconds").
  EXPECT_LE(r.dissemination_latency, Time::us(10));
}

TEST(FailureDetector, GreyFailureEventuallyCaught) {
  ctrl::FailureDetectorConfig cfg;
  cfg.nodes = 8;
  cfg.miss_threshold = 3;
  ctrl::FailureDetectorSim sim(cfg, 3);
  // A link dropping half its bursts trips 3-in-a-row quickly...
  const auto heavy = sim.run_grey_failure(0, 1, 0.5);
  EXPECT_GT(heavy, 0);
  EXPECT_LT(heavy, 200);
  // ... a 1% lossy link takes far longer (expected ~1/p^k rounds).
  const auto light = sim.run_grey_failure(0, 1, 0.01);
  EXPECT_TRUE(light == -1 || light > heavy);
}

TEST(DemandScheduler, PerfectMatchOnPermutationDemand) {
  // Demand that is already a permutation: one slot serves it fully.
  const std::int32_t n = 8;
  sched::DemandScheduler ds(n, 4);
  std::vector<std::int64_t> demand(static_cast<std::size_t>(n) * n, 0);
  for (std::int32_t s = 0; s < n; ++s) {
    demand[static_cast<std::size_t>(s) * n +
           static_cast<std::size_t>((s + 3) % n)] = 1;
  }
  sched::MatchStats stats;
  const auto m = ds.match_slot(demand, 8, stats);
  EXPECT_EQ(stats.demand_served, n);
  for (std::int32_t s = 0; s < n; ++s) {
    EXPECT_EQ(m[static_cast<std::size_t>(s)], (s + 3) % n);
  }
}

TEST(DemandScheduler, MatchingsAreValidPermutations) {
  const std::int32_t n = 16;
  sched::DemandScheduler ds(n, 5);
  Rng rng(6);
  auto demand = sched::hotspot_demand(n, 400, 0.3, rng);
  sched::MatchStats stats;
  const auto slots = ds.decompose(demand, 30, 4, stats);
  for (const auto& m : slots) {
    std::vector<bool> dst_used(static_cast<std::size_t>(n), false);
    for (std::int32_t s = 0; s < n; ++s) {
      const NodeId d = m[static_cast<std::size_t>(s)];
      if (d == kInvalidNode) continue;
      EXPECT_NE(d, s);
      EXPECT_FALSE(dst_used[static_cast<std::size_t>(d)]);
      dst_used[static_cast<std::size_t>(d)] = true;
    }
  }
  EXPECT_GT(stats.demand_served, 0);
}

TEST(DemandScheduler, UniformDemandServedByBothApproaches) {
  // With uniform demand, the static rotation is optimal — on-demand
  // scheduling buys nothing (the §4.2 punchline).
  const std::int32_t n = 16;
  const auto demand = sched::uniform_demand(n, 2);  // 2 cells per pair
  // 2 cells/pair needs 2(N-1) slots on the rotation.
  const double stat =
      sched::DemandScheduler::static_rotation_service(demand, n, 2 * (n - 1));
  EXPECT_NEAR(stat, 1.0, 1e-9);

  sched::DemandScheduler ds(n, 7);
  sched::MatchStats stats;
  auto d = demand;
  ds.decompose(d, 2 * (n - 1), 4, stats);
  const auto total = static_cast<std::int64_t>(2 * n * (n - 1));
  EXPECT_GT(static_cast<double>(stats.demand_served) /
                static_cast<double>(total),
            0.95);
}

TEST(DemandScheduler, SkewedPairsAreWhereSchedulingWins) {
  // Demand concentrated on disjoint pairs: the static rotation gives each
  // pair only 1/(N-1) of its slots, while matching can serve all pairs in
  // every slot — the gap that Valiant load balancing closes *without* a
  // scheduler (by converting pair demand into uniform demand).
  const std::int32_t n = 16;
  const std::int32_t slots = n - 1;
  const auto demand = sched::skewed_pairs_demand(n, 4, slots);
  const double stat =
      sched::DemandScheduler::static_rotation_service(demand, n, slots);
  EXPECT_NEAR(stat, 1.0 / (n - 1), 1e-9);
  sched::DemandScheduler ds(n, 9);
  sched::MatchStats stats;
  auto d = demand;
  ds.decompose(d, slots, 4, stats);
  std::int64_t total = 0;
  for (const auto v : demand) total += v;
  const double dyn =
      static_cast<double>(stats.demand_served) / static_cast<double>(total);
  EXPECT_GT(dyn, 0.95);  // disjoint pairs match every slot
}

TEST(DemandScheduler, HotDestinationIsReceiverBound) {
  // A single hot destination can absorb only one cell per slot no matter
  // who schedules: matching cannot beat the rotation here.
  const std::int32_t n = 16;
  Rng rng(8);
  const auto demand = sched::hotspot_demand(n, 300, 0.8, rng);
  const std::int32_t slots = n - 1;
  const double stat =
      sched::DemandScheduler::static_rotation_service(demand, n, slots);
  sched::DemandScheduler ds(n, 9);
  sched::MatchStats stats;
  auto d = demand;
  ds.decompose(d, slots, 4, stats);
  std::int64_t total = 0;
  for (const auto v : demand) total += v;
  const double dyn =
      static_cast<double>(stats.demand_served) / static_cast<double>(total);
  EXPECT_NEAR(dyn, stat, 0.15);
}

TEST(DemandScheduler, ControlLatencyDwarfsSlot) {
  // The quantitative version of §4.2's practicality argument: collecting
  // demands and distributing schedules across a 500 m datacenter costs
  // ~5 us RTT; even a single-digit-iteration matcher at 10 ns/iteration
  // cannot fit inside a 100 ns slot.
  const Time latency = sched::DemandScheduler::control_latency(
      Time::us(5), /*iterations=*/4, Time::ns(10));
  EXPECT_GT(latency, Time::ns(100) * 50);  // 50+ slots stale
}

}  // namespace
}  // namespace sirius
