// Unit tests for the cell wire format (frame/).
#include <gtest/gtest.h>

#include "frame/cell_frame.hpp"

namespace sirius::frame {
namespace {

CellFrame sample_frame() {
  CellFrame f;
  f.flow = 0x1234'5678'9abcll;
  f.seq = 42;
  f.src_node = 7;
  f.dst_node = 120;
  f.dst_server = 2'881;
  f.second_hop = true;
  f.cc = {CcSignal::Kind::kGrant, 33};
  f.clock_phase_ps = 0xdeadbeef;
  f.failed_page_index = 3;
  f.failed_page_bits = 0b0010'0100;
  for (int i = 0; i < 200; ++i) {
    f.payload.push_back(static_cast<std::uint8_t>(i * 7));
  }
  return f;
}

TEST(CellCodec, GeometryOfDefaultCell) {
  CellCodec codec;  // 562 B, 4 B preamble
  EXPECT_EQ(codec.cell_size().in_bytes(), 562);
  // 562 - 4 preamble - 31 header - 4 CRC = 523 payload bytes.
  EXPECT_EQ(codec.payload_capacity(), 523);
}

TEST(CellCodec, EncodeProducesExactCellSize) {
  CellCodec codec;
  const auto wire = codec.encode(sample_frame());
  EXPECT_EQ(wire.size(), 562u);
}

TEST(CellCodec, RoundTrip) {
  CellCodec codec;
  const CellFrame f = sample_frame();
  const auto wire = codec.encode(f);
  const auto decoded = codec.decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, f);
}

TEST(CellCodec, RoundTripEmptyPayload) {
  CellCodec codec;
  CellFrame f;
  f.flow = 1;
  const auto decoded = codec.decode(codec.encode(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
  EXPECT_EQ(decoded->cc.kind, CcSignal::Kind::kNone);
}

TEST(CellCodec, FullPayloadFits) {
  CellCodec codec;
  CellFrame f;
  f.payload.assign(static_cast<std::size_t>(codec.payload_capacity()), 0xab);
  const auto decoded = codec.decode(codec.encode(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload.size(),
            static_cast<std::size_t>(codec.payload_capacity()));
}

TEST(CellCodec, CrcDetectsBitFlips) {
  CellCodec codec;
  auto wire = codec.encode(sample_frame());
  // Flip one bit in every region after the preamble: header, payload, pad.
  for (const std::size_t pos : {5u, 40u, 400u, 557u}) {
    auto corrupted = wire;
    corrupted[pos] ^= 0x10;
    EXPECT_FALSE(codec.decode(corrupted).has_value()) << "pos " << pos;
  }
  // Preamble corruption is invisible to the CRC (it is training pattern).
  auto pre = wire;
  pre[0] ^= 0xff;
  EXPECT_TRUE(codec.decode(pre).has_value());
}

TEST(CellCodec, WrongSizeRejected) {
  CellCodec codec;
  auto wire = codec.encode(sample_frame());
  wire.pop_back();
  EXPECT_FALSE(codec.decode(wire).has_value());
}

TEST(CellCodec, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(CellCodec::crc32(data), 0xCBF43926u);
}

TEST(CellCodec, AllCcSignalKindsSurvive) {
  CellCodec codec;
  for (const auto kind :
       {CcSignal::Kind::kNone, CcSignal::Kind::kRequest,
        CcSignal::Kind::kGrant, CcSignal::Kind::kRelease}) {
    CellFrame f;
    f.cc = {kind, 99};
    const auto decoded = codec.decode(codec.encode(f));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->cc.kind, kind);
  }
}

TEST(CellCodec, SmallCellsStillWork) {
  // The Fig. 11 sweep shrinks cells to 56 B at a 1 ns guardband; the frame
  // must still fit (with a thin payload).
  CellCodec codec(DataSize::bytes(56), 2);
  EXPECT_GT(codec.payload_capacity(), 0);
  CellFrame f;
  f.flow = 77;
  f.payload = {1, 2, 3};
  const auto decoded = codec.decode(codec.encode(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

}  // namespace
}  // namespace sirius::frame
