// Unit tests for sync/: clock model, leader-rotation sync, delay calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "sync/clock_model.hpp"
#include "sync/delay_calibration.hpp"
#include "sync/sync_protocol.hpp"

namespace sirius::sync {
namespace {

TEST(LocalClock, PhaseAccumulatesFrequencyError) {
  ClockConfig cfg;
  cfg.initial_freq_error_ppm = 20.0;
  cfg.freq_walk_ppm_per_sqrt_s = 0.0;  // deterministic
  Rng rng(1);
  LocalClock c(cfg, rng);
  const double f = c.freq_error();
  c.advance(Time::us(1), rng);
  // 1 ppm over 1 us = 1 ps of phase.
  EXPECT_NEAR(c.phase_offset_ps(), f * 1e6, 1e-9);
}

TEST(LocalClock, FrequencyCorrectionClamped) {
  ClockConfig cfg;
  Rng rng(2);
  LocalClock c(cfg, rng);
  const double before = c.freq_error();
  c.apply_frequency_correction(1.0, /*max_step=*/1e-6);
  EXPECT_NEAR(c.freq_error(), before - 1e-6, 1e-12);
}

TEST(LocalClock, InitialErrorWithinBounds) {
  ClockConfig cfg;
  cfg.initial_freq_error_ppm = 20.0;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    LocalClock c(cfg, rng);
    EXPECT_LE(std::fabs(c.freq_error()), 20e-6);
  }
}

TEST(SyncProtocol, ConvergesToPicoseconds) {
  // §6: +/-5 ps max deviation measured over 24 h. We simulate a shorter
  // window (seconds of simulated time = hundreds of thousands of epochs)
  // and require the same bound.
  SyncProtocolConfig cfg;
  cfg.nodes = 8;
  SyncProtocolSim sim(cfg, /*seed=*/1);
  const auto r = sim.run(/*epochs=*/200'000, /*warmup=*/5'000);
  EXPECT_GE(r.convergence_epochs, 0);
  EXPECT_LE(r.max_pairwise_offset_ps, 5.0);
  EXPECT_LE(r.mean_pairwise_offset_ps, 2.5);
}

TEST(SyncProtocol, UnsynchronisedClocksDivergeWildly) {
  // Control experiment: without corrections (gain 0) the 20 ppm oscillators
  // drift apart by nanoseconds within milliseconds.
  SyncProtocolConfig cfg;
  cfg.nodes = 4;
  cfg.pll_gain = 0.0;
  SyncProtocolSim sim(cfg, 1);
  const auto r = sim.run(1'000, 0);
  EXPECT_GT(r.max_pairwise_offset_ps, 1'000.0);
}

TEST(SyncProtocol, SurvivesLeaderFailure) {
  SyncProtocolConfig cfg;
  cfg.nodes = 8;
  SyncProtocolSim sim(cfg, 2);
  // Fail several nodes mid-run; the rotation must route around them and
  // accuracy must be preserved afterwards.
  sim.fail_node_at(0, 50'000);
  sim.fail_node_at(3, 60'000);
  const auto r = sim.run(150'000, 70'000);
  EXPECT_LE(r.max_pairwise_offset_ps, 5.0);
}

TEST(SyncProtocol, ByzantineFilterLimitsDamage) {
  // A huge max_freq_step would let one glitched measurement fling a clock;
  // the DLL clamp keeps corrections bounded. With the clamp set very low,
  // convergence still happens, just more slowly.
  SyncProtocolConfig cfg;
  cfg.nodes = 4;
  cfg.max_freq_step = 1e-8;
  SyncProtocolSim sim(cfg, 3);
  const auto r = sim.run(400'000, 300'000);
  EXPECT_LE(r.max_pairwise_offset_ps, 10.0);
}

TEST(DelayCalibration, PropagationConstant) {
  // Standard fiber: ~4.9 ns/m.
  EXPECT_EQ(DelayCalibrator::propagation_delay(1.0), Time::ps(4'900));
  EXPECT_EQ(DelayCalibrator::propagation_delay(500.0), Time::ps(2'450'000));
}

TEST(DelayCalibration, FarthestNodeStartsFirst) {
  DelayCalibrator cal;
  Rng rng(4);
  const std::vector<double> lengths = {10.0, 250.0, 500.0, 100.0};
  const auto r = cal.calibrate(lengths, rng);
  ASSERT_EQ(r.epoch_start_offset.size(), 4u);
  // Node 2 (500 m) is farthest: zero offset (starts earliest relative to
  // the common origin); node 0 (10 m) waits the longest, node 3 (100 m)
  // waits longer than node 1 (250 m).
  EXPECT_EQ(r.epoch_start_offset[2], Time::zero());
  EXPECT_GT(r.epoch_start_offset[0], r.epoch_start_offset[3]);
  EXPECT_GT(r.epoch_start_offset[3], r.epoch_start_offset[1]);
}

TEST(DelayCalibration, AlignmentErrorTiny) {
  // With 2 ps RMS measurement noise averaged over 16 round trips, the
  // residual misalignment at the AWGR stays within a few picoseconds —
  // far below the guardband's sync margin.
  DelayCalibrator cal;
  Rng rng(5);
  std::vector<double> lengths;
  for (int i = 0; i < 64; ++i) lengths.push_back(5.0 + 495.0 * i / 63.0);
  const auto r = cal.calibrate(lengths, rng);
  EXPECT_LE(r.worst_alignment_error_ps, 5.0);
}

TEST(DelayCalibration, EstimatesTrackTruth) {
  DelayCalibrator cal;
  Rng rng(6);
  const std::vector<double> lengths = {42.0, 314.0};
  const auto r = cal.calibrate(lengths, rng);
  EXPECT_NEAR(
      static_cast<double>(r.estimated_delay[0].picoseconds()),
      static_cast<double>(DelayCalibrator::propagation_delay(42.0).picoseconds()),
      10.0);
  EXPECT_NEAR(static_cast<double>(r.estimated_delay[1].picoseconds()),
              static_cast<double>(
                  DelayCalibrator::propagation_delay(314.0).picoseconds()),
              10.0);
}

}  // namespace
}  // namespace sirius::sync
