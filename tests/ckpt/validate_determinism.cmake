# CTest driver for the checkpoint determinism contract. Invoked as:
#
#   cmake -DCLI=<sirius_cli exe> -DOUT_DIR=<scratch dir>
#         -P validate_determinism.cmake
#
# Runs the CI fault scenario (rack 3 fail-stops at 60 us, link 2->5 fully
# grey 100-160 us) once straight with checkpoints on a 25 us cadence, then
# again restored from the snapshot at t=125 us — *inside* the grey window —
# and asserts the exported metrics series is byte-identical. Also asserts
# the defensive paths: a garbage --restore file and a checkpoint pattern in
# a nonexistent directory are both exit 2 with a clear message, and a
# healthy `bisect` reports a clean run with exit 0.
file(MAKE_DIRECTORY ${OUT_DIR})
set(NET --racks 8 --servers-per-rack 4 --uplinks 4 --flows 400 --load 0.5
        --fault 3@60 "--grey;2>5@1.0@100-160")

execute_process(
  COMMAND ${CLI} run ${NET}
          --metrics-out ${OUT_DIR}/straight.jsonl
          --checkpoint-every-us 25 --checkpoint-out ${OUT_DIR}/ck-{t}.ckpt
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "straight run failed (exit ${rc}):\n${out}${err}")
endif()
if(NOT EXISTS ${OUT_DIR}/ck-125.ckpt)
  message(FATAL_ERROR "straight run left no ck-125.ckpt snapshot")
endif()

execute_process(
  COMMAND ${CLI} run ${NET}
          --metrics-out ${OUT_DIR}/resumed.jsonl
          --restore ${OUT_DIR}/ck-125.ckpt
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed run failed (exit ${rc}):\n${out}${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${OUT_DIR}/straight.jsonl ${OUT_DIR}/resumed.jsonl
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "metrics series diverged: a run resumed from the mid-grey-fault "
    "snapshot must be bit-identical to the straight run")
endif()

# ---- defensive paths --------------------------------------------------------

file(WRITE ${OUT_DIR}/garbage.ckpt "this is not a checkpoint at all")
execute_process(
  COMMAND ${CLI} run ${NET} --restore ${OUT_DIR}/garbage.ckpt
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "garbage --restore exited ${rc}, expected 2")
endif()
if(NOT err MATCHES "restore")
  message(FATAL_ERROR "garbage --restore error message missing:\n${err}")
endif()

execute_process(
  COMMAND ${CLI} run ${NET}
          --checkpoint-every-us 25
          --checkpoint-out ${OUT_DIR}/no/such/dir/ck-{t}.ckpt
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "bad --checkpoint-out dir exited ${rc}, expected 2")
endif()

# ---- bisect on a healthy run ------------------------------------------------

execute_process(
  COMMAND ${CLI} bisect --racks 8 --servers-per-rack 4 --uplinks 4
          --flows 200 --load 0.5 --fault 3@60
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "healthy bisect exited ${rc}:\n${out}${err}")
endif()
if(NOT out MATCHES "no invariant violations")
  message(FATAL_ERROR "bisect did not report a clean run:\n${out}")
endif()
