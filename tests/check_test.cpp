// Tests for the invariant auditing subsystem (check/): each domain auditor
// must report the violations it exists to catch, and a healthy simulation
// must audit clean. Deliberate violations run under ScopedCollect so the
// failed invariants are tallied instead of aborting the test binary.
#include <gtest/gtest.h>

#include "check/auditors.hpp"
#include "common/invariant.hpp"
#include "node/node.hpp"
#include "node/node_audit.hpp"
#include "node/reorder_buffer.hpp"
#include "sched/schedule.hpp"
#include "sched/schedule_audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace sirius::check {
namespace {

#if !defined(SIRIUS_AUDIT)
#error "check_test requires an audited build (SIRIUS_AUDIT)"
#endif

TEST(InvariantContext, CollectModeRecordsInsteadOfAborting) {
  ScopedCollect collect;
  SIRIUS_INVARIANT(1 + 1 == 3, "arithmetic broke: %d", 2);
  EXPECT_EQ(collect.violations(), 1);
  const auto reports = InvariantContext::instance().reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].message.find("arithmetic broke: 2"), std::string::npos);
  EXPECT_NE(InvariantContext::instance().report().find("1 + 1 == 3"),
            std::string::npos);
}

TEST(InvariantContext, ScopedCollectRestoresAndClears) {
  {
    ScopedCollect collect;
    SIRIUS_INVARIANT(false, "%s", "scoped");
    EXPECT_EQ(collect.violations(), 1);
  }
  EXPECT_EQ(InvariantContext::instance().mode(), InvariantMode::kAbort);
  EXPECT_EQ(InvariantContext::instance().violations(), 0);
}

TEST(InvariantContext, PassingConditionRecordsNothing) {
  ScopedCollect collect;
  SIRIUS_INVARIANT(true, "%s", "never printed");
  EXPECT_EQ(collect.violations(), 0);
}

TEST(Auditors, DuplicateDestinationInSlotIsReported) {
  ScopedCollect collect;
  audit_destination_permutation({0, 1, 2, 1}, "test");
  EXPECT_EQ(collect.violations(), 1);
}

TEST(Auditors, PermutationWithIdleUplinksIsClean) {
  ScopedCollect collect;
  audit_destination_permutation({2, kInvalidNode, 0, 1, kInvalidNode}, "test");
  EXPECT_EQ(collect.violations(), 0);
}

TEST(Auditors, RealScheduleAuditsClean) {
  const sched::CyclicSchedule sched(16, 3);
  ScopedCollect collect;
  for (std::int64_t slot = 0; slot < 2 * sched.slots_per_round(); ++slot) {
    sched::audit_slot_permutation(sched, slot);
  }
  EXPECT_EQ(collect.violations(), 0);
}

TEST(Auditors, DegradedScheduleWithFailedMembersAuditsClean) {
  const sched::CyclicSchedule sched({0, 2, 3, 5, 6, 7, 9, 11}, 3);
  ScopedCollect collect;
  for (std::int64_t slot = 0; slot < sched.slots_per_round(); ++slot) {
    sched::audit_slot_permutation(sched, slot);
  }
  EXPECT_EQ(collect.violations(), 0);
}

TEST(Auditors, OverfullRelayQueueIsReported) {
  cc::RequestGrantConfig cc_cfg;
  cc_cfg.nodes = 8;
  cc_cfg.queue_limit = 2;
  node::Node n(0, cc_cfg, DataSize::bytes(512));
  // Stuff 5 relayed cells for destination 3 past the audited bound of 3.
  for (std::int32_t i = 0; i < 5; ++i) {
    node::Cell c;
    c.dst_node = 3;
    c.payload_bytes = 512;
    n.push_fq(3, c);
  }
  ScopedCollect collect;
  node::audit_queue_bound(n, cc_cfg.queue_limit, 3);
  EXPECT_EQ(collect.violations(), 1);
}

TEST(Auditors, QueueWithinBoundAuditsClean) {
  cc::RequestGrantConfig cc_cfg;
  cc_cfg.nodes = 8;
  cc_cfg.queue_limit = 4;
  node::Node n(0, cc_cfg, DataSize::bytes(512));
  node::Cell c;
  c.dst_node = 3;
  c.payload_bytes = 512;
  n.push_fq(3, c);
  ScopedCollect collect;
  node::audit_queue_bound(n, cc_cfg.queue_limit, 4);
  EXPECT_EQ(collect.violations(), 0);
}

TEST(Auditors, CellLedgerMismatchIsReported) {
  ScopedCollect collect;
  audit_cell_conservation(/*injected=*/10, /*delivered=*/5, /*queued=*/2,
                          /*in_flight=*/1, /*dropped=*/0);  // 10 != 8
  EXPECT_EQ(collect.violations(), 1);
  audit_cell_conservation(10, 5, 2, 3, 0);
  EXPECT_EQ(collect.violations(), 1);  // balanced ledger adds nothing
}

TEST(Auditors, OutOfOrderReleaseIsReported) {
  ScopedCollect collect;
  audit_in_order_release({0, 1, 3, 2, 4});
  EXPECT_EQ(collect.violations(), 1);
  audit_in_order_release({0, 1, 2, 3});
  EXPECT_EQ(collect.violations(), 1);
}

TEST(Auditors, ReorderBufferStateAuditsClean) {
  node::ReorderBuffer rb(4);
  rb.on_arrival(2, 100);  // buffered out of order
  rb.on_arrival(0, 100);  // releases the prefix {0}
  ScopedCollect collect;
  node::audit_reorder(rb);
  EXPECT_EQ(collect.violations(), 0);
}

TEST(Auditors, ReorderBufferRejectsOutOfRangeSeq) {
  node::ReorderBuffer rb(4);
  ScopedCollect collect;
  EXPECT_EQ(rb.on_arrival(7, 100), 0);   // beyond total_cells
  EXPECT_EQ(rb.on_arrival(-1, 100), 0);  // negative
  EXPECT_EQ(collect.violations(), 2);
  EXPECT_EQ(rb.buffered_cells(), 0);
}

TEST(Auditors, DivergedClocksAreReported) {
  ScopedCollect collect;
  audit_clock_offsets({0.0, 3.0, 501.0}, /*bound_ps=*/100.0);
  EXPECT_EQ(collect.violations(), 1);
  audit_clock_offsets({12.0, 14.5, 9.0}, /*bound_ps=*/100.0);
  EXPECT_EQ(collect.violations(), 1);  // tight clocks add nothing
}

TEST(Auditors, EventQueuePastSchedulingIsReportedAndClamped) {
  sim::EventQueue q;
  int fired = 0;
  q.schedule_at(Time::ns(10), [&] { ++fired; });
  q.run_until();
  ASSERT_EQ(q.now(), Time::ns(10));
  ScopedCollect collect;
  q.schedule_at(Time::ns(5), [&] { ++fired; });  // in the past
  EXPECT_EQ(collect.violations(), 1);
  q.run_until();
  EXPECT_EQ(fired, 2);                // still ran, clamped to now()
  EXPECT_EQ(q.now(), Time::ns(10));   // time never moved backwards
}

TEST(Auditors, RegistryRunsEveryRegisteredAuditor) {
  AuditorRegistry reg;
  int calls = 0;
  reg.register_auditor("a", [&] { ++calls; });
  reg.register_auditor("b", [&] { ++calls; });
  EXPECT_EQ(reg.size(), 2u);
  reg.run_all();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"a", "b"}));
}

TEST(Auditors, SiriusSimRunAuditsClean) {
  sim::SiriusSimConfig cfg;
  cfg.racks = 8;
  cfg.servers_per_rack = 2;
  cfg.base_uplinks = 4;
  cfg.seed = 5;
  cfg.audit_period_rounds = 1;  // audit every round for this test

  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = 0.5;
  g.flow_count = 60;
  g.mean_flow_size = DataSize::kilobytes(20);
  g.max_flow_size = DataSize::kilobytes(200);
  g.seed = 7;
  const auto w = workload::generate(g);

  sim::SiriusSim sim(cfg, w);
  EXPECT_GE(sim.auditors().size(), 3u);
  ScopedCollect collect;
  const auto r = sim.run();
  EXPECT_EQ(collect.violations(), 0);
  EXPECT_EQ(r.incomplete_flows, 0);
}

}  // namespace
}  // namespace sirius::check
