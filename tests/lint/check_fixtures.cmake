# Meta-gate over tests/lint_fixtures/: every violating fixture must still
# trip at least one rule, so fixtures cannot rot silently as the linter
# evolves (a rule rename or regex tweak that stops matching its own seed
# fails here even if someone forgets the per-fixture test). Each fixture
# is linted under each of a few plausible src/ classifications and must
# produce violations (exit 1) under at least one of them.
#
# Exempt by design: *clean* twins and suppressed.cpp.in (zero rules is
# their point), and xfile_core.hpp.in, whose violation only materialises
# next to xfile_state.hpp.in (covered by lint.fixture.xfile_pair).
#
# Also pins the exit-code contract: 0 clean / 1 violations / 2 usage or
# I/O error. The per-fixture harness asserts 0 and 1; 2 is asserted here.
#
# Usage: cmake -DLINT=<sirius_lint> -DFIXTURES_DIR=<dir> -P check_fixtures.cmake

if(NOT DEFINED LINT OR NOT DEFINED FIXTURES_DIR)
  message(FATAL_ERROR "check_fixtures.cmake needs -DLINT= and -DFIXTURES_DIR=")
endif()

execute_process(COMMAND ${LINT} --definitely-not-a-flag
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "unknown flag: expected exit 2, got ${rc}")
endif()
execute_process(COMMAND ${LINT} RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "no inputs: expected exit 2, got ${rc}")
endif()

file(GLOB fixtures RELATIVE ${FIXTURES_DIR} ${FIXTURES_DIR}/*.in)
list(LENGTH fixtures total)
if(total EQUAL 0)
  message(FATAL_ERROR "no fixtures found under ${FIXTURES_DIR}")
endif()

set(rotted "")
set(checked 0)
foreach(f IN LISTS fixtures)
  if(f MATCHES "clean" OR f MATCHES "^suppressed" OR
     f STREQUAL "xfile_core.hpp.in")
    continue()
  endif()
  math(EXPR checked "${checked} + 1")
  # Strip the .in staging suffix so headers classify as headers.
  string(REGEX REPLACE "\\.in$" "" base ${f})
  set(tripped FALSE)
  # The dead-public-symbol report is opt-in; its fixture only trips with
  # the flag on.
  set(extra "")
  if(f MATCHES "^dead_symbol")
    set(extra "--dead-symbols")
  endif()
  # src/sim covers the src-wide and shard-boundary rules; src/stats covers
  # the float-reduction rule (scoped to stats/ and esn/ only).
  foreach(dir IN ITEMS src/sim src/stats)
    execute_process(
      COMMAND ${LINT} --quiet ${extra} --classify-as ${dir}/${base}
              ${FIXTURES_DIR}/${f}
      RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
    if(rc EQUAL 1)
      set(tripped TRUE)
    elseif(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "lint failed (rc=${rc}) on ${f} classified as ${dir}/${base}")
    endif()
  endforeach()
  if(NOT tripped)
    list(APPEND rotted ${f})
  endif()
endforeach()

if(rotted)
  message(FATAL_ERROR
    "fixtures trigger zero rules under every classification: ${rotted}")
endif()
message(STATUS
  "lint.fixtures: ${checked}/${total} seed fixtures still trip a rule")
