# Pins the machine-readable contract of `sirius_lint --json`:
#
#   * the report object carries files_scanned, violation_count,
#     violations, and rule_counts;
#   * rule_counts is zero-filled over every rule `--list-rules`
#     advertises, so consumers can diff counts across runs without key
#     churn when a rule goes quiet;
#   * a violating run bumps exactly the tripped rule's count and the
#     process exits 1; a clean run exits 0; usage errors exit 2.
#
# Usage: cmake -DLINT=<sirius_lint> -DFIXTURES_DIR=<dir> -DOUT_DIR=<dir>
#        -P check_json_schema.cmake

cmake_policy(SET CMP0057 NEW)  # IN_LIST in script mode

if(NOT DEFINED LINT OR NOT DEFINED FIXTURES_DIR OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR
    "check_json_schema.cmake needs -DLINT= -DFIXTURES_DIR= -DOUT_DIR=")
endif()
file(MAKE_DIRECTORY ${OUT_DIR})

# ---- the advertised rule set ------------------------------------------------

execute_process(COMMAND ${LINT} --list-rules
  RESULT_VARIABLE rc OUTPUT_VARIABLE rules_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-rules failed (rc=${rc}): ${err}")
endif()
string(REPLACE "\n" ";" rule_lines "${rules_out}")
set(rule_ids "")
foreach(line IN LISTS rule_lines)
  if(line MATCHES "^([a-z0-9-]+):")
    list(APPEND rule_ids ${CMAKE_MATCH_1})
  endif()
endforeach()
list(LENGTH rule_ids n_rules)
if(n_rules LESS 20)
  message(FATAL_ERROR
    "--list-rules advertises only ${n_rules} rules; expected the full set")
endif()
# The call-graph and layering families must be advertised.
foreach(id IN ITEMS hot-path-alloc hot-path-virtual hot-path-throw
                    hot-path-copy layer-order include-cycle
                    duplicate-include dead-public-symbol)
  if(NOT id IN_LIST rule_ids)
    message(FATAL_ERROR "--list-rules does not advertise ${id}")
  endif()
endforeach()

# ---- clean run: exit 0, rule_counts zero-filled over every rule -------------

set(json ${OUT_DIR}/clean.json)
execute_process(
  COMMAND ${LINT} --treat-as-src --json ${json} ${FIXTURES_DIR}/clean.cpp.in
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean fixture: expected exit 0, got ${rc}")
endif()
file(READ ${json} report)
foreach(key IN ITEMS files_scanned violation_count violations rule_counts)
  string(JSON dummy ERROR_VARIABLE jerr GET "${report}" ${key})
  if(jerr)
    message(FATAL_ERROR "report is missing top-level key `${key}`: ${jerr}")
  endif()
endforeach()
string(JSON total GET "${report}" violation_count)
if(NOT total EQUAL 0)
  message(FATAL_ERROR "clean fixture: violation_count=${total}, expected 0")
endif()
foreach(id IN LISTS rule_ids)
  string(JSON count ERROR_VARIABLE jerr GET "${report}" rule_counts ${id})
  if(jerr)
    message(FATAL_ERROR "rule_counts is missing advertised rule `${id}`")
  endif()
  if(NOT count EQUAL 0)
    message(FATAL_ERROR "clean fixture: rule_counts.${id}=${count}")
  endif()
endforeach()

# ---- violating run: exit 1, exactly the tripped rule bumped -----------------

set(json ${OUT_DIR}/violating.json)
execute_process(
  COMMAND ${LINT} --classify-as src/sim/hot_alloc.cpp --json ${json}
          ${FIXTURES_DIR}/hot_alloc.cpp.in
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "violating fixture: expected exit 1, got ${rc}")
endif()
file(READ ${json} report)
string(JSON count GET "${report}" rule_counts hot-path-alloc)
if(NOT count EQUAL 1)
  message(FATAL_ERROR
    "violating fixture: rule_counts.hot-path-alloc=${count}, expected 1")
endif()
string(JSON total GET "${report}" violation_count)
if(NOT total EQUAL 1)
  message(FATAL_ERROR
    "violating fixture: violation_count=${total}, expected 1")
endif()
foreach(id IN LISTS rule_ids)
  if(id STREQUAL "hot-path-alloc")
    continue()
  endif()
  string(JSON count GET "${report}" rule_counts ${id})
  if(NOT count EQUAL 0)
    message(FATAL_ERROR
      "violating fixture: unexpected rule_counts.${id}=${count}")
  endif()
endforeach()

# ---- usage errors: exit 2 ---------------------------------------------------

execute_process(COMMAND ${LINT} --no-such-flag
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "unknown flag: expected exit 2, got ${rc}")
endif()
execute_process(COMMAND ${LINT} --json
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--json without a path: expected exit 2, got ${rc}")
endif()

message(STATUS
  "lint.json_schema: ${n_rules} rules, zero-filled counts, exits 0/1/2 OK")
