# CTest driver for one sirius-lint fixture. Invoked as:
#
#   cmake -DLINT=<sirius_lint exe> -DFIXTURE=<file> -DEXPECT_RULE=<id|none>
#         [-DEXPECT_COUNT=<n>] [-DFLAGS=<;-list of extra flags>]
#         [-DJSON=<report path>] -P run_lint_fixture.cmake
#
# Asserts, via the machine-readable JSON report, that the linter found
# exactly EXPECT_COUNT violations (default 1) and that every one of them is
# of rule EXPECT_RULE — i.e. a fixture seeded with one violation trips its
# rule once and trips nothing else. EXPECT_RULE=none asserts a clean pass.
if(NOT DEFINED EXPECT_COUNT)
  set(EXPECT_COUNT 1)
endif()
if(EXPECT_RULE STREQUAL "none")
  set(EXPECT_COUNT 0)
endif()
if(NOT DEFINED JSON)
  set(JSON "${FIXTURE}.report.json")
endif()

execute_process(
  COMMAND ${LINT} ${FLAGS} --json ${JSON} ${FIXTURE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

file(READ ${JSON} report)
string(JSON total GET "${report}" violation_count)

if(EXPECT_COUNT EQUAL 0)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "expected a clean pass, got exit ${rc}:\n${out}${err}")
  endif()
else()
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "expected exit 1 (violations found), got ${rc}:\n${out}${err}")
  endif()
endif()

if(NOT total EQUAL EXPECT_COUNT)
  message(FATAL_ERROR
    "expected ${EXPECT_COUNT} violation(s), report says ${total}:\n${out}")
endif()

# Every reported violation must carry the expected rule id.
math(EXPR last "${total} - 1")
if(total GREATER 0)
  foreach(i RANGE ${last})
    string(JSON rule GET "${report}" violations ${i} rule)
    if(NOT rule STREQUAL EXPECT_RULE)
      message(FATAL_ERROR
        "violation ${i} has rule '${rule}', expected '${EXPECT_RULE}':\n${out}")
    endif()
  endforeach()
endif()
