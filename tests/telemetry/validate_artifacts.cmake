# CTest driver for the telemetry smoke run. Invoked as:
#
#   cmake -DCLI=<sirius_cli exe> -DOUT_DIR=<scratch dir>
#         -P validate_artifacts.cmake
#
# Runs one small instrumented simulation through sirius_cli, then
# JSON-validates every artifact with CMake's string(JSON) parser:
#   * the manifest is schema "sirius.run.v1" with results + artifacts,
#   * the trace is Chrome trace-event JSON with a non-empty event array,
#   * the metrics JSONL rows parse and carry the core counters.
# Finally asserts the CLI rejects an unknown option with exit code 2.
file(MAKE_DIRECTORY ${OUT_DIR})
set(METRICS ${OUT_DIR}/metrics.jsonl)
set(TRACE ${OUT_DIR}/trace.json)
set(MANIFEST ${OUT_DIR}/manifest.json)

execute_process(
  COMMAND ${CLI} run --racks 8 --servers-per-rack 2 --flows 200 --load 0.4
          --metrics-out ${METRICS} --metrics-every-us 20
          --trace-events ${TRACE} --manifest ${MANIFEST}
          --flight-recorder 64 --profile
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "instrumented run failed (exit ${rc}):\n${out}${err}")
endif()

# ---- manifest ---------------------------------------------------------------
file(READ ${MANIFEST} manifest)
string(JSON schema GET "${manifest}" schema)
if(NOT schema STREQUAL "sirius.run.v1")
  message(FATAL_ERROR "manifest schema is '${schema}', expected sirius.run.v1")
endif()
string(JSON goodput GET "${manifest}" results goodput)
if(goodput LESS_EQUAL 0)
  message(FATAL_ERROR "manifest results.goodput = ${goodput}, expected > 0")
endif()
string(JSON delivered GET "${manifest}" metrics sim.cells_delivered)
if(delivered LESS_EQUAL 0)
  message(FATAL_ERROR "manifest metrics.sim.cells_delivered = ${delivered}")
endif()
string(JSON n_artifacts LENGTH "${manifest}" artifacts written)
if(n_artifacts LESS 2)
  message(FATAL_ERROR "manifest lists ${n_artifacts} artifacts, expected 2")
endif()
string(JSON ok0 GET "${manifest}" artifacts written 0 ok)
if(NOT ok0 STREQUAL "ON")
  message(FATAL_ERROR "manifest artifact 0 not ok: ${ok0}")
endif()

# ---- trace ------------------------------------------------------------------
file(READ ${TRACE} trace)
string(JSON unit GET "${trace}" displayTimeUnit)
if(NOT unit STREQUAL "ns")
  message(FATAL_ERROR "trace displayTimeUnit is '${unit}', expected ns")
endif()
string(JSON n_events LENGTH "${trace}" traceEvents)
if(n_events LESS 10)
  message(FATAL_ERROR "trace has only ${n_events} events")
endif()

# ---- metrics time series ----------------------------------------------------
file(STRINGS ${METRICS} rows)
list(LENGTH rows n_rows)
if(n_rows LESS 2)
  message(FATAL_ERROR "metrics series has only ${n_rows} rows")
endif()
list(GET rows 0 first_row)
string(JSON t0 GET "${first_row}" t_us)
string(JSON injected0 GET "${first_row}" sim.cells_injected)
list(GET rows -1 last_row)
string(JSON injected_last GET "${last_row}" sim.cells_injected)
if(injected_last LESS_EQUAL 0)
  message(FATAL_ERROR
    "final sim.cells_injected = ${injected_last}, expected > 0")
endif()

# ---- unknown options are hard errors ----------------------------------------
execute_process(
  COMMAND ${CLI} run --definitely-not-a-flag 3
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
    "unknown option exited ${rc}, expected 2:\n${out}${err}")
endif()
if(NOT err MATCHES "unknown option --definitely-not-a-flag")
  message(FATAL_ERROR "unknown-option error message missing:\n${err}")
endif()
