// Unit and end-to-end tests for src/telemetry/: metrics registry and
// sampler, strip charts, cell tracer, flight recorder (including the
// invariant-failure dump), profiler, manifest, and the determinism
// contract — a fully instrumented run must be bit-identical to an
// uninstrumented one.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/invariant.hpp"
#include "core/experiment.hpp"
#include "sim/sirius_sim.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/series.hpp"

namespace sirius::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(MetricsRegistry, GetOrCreateReturnsStableIdentity) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(4);
  EXPECT_EQ(reg.find_counter("x.count")->value(), 5);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  Gauge& g = reg.gauge("x.depth");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(reg.find_gauge("x.depth")->value(), 2.5);
}

TEST(MetricsRegistry, SeriesOrderIsCountersThenGauges) {
  MetricsRegistry reg;
  reg.gauge("g.one").set(7.0);
  reg.counter("c.one").inc(3);
  reg.counter("c.two").inc(9);
  const auto names = reg.series_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "c.one");
  EXPECT_EQ(names[1], "c.two");
  EXPECT_EQ(names[2], "g.one");
  const auto values = reg.series_values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 3.0);
  EXPECT_DOUBLE_EQ(values[1], 9.0);
  EXPECT_DOUBLE_EQ(values[2], 7.0);
}

TEST(MetricsRegistry, HistogramSummaryJson) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", 0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i));
  const std::string json = reg.histograms_json();
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(TimeSeriesSampler, CadenceGatesSamples) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  TimeSeriesSampler s;
  s.configure(&reg, Time::us(10));
  s.maybe_sample(Time::zero());  // taken: first sample is always due
  c.inc();
  s.maybe_sample(Time::us(3));  // skipped: next due at 10 us
  c.inc();
  s.maybe_sample(Time::us(12));  // taken
  s.maybe_sample(Time::us(15));  // skipped: next due at 22 us
  s.maybe_sample(Time::us(25));  // taken
  ASSERT_EQ(s.rows().size(), 3u);
  EXPECT_EQ(s.rows()[0].at, Time::zero());
  EXPECT_EQ(s.rows()[1].at, Time::us(12));
  EXPECT_EQ(s.rows()[2].at, Time::us(25));
  EXPECT_DOUBLE_EQ(s.rows()[0].values[0], 0.0);
  EXPECT_DOUBLE_EQ(s.rows()[1].values[0], 2.0);
}

TEST(TimeSeriesSampler, DisabledSamplerIsInert) {
  TimeSeriesSampler s;
  EXPECT_FALSE(s.enabled());
  s.maybe_sample(Time::us(5));
  s.sample(Time::us(5));
  EXPECT_TRUE(s.rows().empty());
}

TEST(TimeSeriesSampler, WritesJsonlAndCsv) {
  MetricsRegistry reg;
  reg.counter("cells").inc(42);
  reg.gauge("depth").set(1.5);
  TimeSeriesSampler s;
  s.configure(&reg, Time::us(1));
  s.sample(Time::us(2));

  const std::string jsonl = "telemetry_test_rows.jsonl";
  const std::string csv = "telemetry_test_rows.csv";
  ASSERT_TRUE(s.write_jsonl(jsonl));
  ASSERT_TRUE(s.write_csv(csv));
  EXPECT_NE(slurp(jsonl).find("\"cells\": 42"), std::string::npos);
  const std::string c = slurp(csv);
  EXPECT_NE(c.find("t_us,cells,depth"), std::string::npos);
  EXPECT_NE(c.find("2,42,1.5"), std::string::npos);
  std::remove(jsonl.c_str());
  std::remove(csv.c_str());
}

TEST(BinnedSeries, AccumulatesIntoFixedBins) {
  BinnedSeries s(Time::us(2));
  s.add(Time::us(1), 3.0);   // bin 0
  s.add(Time::us(3), 4.0);   // bin 1
  s.add(Time::us(3), 1.0);   // bin 1
  s.add(Time::us(9), 2.0);   // bin 4
  ASSERT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(s.bins()[0], 3.0);
  EXPECT_DOUBLE_EQ(s.bins()[1], 5.0);
  EXPECT_DOUBLE_EQ(s.bins()[4], 2.0);
  EXPECT_EQ(s.bin_start(4), Time::us(8));
}

TEST(StripChart, GlyphsScaleAndMark) {
  // baseline 1.0: full, 0.8 -> '+', 0.6 -> '-', 0.3 -> '.', 0.1 -> ' '.
  const std::vector<double> bins = {1.0, 0.8, 0.6, 0.3, 0.1, 1.0};
  const StripChart c = render_strip_chart(bins, 1.0, 2);
  EXPECT_EQ(c.cells, "#+X. #");
  EXPECT_EQ(c.stride, 1u);
  EXPECT_EQ(c.shown, 6u);
}

TEST(StripChart, TrimsDrainTail) {
  // Trailing bins below half baseline are the drain tail, not a dip.
  const std::vector<double> bins = {1.0, 1.0, 0.2, 0.1};
  const StripChart c = render_strip_chart(bins, 1.0, -1);
  EXPECT_EQ(c.cells, "##");
  EXPECT_EQ(c.shown, 2u);
}

TEST(CellTracer, SamplingKeepsEveryNthFlow) {
  CellTracer t;
  t.configure(/*flow_sample=*/4, /*max_events=*/100);
  EXPECT_TRUE(t.wants(FlowId{0}));
  EXPECT_FALSE(t.wants(FlowId{1}));
  EXPECT_TRUE(t.wants(FlowId{8}));
  // Protocol events (no flow) are dropped under sampling...
  EXPECT_FALSE(t.wants(FlowId{-1}));
  // ...but kept when every flow is traced.
  CellTracer all;
  all.configure(1, 100);
  EXPECT_TRUE(all.wants(FlowId{-1}));
}

TEST(CellTracer, EventCapCountsOverflow) {
  CellTracer t;
  t.configure(1, /*max_events=*/3);
  CellEventRecord r;
  r.node = 0;
  for (int i = 0; i < 5; ++i) {
    r.seq = i;
    t.record(r);
  }
  EXPECT_EQ(t.recorded(), 3);
  EXPECT_EQ(t.dropped(), 2);
}

TEST(CellTracer, WritesChromeTraceJson) {
  CellTracer t;
  t.configure(1, 100);
  CellEventRecord r;
  r.at = Time::us(7);
  r.node = 2;
  r.peer = 3;
  r.dst = 5;
  r.flow = FlowId{11};
  r.seq = 0;
  r.event = CellEvent::kFirstHopTx;
  t.record(r);
  const std::string path = "telemetry_test_trace.json";
  ASSERT_TRUE(t.write_chrome_json(path, 8));
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"process_name\""), std::string::npos);
  EXPECT_NE(body.find("\"node 2\""), std::string::npos);
  EXPECT_NE(body.find("\"first_hop_tx\""), std::string::npos);
  EXPECT_NE(body.find("\"flow\": 11"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RingKeepsLastNOldestFirst) {
  FlightRecorder fr;
  fr.configure(/*nodes=*/2, /*depth=*/4);
  CellEventRecord r;
  r.node = 0;
  r.event = CellEvent::kDeliver;
  for (int i = 0; i < 6; ++i) {
    r.seq = i;
    fr.record(r);
  }
  const std::string d = fr.dump();
  // 6 events through a depth-4 ring: seq 2..5 retained, 0 and 1 evicted.
  EXPECT_EQ(d.find("seq=0 "), std::string::npos);
  EXPECT_EQ(d.find("seq=1 "), std::string::npos);
  EXPECT_NE(d.find("seq=2 "), std::string::npos);
  EXPECT_NE(d.find("seq=5 "), std::string::npos);
  EXPECT_LT(d.find("seq=2 "), d.find("seq=5 "));
  EXPECT_NE(d.find("6 events total"), std::string::npos);
}

TEST(FlightRecorder, InvariantFailureTriggersDump) {
  TelemetryConfig tc;
  tc.flight_recorder_depth = 8;
  Hub hub(tc);
  hub.attach_nodes(4);

  CellEventRecord r;
  r.at = Time::us(3);
  r.node = 1;
  r.flow = FlowId{42};
  r.seq = 7;
  r.event = CellEvent::kRelayEnqueue;
  hub.on_cell_event(r);

  check::ScopedCollect collect;
  SIRIUS_INVARIANT(1 == 2, "telemetry test violation %d", 42);
  EXPECT_EQ(collect.violations(), 1);
  EXPECT_EQ(hub.recorder().dumps(), 1);
  const std::string& d = hub.recorder().last_dump();
  EXPECT_NE(d.find("relay_enqueue"), std::string::npos);
  EXPECT_NE(d.find("flow=42"), std::string::npos);
}

TEST(Profiler, AccumulatesWhenEnabled) {
  Profiler p;
  EXPECT_TRUE(p.table().empty());
  p.enable(true);
  p.add(ProfScope::kTransmit, 1'000);
  p.add(ProfScope::kTransmit, 3'000);
  EXPECT_EQ(p.stats(ProfScope::kTransmit).calls, 2u);
  EXPECT_EQ(p.stats(ProfScope::kTransmit).total_nanos, 4'000u);
  EXPECT_EQ(p.stats(ProfScope::kTransmit).max_nanos, 3'000u);
  EXPECT_NE(p.table().find("transmit"), std::string::npos);
}

TEST(Profiler, ScopedTimerSkipsClockWhenDisabled) {
  Profiler p;  // disabled
  {
    ScopedTimer t(p, ProfScope::kAudit);
  }
  EXPECT_EQ(p.stats(ProfScope::kAudit).calls, 0u);
  p.enable(true);
  {
    ScopedTimer t(p, ProfScope::kAudit);
  }
  EXPECT_EQ(p.stats(ProfScope::kAudit).calls, 1u);
}

TEST(Manifest, SectionsKeepInsertionOrder) {
  Manifest m;
  m.section("run").add("system", "sirius");
  m.section("config").add_int("racks", 8);
  m.section("run").add_num("load", 0.5);  // appends to the existing section
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"schema\": \"sirius.run.v1\""), std::string::npos);
  EXPECT_LT(json.find("\"run\""), json.find("\"config\""));
  EXPECT_NE(json.find("\"load\": 0.5"), std::string::npos);

  const std::string path = "telemetry_test_manifest.json";
  ASSERT_TRUE(m.write(path));
  EXPECT_EQ(slurp(path), json);
  std::remove(path.c_str());
}

TEST(Manifest, BuildInfoReflectsCompileFlags) {
  const std::string b = Manifest::build_info_json();
  EXPECT_NE(b.find("\"compiler\""), std::string::npos);
#if defined(SIRIUS_TELEMETRY)
  EXPECT_NE(b.find("\"sirius_telemetry\": true"), std::string::npos);
#else
  EXPECT_NE(b.find("\"sirius_telemetry\": false"), std::string::npos);
#endif
}

TEST(Hub, DisabledHubHasNoSinks) {
  Hub hub;
  EXPECT_FALSE(hub.tracing());
  EXPECT_FALSE(hub.metrics_enabled());
  EXPECT_TRUE(hub.finish().empty());
  // Counters still count — producers bind unconditionally.
  hub.metrics().counter("c").inc(3);
  EXPECT_EQ(hub.metrics().find_counter("c")->value(), 3);
}

// The acceptance contract: an instrumented run (metrics + trace + flight
// recorder + profiler all live) must produce bit-identical simulation
// results to an uninstrumented one, including through a mid-run fault.
TEST(Determinism, TelemetryDoesNotPerturbSimulation) {
  core::ExperimentConfig cfg;
  cfg.racks = 8;
  cfg.servers_per_rack = 2;
  cfg.flows = 300;
  const workload::Workload w = core::make_workload(cfg, 0.5);

  const auto configure = [&] {
    sim::SiriusSimConfig s =
        core::make_sirius_config(cfg, core::SiriusVariant{});
    s.faults.fail_rack(1, Time::us(20), Time::us(120));
    s.record_recovery_curve = true;
    return s;
  };

  // Run A: no telemetry attached (the sim owns a disabled hub).
  sim::SiriusSimConfig sa = configure();
  sim::SiriusSim sim_a(sa, w);
  const sim::SiriusSimResult a = sim_a.run();

  // Run B: everything on, writing real artifacts.
  TelemetryConfig tc;
  tc.metrics_out = "telemetry_test_det.jsonl";
  tc.metrics_every = Time::us(5);
  tc.trace_out = "telemetry_test_det_trace.json";
  tc.flight_recorder_depth = 32;
  tc.profile = true;
  Hub hub(tc);
  sim::SiriusSimConfig sb = configure();
  sb.telemetry = &hub;
  sim::SiriusSim sim_b(sb, w);
  const sim::SiriusSimResult b = sim_b.run();
  for (const Hub::Artifact& art : hub.finish()) {
    EXPECT_TRUE(art.ok) << art.kind << " " << art.path;
    std::remove(art.path.c_str());
  }

  EXPECT_EQ(a.cells_delivered, b.cells_delivered);
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
  EXPECT_EQ(a.incomplete_flows, b.incomplete_flows);
  EXPECT_EQ(a.rejected_flows, b.rejected_flows);
  EXPECT_EQ(a.sim_end, b.sim_end);
  EXPECT_EQ(a.goodput_normalized, b.goodput_normalized);  // bit-exact
  EXPECT_EQ(a.fct.short_fct_p99_ms, b.fct.short_fct_p99_ms);
  EXPECT_EQ(a.worst_node_queue_peak_kb, b.worst_node_queue_peak_kb);
  EXPECT_EQ(a.worst_reorder_peak_kb, b.worst_reorder_peak_kb);
  ASSERT_EQ(a.per_flow_completion.size(), b.per_flow_completion.size());
  for (std::size_t i = 0; i < a.per_flow_completion.size(); ++i) {
    EXPECT_EQ(a.per_flow_completion[i], b.per_flow_completion[i]) << i;
  }
  EXPECT_EQ(a.failover.cells_dropped, b.failover.cells_dropped);
  EXPECT_EQ(a.failover.cells_retransmitted, b.failover.cells_retransmitted);
  EXPECT_EQ(a.failover.schedule_swaps, b.failover.schedule_swaps);
  EXPECT_EQ(a.failover.detection_rounds, b.failover.detection_rounds);
  ASSERT_EQ(a.recovery_curve.size(), b.recovery_curve.size());
  for (std::size_t i = 0; i < a.recovery_curve.size(); ++i) {
    EXPECT_EQ(a.recovery_curve[i].goodput_normalized,
              b.recovery_curve[i].goodput_normalized)
        << i;
  }

  // The instrumented run actually recorded things (the comparison above
  // would be vacuous against an inert hub). Counters are always live;
  // the event macros only exist under SIRIUS_TELEMETRY.
  EXPECT_GT(hub.metrics().find_counter("sim.cells_delivered")->value(), 0);
#if defined(SIRIUS_TELEMETRY)
  EXPECT_GT(hub.tracer().recorded(), 0);
  EXPECT_GT(hub.profiler().stats(ProfScope::kSlotLoop).calls, 0u);
#endif
}

}  // namespace
}  // namespace sirius::telemetry
