// Unit tests for optical/: AWGR, power, link budget, lasers, SOAs, BER.
#include <gtest/gtest.h>

#include <algorithm>

#include "optical/awgr.hpp"
#include "optical/ber_model.hpp"
#include "optical/crosstalk.hpp"
#include "optical/disaggregated_laser.hpp"
#include "optical/dsdbr_laser.hpp"
#include "optical/link_budget.hpp"
#include "optical/power.hpp"
#include "optical/soa_gate.hpp"

namespace sirius::optical {
namespace {

TEST(Awgr, CyclicRouting) {
  Awgr g(4);
  // Fig. 3a: wavelength j from input i exits output (i + j) mod P.
  EXPECT_EQ(g.route(0, 0), 0);
  EXPECT_EQ(g.route(0, 3), 3);
  EXPECT_EQ(g.route(2, 3), 1);
  EXPECT_EQ(g.route(3, 1), 0);
}

TEST(Awgr, WavelengthForInvertsRoute) {
  Awgr g(16);
  for (std::int32_t in = 0; in < 16; ++in) {
    for (std::int32_t out = 0; out < 16; ++out) {
      EXPECT_EQ(g.route(in, g.wavelength_for(in, out)), out);
    }
  }
}

TEST(Awgr, AllToAllViaDistinctWavelengths) {
  // From any input, the P wavelengths reach all P outputs exactly once.
  Awgr g(8);
  for (std::int32_t in = 0; in < 8; ++in) {
    std::vector<bool> hit(8, false);
    for (WavelengthId w = 0; w < 8; ++w) {
      const std::int32_t out = g.route(in, w);
      EXPECT_FALSE(hit[static_cast<std::size_t>(out)]);
      hit[static_cast<std::size_t>(out)] = true;
    }
  }
}

TEST(Awgr, SameWavelengthIsPermutation) {
  // The property the Sirius schedule exploits: if every input carries the
  // same wavelength, no two inputs collide on an output.
  Awgr g(100);
  for (WavelengthId w : {0, 1, 42, 99}) {
    std::vector<bool> hit(100, false);
    for (std::int32_t in = 0; in < 100; ++in) {
      const std::int32_t out = g.route(in, w);
      EXPECT_FALSE(hit[static_cast<std::size_t>(out)]);
      hit[static_cast<std::size_t>(out)] = true;
    }
  }
}

TEST(OpticalPower, DbmMwRoundTrip) {
  EXPECT_NEAR(OpticalPower::dbm(0.0).in_mw(), 1.0, 1e-12);
  EXPECT_NEAR(OpticalPower::dbm(16.0).in_mw(), 39.8, 0.1);  // §4.5: ~40 mW
  EXPECT_NEAR(OpticalPower::dbm(-8.0).in_mw(), 0.158, 0.001);  // 0.16 mW
  EXPECT_NEAR(OpticalPower::milliwatts(5.0).in_dbm(), 7.0, 0.05);  // 5 mW
}

TEST(OpticalPower, AttenuationAndSplit) {
  const auto p = OpticalPower::dbm(10.0);
  EXPECT_DOUBLE_EQ(p.attenuated(3.0).in_dbm(), 7.0);
  EXPECT_DOUBLE_EQ(p.amplified(5.0).in_dbm(), 15.0);
  EXPECT_NEAR(p.split(2).in_dbm(), 10.0 - 3.0103, 1e-3);
  EXPECT_NEAR(p.split(8).in_dbm(), 10.0 - 9.031, 1e-3);
}

TEST(WavelengthGrid, CBandAround1550) {
  WavelengthGrid grid(112, 50.0);
  // All channels within the optical C-band (~1528-1568 nm).
  for (WavelengthId w = 0; w < 112; ++w) {
    EXPECT_GT(grid.wavelength_nm(w), 1520.0);
    EXPECT_LT(grid.wavelength_nm(w), 1580.0);
  }
  // Center channel near 1552.5 nm.
  EXPECT_NEAR(grid.wavelength_nm(56), 1552.5, 1.0);
  EXPECT_EQ(grid.span(3, 100), 97);
}

TEST(LinkBudget, PaperNumbers) {
  // §4.5: 6 dB grating + 7 dB other + 2 dB margin over -8 dBm sensitivity
  // => 7 dBm launch.
  LinkBudget lb;
  EXPECT_DOUBLE_EQ(lb.total_loss_db(), 15.0);
  EXPECT_DOUBLE_EQ(lb.required_launch_power().in_dbm(), 7.0);
  EXPECT_TRUE(lb.closes(OpticalPower::dbm(7.0)));
  EXPECT_FALSE(lb.closes(OpticalPower::dbm(6.5)));
}

TEST(LinkBudget, SharingDegreeEight) {
  // §4.5: a 16 dBm laser can be shared across 8 transceivers.
  LinkBudget lb;
  EXPECT_EQ(lb.max_sharing_degree(OpticalPower::dbm(16.0)), 7);
  // 16 dBm / 8 = 16 - 9.03 = 6.97 dBm: marginally below the 7 dBm launch
  // requirement, so the integer answer is 7 with the exact dB arithmetic;
  // with 0.1 dB more laser power the paper's 8 is met.
  EXPECT_EQ(lb.max_sharing_degree(OpticalPower::dbm(16.1)), 8);
  EXPECT_EQ(lb.max_sharing_degree(OpticalPower::dbm(0.0)), 0);
}

TEST(LinkBudget, LasersNeededForRack) {
  // §4.5: 256 uplinks at sharing 8 => 32 laser chips.
  LinkBudget lb;
  EXPECT_EQ(lb.lasers_needed(256, OpticalPower::dbm(16.1)), 32);
  EXPECT_EQ(lb.lasers_needed(1, OpticalPower::dbm(16.1)), 1);
  EXPECT_EQ(lb.lasers_needed(8, OpticalPower::dbm(-20.0)), -1);
}

TEST(DsdbrLaser, NoTuningForSameWavelength) {
  DsdbrLaser l;
  EXPECT_EQ(l.tuning_latency(5, 5), Time::zero());
}

TEST(DsdbrLaser, DampenedStatisticsMatchPaper) {
  // §3.2: median 14 ns, worst-case 92 ns across all 12,432 pairs.
  DsdbrLaser l;
  const double median_ns = l.median_latency().to_ns();
  const double worst_ns = l.worst_case_latency().to_ns();
  EXPECT_NEAR(median_ns, 14.0, 2.0);
  EXPECT_NEAR(worst_ns, 92.0, 0.5);
  EXPECT_LE(worst_ns, 92.0 + 1e-9);
}

TEST(DsdbrLaser, LatencyGrowsWithSpan) {
  DsdbrLaser l;
  // Averaged over pairs, larger spans settle more slowly.
  double small = 0.0, large = 0.0;
  for (WavelengthId i = 0; i < 20; ++i) {
    small += l.tuning_latency(i, i + 5).to_ns();
    large += l.tuning_latency(i, i + 90).to_ns();
  }
  EXPECT_LT(small, large * 0.3);
}

TEST(DsdbrLaser, OffTheShelfIsMilliseconds) {
  DsdbrConfig cfg;
  cfg.drive = DriveMode::kOffTheShelf;
  DsdbrLaser l(cfg);
  EXPECT_GE(l.worst_case_latency(), Time::ms(9));
}

TEST(DsdbrLaser, TuneToTracksState) {
  DsdbrLaser l;
  EXPECT_EQ(l.current_wavelength(), 0);
  const Time t = l.tune_to(60);
  EXPECT_GT(t, Time::zero());
  EXPECT_EQ(l.current_wavelength(), 60);
  EXPECT_EQ(l.tune_to(60), Time::zero());
}

TEST(DsdbrLaser, RingingTraceDecaysToZero) {
  DsdbrLaser l;
  const auto trace = l.ringing_trace(10, 60, Time::ns(1));
  ASSERT_FALSE(trace.empty());
  EXPECT_NEAR(trace.front().wavelength_error, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(trace.back().wavelength_error, 0.0);
  // The envelope must decay.
  EXPECT_LT(std::abs(trace[trace.size() / 2].wavelength_error),
            std::abs(trace.front().wavelength_error));
}

TEST(SoaGate, TransitionsClampedToWorstCase) {
  // Fig. 8a: worst measured rise 527 ps, fall 912 ps.
  SoaConfig cfg;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    SoaGate g(cfg, rng);
    EXPECT_LE(g.rise_time(), cfg.rise_worst);
    EXPECT_LE(g.fall_time(), cfg.fall_worst);
    EXPECT_GT(g.rise_time(), Time::zero());
  }
}

TEST(SoaGate, PowerOnlyWhenOn) {
  SoaConfig cfg;
  Rng rng(2);
  SoaGate g(cfg, rng);
  EXPECT_DOUBLE_EQ(g.power_mw(), 0.0);
  g.turn_on();
  EXPECT_DOUBLE_EQ(g.power_mw(), cfg.power_mw);
  g.turn_off();
  EXPECT_DOUBLE_EQ(g.power_mw(), 0.0);
}

TEST(SoaArray, SelectSwitchesExactlyOne) {
  Rng rng(3);
  SoaArray a(19, SoaConfig{}, rng);  // the fabricated chip has 19 SOAs
  a.select(4);
  EXPECT_EQ(a.selected(), 4);
  EXPECT_TRUE(a.gate(4).is_on());
  const Time t = a.select(11);
  EXPECT_GT(t, Time::zero());
  EXPECT_FALSE(a.gate(4).is_on());
  EXPECT_TRUE(a.gate(11).is_on());
  EXPECT_EQ(a.select(11), Time::zero());
}

TEST(SoaArray, WorstCaseSubNanosecond) {
  Rng rng(4);
  SoaArray a(19, SoaConfig{}, rng);
  EXPECT_LE(a.worst_case_switch(), Time::ps(912));
  EXPECT_GT(a.worst_case_switch(), Time::ps(100));
}

TEST(FixedBankLaser, TuningIsSpanIndependent) {
  Rng rng(5);
  FixedBankLaser l(112, SoaConfig{}, rng);
  l.tune_to(0);
  const Time near = l.tune_to(1);
  l.tune_to(0);
  const Time far = l.tune_to(111);
  // Both transitions are SOA switches: same order of magnitude, both < 912 ps
  // (Fig. 8b: adjacent vs distant wavelengths switch equally fast).
  EXPECT_LE(near, Time::ps(912));
  EXPECT_LE(far, Time::ps(912));
  EXPECT_LE(l.worst_case_latency(), Time::ps(912));
}

TEST(FixedBankLaser, PowerScalesWithBankSize) {
  Rng rng(6);
  FixedBankLaser small(10, SoaConfig{}, rng, 1.0);
  FixedBankLaser large(100, SoaConfig{}, rng, 1.0);
  EXPECT_GT(large.power_watts(), small.power_watts() * 5);
}

TEST(TunableBankLaser, PipelinedTransitionHidesSettle) {
  Rng rng(7);
  TunableBankLaser l(DsdbrConfig{}, 3, SoaConfig{}, rng);
  l.tune_to(10);
  // Announce the next wavelength: the idle laser pre-tunes off-path.
  l.announce_next(100);
  const Time t = l.tune_to(100);
  EXPECT_TRUE(l.last_tune_was_pipelined());
  EXPECT_LE(t, Time::ps(912));  // just the SOA selector switch
}

TEST(TunableBankLaser, UnannouncedTransitionPaysDsdbrSettle) {
  Rng rng(8);
  TunableBankLaser l(DsdbrConfig{}, 2, SoaConfig{}, rng);
  l.tune_to(0);
  const Time t = l.tune_to(110);  // no announce_next
  EXPECT_FALSE(l.last_tune_was_pipelined());
  EXPECT_GT(t, Time::ns(10));  // full-span DSDBR settle dominates
}

TEST(CombLaser, FastButPowerHungry) {
  Rng rng(9);
  CombLaser comb(112, SoaConfig{}, rng, 10.0);
  Rng rng2(9);
  FixedBankLaser bank(112, SoaConfig{}, rng2, 1.0);
  EXPECT_LE(comb.worst_case_latency(), Time::ps(912));
  // Today's combs burn more than a small fixed bank per §3.3... but less
  // than a 112-laser bank.
  EXPECT_LT(comb.power_watts(), bank.power_watts());
}

TEST(BerModel, ThresholdAtSensitivity) {
  BerModel m;
  // At exactly -8 dBm the pre-FEC BER equals the FEC threshold.
  EXPECT_NEAR(m.pre_fec_ber(OpticalPower::dbm(-8.0)), 2.4e-4, 2e-5);
  EXPECT_TRUE(m.error_free(OpticalPower::dbm(-8.0)));
}

TEST(BerModel, WaterfallMonotone) {
  BerModel m;
  double prev = 1.0;
  for (double dbm = -12.0; dbm <= -2.0; dbm += 0.5) {
    const double ber = m.pre_fec_ber(OpticalPower::dbm(dbm));
    EXPECT_LT(ber, prev);
    prev = ber;
  }
}

TEST(BerModel, FecCliff) {
  BerModel m;
  // Just below sensitivity: not error-free; above: deeply error-free.
  EXPECT_FALSE(m.error_free(OpticalPower::dbm(-9.0)));
  EXPECT_LE(m.post_fec_ber(OpticalPower::dbm(-7.0)), 1e-13);
  EXPECT_LE(m.post_fec_ber(OpticalPower::dbm(-5.0)), 1e-15);
}

TEST(BerModel, ChannelPenaltyShiftsWaterfall) {
  BerModelConfig cfg;
  cfg.channel_penalty_db = 1.0;
  BerModel penalised(cfg);
  BerModel clean;
  EXPECT_GT(penalised.pre_fec_ber(OpticalPower::dbm(-8.0)),
            clean.pre_fec_ber(OpticalPower::dbm(-8.0)));
}

TEST(Crosstalk, SinglePortIsClean) {
  CrosstalkModel m;
  EXPECT_DOUBLE_EQ(m.total_crosstalk_ratio(1), 0.0);
  EXPECT_NEAR(m.power_penalty_db(1), 0.0, 1e-9);
}

TEST(Crosstalk, GrowsWithPortCount) {
  CrosstalkModel m;
  double prev = -1.0;
  for (const std::int32_t p : {2, 4, 16, 100, 512}) {
    const double pen = m.power_penalty_db(p);
    EXPECT_GT(pen, prev);
    prev = pen;
  }
}

TEST(Crosstalk, HundredPortPenaltyFitsTheLinkBudget) {
  // §3.1/§4.5: 100-port AWGRs are commercially deployed — with typical
  // isolation the crosstalk penalty must fit inside the 2 dB margin.
  CrosstalkModel m;
  EXPECT_LT(m.power_penalty_db(100), 2.0);
  EXPECT_GE(m.max_ports_within_penalty(2.0), 100);
}

TEST(Crosstalk, PoorIsolationCapsRadix) {
  CrosstalkConfig bad;
  bad.adjacent_isolation_db = 15.0;
  bad.nonadjacent_isolation_db = 22.0;
  CrosstalkModel m(bad);
  EXPECT_LT(m.max_ports_within_penalty(2.0), 100);
}

TEST(Crosstalk, AggregateLevelArithmetic) {
  // 2 adjacent at -27 dB + 97 non-adjacent at -37 dB for 100 ports:
  // eps = 2*10^-2.7 + 97*10^-3.7 ~= 0.0233 -> ~16.3 dB below signal.
  CrosstalkModel m;
  EXPECT_NEAR(m.total_crosstalk_db(100), 16.3, 0.2);
}

}  // namespace
}  // namespace sirius::optical
