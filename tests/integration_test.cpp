// Cross-module integration tests: the public API and Fig. 9-style
// system comparisons on a reduced-scale network.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/network_api.hpp"

namespace sirius::core {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.racks = 16;
  cfg.servers_per_rack = 4;
  cfg.base_uplinks = 4;
  cfg.flows = 3'000;
  cfg.seed = 5;
  return cfg;
}

TEST(NetworkApi, SendRunAndQueryFct) {
  SiriusNetwork net(make_sirius_config(tiny(), SiriusVariant{}));
  const FlowId a =
      net.send(0, 40, DataSize::kilobytes(20), Time::zero());
  const FlowId b =
      net.send(8, 52, DataSize::kilobytes(5), Time::us(1));
  auto r = net.run();
  EXPECT_EQ(r.flow_count(), 2u);
  EXPECT_FALSE(r.fct_of(a).is_infinite());
  EXPECT_FALSE(r.fct_of(b).is_infinite());
  EXPECT_GT(r.completion_of(b), Time::us(1));
  // Smaller flow, later start: its absolute completion may be earlier or
  // later, but both must beat a very loose bound.
  EXPECT_LT(r.fct_of(a), Time::ms(1));
  EXPECT_LT(r.fct_of(b), Time::ms(1));
}

TEST(NetworkApi, OutOfOrderSendsAreSorted) {
  SiriusNetwork net(make_sirius_config(tiny(), SiriusVariant{}));
  const FlowId late = net.send(0, 30, DataSize::kilobytes(1), Time::us(50));
  const FlowId early = net.send(5, 40, DataSize::kilobytes(1), Time::zero());
  auto r = net.run();
  EXPECT_FALSE(r.fct_of(late).is_infinite());
  EXPECT_FALSE(r.fct_of(early).is_infinite());
  EXPECT_LT(r.completion_of(early), r.completion_of(late));
}

TEST(NetworkApi, WorkloadAttach) {
  const ExperimentConfig cfg = tiny();
  SiriusNetwork net(make_sirius_config(cfg, SiriusVariant{}));
  net.add_workload(make_workload(cfg, 0.2));
  auto r = net.run();
  EXPECT_EQ(r.flow_count(), static_cast<std::size_t>(cfg.flows));
  EXPECT_EQ(r.raw().incomplete_flows, 0);
}

TEST(Fig9Shape, SiriusTracksIdealEsnAndBeatsOversubscribed) {
  const ExperimentConfig cfg = tiny();
  const auto w = make_workload(cfg, 1.0);
  const RunMetrics sirius = run_sirius(cfg, SiriusVariant{}, w);
  const RunMetrics esn = run_esn(cfg, 1, w);
  const RunMetrics osub = run_esn(cfg, 3, w);

  // Fig. 9b at high load: Sirius approaches the non-blocking ideal and
  // clearly beats the oversubscribed fabric.
  EXPECT_GT(sirius.goodput, esn.goodput * 0.75);
  EXPECT_GT(sirius.goodput, osub.goodput * 1.1);
  EXPECT_EQ(sirius.incomplete, 0);
}

TEST(Fig9Shape, IdealSiriusLowerFctAtLowLoad) {
  // §7: the request/grant round trip penalises short flows at low load;
  // the idealised variant is faster. Use tiny flows so the startup epoch
  // dominates the FCT instead of serialisation.
  ExperimentConfig cfg = tiny();
  cfg.mean_flow_size = DataSize::kilobytes(2);
  const auto w = make_workload(cfg, 0.1);
  SiriusVariant real;
  SiriusVariant ideal;
  ideal.ideal = true;
  const RunMetrics r_real = run_sirius(cfg, real, w);
  const RunMetrics r_ideal = run_sirius(cfg, ideal, w);
  EXPECT_LT(r_ideal.short_fct_p99_ms, r_real.short_fct_p99_ms);
}

TEST(Fig11Shape, LargerGuardbandWorsensFct) {
  const ExperimentConfig cfg = tiny();
  SiriusVariant g1;
  g1.guardband = Time::ns(1);
  SiriusVariant g40;
  g40.guardband = Time::ns(40);
  // Same offered load; the guardband sweep rescales cells/slots (Fig. 11).
  const RunMetrics small = run_sirius(cfg, g1, 0.8);
  const RunMetrics large = run_sirius(cfg, g40, 0.8);
  EXPECT_LT(small.short_fct_p99_ms, large.short_fct_p99_ms);
}

TEST(ExperimentConfig, EnvOverrides) {
  ::setenv("SIRIUS_RACKS", "32", 1);
  ::setenv("SIRIUS_FLOWS", "1234", 1);
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  EXPECT_EQ(cfg.racks, 32);
  EXPECT_EQ(cfg.flows, 1234);
  ::unsetenv("SIRIUS_RACKS");
  ::unsetenv("SIRIUS_FLOWS");
}

TEST(ExperimentConfig, ServerShareArithmetic) {
  ExperimentConfig cfg;
  cfg.racks = 128;
  cfg.servers_per_rack = 24;
  cfg.base_uplinks = 8;
  // 8 x 50 Gbps uplinks over 24 servers = 16.67 Gbps provisioned each.
  EXPECT_NEAR(cfg.server_share().in_gbps(), 16.67, 0.01);
}

}  // namespace
}  // namespace sirius::core
