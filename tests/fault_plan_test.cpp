// Tests for the §4.5 fault-injection building blocks: the declarative
// FaultPlan timeline (construction, parsing, validation, ground-truth
// queries) and the shared in-band detector state (PeerHealth consecutive
// -miss counters, MembershipView versioned link verdicts and quorum).
#include <gtest/gtest.h>

#include "ctrl/fault_plan.hpp"
#include "ctrl/peer_health.hpp"

namespace sirius {
namespace {

// ---- FaultPlan: timeline semantics ----------------------------------------

TEST(FaultPlan, RackDownWindow) {
  ctrl::FaultPlan p;
  p.fail_rack(3, Time::ns(1'000), Time::ns(5'000));
  EXPECT_FALSE(p.rack_down(3, Time::ns(999)));
  EXPECT_TRUE(p.rack_down(3, Time::ns(1'000)));   // [at, ...
  EXPECT_TRUE(p.rack_down(3, Time::ns(4'999)));
  EXPECT_FALSE(p.rack_down(3, Time::ns(5'000)));  // ... recover_at)
  EXPECT_FALSE(p.rack_down(2, Time::ns(2'000)));
}

TEST(FaultPlan, PermanentFailureNeverRecovers) {
  ctrl::FaultPlan p;
  p.fail_rack(1, Time::zero());
  EXPECT_TRUE(p.rack_down(1, Time::zero()));
  EXPECT_TRUE(p.rack_down(1, Time::sec(100)));
}

TEST(FaultPlan, LinkLossWindowAndCombination) {
  ctrl::FaultPlan p;
  p.grey_link(2, 7, 0.5, Time::ns(100), Time::ns(200));
  EXPECT_DOUBLE_EQ(p.link_loss(2, 7, Time::ns(99)), 0.0);
  EXPECT_DOUBLE_EQ(p.link_loss(2, 7, Time::ns(150)), 0.5);
  EXPECT_DOUBLE_EQ(p.link_loss(2, 7, Time::ns(200)), 0.0);
  // The reverse direction is clean: grey links are directed.
  EXPECT_DOUBLE_EQ(p.link_loss(7, 2, Time::ns(150)), 0.0);
  // Overlapping windows combine as independent loss processes.
  p.grey_link(2, 7, 0.5, Time::ns(120), Time::ns(180));
  EXPECT_DOUBLE_EQ(p.link_loss(2, 7, Time::ns(150)), 0.75);
  EXPECT_TRUE(p.link_ever_grey(2, 7));
  EXPECT_FALSE(p.link_ever_grey(7, 2));
}

TEST(FaultPlan, DynamicVsStatic) {
  ctrl::FaultPlan empty;
  EXPECT_FALSE(empty.dynamic());
  EXPECT_TRUE(empty.empty());

  ctrl::FaultPlan static_only;
  static_only.fail_rack(0, Time::zero());
  EXPECT_FALSE(static_only.dynamic());  // the failed_racks case
  EXPECT_EQ(static_only.down_at_start(), std::vector<NodeId>{0});
  EXPECT_TRUE(static_only.first_disruption().is_infinite());

  ctrl::FaultPlan recovers;
  recovers.fail_rack(0, Time::zero(), Time::ns(500));
  EXPECT_TRUE(recovers.dynamic());  // recovery needs mid-run machinery

  ctrl::FaultPlan midrun;
  midrun.fail_rack(4, Time::ns(300));
  EXPECT_TRUE(midrun.dynamic());
  EXPECT_TRUE(midrun.down_at_start().empty());
  EXPECT_EQ(midrun.first_disruption(), Time::ns(300));

  ctrl::FaultPlan grey;
  grey.grey_link(1, 2, 0.1, Time::ns(700));
  EXPECT_TRUE(grey.dynamic());
  EXPECT_EQ(grey.first_disruption(), Time::ns(700));
}

// ---- FaultPlan: parsing ---------------------------------------------------

TEST(FaultPlan, ParseFaultSpecs) {
  ctrl::FaultPlan p;
  EXPECT_FALSE(p.parse_fault("3@120+500").has_value());
  EXPECT_FALSE(p.parse_fault("0@0,7@60").has_value());
  ASSERT_EQ(p.rack_faults().size(), 3u);
  EXPECT_EQ(p.rack_faults()[0].rack, 3);
  EXPECT_EQ(p.rack_faults()[0].at, Time::from_ns(120e3));
  EXPECT_EQ(p.rack_faults()[0].recover_at, Time::from_ns(620e3));
  EXPECT_EQ(p.rack_faults()[1].rack, 0);
  EXPECT_TRUE(p.rack_faults()[1].recover_at.is_infinite());
  EXPECT_EQ(p.rack_faults()[2].rack, 7);
}

TEST(FaultPlan, ParseGreySpecs) {
  ctrl::FaultPlan p;
  EXPECT_FALSE(p.parse_grey("2>7@0.05@100-400").has_value());
  EXPECT_FALSE(p.parse_grey("1>3@1.0").has_value());
  ASSERT_EQ(p.grey_links().size(), 2u);
  EXPECT_EQ(p.grey_links()[0].src, 2);
  EXPECT_EQ(p.grey_links()[0].dst, 7);
  EXPECT_DOUBLE_EQ(p.grey_links()[0].loss, 0.05);
  EXPECT_EQ(p.grey_links()[0].from, Time::from_ns(100e3));
  EXPECT_EQ(p.grey_links()[0].until, Time::from_ns(400e3));
  EXPECT_TRUE(p.grey_links()[1].until.is_infinite());
}

TEST(FaultPlan, ParseRejectsGarbage) {
  ctrl::FaultPlan p;
  EXPECT_FALSE(p.parse_fault("").has_value());  // empty spec is a no-op
  EXPECT_TRUE(p.parse_fault("3").has_value());         // missing @time
  EXPECT_TRUE(p.parse_fault("x@12").has_value());      // not a rack id
  EXPECT_TRUE(p.parse_grey("2-7@0.1").has_value());    // missing '>'
  EXPECT_TRUE(p.parse_grey("2>7").has_value());        // missing loss
  EXPECT_TRUE(p.grey_links().empty());
}

// ---- FaultPlan: validation ------------------------------------------------

TEST(FaultPlan, ValidateAcceptsWellFormed) {
  ctrl::FaultPlan p;
  p.fail_rack(3, Time::ns(100), Time::ns(900));
  p.fail_rack(5, Time::zero());
  p.grey_link(0, 1, 1.0, Time::ns(50), Time::ns(60));
  EXPECT_FALSE(p.validate(8).has_value());
}

TEST(FaultPlan, ValidateRejectsBadPlans) {
  {
    ctrl::FaultPlan p;  // rack id out of range
    p.fail_rack(8, Time::zero());
    EXPECT_TRUE(p.validate(8).has_value());
  }
  {
    ctrl::FaultPlan p;  // duplicate fault for one rack
    p.fail_rack(2, Time::zero());
    p.fail_rack(2, Time::ns(100));
    EXPECT_TRUE(p.validate(8).has_value());
  }
  {
    ctrl::FaultPlan p;  // recovery not after failure
    p.fail_rack(2, Time::ns(100), Time::ns(100));
    EXPECT_TRUE(p.validate(8).has_value());
  }
  {
    ctrl::FaultPlan p;  // loss outside (0, 1]
    p.grey_link(0, 1, 1.5);
    EXPECT_TRUE(p.validate(8).has_value());
  }
  {
    ctrl::FaultPlan p;  // grey link to self
    p.grey_link(3, 3, 0.5);
    EXPECT_TRUE(p.validate(8).has_value());
  }
  {
    ctrl::FaultPlan p;  // empty grey window
    p.grey_link(0, 1, 0.5, Time::ns(200), Time::ns(200));
    EXPECT_TRUE(p.validate(8).has_value());
  }
}

// ---- PeerHealth: consecutive-miss detector --------------------------------

TEST(PeerHealth, DeclaresExactlyAtThreshold) {
  ctrl::PeerHealth h(4, /*miss_threshold=*/3);
  EXPECT_FALSE(h.record_miss(1));
  EXPECT_FALSE(h.record_miss(1));
  EXPECT_FALSE(h.declared(1));
  EXPECT_TRUE(h.record_miss(1));  // the threshold-crossing miss, once
  EXPECT_TRUE(h.declared(1));
  // Once convicted the run saturates: no re-declaration, no growth.
  EXPECT_FALSE(h.record_miss(1));
  EXPECT_EQ(h.misses(1), 3);
}

TEST(PeerHealth, HitResetsTheRun) {
  ctrl::PeerHealth h(4, 3);
  h.record_miss(2);
  h.record_miss(2);
  h.record_hit(2);  // a single heard burst resets
  EXPECT_EQ(h.misses(2), 0);
  EXPECT_FALSE(h.record_miss(2));
  EXPECT_FALSE(h.record_miss(2));
  EXPECT_TRUE(h.record_miss(2));  // needs a fresh full run
}

TEST(PeerHealth, ResetForgetsDeclaration) {
  ctrl::PeerHealth h(4, 2);
  h.record_miss(3);
  h.record_miss(3);
  EXPECT_TRUE(h.declared(3));
  h.reset(3);
  EXPECT_FALSE(h.declared(3));
  EXPECT_EQ(h.misses(3), 0);
  // Peers are independent: resetting 3 does not touch 1.
  h.record_miss(1);
  h.record_miss(1);
  EXPECT_TRUE(h.declared(1));
}

// ---- MembershipView: versioned verdicts and quorum ------------------------

TEST(MembershipView, QuorumConvictsExcludingSelfVote) {
  ctrl::MembershipView v(6, /*owner=*/0, /*quorum=*/2);
  v.report_link(5, true);
  EXPECT_TRUE(v.link_down(0, 5));
  EXPECT_FALSE(v.node_down(5));  // one observer is not a quorum

  ctrl::MembershipView other(6, 1, 2);
  other.report_link(5, true);
  EXPECT_TRUE(v.merge_from(other));
  EXPECT_TRUE(v.node_down(5));  // two distinct observers convict
  EXPECT_EQ(v.down_set(), std::vector<NodeId>{5});
}

TEST(MembershipView, FresherVerdictWinsTheMerge) {
  ctrl::MembershipView a(4, 0, 1);
  ctrl::MembershipView b(4, 1, 1);
  // b learns a's stale "link 2 -> 0 down" verdict...
  a.report_link(2, true);
  EXPECT_TRUE(b.merge_from(a));
  EXPECT_TRUE(b.link_down(0, 2));
  // ... then a retracts (bumping the version); the retraction must
  // propagate even though b still holds the old "down" copy.
  a.report_link(2, false);
  EXPECT_TRUE(b.merge_from(a));
  EXPECT_FALSE(b.link_down(0, 2));
  // And b's stale copy must never resurrect the verdict in a third view.
  ctrl::MembershipView c(4, 3, 1);
  EXPECT_TRUE(c.merge_from(b));
  EXPECT_FALSE(c.link_down(0, 2));
}

TEST(MembershipView, MergeShortCircuitsOnRevision) {
  ctrl::MembershipView a(4, 0, 1);
  ctrl::MembershipView b(4, 1, 1);
  a.report_link(3, true);
  EXPECT_TRUE(b.merge_from(a));
  const auto rev = b.revision();
  // Nothing changed in a since the last merge: no-op, revision stable.
  EXPECT_FALSE(b.merge_from(a));
  EXPECT_EQ(b.revision(), rev);
}

TEST(MembershipView, AdmitClearsVerdictsByAndAboutTheNode) {
  ctrl::MembershipView a(4, 0, 1);
  ctrl::MembershipView rejoined(4, 2, 1);
  a.report_link(2, true);          // about node 2
  rejoined.report_link(0, true);   // by node 2 (its own stale row)
  EXPECT_TRUE(a.merge_from(rejoined));
  EXPECT_TRUE(a.node_down(2));
  EXPECT_TRUE(a.link_down(2, 0));
  a.admit(2);
  EXPECT_FALSE(a.node_down(2));
  EXPECT_FALSE(a.link_down(0, 2));
  EXPECT_FALSE(a.link_down(2, 0));
  // The admit bumps versions, so merging the pre-admit copy back in must
  // not resurrect the old verdicts.
  EXPECT_FALSE(a.merge_from(rejoined) && a.link_down(2, 0));
  EXPECT_FALSE(a.node_down(2));
}

}  // namespace
}  // namespace sirius
