// Unit tests for phy/: slot geometry, phase-caching CDR, transceiver budget.
#include <gtest/gtest.h>

#include <memory>

#include "phy/amplitude_cache.hpp"
#include "phy/cdr.hpp"
#include "phy/slot_geometry.hpp"
#include "phy/transceiver.hpp"

namespace sirius::phy {
namespace {

using namespace sirius::literals;

TEST(SlotGeometry, PaperDefault) {
  // §7: 562 B cells at 50 Gbps -> ~90 ns data + 10 ns guard = ~100 ns slot.
  const SlotGeometry g = default_slot_geometry();
  EXPECT_NEAR(g.data_time().to_ns(), 89.92, 0.01);
  EXPECT_NEAR(g.slot_duration().to_ns(), 99.92, 0.01);
  EXPECT_NEAR(g.guard_overhead(), 0.10, 0.005);
}

TEST(SlotGeometry, EffectiveRateLosesGuardband) {
  const SlotGeometry g = default_slot_geometry();
  EXPECT_NEAR(g.effective_rate().in_gbps(), 50.0 * 0.9, 0.1);
}

TEST(SlotGeometry, WithGuardbandFractionKeepsTenPercent) {
  for (const Time guard : {1_ns, 5_ns, 10_ns, 20_ns, 40_ns}) {
    const auto g =
        SlotGeometry::with_guardband_fraction(guard, DataRate::gbps(50));
    EXPECT_NEAR(g.guard_overhead(), 0.10, 0.01) << guard.to_string();
    EXPECT_EQ(g.guardband(), guard);
  }
  // Fig. 11's default point recovers the 562 B cell.
  const auto g10 =
      SlotGeometry::with_guardband_fraction(10_ns, DataRate::gbps(50));
  EXPECT_EQ(g10.cell_size().in_bytes(), 562);
}

TEST(SlotGeometry, SlotIndexing) {
  const SlotGeometry g = default_slot_geometry();
  EXPECT_EQ(g.slot_index(Time::zero()), 0);
  EXPECT_EQ(g.slot_index(g.slot_duration()), 1);
  EXPECT_EQ(g.slot_start(5), g.slot_duration() * 5);
  EXPECT_EQ(g.slot_index(g.slot_start(7) + 1_ns), 7);
}

TEST(SlotGeometry, MinimumViableSlot) {
  // §4.5: with a 3.84 ns guardband, slots as short as 38 ns are possible.
  const auto g = SlotGeometry::with_guardband_fraction(Time::from_ns(3.84),
                                                       DataRate::gbps(50));
  EXPECT_NEAR(g.slot_duration().to_ns(), 38.4, 0.5);
}

TEST(Cdr, ColdThenCached) {
  PhaseCachingCdr cdr(8);
  const Time t0 = Time::zero();
  // First burst from a sender: full acquisition.
  EXPECT_EQ(cdr.on_burst(3, t0), cdr.config().cold_lock);
  // A burst one epoch later: cache is fresh, sub-ns lock.
  EXPECT_EQ(cdr.on_burst(3, t0 + Time::us(13)), cdr.config().cached_lock);
  EXPECT_EQ(cdr.fast_locks(), 1);
  EXPECT_EQ(cdr.cold_locks(), 1);
}

TEST(Cdr, CacheIsPerSender) {
  PhaseCachingCdr cdr(4);
  cdr.on_burst(0, Time::zero());
  EXPECT_FALSE(cdr.cache_fresh(1, Time::us(1)));
  EXPECT_TRUE(cdr.cache_fresh(0, Time::us(1)));
}

TEST(Cdr, StaleCacheForcesReacquisition) {
  CdrConfig cfg;
  cfg.residual_freq_offset = 1e-6;  // poor synchronisation
  PhaseCachingCdr cdr(2, cfg);
  cdr.on_burst(0, Time::zero());
  // After 100 ms the phase has drifted far beyond a UI fraction.
  EXPECT_FALSE(cdr.cache_fresh(0, Time::ms(100)));
  EXPECT_EQ(cdr.on_burst(0, Time::ms(100)), cfg.cold_lock);
}

TEST(Cdr, DriftArithmetic) {
  CdrConfig cfg;
  cfg.residual_freq_offset = 1e-9;
  cfg.symbol_rate_gbaud = 25.0;
  PhaseCachingCdr cdr(2, cfg);
  cdr.on_burst(0, Time::zero());
  // 1e-9 offset for 1 ms at 25 GBaud = 25e9 * 1e-3 * 1e-9 = 0.025 UI.
  EXPECT_NEAR(cdr.phase_drift_ui(0, Time::ms(1)), 0.025, 1e-6);
}

TEST(AmplitudeCache, ColdThenCached) {
  AmplitudeCache ac(8);
  const auto p = optical::OpticalPower::dbm(-6.0);
  EXPECT_EQ(ac.on_burst(2, p), ac.config().cold_settle);
  EXPECT_EQ(ac.on_burst(2, p), ac.config().cached_settle);
  EXPECT_EQ(ac.fast_settles(), 1);
  EXPECT_EQ(ac.cold_settles(), 1);
}

TEST(AmplitudeCache, PerSenderEntries) {
  AmplitudeCache ac(4);
  ac.on_burst(0, optical::OpticalPower::dbm(-5.0));
  EXPECT_FALSE(ac.cache_valid(1, optical::OpticalPower::dbm(-5.0)));
  EXPECT_TRUE(ac.cache_valid(0, optical::OpticalPower::dbm(-5.0)));
}

TEST(AmplitudeCache, PowerDriftBeyondToleranceForcesReacquire) {
  AmplitudeCacheConfig cfg;
  cfg.tolerance_db = 1.0;
  AmplitudeCache ac(2, cfg);
  ac.on_burst(0, optical::OpticalPower::dbm(-6.0));
  // Within 1 dB: fast.
  EXPECT_EQ(ac.on_burst(0, optical::OpticalPower::dbm(-6.8)),
            cfg.cached_settle);
  // A 3 dB jump (e.g. laser-share change): cold reacquisition.
  EXPECT_EQ(ac.on_burst(0, optical::OpticalPower::dbm(-3.8)),
            cfg.cold_settle);
}

std::unique_ptr<optical::TunableSource> make_fast_laser(Rng& rng) {
  return std::make_unique<optical::FixedBankLaser>(112, optical::SoaConfig{},
                                                   rng);
}

TEST(Transceiver, BudgetBelowTenNanoseconds) {
  // §4.5 target: end-to-end reconfiguration < 10 ns; prototype: 3.84 ns.
  Rng rng(1);
  Transceiver t(make_fast_laser(rng), 128);
  const GuardbandBudget b = t.reconfiguration_budget();
  EXPECT_LE(b.laser_tuning, Time::ps(912));
  EXPECT_LT(b.total(), Time::ns(10));
  EXPECT_LE(b.total(), Time::from_ns(3.84) + Time::ps(100));
  EXPECT_GE(b.total(), Time::ns(3));  // the prototype's figure, not less
}

TEST(Transceiver, ReconfigureConsumesGuardbandScale) {
  Rng rng(2);
  Transceiver t(make_fast_laser(rng), 16);
  // Warm the phase cache for sender 5.
  t.reconfigure(3, 5, Time::zero());
  const Time gap = t.reconfigure(7, 5, Time::us(13));
  EXPECT_LT(gap, Time::ns(10));
}

TEST(Transceiver, SlowLaserDominatesBudget) {
  // With an off-the-shelf DSDBR, the budget explodes to ~10 ms, which is
  // why the disaggregated laser exists.
  auto slow_cfg = optical::DsdbrConfig{};
  slow_cfg.drive = optical::DriveMode::kOffTheShelf;
  auto laser = std::make_unique<optical::DsdbrLaser>(slow_cfg);
  Transceiver t(std::move(laser), 16);
  EXPECT_GE(t.reconfiguration_budget().total(), Time::ms(9));
}

}  // namespace
}  // namespace sirius::phy
