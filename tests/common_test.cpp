// Unit tests for common/: time, units, rng, distributions, histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/invariant.hpp"
#include "common/config.hpp"
#include "common/distributions.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace sirius {
namespace {

using namespace sirius::literals;

TEST(Time, FactoryUnitsAgree) {
  EXPECT_EQ(Time::ns(1).picoseconds(), 1'000);
  EXPECT_EQ(Time::us(1), Time::ns(1'000));
  EXPECT_EQ(Time::ms(1), Time::us(1'000));
  EXPECT_EQ(Time::sec(1), Time::ms(1'000));
  EXPECT_EQ(100_ns, Time::ps(100'000));
}

TEST(Time, FromDoubleRounds) {
  EXPECT_EQ(Time::from_ns(3.84).picoseconds(), 3'840);
  EXPECT_EQ(Time::from_ns(0.9121).picoseconds(), 912);
  EXPECT_EQ(Time::from_sec(1e-12).picoseconds(), 1);
}

TEST(Time, Arithmetic) {
  const Time a = 90_ns, b = 10_ns;
  EXPECT_EQ(a + b, 100_ns);
  EXPECT_EQ(a - b, 80_ns);
  EXPECT_EQ(a * 2, 180_ns);
  EXPECT_EQ((a + b) / 10_ns, 10);
  EXPECT_EQ((a + b) % 30_ns, 10_ns);
  EXPECT_LT(b, a);
}

TEST(Time, InfinityBehaves) {
  EXPECT_TRUE(Time::infinity().is_infinite());
  EXPECT_GT(Time::infinity(), Time::sec(1'000'000));
  EXPECT_EQ(Time::infinity().to_string(), "inf");
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(Time::ps(500).to_string(), "500 ps");
  EXPECT_NE(Time::ns(100).to_string().find("ns"), std::string::npos);
  EXPECT_NE(Time::us(3).to_string().find("us"), std::string::npos);
  EXPECT_NE(Time::ms(2).to_string().find("ms"), std::string::npos);
}

TEST(DataSize, Conversions) {
  EXPECT_EQ(DataSize::kilobytes(100).in_bytes(), 100'000);
  EXPECT_EQ(DataSize::bytes(562).in_bits(), 4'496);
  EXPECT_EQ(DataSize::megabytes(1), DataSize::kilobytes(1'000));
}

TEST(DataRate, TransmissionTime) {
  // 562 B at 50 Gbps = 89.92 ns.
  const Time t = DataRate::gbps(50).transmission_time(DataSize::bytes(562));
  EXPECT_NEAR(t.to_ns(), 89.92, 0.01);
  // 576 B at 50 Gbps = 92.16 ns (the §2.2 switch interval).
  const Time u = DataRate::gbps(50).transmission_time(DataSize::bytes(576));
  EXPECT_NEAR(u.to_ns(), 92.16, 0.01);
}

TEST(DataRate, BytesInWindowInvertsTransmission) {
  const DataRate r = DataRate::gbps(50);
  const DataSize s = r.bytes_in(Time::ns(90));
  EXPECT_EQ(s.in_bytes(), 562);  // 90 ns * 50 Gbps / 8 = 562.5 -> 562
}

TEST(DataRate, Arithmetic) {
  EXPECT_EQ(DataRate::gbps(50) * 8, DataRate::gbps(400));
  EXPECT_EQ(DataRate::gbps(400) / 24, DataRate::bps(16'666'666'666));
  EXPECT_DOUBLE_EQ(DataRate::tbps(1) / DataRate::gbps(500), 2.0);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  EXPECT_NE(a(), c());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(1);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng r(7);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, BetweenCoversRangeInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(r.between(5, 8));
  EXPECT_EQ(seen, (std::set<std::int64_t>{5, 6, 7, 8}));
}

TEST(Rng, ForkDecorrelates) {
  Rng a(9);
  Rng b = a.fork();
  // Streams should differ immediately.
  EXPECT_NE(a(), b());
}

TEST(Pareto, MeanMatchesConfiguration) {
  ParetoDistribution p(1.5, 100'000.0);  // shape 1.5 has finite variance
  Rng r(11);
  double sum = 0.0;
  constexpr int kDraws = 400'000;
  for (int i = 0; i < kDraws; ++i) sum += p.sample(r);
  EXPECT_NEAR(sum / kDraws, 100'000.0, 5'000.0);
}

TEST(Pareto, ShapeParametersExposed) {
  // The paper's flow-size distribution: shape 1.05, mean 100 KB.
  ParetoDistribution p(1.05, 100'000.0);
  EXPECT_NEAR(p.scale(), 100'000.0 * 0.05 / 1.05, 1.0);
  // Median of Pareto(1.05) is far below the mean: heavy tail.
  EXPECT_LT(p.median(), 10'000.0);
  EXPECT_NEAR(p.median(), p.scale() * std::pow(2.0, 1.0 / 1.05), 1.0);
}

TEST(Pareto, SamplesNeverBelowScale) {
  ParetoDistribution p(1.05, 100'000.0);
  Rng r(5);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(p.sample(r), p.scale());
}

TEST(Exponential, MeanMatches) {
  ExponentialDistribution e(250.0);
  Rng r(13);
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += e.sample(r);
  EXPECT_NEAR(sum / kDraws, 250.0, 5.0);
}

TEST(Normal, MomentsMatch) {
  NormalDistribution n(10.0, 2.0);
  Rng r(17);
  double sum = 0.0, sq = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = n.sample(r);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / kDraws - mean * mean), 2.0, 0.05);
}

TEST(LogNormal, MedianAndTailCalibration) {
  auto d = LogNormalDistribution::from_median_and_tail(250.0, 2.0);
  Rng r(19);
  PercentileTracker t;
  for (int i = 0; i < 200'000; ++i) t.add(d.sample(r));
  EXPECT_NEAR(t.median(), 250.0, 10.0);
  EXPECT_NEAR(t.percentile(99.9), 500.0, 50.0);
}

TEST(PoissonProcess, RateMatches) {
  Rng r(23);
  PoissonProcess p(Time::ns(100), r);
  Time last = Time::zero();
  constexpr int kEvents = 100'000;
  for (int i = 0; i < kEvents; ++i) last = p.next();
  EXPECT_NEAR(last.to_ns() / kEvents, 100.0, 2.0);
}

TEST(PercentileTracker, ExactSmallCases) {
  PercentileTracker t;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) t.add(v);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 5.0);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);
  EXPECT_DOUBLE_EQ(t.mean(), 3.0);
  EXPECT_DOUBLE_EQ(t.percentile(75.0), 4.0);
}

TEST(PercentileTracker, InterpolatesBetweenRanks) {
  PercentileTracker t;
  t.add(0.0);
  t.add(10.0);
  EXPECT_DOUBLE_EQ(t.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(t.percentile(99.0), 9.9);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 1.0, 10);
  Rng r(29);
  for (int i = 0; i < 10'000; ++i) h.add(r.uniform());
  double prev = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    EXPECT_GE(h.cdf_at(b), prev);
    prev = h.cdf_at(b);
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(h.bins() - 1), 1.0);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(3), 1u);
}

TEST(Histogram, PercentileInterpolatesInsideBins) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i));  // 1 per bin
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);     // lower edge of first bin
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);  // upper edge of last bin
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
  // Bin-edge interpolation: p=10 consumes exactly the first bin.
  EXPECT_DOUBLE_EQ(h.percentile(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(5.0), 0.5);
}

TEST(Histogram, PercentileOfClampedSamplesStaysInRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-100.0);  // clamped into the first bin
  h.add(100.0);   // clamped into the last bin
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
  EXPECT_GE(h.percentile(50.0), 0.0);
  EXPECT_LE(h.percentile(50.0), 10.0);
}

TEST(Histogram, PercentileOfEmptyHistogramIsLo) {
  Histogram h(2.0, 8.0, 6);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 2.0);
}

TEST(Histogram, MergeAccumulatesCounts) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  for (int i = 0; i < 5; ++i) a.add(1.5);
  for (int i = 0; i < 5; ++i) b.add(7.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_EQ(a.count_at(1), 5u);
  EXPECT_EQ(a.count_at(7), 5u);
  EXPECT_DOUBLE_EQ(a.percentile(100.0), 8.0);  // upper edge of bin 7
}

TEST(Histogram, MergeGeometryMismatchIsRejected) {
  check::ScopedCollect collect;
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 5);  // different bin count
  a.add(3.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(collect.violations(), 1);
  EXPECT_EQ(a.total(), 1u);  // merge skipped on the defensive path
}

TEST(PeakTracker, TracksPeakAndMean) {
  PeakTracker p;
  p.observe(1.0);
  p.observe(5.0);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.peak(), 5.0);
  EXPECT_DOUBLE_EQ(p.mean(), 3.0);
}

// ---- overflow / divide-by-zero hardening (common/invariant.hpp) ----------
// Each defensive path reports a SIRIUS_INVARIANT violation and saturates;
// the tests run under ScopedCollect so the reports are counted, not fatal.

TEST(TimeHardening, FactoryOverflowSaturates) {
  check::ScopedCollect collect;
  EXPECT_EQ(Time::sec(INT64_MAX / 2), Time::infinity());
  EXPECT_EQ(collect.violations(), 1);
  EXPECT_EQ(Time::ms(INT64_MIN / 4).picoseconds(), INT64_MIN);
  EXPECT_EQ(collect.violations(), 2);
}

TEST(TimeHardening, ArithmeticOverflowSaturates) {
  check::ScopedCollect collect;
  const Time big = Time::ps(INT64_MAX - 10);
  EXPECT_EQ(big + Time::ps(100), Time::infinity());
  EXPECT_EQ(big * 3, Time::infinity());
  EXPECT_EQ(collect.violations(), 2);
}

TEST(TimeHardening, InfinityIsStickyWithoutViolation) {
  check::ScopedCollect collect;
  EXPECT_EQ(Time::infinity() + Time::ns(1), Time::infinity());
  EXPECT_EQ(Time::infinity() - Time::sec(5), Time::infinity());
  EXPECT_EQ(Time::infinity() * 2, Time::infinity());
  EXPECT_EQ(collect.violations(), 0);
}

TEST(TimeHardening, FromDoubleRejectsOutOfRange) {
  check::ScopedCollect collect;
  EXPECT_EQ(Time::from_sec(1e30), Time::infinity());
  EXPECT_EQ(Time::from_ns(std::nan("")), Time::infinity());
  EXPECT_EQ(collect.violations(), 2);
}

TEST(TimeHardening, DivisionByZeroIsDefensive) {
  check::ScopedCollect collect;
  EXPECT_EQ(Time::ns(100) / Time::zero(), 0);
  EXPECT_EQ(Time::ns(100) % Time::zero(), Time::zero());
  EXPECT_EQ(Time::ns(100) / 0, Time::zero());
  EXPECT_EQ(collect.violations(), 3);
}

TEST(DataSizeHardening, OverflowSaturates) {
  check::ScopedCollect collect;
  EXPECT_EQ(DataSize::megabytes(INT64_MAX / 1'000).in_bytes(), INT64_MAX);
  EXPECT_EQ(DataSize::bytes(INT64_MAX).in_bits(), INT64_MAX);
  EXPECT_EQ(DataSize::bytes(INT64_MAX) + DataSize::bytes(1),
            DataSize::bytes(INT64_MAX));
  EXPECT_EQ(DataSize::bytes(INT64_MAX / 2) * 4, DataSize::bytes(INT64_MAX));
  EXPECT_EQ(collect.violations(), 4);
}

TEST(DataRateHardening, ZeroRateSendNeverCompletes) {
  check::ScopedCollect collect;
  EXPECT_EQ(DataRate::zero().transmission_time(DataSize::kilobytes(1)),
            Time::infinity());
  EXPECT_EQ(collect.violations(), 1);
}

TEST(DataRateHardening, HugeSizeAtTinyRateSaturates) {
  check::ScopedCollect collect;
  EXPECT_EQ(DataRate::bps(1).transmission_time(DataSize::bytes(INT64_MAX / 8)),
            Time::infinity());
  EXPECT_GE(collect.violations(), 1);
}

TEST(DataRateHardening, DivisionByZeroIsDefensive) {
  check::ScopedCollect collect;
  EXPECT_EQ(DataRate::gbps(50) / 0, DataRate::zero());
  EXPECT_DOUBLE_EQ(DataRate::gbps(50) / DataRate::zero(), 0.0);
  EXPECT_EQ(collect.violations(), 2);
}

TEST(DataRateHardening, NormalPathsReportNothing) {
  check::ScopedCollect collect;
  EXPECT_EQ(DataRate::gbps(50).transmission_time(DataSize::bytes(562)),
            Time::ps(89'920));
  EXPECT_EQ(DataRate::gbps(50).bytes_in(Time::ns(90)).in_bytes(), 562);
  EXPECT_EQ(collect.violations(), 0);
}

TEST(EnvConfig, ParsesAndDefaults) {
  ::setenv("SIRIUS_TEST_INT", "128", 1);
  ::setenv("SIRIUS_TEST_DBL", "2.5", 1);
  ::setenv("SIRIUS_TEST_BAD", "12abc", 1);
  EXPECT_EQ(env_int_or("SIRIUS_TEST_INT", 1), 128);
  EXPECT_DOUBLE_EQ(env_double_or("SIRIUS_TEST_DBL", 1.0), 2.5);
  EXPECT_EQ(env_int_or("SIRIUS_TEST_BAD", 7), 7);
  EXPECT_EQ(env_int_or("SIRIUS_TEST_MISSING", 9), 9);
}

}  // namespace
}  // namespace sirius
