// Tests for the §4.5 fault-tolerance machinery: member schedules, relay
// exclusion in congestion control, and end-to-end behaviour with failed
// racks.
#include <gtest/gtest.h>

#include <set>

#include "cc/request_grant.hpp"
#include "sched/schedule.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace sirius {
namespace {

TEST(MemberSchedule, SkipsNonMembers) {
  // Nodes {0,1,3,4,6} of a 7-node network (2 and 5 failed).
  sched::CyclicSchedule s({0, 1, 3, 4, 6}, /*uplinks=*/2);
  EXPECT_EQ(s.nodes(), 5);
  EXPECT_TRUE(s.is_member(3));
  EXPECT_FALSE(s.is_member(2));
  EXPECT_FALSE(s.is_member(5));
  // Failed nodes get no transmission slots.
  for (std::int64_t t = 0; t < 8; ++t) {
    for (UplinkId u = 0; u < 2; ++u) {
      EXPECT_EQ(s.peer_tx(2, u, t), kInvalidNode);
      EXPECT_EQ(s.peer_tx(5, u, t), kInvalidNode);
    }
  }
}

TEST(MemberSchedule, EachAlivePairOncePerRound) {
  const std::vector<NodeId> members = {0, 2, 3, 5, 7, 8, 9, 11};
  sched::CyclicSchedule s(members, 3);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (std::int64_t t = 0; t < s.slots_per_round(); ++t) {
    for (const NodeId src : members) {
      for (UplinkId u = 0; u < 3; ++u) {
        const NodeId dst = s.peer_tx(src, u, t);
        if (dst == kInvalidNode) continue;
        EXPECT_NE(dst, src);
        EXPECT_TRUE(s.is_member(dst));
        EXPECT_TRUE(seen.insert({src, dst}).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), members.size() * (members.size() - 1));
}

TEST(MemberSchedule, RxInvertsTxOnAliveSet) {
  const std::vector<NodeId> members = {1, 2, 4, 5, 6, 9};
  sched::CyclicSchedule s(members, 2);
  for (std::int64_t t = 0; t < s.slots_per_round() * 2; ++t) {
    for (const NodeId src : members) {
      for (UplinkId u = 0; u < 2; ++u) {
        const NodeId dst = s.peer_tx(src, u, t);
        if (dst == kInvalidNode) continue;
        EXPECT_EQ(s.peer_rx(dst, u, t), src);
      }
    }
  }
}

TEST(MemberSchedule, FullMembershipMatchesPlainSchedule) {
  sched::CyclicSchedule plain(12, 3);
  std::vector<NodeId> all;
  for (NodeId n = 0; n < 12; ++n) all.push_back(n);
  sched::CyclicSchedule membered(all, 3);
  for (std::int64_t t = 0; t < plain.slots_per_round(); ++t) {
    for (NodeId n = 0; n < 12; ++n) {
      for (UplinkId u = 0; u < 3; ++u) {
        EXPECT_EQ(plain.peer_tx(n, u, t), membered.peer_tx(n, u, t));
      }
    }
  }
}

TEST(CcExclusion, FailedRelayNeverRequested) {
  cc::RequestGrantNode n(0, cc::RequestGrantConfig{16, 4});
  n.exclude(7);
  n.exclude(9);
  Rng rng(1);
  // Many epochs, many cells: neither excluded node may appear.
  for (std::int64_t e = 0; e < 500; ++e) {
    std::vector<NodeId> pending(20, static_cast<NodeId>(1 + e % 15));
    for (const auto& req : n.build_requests(pending, e, rng)) {
      EXPECT_NE(req.intermediate, 7);
      EXPECT_NE(req.intermediate, 9);
    }
  }
  EXPECT_TRUE(n.is_excluded(7));
  EXPECT_FALSE(n.is_excluded(8));
}

TEST(CcExclusion, AllExcludedYieldsNoRequests) {
  cc::RequestGrantNode n(0, cc::RequestGrantConfig{3, 4});
  n.exclude(1);
  n.exclude(2);
  Rng rng(2);
  EXPECT_TRUE(n.build_requests({1, 2}, 0, rng).empty());
}

sim::SiriusSimConfig failed_net(std::vector<NodeId> failed) {
  sim::SiriusSimConfig cfg;
  cfg.racks = 16;
  cfg.servers_per_rack = 4;
  cfg.base_uplinks = 4;
  cfg.seed = 9;
  cfg.failed_racks = std::move(failed);
  return cfg;
}

workload::Workload failed_wl(const sim::SiriusSimConfig& cfg, double load,
                             std::int64_t flows) {
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = load;
  g.flow_count = flows;
  g.max_flow_size = DataSize::megabytes(2);
  g.seed = 33;
  return workload::generate(g);
}

TEST(FailoverSim, SurvivesFailedRacksEndToEnd) {
  const auto cfg = failed_net({3, 11});
  const auto w = failed_wl(cfg, 0.4, 2'000);
  sim::SiriusSim sim(cfg, w);
  const auto r = sim.run();
  // Flows between alive racks all complete; flows touching the failed
  // racks are rejected, roughly 2/16ths of endpoints twice over.
  EXPECT_EQ(r.incomplete_flows, 0);
  EXPECT_GT(r.rejected_flows, 2'000 / 16);
  EXPECT_LT(r.rejected_flows, 2'000 / 2);
  EXPECT_EQ(r.fct.completed_flows + r.rejected_flows, 2'000);
}

TEST(FailoverSim, BandwidthDegradesGracefully) {
  // At saturation, k failed racks cost roughly their share of capacity —
  // not a collapse. Compare delivered goodput among flows between alive
  // racks only (the workload includes rejected flows for both).
  const auto healthy_cfg = failed_net({});
  const auto broken_cfg = failed_net({0, 4, 8, 12});  // 4 of 16 racks
  const auto w = failed_wl(healthy_cfg, 1.5, 4'000);
  const auto healthy = sim::SiriusSim(healthy_cfg, w).run();
  const auto broken = sim::SiriusSim(broken_cfg, w).run();
  EXPECT_EQ(broken.incomplete_flows, 0);
  // 25% of racks gone removes ~44% of rack pairs; goodput (normalised by
  // the FULL fleet) must drop, but the alive portion keeps flowing.
  EXPECT_LT(broken.goodput_normalized, healthy.goodput_normalized);
  EXPECT_GT(broken.goodput_normalized, healthy.goodput_normalized * 0.3);
}

TEST(FailoverSim, NoTrafficThroughFailedRelay) {
  // With rack 5 failed, no cell may ever land at node 5 — neither as a
  // relay nor as a destination. We verify indirectly: all completed flows
  // completed, nothing incomplete (a blackholed relay would strand cells).
  const auto cfg = failed_net({5});
  const auto w = failed_wl(cfg, 0.6, 2'000);
  const auto r = sim::SiriusSim(cfg, w).run();
  EXPECT_EQ(r.incomplete_flows, 0);
}

}  // namespace
}  // namespace sirius
