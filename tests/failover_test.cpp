// Tests for the §4.5 fault-tolerance machinery: member schedules, relay
// exclusion in congestion control, end-to-end behaviour with failed racks,
// and the mid-run fault path — in-band detection, schedule swap, loss
// recovery, and rejoin.
#include <gtest/gtest.h>

#include <set>

#include "cc/request_grant.hpp"
#include "common/invariant.hpp"
#include "sched/schedule.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace sirius {
namespace {

TEST(MemberSchedule, SkipsNonMembers) {
  // Nodes {0,1,3,4,6} of a 7-node network (2 and 5 failed).
  sched::CyclicSchedule s({0, 1, 3, 4, 6}, /*uplinks=*/2);
  EXPECT_EQ(s.nodes(), 5);
  EXPECT_TRUE(s.is_member(3));
  EXPECT_FALSE(s.is_member(2));
  EXPECT_FALSE(s.is_member(5));
  // Failed nodes get no transmission slots.
  for (std::int64_t t = 0; t < 8; ++t) {
    for (UplinkId u = 0; u < 2; ++u) {
      EXPECT_EQ(s.peer_tx(2, u, t), kInvalidNode);
      EXPECT_EQ(s.peer_tx(5, u, t), kInvalidNode);
    }
  }
}

TEST(MemberSchedule, EachAlivePairOncePerRound) {
  const std::vector<NodeId> members = {0, 2, 3, 5, 7, 8, 9, 11};
  sched::CyclicSchedule s(members, 3);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (std::int64_t t = 0; t < s.slots_per_round(); ++t) {
    for (const NodeId src : members) {
      for (UplinkId u = 0; u < 3; ++u) {
        const NodeId dst = s.peer_tx(src, u, t);
        if (dst == kInvalidNode) continue;
        EXPECT_NE(dst, src);
        EXPECT_TRUE(s.is_member(dst));
        EXPECT_TRUE(seen.insert({src, dst}).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), members.size() * (members.size() - 1));
}

TEST(MemberSchedule, RxInvertsTxOnAliveSet) {
  const std::vector<NodeId> members = {1, 2, 4, 5, 6, 9};
  sched::CyclicSchedule s(members, 2);
  for (std::int64_t t = 0; t < s.slots_per_round() * 2; ++t) {
    for (const NodeId src : members) {
      for (UplinkId u = 0; u < 2; ++u) {
        const NodeId dst = s.peer_tx(src, u, t);
        if (dst == kInvalidNode) continue;
        EXPECT_EQ(s.peer_rx(dst, u, t), src);
      }
    }
  }
}

TEST(MemberSchedule, FullMembershipMatchesPlainSchedule) {
  sched::CyclicSchedule plain(12, 3);
  std::vector<NodeId> all;
  for (NodeId n = 0; n < 12; ++n) all.push_back(n);
  sched::CyclicSchedule membered(all, 3);
  for (std::int64_t t = 0; t < plain.slots_per_round(); ++t) {
    for (NodeId n = 0; n < 12; ++n) {
      for (UplinkId u = 0; u < 3; ++u) {
        EXPECT_EQ(plain.peer_tx(n, u, t), membered.peer_tx(n, u, t));
      }
    }
  }
}

TEST(CcExclusion, FailedRelayNeverRequested) {
  cc::RequestGrantNode n(0, cc::RequestGrantConfig{16, 4});
  n.exclude(7);
  n.exclude(9);
  Rng rng(1);
  // Many epochs, many cells: neither excluded node may appear.
  for (std::int64_t e = 0; e < 500; ++e) {
    std::vector<NodeId> pending(20, static_cast<NodeId>(1 + e % 15));
    for (const auto& req : n.build_requests(pending, e, rng)) {
      EXPECT_NE(req.intermediate, 7);
      EXPECT_NE(req.intermediate, 9);
    }
  }
  EXPECT_TRUE(n.is_excluded(7));
  EXPECT_FALSE(n.is_excluded(8));
}

TEST(CcExclusion, AllExcludedYieldsNoRequests) {
  cc::RequestGrantNode n(0, cc::RequestGrantConfig{3, 4});
  n.exclude(1);
  n.exclude(2);
  Rng rng(2);
  EXPECT_TRUE(n.build_requests({1, 2}, 0, rng).empty());
}

sim::SiriusSimConfig failed_net(std::vector<NodeId> failed) {
  sim::SiriusSimConfig cfg;
  cfg.racks = 16;
  cfg.servers_per_rack = 4;
  cfg.base_uplinks = 4;
  cfg.seed = 9;
  cfg.failed_racks = std::move(failed);
  return cfg;
}

workload::Workload failed_wl(const sim::SiriusSimConfig& cfg, double load,
                             std::int64_t flows) {
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = load;
  g.flow_count = flows;
  g.max_flow_size = DataSize::megabytes(2);
  g.seed = 33;
  return workload::generate(g);
}

TEST(FailoverSim, SurvivesFailedRacksEndToEnd) {
  const auto cfg = failed_net({3, 11});
  const auto w = failed_wl(cfg, 0.4, 2'000);
  sim::SiriusSim sim(cfg, w);
  const auto r = sim.run();
  // Flows between alive racks all complete; flows touching the failed
  // racks are rejected, roughly 2/16ths of endpoints twice over.
  EXPECT_EQ(r.incomplete_flows, 0);
  EXPECT_GT(r.rejected_flows, 2'000 / 16);
  EXPECT_LT(r.rejected_flows, 2'000 / 2);
  EXPECT_EQ(r.fct.completed_flows + r.rejected_flows, 2'000);
}

TEST(FailoverSim, BandwidthDegradesGracefully) {
  // At saturation, k failed racks cost roughly their share of capacity —
  // not a collapse. Compare delivered goodput among flows between alive
  // racks only (the workload includes rejected flows for both).
  const auto healthy_cfg = failed_net({});
  const auto broken_cfg = failed_net({0, 4, 8, 12});  // 4 of 16 racks
  const auto w = failed_wl(healthy_cfg, 1.5, 4'000);
  const auto healthy = sim::SiriusSim(healthy_cfg, w).run();
  const auto broken = sim::SiriusSim(broken_cfg, w).run();
  EXPECT_EQ(broken.incomplete_flows, 0);
  // 25% of racks gone removes ~44% of rack pairs; goodput (normalised by
  // the FULL fleet) must drop, but the alive portion keeps flowing.
  EXPECT_LT(broken.goodput_normalized, healthy.goodput_normalized);
  EXPECT_GT(broken.goodput_normalized, healthy.goodput_normalized * 0.3);
}

TEST(FailoverSim, NoTrafficThroughFailedRelay) {
  // With rack 5 failed, no cell may ever land at node 5 — neither as a
  // relay nor as a destination. We verify indirectly: all completed flows
  // completed, nothing incomplete (a blackholed relay would strand cells).
  const auto cfg = failed_net({5});
  const auto w = failed_wl(cfg, 0.6, 2'000);
  const auto r = sim::SiriusSim(cfg, w).run();
  EXPECT_EQ(r.incomplete_flows, 0);
}

// ---- mid-run faults: in-band detection and recovery ------------------------

sim::SiriusSimConfig faulted_net() {
  sim::SiriusSimConfig cfg;
  cfg.racks = 8;
  cfg.servers_per_rack = 4;
  cfg.base_uplinks = 4;
  cfg.seed = 7;
  cfg.record_recovery_curve = true;
  return cfg;
}

TEST(MidRunFault, HardFailureDetectedSwappedAndRecovered) {
  // Rack 3 fail-stops at 60 us under 50% load. The fabric must notice the
  // silence within miss_threshold rounds, agree within one more round,
  // swap the schedule over the alive set, retransmit what was lost, and
  // return to the pre-fault goodput. The run's own invariant auditors
  // (cell conservation with explicit drops, queue bounds, permutation)
  // execute throughout — any ledger leak aborts the test binary.
  auto cfg = faulted_net();
  cfg.faults.fail_rack(3, Time::us(60));
  const auto w = failed_wl(cfg, 0.5, 800);
  const auto r = sim::SiriusSim(cfg, w).run();
  const auto& fo = r.failover;

  ASSERT_GE(fo.detection_rounds, 1);
  EXPECT_LE(fo.detection_rounds, cfg.miss_threshold);
  ASSERT_GE(fo.dissemination_rounds, fo.detection_rounds);
  EXPECT_LE(fo.dissemination_rounds, fo.detection_rounds + 1);
  EXPECT_EQ(fo.schedule_swaps, 1);

  // Losses happened and were recovered: drops are explicit, every cell
  // not bound for the dead rack was retransmitted, and no surviving flow
  // is stranded.
  EXPECT_GT(fo.cells_dropped, 0);
  EXPECT_GT(fo.cells_retransmitted, 0);
  EXPECT_EQ(fo.retx_abandoned, 0);
  EXPECT_GT(fo.flows_aborted, 0);  // flows ending at the dead rack
  EXPECT_EQ(r.incomplete_flows, 0);

  // Goodput transient: back to >= 95% of the pre-fault baseline.
  EXPECT_FALSE(r.recovery_curve.empty());
  EXPECT_GT(fo.recovery.baseline, 0.0);
  EXPECT_TRUE(fo.recovery.recovered);
  EXPECT_FALSE(fo.recovery.time_to_recover.is_infinite());
}

TEST(MidRunFault, GreyLinkDetectedByVictimWithoutConviction) {
  // One directed link blacks out for a bounded window. Only the victim
  // observer sees the silence; with a quorum of two no healthy rack may
  // be evicted, so the schedule stays put while retransmissions repair
  // the losses — and the verdict clears once the window passes.
  auto cfg = faulted_net();
  cfg.faults.grey_link(2, 5, 1.0, Time::us(40), Time::us(120));
  const auto w = failed_wl(cfg, 0.5, 800);
  const auto r = sim::SiriusSim(cfg, w).run();
  const auto& fo = r.failover;

  // Detected in-band at the same consecutive-miss threshold a hard
  // failure would be (loss 1.0 misses every burst).
  ASSERT_GE(fo.detection_rounds, 1);
  EXPECT_LE(fo.detection_rounds, cfg.miss_threshold);

  // ... but never convicted: one observer is below the quorum.
  EXPECT_EQ(fo.schedule_swaps, 0);
  EXPECT_EQ(fo.flows_aborted, 0);
  EXPECT_EQ(fo.dissemination_rounds, -1);

  // Every burst lost on the grey link was recovered by retransmission.
  EXPECT_GT(fo.cells_retransmitted, 0);
  EXPECT_EQ(fo.retx_abandoned, 0);
  EXPECT_EQ(r.incomplete_flows, 0);
  EXPECT_TRUE(fo.recovery.recovered);
}

TEST(MidRunFault, GreyDetectionLatencyGrowsAsLossFalls) {
  // Same shape as ctrl_test's FailureDetector.GreyFailureEventuallyCaught,
  // but in the packet-level sim: the consecutive-miss detector needs a
  // geometric-tail run of losses, so a half-dead link trips the threshold
  // within a few rounds while a 10%-lossy one takes far longer — and both
  // are caught by the victim's PeerHealth alone, no oracle input.
  const auto detect_rounds = [](double loss) {
    auto cfg = faulted_net();
    cfg.faults.grey_link(2, 5, loss, Time::us(30));
    const auto w = failed_wl(cfg, 0.5, 800);
    return sim::SiriusSim(cfg, w).run().failover.detection_rounds;
  };
  const auto heavy = detect_rounds(0.5);
  const auto light = detect_rounds(0.10);
  ASSERT_GE(heavy, faulted_net().miss_threshold);  // can't be faster than k
  EXPECT_LT(heavy, 100);
  // -1 (never detected before the run drains) also satisfies the shape;
  // with this seed the run is long enough to catch it.
  ASSERT_GT(light, 0);
  EXPECT_GT(light, heavy);
}

TEST(MidRunFault, RecoveredRackRejoinsTheSchedule) {
  // The failed rack comes back 120 us later: the control plane
  // re-provisions it (§4.5 leaves rejoin to provisioning), giving a
  // second schedule swap, and traffic keeps flowing to the end.
  auto cfg = faulted_net();
  cfg.faults.fail_rack(3, Time::us(60), Time::us(180));
  const auto w = failed_wl(cfg, 0.5, 800);
  const auto r = sim::SiriusSim(cfg, w).run();
  EXPECT_EQ(r.failover.schedule_swaps, 2);
  EXPECT_EQ(r.incomplete_flows, 0);
  EXPECT_EQ(r.failover.retx_abandoned, 0);
}

TEST(MidRunFault, RunsAreBitIdenticalForSameSeedAndPlan) {
  // (config, seed, plan) fully determines the experiment — including the
  // Bernoulli draws of the grey link, which use their own RNG stream.
  auto cfg = faulted_net();
  cfg.faults.fail_rack(1, Time::us(60), Time::us(200));
  cfg.faults.grey_link(2, 5, 0.5, Time::us(30), Time::us(90));
  const auto w = failed_wl(cfg, 0.5, 600);
  const auto a = sim::SiriusSim(cfg, w).run();
  const auto b = sim::SiriusSim(cfg, w).run();

  EXPECT_EQ(a.cells_delivered, b.cells_delivered);
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
  EXPECT_EQ(a.goodput_normalized, b.goodput_normalized);  // bit-identical
  EXPECT_EQ(a.fct.short_fct_p99_ms, b.fct.short_fct_p99_ms);
  EXPECT_EQ(a.failover.cells_dropped, b.failover.cells_dropped);
  EXPECT_EQ(a.failover.cells_retransmitted, b.failover.cells_retransmitted);
  EXPECT_EQ(a.failover.duplicates_discarded, b.failover.duplicates_discarded);
  EXPECT_EQ(a.failover.detection_rounds, b.failover.detection_rounds);
  EXPECT_EQ(a.failover.schedule_swaps, b.failover.schedule_swaps);
  ASSERT_EQ(a.recovery_curve.size(), b.recovery_curve.size());
  for (std::size_t i = 0; i < a.recovery_curve.size(); ++i) {
    EXPECT_EQ(a.recovery_curve[i].goodput_normalized,
              b.recovery_curve[i].goodput_normalized);
  }
  ASSERT_EQ(a.per_flow_completion.size(), b.per_flow_completion.size());
  for (std::size_t i = 0; i < a.per_flow_completion.size(); ++i) {
    EXPECT_EQ(a.per_flow_completion[i], b.per_flow_completion[i]);
  }
}

TEST(MidRunFault, EmptyPlanIsBitIdenticalToBaseline) {
  // The failover machinery must be invisible when no fault is dynamic:
  // a run with an empty plan reproduces the plain run bit for bit (the
  // fault RNG is a separate stream precisely so this holds).
  const auto cfg = faulted_net();
  const auto w = failed_wl(cfg, 0.5, 600);
  auto plain_cfg = cfg;
  plain_cfg.record_recovery_curve = false;
  const auto plain = sim::SiriusSim(plain_cfg, w).run();
  const auto faultless = sim::SiriusSim(cfg, w).run();
  EXPECT_EQ(plain.cells_delivered, faultless.cells_delivered);
  EXPECT_EQ(plain.goodput_normalized, faultless.goodput_normalized);
  EXPECT_EQ(plain.fct.short_fct_p99_ms, faultless.fct.short_fct_p99_ms);
  EXPECT_EQ(faultless.failover.cells_dropped, 0);
  EXPECT_EQ(faultless.failover.cells_retransmitted, 0);
}

#if defined(SIRIUS_AUDIT)
TEST(CcExclusion, OutOfRangeIdsAreAuditedAndIgnored) {
  // Exclusion bookkeeping is bounds-checked: an out-of-range id trips the
  // invariant (collected here instead of aborting) and is ignored on the
  // defensive path instead of corrupting neighbouring state.
  cc::RequestGrantNode n(0, cc::RequestGrantConfig{8, 4});
  check::ScopedCollect collect;
  n.exclude(99);
  n.exclude(-1);
  n.include(99);
  EXPECT_FALSE(n.is_excluded(99));
  EXPECT_EQ(collect.violations(), 4);  // 3 calls + the is_excluded probe
  for (NodeId i = 0; i < 8; ++i) EXPECT_FALSE(n.is_excluded(i));
}
#endif

}  // namespace
}  // namespace sirius
