// Tests for the hierarchical profiler (src/telemetry/profile.*) and the
// out-of-band perf sampler (src/telemetry/perf_sampler.*): nested
// self/total attribution, path-sensitive tree nodes, the flame-style JSON
// export, phase-board publication, sampler thread lifecycle and shutdown
// ordering, and the determinism contract — a run with the sampler thread
// live and a flame export configured must be bit-identical to a bare run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/sirius_sim.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/perf_sampler.hpp"
#include "telemetry/profile.hpp"
#include "workload/generator.hpp"

namespace sirius::telemetry {
namespace {

constexpr auto kLoop = ProfScope::kSlotLoop;
constexpr auto kTx = ProfScope::kTransmit;
constexpr auto kDel = ProfScope::kDeliver;
constexpr auto kLand = ProfScope::kLandInject;

/// The tree node for `scope` under `parent_index`, or nullptr.
const Profiler::TreeNode* child_of(const Profiler& p, std::int32_t parent,
                                   ProfScope scope) {
  const auto& t = p.tree();
  for (std::int32_t i = t[static_cast<std::size_t>(parent)].first_child;
       i >= 0; i = t[static_cast<std::size_t>(i)].next_sibling) {
    if (t[static_cast<std::size_t>(i)].scope == scope) {
      return &t[static_cast<std::size_t>(i)];
    }
  }
  return nullptr;
}

TEST(Profiler, NestedScopesSplitSelfAndTotal) {
  Profiler p;
  p.enable(true);
  // slot-loop { transmit(30) transmit(20) } with 50 ns of own work.
  p.enter(kLoop);
  p.enter(kTx);
  p.exit_scope(30);
  p.enter(kTx);
  p.exit_scope(20);
  p.exit_scope(100);

  const auto* loop = child_of(p, 0, kLoop);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->calls, 1u);
  EXPECT_EQ(loop->total_nanos, 100u);
  EXPECT_EQ(loop->child_nanos, 50u);
  EXPECT_EQ(loop->self_nanos(), 50u);

  const std::int32_t loop_idx =
      static_cast<std::int32_t>(loop - p.tree().data());
  const auto* tx = child_of(p, loop_idx, kTx);
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->calls, 2u);
  EXPECT_EQ(tx->total_nanos, 50u);
  EXPECT_EQ(tx->self_nanos(), 50u);
  EXPECT_EQ(tx->max_nanos, 30u);

  // The flat table still aggregates path-insensitively.
  EXPECT_EQ(p.stats(kTx).calls, 2u);
  EXPECT_EQ(p.stats(kTx).total_nanos, 50u);
  EXPECT_EQ(p.stats(kLoop).total_nanos, 100u);
}

TEST(Profiler, SameScopeUnderDifferentParentsGetsDistinctNodes) {
  Profiler p;
  p.enable(true);
  p.enter(kTx);
  p.enter(kDel);
  p.exit_scope(7);
  p.exit_scope(10);
  p.enter(kLand);
  p.enter(kDel);
  p.exit_scope(5);
  p.exit_scope(8);

  const auto* tx = child_of(p, 0, kTx);
  const auto* land = child_of(p, 0, kLand);
  ASSERT_NE(tx, nullptr);
  ASSERT_NE(land, nullptr);
  const auto* del_under_tx = child_of(
      p, static_cast<std::int32_t>(tx - p.tree().data()), kDel);
  const auto* del_under_land = child_of(
      p, static_cast<std::int32_t>(land - p.tree().data()), kDel);
  ASSERT_NE(del_under_tx, nullptr);
  ASSERT_NE(del_under_land, nullptr);
  EXPECT_NE(del_under_tx, del_under_land);
  EXPECT_EQ(del_under_tx->total_nanos, 7u);
  EXPECT_EQ(del_under_land->total_nanos, 5u);
  // Flat view merges the two paths.
  EXPECT_EQ(p.stats(kDel).calls, 2u);
  EXPECT_EQ(p.stats(kDel).total_nanos, 12u);
}

TEST(Profiler, SelfTimeNeverUnderflows) {
  Profiler p;
  p.enable(true);
  // Child reports more time than the parent (clock granularity can do
  // this for near-zero scopes): self clamps at zero instead of wrapping.
  p.enter(kLoop);
  p.enter(kTx);
  p.exit_scope(100);
  p.exit_scope(50);
  const auto* loop = child_of(p, 0, kLoop);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->self_nanos(), 0u);
}

TEST(Profiler, SpuriousExitIsIgnored) {
  Profiler p;
  p.enable(true);
  p.exit_scope(123);  // no open scope: must not crash or account anything
  p.enter(kTx);
  p.exit_scope(5);
  p.exit_scope(99);  // tree is back at the root: ignored too
  EXPECT_EQ(p.stats(kTx).total_nanos, 5u);
  const auto* tx = child_of(p, 0, kTx);
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->total_nanos, 5u);
}

TEST(Profiler, DisabledProfilerDoesNothing) {
  Profiler p;
  ASSERT_FALSE(p.enabled());
  p.enter(kLoop);
  p.exit_scope(100);
  EXPECT_TRUE(p.tree().empty());
  EXPECT_EQ(p.stats(kLoop).calls, 0u);
  { ScopedTimer t(p, kTx); }
  EXPECT_TRUE(p.tree().empty());
  EXPECT_TRUE(p.table().empty());
}

TEST(Profiler, FlameJsonExportsTheTree) {
  Profiler p;
  p.enable(true);
  p.enter(kLoop);
  p.enter(kTx);
  p.exit_scope(30);
  p.exit_scope(100);
  const std::string flame = p.flame_json();
  EXPECT_NE(flame.find("\"name\": \"root\""), std::string::npos);
  EXPECT_NE(flame.find("\"name\": \"slot-loop\""), std::string::npos);
  EXPECT_NE(flame.find("\"name\": \"transmit\""), std::string::npos);
  // Root covers its children: the only top-level scope contributed 100.
  EXPECT_NE(flame.find("\"total_ns\": 100"), std::string::npos);
  EXPECT_NE(flame.find("\"self_ns\": 70"), std::string::npos);
}

TEST(Profiler, PublishesScopeExitsToPhaseBoard) {
  Profiler p;
  PhaseBoard board;
  p.enable(true);
  p.publish_to(&board);
  p.enter(kTx);
  p.exit_scope(40);
  p.enter(kTx);
  p.exit_scope(2);
  const auto idx = static_cast<std::size_t>(kTx);
  EXPECT_EQ(board.nanos[idx].load(std::memory_order_relaxed), 42u);
  EXPECT_EQ(board.calls[idx].load(std::memory_order_relaxed), 2u);
  p.publish_to(nullptr);
  p.enter(kTx);
  p.exit_scope(1);
  EXPECT_EQ(board.nanos[idx].load(std::memory_order_relaxed), 42u);
}

TEST(PerfSampler, CollectsCumulativeSamplesAndStopsCleanly) {
  PerfSampler sampler;
  Profiler p;
  p.enable(true);
  p.publish_to(&sampler.board());
  sampler.start(100);
  EXPECT_TRUE(sampler.running());
  EXPECT_TRUE(sampler.started());
  p.enter(kLoop);
  p.exit_scope(1234);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_TRUE(sampler.started());

  // The final snapshot (taken inside stop()) guarantees at least one
  // sample and end-of-run totals, however short the run was.
  ASSERT_GE(sampler.samples().size(), 1u);
  const auto& last = sampler.samples().back();
  const auto idx = static_cast<std::size_t>(kLoop);
  EXPECT_EQ(last.nanos[idx], 1234u);
  EXPECT_EQ(last.calls[idx], 1u);
  // Cumulative counters are monotone across samples.
  for (std::size_t i = 1; i < sampler.samples().size(); ++i) {
    EXPECT_GE(sampler.samples()[i].wall_ns,
              sampler.samples()[i - 1].wall_ns);
    EXPECT_GE(sampler.samples()[i].nanos[idx],
              sampler.samples()[i - 1].nanos[idx]);
  }

  const std::string json = sampler.samples_json();
  EXPECT_NE(json.find("\"schema\": \"sirius.oob.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"slot-loop\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
}

TEST(PerfSampler, StopIsIdempotentAndSafeBeforeStart) {
  {
    PerfSampler never_started;
    never_started.stop();  // no thread: must be a no-op
    EXPECT_FALSE(never_started.started());
    EXPECT_TRUE(never_started.samples().empty());
  }
  PerfSampler sampler;
  sampler.start(100);
  sampler.stop();
  const auto n = sampler.samples().size();
  sampler.stop();  // second stop: no new samples, no crash
  EXPECT_EQ(sampler.samples().size(), n);
  // Destructor runs stop() once more on scope exit — also idempotent.
}

TEST(PerfSampler, RestartAfterStopIsIgnoredWhileRunning) {
  PerfSampler sampler;
  sampler.start(100);
  sampler.start(100000);  // already running: no-op, keeps first cadence
  sampler.stop();
  ASSERT_GE(sampler.samples().size(), 1u);
}

// The determinism contract, end to end: a simulation with the profiler
// live, the out-of-band sampler thread snapshotting at 200 host-us, and a
// flame export configured must produce bit-identical results to a bare
// run of the same config and workload.
TEST(PerfObservability, InstrumentedRunIsBitIdentical) {
  sim::SiriusSimConfig cfg;
  cfg.racks = 8;
  cfg.servers_per_rack = 2;
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = 0.4;
  g.flow_count = 300;
  const auto w = workload::generate(g);

  sim::SiriusSimResult bare = sim::SiriusSim(cfg, w).run();

  const auto flame_path =
      std::filesystem::temp_directory_path() / "sirius_profile_test_flame.json";
  TelemetryConfig tcfg;
  tcfg.profile = true;
  tcfg.oob_sample_us = 200;
  tcfg.flame_out = flame_path.string();
  Hub hub(tcfg);
  auto icfg = cfg;
  icfg.telemetry = &hub;
  sim::SiriusSimResult inst = sim::SiriusSim(icfg, w).run();
  const auto artifacts = hub.finish();

  EXPECT_EQ(inst.slots_simulated, bare.slots_simulated);
  EXPECT_EQ(inst.cells_delivered, bare.cells_delivered);
  EXPECT_EQ(inst.incomplete_flows, bare.incomplete_flows);
  EXPECT_EQ(inst.requests_sent, bare.requests_sent);
  EXPECT_EQ(inst.grants_issued, bare.grants_issued);
  ASSERT_EQ(inst.per_flow_completion.size(), bare.per_flow_completion.size());
  for (std::size_t i = 0; i < bare.per_flow_completion.size(); ++i) {
    EXPECT_EQ(inst.per_flow_completion[i].picoseconds(),
              bare.per_flow_completion[i].picoseconds())
        << "flow " << i;
  }

  // The sampler ran and the flame artifact was written.
  EXPECT_FALSE(hub.oob_sampler().running());
  EXPECT_GE(hub.oob_sampler().samples().size(), 1u);
  bool flame_written = false;
  for (const auto& a : artifacts) {
    if (a.kind == "flame") flame_written = a.ok;
  }
  EXPECT_TRUE(flame_written);
#if defined(SIRIUS_TELEMETRY)
  // With the scope macros compiled in, the export carries the hot loop.
  std::ifstream in(flame_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("slot-loop"), std::string::npos);
#endif
  std::error_code ec;
  std::filesystem::remove(flame_path, ec);
}

}  // namespace
}  // namespace sirius::telemetry
