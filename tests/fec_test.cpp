// Tests for the Reed-Solomon FEC (fec/): GF(256) arithmetic, encode/decode
// round trips, correction up to t errors, detection beyond.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fec/gf256.hpp"
#include "fec/reed_solomon.hpp"

namespace sirius::fec {
namespace {

TEST(Gf256, FieldAxiomsSpotChecks) {
  // Addition is XOR.
  EXPECT_EQ(Gf256::add(0x53, 0xca), 0x53 ^ 0xca);
  // 1 is the multiplicative identity; 0 annihilates.
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(x), 1), x);
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(x), 0), 0);
  }
}

TEST(Gf256, MulDivInverse) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_EQ(Gf256::div(Gf256::mul(a, b), b), a);
  }
  for (int x = 1; x < 256; ++x) {
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(x),
                         Gf256::inv(static_cast<std::uint8_t>(x))),
              1);
  }
}

TEST(Gf256, ExpLogConsistent) {
  for (int p = 0; p < 255; ++p) {
    EXPECT_EQ(Gf256::log(Gf256::exp(p)), p);
  }
  EXPECT_EQ(Gf256::exp(255), Gf256::exp(0));  // alpha^255 = 1
  EXPECT_EQ(Gf256::exp(-1), Gf256::exp(254));
}

TEST(Gf256, KnownProducts) {
  // alpha = 2 with polynomial 0x11d: 2*128 = 0x11d & 0xff = 29.
  EXPECT_EQ(Gf256::mul(2, 128), 29);
  // Distributivity spot check: a*(b+c) == a*b + a*c.
  EXPECT_EQ(Gf256::mul(0x57, Gf256::add(0x13, 0xb2)),
            Gf256::add(Gf256::mul(0x57, 0x13), Gf256::mul(0x57, 0xb2)));
}

ReedSolomon small_rs() { return ReedSolomon(32, 24); }  // t = 4

std::vector<std::uint8_t> random_data(std::int32_t k, Rng& rng) {
  std::vector<std::uint8_t> d(static_cast<std::size_t>(k));
  for (auto& b : d) b = static_cast<std::uint8_t>(rng.below(256));
  return d;
}

TEST(ReedSolomon, CleanRoundTrip) {
  const auto rs = small_rs();
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto data = random_data(rs.k(), rng);
    const auto code = rs.encode(data);
    EXPECT_EQ(code.size(), static_cast<std::size_t>(rs.n()));
    const auto decoded = rs.decode(code);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
    EXPECT_EQ(rs.last_corrections(), 0);
  }
}

TEST(ReedSolomon, CorrectsUpToTErrors) {
  const auto rs = small_rs();
  Rng rng(3);
  for (std::int32_t errs = 1; errs <= rs.t(); ++errs) {
    for (int trial = 0; trial < 40; ++trial) {
      const auto data = random_data(rs.k(), rng);
      auto code = rs.encode(data);
      // Corrupt `errs` distinct positions anywhere in the codeword.
      std::vector<std::size_t> positions;
      while (positions.size() < static_cast<std::size_t>(errs)) {
        const auto p = static_cast<std::size_t>(rng.below(
            static_cast<std::uint64_t>(rs.n())));
        if (std::find(positions.begin(), positions.end(), p) ==
            positions.end()) {
          positions.push_back(p);
        }
      }
      for (const auto p : positions) {
        code[p] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
      const auto decoded = rs.decode(code);
      ASSERT_TRUE(decoded.has_value())
          << errs << " errors, trial " << trial;
      EXPECT_EQ(*decoded, data);
      EXPECT_EQ(rs.last_corrections(), errs);
    }
  }
}

TEST(ReedSolomon, DetectsBeyondT) {
  // t+1 ... 2t errors: must not silently mis-decode. (Patterns beyond 2t
  // can alias into a different codeword — that is fundamental, not a bug.)
  const auto rs = small_rs();
  Rng rng(4);
  int failures = 0, trials = 0;
  for (std::int32_t errs = rs.t() + 1; errs <= 2 * rs.t(); ++errs) {
    for (int trial = 0; trial < 25; ++trial) {
      const auto data = random_data(rs.k(), rng);
      auto code = rs.encode(data);
      for (std::int32_t e = 0; e < errs; ++e) {
        code[static_cast<std::size_t>(e * 2)] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
      const auto decoded = rs.decode(code);
      ++trials;
      if (!decoded.has_value()) {
        ++failures;  // detected: good
      } else {
        // If it "succeeded", it must not return the original data wrongly
        // attributed — a different valid codeword is possible but rare.
        EXPECT_NE(*decoded, data);
      }
    }
  }
  // The vast majority of beyond-t patterns are detected.
  EXPECT_GT(failures, trials * 8 / 10);
}

TEST(ReedSolomon, Kp4LikeProfile) {
  const auto rs = ReedSolomon::kp4_like();
  EXPECT_EQ(rs.t(), 15);
  EXPECT_NEAR(rs.rate(), 224.0 / 254.0, 1e-12);
  Rng rng(5);
  const auto data = random_data(rs.k(), rng);
  auto code = rs.encode(data);
  for (int e = 0; e < 15; ++e) {
    code[static_cast<std::size_t>(e * 16)] ^= 0x5a;
  }
  const auto decoded = rs.decode(code);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, ParityOnlyErrorsAlsoCorrected) {
  const auto rs = small_rs();
  Rng rng(6);
  const auto data = random_data(rs.k(), rng);
  auto code = rs.encode(data);
  code[static_cast<std::size_t>(rs.k())] ^= 0xff;      // first parity byte
  code[static_cast<std::size_t>(rs.n() - 1)] ^= 0x01;  // last parity byte
  const auto decoded = rs.decode(code);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

}  // namespace
}  // namespace sirius::fec
