// Checkpoint/restore tests: `sirius.ckpt.v1` framing and corruption
// rejection, full-simulator snapshot round-trips, and the determinism
// contract — a run resumed from a checkpoint taken *inside* a grey-link
// fault window is bit-identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/time.hpp"
#include "sim/sirius_sim.hpp"
#include "workload/generator.hpp"

namespace sirius {
namespace {

namespace fs = std::filesystem;

// ---- file framing ----------------------------------------------------------

TEST(CkptFrame, RoundTripPreservesPayload) {
  const std::string payload = "hello checkpoint \x00\x01\xff payload";
  const std::string file = ckpt::frame(payload);
  EXPECT_EQ(file.size(), payload.size() + 24);
  const ckpt::LoadResult r = ckpt::parse(file);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.payload, payload);
}

TEST(CkptFrame, SaveThenLoadRoundTrips) {
  const fs::path path = fs::temp_directory_path() / "sirius_ckpt_rt.ckpt";
  std::string error;
  ASSERT_TRUE(ckpt::save(path, "abc123", &error)) << error;
  const ckpt::LoadResult r = ckpt::load(path);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.payload, "abc123");
  fs::remove(path);
}

TEST(CkptFrame, MissingFileIsIoError) {
  const ckpt::LoadResult r =
      ckpt::load(fs::temp_directory_path() / "sirius_ckpt_nonexistent.ckpt");
  EXPECT_EQ(r.status, ckpt::LoadStatus::kIoError);
  EXPECT_FALSE(r.message.empty());
}

// Every corruption class is rejected with its own status and a non-empty
// one-line diagnostic; none of them may crash (asan/ubsan builds run this
// same binary).
TEST(CkptFrame, CorruptionMatrix) {
  const std::string good = ckpt::frame("determinism is a feature");

  EXPECT_EQ(ckpt::parse("").status, ckpt::LoadStatus::kEmptyFile);

  EXPECT_EQ(ckpt::parse(good.substr(0, 10)).status,
            ckpt::LoadStatus::kTruncatedHeader);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(ckpt::parse(bad_magic).status, ckpt::LoadStatus::kBadMagic);

  std::string bad_version = good;
  bad_version[8] = 0x7f;  // claims format version 127
  EXPECT_EQ(ckpt::parse(bad_version).status, ckpt::LoadStatus::kBadVersion);

  EXPECT_EQ(ckpt::parse(good.substr(0, good.size() - 1)).status,
            ckpt::LoadStatus::kTruncatedPayload);

  std::string flipped = good;
  flipped[24] = static_cast<char>(flipped[24] ^ 0x40);  // payload bit-flip
  EXPECT_EQ(ckpt::parse(flipped).status, ckpt::LoadStatus::kCrcMismatch);

  // Distinct classes produce distinct messages.
  const std::string m1 = ckpt::parse("").message;
  const std::string m2 = ckpt::parse(bad_magic).message;
  const std::string m3 = ckpt::parse(flipped).message;
  EXPECT_FALSE(m1.empty());
  EXPECT_NE(m1, m2);
  EXPECT_NE(m2, m3);
  EXPECT_NE(m1, m3);
}

// ---- simulator snapshots ---------------------------------------------------

sim::SiriusSimConfig small_net() {
  sim::SiriusSimConfig cfg;
  cfg.racks = 4;
  cfg.servers_per_rack = 2;
  cfg.base_uplinks = 2;
  cfg.seed = 5;
  return cfg;
}

workload::Workload make_wl(const sim::SiriusSimConfig& cfg, double load,
                           std::int64_t flows) {
  workload::GeneratorConfig g;
  g.servers = cfg.servers();
  g.server_rate = cfg.server_share();
  g.load = load;
  g.flow_count = flows;
  g.max_flow_size = DataSize::megabytes(2);
  g.seed = 33;
  return workload::generate(g);
}

TEST(CkptSim, FreshStateRoundTripsBitIdentical) {
  const auto cfg = small_net();
  const auto w = make_wl(cfg, 0.3, 50);
  sim::SiriusSim a(cfg, w);
  const std::string snap = a.checkpoint_state();
  ASSERT_FALSE(snap.empty());

  sim::SiriusSim b(cfg, w);
  std::string error;
  ASSERT_TRUE(b.restore_state(snap, &error)) << error;
  EXPECT_EQ(b.checkpoint_state(), snap);
}

TEST(CkptSim, RestoreRejectsGarbageWithoutCrashing) {
  const auto cfg = small_net();
  const auto w = make_wl(cfg, 0.3, 50);
  sim::SiriusSim s(cfg, w);
  std::string error;
  EXPECT_FALSE(s.restore_state("this is not a checkpoint", &error));
  EXPECT_FALSE(error.empty());
}

TEST(CkptSim, RestoreRejectsEveryTruncation) {
  const auto cfg = small_net();
  const auto w = make_wl(cfg, 0.3, 50);
  sim::SiriusSim a(cfg, w);
  const std::string snap = a.checkpoint_state();

  sim::SiriusSim b(cfg, w);
  const std::size_t cuts[] = {0, 1, 7, snap.size() / 3, snap.size() - 1};
  for (const std::size_t cut : cuts) {
    std::string error;
    EXPECT_FALSE(b.restore_state(std::string_view(snap).substr(0, cut),
                                 &error))
        << "truncation at " << cut << " bytes was accepted";
    EXPECT_FALSE(error.empty());
  }
}

TEST(CkptSim, RestoreSurvivesArbitraryByteFlips) {
  // Hostile-input sweep: flip one byte at a stride of positions across a
  // valid payload. Restore may accept (the flip hit a value with no
  // validation range, e.g. a statistic) or reject — but it must never
  // crash or read out of bounds. The target sim is reused on purpose: a
  // failed restore leaves it unfit to *run*, but always safe to restore
  // into again.
  const auto cfg = small_net();
  const auto w = make_wl(cfg, 0.3, 50);
  sim::SiriusSim a(cfg, w);
  const std::string snap = a.checkpoint_state();

  sim::SiriusSim b(cfg, w);
  for (std::size_t pos = 0; pos < snap.size(); pos += 211) {
    std::string mutated = snap;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xa5);
    std::string error;
    (void)b.restore_state(mutated, &error);
  }
}

TEST(CkptSim, RestoreRejectsMismatchedWorkload) {
  const auto cfg = small_net();
  const auto w = make_wl(cfg, 0.3, 50);
  sim::SiriusSim a(cfg, w);
  const std::string snap = a.checkpoint_state();

  const auto w2 = make_wl(cfg, 0.3, 60);  // different workload
  sim::SiriusSim b(cfg, w2);
  std::string error;
  EXPECT_FALSE(b.restore_state(snap, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(CkptSim, RestoreRejectsFaultDynamismMismatch) {
  auto cfg = small_net();
  const auto w = make_wl(cfg, 0.3, 50);
  sim::SiriusSim plain(cfg, w);

  auto faulted_cfg = cfg;
  faulted_cfg.faults.fail_rack(2, Time::us(60));
  sim::SiriusSim faulted(faulted_cfg, w);

  std::string error;
  EXPECT_FALSE(faulted.restore_state(plain.checkpoint_state(), &error));
  EXPECT_NE(error.find("fault"), std::string::npos) << error;
}

// ---- the determinism contract ----------------------------------------------

struct Snap {
  std::int64_t slot = 0;
  Time at;
  std::string payload;
};

sim::SiriusSimConfig faulted_net() {
  sim::SiriusSimConfig cfg;
  cfg.racks = 8;
  cfg.servers_per_rack = 4;
  cfg.base_uplinks = 4;
  cfg.seed = 7;
  cfg.record_recovery_curve = true;
  // Rack 3 fail-stops at 60 us; link 2->5 goes fully grey 100-160 us. The
  // restore point below lands inside that window, so the resumed run must
  // reproduce detector counters, retransmission timers and the Bernoulli
  // stream mid-episode.
  cfg.faults.fail_rack(3, Time::us(60));
  cfg.faults.grey_link(2, 5, 1.0, Time::us(100), Time::us(160));
  return cfg;
}

TEST(CkptDeterminism, ResumeMidGreyFaultIsBitIdentical) {
  auto cfg_a = faulted_net();
  const auto w = make_wl(cfg_a, 0.5, 400);

  std::vector<Snap> snaps_a;
  cfg_a.checkpoint_every = Time::us(25);
  cfg_a.checkpoint_sink = [&snaps_a](std::int64_t slot, Time at,
                                     const std::string& payload) {
    snaps_a.push_back({slot, at, payload});
  };
  sim::SiriusSim a(cfg_a, w);
  const auto ra = a.run();

  // Pick the snapshot inside the grey window.
  std::size_t idx = snaps_a.size();
  for (std::size_t i = 0; i < snaps_a.size(); ++i) {
    if (snaps_a[i].at >= Time::us(110) && snaps_a[i].at <= Time::us(150)) {
      idx = i;
      break;
    }
  }
  ASSERT_LT(idx, snaps_a.size())
      << "run ended before the grey window; grow the workload";

  auto cfg_b = faulted_net();
  std::vector<Snap> snaps_b;
  cfg_b.checkpoint_every = Time::us(25);
  cfg_b.checkpoint_sink = [&snaps_b](std::int64_t slot, Time at,
                                     const std::string& payload) {
    snaps_b.push_back({slot, at, payload});
  };
  sim::SiriusSim b(cfg_b, w);
  std::string error;
  ASSERT_TRUE(b.restore_state(snaps_a[idx].payload, &error)) << error;
  const auto rb = b.run();

  // The resumed run emits exactly the straight run's remaining
  // checkpoints, byte for byte — full simulator state (queues, RNG
  // streams, detectors, retx heap, telemetry) matches at every later
  // cadence point, not just at the end.
  ASSERT_EQ(snaps_b.size(), snaps_a.size() - idx - 1);
  for (std::size_t i = 0; i < snaps_b.size(); ++i) {
    EXPECT_EQ(snaps_b[i].slot, snaps_a[idx + 1 + i].slot);
    EXPECT_EQ(snaps_b[i].payload, snaps_a[idx + 1 + i].payload)
        << "state diverged by checkpoint at slot " << snaps_b[i].slot;
  }

  // And the end-of-run results agree exactly.
  EXPECT_EQ(rb.slots_simulated, ra.slots_simulated);
  EXPECT_EQ(rb.cells_delivered, ra.cells_delivered);
  EXPECT_EQ(rb.incomplete_flows, ra.incomplete_flows);
  EXPECT_EQ(rb.rejected_flows, ra.rejected_flows);
  EXPECT_EQ(rb.goodput_normalized, ra.goodput_normalized);
  EXPECT_EQ(rb.fct.short_fct_p99_ms, ra.fct.short_fct_p99_ms);
  EXPECT_EQ(rb.failover.cells_dropped, ra.failover.cells_dropped);
  EXPECT_EQ(rb.failover.cells_retransmitted,
            ra.failover.cells_retransmitted);
  EXPECT_EQ(rb.failover.schedule_swaps, ra.failover.schedule_swaps);
  EXPECT_EQ(rb.failover.detection_rounds, ra.failover.detection_rounds);
  ASSERT_EQ(rb.per_flow_completion.size(), ra.per_flow_completion.size());
  for (std::size_t i = 0; i < ra.per_flow_completion.size(); ++i) {
    EXPECT_EQ(rb.per_flow_completion[i], ra.per_flow_completion[i])
        << "flow " << i << " completion time diverged";
  }
}

TEST(CkptDeterminism, ForkReseedDivergesAndReproduces) {
  auto cfg = faulted_net();
  const auto w = make_wl(cfg, 0.5, 400);

  std::vector<Snap> snaps;
  cfg.checkpoint_every = Time::us(50);
  cfg.checkpoint_sink = [&snaps](std::int64_t slot, Time at,
                                 const std::string& payload) {
    snaps.push_back({slot, at, payload});
  };
  sim::SiriusSim(cfg, w).run();
  ASSERT_FALSE(snaps.empty());
  const std::string& base = snaps.front().payload;

  auto fork_cfg = faulted_net();
  auto fork = [&](std::uint64_t salt) {
    sim::SiriusSim s(fork_cfg, w);
    std::string error;
    EXPECT_TRUE(s.restore_state(base, &error)) << error;
    s.reseed_streams(salt);
    const auto r = s.run();
    return r;
  };

  const auto f1 = fork(1);
  const auto f1_again = fork(1);
  const auto f2 = fork(2);

  // Same salt: the fork is itself deterministic.
  EXPECT_EQ(f1.cells_delivered, f1_again.cells_delivered);
  EXPECT_EQ(f1.slots_simulated, f1_again.slots_simulated);
  EXPECT_EQ(f1.goodput_normalized, f1_again.goodput_normalized);
  // Different salts explore different futures from the same state. The
  // delivered-cell ledger is workload-fixed, so compare the schedule- and
  // rng-sensitive outcomes.
  EXPECT_TRUE(f1.slots_simulated != f2.slots_simulated ||
              f1.fct.short_fct_p99_ms != f2.fct.short_fct_p99_ms ||
              f1.goodput_normalized != f2.goodput_normalized);
}

}  // namespace
}  // namespace sirius
