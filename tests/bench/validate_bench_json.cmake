# CTest driver for the `sirius.bench.v1` artifact contract. Invoked as:
#
#   cmake -DPERF_BENCH=<perf_bench exe> -DOUT_DIR=<scratch dir>
#         -P validate_bench_json.cmake
#
# Runs `perf_bench --quick --flame` once, then JSON-validates both
# artifacts with CMake's string(JSON) parser:
#   * the document is schema sirius.bench.v1 with a provenance block
#     (git sha, compiler, build type) and a positive calibration figure,
#   * every config entry carries the pinned metric set (wall_ns_per_slot,
#     cells_per_sec, RSS-over-baseline),
#   * the telemetry-on entry asserts the bit-identical determinism
#     contract and saw out-of-band sampler snapshots,
#   * the flame export is a rooted tree whose root total covers its
#     children.
file(MAKE_DIRECTORY ${OUT_DIR})
set(BENCH_JSON ${OUT_DIR}/bench.json)
set(FLAME_JSON ${OUT_DIR}/flame.json)

execute_process(
  COMMAND ${PERF_BENCH} --quick --out ${BENCH_JSON} --flame ${FLAME_JSON}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "perf_bench failed (exit ${rc}):\n${out}${err}")
endif()

# ---- bench document ---------------------------------------------------------
file(READ ${BENCH_JSON} doc)
string(JSON schema GET "${doc}" schema)
if(NOT schema STREQUAL "sirius.bench.v1")
  message(FATAL_ERROR "schema is '${schema}', expected sirius.bench.v1")
endif()
string(JSON quick GET "${doc}" quick)
if(NOT quick STREQUAL "ON")
  message(FATAL_ERROR "quick flag is '${quick}', expected true")
endif()
string(JSON cal GET "${doc}" calibration_ns)
if(cal LESS_EQUAL 0)
  message(FATAL_ERROR "calibration_ns = ${cal}, expected > 0")
endif()
foreach(key git_sha build_type compiler)
  string(JSON v GET "${doc}" provenance ${key})
  if(v STREQUAL "")
    message(FATAL_ERROR "provenance.${key} is empty")
  endif()
endforeach()
string(JSON tele GET "${doc}" provenance sirius_telemetry)

string(JSON n LENGTH "${doc}" configs)
if(n LESS 5)
  message(FATAL_ERROR "quick suite emitted ${n} configs, expected >= 5")
endif()
math(EXPR last "${n} - 1")
set(saw_on FALSE)
foreach(i RANGE ${last})
  string(JSON name GET "${doc}" configs ${i} name)
  foreach(key slots_simulated cells_delivered wall_ns wall_ns_per_slot
              cells_per_sec)
    string(JSON v GET "${doc}" configs ${i} ${key})
    if(v LESS_EQUAL 0)
      message(FATAL_ERROR "config ${name}: ${key} = ${v}, expected > 0")
    endif()
  endforeach()
  foreach(key baseline_rss_kb peak_rss_delta_kb)
    string(JSON v GET "${doc}" configs ${i} ${key})
    if(v LESS 0)
      message(FATAL_ERROR "config ${name}: ${key} = ${v}, expected >= 0")
    endif()
  endforeach()
  if(name MATCHES "telemetry_on")
    set(saw_on TRUE)
    string(JSON ident GET "${doc}" configs ${i} bit_identical)
    if(NOT ident STREQUAL "ON")
      message(FATAL_ERROR
        "config ${name}: bit_identical = ${ident} — the instrumented run "
        "diverged from the bare run")
    endif()
    string(JSON oob GET "${doc}" configs ${i} oob_samples)
    if(oob LESS 1)
      message(FATAL_ERROR
        "config ${name}: oob_samples = ${oob}, expected >= 1 (sampler "
        "thread never snapshotted)")
    endif()
  endif()
endforeach()
if(NOT saw_on)
  message(FATAL_ERROR "no telemetry_on config in the quick suite")
endif()

# ---- flame export -----------------------------------------------------------
# Only meaningful when the profiling scopes are compiled in; a telemetry-off
# build legitimately produces an empty tree.
if(NOT tele STREQUAL "ON")
  message(STATUS "telemetry compiled out; skipping flame validation")
  return()
endif()
file(READ ${FLAME_JSON} flame)
string(JSON root_name GET "${flame}" name)
if(NOT root_name STREQUAL "root")
  message(FATAL_ERROR "flame root is '${root_name}', expected 'root'")
endif()
string(JSON root_total GET "${flame}" total_ns)
if(root_total LESS_EQUAL 0)
  message(FATAL_ERROR "flame root total_ns = ${root_total}, expected > 0")
endif()
string(JSON n_children LENGTH "${flame}" children)
if(n_children LESS 1)
  message(FATAL_ERROR "flame root has no children — no scope ever ran")
endif()
string(JSON child_total GET "${flame}" children 0 total_ns)
if(child_total GREATER root_total)
  message(FATAL_ERROR
    "flame child total ${child_total} exceeds root total ${root_total}")
endif()
