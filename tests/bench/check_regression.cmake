# CTest driver for the perf regression gate. Invoked as:
#
#   cmake -DPERF_BENCH=<perf_bench exe> -DBASELINE=<BENCH_<n>.json>
#         -DOUT_DIR=<scratch dir> [-DEXPECT=pass|fail]
#         [-DINJECT_SPIN_NS=<n>] [-DONLY=<substr>] -P check_regression.cmake
#
# Runs `perf_bench --quick` and compares each config's wall_ns_per_slot
# against the committed baseline, matched by name. A config regresses when
#
#   fresh > baseline * 1.10 * scale + 2000 ns
#
# where `scale` is the ratio of the two runs' calibration_ns figures
# (clamped to [0.25, 4]) — a fixed CPU workload timed in both documents,
# so a baseline committed on a faster machine does not fail every CI box.
# The 2000 ns floor keeps sub-microsecond jitter on tiny configs from
# tripping the 10 % band. A failing comparison is retried once with a
# fresh run before it is fatal (one-off host noise, not a trend).
#
# EXPECT=fail inverts the verdict: the run must regress (the gate's
# self-test injects a deliberate slowdown via INJECT_SPIN_NS and asserts
# the gate catches it — no retry in this mode).

if(NOT DEFINED EXPECT)
  set(EXPECT pass)
endif()
set(TOLERANCE_PCT 110)   # pass band: baseline * 110 %
set(FLOOR_NS 2000)       # plus this absolute slack
file(MAKE_DIRECTORY ${OUT_DIR})

file(READ ${BASELINE} baseline)
string(JSON base_schema GET "${baseline}" schema)
if(NOT base_schema STREQUAL "sirius.bench.v1")
  message(FATAL_ERROR
    "baseline schema is '${base_schema}', expected sirius.bench.v1")
endif()
string(JSON base_cal GET "${baseline}" calibration_ns)
string(JSON n_base LENGTH "${baseline}" configs)

# Runs perf_bench into ${OUT_DIR}/fresh_<tag>.json and sets
# regressions_<tag> to a list of "name: fresh vs limit" strings.
function(run_and_compare tag)
  set(fresh_path ${OUT_DIR}/fresh_${tag}.json)
  set(cmd ${PERF_BENCH} --quick --out ${fresh_path})
  if(DEFINED ONLY AND NOT ONLY STREQUAL "")
    list(APPEND cmd --only ${ONLY})
  endif()
  if(DEFINED INJECT_SPIN_NS AND NOT INJECT_SPIN_NS STREQUAL "")
    list(APPEND cmd --inject-spin-ns ${INJECT_SPIN_NS})
  endif()
  execute_process(COMMAND ${cmd}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "perf_bench failed (exit ${rc}):\n${out}${err}")
  endif()
  file(READ ${fresh_path} fresh)

  # Machine-speed scale as an integer percentage, clamped to [25, 400].
  string(JSON fresh_cal GET "${fresh}" calibration_ns)
  math(EXPR scale_pct "(${fresh_cal} * 100) / ${base_cal}")
  if(scale_pct LESS 25)
    set(scale_pct 25)
  elseif(scale_pct GREATER 400)
    set(scale_pct 400)
  endif()

  set(regressions "")
  set(compared 0)
  string(JSON n_fresh LENGTH "${fresh}" configs)
  math(EXPR last "${n_fresh} - 1")
  foreach(i RANGE ${last})
    string(JSON name GET "${fresh}" configs ${i} name)
    string(JSON fresh_ns GET "${fresh}" configs ${i} wall_ns_per_slot)
    # Find the same config in the baseline (order is not part of the
    # contract; names are).
    set(base_ns "")
    math(EXPR base_last "${n_base} - 1")
    foreach(j RANGE ${base_last})
      string(JSON bname GET "${baseline}" configs ${j} name)
      if(bname STREQUAL name)
        string(JSON base_ns GET "${baseline}" configs ${j} wall_ns_per_slot)
        break()
      endif()
    endforeach()
    if(base_ns STREQUAL "")
      continue()  # new config, no baseline yet
    endif()
    # Integer maths over truncated ns (values are thousands of ns; the
    # sub-ns fraction is noise either way).
    string(REGEX MATCH "^[0-9]+" fresh_int "${fresh_ns}")
    string(REGEX MATCH "^[0-9]+" base_int "${base_ns}")
    math(EXPR limit
      "(${base_int} * ${TOLERANCE_PCT} * ${scale_pct}) / 10000 + ${FLOOR_NS}")
    math(EXPR compared "${compared} + 1")
    if(fresh_int GREATER limit)
      list(APPEND regressions
        "${name}: ${fresh_int} ns/slot > limit ${limit} (baseline ${base_int}, scale ${scale_pct}%)")
    else()
      message(STATUS
        "${name}: ${fresh_int} ns/slot within limit ${limit} (baseline ${base_int})")
    endif()
  endforeach()
  if(compared EQUAL 0)
    message(FATAL_ERROR
      "no config name matched between ${BASELINE} and the fresh run")
  endif()
  set(regressions_${tag} "${regressions}" PARENT_SCOPE)
endfunction()

run_and_compare(first)

if(EXPECT STREQUAL "fail")
  if(regressions_first STREQUAL "")
    message(FATAL_ERROR
      "gate self-test: injected slowdown was NOT detected — the regression "
      "gate is not protecting anything")
  endif()
  message(STATUS "gate self-test: slowdown detected as expected:")
  foreach(r ${regressions_first})
    message(STATUS "  ${r}")
  endforeach()
  return()
endif()

if(NOT regressions_first STREQUAL "")
  message(STATUS "regression on first run; retrying once (host noise?)")
  run_and_compare(retry)
  if(NOT regressions_retry STREQUAL "")
    string(REPLACE ";" "\n  " pretty "${regressions_retry}")
    message(FATAL_ERROR
      "wall_ns_per_slot regressed vs ${BASELINE} (twice):\n  ${pretty}\n"
      "If this slowdown is intended, regenerate the baseline with "
      "`perf_bench --out BENCH_<n>.json` and commit it.")
  endif()
  message(STATUS "retry passed; first run attributed to host noise")
endif()
