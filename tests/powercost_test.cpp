// Tests for the §2/§5 power and cost models against the paper's numbers.
#include <gtest/gtest.h>

#include "powercost/cost_model.hpp"
#include "powercost/power_model.hpp"

namespace sirius::powercost {
namespace {

TEST(PowerModel, Fig2aEndpoints) {
  PowerModel m;
  // Direct fiber: 50 W/Tbps. Four tiers (2M endpoints): 487 W/Tbps.
  EXPECT_NEAR(m.esn_power_per_tbps(0), 50.0, 0.1);
  EXPECT_NEAR(m.esn_power_per_tbps(4), 487.0, 1.0);
}

TEST(PowerModel, Fig2aMonotone) {
  PowerModel m;
  double prev = 0.0;
  for (std::int32_t tiers = 0; tiers <= 5; ++tiers) {
    const double p = m.esn_power_per_tbps(tiers);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, TiersForEndpointsMatchesFig2aAxis) {
  EXPECT_EQ(PowerModel::tiers_for_endpoints(2), 0);
  EXPECT_EQ(PowerModel::tiers_for_endpoints(64), 1);
  EXPECT_EQ(PowerModel::tiers_for_endpoints(2'000), 2);
  EXPECT_EQ(PowerModel::tiers_for_endpoints(65'000), 3);
  EXPECT_EQ(PowerModel::tiers_for_endpoints(2'000'000), 4);
}

TEST(PowerModel, HundredPbpsDatacenterNumbers) {
  // §1/§2: a 100 Pbps network at 487 W/Tbps consumes ~48.7 MW — more than
  // a 32 MW datacenter allocation.
  PowerModel m;
  const double watts = m.esn_power_per_tbps(4) * 100'000.0;  // 100 Pbps
  EXPECT_NEAR(watts / 1e6, 48.7, 0.2);
  EXPECT_GT(watts / 1e6, 32.0);
}

TEST(PowerModel, Fig6aPaperBand) {
  // Abstract/§5: tunable lasers at 3-5x fixed-laser power => Sirius draws
  // 23-26 % of the ESN ("74-77 % lower power").
  PowerModel m;
  EXPECT_NEAR(m.power_ratio(3.0), 0.235, 0.015);
  EXPECT_NEAR(m.power_ratio(5.0), 0.255, 0.015);
  EXPECT_GE(1.0 - m.power_ratio(5.0), 0.74);
  EXPECT_LE(1.0 - m.power_ratio(3.0), 0.785);
}

TEST(PowerModel, Fig6aMonotoneInTunableOverhead) {
  PowerModel m;
  double prev = 0.0;
  for (double k : {1.0, 3.0, 5.0, 7.0, 10.0, 20.0}) {
    const double r = m.power_ratio(k);
    EXPECT_GT(r, prev);
    EXPECT_LT(r, 1.0);  // Sirius never loses on power in this range
    prev = r;
  }
}

TEST(CostModel, EsnBaselinePerTbps) {
  CostModel m;
  // 7 switch traversals at $195/Tbps + 14 transceivers at $1000/Tbps.
  EXPECT_NEAR(m.esn_cost_per_tbps(), 7.0 * 5'000.0 / 25.6 + 14'000.0, 1.0);
}

TEST(CostModel, Fig6bHeadlineRatio) {
  // §5: gratings at 25 % of switch cost and tunable lasers at 3x fixed =>
  // Sirius costs ~28 % of a non-blocking ESN.
  CostModel m;
  EXPECT_NEAR(m.cost_ratio_nonblocking(0.25, 3.0), 0.28, 0.02);
}

TEST(CostModel, Fig6bMonotoneInGratingCost) {
  CostModel m;
  double prev = 0.0;
  for (double g : {0.05, 0.10, 0.25, 0.50, 0.75, 1.00}) {
    const double r = m.cost_ratio_nonblocking(g, 3.0);
    EXPECT_GT(r, prev);
    EXPECT_LT(r, 0.5);
    prev = r;
  }
}

TEST(CostModel, ErrorBarsAtFiveTimesLaser) {
  CostModel m;
  const double at3 = m.cost_ratio_nonblocking(0.25, 3.0);
  const double at5 = m.cost_ratio_nonblocking(0.25, 5.0);
  EXPECT_GT(at5, at3);
  EXPECT_LT(at5, at3 + 0.08);
}

TEST(CostModel, OversubscribedComparisonStillFavoursSirius) {
  // §5: Sirius costs ~53 % of a 3:1 oversubscribed ESN while offering
  // non-blocking connectivity. Our tier accounting lands in the same
  // region (see EXPERIMENTS.md for the exact figure).
  CostModel m;
  const double r = m.cost_ratio_oversubscribed(0.25, 3.0);
  EXPECT_GT(r, 0.40);
  EXPECT_LT(r, 0.60);
  EXPECT_LT(m.sirius_cost_per_tbps(0.25, 3.0),
            m.esn_oversubscribed_cost_per_tbps(3.0));
}

TEST(CostModel, ElectricalSiriusVariantCostlier) {
  // §5: optical Sirius costs ~55 % of the electrically-switched variant of
  // its own topology.
  CostModel m;
  const double ratio =
      m.sirius_cost_per_tbps(0.25, 3.0) / m.electrical_sirius_cost_per_tbps();
  EXPECT_GT(ratio, 0.45);
  EXPECT_LT(ratio, 0.75);
}

TEST(PowerModel, ParallelPlanesKeepTheAdvantage) {
  // §4.5: in a post-Moore world the ESN adds hierarchy to scale bandwidth
  // while parallel Sirius planes scale flat, so the relative advantage
  // only grows with the bandwidth multiple.
  PowerModel m;
  const double now = m.parallel_planes_ratio(3.0, 1.0);
  const double x8 = m.parallel_planes_ratio(3.0, 8.0);
  const double x32 = m.parallel_planes_ratio(3.0, 32.0);
  EXPECT_NEAR(now, m.power_ratio(3.0), 1e-12);
  EXPECT_LT(x8, now);
  EXPECT_LT(x32, x8);
}

TEST(CostModel, OversubscriptionReducesEsnCost) {
  CostModel m;
  EXPECT_LT(m.esn_oversubscribed_cost_per_tbps(3.0), m.esn_cost_per_tbps());
  EXPECT_NEAR(m.esn_oversubscribed_cost_per_tbps(1.0), m.esn_cost_per_tbps(),
              1e-9);
}

}  // namespace
}  // namespace sirius::powercost
